#!/usr/bin/env bash
# Greppable concurrency invariants, run as part of the tier-1 CI gate.
# These are the textual contracts behind the thread-safety annotations in
# src/util/sync.h — cheap to enforce on any compiler, including the GCC
# builds where the Clang -Wthread-safety analysis itself is unavailable.
#
#   1. No raw std synchronization primitives outside src/util/sync.h.
#      Every lock goes through util::Mutex / util::CondVar / util::MutexLock
#      so the Clang analysis sees every acquire and release.
#   2. No std::thread spawned outside the engine/pool files that own
#      thread lifetime (WorkerPool, ThreadedEngine, ThreadedHogwildEngine).
#      Queries (hardware_concurrency, this_thread) are fine anywhere.
#   3. A .cpp that touches a GUARDED_BY field must include the header that
#      declares it (directly, or via that header's own includes) — no
#      poking at guarded state through forward declarations or externs.
#   4. A file using the annotation macros must include src/util/sync.h so
#      the macros expand consistently (never re-defined locally).
#   5. Self-check: the GUARDED_BY inventory rules 3 and 4 run on must
#      actually see the annotated subsystems (sched worker pool, serving
#      runtime). An empty scan would make rules 3/4 pass vacuously, so
#      known anchor fields are asserted present.
#   6. Raw GEMM accumulation loops (an indexed element += a product of
#      indexed loads) live only in src/tensor/kernels/. Everything else
#      goes through tensor::ops so the KernelRegistry dispatch (naive
#      oracle vs tiled+SIMD) covers every matmul in the tree. Self-checked
#      like rule 5: the naive kernels must trip the scan.
#
# Exit status: 0 = all invariants hold, 1 = at least one violation
# (each printed with file:line).

set -u
cd "$(dirname "$0")/.."

fail=0
violation() {
  # $1 = rule title, $2 = offending file:line lines (possibly empty)
  if [ -n "$2" ]; then
    echo "INVARIANT VIOLATED: $1"
    echo "$2" | sed 's/^/  /'
    fail=1
  fi
}

SRC_FILES=$(find src -name '*.h' -o -name '*.cpp' | sort)

# --- Rule 1: raw std primitives only inside util/sync.h -------------------
hits=$(grep -nE 'std::(mutex|condition_variable|recursive_mutex|shared_mutex|timed_mutex|lock_guard|unique_lock|scoped_lock|shared_lock)\b' \
         $SRC_FILES /dev/null | grep -v '^src/util/sync\.h:')
violation "raw std synchronization primitive outside src/util/sync.h (use util::Mutex / util::CondVar / util::MutexLock)" "$hits"

# --- Rule 2: std::thread spawning confined to the thread-owning files -----
THREAD_OWNERS='^src/(sched/worker_pool|pipeline/threaded_engine|hogwild/threaded_hogwild)\.(h|cpp):'
hits=$(grep -nE 'std::thread\b' $SRC_FILES /dev/null |
         grep -vE 'std::thread::hardware_concurrency' |
         grep -vE "$THREAD_OWNERS")
violation "std::thread spawned outside WorkerPool / ThreadedEngine / ThreadedHogwildEngine" "$hits"

# --- Rules 3 & 4 ----------------------------------------------------------
# Collect GUARDED_BY field declarations: "header field" pairs.
decls=$(grep -nE 'GUARDED_BY\(' $SRC_FILES /dev/null |
          sed -nE 's/^([^:]+):[0-9]+:.*[^A-Za-z0-9_]([A-Za-z0-9_]+_)[[:space:]]+GUARDED_BY\(.*/\1 \2/p' |
          sort -u)

# Rule 3: every .cpp naming a guarded field includes a declaring header.
includes_of() {  # prints the "..."-form includes of $1
  grep -hE '^#include "' "$1" 2>/dev/null | sed -E 's/#include "(.*)"/\1/'
}
hits=$(
  while read -r header field; do
    [ -n "$field" ] || continue
    declarers=$(echo "$decls" | awk -v f="$field" '$2 == f { print $1 }')
    for cpp in $(grep -lrE "[^A-Za-z0-9_]${field}[^A-Za-z0-9_]" src --include='*.cpp' 2>/dev/null); do
      direct=$(includes_of "$cpp")
      reach="$direct"
      for inc in $direct; do  # one-level transitive closure
        [ -f "$inc" ] && reach="$reach
$(includes_of "$inc")"
      done
      ok=0
      for d in $declarers; do
        if echo "$reach" | grep -qx "$d"; then ok=1; break; fi
      done
      if [ "$ok" -eq 0 ]; then
        declarers_flat=$(echo "$declarers" | paste -sd, -)
        grep -nE "[^A-Za-z0-9_]${field}[^A-Za-z0-9_]" "$cpp" /dev/null | head -1 |
          sed "s|\$| (field '${field}' declared in ${declarers_flat}; header not included)|"
      fi
    done
  done <<< "$decls" | sort -u
)
violation ".cpp touches a GUARDED_BY field without including its declaring header" "$hits"

# Rule 4: annotation macros only with src/util/sync.h in scope.
hits=$(
  grep -lE '(GUARDED_BY|REQUIRES|ACQUIRE|RELEASE|EXCLUDES|TRY_ACQUIRE|CAPABILITY|SCOPED_CAPABILITY)\(' \
      $SRC_FILES 2>/dev/null | grep -v '^src/util/sync\.h$' |
    while read -r f; do
      if ! grep -qE '^#include "src/util/sync\.h"' "$f"; then
        echo "$f:1 (uses annotation macros without including src/util/sync.h)"
      fi
    done
)
violation "thread-safety annotation macros used without src/util/sync.h" "$hits"

# --- Rule 6: hand-rolled GEMM loops confined to src/tensor/kernels/ -------
# Signature of a GEMM/axpy-style accumulation: an indexed LHS accumulating
# a product that loads through an index, e.g. `c[j] += av * b[j]`. Exempt:
#   src/nn/norm.cpp — LayerNorm's dgamma column reduction
#     (grad[j] += dy[j] * xhat[j]) is a [rows,cols] -> [cols] reduction
#     whose sequential row order is the spec, not a matmul to dispatch.
GEMM_RE='\[[^]]*\][[:space:]]*\+=[[:space:]]*[^;]*\*[^;]*\['
hits=$(grep -nE "$GEMM_RE" $SRC_FILES /dev/null |
         grep -v '^src/tensor/kernels/' |
         grep -v '^src/nn/norm\.cpp:')
violation "raw GEMM accumulation loop outside src/tensor/kernels/ (route it through tensor::ops so the kernel registry covers it)" "$hits"

# Rule 6 self-check: the naive GEMM kernels must trip the scan regex; if
# they stop matching, the rule above is passing vacuously.
if ! grep -qE "$GEMM_RE" src/tensor/kernels/gemm_naive.cpp 2>/dev/null; then
  violation "GEMM-loop scan self-check failed (regex or anchor file rotted)" \
    "src/tensor/kernels/gemm_naive.cpp:1 (expected the naive GEMM kernels to match the scan)"
fi

# --- Rule 5: scan self-check ----------------------------------------------
# Rules 3/4 pass vacuously if the GUARDED_BY extraction regex rots and the
# inventory comes up empty. Anchor on fields that must stay guarded: the
# worker-pool barrier state and the serving runtime's scheduler state
# (src/serve/ is all-mutable-state-under-one-mutex by design).
hits=$(
  for anchor in \
      "src/sched/worker_pool.h generation_" \
      "src/serve/request_queue.h q_" \
      "src/serve/request_queue.h closed_" \
      "src/serve/pipeline_server.h slot_busy_" \
      "src/serve/pipeline_server.h push_version_" \
      "src/serve/pipeline_server.h counters_"; do
    header=${anchor% *}
    field=${anchor#* }
    if ! echo "$decls" | grep -qx "$header $field"; then
      echo "$header:1 (GUARDED_BY scan did not find expected guarded field '$field')"
    fi
  done
)
violation "GUARDED_BY inventory self-check failed (scan regex or annotations rotted)" "$hits"

if [ "$fail" -eq 0 ]; then
  echo "check_invariants: all concurrency invariants hold"
fi
exit "$fail"
