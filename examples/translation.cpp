// Domain example: asynchronous pipeline-parallel training of an
// encoder-decoder Transformer on the synthetic translation task (the
// paper's IWSLT14 analog), with all three PipeMare techniques, followed by
// beam-search decoding and corpus BLEU.
//
// Usage: example_translation [--epochs=10] [--seed=4] [--beam=5] + the
//          shared backend flags (--help prints them with the
//          registered-backend list). Dropout masks are counter-based, so
//          every backend — including threaded_hogwild's whole-model
//          replicas — runs the Transformer.
#include <chrono>
#include <iostream>

#include "src/core/experiments.h"
#include "src/core/task.h"
#include "src/core/trainer.h"
#include "src/data/bleu.h"
#include "src/nn/transformer.h"
#include "src/pipeline/partition.h"
#include "src/util/cli.h"
#include "src/util/table.h"

int main(int argc, char** argv) {
  using namespace pipemare;
  util::Cli cli(argc, argv);
  if (cli.has("help")) {
    std::cout << "Usage: example_translation [--epochs=10] [--seed=4] [--beam=5]\n"
              << core::backend_cli_help();
    return 0;
  }

  auto task = core::make_iwslt_analog(cli.get_int("seed", 4));
  nn::Model probe = task->build_model();
  int stages = pipeline::max_stages(probe, false);
  std::cout << "Task: " << task->name() << "  |  params: " << probe.param_count()
            << "  |  stages: " << stages << "\n\n";

  core::TrainerConfig cfg = core::translation_recipe(stages, cli.get_int("epochs", 10));
  cfg.seed = cli.get_int("seed", 4);

  cfg.microbatch_size = cli.get_int("micro", cfg.microbatch_size);
  cfg.lr = cli.get_double("lr", cfg.lr);
  cfg.t1 = cli.get_bool("t1", cfg.t1);
  cfg.engine.discrepancy_correction = cli.get_bool("t2", cfg.engine.discrepancy_correction);
  cfg.warmup_epochs = cli.get_int("warmup", cfg.warmup_epochs);
  core::parse_backend_cli(cli, cfg);
  bool print_curve = cli.get_bool("curve", false);

  util::Table table({"Method", "Best BLEU", "Epochs", "Diverged", "Wall (s)"});
  for (auto method : {pipeline::Method::Sync, pipeline::Method::PipeMare}) {
    core::TrainerConfig run_cfg = cfg;
    run_cfg.engine.method = method;
    if (method == pipeline::Method::Sync) {
      run_cfg.t1 = false;
      run_cfg.engine.discrepancy_correction = false;
      run_cfg.warmup_epochs = 0;
    }
    auto t0 = std::chrono::steady_clock::now();
    core::TrainResult result = core::train(*task, run_cfg);
    auto secs = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    table.add_row({pipeline::method_name(method), util::fmt(result.best_metric, 1),
                   std::to_string(result.epochs_completed()),
                   result.diverged ? "yes" : "no", util::fmt(secs, 1)});
    if (print_curve) {
      for (const auto& rec : result.curve) {
        if (rec.is_divergence_record()) {
          std::cout << pipeline::method_name(method) << " epoch " << rec.epoch
                    << "  DIVERGED at loss " << util::fmt(rec.train_loss, 4)
                    << "  |w| " << util::fmt(rec.param_norm, 1) << '\n';
          continue;
        }
        std::cout << pipeline::method_name(method) << " epoch " << rec.epoch
                  << "  loss " << util::fmt(rec.train_loss, 4) << "  BLEU "
                  << util::fmt(rec.metric, 2) << "  |w| "
                  << util::fmt(rec.param_norm, 1) << "  lr "
                  << util::fmt(rec.base_lr, 5) << '\n';
      }
    }
  }
  std::cout << table.to_string() << '\n';
  std::cout << "BLEU is computed with beam-search (width 5) decodes against the\n"
               "synthetic references (token-reversal + vocabulary mapping).\n";
  return 0;
}
