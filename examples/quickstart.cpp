// Quickstart: train the synthetic CIFAR10 analog with PipeMare (all three
// techniques) at the finest pipeline granularity and compare against
// GPipe-style synchronous execution. The execution substrate is picked
// from the BackendRegistry, so the same comparison runs on any backend.
//
// Usage: example_quickstart [--epochs=8] [--seed=1] + the shared backend
// flags (--help prints them with the registered-backend list).
#include <iostream>

#include "src/core/experiments.h"
#include "src/core/task.h"
#include "src/core/trainer.h"
#include "src/pipeline/partition.h"
#include "src/util/cli.h"
#include "src/util/table.h"

int main(int argc, char** argv) {
  using namespace pipemare;
  util::Cli cli(argc, argv);
  if (cli.has("help")) {
    std::cout << "Usage: example_quickstart [--epochs=8] [--seed=1]\n"
              << core::backend_cli_help();
    return 0;
  }

  auto task = core::make_cifar10_analog(cli.get_int("seed", 1));
  nn::Model probe = task->build_model();
  int stages = pipeline::max_stages(probe, /*split_bias=*/false);
  std::cout << "Task: " << task->name() << "  |  model params: " << probe.param_count()
            << "  |  pipeline stages: " << stages << " (one per weight unit)\n\n";

  core::TrainerConfig cfg = core::image_recipe(stages, cli.get_int("epochs", 8));
  cfg.seed = cli.get_int("seed", 1);
  core::parse_backend_cli(cli, cfg);
  std::cout << "Execution backend: " << cfg.backend.name << "\n\n";

  util::Table table({"Method", "Best acc (%)", "Epochs", "Diverged", "Wall (s)"});
  for (auto method : {pipeline::Method::Sync, pipeline::Method::PipeMare}) {
    core::TrainerConfig run_cfg = cfg;
    run_cfg.engine.method = method;
    if (method == pipeline::Method::Sync) {
      run_cfg.t1 = false;
      run_cfg.engine.discrepancy_correction = false;
    }
    core::TrainResult result = core::train(*task, run_cfg);
    table.add_row({pipeline::method_name(method), util::fmt(result.best_metric, 1),
                   std::to_string(result.epochs_completed()),
                   result.diverged ? "yes" : "no",
                   util::fmt(result.total_seconds(), 1)});
  }
  std::cout << table.to_string() << '\n';
  std::cout << "PipeMare trains asynchronously (no pipeline bubbles, no weight\n"
               "stashing) and should closely match the synchronous accuracy.\n";
  return 0;
}
