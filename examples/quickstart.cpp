// Quickstart: train the synthetic CIFAR10 analog with PipeMare (all three
// techniques) at the finest pipeline granularity and compare against
// GPipe-style synchronous execution.
//
// Usage: example_quickstart [--epochs=8] [--seed=1]
#include <chrono>
#include <iostream>

#include "src/core/experiments.h"
#include "src/core/task.h"
#include "src/core/trainer.h"
#include "src/pipeline/partition.h"
#include "src/util/cli.h"
#include "src/util/table.h"

int main(int argc, char** argv) {
  using namespace pipemare;
  util::Cli cli(argc, argv);

  auto task = core::make_cifar10_analog(cli.get_int("seed", 1));
  nn::Model probe = task->build_model();
  int stages = pipeline::max_stages(probe, /*split_bias=*/false);
  std::cout << "Task: " << task->name() << "  |  model params: " << probe.param_count()
            << "  |  pipeline stages: " << stages << " (one per weight unit)\n\n";

  core::TrainerConfig cfg = core::image_recipe(stages, cli.get_int("epochs", 8));
  cfg.seed = cli.get_int("seed", 1);

  util::Table table({"Method", "Best acc (%)", "Epochs", "Diverged", "Wall (s)"});
  for (auto method : {pipeline::Method::Sync, pipeline::Method::PipeMare}) {
    core::TrainerConfig run_cfg = cfg;
    run_cfg.engine.method = method;
    if (method == pipeline::Method::Sync) {
      run_cfg.t1 = false;
      run_cfg.engine.discrepancy_correction = false;
    }
    auto t0 = std::chrono::steady_clock::now();
    core::TrainResult result = core::train(*task, run_cfg);
    auto secs = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    table.add_row({pipeline::method_name(method), util::fmt(result.best_metric, 1),
                   std::to_string(result.curve.size()),
                   result.diverged ? "yes" : "no", util::fmt(secs, 1)});
  }
  std::cout << table.to_string() << '\n';
  std::cout << "PipeMare trains asynchronously (no pipeline bubbles, no weight\n"
               "stashing) and should closely match the synchronous accuracy.\n";
  return 0;
}
