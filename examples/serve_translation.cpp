// Domain example: the trained translation Transformer as the first served
// workload — the full train -> checkpoint -> serve -> decode handoff.
//
// The pipeline: train the IWSLT analog briefly (synchronous, sequential
// backend — serving is the point here, not the async-training techniques),
// save a versioned serve::ModelCheckpoint, load it back, and stand up a
// serve::PipelineServer. Greedy decoding then runs *through the server*:
// each decode step submits one request per unfinished sentence (same
// target length per step, so the continuous batcher merges them into
// microbatches), reads the last-position logits from the response, and
// appends the argmax token. Because serving is bitwise-parity with the
// sequential forward, the served decodes must equal nn::greedy_decode on
// the same weights token for token — the example asserts exactly that,
// then reports BLEU, latency percentiles, and the per-stage load the
// server observed.
//
// Usage: example_serve_translation [--epochs=3] [--seed=4] [--sentences=32]
//          [--ckpt=serve_translation_ckpt.bin] + the serving flags
//          (--help prints them).

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "src/core/experiments.h"
#include "src/core/task.h"
#include "src/core/trainer.h"
#include "src/data/bleu.h"
#include "src/nn/transformer.h"
#include "src/pipeline/partition.h"
#include "src/serve/checkpoint.h"
#include "src/serve/pipeline_server.h"
#include "src/serve/serve_cli.h"
#include "src/util/cli.h"
#include "src/util/table.h"

namespace {

using namespace pipemare;

double percentile(std::vector<double> v, double q) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const auto idx = static_cast<std::size_t>(
      q * static_cast<double>(v.size() - 1) + 0.5);
  return v[std::min(idx, v.size() - 1)];
}

/// Greedy decoding through the serving runtime: mirrors nn::greedy_decode
/// step for step, but every forward is a server request. Unfinished
/// sentences at the same step share the same target length, so their
/// requests are batch-compatible and the scheduler merges them.
std::vector<std::vector<int>> serve_greedy_decode(
    serve::PipelineServer& server, const tensor::Tensor& src, int bos, int eos,
    int max_steps, std::vector<double>& latencies_ms) {
  const int b = src.dim(0);
  const int s = src.dim(1);
  std::vector<std::vector<int>> hyp(static_cast<std::size_t>(b),
                                    std::vector<int>{bos});
  std::vector<bool> done(static_cast<std::size_t>(b), false);
  for (int step = 0; step < max_steps; ++step) {
    std::vector<int> alive;
    for (int bi = 0; bi < b; ++bi) {
      if (!done[static_cast<std::size_t>(bi)]) alive.push_back(bi);
    }
    if (alive.empty()) break;
    const int cur = static_cast<int>(hyp[static_cast<std::size_t>(alive[0])].size());
    std::vector<serve::TicketPtr> tickets;
    tickets.reserve(alive.size());
    for (int bi : alive) {
      nn::Flow f;
      f.x = tensor::Tensor({1, s});
      for (int j = 0; j < s; ++j) f.x.at(0, j) = src.at(bi, j);
      f.aux = tensor::Tensor({1, cur});
      for (int t = 0; t < cur; ++t) {
        f.aux.at(0, t) = static_cast<float>(
            hyp[static_cast<std::size_t>(bi)][static_cast<std::size_t>(t)]);
      }
      tickets.push_back(server.submit(std::move(f)));
    }
    for (std::size_t r = 0; r < alive.size(); ++r) {
      const serve::Response& resp = tickets[r]->wait();
      if (resp.status != serve::Status::Ok) {
        throw std::runtime_error("serve_greedy_decode: request failed: " +
                                 std::string(serve::status_name(resp.status)) +
                                 (resp.error.empty() ? "" : " (" + resp.error + ")"));
      }
      latencies_ms.push_back(resp.total_ms);
      // Response rows are [1, cur, vocab]; the next token reads the last
      // target position, exactly like nn::last_position_logits.
      const int vocab = resp.output.dim(2);
      int best = 0;
      for (int j = 1; j < vocab; ++j) {
        if (resp.output.at(0, cur - 1, j) > resp.output.at(0, cur - 1, best)) best = j;
      }
      const int bi = alive[r];
      hyp[static_cast<std::size_t>(bi)].push_back(best);
      if (best == eos) done[static_cast<std::size_t>(bi)] = true;
    }
  }
  std::vector<std::vector<int>> out;
  out.reserve(static_cast<std::size_t>(b));
  for (auto& h : hyp) {
    std::vector<int> toks;
    for (std::size_t i = 1; i < h.size(); ++i) {  // strip BOS, cut at EOS
      if (h[i] == eos) break;
      toks.push_back(h[i]);
    }
    out.push_back(std::move(toks));
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  if (cli.has("help")) {
    std::cout << "Usage: example_serve_translation [--epochs=3] [--seed=4] "
                 "[--sentences=32] [--ckpt=serve_translation_ckpt.bin]\n"
              << serve::serve_cli_help();
    return 0;
  }
  const int epochs = cli.get_int("epochs", 3);
  const int seed = cli.get_int("seed", 4);
  const int sentences = cli.get_int("sentences", 32);
  const std::string ckpt_path =
      cli.get("ckpt", "serve_translation_ckpt.bin");

  auto task = core::make_iwslt_analog(static_cast<std::uint64_t>(seed));
  nn::Model model = task->build_model();
  const int max_train_stages = pipeline::max_stages(model, false);
  std::cout << "Task: " << task->name() << "  |  params: " << model.param_count()
            << "\n\n";

  // --- Train (synchronous; serving is the subject, not async training) ---
  core::TrainerConfig tcfg = core::translation_recipe(max_train_stages, epochs);
  tcfg.seed = seed;
  tcfg.engine.method = pipeline::Method::Sync;
  tcfg.t1 = false;
  tcfg.engine.discrepancy_correction = false;
  tcfg.warmup_epochs = 0;
  tcfg.engine.num_microbatches = tcfg.num_microbatches();
  auto engine = core::BackendRegistry::instance().create(
      task->build_model(), tcfg.backend, tcfg.engine,
      static_cast<std::uint64_t>(tcfg.seed));
  std::cout << "training " << epochs << " epoch(s) synchronously...\n";
  core::TrainResult trained = core::train_loop(*task, *engine, tcfg);
  std::cout << "best BLEU while training: " << util::fmt(trained.best_metric, 1)
            << "\n\n";
  const std::vector<float> weights(engine->weights().begin(),
                                   engine->weights().end());

  // --- Checkpoint handoff: save, load, validate ---
  serve::save_checkpoint(ckpt_path, model, weights);
  serve::ModelCheckpoint ckpt = serve::load_checkpoint(ckpt_path);
  std::cout << "checkpoint " << ckpt_path << ": format v" << ckpt.format_version
            << ", digest " << ckpt.digest << ", " << ckpt.weights.size()
            << " params\n";

  // --- Serve ---
  serve::ServeConfig scfg;
  scfg.num_stages = std::min(4, pipeline::max_stages(model, false));
  serve::parse_serve_cli(cli, scfg);
  serve::PipelineServer server(model, std::move(ckpt), scfg);
  server.start();
  std::cout << "serving with P=" << scfg.num_stages
            << " stages, W=" << server.num_workers() << " workers, policy="
            << serve::batch_policy_name(scfg.batch.policy)
            << ", max_batch=" << scfg.batch.max_batch << "\n\n";

  const auto& dataset = task->dataset();
  auto test = dataset.test_set(sentences);
  const int max_steps = test.sources.dim(1) + 2;
  std::vector<double> latencies_ms;
  auto served = serve_greedy_decode(server, test.sources,
                                    data::TranslationConfig::kBos,
                                    data::TranslationConfig::kEos, max_steps,
                                    latencies_ms);
  server.stop();

  // --- Parity against the library decoder on the same weights ---
  auto reference = nn::greedy_decode(model, weights, test.sources,
                                     data::TranslationConfig::kBos,
                                     data::TranslationConfig::kEos, max_steps);
  int mismatches = 0;
  for (std::size_t i = 0; i < served.size(); ++i) {
    if (served[i] != reference[i]) ++mismatches;
  }

  const double bleu = data::corpus_bleu(served, test.references);
  auto counters = server.counters();
  util::Table t({"sentences", "BLEU", "decode req", "batches", "req p50",
                 "req p99", "parity"});
  t.add_row({std::to_string(served.size()), util::fmt(bleu, 1),
             std::to_string(counters.completed_ok),
             std::to_string(counters.batches),
             util::fmt(percentile(latencies_ms, 0.50), 2) + "ms",
             util::fmt(percentile(latencies_ms, 0.99), 2) + "ms",
             mismatches == 0 ? "exact" : std::to_string(mismatches) + " diff"});
  std::cout << t.to_string() << '\n';

  util::Table stages_t({"stage", "busy ms", "items", "stolen"});
  auto stats = server.stage_stats();
  for (std::size_t s = 0; s < stats.size(); ++s) {
    stages_t.add_row({std::to_string(s),
                      util::fmt(static_cast<double>(stats[s].busy_ns) / 1e6, 1),
                      std::to_string(stats[s].items),
                      std::to_string(stats[s].stolen_items)});
  }
  std::cout << stages_t.to_string() << '\n';

  std::remove(ckpt_path.c_str());
  if (mismatches != 0) {
    std::cerr << "PARITY FAILURE: served decodes diverged from "
                 "nn::greedy_decode on the same weights\n";
    return 1;
  }
  std::cout << "served decodes match nn::greedy_decode token-for-token (the "
               "bitwise forward-parity invariant, end to end).\n";
  return 0;
}
