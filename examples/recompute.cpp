// Domain example: PipeMare Recompute (Appendix A.2/D). Shows the
// activation-memory savings of segment-level recomputation at fine
// pipeline granularity, then trains the image task with recompute enabled
// to demonstrate that (with the T2 correction extended to the recompute
// weights) the statistical efficiency is preserved.
//
// Usage: example_recompute [--epochs=8] [--segments=3] [--seed=1]
#include <iostream>

#include "src/core/experiments.h"
#include "src/core/task.h"
#include "src/core/trainer.h"
#include "src/hwmodel/activation_memory.h"
#include "src/pipeline/partition.h"
#include "src/util/cli.h"
#include "src/util/table.h"

int main(int argc, char** argv) {
  using namespace pipemare;
  util::Cli cli(argc, argv);

  auto task = core::make_cifar10_analog(cli.get_int("seed", 1));
  int stages = pipeline::max_stages(task->build_model(), false);
  int segments = cli.get_int("segments", 3);
  // This example stays on the "sequential" backend: recomputation is a
  // memory-model feature of the analytic engine, and every other registered
  // backend's validate() rejects engine.recompute_segments > 0.

  std::cout << "=== PipeMare Recompute on " << task->name() << " (" << stages
            << " stages) ===\n\n";

  // Memory side: counted activation buffers (units of one microbatch
  // activation M) with and without recompute.
  auto base = hwmodel::pipemare_activation_counts(stages);
  int s_star = hwmodel::optimal_segment_size(stages);
  auto rec = hwmodel::pipemare_recompute_counts(stages, s_star);
  std::cout << "activation buffers: " << hwmodel::total_activations(base)
            << " (no recompute, = P^2) vs " << hwmodel::total_activations(rec)
            << " (recompute, optimal segment S* = " << s_star << " ~ sqrt(P))\n\n";

  // Statistical side: train with and without recompute under PipeMare
  // T1+T2 (T2 also corrects the recompute weights, Appendix D).
  util::Table t({"Run", "Best acc (%)", "Diverged"});
  for (int seg : {0, segments}) {
    core::TrainerConfig cfg = core::image_recipe(stages, cli.get_int("epochs", 8));
    cfg.seed = cli.get_int("seed", 1);
    cfg.engine.recompute_segments = seg;
    auto res = core::train(*task, cfg);
    t.add_row({seg == 0 ? "no recompute" : std::to_string(seg) + " segments",
               util::fmt(res.best_metric, 1), res.diverged ? "yes" : "no"});
  }
  std::cout << t.to_string() << '\n';
  std::cout << "Recompute trades ~25% extra compute for O(P^2) -> O(P^(3/2))\n"
               "activation memory while preserving model quality.\n";
  return 0;
}
