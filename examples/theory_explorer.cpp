// Domain example: explore the stability theory of asynchronous
// pipeline-parallel SGD on the quadratic model — Lemma 1/2/3 bounds,
// characteristic-polynomial spectra, the T2 correction's effect, and a
// live simulation near the stability threshold.
//
// Usage: example_theory_explorer [--tau=16] [--lambda=1.0] [--delta=5.0]
#include <iostream>

#include "src/theory/char_polys.h"
#include "src/theory/quadratic_sim.h"
#include "src/theory/stability.h"
#include "src/util/cli.h"
#include "src/util/table.h"

int main(int argc, char** argv) {
  using namespace pipemare;
  util::Cli cli(argc, argv);
  int tau = cli.get_int("tau", 16);
  double lambda = cli.get_double("lambda", 1.0);
  double delta = cli.get_double("delta", 5.0);

  std::cout << "== Lemma 1: largest stable step size for delay tau ==\n";
  util::Table l1({"tau", "closed form 2/l sin(pi/(4t+2))", "numeric (Schur-Cohn)"});
  for (int t : {1, 2, 4, 8, tau, 2 * tau}) {
    double closed = theory::lemma1_max_alpha(lambda, t);
    double numeric = theory::largest_stable_alpha(
        [&](double a) { return theory::char_poly_basic(t, a, lambda); });
    l1.add_row({std::to_string(t), util::fmt(closed, 6), util::fmt(numeric, 6)});
  }
  std::cout << l1.to_string() << '\n';

  int tb = tau / 4;
  double gamma = theory::gamma_star(tau, tb);
  std::cout << "== Discrepancy (Lemma 2) and the T2 correction ==\n"
            << "tau_fwd=" << tau << " tau_bkwd=" << tb << " delta=" << delta
            << "  gamma*=" << util::fmt(gamma, 4)
            << "  D*=" << util::fmt(theory::d_star(tau, tb), 4) << "\n";
  double plain = theory::largest_stable_alpha([&](double a) {
    return theory::char_poly_discrepancy(tau, tb, a, lambda, delta);
  });
  double corrected = theory::largest_stable_alpha([&](double a) {
    return theory::char_poly_t2(tau, tb, a, lambda, delta, gamma);
  });
  util::Table l2({"variant", "largest stable alpha"});
  l2.add_row({"no discrepancy (Lemma 1)", util::fmt(theory::lemma1_max_alpha(lambda, tau), 6)});
  l2.add_row({"discrepancy, uncorrected", util::fmt(plain, 6)});
  l2.add_row({"discrepancy + T2", util::fmt(corrected, 6)});
  l2.add_row({"Lemma 2 upper bound", util::fmt(theory::lemma2_bound(lambda, delta, tau, tb), 6)});
  std::cout << l2.to_string() << '\n';

  std::cout << "== Simulation straddling the threshold (noise sigma = 1) ==\n";
  util::Table sim({"alpha / alpha*", "final loss (2000 iters)", "diverged"});
  double alpha_star = theory::lemma1_max_alpha(lambda, tau);
  for (double frac : {0.5, 0.9, 1.1, 1.5}) {
    theory::QuadraticSimConfig qc;
    qc.lambda = lambda;
    qc.tau_fwd = qc.tau_bkwd = tau;
    qc.alpha = frac * alpha_star;
    auto res = theory::run_quadratic_sim(qc, 2000);
    sim.add_row({util::fmt(frac, 2), util::fmt(res.final_loss, 4),
                 res.diverged ? "yes" : "no"});
  }
  std::cout << sim.to_string();
  return 0;
}
