// Domain example: Hogwild!-style stochastic asynchrony (Appendix E).
// Per-stage delays are drawn from truncated exponential distributions with
// pipeline-like expectations; Technique 1 (learning-rate rescheduling)
// recovers most of the accuracy lost to the stochastic staleness. The runs
// go through the BackendRegistry, so `--backend=threaded_hogwild` swaps in
// the W-worker threaded variant with no other changes.
//
// Usage: example_hogwild_training [--epochs=8] [--max-delay=12] [--seed=2]
//          + the shared backend flags (--help prints them with the
//          registered-backend list; this driver presets --backend=hogwild).
#include <iostream>

#include "src/core/experiments.h"
#include "src/core/task.h"
#include "src/core/trainer.h"
#include "src/pipeline/partition.h"
#include "src/util/cli.h"
#include "src/util/table.h"

int main(int argc, char** argv) {
  using namespace pipemare;
  util::Cli cli(argc, argv);
  if (cli.has("help")) {
    std::cout << "Usage: example_hogwild_training [--epochs=8] [--max-delay=12] "
                 "[--seed=2]\n"
              << core::backend_cli_help();
    return 0;
  }

  auto task = core::make_cifar10_analog(cli.get_int("seed", 2));
  nn::Model probe = task->build_model();
  int stages = pipeline::max_stages(probe, false);

  core::TrainerConfig cfg = core::image_recipe(stages, cli.get_int("epochs", 8));
  cfg.seed = cli.get_int("seed", 2);
  cfg.engine.discrepancy_correction = false;  // Appendix E studies T1 alone
  core::HogwildOptions hw_opts;
  hw_opts.max_delay = 12.0;
  cfg.backend = {"hogwild", hw_opts};
  core::parse_backend_cli(cli, cfg);

  util::Table table({"Run", "Best acc (%)", "Diverged", "Wall (s)"});
  for (bool t1 : {false, true}) {
    core::TrainerConfig run_cfg = cfg;
    run_cfg.t1 = t1;
    auto result = core::train(*task, run_cfg);
    table.add_row({t1 ? "Hogwild! + T1" : "Hogwild!", util::fmt(result.best_metric, 2),
                   result.diverged ? "yes" : "no",
                   util::fmt(result.total_seconds(), 1)});
  }
  // Synchronous reference on the exact pipeline backend.
  core::TrainerConfig sync_cfg = cfg;
  sync_cfg.backend = "sequential";
  sync_cfg.engine.method = pipeline::Method::Sync;
  sync_cfg.t1 = false;
  auto sync = core::train(*task, sync_cfg);
  table.add_row({"Sync.", util::fmt(sync.best_metric, 2), sync.diverged ? "yes" : "no",
                 util::fmt(sync.total_seconds(), 1)});

  std::cout << "Hogwild!-style stochastic delays on " << task->name() << " ("
            << stages << " stages, truncated-exponential delays, backend "
            << cfg.backend.name << ")\n\n"
            << table.to_string();
  return 0;
}
