// Domain example: Hogwild!-style stochastic asynchrony (Appendix E).
// Per-stage delays are drawn from truncated exponential distributions with
// pipeline-like expectations; Technique 1 (learning-rate rescheduling)
// recovers most of the accuracy lost to the stochastic staleness.
//
// Usage: example_hogwild_training [--epochs=8] [--max-delay=12] [--seed=2]
#include <iostream>

#include "src/core/experiments.h"
#include "src/core/task.h"
#include "src/core/trainer.h"
#include "src/hogwild/hogwild.h"
#include "src/pipeline/partition.h"
#include "src/util/cli.h"
#include "src/util/table.h"

int main(int argc, char** argv) {
  using namespace pipemare;
  util::Cli cli(argc, argv);

  auto task = core::make_cifar10_analog(cli.get_int("seed", 2));
  nn::Model probe = task->build_model();
  int stages = pipeline::max_stages(probe, false);

  core::TrainerConfig cfg = core::image_recipe(stages, cli.get_int("epochs", 8));
  cfg.seed = cli.get_int("seed", 2);
  cfg.engine.discrepancy_correction = false;  // Appendix E studies T1 alone

  hogwild::HogwildConfig hw;
  hw.num_stages = stages;
  hw.num_microbatches = cfg.num_microbatches();
  hw.max_delay = cli.get_double("max-delay", 12.0);

  util::Table table({"Run", "Best acc (%)", "Diverged"});
  for (bool t1 : {false, true}) {
    nn::Model model = task->build_model();
    hogwild::HogwildEngine engine(model, hw, cfg.seed);
    core::TrainerConfig run_cfg = cfg;
    run_cfg.t1 = t1;
    auto result = core::train_loop(*task, engine, run_cfg);
    table.add_row({t1 ? "Hogwild! + T1" : "Hogwild!", util::fmt(result.best_metric, 2),
                   result.diverged ? "yes" : "no"});
  }
  // Synchronous reference.
  core::TrainerConfig sync_cfg = cfg;
  sync_cfg.engine.method = pipeline::Method::Sync;
  sync_cfg.t1 = false;
  auto sync = core::train(*task, sync_cfg);
  table.add_row({"Sync.", util::fmt(sync.best_metric, 2), sync.diverged ? "yes" : "no"});

  std::cout << "Hogwild!-style stochastic delays on " << task->name() << " ("
            << stages << " stages, truncated-exponential delays)\n\n"
            << table.to_string();
  return 0;
}
