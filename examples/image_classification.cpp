// Domain example: image classification with fine-grained pipeline
// parallelism. Compares all three pipeline methods (GPipe, PipeDream,
// PipeMare) on the synthetic CIFAR10 analog and prints a Table 2-style
// summary including analytic throughput / memory columns.
//
// Usage: example_image_classification [--epochs=10] [--stages=0 (max)]
//          [--seed=1] + the shared backend flags (--help prints them with
//          the registered-backend list).
#include <iostream>

#include "src/core/experiments.h"
#include "src/core/task.h"
#include "src/core/trainer.h"
#include "src/pipeline/partition.h"
#include "src/util/cli.h"
#include "src/util/table.h"

int main(int argc, char** argv) {
  using namespace pipemare;
  util::Cli cli(argc, argv);
  if (cli.has("help")) {
    std::cout << "Usage: example_image_classification [--epochs=10] "
                 "[--stages=0 (max)] [--seed=1]\n"
              << core::backend_cli_help();
    return 0;
  }

  auto task = core::make_cifar10_analog(cli.get_int("seed", 1));
  nn::Model probe = task->build_model();
  int stages = cli.get_int("stages", 0);
  if (stages <= 0) stages = pipeline::max_stages(probe, false);

  core::TrainerConfig cfg = core::image_recipe(stages, cli.get_int("epochs", 10));
  cfg.seed = cli.get_int("seed", 1);
  core::parse_backend_cli(cli, cfg);

  std::cout << "Comparing pipeline methods on " << task->name() << " with " << stages
            << " stages (N = " << cfg.num_microbatches() << " microbatches, backend "
            << cfg.backend.name << ")\n\n";
  auto rows = core::compare_methods(*task, cfg, /*target_gap=*/1.0);

  util::Table table({"Method", "Best acc", "Target", "Speedup", "Epochs", "Throughput",
                     "W+Opt Mem"});
  for (const auto& r : rows) {
    table.add_row({r.label, util::fmt(r.best_metric, 1), util::fmt(r.target_metric, 1),
                   util::fmt_x(r.speedup_vs_gpipe),
                   r.epochs_to_target < 0 ? "-" : std::to_string(r.epochs_to_target),
                   util::fmt_x(r.throughput), util::fmt_x(r.memory_factor, 2)});
  }
  std::cout << table.to_string();
  return 0;
}
