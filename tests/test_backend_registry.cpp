// The ExecutionBackend registry suite: backend enumeration, cross-backend
// training on a tiny task, bitwise sequential/threaded parity, run-to-run
// reproducibility of the threaded Hogwild backend, the deprecated bool
// shims, and the registry's error paths (unknown names, mismatched option
// variants, single validation path).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "src/core/backend.h"
#include "src/core/task.h"
#include "src/core/trainer.h"
#include "src/hogwild/hogwild.h"
#include "src/pipeline/partition.h"
#include "src/util/cli.h"

namespace pipemare::core {
namespace {

/// Small, fast image task (the ResNet analog is dropout-free, so every
/// registered backend — including threaded_hogwild — can run it).
std::unique_ptr<ImageTask> tiny_image_task(std::uint64_t seed = 11) {
  data::ImageDatasetConfig d;
  d.classes = 4;
  d.train_size = 128;
  d.test_size = 64;
  d.image_size = 8;
  d.noise_std = 0.4;
  d.seed = seed;
  nn::ResNetConfig m;
  m.base_channels = 6;
  m.blocks_per_group = {1, 1};
  return std::make_unique<ImageTask>(d, m, "tiny-image");
}

TrainerConfig tiny_config(pipeline::Method method, int stages, int epochs) {
  TrainerConfig cfg;
  cfg.engine.method = method;
  cfg.engine.num_stages = stages;
  cfg.epochs = epochs;
  cfg.minibatch_size = 32;
  cfg.microbatch_size = 8;
  cfg.schedule = TrainerConfig::Sched::Constant;
  cfg.lr = 0.05;
  cfg.weight_decay = 1e-4;
  cfg.seed = 5;
  return cfg;
}

/// Bitwise curve equality, ignoring wall-clock seconds (never comparable
/// across runs).
void expect_curves_bitwise_equal(const TrainResult& a, const TrainResult& b,
                                 const std::string& label) {
  ASSERT_EQ(a.curve.size(), b.curve.size()) << label;
  for (std::size_t e = 0; e < a.curve.size(); ++e) {
    EXPECT_EQ(a.curve[e].epoch, b.curve[e].epoch) << label << " epoch " << e;
    EXPECT_EQ(a.curve[e].train_loss, b.curve[e].train_loss) << label << " epoch " << e;
    // A divergence record carries metric = NaN, where EXPECT_EQ would fail
    // even on identical curves; compare record kinds instead.
    ASSERT_EQ(a.curve[e].is_divergence_record(), b.curve[e].is_divergence_record())
        << label << " epoch " << e;
    if (!a.curve[e].is_divergence_record()) {
      EXPECT_EQ(a.curve[e].metric, b.curve[e].metric) << label << " epoch " << e;
    }
    EXPECT_EQ(a.curve[e].param_norm, b.curve[e].param_norm) << label << " epoch " << e;
    EXPECT_EQ(a.curve[e].base_lr, b.curve[e].base_lr) << label << " epoch " << e;
  }
  EXPECT_EQ(a.best_metric, b.best_metric) << label;
  EXPECT_EQ(a.best_epoch, b.best_epoch) << label;
  EXPECT_EQ(a.diverged, b.diverged) << label;
}

TEST(BackendRegistry, EnumeratesAllBuiltinBackends) {
  auto names = BackendRegistry::instance().names();
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
  for (const char* expected : {"hogwild", "sequential", "threaded", "threaded_hogwild",
                               "threaded_steal"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << "missing backend: " << expected;
    EXPECT_TRUE(BackendRegistry::instance().contains(expected)) << expected;
  }
  EXPECT_FALSE(BackendRegistry::instance().contains("work_stealing"));
}

TEST(BackendRegistry, UnknownBackendThrowsWithAvailableNames) {
  auto task = tiny_image_task();
  TrainerConfig cfg = tiny_config(pipeline::Method::PipeMare, 4, 1);
  cfg.backend = "warp-drive";
  try {
    train(*task, cfg);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    std::string msg = e.what();
    EXPECT_NE(msg.find("warp-drive"), std::string::npos) << msg;
    for (const auto& name : BackendRegistry::instance().names()) {
      EXPECT_NE(msg.find(name), std::string::npos)
          << "error should list '" << name << "': " << msg;
    }
  }
}

TEST(BackendRegistry, CliHelpListsEveryRegisteredBackend) {
  // The --help block is built from the registry, so a newly registered
  // backend shows up in every binary's usage text automatically.
  std::string help = backend_cli_help();
  for (const auto& name : BackendRegistry::instance().names()) {
    EXPECT_NE(help.find(name), std::string::npos)
        << "help should list '" << name << "': " << help;
  }
  EXPECT_NE(help.find("--steal="), std::string::npos) << help;
}

TEST(BackendRegistry, EveryRegisteredBackendTrainsTinyTask) {
  auto task = tiny_image_task();
  for (const auto& name : BackendRegistry::instance().names()) {
    TrainerConfig cfg = tiny_config(pipeline::Method::PipeMare, 4, 2);
    cfg.backend.name = name;
    auto res = train(*task, cfg);
    EXPECT_FALSE(res.diverged) << name;
    ASSERT_EQ(res.curve.size(), 2u) << name;
    for (const auto& rec : res.curve) {
      EXPECT_TRUE(std::isfinite(rec.train_loss)) << name;
      EXPECT_TRUE(std::isfinite(rec.metric)) << name;
      EXPECT_GT(rec.param_norm, 0.0) << name;
      EXPECT_GT(rec.seconds, 0.0) << name << ": EpochTimer must stamp seconds";
    }
  }
}

TEST(BackendRegistry, SequentialAndThreadedBitwiseParity) {
  auto task = tiny_image_task();
  for (auto method : {pipeline::Method::Sync, pipeline::Method::PipeDream,
                      pipeline::Method::PipeMare}) {
    TrainerConfig cfg = tiny_config(method, 4, 2);
    cfg.backend = "sequential";
    auto seq = train(*task, cfg);
    cfg.backend = "threaded";
    auto thr = train(*task, cfg);
    expect_curves_bitwise_equal(seq, thr, pipeline::method_name(method));
  }
}

TEST(BackendRegistry, ThreadedHogwildRunToRunReproducible) {
  auto task = tiny_image_task();
  TrainerConfig cfg = tiny_config(pipeline::Method::PipeMare, 4, 2);
  ThreadedHogwildOptions opts;
  opts.max_delay = 6.0;
  opts.workers = 3;
  cfg.backend = {"threaded_hogwild", opts};
  auto first = train(*task, cfg);
  auto second = train(*task, cfg);
  expect_curves_bitwise_equal(first, second, "threaded_hogwild run-to-run");
}

TEST(BackendRegistry, MismatchedOptionsVariantThrows) {
  auto task = tiny_image_task();
  TrainerConfig cfg = tiny_config(pipeline::Method::PipeMare, 4, 1);
  cfg.backend = {"sequential", ThreadedHogwildOptions{}};
  try {
    train(*task, cfg);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    std::string msg = e.what();
    EXPECT_NE(msg.find("sequential"), std::string::npos) << msg;
    EXPECT_NE(msg.find(std::string(ThreadedHogwildOptions::kName)), std::string::npos)
        << msg;
  }
}

TEST(BackendRegistry, ValidateIsTheSingleHogwildValidationPath) {
  // Bad Hogwild knobs must be rejected by hogwild::validate_config through
  // the registry's validate(), with no model or engine ever built.
  pipeline::EngineConfig engine;
  engine.num_stages = 4;
  engine.num_microbatches = 4;
  HogwildOptions bad;
  bad.max_delay = -1.0;
  EXPECT_THROW(
      BackendRegistry::instance().validate(BackendConfig{"hogwild", bad}, engine),
      std::invalid_argument);
  ThreadedHogwildOptions bad_workers;
  bad_workers.workers = -2;
  EXPECT_THROW(BackendRegistry::instance().validate(
                   BackendConfig{"threaded_hogwild", bad_workers}, engine),
               std::invalid_argument);
  // The same knobs pass when valid.
  BackendRegistry::instance().validate(BackendConfig{"hogwild"}, engine);
}

TEST(BackendRegistry, NonSequentialBackendsRejectRecompute) {
  auto task = tiny_image_task();
  for (const char* name : {"threaded", "hogwild", "threaded_hogwild", "threaded_steal"}) {
    TrainerConfig cfg = tiny_config(pipeline::Method::PipeMare, 4, 1);
    cfg.backend = name;
    cfg.engine.recompute_segments = 2;
    EXPECT_THROW(train(*task, cfg), std::invalid_argument) << name;
  }
}

TEST(BackendRegistry, DuplicateRegistrationThrows) {
  EXPECT_THROW(BackendRegistry::instance().register_backend(
                   "sequential",
                   [](const BackendConfig&, const pipeline::EngineConfig&,
                      const nn::Model*) {},
                   [](nn::Model, const BackendConfig&, const pipeline::EngineConfig&,
                      std::uint64_t) -> std::unique_ptr<ExecutionBackend> {
                     return nullptr;
                   }),
               std::invalid_argument);
}

TEST(BackendRegistry, CreateReportsNameAndAppliesMethod) {
  auto task = tiny_image_task();
  pipeline::EngineConfig engine;
  engine.method = pipeline::Method::PipeDream;
  engine.num_stages = 2;
  engine.num_microbatches = 4;
  for (const auto& name : BackendRegistry::instance().names()) {
    auto backend = BackendRegistry::instance().create(task->build_model(),
                                                      BackendConfig{name}, engine, 3);
    EXPECT_EQ(backend->name(), name);
    EXPECT_EQ(backend->method(), pipeline::Method::PipeDream) << name;
    EXPECT_GT(backend->weights().size(), 0u) << name;
    EXPECT_EQ(backend->stage_tau_fwd().size(), 2u) << name;
  }
}

TEST(ParseBackendCli, AppliesFlagsAndCarriesDelayAcrossFamily) {
  {
    const char* argv[] = {"prog", "--backend=threaded"};
    util::Cli cli(2, const_cast<char**>(argv));
    TrainerConfig cfg;
    parse_backend_cli(cli, cfg);
    EXPECT_EQ(cfg.backend.name, "threaded");
  }
  {
    const char* argv[] = {"prog", "--backend=threaded_hogwild", "--workers=4",
                          "--max-delay=3.5"};
    util::Cli cli(4, const_cast<char**>(argv));
    TrainerConfig cfg;
    parse_backend_cli(cli, cfg);
    const auto& opts = std::get<ThreadedHogwildOptions>(cfg.backend.options);
    EXPECT_EQ(opts.workers, 4);
    EXPECT_EQ(opts.max_delay, 3.5);
  }
  {
    // Switching hogwild -> threaded_hogwild keeps the configured max_delay.
    const char* argv[] = {"prog", "--backend=threaded_hogwild"};
    util::Cli cli(2, const_cast<char**>(argv));
    TrainerConfig cfg;
    HogwildOptions preset;
    preset.max_delay = 9.0;
    cfg.backend = {"hogwild", preset};
    parse_backend_cli(cli, cfg);
    const auto& opts = std::get<ThreadedHogwildOptions>(cfg.backend.options);
    EXPECT_EQ(opts.max_delay, 9.0);
  }
  {
    // Switching out of the hogwild family must drop the preset hogwild
    // options, or the target backend's variant check would reject them.
    const char* argv[] = {"prog", "--backend=threaded"};
    util::Cli cli(2, const_cast<char**>(argv));
    TrainerConfig cfg;
    HogwildOptions preset;
    preset.max_delay = 9.0;
    cfg.backend = {"hogwild", preset};
    parse_backend_cli(cli, cfg);
    EXPECT_EQ(cfg.backend.name, "threaded");
    EXPECT_TRUE(std::holds_alternative<std::monostate>(cfg.backend.options));
    pipeline::EngineConfig engine;
    BackendRegistry::instance().validate(cfg.backend, engine);  // must not throw
  }
  {
    const char* argv[] = {"prog", "--backend=threaded_steal", "--workers=3",
                          "--steal=forced", "--steal-log=1"};
    util::Cli cli(5, const_cast<char**>(argv));
    TrainerConfig cfg;
    parse_backend_cli(cli, cfg);
    const auto& opts = std::get<StealOptions>(cfg.backend.options);
    EXPECT_EQ(opts.workers, 3);
    EXPECT_EQ(opts.mode, sched::StealMode::Forced);
    EXPECT_TRUE(opts.record_log);
  }
  {
    // Worker counts carry between the worker-pool backends on a --backend
    // switch (threaded_hogwild preset -> threaded_steal).
    const char* argv[] = {"prog", "--backend=threaded_steal"};
    util::Cli cli(2, const_cast<char**>(argv));
    TrainerConfig cfg;
    ThreadedHogwildOptions preset;
    preset.workers = 6;
    cfg.backend = {"threaded_hogwild", preset};
    parse_backend_cli(cli, cfg);
    const auto& opts = std::get<StealOptions>(cfg.backend.options);
    EXPECT_EQ(opts.workers, 6);
    EXPECT_EQ(opts.mode, sched::StealMode::LoadAware);
  }
  {
    // --steal on a non-steal backend throws instead of being dropped.
    const char* argv[] = {"prog", "--backend=threaded", "--steal=forced"};
    util::Cli cli(3, const_cast<char**>(argv));
    TrainerConfig cfg;
    EXPECT_THROW(parse_backend_cli(cli, cfg), std::invalid_argument);
  }
  {
    // ... and --max-delay on threaded_steal throws (hogwild-family knob).
    const char* argv[] = {"prog", "--backend=threaded_steal", "--max-delay=4"};
    util::Cli cli(3, const_cast<char**>(argv));
    TrainerConfig cfg;
    EXPECT_THROW(parse_backend_cli(cli, cfg), std::invalid_argument);
  }
  {
    const char* argv[] = {"prog", "--backend=threaded_steal", "--steal=sideways"};
    util::Cli cli(3, const_cast<char**>(argv));
    TrainerConfig cfg;
    EXPECT_THROW(parse_backend_cli(cli, cfg), std::invalid_argument);
  }
  {
    const char* argv[] = {"prog", "--backend=nope"};
    util::Cli cli(2, const_cast<char**>(argv));
    TrainerConfig cfg;
    EXPECT_THROW(parse_backend_cli(cli, cfg), std::invalid_argument);
  }
  {
    // Flags the selected backend cannot honor must throw, not silently
    // drop (e.g. --workers on the single-threaded hogwild backend).
    const char* argv[] = {"prog", "--backend=hogwild", "--workers=4"};
    util::Cli cli(3, const_cast<char**>(argv));
    TrainerConfig cfg;
    EXPECT_THROW(parse_backend_cli(cli, cfg), std::invalid_argument);
  }
  {
    const char* argv[] = {"prog", "--backend=threaded", "--max-delay=4"};
    util::Cli cli(3, const_cast<char**>(argv));
    TrainerConfig cfg;
    EXPECT_THROW(parse_backend_cli(cli, cfg), std::invalid_argument);
  }
}

}  // namespace
}  // namespace pipemare::core
