#include <gtest/gtest.h>

#include <cmath>

#include "src/tensor/conv.h"
#include "src/tensor/ops.h"
#include "src/tensor/tensor.h"
#include "src/util/rng.h"

namespace pipemare::tensor {
namespace {

TEST(Tensor, ZerosAndShape) {
  Tensor t({2, 3});
  EXPECT_EQ(t.size(), 6);
  EXPECT_EQ(t.rank(), 2);
  EXPECT_EQ(t.dim(1), 3);
  for (std::int64_t i = 0; i < t.size(); ++i) EXPECT_EQ(t[i], 0.0F);
}

TEST(Tensor, AtAccessorsRowMajor) {
  Tensor t({2, 3}, {1, 2, 3, 4, 5, 6});
  EXPECT_EQ(t.at(0, 0), 1.0F);
  EXPECT_EQ(t.at(0, 2), 3.0F);
  EXPECT_EQ(t.at(1, 0), 4.0F);
  EXPECT_EQ(t.at(1, 2), 6.0F);
}

TEST(Tensor, ReshapePreservesData) {
  Tensor t({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor r = t.reshaped({3, 2});
  EXPECT_EQ(r.at(2, 1), 6.0F);
  EXPECT_THROW(t.reshape({4, 2}), std::invalid_argument);
}

TEST(Ops, MatmulSmall) {
  Tensor a({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b({3, 2}, {7, 8, 9, 10, 11, 12});
  Tensor c = matmul(a, b);
  EXPECT_FLOAT_EQ(c.at(0, 0), 58.0F);
  EXPECT_FLOAT_EQ(c.at(0, 1), 64.0F);
  EXPECT_FLOAT_EQ(c.at(1, 0), 139.0F);
  EXPECT_FLOAT_EQ(c.at(1, 1), 154.0F);
}

TEST(Ops, MatmulVariantsAgreeWithExplicitTranspose) {
  util::Rng rng(1);
  Tensor a({4, 5});
  Tensor b({4, 6});
  for (std::int64_t i = 0; i < a.size(); ++i) a[i] = static_cast<float>(rng.normal());
  for (std::int64_t i = 0; i < b.size(); ++i) b[i] = static_cast<float>(rng.normal());
  Tensor tn = matmul_tn(a, b);                 // a^T b : [5,6]
  Tensor ref = matmul(transpose2d(a), b);
  for (std::int64_t i = 0; i < tn.size(); ++i) EXPECT_NEAR(tn[i], ref[i], 1e-5F);

  Tensor c({5, 4});
  Tensor d({6, 4});
  for (std::int64_t i = 0; i < c.size(); ++i) c[i] = static_cast<float>(rng.normal());
  for (std::int64_t i = 0; i < d.size(); ++i) d[i] = static_cast<float>(rng.normal());
  Tensor nt = matmul_nt(c, d);                 // c d^T : [5,6]
  Tensor ref2 = matmul(c, transpose2d(d));
  for (std::int64_t i = 0; i < nt.size(); ++i) EXPECT_NEAR(nt[i], ref2[i], 1e-5F);
}

TEST(Ops, SoftmaxRowsSumToOne) {
  Tensor a({2, 4}, {1, 2, 3, 4, -1, 0, 1, 100});
  Tensor s = softmax_rows(a);
  for (int i = 0; i < 2; ++i) {
    float total = 0.0F;
    for (int j = 0; j < 4; ++j) {
      total += s.at(i, j);
      EXPECT_GE(s.at(i, j), 0.0F);
    }
    EXPECT_NEAR(total, 1.0F, 1e-5F);
  }
  // Large logit dominates without overflow.
  EXPECT_NEAR(s.at(1, 3), 1.0F, 1e-5F);
}

TEST(Ops, LogSoftmaxMatchesSoftmax) {
  Tensor a({1, 3}, {0.5F, -1.0F, 2.0F});
  Tensor ls = log_softmax_rows(a);
  Tensor s = softmax_rows(a);
  for (int j = 0; j < 3; ++j) {
    EXPECT_NEAR(std::exp(ls.at(0, j)), s.at(0, j), 1e-5F);
  }
}

TEST(Ops, ReluAndBackward) {
  Tensor x({1, 4}, {-1.0F, 0.0F, 2.0F, -3.0F});
  Tensor y = relu(x);
  EXPECT_FLOAT_EQ(y.at(0, 0), 0.0F);
  EXPECT_FLOAT_EQ(y.at(0, 2), 2.0F);
  Tensor dy({1, 4}, {1, 1, 1, 1});
  Tensor dx = relu_backward(dy, x);
  EXPECT_FLOAT_EQ(dx.at(0, 0), 0.0F);
  EXPECT_FLOAT_EQ(dx.at(0, 1), 0.0F);  // zero input has zero subgradient here
  EXPECT_FLOAT_EQ(dx.at(0, 2), 1.0F);
}

TEST(Conv, Im2ColIdentityKernel) {
  // 1x1 kernel with no padding: im2col is the identity layout.
  ConvSpec spec{.in_channels = 2, .out_channels = 1, .kernel = 1, .stride = 1, .padding = 0};
  Tensor x({1, 2, 2, 2}, {1, 2, 3, 4, 5, 6, 7, 8});
  Tensor cols = im2col(x, spec);
  EXPECT_EQ(cols.dim(0), 4);
  EXPECT_EQ(cols.dim(1), 2);
  EXPECT_FLOAT_EQ(cols.at(0, 0), 1.0F);
  EXPECT_FLOAT_EQ(cols.at(0, 1), 5.0F);
  EXPECT_FLOAT_EQ(cols.at(3, 0), 4.0F);
  EXPECT_FLOAT_EQ(cols.at(3, 1), 8.0F);
}

TEST(Conv, Col2ImIsAdjointOfIm2Col) {
  // <im2col(x), y> == <x, col2im(y)> for random x, y (adjoint property).
  ConvSpec spec{.in_channels = 3, .out_channels = 1, .kernel = 3, .stride = 1, .padding = 1};
  util::Rng rng(2);
  Tensor x({2, 3, 4, 4});
  for (std::int64_t i = 0; i < x.size(); ++i) x[i] = static_cast<float>(rng.normal());
  Tensor cols = im2col(x, spec);
  Tensor y(cols.shape());
  for (std::int64_t i = 0; i < y.size(); ++i) y[i] = static_cast<float>(rng.normal());
  Tensor back = col2im(y, spec, 2, 4, 4);
  double lhs = 0.0, rhs = 0.0;
  for (std::int64_t i = 0; i < cols.size(); ++i) lhs += static_cast<double>(cols[i]) * y[i];
  for (std::int64_t i = 0; i < x.size(); ++i) rhs += static_cast<double>(x[i]) * back[i];
  EXPECT_NEAR(lhs, rhs, 1e-3);
}

TEST(Conv, MaxPoolForwardBackward) {
  Tensor x({1, 1, 2, 2}, {1, 5, 3, 2});
  Tensor idx;
  Tensor y = maxpool2x2(x, idx);
  EXPECT_EQ(y.size(), 1);
  EXPECT_FLOAT_EQ(y.at(0, 0, 0, 0), 5.0F);
  Tensor dy({1, 1, 1, 1}, {2.0F});
  Tensor dx = maxpool2x2_backward(dy, idx, {1, 1, 2, 2});
  EXPECT_FLOAT_EQ(dx.at(0, 0, 0, 1), 2.0F);
  EXPECT_FLOAT_EQ(dx.at(0, 0, 0, 0), 0.0F);
}

TEST(Conv, GlobalAvgPool) {
  Tensor x({1, 2, 2, 2}, {1, 2, 3, 4, 10, 20, 30, 40});
  Tensor y = global_avg_pool(x);
  EXPECT_FLOAT_EQ(y.at(0, 0), 2.5F);
  EXPECT_FLOAT_EQ(y.at(0, 1), 25.0F);
  Tensor dy({1, 2}, {4.0F, 8.0F});
  Tensor dx = global_avg_pool_backward(dy, {1, 2, 2, 2});
  EXPECT_FLOAT_EQ(dx.at(0, 0, 1, 1), 1.0F);
  EXPECT_FLOAT_EQ(dx.at(0, 1, 0, 0), 2.0F);
}

}  // namespace
}  // namespace pipemare::tensor
