#include <gtest/gtest.h>

#include "src/core/delayed_sgd.h"
#include "src/core/experiments.h"
#include "src/core/task.h"
#include "src/core/trainer.h"
#include "src/hogwild/hogwild.h"
#include "src/pipeline/partition.h"

namespace pipemare::core {
namespace {

/// Small, fast image task for trainer tests.
std::unique_ptr<ImageTask> tiny_image_task(std::uint64_t seed = 11) {
  data::ImageDatasetConfig d;
  d.classes = 4;
  d.train_size = 256;
  d.test_size = 96;
  d.image_size = 8;
  d.noise_std = 0.4;
  d.seed = seed;
  nn::ResNetConfig m;
  m.base_channels = 6;
  m.blocks_per_group = {1, 1};
  return std::make_unique<ImageTask>(d, m, "tiny-image");
}

TrainerConfig tiny_config(pipeline::Method method, int stages, int epochs) {
  TrainerConfig cfg;
  cfg.engine.method = method;
  cfg.engine.num_stages = stages;
  cfg.epochs = epochs;
  cfg.minibatch_size = 32;
  cfg.microbatch_size = 8;
  cfg.schedule = TrainerConfig::Sched::Constant;
  cfg.lr = 0.05;
  cfg.weight_decay = 1e-4;
  cfg.seed = 5;
  return cfg;
}

TEST(Trainer, SyncLearnsTinyImageTask) {
  auto task = tiny_image_task();
  auto cfg = tiny_config(pipeline::Method::Sync, 4, 5);
  auto result = train(*task, cfg);
  ASSERT_FALSE(result.diverged);
  ASSERT_EQ(result.curve.size(), 5u);
  // Chance level is 25%; a learnable task should be well beyond it.
  EXPECT_GT(result.best_metric, 60.0);
}

TEST(Trainer, PipeMareWithT1T2TracksSync) {
  auto task = tiny_image_task();
  int stages = pipeline::max_stages(task->build_model(), false);
  auto sync_cfg = tiny_config(pipeline::Method::Sync, stages, 6);
  auto sync = train(*task, sync_cfg);

  auto pm_cfg = tiny_config(pipeline::Method::PipeMare, stages, 6);
  pm_cfg.t1 = true;
  pm_cfg.t1_annealing_steps = 24;
  pm_cfg.engine.discrepancy_correction = true;
  pm_cfg.engine.decay_d = 0.5;
  auto pm = train(*task, pm_cfg);
  ASSERT_FALSE(pm.diverged);
  EXPECT_GT(pm.best_metric, sync.best_metric - 15.0);
  EXPECT_GT(pm.best_metric, 50.0);
}

TEST(Trainer, NaiveAsyncWorseThanT1AtAggressiveLr) {
  // The Section 3.1 phenomenon: at a step size the synchronous baseline
  // tolerates, naive asynchronous training degrades or diverges, and T1
  // recovers most of the loss.
  auto task = tiny_image_task(13);
  int stages = pipeline::max_stages(task->build_model(), false);
  auto naive_cfg = tiny_config(pipeline::Method::PipeMare, stages, 4);
  naive_cfg.minibatch_size = 32;
  naive_cfg.microbatch_size = 16;  // N=2: large per-step delay (2P-1)/2
  naive_cfg.lr = 0.2;
  auto naive = train(*task, naive_cfg);

  auto t1_cfg = naive_cfg;
  t1_cfg.t1 = true;
  t1_cfg.t1_annealing_steps = 1000;  // stay in the rescaled regime
  auto with_t1 = train(*task, t1_cfg);

  auto sync_cfg = naive_cfg;
  sync_cfg.engine.method = pipeline::Method::Sync;
  auto sync = train(*task, sync_cfg);

  ASSERT_FALSE(sync.diverged);
  bool naive_bad = naive.diverged || naive.best_metric < sync.best_metric - 10.0;
  EXPECT_TRUE(naive_bad) << "naive=" << naive.best_metric
                         << " sync=" << sync.best_metric;
  EXPECT_FALSE(with_t1.diverged);
  EXPECT_GT(with_t1.best_metric + 1e-9, naive.diverged ? 0.0 : naive.best_metric);
}

TEST(Trainer, WarmupEpochsMatchSyncPrefix) {
  // With T3, the first warmup epochs must be bit-identical to a pure
  // synchronous run with the same seed.
  auto task = tiny_image_task(17);
  auto pm_cfg = tiny_config(pipeline::Method::PipeMare, 6, 3);
  pm_cfg.warmup_epochs = 2;
  auto pm = train(*task, pm_cfg);
  auto sync_cfg = tiny_config(pipeline::Method::Sync, 6, 3);
  auto sync = train(*task, sync_cfg);
  ASSERT_GE(pm.curve.size(), 2u);
  ASSERT_GE(sync.curve.size(), 2u);
  for (int e = 0; e < 2; ++e) {
    EXPECT_NEAR(pm.curve[static_cast<std::size_t>(e)].train_loss,
                sync.curve[static_cast<std::size_t>(e)].train_loss, 1e-9);
    EXPECT_NEAR(pm.curve[static_cast<std::size_t>(e)].metric,
                sync.curve[static_cast<std::size_t>(e)].metric, 1e-9);
  }
}

/// Records every train_loop hook invocation.
struct CountingObserver final : StepObserver {
  int steps = 0;
  int epochs = 0;
  std::vector<std::pair<pipeline::Method, pipeline::Method>> switches;
  std::vector<int> switch_epochs;
  std::vector<double> seconds;
  StepInfo last_step;

  void on_step(const StepInfo& info) override {
    ++steps;
    last_step = info;
  }
  void on_epoch(EpochRecord& rec) override {
    ++epochs;
    seconds.push_back(rec.seconds);
  }
  void on_method_switch(pipeline::Method from, pipeline::Method to,
                        int epoch) override {
    switches.emplace_back(from, to);
    switch_epochs.push_back(epoch);
  }
};

TEST(Trainer, StepObserverSeesStepsEpochsAndMethodSwitches) {
  auto task = tiny_image_task();
  auto cfg = tiny_config(pipeline::Method::PipeMare, 4, 3);
  cfg.warmup_epochs = 1;  // T3: Sync engage at epoch 0, async switch at epoch 2
  CountingObserver obs;
  StepObserver* observers[] = {&obs};
  auto result = train(*task, cfg, observers);
  ASSERT_FALSE(result.diverged);

  int steps_per_epoch = 256 / cfg.minibatch_size;
  EXPECT_EQ(obs.steps, steps_per_epoch * 3);
  EXPECT_EQ(obs.epochs, 3);
  EXPECT_EQ(obs.last_step.epoch, 3);
  EXPECT_EQ(obs.last_step.step, steps_per_epoch * 3 - 1);
  EXPECT_TRUE(obs.last_step.async);
  EXPECT_TRUE(std::isfinite(obs.last_step.loss));

  ASSERT_EQ(obs.switches.size(), 2u);
  EXPECT_EQ(obs.switches[0].second, pipeline::Method::Sync);
  EXPECT_EQ(obs.switch_epochs[0], 0);
  EXPECT_EQ(obs.switches[1].first, pipeline::Method::Sync);
  EXPECT_EQ(obs.switches[1].second, pipeline::Method::PipeMare);
  EXPECT_EQ(obs.switch_epochs[1], 2);

  // The built-in EpochTimer runs ahead of user observers, so every record
  // the observer saw (and the returned curve) carries wall-clock seconds.
  ASSERT_EQ(obs.seconds.size(), result.curve.size());
  for (std::size_t e = 0; e < result.curve.size(); ++e) {
    EXPECT_GT(obs.seconds[e], 0.0);
    EXPECT_EQ(obs.seconds[e], result.curve[e].seconds);
  }
}

TEST(Trainer, MidEpochDivergenceEmitsFinalEpochRecord) {
  // Force divergence on the first minibatch of epoch 1 by declaring any
  // loss divergent; the curve must still end with a divergence record so
  // Figure 7-style probes see the blow-up point.
  auto task = tiny_image_task();
  auto cfg = tiny_config(pipeline::Method::PipeMare, 4, 3);
  cfg.divergence_loss = 1e-12;
  auto result = train(*task, cfg);
  ASSERT_TRUE(result.diverged);
  ASSERT_EQ(result.curve.size(), 1u);
  const EpochRecord& last = result.curve.back();
  EXPECT_TRUE(last.is_divergence_record());
  EXPECT_EQ(last.epoch, 1);
  EXPECT_GT(last.train_loss, cfg.divergence_loss);  // the observed loss
  EXPECT_GT(last.param_norm, 0.0);
  // No finished epoch: the divergence record must not affect best_metric
  // or the completed-epoch count.
  EXPECT_EQ(result.epochs_completed(), 0);
  EXPECT_EQ(result.best_epoch, -1);
  EXPECT_EQ(result.best_metric, 0.0);
}

TEST(Trainer, EpochsToTarget) {
  TrainResult r;
  r.curve = {{1, 1.0, 50.0, 0.0, 0.0}, {2, 0.5, 70.0, 0.0, 0.0}, {3, 0.3, 70.5, 0.0, 0.0}};
  EXPECT_EQ(r.epochs_to_target(60.0), 2);
  EXPECT_EQ(r.epochs_to_target(90.0), -1);
}

TEST(Experiments, CompareMethodsProducesTableRows) {
  auto task = tiny_image_task(19);
  auto cfg = tiny_config(pipeline::Method::PipeMare, 6, 3);
  cfg.t1 = true;
  cfg.t1_annealing_steps = 16;
  cfg.engine.discrepancy_correction = true;
  auto rows = compare_methods(*task, cfg, 5.0);
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0].label, "GPipe");
  EXPECT_EQ(rows[1].label, "PipeDream");
  EXPECT_EQ(rows[2].label, "PipeMare");
  // GPipe: reference memory 1.0X, budget throughput 0.3.
  EXPECT_NEAR(rows[0].memory_factor, 1.0, 1e-9);
  EXPECT_NEAR(rows[0].throughput, 0.3, 1e-9);
  // PipeDream: stash makes it the memory-hungry method.
  EXPECT_GT(rows[1].memory_factor, rows[2].memory_factor);
  // PipeMare with T2: 4/3 with SGD momentum.
  EXPECT_NEAR(rows[2].memory_factor, 4.0 / 3.0, 1e-9);
  // Speedup of the reference against itself is 1.
  EXPECT_NEAR(rows[0].speedup_vs_gpipe, 1.0, 1e-9);
  // Target = best - gap.
  double best = std::max({rows[0].best_metric, rows[1].best_metric, rows[2].best_metric});
  EXPECT_NEAR(rows[0].target_metric, best - 5.0, 1e-9);
}

TEST(Experiments, AblationStudyLabelsAndMemory) {
  auto task = tiny_image_task(23);
  auto cfg = tiny_config(pipeline::Method::PipeMare, 6, 2);
  std::vector<AblationSpec> specs = {
      {"T1 Only", true, false, 0},
      {"T2 Only", false, true, 0},
      {"T1+T2", true, true, 0},
  };
  auto rows = ablation_study(*task, cfg, specs, 2.0);
  ASSERT_EQ(rows.size(), 4u);  // GPipe reference + 3 variants
  EXPECT_NEAR(rows[1].memory_factor, 1.0, 1e-9);        // T1 only: no extra memory
  EXPECT_NEAR(rows[2].memory_factor, 4.0 / 3.0, 1e-9);  // T2: +delta buffer
}

TEST(DelayedSgd, RegressionStableBelowLemma1Threshold) {
  data::RegressionConfig rc;
  rc.size = 256;
  rc.seed = 3;
  RegressionTask task(rc);
  double lambda = task.dataset().lambda_max();
  int tau = 8;
  double alpha_star = 2.0 / lambda * std::sin(std::numbers::pi / (4.0 * tau + 2.0));

  DelayedSgdConfig cfg;
  cfg.tau_fwd = cfg.tau_bkwd = tau;
  cfg.iterations = 4000;
  cfg.minibatch_size = 32;
  cfg.alpha = 0.5 * alpha_star;
  auto stable = run_delayed_sgd(task, cfg);
  EXPECT_FALSE(stable.diverged);

  cfg.alpha = 4.0 * alpha_star;
  auto unstable = run_delayed_sgd(task, cfg);
  EXPECT_TRUE(unstable.diverged || unstable.final_loss > 100.0 * stable.final_loss);
}

TEST(Hogwild, EngineTrainsTinyTask) {
  auto task = tiny_image_task(29);
  nn::Model model = task->build_model();
  hogwild::HogwildConfig hw;
  hw.num_stages = pipeline::max_stages(model, false);
  hw.num_microbatches = 4;
  hw.max_delay = 8.0;
  hogwild::HogwildEngine engine(model, hw, 7);

  TrainerConfig cfg = tiny_config(pipeline::Method::PipeMare, hw.num_stages, 4);
  cfg.t1 = true;
  cfg.t1_annealing_steps = 24;
  cfg.lr = 0.03;
  auto result = train_loop(*task, engine, cfg);
  ASSERT_FALSE(result.diverged);
  EXPECT_GT(result.best_metric, 45.0);
}

TEST(Hogwild, DefaultDelayProfileFollowsPipeline) {
  auto task = tiny_image_task(31);
  nn::Model model = task->build_model();
  hogwild::HogwildConfig hw;
  hw.num_stages = 4;
  hw.num_microbatches = 2;
  hogwild::HogwildEngine engine(model, hw, 7);
  auto tau = engine.stage_tau_fwd();
  ASSERT_EQ(tau.size(), 4u);
  EXPECT_DOUBLE_EQ(tau[0], 7.0 / 2.0);  // (2(P-1)+1)/N
  EXPECT_DOUBLE_EQ(tau[3], 1.0 / 2.0);
  for (std::size_t i = 1; i < tau.size(); ++i) EXPECT_LT(tau[i], tau[i - 1]);
}

}  // namespace
}  // namespace pipemare::core
