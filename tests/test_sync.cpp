// Tier-1 suite for the annotated synchronization wrappers (src/util/sync.h):
// the wrappers must behave exactly like the std types they hold — mutual
// exclusion, cross-thread try_lock, condition-variable wakeups (including
// the adopt/release ownership handoff inside CondVar::wait), MutexLock RAII
// on both normal and exceptional exit — and cost nothing: same size as the
// wrapped std types (asserted at compile time here, timed against the raw
// std types in bench/micro_sync.cpp).
#include <gtest/gtest.h>

#include <condition_variable>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "src/util/sync.h"

namespace pipemare::util {
namespace {

// Zero-overhead claims: the wrappers add no state to the std types. (Clang's
// attributes are compile-time only; under GCC they expand to nothing.)
static_assert(sizeof(Mutex) == sizeof(std::mutex));
static_assert(sizeof(CondVar) == sizeof(std::condition_variable));
static_assert(sizeof(MutexLock) == sizeof(std::lock_guard<std::mutex>));

TEST(SyncMutex, MutualExclusionAcrossThreads) {
  Mutex m;
  long counter = 0;
  constexpr int kThreads = 4;
  constexpr int kIters = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        MutexLock lock(m);
        ++counter;  // unprotected long increments would tear/lose updates
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter, static_cast<long>(kThreads) * kIters);
}

TEST(SyncMutex, TryLockReportsContention) {
  Mutex m;
  m.lock();
  // Another thread must see the mutex as busy (same-thread try_lock on a
  // held std::mutex is UB, so probe cross-thread).
  bool acquired = true;
  std::thread probe([&] {
    if (m.try_lock()) {
      m.unlock();
      acquired = true;
    } else {
      acquired = false;
    }
  });
  probe.join();
  EXPECT_FALSE(acquired);
  m.unlock();
  std::thread probe2([&] {
    if (m.try_lock()) {
      m.unlock();
      acquired = true;
    } else {
      acquired = false;
    }
  });
  probe2.join();
  EXPECT_TRUE(acquired);
}

TEST(SyncCondVar, ProducerConsumerHandshake) {
  Mutex m;
  CondVar ready;
  CondVar space;
  bool full = false;
  int slot = 0;
  long sum = 0;
  constexpr int kItems = 1000;

  std::thread consumer([&] {
    for (int i = 0; i < kItems; ++i) {
      MutexLock lock(m);
      while (!full) ready.wait(m);
      sum += slot;
      full = false;
      space.notify_one();
    }
  });
  for (int i = 1; i <= kItems; ++i) {
    {
      MutexLock lock(m);
      while (full) space.wait(m);
      slot = i;
      full = true;
    }
    ready.notify_one();
  }
  consumer.join();
  EXPECT_EQ(sum, static_cast<long>(kItems) * (kItems + 1) / 2);
}

TEST(SyncCondVar, WaitReacquiresBeforeReturning) {
  // After wait() returns, the caller must still own the mutex (the
  // adopt_lock/release dance inside wait must not leak ownership): mutate
  // guarded state right after waking and check another thread sees the
  // mutex held meanwhile.
  Mutex m;
  CondVar cv;
  bool woken = false;
  bool observed_locked = false;

  std::thread waiter([&] {
    MutexLock lock(m);
    while (!woken) cv.wait(m);
    // Holding m here; the probe thread's try_lock must fail.
    std::thread probe([&] {
      if (m.try_lock()) {
        m.unlock();
        observed_locked = false;
      } else {
        observed_locked = true;
      }
    });
    probe.join();
  });
  {
    MutexLock lock(m);
    woken = true;
  }
  cv.notify_one();
  waiter.join();
  EXPECT_TRUE(observed_locked);
}

TEST(SyncMutexLock, ReleasesOnException) {
  Mutex m;
  try {
    MutexLock lock(m);
    throw std::runtime_error("unwind");
  } catch (const std::runtime_error&) {
  }
  // If the RAII release leaked, this cross-thread probe would see it held.
  bool acquired = false;
  std::thread probe([&] {
    if (m.try_lock()) {
      m.unlock();
      acquired = true;
    }
  });
  probe.join();
  EXPECT_TRUE(acquired);
}

}  // namespace
}  // namespace pipemare::util
