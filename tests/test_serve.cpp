// The serving-runtime suite (tier1): nn/serialize's versioned weight
// format (v1 header round trip, transparent v0 reads, corrupt-file
// rejection), serve::ModelCheckpoint (shape-digest validation),
// serve::RequestQueue (bounded admission, FIFO, deadline expiry — the
// contracts the TSan job stresses), serve::BatchScheduler decision logic,
// and serve::PipelineServer — including the acceptance-criteria invariant:
// served outputs bitwise-equal to the sequential model.forward across
// worker counts, stage counts, batch sizes and both batch policies.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "src/core/stage_load.h"
#include "src/nn/activations.h"
#include "src/nn/linear.h"
#include "src/nn/model.h"
#include "src/nn/serialize.h"
#include "src/nn/transformer.h"
#include "src/sched/worker_pool.h"
#include "src/serve/batch_scheduler.h"
#include "src/serve/checkpoint.h"
#include "src/serve/pipeline_server.h"
#include "src/serve/request_queue.h"
#include "src/serve/serve_cli.h"
#include "src/util/cli.h"
#include "src/util/rng.h"

namespace pipemare::serve {
namespace {

using tensor::Tensor;

std::string temp_path(const std::string& name) {
  return testing::TempDir() + "pipemare_serve_" + name;
}

nn::Model make_mlp(int width, int hidden_layers, int classes) {
  nn::Model model;
  model.add(std::make_unique<nn::Linear>(width, width, /*relu_init=*/true));
  model.add(std::make_unique<nn::ReLU>());
  for (int i = 0; i < hidden_layers; ++i) {
    model.add(std::make_unique<nn::Linear>(width, width, /*relu_init=*/true));
    model.add(std::make_unique<nn::ReLU>());
  }
  model.add(std::make_unique<nn::Linear>(width, classes));
  return model;
}

std::vector<float> init_weights(const nn::Model& model, std::uint64_t seed) {
  std::vector<float> w(static_cast<std::size_t>(model.param_count()));
  util::Rng rng(seed);
  model.init_params(w, rng);
  return w;
}

ModelCheckpoint checkpoint_for(const nn::Model& model, std::vector<float> weights) {
  ModelCheckpoint ckpt;
  ckpt.digest = shape_digest(model);
  ckpt.weights = std::move(weights);
  return ckpt;
}

Tensor input_rows(int rows, int width, std::uint64_t seed) {
  Tensor x({rows, width});
  util::Rng rng(seed);
  for (std::int64_t i = 0; i < x.size(); ++i) {
    x[i] = static_cast<float>(rng.normal()) * 0.5f;
  }
  return x;
}

Tensor sequential_forward(const nn::Model& model, std::span<const float> w,
                          const Tensor& x, const Tensor* aux = nullptr) {
  nn::Flow f;
  f.x = x;
  if (aux != nullptr) f.aux = *aux;
  auto caches = model.make_caches();
  return model.forward(std::move(f), w, caches).x;
}

void expect_bitwise_equal(const Tensor& a, const Tensor& b, const std::string& what) {
  ASSERT_EQ(a.shape(), b.shape()) << what;
  for (std::int64_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i], b[i]) << what << " diverges at element " << i;
  }
}

/// Parameter-free module whose forward throws when the first input element
/// equals the poison value — the worker-side error-path probe.
class PoisonModule : public nn::Module {
 public:
  static constexpr float kPoison = 1e6f;

  std::string name() const override { return "Poison"; }
  nn::Flow forward(const nn::Flow& in, std::span<const float> /*w*/,
                   nn::Cache& /*cache*/) const override {
    if (in.x.size() > 0 && in.x[0] == kPoison) {
      throw std::runtime_error("poisoned request");
    }
    return in;
  }
  nn::Flow backward(const nn::Flow& dout, std::span<const float> /*w*/,
                    const nn::Cache& /*cache*/,
                    std::span<float> /*grad*/) const override {
    return dout;
  }
};

util::Cli make_cli(std::vector<std::string> args) {
  args.insert(args.begin(), "test");
  std::vector<char*> argv;
  argv.reserve(args.size());
  for (auto& a : args) argv.push_back(a.data());
  return util::Cli(static_cast<int>(argv.size()), argv.data());
}

// ---------------------------------------------------------------------------
// nn/serialize: v1 header, v0 compatibility, corruption rejection
// ---------------------------------------------------------------------------

TEST(Serialize, V1RoundTripPreservesBits) {
  const std::string path = temp_path("v1_roundtrip.bin");
  std::vector<float> w = {0.0f, -1.5f, 3.25e-7f, 1e20f, -0.0f};
  nn::save_weights(path, w);
  auto r = nn::load_weights(path);
  ASSERT_EQ(r.size(), w.size());
  for (std::size_t i = 0; i < w.size(); ++i) EXPECT_EQ(r[i], w[i]);
  std::remove(path.c_str());
}

TEST(Serialize, ReadsHeaderlessV0Files) {
  const std::string path = temp_path("v0_compat.bin");
  std::vector<float> w = {1.0f, 2.0f, -3.0f};
  {
    // The original headerless format: "PMWT" + uint64 count + payload.
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write("PMWT", 4);
    std::uint64_t count = w.size();
    out.write(reinterpret_cast<const char*>(&count), sizeof(count));
    out.write(reinterpret_cast<const char*>(w.data()),
              static_cast<std::streamsize>(w.size() * sizeof(float)));
  }
  auto r = nn::load_weights(path);
  ASSERT_EQ(r.size(), w.size());
  for (std::size_t i = 0; i < w.size(); ++i) EXPECT_EQ(r[i], w[i]);
  std::remove(path.c_str());
}

TEST(Serialize, RejectsBadMagic) {
  const std::string path = temp_path("bad_magic.bin");
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write("NOPE", 4);
    std::uint64_t count = 0;
    out.write(reinterpret_cast<const char*>(&count), sizeof(count));
  }
  EXPECT_THROW(nn::load_weights(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(Serialize, RejectsUnsupportedVersion) {
  const std::string path = temp_path("future_version.bin");
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write("PMWV", 4);
    std::uint32_t version = nn::kWeightsFormatVersion + 1;
    std::uint64_t count = 0, checksum = 0;
    out.write(reinterpret_cast<const char*>(&version), sizeof(version));
    out.write(reinterpret_cast<const char*>(&count), sizeof(count));
    out.write(reinterpret_cast<const char*>(&checksum), sizeof(checksum));
  }
  EXPECT_THROW(nn::load_weights(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(Serialize, RejectsTruncatedPayload) {
  const std::string path = temp_path("truncated.bin");
  std::vector<float> w(16, 1.0f);
  nn::save_weights(path, w);
  {
    // Chop the last 8 payload bytes off.
    std::ifstream in(path, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    bytes.resize(bytes.size() - 8);
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  EXPECT_THROW(nn::load_weights(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(Serialize, RejectsChecksumMismatch) {
  const std::string path = temp_path("bitrot.bin");
  std::vector<float> w(16, 1.0f);
  nn::save_weights(path, w);
  {
    // Flip one bit in the payload; the count and sizes stay plausible.
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(-1, std::ios::end);
    char last = 0;
    f.seekg(-1, std::ios::end);
    f.get(last);
    f.seekp(-1, std::ios::end);
    f.put(static_cast<char>(last ^ 0x40));
  }
  try {
    nn::load_weights(path);
    FAIL() << "bit-rotted file loaded";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("checksum"), std::string::npos);
  }
  std::remove(path.c_str());
}

TEST(Serialize, Fnv1aChainsAndDiscriminates) {
  const char a[] = "abc";
  const char b[] = "abd";
  EXPECT_NE(nn::fnv1a(a, 3), nn::fnv1a(b, 3));
  // Chaining: hash(ab|c) via seed == hash(abc) in one call.
  auto h2 = nn::fnv1a(a + 2, 1, nn::fnv1a(a, 2));
  EXPECT_EQ(h2, nn::fnv1a(a, 3));
}

// ---------------------------------------------------------------------------
// serve::ModelCheckpoint
// ---------------------------------------------------------------------------

TEST(Checkpoint, SaveLoadValidateRoundTrip) {
  const std::string path = temp_path("ckpt_roundtrip.bin");
  nn::Model model = make_mlp(8, 1, 4);
  auto w = init_weights(model, 7);
  save_checkpoint(path, model, w);

  ModelCheckpoint ckpt = load_checkpoint(path);
  EXPECT_EQ(ckpt.format_version, kCheckpointFormatVersion);
  EXPECT_EQ(ckpt.digest, shape_digest(model));
  ASSERT_EQ(ckpt.weights.size(), w.size());
  for (std::size_t i = 0; i < w.size(); ++i) EXPECT_EQ(ckpt.weights[i], w[i]);
  EXPECT_NO_THROW(ckpt.validate_against(model));
  std::remove(path.c_str());
}

TEST(Checkpoint, DigestMismatchNamesTheProblem) {
  nn::Model trained = make_mlp(8, 1, 4);
  nn::Model served = make_mlp(8, 2, 4);  // one more hidden layer
  EXPECT_NE(shape_digest(trained), shape_digest(served));

  ModelCheckpoint ckpt = checkpoint_for(trained, init_weights(trained, 7));
  try {
    ckpt.validate_against(served);
    FAIL() << "digest mismatch accepted";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("digest"), std::string::npos);
  }
}

TEST(Checkpoint, ParamCountMismatchRejected) {
  nn::Model model = make_mlp(8, 1, 4);
  ModelCheckpoint ckpt = checkpoint_for(model, init_weights(model, 7));
  ckpt.weights.pop_back();
  EXPECT_THROW(ckpt.validate_against(model), std::runtime_error);
}

TEST(Checkpoint, SaveRejectsWrongSizedWeights) {
  nn::Model model = make_mlp(8, 1, 4);
  std::vector<float> w(static_cast<std::size_t>(model.param_count()) - 1, 0.0f);
  EXPECT_THROW(save_checkpoint(temp_path("never.bin"), model, w),
               std::invalid_argument);
}

TEST(Checkpoint, LoadRejectsForeignFile) {
  const std::string path = temp_path("ckpt_foreign.bin");
  // A bare weights file is not a checkpoint container.
  nn::save_weights(path, std::vector<float>{1.0f, 2.0f});
  EXPECT_THROW(load_checkpoint(path), std::runtime_error);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// serve::Ticket / serve::RequestQueue
// ---------------------------------------------------------------------------

TEST(Ticket, CompletesExactlyOnceAndWakesWaiter) {
  auto ticket = std::make_shared<Ticket>();
  EXPECT_FALSE(ticket->done());

  std::thread completer([ticket] {
    Response r;
    r.status = Status::Ok;
    r.batch_requests = 3;
    EXPECT_TRUE(ticket->complete(std::move(r)));
    Response again;
    again.status = Status::Error;
    EXPECT_FALSE(ticket->complete(std::move(again)));  // second completion ignored
  });

  const Response& r = ticket->wait();
  EXPECT_EQ(r.status, Status::Ok);
  EXPECT_EQ(r.batch_requests, 3);
  EXPECT_TRUE(ticket->done());
  completer.join();
  // The first completion stuck.
  EXPECT_EQ(ticket->wait().status, Status::Ok);
}

Request make_request(std::uint64_t id,
                     Clock::time_point deadline = Clock::time_point::max()) {
  Request r;
  r.id = id;
  r.input.x = Tensor({1, 2});
  r.enqueue_time = Clock::now();
  r.deadline = deadline;
  return r;
}

TEST(RequestQueue, BoundedFifoAndClose) {
  RequestQueue q(2);
  EXPECT_EQ(q.capacity(), 2);
  EXPECT_EQ(q.try_push(make_request(1)), RequestQueue::Admit::Ok);
  EXPECT_EQ(q.try_push(make_request(2)), RequestQueue::Admit::Ok);
  EXPECT_EQ(q.try_push(make_request(3)), RequestQueue::Admit::Full);
  EXPECT_EQ(q.size(), 2u);

  Request out;
  auto always = [](const Request&) { return true; };
  ASSERT_TRUE(q.pop_if(always, out));
  EXPECT_EQ(out.id, 1u);  // FIFO
  q.close();
  EXPECT_TRUE(q.closed());
  EXPECT_EQ(q.try_push(make_request(4)), RequestQueue::Admit::Closed);
  ASSERT_TRUE(q.pop_if(always, out));  // queued requests stay poppable
  EXPECT_EQ(out.id, 2u);
  EXPECT_FALSE(q.pop_if(always, out));
}

TEST(RequestQueue, PopIfRespectsPredicate) {
  RequestQueue q(4);
  q.try_push(make_request(10));
  Request out;
  EXPECT_FALSE(q.pop_if([](const Request& r) { return r.id != 10; }, out));
  EXPECT_EQ(q.size(), 1u);  // rejected front stays queued
  EXPECT_TRUE(q.pop_if([](const Request& r) { return r.id == 10; }, out));
}

TEST(RequestQueue, ExpireRemovesOnlyDueDeadlinesPreservingOrder) {
  RequestQueue q(8);
  const auto now = Clock::now();
  q.try_push(make_request(1));                                       // no deadline
  q.try_push(make_request(2, now - std::chrono::milliseconds(1)));   // expired
  q.try_push(make_request(3, now + std::chrono::seconds(60)));       // future
  q.try_push(make_request(4, now - std::chrono::milliseconds(5)));   // expired

  std::vector<Request> expired;
  EXPECT_EQ(q.expire_before(now, expired), 2);
  ASSERT_EQ(expired.size(), 2u);
  EXPECT_EQ(expired[0].id, 2u);
  EXPECT_EQ(expired[1].id, 4u);
  EXPECT_EQ(q.size(), 2u);

  Request out;
  auto always = [](const Request&) { return true; };
  ASSERT_TRUE(q.pop_if(always, out));
  EXPECT_EQ(out.id, 1u);  // survivors keep their order
  ASSERT_TRUE(q.pop_if(always, out));
  EXPECT_EQ(out.id, 3u);

  Clock::time_point dl;
  EXPECT_FALSE(q.earliest_deadline(dl));
}

TEST(RequestQueue, EarliestDeadlineIgnoresUnbounded) {
  RequestQueue q(4);
  const auto now = Clock::now();
  q.try_push(make_request(1));
  Clock::time_point dl;
  EXPECT_FALSE(q.earliest_deadline(dl));  // max() = no deadline
  q.try_push(make_request(2, now + std::chrono::seconds(5)));
  q.try_push(make_request(3, now + std::chrono::seconds(2)));
  ASSERT_TRUE(q.earliest_deadline(dl));
  EXPECT_EQ(dl, now + std::chrono::seconds(2));
}

TEST(RequestQueue, ConcurrentProducersNeverExceedCapacity) {
  constexpr int kCapacity = 16;
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 64;
  RequestQueue q(kCapacity);

  std::atomic<int> accepted{0};
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, &accepted, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        auto r = make_request(static_cast<std::uint64_t>(p * kPerProducer + i));
        if (q.try_push(std::move(r)) == RequestQueue::Admit::Ok) {
          accepted.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : producers) t.join();
  EXPECT_EQ(accepted.load(), kCapacity);  // bounded: exactly capacity admitted
  EXPECT_EQ(q.size(), static_cast<std::size_t>(kCapacity));
}

// ---------------------------------------------------------------------------
// serve::BatchScheduler
// ---------------------------------------------------------------------------

TEST(BatchScheduler, ContinuousDispatchesWhateverIsQueued) {
  BatchScheduler s({BatchPolicy::Continuous, 4, 50.0});
  const auto now = Clock::now();
  EXPECT_EQ(s.decide(0, now, now, false).admit, 0);
  EXPECT_EQ(s.decide(1, now, now, false).admit, 1);  // partial, immediately
  EXPECT_EQ(s.decide(3, now, now, false).admit, 3);
  EXPECT_EQ(s.decide(9, now, now, false).admit, 4);  // capped at max_batch
}

TEST(BatchScheduler, FixedWaitsThenFlushesPartialBatches) {
  BatchScheduler s({BatchPolicy::Fixed, 4, 50.0});
  const auto t0 = Clock::now();
  // Partial and young: keep waiting, recheck = time to the flush deadline.
  auto d = s.decide(2, t0, t0 + std::chrono::milliseconds(10), false);
  EXPECT_EQ(d.admit, 0);
  EXPECT_EQ(d.recheck, std::chrono::milliseconds(40));
  // Full: dispatch immediately (and never more than max_batch).
  EXPECT_EQ(s.decide(4, t0, t0, false).admit, 4);
  EXPECT_EQ(s.decide(7, t0, t0, false).admit, 4);
  // Oldest waited past max_wait: flush the partial batch.
  EXPECT_EQ(s.decide(2, t0, t0 + std::chrono::milliseconds(51), false).admit, 2);
  // Draining (server stopping): flush regardless of age.
  EXPECT_EQ(s.decide(2, t0, t0, true).admit, 2);
}

TEST(BatchScheduler, PolicyParsingAndValidation) {
  EXPECT_EQ(parse_batch_policy("fixed"), BatchPolicy::Fixed);
  EXPECT_EQ(parse_batch_policy("continuous"), BatchPolicy::Continuous);
  EXPECT_THROW(parse_batch_policy("adaptive"), std::invalid_argument);
  EXPECT_EQ(batch_policy_name(BatchPolicy::Fixed), "fixed");
  EXPECT_EQ(batch_policy_name(BatchPolicy::Continuous), "continuous");
  EXPECT_THROW(validate_batch_config({BatchPolicy::Fixed, 0, 5.0}),
               std::invalid_argument);
  EXPECT_THROW(validate_batch_config({BatchPolicy::Fixed, 4, -1.0}),
               std::invalid_argument);
}

TEST(BatchAssembly, CompatibilityConcatAndSplit) {
  nn::Flow a, b, c, d;
  a.x = input_rows(2, 4, 1);
  b.x = input_rows(3, 4, 2);
  c.x = input_rows(1, 5, 3);  // different row width
  d.x = input_rows(1, 4, 4);
  d.aux = input_rows(1, 2, 5);  // aux where a has none
  EXPECT_TRUE(batch_compatible(a, b));
  EXPECT_FALSE(batch_compatible(a, c));
  EXPECT_FALSE(batch_compatible(a, d));

  std::vector<Request> reqs(2);
  reqs[0].input = a;
  reqs[1].input = b;
  nn::Flow joined = concat_inputs(reqs);
  EXPECT_FALSE(joined.training);
  ASSERT_EQ(joined.x.shape(), (std::vector<int>{5, 4}));
  for (std::int64_t i = 0; i < a.x.size(); ++i) EXPECT_EQ(joined.x[i], a.x[i]);
  for (std::int64_t i = 0; i < b.x.size(); ++i) {
    EXPECT_EQ(joined.x[a.x.size() + i], b.x[i]);
  }

  const std::vector<int> rows = {2, 3};
  auto parts = split_output_rows(joined.x, rows);
  ASSERT_EQ(parts.size(), 2u);
  expect_bitwise_equal(parts[0], a.x, "split row block 0");
  expect_bitwise_equal(parts[1], b.x, "split row block 1");

  const std::vector<int> bad_rows = {2, 2};
  EXPECT_THROW(split_output_rows(joined.x, bad_rows), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// sched::WorkerPool begin/wait split (the serving-session barrier halves)
// ---------------------------------------------------------------------------

TEST(WorkerPoolSplit, BeginAndWaitEqualOneGeneration) {
  std::atomic<int> runs{0};
  sched::WorkerPool pool(3, [&runs](int) { runs.fetch_add(1); });
  pool.begin_generation();
  pool.wait_generation();
  EXPECT_EQ(runs.load(), 3);
  pool.run_generation();  // the fused form still works afterwards
  EXPECT_EQ(runs.load(), 6);
}

// ---------------------------------------------------------------------------
// serve::PipelineServer
// ---------------------------------------------------------------------------

ServeConfig serve_config(int stages, int workers, BatchPolicy policy,
                         int max_batch, double max_wait_ms = 5.0) {
  ServeConfig cfg;
  cfg.num_stages = stages;
  cfg.workers = workers;
  cfg.batch.policy = policy;
  cfg.batch.max_batch = max_batch;
  cfg.batch.max_wait_ms = max_wait_ms;
  return cfg;
}

TEST(PipelineServer, BitwiseParityAcrossWorkersStagesAndPolicies) {
  constexpr int kWidth = 12;
  nn::Model model = make_mlp(kWidth, 2, 6);
  auto w = init_weights(model, 11);

  // Reference: every request forwarded alone, sequentially.
  constexpr int kRequests = 12;
  std::vector<Tensor> inputs, expected;
  for (int i = 0; i < kRequests; ++i) {
    inputs.push_back(input_rows(1 + i % 3, kWidth, 100 + static_cast<std::uint64_t>(i)));
    expected.push_back(sequential_forward(model, w, inputs.back()));
  }

  for (int stages : {1, 3}) {
    for (int workers : {1, 3}) {
      for (BatchPolicy policy : {BatchPolicy::Fixed, BatchPolicy::Continuous}) {
        for (int max_batch : {1, 4}) {
          PipelineServer server(model, checkpoint_for(model, w),
                                serve_config(stages, workers, policy, max_batch,
                                             /*max_wait_ms=*/1.0));
          server.start();
          std::vector<TicketPtr> tickets;
          for (const Tensor& x : inputs) {
            nn::Flow f;
            f.x = x;
            tickets.push_back(server.submit(std::move(f)));
          }
          for (int i = 0; i < kRequests; ++i) {
            const Response& r = tickets[static_cast<std::size_t>(i)]->wait();
            ASSERT_EQ(r.status, Status::Ok)
                << "stages=" << stages << " workers=" << workers
                << " policy=" << batch_policy_name(policy)
                << " max_batch=" << max_batch << ": " << r.error;
            EXPECT_LE(r.batch_requests, max_batch);
            expect_bitwise_equal(
                r.output, expected[static_cast<std::size_t>(i)],
                "request " + std::to_string(i) + " (stages=" +
                    std::to_string(stages) + " workers=" +
                    std::to_string(workers) + " policy=" +
                    std::string(batch_policy_name(policy)) + ")");
          }
          server.stop();
          auto counters = server.counters();
          EXPECT_EQ(counters.submitted, static_cast<std::uint64_t>(kRequests));
          EXPECT_EQ(counters.completed_ok, static_cast<std::uint64_t>(kRequests));
          EXPECT_EQ(counters.admitted, static_cast<std::uint64_t>(kRequests));
          EXPECT_GE(counters.batches, 1u);
        }
      }
    }
  }
}

TEST(PipelineServer, TransformerRequestsMatchSequentialForward) {
  nn::TransformerConfig tcfg;
  tcfg.vocab = 16;
  tcfg.d_model = 8;
  tcfg.heads = 2;
  tcfg.enc_layers = 1;
  tcfg.dec_layers = 1;
  tcfg.ffn_hidden = 16;
  tcfg.max_len = 8;
  nn::Model model = nn::make_transformer(tcfg);
  auto w = init_weights(model, 3);

  constexpr int kSeq = 6;
  constexpr int kCur = 3;
  auto token_tensor = [&](int rows, std::uint64_t seed, int len) {
    Tensor t({rows, len});
    util::Rng rng(seed);
    for (std::int64_t i = 0; i < t.size(); ++i) {
      t[i] = static_cast<float>(3 + static_cast<int>(rng.uniform() * (tcfg.vocab - 3)));
    }
    return t;
  };

  PipelineServer server(model, checkpoint_for(model, w),
                        serve_config(2, 2, BatchPolicy::Continuous, 4));
  server.start();

  std::vector<Tensor> srcs, tgts, expected;
  std::vector<TicketPtr> tickets;
  for (int i = 0; i < 6; ++i) {
    const int rows = 1 + i % 2;
    srcs.push_back(token_tensor(rows, 40 + static_cast<std::uint64_t>(i), kSeq));
    tgts.push_back(token_tensor(rows, 70 + static_cast<std::uint64_t>(i), kCur));
    expected.push_back(sequential_forward(model, w, srcs.back(), &tgts.back()));
    nn::Flow f;
    f.x = srcs.back();
    f.aux = tgts.back();
    tickets.push_back(server.submit(std::move(f)));
  }
  for (std::size_t i = 0; i < tickets.size(); ++i) {
    const Response& r = tickets[i]->wait();
    ASSERT_EQ(r.status, Status::Ok) << r.error;
    expect_bitwise_equal(r.output, expected[i],
                         "transformer request " + std::to_string(i));
  }
  server.stop();
}

TEST(PipelineServer, FixedFormsFullBatchesContinuousStartsPartials) {
  nn::Model model = make_mlp(8, 1, 4);
  auto w = init_weights(model, 5);

  {
    // Fixed with a long max_wait: partial batches cannot flush before the
    // 5s timeout, so the only way these 4 requests complete promptly is as
    // one full batch — deterministically batch_requests == 4 for each.
    PipelineServer server(model, checkpoint_for(model, w),
                          serve_config(1, 1, BatchPolicy::Fixed, 4,
                                       /*max_wait_ms=*/5000.0));
    std::vector<TicketPtr> tickets;
    server.start();
    for (int i = 0; i < 4; ++i) {
      nn::Flow f;
      f.x = input_rows(1, 8, static_cast<std::uint64_t>(i));
      tickets.push_back(server.submit(std::move(f)));
    }
    for (auto& t : tickets) {
      const Response& r = t->wait();
      ASSERT_EQ(r.status, Status::Ok) << r.error;
      EXPECT_EQ(r.batch_requests, 4);
    }
    server.stop();
    EXPECT_EQ(server.counters().batches, 1u);
  }
  {
    // Continuous: a lone request is dispatched without waiting for peers.
    PipelineServer server(model, checkpoint_for(model, w),
                          serve_config(1, 1, BatchPolicy::Continuous, 4));
    server.start();
    nn::Flow f;
    f.x = input_rows(1, 8, 9);
    // Hold the TicketPtr: the Response reference lives inside the ticket,
    // and the server drops its own reference after completion.
    TicketPtr ticket = server.submit(std::move(f));
    const Response& r = ticket->wait();
    ASSERT_EQ(r.status, Status::Ok) << r.error;
    EXPECT_EQ(r.batch_requests, 1);
    server.stop();
  }
}

TEST(PipelineServer, DeadlineExpiryReturnsErrorNotCrash) {
  nn::Model model = make_mlp(8, 1, 4);
  auto w = init_weights(model, 5);
  // Fixed policy with an hour-long flush and a large batch: a lone request
  // would sit queued forever, so its own deadline must complete it.
  PipelineServer server(model, checkpoint_for(model, w),
                        serve_config(1, 1, BatchPolicy::Fixed, 64,
                                     /*max_wait_ms=*/3.6e6));
  server.start();
  nn::Flow f;
  f.x = input_rows(1, 8, 1);
  auto ticket = server.submit(std::move(f), std::chrono::milliseconds(20));
  const Response& r = ticket->wait();
  EXPECT_EQ(r.status, Status::DeadlineExceeded);
  EXPECT_TRUE(r.output.empty());
  server.stop();
  EXPECT_EQ(server.counters().deadline_expired, 1u);
}

TEST(PipelineServer, BackpressureRejectsInsteadOfBlocking) {
  nn::Model model = make_mlp(8, 1, 4);
  auto w = init_weights(model, 5);
  ServeConfig cfg = serve_config(1, 1, BatchPolicy::Fixed, 64,
                                 /*max_wait_ms=*/3.6e6);
  cfg.queue_capacity = 2;
  PipelineServer server(model, checkpoint_for(model, w), cfg);
  server.start();

  // The huge fixed batch never fills, so the first two requests stay
  // queued and the third hits the bound — an immediate rejection.
  std::vector<TicketPtr> tickets;
  for (int i = 0; i < 3; ++i) {
    nn::Flow f;
    f.x = input_rows(1, 8, static_cast<std::uint64_t>(i));
    tickets.push_back(server.submit(std::move(f)));
  }
  const Response& rejected = tickets[2]->wait();  // completed synchronously
  EXPECT_EQ(rejected.status, Status::RejectedQueueFull);

  // stop() drains: the queued pair flushes as a partial batch.
  server.stop();
  EXPECT_EQ(tickets[0]->wait().status, Status::Ok);
  EXPECT_EQ(tickets[1]->wait().status, Status::Ok);
  auto counters = server.counters();
  EXPECT_EQ(counters.rejected_full, 1u);
  EXPECT_EQ(counters.completed_ok, 2u);
}

TEST(PipelineServer, SubmitOutsideServingWindowIsRejected) {
  nn::Model model = make_mlp(8, 1, 4);
  auto w = init_weights(model, 5);
  PipelineServer server(model, checkpoint_for(model, w),
                        serve_config(1, 1, BatchPolicy::Continuous, 4));
  nn::Flow before;
  before.x = input_rows(1, 8, 1);
  EXPECT_EQ(server.submit(std::move(before))->wait().status,
            Status::RejectedStopped);  // not started yet

  server.start();
  server.stop();
  nn::Flow after;
  after.x = input_rows(1, 8, 2);
  EXPECT_EQ(server.submit(std::move(after))->wait().status,
            Status::RejectedStopped);
  EXPECT_EQ(server.counters().rejected_stopped, 2u);
}

TEST(PipelineServer, MalformedSubmissionsThrow) {
  nn::Model model = make_mlp(8, 1, 4);
  auto w = init_weights(model, 5);
  PipelineServer server(model, checkpoint_for(model, w),
                        serve_config(1, 1, BatchPolicy::Continuous, 4));
  server.start();
  nn::Flow empty;
  EXPECT_THROW(server.submit(std::move(empty)), std::invalid_argument);
  nn::Flow with_ctx;
  with_ctx.x = input_rows(1, 8, 1);
  with_ctx.ctx = input_rows(1, 8, 2);
  EXPECT_THROW(server.submit(std::move(with_ctx)), std::invalid_argument);
  server.stop();
}

TEST(PipelineServer, WorkerExceptionFailsTheBatchAndKeepsServing) {
  nn::Model model;
  model.add(std::make_unique<nn::Linear>(4, 4));
  model.add(std::make_unique<PoisonModule>());
  // Identity weights (W = I, b = 0) so PoisonModule sees the submitted
  // input verbatim and healthy requests come back bitwise-unchanged.
  std::vector<float> w(static_cast<std::size_t>(model.param_count()), 0.0f);
  for (int i = 0; i < 4; ++i) w[static_cast<std::size_t>(i * 4 + i)] = 1.0f;

  PipelineServer server(model, checkpoint_for(model, w),
                        serve_config(1, 1, BatchPolicy::Continuous, 1));
  server.start();

  nn::Flow poison;
  poison.x = Tensor({1, 4});
  poison.x[0] = PoisonModule::kPoison;
  // Hold each TicketPtr past the read: the Response reference lives inside
  // the ticket, and the server drops its own reference after completion —
  // a `submit(...)->wait()` temporary leaves the reference dangling.
  TicketPtr bad_ticket = server.submit(std::move(poison));
  const Response& bad = bad_ticket->wait();
  EXPECT_EQ(bad.status, Status::Error);
  EXPECT_NE(bad.error.find("poisoned"), std::string::npos);
  EXPECT_TRUE(bad.output.empty());

  // The worker survives the exception: the next request serves normally.
  nn::Flow healthy;
  healthy.x = input_rows(1, 4, 21);
  Tensor expected = healthy.x;
  TicketPtr good_ticket = server.submit(std::move(healthy));
  const Response& good = good_ticket->wait();
  ASSERT_EQ(good.status, Status::Ok) << good.error;
  expect_bitwise_equal(good.output, expected, "post-error request");
  server.stop();
  auto counters = server.counters();
  EXPECT_EQ(counters.errors, 1u);
  EXPECT_EQ(counters.completed_ok, 1u);
}

TEST(PipelineServer, StageStatsFeedTheLoadObserver) {
  nn::Model model = make_mlp(12, 2, 6);
  auto w = init_weights(model, 11);
  PipelineServer server(model, checkpoint_for(model, w),
                        serve_config(3, 2, BatchPolicy::Continuous, 2));
  server.start();
  std::vector<TicketPtr> tickets;
  for (int i = 0; i < 16; ++i) {
    nn::Flow f;
    f.x = input_rows(2, 12, static_cast<std::uint64_t>(i));
    tickets.push_back(server.submit(std::move(f)));
  }
  for (auto& t : tickets) ASSERT_EQ(t->wait().status, Status::Ok);
  server.stop();

  auto stages = server.stage_stats();
  ASSERT_EQ(stages.size(), 3u);
  std::uint64_t items = 0;
  for (const auto& s : stages) {
    items += s.items;
    EXPECT_EQ(s.pop_wait_ns, 0u);  // waiting is a worker-side notion
  }
  // Every dispatched batch crosses every stage exactly once.
  EXPECT_EQ(items, server.counters().batches * 3);
  // The observer's spread helper consumes the same shape it gets from the
  // training engines.
  EXPECT_GE(core::StageLoadObserver::busy_spread(stages), 1.0);

  auto workers = server.worker_stats();
  ASSERT_EQ(workers.size(), 2u);
  std::uint64_t worker_items = 0;
  for (const auto& ws : workers) worker_items += ws.items;
  EXPECT_EQ(worker_items, items);

  server.reset_stage_stats();
  for (const auto& s : server.stage_stats()) {
    EXPECT_EQ(s.items, 0u);
    EXPECT_EQ(s.busy_ns, 0u);
  }
}

TEST(PipelineServer, ConfigValidationRejectsNonsense) {
  nn::Model model = make_mlp(8, 1, 4);
  auto w = init_weights(model, 5);
  auto expect_invalid = [&](ServeConfig cfg) {
    EXPECT_THROW(PipelineServer(model, checkpoint_for(model, w), cfg),
                 std::invalid_argument);
  };
  expect_invalid(serve_config(0, 1, BatchPolicy::Continuous, 4));   // stages
  expect_invalid(serve_config(999, 1, BatchPolicy::Continuous, 4)); // > units
  expect_invalid(serve_config(1, -1, BatchPolicy::Continuous, 4));  // workers
  expect_invalid(serve_config(1, 1, BatchPolicy::Continuous, 0));   // max_batch
  ServeConfig bad_queue = serve_config(1, 1, BatchPolicy::Continuous, 4);
  bad_queue.queue_capacity = 0;
  expect_invalid(bad_queue);
  ServeConfig bad_slots = serve_config(1, 1, BatchPolicy::Continuous, 4);
  bad_slots.slots = -1;
  expect_invalid(bad_slots);
}

// ---------------------------------------------------------------------------
// serve CLI
// ---------------------------------------------------------------------------

TEST(ServeCli, AppliesFlagsOntoConfig) {
  ServeConfig cfg;
  auto cli = make_cli({"--serve-policy=fixed", "--serve-batch=16",
                       "--serve-max-wait=2.5", "--serve-stages=3",
                       "--serve-workers=2", "--serve-queue=128",
                       "--serve-slots=5"});
  parse_serve_cli(cli, cfg);
  EXPECT_EQ(cfg.batch.policy, BatchPolicy::Fixed);
  EXPECT_EQ(cfg.batch.max_batch, 16);
  EXPECT_DOUBLE_EQ(cfg.batch.max_wait_ms, 2.5);
  EXPECT_EQ(cfg.num_stages, 3);
  EXPECT_EQ(cfg.workers, 2);
  EXPECT_EQ(cfg.queue_capacity, 128);
  EXPECT_EQ(cfg.slots, 5);
}

TEST(ServeCli, AbsentFlagsKeepPresets) {
  ServeConfig cfg;
  cfg.batch.max_batch = 32;
  cfg.num_stages = 2;
  parse_serve_cli(make_cli({}), cfg);
  EXPECT_EQ(cfg.batch.max_batch, 32);
  EXPECT_EQ(cfg.num_stages, 2);
}

TEST(ServeCli, RejectsFlagsTheSelectedPolicyCannotHonor) {
  // --serve-max-wait routes through the same FlagRule table mechanism as
  // the backend CLI: continuous has no wait to bound, so passing it is an
  // error rather than a silent drop.
  ServeConfig cfg;
  auto cli = make_cli({"--serve-policy=continuous", "--serve-max-wait=5"});
  EXPECT_THROW(parse_serve_cli(cli, cfg), std::invalid_argument);
  // ... and the parsed config is validated before returning.
  ServeConfig bad;
  EXPECT_THROW(parse_serve_cli(make_cli({"--serve-queue=0"}), bad),
               std::invalid_argument);
  EXPECT_THROW(parse_serve_cli(make_cli({"--serve-policy=adaptive"}), bad),
               std::invalid_argument);
}

TEST(ServeCli, HelpNamesEveryFlag) {
  const std::string help = serve_cli_help();
  for (const char* flag : {"--serve-policy", "--serve-batch", "--serve-max-wait",
                           "--serve-stages", "--serve-workers", "--serve-queue",
                           "--serve-slots"}) {
    EXPECT_NE(help.find(flag), std::string::npos) << flag;
  }
}

}  // namespace
}  // namespace pipemare::serve
