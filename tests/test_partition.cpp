// Partitioner subsystem tests: the cost model, the balanced (min-max
// contiguous) strategy against brute force, the uniform default's
// bitwise stability, and the validated stage-count errors.

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <memory>
#include <stdexcept>
#include <vector>

#include "src/core/backend.h"
#include "src/core/task.h"
#include "src/core/trainer.h"
#include "src/data/regression_data.h"
#include "src/nn/activations.h"
#include "src/nn/dropout.h"
#include "src/nn/linear.h"
#include "src/nn/model.h"
#include "src/pipeline/cost_model.h"
#include "src/pipeline/partition.h"
#include "src/util/rng.h"

namespace pipemare::pipeline {
namespace {

nn::Model make_mlp(int in, int hidden, int out, int layers = 2) {
  nn::Model m;
  m.add(std::make_unique<nn::Linear>(in, hidden, true));
  m.add(std::make_unique<nn::ReLU>());
  for (int l = 1; l < layers; ++l) {
    m.add(std::make_unique<nn::Linear>(hidden, hidden, true));
    m.add(std::make_unique<nn::ReLU>());
  }
  m.add(std::make_unique<nn::Linear>(hidden, out));
  return m;
}

/// Heavy-head MLP: two wide layers, then a narrow tail. Uniform-by-count
/// splits overload the front stage; balanced should not.
nn::Model make_skewed_mlp() {
  nn::Model m;
  m.add(std::make_unique<nn::Linear>(64, 64, true));
  m.add(std::make_unique<nn::ReLU>());
  m.add(std::make_unique<nn::Linear>(64, 8, true));
  m.add(std::make_unique<nn::ReLU>());
  for (int l = 0; l < 6; ++l) {
    m.add(std::make_unique<nn::Linear>(8, 8, true));
    m.add(std::make_unique<nn::ReLU>());
  }
  m.add(std::make_unique<nn::Linear>(8, 4));
  return m;
}

/// Minimal multi-unit classification task for the end-to-end training
/// tests (RegressionTask's model has a single weight unit, which cannot
/// exercise multi-stage partitioning).
class MlpTask : public core::Task {
 public:
  explicit MlpTask(std::uint64_t seed = 17) {
    util::Rng rng(seed);
    for (int i = 0; i < kSize; ++i) {
      std::vector<float> row(kFeatures);
      for (float& v : row) v = static_cast<float>(rng.normal());
      xs_.push_back(std::move(row));
      ys_.push_back(static_cast<float>(rng.randint(kClasses)));
    }
  }

  std::string name() const override { return "partition-mlp"; }
  std::string metric_name() const override { return "accuracy"; }
  nn::Model build_model() const override { return make_skewed_mlp(); }
  const nn::LossHead& loss() const override { return loss_; }
  int train_size() const override { return kSize; }

  data::MicroBatches minibatch(const std::vector<int>& indices,
                               int micro_size) const override {
    data::MicroBatches mb;
    for (std::size_t start = 0; start < indices.size();
         start += static_cast<std::size_t>(micro_size)) {
      auto count = std::min(static_cast<std::size_t>(micro_size),
                            indices.size() - start);
      nn::Flow f;
      f.x = tensor::Tensor({static_cast<int>(count), kFeatures});
      tensor::Tensor t({static_cast<int>(count)});
      for (std::size_t r = 0; r < count; ++r) {
        auto idx = static_cast<std::size_t>(indices[start + r]);
        for (int c = 0; c < kFeatures; ++c) {
          f.x.at(static_cast<int>(r), c) = xs_[idx][static_cast<std::size_t>(c)];
        }
        t.at(static_cast<int>(r)) = ys_[idx];
      }
      mb.inputs.push_back(std::move(f));
      mb.targets.push_back(std::move(t));
    }
    return mb;
  }

  double evaluate(const nn::Model& model, std::span<const float> params) const override {
    std::vector<int> all(static_cast<std::size_t>(kSize));
    for (int i = 0; i < kSize; ++i) all[static_cast<std::size_t>(i)] = i;
    auto mb = minibatch(all, kSize);
    auto caches = model.make_caches();
    nn::Flow out = model.forward(mb.inputs.at(0), params, caches);
    auto res = loss_.forward_backward(out.x, mb.targets.at(0));
    return res.count > 0 ? 100.0 * res.correct / res.count : 0.0;
  }

 private:
  static constexpr int kSize = 64;
  static constexpr int kFeatures = 64;  // matches make_skewed_mlp input
  static constexpr int kClasses = 4;
  std::vector<std::vector<float>> xs_;
  std::vector<float> ys_;
  nn::ClassificationXent loss_;
};

/// Exhaustive minimum over all contiguous splits of `costs` into exactly
/// `stages` non-empty groups: the reference the DP must match.
double brute_force_min_max(const std::vector<double>& costs, int stages,
                           std::size_t from = 0) {
  auto u = costs.size();
  if (stages == 1) {
    double sum = 0.0;
    for (std::size_t i = from; i < u; ++i) sum += costs[i];
    return sum;
  }
  double best = std::numeric_limits<double>::infinity();
  double head = 0.0;
  // First group is [from, cut); leave at least stages-1 units for the rest.
  for (std::size_t cut = from + 1; cut + static_cast<std::size_t>(stages) - 1 <= u;
       ++cut) {
    head += costs[cut - 1];
    best = std::min(best,
                    std::max(head, brute_force_min_max(costs, stages - 1, cut)));
  }
  return best;
}

double max_stage_cost(const std::vector<double>& costs,
                      const std::vector<int>& unit_stage, int stages) {
  std::vector<double> totals(static_cast<std::size_t>(stages), 0.0);
  for (std::size_t i = 0; i < costs.size(); ++i) {
    totals[static_cast<std::size_t>(unit_stage[i])] += costs[i];
  }
  return *std::max_element(totals.begin(), totals.end());
}

// ---------------------------------------------------------------------------
// Uniform default: bitwise-unchanged behaviour
// ---------------------------------------------------------------------------

TEST(PartitionStrategy, DefaultSpecReproducesLegacyUniformSplit) {
  // EngineConfig's default PartitionSpec must route to exactly the old
  // rule — this is what keeps every pre-cost-model training curve bitwise
  // unchanged (the partition fully determines stage placement, weight
  // versioning and execution order).
  for (int layers : {2, 3, 5}) {
    nn::Model m = make_mlp(4, 8, 3, layers);
    for (int stages = 1; stages <= max_stages(m, false); ++stages) {
      Partition legacy = make_partition(m, stages, false);
      Partition via_spec = make_partition(m, stages, false, PartitionSpec{});
      EXPECT_EQ(legacy.unit_stage, via_spec.unit_stage)
          << "layers=" << layers << " stages=" << stages;
      EXPECT_EQ(legacy.module_stage, via_spec.module_stage);
      EXPECT_EQ(legacy.stage_param_count, via_spec.stage_param_count);
      EXPECT_EQ(via_spec.strategy, PartitionStrategy::Uniform);
    }
  }
}

TEST(PartitionStrategy, UniformCarriesUnitCountCosts) {
  nn::Model m = make_mlp(4, 8, 3, 3);  // 4 units
  Partition part = make_partition(m, 2, false);
  ASSERT_EQ(part.unit_cost.size(), 4u);
  for (double c : part.unit_cost) EXPECT_DOUBLE_EQ(c, 1.0);
  EXPECT_DOUBLE_EQ(part.stage_cost[0], 2.0);
  EXPECT_DOUBLE_EQ(part.stage_cost[1], 2.0);
  EXPECT_DOUBLE_EQ(part.balance_ratio(), 1.0);
}

// ---------------------------------------------------------------------------
// Edge cases
// ---------------------------------------------------------------------------

TEST(PartitionStrategy, OneStagePerUnitBothStrategies) {
  nn::Model m = make_mlp(4, 8, 3, 3);  // 4 units
  int p = max_stages(m, false);
  ASSERT_EQ(p, 4);
  Partition uniform = make_partition(m, p, false);
  PartitionSpec spec;
  spec.strategy = PartitionStrategy::Balanced;
  Partition balanced = make_partition(m, p, false, spec);
  // P == U forces the identity split for any strategy and cost vector.
  for (int i = 0; i < p; ++i) {
    EXPECT_EQ(uniform.unit_stage[static_cast<std::size_t>(i)], i);
    EXPECT_EQ(balanced.unit_stage[static_cast<std::size_t>(i)], i);
  }
}

TEST(PartitionStrategy, SplitBiasDoublingBothStrategies) {
  nn::Model m = make_mlp(4, 8, 3, 2);  // 3 Linear modules
  EXPECT_EQ(max_stages(m, false), 3);
  EXPECT_EQ(max_stages(m, true), 6);
  PartitionSpec spec;
  spec.strategy = PartitionStrategy::Balanced;
  Partition part = make_partition(m, 6, true, spec);
  EXPECT_EQ(part.num_stages, 6);
  EXPECT_EQ(part.num_units(), 6);
  // Bias units are tiny, but every stage must still own >= 1 unit.
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(part.unit_stage[static_cast<std::size_t>(i)], i);
  }
  // Weight-unit sizes alternate matrix/bias.
  EXPECT_GT(part.units[0].size, part.units[1].size);
}

TEST(PartitionStrategy, ParameterFreeModulesInheritPrecedingStage) {
  // Leading parameter-free modules ride on stage 0; interior ones ride
  // with the nearest preceding weight unit — under both strategies.
  nn::Model m;
  m.add(std::make_unique<nn::ReLU>());  // leading, before any weights
  m.add(std::make_unique<nn::Linear>(4, 4, true));
  m.add(std::make_unique<nn::ReLU>());
  m.add(std::make_unique<nn::Dropout>(0.1));
  m.add(std::make_unique<nn::Linear>(4, 4, true));
  m.add(std::make_unique<nn::ReLU>());
  for (auto strategy : {PartitionStrategy::Uniform, PartitionStrategy::Balanced}) {
    PartitionSpec spec;
    spec.strategy = strategy;
    Partition part = make_partition(m, 2, false, spec);
    EXPECT_EQ(part.module_stage,
              (std::vector<int>{0, 0, 0, 0, 1, 1}))
        << partition_strategy_name(strategy);
  }
}

// ---------------------------------------------------------------------------
// Balanced DP vs brute force
// ---------------------------------------------------------------------------

TEST(BalancedSplit, MatchesBruteForceOnHandVectors) {
  struct Case {
    std::vector<double> costs;
    int stages;
  };
  std::vector<Case> cases = {
      {{64, 64, 8, 1, 1, 1, 1, 1}, 4},
      {{1, 1, 1, 1, 1, 1}, 3},
      {{10, 1, 1, 1, 1, 10}, 2},
      {{1, 2, 3, 4, 5, 6, 7, 8, 9}, 3},
      {{5, 5, 5}, 3},
      {{100, 1}, 2},
      {{0, 0, 7, 0, 3}, 2},
  };
  for (const auto& c : cases) {
    auto unit_stage = balanced_contiguous_split(c.costs, c.stages);
    double got = max_stage_cost(c.costs, unit_stage, c.stages);
    double want = brute_force_min_max(c.costs, c.stages);
    EXPECT_DOUBLE_EQ(got, want) << "stages=" << c.stages;
    // Contiguity + coverage: stages non-decreasing, first 0, last P-1.
    EXPECT_EQ(unit_stage.front(), 0);
    EXPECT_EQ(unit_stage.back(), c.stages - 1);
    for (std::size_t i = 1; i < unit_stage.size(); ++i) {
      EXPECT_GE(unit_stage[i], unit_stage[i - 1]);
      EXPECT_LE(unit_stage[i], unit_stage[i - 1] + 1);
    }
  }
}

TEST(BalancedSplit, MatchesBruteForceOnRandomVectors) {
  util::Rng rng(7);
  for (int trial = 0; trial < 50; ++trial) {
    int u = 2 + rng.randint(8);  // 2..9 units
    std::vector<double> costs(static_cast<std::size_t>(u));
    for (double& c : costs) c = rng.uniform(0.0, 100.0);
    int stages = 1 + rng.randint(u);  // 1..u
    auto unit_stage = balanced_contiguous_split(costs, stages);
    EXPECT_DOUBLE_EQ(max_stage_cost(costs, unit_stage, stages),
                     brute_force_min_max(costs, stages))
        << "trial " << trial << " u=" << u << " stages=" << stages;
  }
}

TEST(BalancedSplit, ReducesBalanceRatioOnSkewedModel) {
  nn::Model m = make_skewed_mlp();  // 9 units, front-loaded cost
  PartitionSpec spec;
  spec.strategy = PartitionStrategy::Balanced;
  Partition balanced = make_partition(m, 4, false, spec);
  Partition uniform = make_partition(m, 4, false);
  // Evaluate both splits under the balanced run's cost model.
  double balanced_max =
      max_stage_cost(balanced.unit_cost, balanced.unit_stage, 4);
  double uniform_max = max_stage_cost(balanced.unit_cost, uniform.unit_stage, 4);
  EXPECT_LT(balanced_max, uniform_max);
  // And the heavy front must not share a stage with the whole tail: the
  // first wide layer gets a stage of its own.
  EXPECT_NE(balanced.unit_stage[0], balanced.unit_stage[2]);
  EXPECT_GT(balanced.balance_ratio(), 0.99);
}

// ---------------------------------------------------------------------------
// Cost model
// ---------------------------------------------------------------------------

TEST(CostModel, AnalyticCostsScaleWithLayerWidth) {
  nn::Model m = make_skewed_mlp();
  PartitionSpec spec;  // no probe: intrinsic estimates
  auto units = m.weight_units(false);
  auto costs = profile_unit_costs(m, units, spec);
  ASSERT_EQ(costs.size(), units.size());
  // Wide 64x64 unit must dwarf a narrow 8x8 one (64x params -> ~64x cost).
  EXPECT_GT(costs[0], 10.0 * costs[2]);
  for (double c : costs) EXPECT_GT(c, 0.0);
}

TEST(CostModel, ProbeShapesScaleCostsWithBatchRows) {
  nn::Model m = make_mlp(8, 8, 4, 2);
  auto units = m.weight_units(false);
  PartitionSpec no_probe;
  auto intrinsic = profile_unit_costs(m, units, no_probe);

  auto probe = std::make_shared<nn::Flow>();
  probe->x = tensor::Tensor({16, 8});  // 16 rows
  PartitionSpec with_probe;
  with_probe.probe = probe;
  auto probed = profile_unit_costs(m, units, with_probe);

  // Row count multiplies Linear costs (batch-free estimates assume 1 row).
  EXPECT_NEAR(probed[0] / intrinsic[0], 16.0, 4.0);
}

TEST(CostModel, MeasuredModeProducesPositiveCosts) {
  nn::Model m = make_mlp(8, 16, 4, 3);
  auto probe = std::make_shared<nn::Flow>();
  probe->x = tensor::Tensor({4, 8});
  PartitionSpec spec;
  spec.strategy = PartitionStrategy::Balanced;
  spec.measured = true;
  spec.measure_reps = 1;
  spec.probe = probe;
  auto units = m.weight_units(false);
  auto costs = profile_unit_costs(m, units, spec);
  ASSERT_EQ(costs.size(), units.size());
  for (double c : costs) EXPECT_GT(c, 0.0);
  // And the full partition path works on measured costs.
  Partition part = make_partition(m, 2, false, spec);
  EXPECT_EQ(part.num_stages, 2);
  EXPECT_EQ(part.strategy, PartitionStrategy::Balanced);
}

TEST(CostModel, MeasuredWithoutProbeThrows) {
  nn::Model m = make_mlp(8, 8, 4, 2);
  PartitionSpec spec;
  spec.strategy = PartitionStrategy::Balanced;
  spec.measured = true;
  EXPECT_THROW(make_partition(m, 2, false, spec), std::invalid_argument);
}

TEST(CostModel, MismatchedCostVectorThrows) {
  nn::Model m = make_mlp(8, 8, 4, 2);
  std::vector<double> wrong_size = {1.0, 2.0};
  EXPECT_THROW(make_partition(m, 2, false, std::span<const double>(wrong_size)),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Validated stage-count errors (per-backend validate())
// ---------------------------------------------------------------------------

TEST(PartitionValidation, StageCountErrorNamesMaxStages) {
  nn::Model m = make_mlp(4, 8, 3, 2);  // 3 units
  try {
    validate_partition_config("threaded", &m, 9, false, PartitionSpec{});
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("max_stages=3"), std::string::npos) << msg;
    EXPECT_NE(msg.find("threaded"), std::string::npos) << msg;
    EXPECT_NE(msg.find("num_stages=9"), std::string::npos) << msg;
  }
}

TEST(PartitionValidation, RegistrySurfacesStageCountFromValidate) {
  // The full path: BackendRegistry::create validates (with the model)
  // before any engine construction, for every registered backend.
  data::RegressionConfig rc;
  rc.features = 6;
  rc.size = 32;
  rc.seed = 1;
  core::RegressionTask task(rc);
  pipeline::EngineConfig ec;
  ec.num_stages = 99;
  ec.num_microbatches = 2;
  for (const auto& name : core::BackendRegistry::instance().names()) {
    try {
      (void)core::BackendRegistry::instance().create(
          task.build_model(), core::BackendConfig(name), ec, 1);
      FAIL() << "expected std::invalid_argument from backend '" << name << "'";
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find("max_stages"), std::string::npos)
          << name << ": " << e.what();
    }
  }
}

TEST(PartitionValidation, ModelFreeValidateSkipsStageBound) {
  // Without a model the registry cannot know max_stages; the model-free
  // overload must not reject a large-but-positive stage count...
  pipeline::EngineConfig ec;
  ec.num_stages = 99;
  ec.num_microbatches = 2;
  EXPECT_NO_THROW(core::BackendRegistry::instance().validate(
      core::BackendConfig("sequential"), ec));
  // ...but still catches model-independent misconfiguration.
  ec.num_stages = 2;
  ec.partition.strategy = PartitionStrategy::Balanced;
  ec.partition.measured = true;  // measured without probe
  EXPECT_THROW(core::BackendRegistry::instance().validate(
                   core::BackendConfig("sequential"), ec),
               std::invalid_argument);
  ec.partition.measured = false;
  ec.partition.strategy = PartitionStrategy::Uniform;
  ec.partition.measured = true;  // measured only applies to balanced
  EXPECT_THROW(core::BackendRegistry::instance().validate(
                   core::BackendConfig("sequential"), ec),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// End-to-end: uniform default unchanged; balanced trains
// ---------------------------------------------------------------------------

core::TrainerConfig mlp_trainer_config() {
  core::TrainerConfig cfg;
  cfg.epochs = 2;
  cfg.minibatch_size = 16;
  cfg.microbatch_size = 4;
  cfg.schedule = core::TrainerConfig::Sched::Constant;
  cfg.lr = 0.03;
  cfg.seed = 5;
  cfg.engine.num_stages = 3;
  return cfg;
}

TEST(PartitionTraining, UniformDefaultCurveBitwiseStable) {
  // A config that never mentions partitioning must produce the same curve
  // as one that names the uniform strategy explicitly (the default is not
  // a different code path), on the sequential and threaded backends.
  MlpTask task;
  core::TrainerConfig cfg = mlp_trainer_config();
  for (const char* backend : {"sequential", "threaded"}) {
    cfg.backend = backend;
    cfg.engine.partition = PartitionSpec{};
    auto implicit = core::train(task, cfg);
    cfg.engine.partition.strategy = PartitionStrategy::Uniform;
    auto explicit_uniform = core::train(task, cfg);
    ASSERT_EQ(implicit.curve.size(), explicit_uniform.curve.size());
    for (std::size_t e = 0; e < implicit.curve.size(); ++e) {
      EXPECT_EQ(implicit.curve[e].train_loss, explicit_uniform.curve[e].train_loss)
          << backend << " epoch " << e;
      EXPECT_EQ(implicit.curve[e].metric, explicit_uniform.curve[e].metric);
      EXPECT_EQ(implicit.curve[e].param_norm, explicit_uniform.curve[e].param_norm);
    }
  }
}

TEST(PartitionTraining, BalancedStrategyTrainsThroughCoreTrain) {
  // core::train auto-fills the probe microbatch; the balanced split
  // trains end to end on both pipeline backends and produces the same
  // curve on each (both engines derive the identical partition from the
  // same spec — threaded bitwise parity holds per strategy).
  MlpTask task;
  core::TrainerConfig cfg = mlp_trainer_config();
  cfg.engine.partition.strategy = PartitionStrategy::Balanced;
  cfg.backend = "sequential";
  auto seq = core::train(task, cfg);
  cfg.backend = "threaded";
  auto thr = core::train(task, cfg);
  EXPECT_FALSE(seq.diverged);
  ASSERT_EQ(seq.curve.size(), 2u);
  ASSERT_EQ(thr.curve.size(), 2u);
  for (std::size_t e = 0; e < seq.curve.size(); ++e) {
    EXPECT_EQ(seq.curve[e].train_loss, thr.curve[e].train_loss) << "epoch " << e;
    EXPECT_EQ(seq.curve[e].param_norm, thr.curve[e].param_norm);
  }
}

}  // namespace
}  // namespace pipemare::pipeline
