#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <complex>
#include <numbers>

#include "src/theory/char_polys.h"
#include "src/theory/polynomial.h"
#include "src/theory/quadratic_sim.h"
#include "src/theory/stability.h"

namespace pipemare::theory {
namespace {

TEST(Polynomial, EvalAndDerivative) {
  Polynomial p({1.0, -3.0, 2.0});  // 1 - 3x + 2x^2
  EXPECT_EQ(p.degree(), 2);
  EXPECT_NEAR(std::abs(p.eval({2.0, 0.0}) - Complex(3.0, 0.0)), 0.0, 1e-12);
  Polynomial d = p.derivative();  // -3 + 4x
  EXPECT_EQ(d.degree(), 1);
  EXPECT_NEAR(std::abs(d.eval({1.0, 0.0}) - Complex(1.0, 0.0)), 0.0, 1e-12);
}

TEST(Polynomial, RootsOfQuadratic) {
  Polynomial p({2.0, -3.0, 1.0});  // (x-1)(x-2)
  auto rs = p.roots();
  ASSERT_EQ(rs.size(), 2u);
  double lo = std::min(rs[0].real(), rs[1].real());
  double hi = std::max(rs[0].real(), rs[1].real());
  EXPECT_NEAR(lo, 1.0, 1e-8);
  EXPECT_NEAR(hi, 2.0, 1e-8);
  EXPECT_NEAR(rs[0].imag(), 0.0, 1e-8);
}

TEST(Polynomial, SpectralRadiusOfKnownPoly) {
  Polynomial p({-6.0, 11.0, -6.0, 1.0});  // roots 1, 2, 3
  EXPECT_NEAR(p.spectral_radius(), 3.0, 1e-6);
}

TEST(Polynomial, StabilityByWindingNumber) {
  // Roots at 0.5 and -0.5: stable.
  Polynomial stable({-0.25, 0.0, 1.0});
  EXPECT_TRUE(stable.is_stable());
  // Root at 2: unstable.
  Polynomial unstable({-2.0, 1.0});
  EXPECT_FALSE(unstable.is_stable());
  // Root exactly on the unit circle: treated as unstable.
  Polynomial marginal({-1.0, 1.0});
  EXPECT_FALSE(marginal.is_stable());
}

TEST(Lemma1, MatchesNumericStabilityThreshold) {
  // Property check across a grid of (lambda, tau): the closed form of
  // Lemma 1 must agree with the numeric first instability of eq. (4).
  for (double lambda : {0.5, 1.0, 2.0}) {
    for (int tau : {1, 2, 5, 10, 25}) {
      double closed = lemma1_max_alpha(lambda, tau);
      double numeric = largest_stable_alpha([&](double a) {
        return char_poly_basic(tau, a, lambda);
      });
      EXPECT_NEAR(numeric, closed, 1e-3 * closed + 1e-9)
          << "lambda=" << lambda << " tau=" << tau;
    }
  }
}

TEST(Lemma1, TauZeroRecoversGradientDescentBound) {
  // tau = 0: alpha <= 2/lambda, the classic GD stability bound.
  EXPECT_NEAR(lemma1_max_alpha(1.0, 0), 2.0, 1e-12);
  EXPECT_NEAR(lemma1_max_alpha(4.0, 0), 0.5, 1e-12);
}

TEST(Lemma1, DoubleRootAlphaGivesRepeatedRoot) {
  int tau = 6;
  double lambda = 1.0;
  double alpha = lemma1_double_root_alpha(lambda, tau);
  Polynomial p = char_poly_basic(tau, alpha, lambda);
  // The double root is at w = tau/(tau+1); p and p' both vanish there.
  double w = static_cast<double>(tau) / (tau + 1);
  EXPECT_NEAR(std::abs(p.eval({w, 0.0})), 0.0, 1e-10);
  EXPECT_NEAR(std::abs(p.derivative().eval({w, 0.0})), 0.0, 1e-10);
}

TEST(Lemma2, DiscrepancyShrinksStableRegion) {
  int tf = 10, tb = 6;
  double lambda = 1.0;
  double no_disc = largest_stable_alpha(
      [&](double a) { return char_poly_discrepancy(tf, tb, a, lambda, 0.0); });
  for (double delta : {1.0, 5.0, 20.0}) {
    double with_disc = largest_stable_alpha([&](double a) {
      return char_poly_discrepancy(tf, tb, a, lambda, delta);
    });
    EXPECT_LT(with_disc, no_disc) << "delta=" << delta;
    // Lemma 2 upper bound on the first instability.
    EXPECT_LE(with_disc, lemma2_bound(lambda, delta, tf, tb) + 1e-9);
  }
}

TEST(Lemma3, MomentumThresholdBelowBound) {
  double lambda = 1.0;
  for (int tau : {2, 5, 10}) {
    for (double beta : {0.5, 0.9}) {
      double numeric = largest_stable_alpha([&](double a) {
        return char_poly_momentum(tau, beta, a, lambda);
      });
      EXPECT_LE(numeric, lemma3_bound(lambda, tau) + 1e-9)
          << "tau=" << tau << " beta=" << beta;
      // Momentum with beta -> 0 degenerates to the plain bound.
    }
  }
  double numeric_b0 = largest_stable_alpha(
      [&](double a) { return char_poly_momentum(5, 0.0, a, lambda); });
  EXPECT_NEAR(numeric_b0, lemma1_max_alpha(lambda, 5), 1e-4);
}

TEST(T2, GammaStarMatchesDStarLimit) {
  // D = gamma*^{gap} approaches exp(-2) ~= 0.135 for large delays.
  EXPECT_NEAR(d_star(41, 10), std::exp(-2.0), 0.05);
  EXPECT_NEAR(gamma_star(11, 6), 1.0 - 2.0 / 6.0, 1e-12);
  // gamma_from_decay inverts d_star.
  double g = gamma_from_decay(d_star(20, 5), 15.0);
  EXPECT_NEAR(g, gamma_star(20, 5), 1e-12);
}

TEST(T2, CorrectionEnlargesStableRegionForPositiveDelta) {
  // Section 3.2 claim, verified numerically (as the paper does): with
  // gamma = gamma*, T2 permits a larger stable alpha whenever delta > 0.
  double lambda = 1.0;
  for (int tf : {10, 20, 40}) {
    int tb = tf / 4;
    double gamma = gamma_star(tf, tb);
    for (double delta : {1.0, 5.0, 25.0}) {
      double uncorrected = largest_stable_alpha([&](double a) {
        return char_poly_discrepancy(tf, tb, a, lambda, delta);
      });
      double corrected = largest_stable_alpha([&](double a) {
        return char_poly_t2(tf, tb, a, lambda, delta, gamma);
      });
      EXPECT_GT(corrected, uncorrected)
          << "tf=" << tf << " tb=" << tb << " delta=" << delta;
    }
  }
}

TEST(T2, TaylorExpansionAtOneIndependentOfDelta) {
  // B.5: with gamma = gamma*, p(1), p'(1) and p''(1) do not depend on delta.
  int tf = 17, tb = 4;
  double alpha = 0.01, lambda = 1.0;
  double gamma = gamma_star(tf, tb);
  auto probe = [&](double delta) {
    Polynomial p = char_poly_t2(tf, tb, alpha, lambda, delta, gamma);
    Polynomial d1 = p.derivative();
    Polynomial d2 = d1.derivative();
    return std::array<double, 3>{p.eval({1.0, 0.0}).real(),
                                 d1.eval({1.0, 0.0}).real(),
                                 d2.eval({1.0, 0.0}).real()};
  };
  auto a = probe(0.0);
  auto b = probe(7.0);
  EXPECT_NEAR(a[0], b[0], 1e-10);
  EXPECT_NEAR(a[1], b[1], 1e-10);
  EXPECT_NEAR(a[2], b[2], 1e-8);
}

TEST(Recompute, CharPolyReducesToT2WhenPhiZero) {
  int tf = 10, tb = 1, tr = 4;
  double alpha = 0.05, lambda = 1.0, delta = 3.0;
  double gamma = gamma_star(tf, tb);
  Polynomial with_rec =
      char_poly_recompute(tf, tb, tr, alpha, lambda, delta, 0.0, gamma);
  Polynomial without = char_poly_t2(tf, tb, alpha, lambda, delta, gamma);
  ASSERT_EQ(with_rec.degree(), without.degree());
  for (int i = 0; i <= with_rec.degree(); ++i) {
    EXPECT_NEAR(with_rec.coeffs()[static_cast<std::size_t>(i)],
                without.coeffs()[static_cast<std::size_t>(i)], 1e-12);
  }
}

TEST(QuadraticSim, ConvergesWithoutDelay) {
  QuadraticSimConfig cfg;
  cfg.tau_fwd = 0;
  cfg.alpha = 0.2;
  cfg.noise_std = 0.0;
  auto res = run_quadratic_sim(cfg, 200);
  EXPECT_FALSE(res.diverged);
  EXPECT_LT(res.final_loss, 1e-10);
}

TEST(QuadraticSim, DivergesAtLargeDelayFixedAlpha) {
  // Figure 3(a): lambda=1, alpha=0.2; tau=10 grows unboundedly while
  // tau=0,5 stay at the noise floor. (Theory: threshold at tau=10 is
  // 2 sin(pi/42) ~= 0.149 < 0.2, while at tau=5 it is ~0.285 > 0.2.)
  auto run = [](int tau) {
    QuadraticSimConfig cfg;
    cfg.tau_fwd = tau;
    cfg.tau_bkwd = tau;
    cfg.alpha = 0.2;
    cfg.noise_std = 1.0;
    cfg.seed = 17;
    return run_quadratic_sim(cfg, 4000);
  };
  EXPECT_LT(run(0).final_loss, 10.0);
  EXPECT_LT(run(5).final_loss, 10.0);
  EXPECT_GT(run(10).final_loss, 1e3);
}

TEST(QuadraticSim, DiscrepancyCausesDivergence) {
  // Figure 5(a): tau_fwd=10, tau_bkwd=6; at an alpha where delta=0
  // converges, delta=5 diverges (Lemma 2: first instability below
  // 2/(delta*(tf-tb)) = 0.1 < 0.149).
  auto run = [](double delta) {
    QuadraticSimConfig cfg;
    cfg.tau_fwd = 10;
    cfg.tau_bkwd = 6;
    cfg.alpha = 0.12;
    cfg.delta = delta;
    cfg.noise_std = 1.0;
    cfg.seed = 23;
    return run_quadratic_sim(cfg, 4000);
  };
  EXPECT_LT(run(0.0).final_loss, 10.0);
  EXPECT_GT(run(5.0).final_loss, 1e3);
}

TEST(QuadraticSim, T2CorrectionStabilizesDiscrepancy) {
  // Pick a step size between the uncorrected and T2-corrected stability
  // thresholds: the uncorrected run must blow up while the corrected run
  // stays bounded.
  int tf = 10, tb = 6;
  double lambda = 1.0, delta = 5.0, decay_d = 0.1;
  double gamma = gamma_from_decay(decay_d, tf - tb);
  double uncorr = largest_stable_alpha([&](double a) {
    return char_poly_discrepancy(tf, tb, a, lambda, delta);
  });
  double corr = largest_stable_alpha([&](double a) {
    return char_poly_t2(tf, tb, a, lambda, delta, gamma);
  });
  ASSERT_GT(corr, uncorr);
  double alpha = 0.5 * (uncorr + corr);

  QuadraticSimConfig cfg;
  cfg.tau_fwd = tf;
  cfg.tau_bkwd = tb;
  cfg.alpha = alpha;
  cfg.delta = delta;
  cfg.lambda = lambda;
  cfg.noise_std = 0.1;
  cfg.seed = 23;
  cfg.decay_d = decay_d;

  cfg.t2_correction = false;
  auto plain = run_quadratic_sim(cfg, 6000);
  cfg.t2_correction = true;
  auto corrected = run_quadratic_sim(cfg, 6000);
  EXPECT_GT(plain.final_loss, 1e3);
  EXPECT_LT(corrected.final_loss, 10.0);
}

TEST(QuadraticSim, MatchesStabilityTheoryNearThreshold) {
  // Deterministic runs (no noise) flip from convergent to divergent across
  // the Lemma 1 threshold.
  int tau = 8;
  double lambda = 1.0;
  double alpha_star = lemma1_max_alpha(lambda, tau);
  auto run = [&](double alpha) {
    QuadraticSimConfig cfg;
    cfg.tau_fwd = tau;
    cfg.tau_bkwd = tau;
    cfg.alpha = alpha;
    cfg.noise_std = 0.0;
    return run_quadratic_sim(cfg, 30000);
  };
  EXPECT_LT(run(0.9 * alpha_star).final_loss, 1e-6);
  EXPECT_GT(run(1.1 * alpha_star).final_loss, 1.0);
}

class StageSweepLemma1 : public ::testing::TestWithParam<int> {};

TEST_P(StageSweepLemma1, ThresholdScalesInverselyWithTau) {
  int tau = GetParam();
  double ratio = lemma1_max_alpha(1.0, tau) * (4.0 * tau + 2.0) / 2.0;
  // sin(x) ~ x: the bound behaves as pi/(4 tau + 2) * 2, i.e. O(1/tau).
  EXPECT_NEAR(ratio, std::numbers::pi, 0.15);
}

INSTANTIATE_TEST_SUITE_P(TauGrid, StageSweepLemma1,
                         ::testing::Values(4, 8, 16, 32, 64, 128, 256));

}  // namespace
}  // namespace pipemare::theory
