// Dynamic-repartitioning tests: the spec parser, the observed-cost
// distribution, migration validation, the planner's decision logic, the
// engines' zero-copy migration (bit-identical to a fresh engine built
// with the new split; sequential/threaded parity across a mid-training
// move), the off-path's bitwise stability, and the end-to-end auto loop
// rebalancing a deliberately bad uniform split on a skewed MLP.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/core/backend.h"
#include "src/core/repartition_observer.h"
#include "src/core/stage_load.h"
#include "src/core/task.h"
#include "src/core/trainer.h"
#include "src/nn/activations.h"
#include "src/nn/heads.h"
#include "src/nn/linear.h"
#include "src/nn/model.h"
#include "src/pipeline/engine.h"
#include "src/pipeline/partition.h"
#include "src/pipeline/repartition.h"
#include "src/pipeline/threaded_engine.h"
#include "src/tensor/kernels/registry.h"
#include "src/util/cli.h"
#include "src/util/rng.h"

namespace pipemare::pipeline {
namespace {

/// Front-loaded MLP: three wide layers then a narrow tail — 12 weight
/// units whose cost is dominated by the first three. A uniform-by-count
/// split into 4 stages piles all three heavies onto stage 0 (predicted
/// balance ratio > 3); the balanced split gives each heavy its own stage.
nn::Model make_skewed_mlp() {
  nn::Model m;
  for (int l = 0; l < 3; ++l) {
    m.add(std::make_unique<nn::Linear>(64, 64, true));
    m.add(std::make_unique<nn::ReLU>());
  }
  m.add(std::make_unique<nn::Linear>(64, 8, true));
  m.add(std::make_unique<nn::ReLU>());
  for (int l = 0; l < 7; ++l) {
    m.add(std::make_unique<nn::Linear>(8, 8, true));
    m.add(std::make_unique<nn::ReLU>());
  }
  m.add(std::make_unique<nn::Linear>(8, 4));
  return m;
}

/// Random classification task over the skewed model (same recipe as
/// test_partition's MlpTask, sized so one epoch is one minibatch).
class SkewedTask : public core::Task {
 public:
  explicit SkewedTask(int size, std::uint64_t seed = 23) : size_(size) {
    util::Rng rng(seed);
    for (int i = 0; i < size_; ++i) {
      std::vector<float> row(kFeatures);
      for (float& v : row) v = static_cast<float>(rng.normal());
      xs_.push_back(std::move(row));
      ys_.push_back(static_cast<float>(rng.randint(kClasses)));
    }
  }

  std::string name() const override { return "repartition-mlp"; }
  std::string metric_name() const override { return "accuracy"; }
  nn::Model build_model() const override { return make_skewed_mlp(); }
  const nn::LossHead& loss() const override { return loss_; }
  int train_size() const override { return size_; }

  data::MicroBatches minibatch(const std::vector<int>& indices,
                               int micro_size) const override {
    data::MicroBatches mb;
    for (std::size_t start = 0; start < indices.size();
         start += static_cast<std::size_t>(micro_size)) {
      auto count = std::min(static_cast<std::size_t>(micro_size),
                            indices.size() - start);
      nn::Flow f;
      f.x = tensor::Tensor({static_cast<int>(count), kFeatures});
      tensor::Tensor t({static_cast<int>(count)});
      for (std::size_t r = 0; r < count; ++r) {
        auto idx = static_cast<std::size_t>(indices[start + r]);
        for (int c = 0; c < kFeatures; ++c) {
          f.x.at(static_cast<int>(r), c) = xs_[idx][static_cast<std::size_t>(c)];
        }
        t.at(static_cast<int>(r)) = ys_[idx];
      }
      mb.inputs.push_back(std::move(f));
      mb.targets.push_back(std::move(t));
    }
    return mb;
  }

  double evaluate(const nn::Model& model, std::span<const float> params) const override {
    std::vector<int> all(static_cast<std::size_t>(size_));
    for (int i = 0; i < size_; ++i) all[static_cast<std::size_t>(i)] = i;
    auto mb = minibatch(all, size_);
    auto caches = model.make_caches();
    nn::Flow out = model.forward(mb.inputs.at(0), params, caches);
    auto res = loss_.forward_backward(out.x, mb.targets.at(0));
    return res.count > 0 ? 100.0 * res.correct / res.count : 0.0;
  }

 private:
  static constexpr int kFeatures = 64;  // matches make_skewed_mlp input
  static constexpr int kClasses = 4;
  int size_;
  std::vector<std::vector<float>> xs_;
  std::vector<float> ys_;
  nn::ClassificationXent loss_;
};

// ---------------------------------------------------------------------------
// Spec parsing
// ---------------------------------------------------------------------------

TEST(RepartitionSpec, ParsesOffAutoAndThreshold) {
  auto off = parse_repartition_spec("off");
  EXPECT_FALSE(off.enabled);
  auto on = parse_repartition_spec("auto");
  EXPECT_TRUE(on.enabled);
  EXPECT_DOUBLE_EQ(on.threshold, RepartitionConfig{}.threshold);
  auto tuned = parse_repartition_spec("auto,1.5");
  EXPECT_TRUE(tuned.enabled);
  EXPECT_DOUBLE_EQ(tuned.threshold, 1.5);
}

TEST(RepartitionSpec, RejectsMalformedSpecs) {
  for (const char* bad : {"", "on", "auto,", "auto,1.0", "auto,0.5", "auto,x",
                          "auto,1.5x", "Auto"}) {
    EXPECT_THROW(parse_repartition_spec(bad), std::invalid_argument) << bad;
  }
}

TEST(RepartitionSpec, NameRoundTripsThroughParser) {
  for (const char* spec : {"off", "auto,1.5", "auto,2.0"}) {
    auto cfg = parse_repartition_spec(spec);
    auto again = parse_repartition_spec(repartition_spec_name(cfg));
    EXPECT_EQ(again.enabled, cfg.enabled) << spec;
    EXPECT_DOUBLE_EQ(again.threshold, cfg.threshold) << spec;
  }
}

TEST(RepartitionSpec, CliParserWiresConfigAndRejectsUnsupportedBackends) {
  auto parse = [](std::vector<std::string> argv_s) {
    std::vector<char*> argv;
    argv.push_back(const_cast<char*>("prog"));
    for (auto& a : argv_s) argv.push_back(a.data());
    util::Cli cli(static_cast<int>(argv.size()), argv.data());
    core::TrainerConfig cfg;
    core::parse_backend_cli(cli, cfg);
    return cfg;
  };
  auto cfg = parse({"--backend=threaded", "--repartition=auto,1.5"});
  EXPECT_TRUE(cfg.repartition.enabled);
  EXPECT_DOUBLE_EQ(cfg.repartition.threshold, 1.5);
  EXPECT_FALSE(parse({"--backend=threaded", "--repartition=off"})
                   .repartition.enabled);
  EXPECT_TRUE(parse({"--backend=threaded_steal", "--repartition=auto"})
                  .repartition.enabled);
  // The delay-model backends cannot migrate; the parser says so up front.
  for (const char* backend : {"sequential", "hogwild", "threaded_hogwild"}) {
    EXPECT_THROW(
        parse({std::string("--backend=") + backend, "--repartition=auto"}),
        std::invalid_argument)
        << backend;
    EXPECT_NO_THROW(
        parse({std::string("--backend=") + backend, "--repartition=off"}))
        << backend;
  }
  EXPECT_THROW(parse({"--backend=threaded", "--repartition=sometimes"}),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Observed-cost distribution
// ---------------------------------------------------------------------------

/// Four-unit chain, small enough to reason about splits by hand.
nn::Model make_chain4() {
  nn::Model m;
  for (int l = 0; l < 4; ++l) m.add(std::make_unique<nn::Linear>(8, 8, true));
  return m;
}

TEST(ObservedUnitCosts, DistributesBusyTimeByPredictedShare) {
  nn::Model m = make_chain4();
  std::vector<double> costs = {3.0, 1.0, 2.0, 2.0};
  Partition part = make_partition(m, 2, false, costs);
  // min-max split of {3,1,2,2} into 2 groups: {3,1} | {2,2}, max 4.
  ASSERT_EQ(part.unit_stage, (std::vector<int>{0, 0, 1, 1}));
  std::vector<std::uint64_t> busy = {800, 300};
  auto observed = observed_unit_costs(part, busy);
  ASSERT_EQ(observed.size(), 4u);
  // Stage 0's 800ns split 3:1; stage 1's 300ns split evenly.
  EXPECT_DOUBLE_EQ(observed[0], 600.0);
  EXPECT_DOUBLE_EQ(observed[1], 200.0);
  EXPECT_DOUBLE_EQ(observed[2], 150.0);
  EXPECT_DOUBLE_EQ(observed[3], 150.0);
}

TEST(ObservedUnitCosts, ZeroPredictedStageSplitsEvenly) {
  nn::Model m = make_chain4();
  Partition part = make_partition(m, 2, false);  // uniform: 2 units/stage
  part.unit_cost.assign(part.unit_cost.size(), 0.0);
  std::vector<std::uint64_t> busy = {900, 500};
  auto observed = observed_unit_costs(part, busy);
  EXPECT_DOUBLE_EQ(observed[0], 450.0);
  EXPECT_DOUBLE_EQ(observed[1], 450.0);
  EXPECT_DOUBLE_EQ(observed[2], 250.0);
  EXPECT_DOUBLE_EQ(observed[3], 250.0);
}

TEST(ObservedUnitCosts, MismatchedBusyVectorThrows) {
  nn::Model m = make_skewed_mlp();
  Partition part = make_partition(m, 4, false);
  std::vector<std::uint64_t> busy = {1, 2};
  EXPECT_THROW(observed_unit_costs(part, busy), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Migration validation
// ---------------------------------------------------------------------------

TEST(ValidateRepartition, RejectsIncompatiblePartitions) {
  nn::Model m = make_skewed_mlp();
  Partition from = make_partition(m, 4, false);
  EXPECT_NO_THROW(validate_repartition(from, make_partition(m, 4, false)));

  // Different stage count.
  EXPECT_THROW(validate_repartition(from, make_partition(m, 3, false)),
               std::invalid_argument);
  // Different unit decomposition.
  EXPECT_THROW(validate_repartition(from, make_partition(m, 4, true)),
               std::invalid_argument);
  // Different model (different unit sizes).
  nn::Model other;
  other.add(std::make_unique<nn::Linear>(4, 4, true));
  other.add(std::make_unique<nn::Linear>(4, 4, true));
  other.add(std::make_unique<nn::Linear>(4, 4, true));
  other.add(std::make_unique<nn::Linear>(4, 4, true));
  EXPECT_THROW(validate_repartition(from, make_partition(other, 4, false)),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Planner decision logic
// ---------------------------------------------------------------------------

TEST(Repartitioner, MigratesOffASkewedUniformSplit) {
  nn::Model m = make_skewed_mlp();
  Repartitioner planner(m, parse_repartition_spec("auto"));
  Partition uniform = make_partition(m, 4, false);
  // Busy time proportional to parameter count: the three heavies swamp
  // uniform stage 0.
  std::vector<std::uint64_t> busy(4, 0);
  for (int i = 0; i < uniform.num_units(); ++i) {
    busy[static_cast<std::size_t>(uniform.unit_stage[static_cast<std::size_t>(i)])] +=
        static_cast<std::uint64_t>(uniform.units[static_cast<std::size_t>(i)].size);
  }
  RepartitionDecision decision;
  auto planned = planner.plan(uniform, busy, &decision);
  ASSERT_TRUE(planned.has_value());
  EXPECT_TRUE(decision.migrate);
  EXPECT_GT(decision.observed_ratio, 2.0);
  EXPECT_LT(decision.planned_ratio, decision.observed_ratio);
  EXPECT_NE(planned->unit_stage, uniform.unit_stage);
  EXPECT_NO_THROW(validate_repartition(uniform, *planned));
  // The plan separates the heavy front: no stage owns all three heavies.
  EXPECT_NE(planned->unit_stage[0], planned->unit_stage[2]);
}

TEST(Repartitioner, StaysPutWhenBalancedOrBelowThreshold) {
  nn::Model m = make_skewed_mlp();
  Repartitioner planner(m, parse_repartition_spec("auto,1.5"));
  Partition uniform = make_partition(m, 4, false);

  // Evenly observed load: under every threshold, no move.
  std::vector<std::uint64_t> even(4, 1000);
  RepartitionDecision decision;
  EXPECT_FALSE(planner.plan(uniform, even, &decision).has_value());
  EXPECT_NEAR(decision.observed_ratio, 1.0, 1e-9);

  // Skew below the threshold: observed ratio 4800/4200 < 1.5.
  std::vector<std::uint64_t> mild = {4800, 4000, 4000, 4000};
  EXPECT_FALSE(planner.plan(uniform, mild, &decision).has_value());
  EXPECT_LT(decision.observed_ratio, 1.5);

  // A split that is already the observed optimum: replanning from its own
  // observation cannot strictly improve, so no thrash.
  std::vector<double> unit_costs(12, 1.0);
  Partition balanced = make_partition(m, 4, false, unit_costs);
  std::vector<std::uint64_t> matching(4, 0);
  for (int i = 0; i < balanced.num_units(); ++i) {
    matching[static_cast<std::size_t>(
        balanced.unit_stage[static_cast<std::size_t>(i)])] += 1000;
  }
  EXPECT_FALSE(planner.plan(balanced, matching, &decision).has_value());
}

TEST(Repartitioner, RejectsDegenerateConfig) {
  nn::Model m = make_skewed_mlp();
  RepartitionConfig bad_threshold;
  bad_threshold.threshold = 1.0;
  EXPECT_THROW(Repartitioner(m, bad_threshold), std::invalid_argument);
  RepartitionConfig bad_cooldown;
  bad_cooldown.min_epochs_between = 0;
  EXPECT_THROW(Repartitioner(m, bad_cooldown), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Engine migration: bit-identical to a fresh engine with the new split
// ---------------------------------------------------------------------------

/// Random microbatches for the skewed model (engine-level tests).
struct SkewedFixture {
  nn::Model model = make_skewed_mlp();
  nn::ClassificationXent head;
  std::vector<nn::Flow> inputs;
  std::vector<tensor::Tensor> targets;

  explicit SkewedFixture(int num_micro, std::uint64_t seed = 11) {
    util::Rng rng(seed);
    for (int m = 0; m < num_micro; ++m) {
      nn::Flow f;
      f.x = tensor::Tensor({4, 64});
      for (std::int64_t i = 0; i < f.x.size(); ++i) {
        f.x[i] = static_cast<float>(rng.normal());
      }
      tensor::Tensor t({4});
      for (int j = 0; j < 4; ++j) t[j] = static_cast<float>(rng.randint(4));
      inputs.push_back(std::move(f));
      targets.push_back(std::move(t));
    }
  }
};

/// One SGD step on an engine; returns the step loss.
template <typename EngineT>
double sgd_step(EngineT& engine, const SkewedFixture& fx) {
  auto r = engine.forward_backward(fx.inputs, fx.targets, fx.head);
  auto g = engine.gradients();
  auto w = engine.weights();
  for (std::size_t i = 0; i < g.size(); ++i) w[i] -= 0.05F * g[i];
  engine.commit_update();
  return r.loss;
}

TEST(EngineMigration, MigratedEngineMatchesFreshEngineBitwise) {
  // Engine A starts uniform and immediately migrates to the balanced
  // split; engine B is built balanced from scratch. Under the zero-copy
  // protocol (full-vector weight versions, offset-keyed state) the two
  // must train bit-identically from the first step on.
  SkewedFixture fx(4);
  EngineConfig uniform_cfg;
  uniform_cfg.method = Method::PipeMare;
  uniform_cfg.num_stages = 4;
  uniform_cfg.num_microbatches = 4;
  EngineConfig balanced_cfg = uniform_cfg;
  balanced_cfg.partition.strategy = PartitionStrategy::Balanced;

  ThreadedEngine migrated(fx.model, uniform_cfg, 1);
  ThreadedEngine fresh(fx.model, balanced_cfg, 1);
  Partition target = make_partition(fx.model, 4, false, balanced_cfg.partition);
  ASSERT_NE(migrated.partition().unit_stage, target.unit_stage)
      << "balanced must differ from uniform for this model";
  migrated.repartition(target);
  EXPECT_EQ(migrated.partition().unit_stage, fresh.partition().unit_stage);

  for (int step = 0; step < 5; ++step) {
    double lm = sgd_step(migrated, fx);
    double lf = sgd_step(fresh, fx);
    ASSERT_DOUBLE_EQ(lm, lf) << "step " << step;
  }
  auto wm = migrated.weights();
  auto wf = fresh.weights();
  ASSERT_EQ(wm.size(), wf.size());
  for (std::size_t i = 0; i < wm.size(); ++i) {
    ASSERT_EQ(wm[i], wf[i]) << "weight " << i;
  }
}

TEST(EngineMigration, SequentialAndThreadedAgreeAcrossMidTrainingMigration) {
  // Both engines train uniform for three steps, migrate to balanced at the
  // same minibatch boundary, and continue — losses, gradients and weights
  // stay bitwise equal throughout, so the migration itself is semantically
  // invisible (only stage placement changes).
  SkewedFixture fx(4);
  EngineConfig ec;
  ec.method = Method::PipeMare;
  ec.num_stages = 4;
  ec.num_microbatches = 4;
  PipelineEngine seq(fx.model, ec, 1);
  ThreadedEngine thr(fx.model, ec, 1);
  PartitionSpec balanced_spec;
  balanced_spec.strategy = PartitionStrategy::Balanced;
  Partition target = make_partition(fx.model, 4, false, balanced_spec);

  for (int step = 0; step < 6; ++step) {
    if (step == 3) {
      seq.repartition(target);
      thr.repartition(target);
    }
    double ls = sgd_step(seq, fx);
    double lt = sgd_step(thr, fx);
    ASSERT_DOUBLE_EQ(ls, lt) << "step " << step;
    auto gs = seq.gradients();
    auto gt = thr.gradients();
    ASSERT_EQ(gs.size(), gt.size());
    for (std::size_t i = 0; i < gs.size(); ++i) {
      ASSERT_EQ(gs[i], gt[i]) << "grad " << i << " at step " << step;
    }
  }
  for (std::size_t i = 0; i < seq.weights().size(); ++i) {
    ASSERT_EQ(seq.weights()[i], thr.weights()[i]) << "weight " << i;
  }
}

TEST(EngineMigration, EngineRejectsIncompatiblePartition) {
  SkewedFixture fx(2);
  EngineConfig ec;
  ec.num_stages = 4;
  ec.num_microbatches = 2;
  ThreadedEngine thr(fx.model, ec, 1);
  EXPECT_THROW(thr.repartition(make_partition(fx.model, 3, false)),
               std::invalid_argument);
  EXPECT_THROW(thr.repartition(make_partition(fx.model, 4, true)),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// End-to-end: off is bitwise-stable, auto rebalances a bad split
// ---------------------------------------------------------------------------

core::TrainerConfig skewed_trainer_config(int epochs) {
  core::TrainerConfig cfg;
  cfg.epochs = epochs;
  cfg.minibatch_size = 64;
  cfg.microbatch_size = 16;
  cfg.schedule = core::TrainerConfig::Sched::Constant;
  cfg.lr = 0.02;
  cfg.seed = 9;
  cfg.engine.num_stages = 4;
  cfg.backend = "threaded";
  return cfg;
}

TEST(RepartitionTraining, OffAndNeverTriggeredAutoMatchBaselineBitwise) {
  // --repartition=off must be the exact seed behaviour, and an auto run
  // whose threshold is never exceeded must not perturb training either
  // (the observer only reads counters until it migrates).
  SkewedTask task(64);
  core::TrainerConfig cfg = skewed_trainer_config(2);
  auto baseline = core::train(task, cfg);

  cfg.repartition = pipeline::parse_repartition_spec("off");
  auto off = core::train(task, cfg);

  cfg.repartition = pipeline::parse_repartition_spec("auto,1000000.0");
  auto never = core::train(task, cfg);

  ASSERT_EQ(baseline.curve.size(), off.curve.size());
  ASSERT_EQ(baseline.curve.size(), never.curve.size());
  for (std::size_t e = 0; e < baseline.curve.size(); ++e) {
    EXPECT_EQ(baseline.curve[e].train_loss, off.curve[e].train_loss) << e;
    EXPECT_EQ(baseline.curve[e].param_norm, off.curve[e].param_norm) << e;
    EXPECT_EQ(baseline.curve[e].train_loss, never.curve[e].train_loss) << e;
    EXPECT_EQ(baseline.curve[e].param_norm, never.curve[e].param_norm) << e;
  }
}

TEST(RepartitionTraining, AutoRebalancesSkewedUniformSplitWithinTwoEpochs) {
  // The acceptance scenario: a deliberately bad uniform split on the
  // skewed MLP, --repartition=auto. The first epoch observes the
  // imbalance, migrates at its boundary, and the post-migration epochs'
  // observed busy-time balance ratio improves by at least 2x.
  //
  // Pinned to the naive kernel backend: the 2x threshold is calibrated
  // against the scalar kernels' wall-clock skew, and the tiled backend
  // speeds up the wide GEMMs ~3x more than the narrow layers, compressing
  // the very imbalance the scenario measures. The rebalancing logic under
  // test is kernel-agnostic (it replans from observed busy counters).
  struct KindGuard {
    tensor::kernels::KernelKind saved = tensor::kernels::KernelRegistry::kind();
    ~KindGuard() { tensor::kernels::KernelRegistry::set_kind(saved); }
  } kind_guard;
  tensor::kernels::KernelRegistry::set_kind(tensor::kernels::KernelKind::naive);
  SkewedTask task(64);
  core::TrainerConfig cfg = skewed_trainer_config(4);
  cfg.engine.num_microbatches = cfg.num_microbatches();
  auto backend = core::BackendRegistry::instance().create(
      task.build_model(), core::BackendConfig("threaded"), cfg.engine, cfg.seed);

  core::StageLoadObserver load(*backend);
  core::StepObserver* peers[] = {&load};
  core::RepartitionObserver repartitioner(
      *backend, pipeline::parse_repartition_spec("auto"), peers);
  std::vector<core::StepObserver*> obs = {&load, &repartitioner};
  auto result = core::train_loop(task, *backend, cfg, obs);
  EXPECT_FALSE(result.diverged);

  ASSERT_GE(repartitioner.events().size(), 2u);
  EXPECT_TRUE(repartitioner.events().front().migrated)
      << "observed ratio " << repartitioner.events().front().observed_ratio;
  EXPECT_GE(repartitioner.migrations(), 1);

  // Busy-time spread before the migration (epoch 1) vs after (last epoch).
  ASSERT_EQ(load.epoch_stats().size(), 4u);
  double before = core::StageLoadObserver::busy_spread(load.epoch_stats().front());
  double after = core::StageLoadObserver::busy_spread(load.epoch_stats().back());
  EXPECT_GT(before, 1.5) << "uniform split should be visibly imbalanced";
  EXPECT_GE(before / after, 2.0)
      << "before=" << before << " after=" << after;

  // The loss curve stays sane across the migration (statistical parity
  // with a run that never migrates; bitwise parity is not expected — the
  // weight-version staleness pattern legitimately changes).
  for (const auto& rec : result.curve) {
    EXPECT_TRUE(std::isfinite(rec.train_loss));
  }
}

TEST(RepartitionTraining, TrainRejectsUninstrumentedBackend) {
  SkewedTask task(64);
  core::TrainerConfig cfg = skewed_trainer_config(1);
  cfg.backend = "sequential";
  cfg.repartition = pipeline::parse_repartition_spec("auto");
  EXPECT_THROW(core::train(task, cfg), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Observer interplay: baselines reset across a migration
// ---------------------------------------------------------------------------

TEST(StageLoadObserver, BaselineResetsOnRepartitionAndSizeChange) {
  SkewedFixture fx(2);
  EngineConfig ec;
  ec.num_stages = 4;
  ec.num_microbatches = 2;
  ThreadedEngine thr(fx.model, ec, 1);
  core::StageLoadObserver load(thr);
  core::EpochRecord rec;
  rec.metric = 0.0;

  sgd_step(thr, fx);
  load.on_epoch(rec);
  ASSERT_EQ(load.epoch_stats().size(), 1u);

  // A repartition resets the engine counters; the observer must not diff
  // the next epoch against the stale (larger) baseline.
  PartitionSpec spec;
  spec.strategy = PartitionStrategy::Balanced;
  Partition target = make_partition(fx.model, 4, false, spec);
  Partition from = thr.partition();
  thr.repartition(target);
  thr.reset_stage_stats();
  load.on_repartition(from, target, 1);

  sgd_step(thr, fx);
  load.on_epoch(rec);
  ASSERT_EQ(load.epoch_stats().size(), 2u);
  auto fresh = thr.stage_stats();
  const auto& delta = load.epoch_stats().back();
  ASSERT_EQ(delta.size(), fresh.size());
  for (std::size_t s = 0; s < delta.size(); ++s) {
    // Without the baseline reset the "delta" would wrap through the
    // regression fallback; with it, the epoch delta is the post-reset
    // cumulative value.
    EXPECT_EQ(delta[s].busy_ns, fresh[s].busy_ns) << "stage " << s;
    EXPECT_EQ(delta[s].items, fresh[s].items) << "stage " << s;
  }
}

}  // namespace
}  // namespace pipemare::pipeline
