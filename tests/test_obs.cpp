// The observability suite (tier1): obs::MetricsRegistry semantics
// (counter/gauge/histogram, bounds fixing, snapshots), obs::TraceRecorder
// (disabled no-op, span/instant recording, drop-counted overflow, reset),
// Chrome trace-event schema checks on real traced runs (a threaded_steal
// training run and a PipelineServer session), the PipeMare staleness
// histograms' bound contracts (observed tau <= max_delay for the Hogwild
// backends, <= Schedule::max_staleness for the versioned engines), the
// acceptance-criteria invariant that curves are bitwise-equal with tracing
// on vs off, and the StageStats delta/reset contract StageLoadObserver
// relies on — uniformly across all five registered backends.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "src/core/backend.h"
#include "src/core/engine_backend.h"
#include "src/core/stage_load.h"
#include "src/core/task.h"
#include "src/core/trainer.h"
#include "src/hogwild/hogwild.h"
#include "src/hogwild/threaded_hogwild.h"
#include "src/nn/activations.h"
#include "src/nn/heads.h"
#include "src/nn/linear.h"
#include "src/nn/model.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/pipeline/engine.h"
#include "src/pipeline/schedule.h"
#include "src/pipeline/weight_versions.h"
#include "src/serve/checkpoint.h"
#include "src/serve/pipeline_server.h"
#include "src/util/rng.h"

namespace pipemare {
namespace {

std::string temp_path(const std::string& name) {
  return testing::TempDir() + "pipemare_obs_" + name;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.is_open()) << "cannot open " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Structural JSON sanity without a parser dependency: every brace/bracket
/// closes (quotes respected). The CI smoke goes further and runs the file
/// through python's json.load; this catches exporter regressions in-test.
bool balanced_json(const std::string& s) {
  int depth = 0;
  bool in_string = false;
  bool escaped = false;
  for (char c : s) {
    if (escaped) {
      escaped = false;
      continue;
    }
    if (in_string) {
      if (c == '\\') escaped = true;
      if (c == '"') in_string = false;
      continue;
    }
    if (c == '"') in_string = true;
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') {
      if (--depth < 0) return false;
    }
  }
  return depth == 0 && !in_string;
}

/// The tier-1 MLP fixture (same recipe as the sched/threaded suites).
struct MlpFixture {
  nn::Model model;
  nn::ClassificationXent head;
  std::vector<nn::Flow> inputs;
  std::vector<tensor::Tensor> targets;

  MlpFixture(int layers, int width, int classes, int num_micro,
             std::uint64_t seed = 17) {
    for (int i = 0; i < layers; ++i) {
      model.add(std::make_unique<nn::Linear>(width, width, /*relu_init=*/true));
      model.add(std::make_unique<nn::ReLU>());
    }
    model.add(std::make_unique<nn::Linear>(width, classes));
    util::Rng rng(seed);
    for (int m = 0; m < num_micro; ++m) {
      nn::Flow f;
      f.x = tensor::Tensor({2, width});
      for (std::int64_t i = 0; i < f.x.size(); ++i) {
        f.x[i] = static_cast<float>(rng.normal());
      }
      tensor::Tensor t({2});
      for (int j = 0; j < 2; ++j) t[j] = static_cast<float>(rng.randint(classes));
      inputs.push_back(std::move(f));
      targets.push_back(std::move(t));
    }
  }
};

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

TEST(Metrics, CounterAndGaugeBasics) {
  auto& reg = obs::MetricsRegistry::instance();
  obs::Counter& c = reg.counter("obs.test.counter");
  c.reset();
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(4);
  EXPECT_EQ(c.value(), 5u);
  // Same name -> same instrument (the caching contract).
  EXPECT_EQ(&reg.counter("obs.test.counter"), &c);
  c.reset();
  EXPECT_EQ(c.value(), 0u);

  obs::Gauge& g = reg.gauge("obs.test.gauge");
  g.set(2.5);
  EXPECT_EQ(g.value(), 2.5);
  EXPECT_EQ(&reg.gauge("obs.test.gauge"), &g);
}

TEST(Metrics, HistogramBucketsQuantilesAndReset) {
  obs::Histogram h(obs::Histogram::linear_bounds(0.0, 1.0, 4));
  ASSERT_EQ(h.bounds(), (std::vector<double>{0.0, 1.0, 2.0, 3.0}));
  ASSERT_EQ(h.num_buckets(), 5u);  // 4 finite + overflow

  EXPECT_TRUE(std::isnan(h.quantile(0.5)));  // empty
  h.observe(0.0);
  h.observe(0.5);
  h.observe(2.0);
  h.observe(10.0);  // overflow bucket
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.bucket_count(0), 1u);  // <= 0
  EXPECT_EQ(h.bucket_count(1), 1u);  // <= 1
  EXPECT_EQ(h.bucket_count(2), 1u);  // <= 2
  EXPECT_EQ(h.bucket_count(3), 0u);  // <= 3
  EXPECT_EQ(h.bucket_count(4), 1u);  // overflow
  EXPECT_DOUBLE_EQ(h.sum(), 12.5);
  EXPECT_DOUBLE_EQ(h.mean(), 12.5 / 4.0);
  // max_observed is exact even though 10.0 landed in the overflow bucket —
  // this is why the staleness-bound assertions below are meaningful.
  EXPECT_DOUBLE_EQ(h.max_observed(), 10.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.25), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 1.0);
  // Overflow quantile reports the last finite bound (bucket resolution).
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 3.0);

  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_TRUE(std::isnan(h.quantile(0.5)));
  for (std::size_t i = 0; i < h.num_buckets(); ++i) EXPECT_EQ(h.bucket_count(i), 0u);

  auto exp = obs::Histogram::exponential_bounds(1.0, 2.0, 3);
  EXPECT_EQ(exp, (std::vector<double>{1.0, 2.0, 4.0}));
}

TEST(Metrics, FirstRegistrationFixesHistogramBounds) {
  auto& reg = obs::MetricsRegistry::instance();
  obs::Histogram& h =
      reg.histogram("obs.test.hist", obs::Histogram::linear_bounds(0.0, 1.0, 2));
  obs::Histogram& again =
      reg.histogram("obs.test.hist", obs::Histogram::linear_bounds(0.0, 5.0, 8));
  EXPECT_EQ(&again, &h);
  EXPECT_EQ(again.bounds(), (std::vector<double>{0.0, 1.0}));
  EXPECT_EQ(reg.find_histogram("obs.test.hist"), &h);
  EXPECT_EQ(reg.find_histogram("obs.test.no-such-histogram"), nullptr);
}

TEST(Metrics, SnapshotListsEveryInstrumentAndWritesValidJson) {
  auto& reg = obs::MetricsRegistry::instance();
  reg.reset();
  reg.counter("obs.snap.counter").add(3);
  reg.gauge("obs.snap.gauge").set(-1.5);
  obs::Histogram& h =
      reg.histogram("obs.snap.hist", obs::Histogram::linear_bounds(0.0, 1.0, 4));
  h.observe(0.5);
  h.observe(2.5);

  const std::string json = reg.snapshot_json().dump();
  EXPECT_TRUE(balanced_json(json)) << json;
  for (const char* needle :
       {"\"counters\"", "\"gauges\"", "\"histograms\"", "\"obs.snap.counter\"",
        "\"obs.snap.gauge\"", "\"obs.snap.hist\"", "\"count\"", "\"mean\"",
        "\"p50\"", "\"p99\"", "\"buckets\"", "\"le\""}) {
    EXPECT_NE(json.find(needle), std::string::npos) << "missing " << needle;
  }

  const std::string text = reg.snapshot_text();
  EXPECT_NE(text.find("obs.snap.counter"), std::string::npos);
  EXPECT_NE(text.find("obs.snap.hist"), std::string::npos);

  const std::string path = temp_path("metrics_snapshot.json");
  reg.write_json(path);
  EXPECT_EQ(read_file(path), json);
  EXPECT_THROW(reg.write_json("/no/such/dir/metrics.json"), std::runtime_error);

  // reset() zeroes state but keeps registrations (cached pointers stay valid).
  reg.reset();
  EXPECT_EQ(reg.counter("obs.snap.counter").value(), 0u);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(reg.find_histogram("obs.snap.hist"), &h);
}

// ---------------------------------------------------------------------------
// TraceRecorder
// ---------------------------------------------------------------------------

TEST(Trace, DisabledPathRecordsNothing) {
  auto& rec = obs::TraceRecorder::instance();
  rec.reset();
  EXPECT_FALSE(rec.enabled());
  {
    obs::Span span("noop", "test", 0, 0, 0);
  }
  obs::instant("noop", "test");
  rec.record_complete("noop", "test", 0, 1, -1, -1, -1);
  rec.record_instant("noop", "test", -1, -1, -1);
  EXPECT_EQ(rec.recorded(), 0u);
  EXPECT_EQ(rec.dropped(), 0u);
}

TEST(Trace, SpansInstantsAndThreadNamesExportChromeSchema) {
  auto& rec = obs::TraceRecorder::instance();
  rec.enable();
  rec.set_thread_name("obs-test-main");
  {
    obs::Span span("work", "test", /*stage=*/1, /*micro=*/2, /*step=*/3);
  }
  obs::instant("mark", "test", /*stage=*/0, /*micro=*/-1, /*step=*/7);
  rec.disable();
  EXPECT_EQ(rec.recorded(), 2u);
  EXPECT_EQ(rec.dropped(), 0u);

  const std::string path = temp_path("unit_trace.json");
  obs::write_chrome_trace(path);
  const std::string trace = read_file(path);
  EXPECT_TRUE(balanced_json(trace)) << trace;
  for (const char* needle :
       {"\"traceEvents\"", "\"displayTimeUnit\": \"ms\"",
        // The complete span, with its duration and args.
        "\"name\": \"work\"", "\"ph\": \"X\"", "\"dur\":",
        // The instant, thread-scoped as Perfetto requires.
        "\"name\": \"mark\"", "\"ph\": \"i\"", "\"s\": \"t\"",
        // The thread_name metadata row.
        "\"ph\": \"M\"", "\"thread_name\"", "\"obs-test-main\"",
        // Common fields + args payload.
        "\"pid\": 1", "\"tid\": 0", "\"stage\": 1", "\"micro\": 2",
        "\"step\": 3"}) {
    EXPECT_NE(trace.find(needle), std::string::npos) << "missing " << needle;
  }
  // The instant's unset micro (-1) must be omitted from args, not emitted.
  EXPECT_EQ(trace.find("\"micro\": -1"), std::string::npos);

  rec.reset();
  EXPECT_EQ(rec.recorded(), 0u);
  EXPECT_FALSE(rec.enabled());
}

TEST(Trace, OverflowCountsDropsInsteadOfWrapping) {
  auto& rec = obs::TraceRecorder::instance();
  rec.enable(/*capacity_per_thread=*/4);
  for (int i = 0; i < 10; ++i) obs::instant("e", "test", -1, -1, i);
  rec.disable();
  EXPECT_EQ(rec.recorded(), 4u);
  EXPECT_EQ(rec.dropped(), 6u);

  // The export is an honest prefix: exactly the 4 recorded events (steps
  // 0..3), none of the dropped ones.
  const std::string path = temp_path("overflow_trace.json");
  obs::write_chrome_trace(path);
  const std::string trace = read_file(path);
  for (int i = 0; i < 4; ++i) {
    EXPECT_NE(trace.find("\"step\": " + std::to_string(i)), std::string::npos);
  }
  EXPECT_EQ(trace.find("\"step\": 4"), std::string::npos);
  rec.reset();
}

TEST(Trace, EnableRestartsTheSession) {
  auto& rec = obs::TraceRecorder::instance();
  rec.enable();
  obs::instant("first", "test");
  rec.enable();  // restart drops the previous session's buffers
  obs::instant("second", "test");
  rec.disable();
  EXPECT_EQ(rec.recorded(), 1u);
  const std::string path = temp_path("restart_trace.json");
  obs::write_chrome_trace(path);
  const std::string trace = read_file(path);
  EXPECT_EQ(trace.find("\"first\""), std::string::npos);
  EXPECT_NE(trace.find("\"second\""), std::string::npos);
  rec.reset();
}

// ---------------------------------------------------------------------------
// Weight-staleness histograms (the measured-tau probes)
// ---------------------------------------------------------------------------

TEST(Staleness, VersionedEnginesStayWithinScheduleBound) {
  obs::MetricsRegistry::instance().reset();
  constexpr int kStages = 3;
  constexpr int kMicro = 2;
  MlpFixture fx(/*layers=*/3, /*width=*/10, /*classes=*/4, kMicro);
  pipeline::EngineConfig ec;
  ec.method = pipeline::Method::PipeMare;
  ec.num_stages = kStages;
  ec.num_microbatches = kMicro;
  pipeline::PipelineEngine eng(fx.model, ec, 1);
  for (int step = 0; step < 4; ++step) {
    (void)eng.forward_backward(fx.inputs, fx.targets, fx.head);
    eng.commit_update();
  }
  const double bound = pipeline::Schedule(kStages, kMicro).max_staleness();
  for (int s = 0; s < kStages; ++s) {
    const obs::Histogram* h = obs::MetricsRegistry::instance().find_histogram(
        "train.staleness.stage" + std::to_string(s));
    ASSERT_NE(h, nullptr) << "stage " << s;
    EXPECT_GT(h->count(), 0u) << "stage " << s;
    EXPECT_LE(h->max_observed(), bound) << "stage " << s;
    EXPECT_GE(h->max_observed(), 0.0) << "stage " << s;
  }
  // Later stages have smaller forward delay under PipeMare (tau_fwd shrinks
  // toward the last stage), so the measured maxima must be non-increasing.
  const auto* first =
      obs::MetricsRegistry::instance().find_histogram("train.staleness.stage0");
  const auto* last = obs::MetricsRegistry::instance().find_histogram(
      "train.staleness.stage" + std::to_string(kStages - 1));
  EXPECT_GE(first->max_observed(), last->max_observed());
}

TEST(Staleness, HogwildBackendsStayWithinMaxDelay) {
  obs::MetricsRegistry::instance().reset();
  constexpr int kStages = 3;
  constexpr double kMaxDelay = 3.0;
  hogwild::HogwildConfig hw;
  hw.num_stages = kStages;
  hw.num_microbatches = 2;
  hw.max_delay = kMaxDelay;

  {
    MlpFixture fx(/*layers=*/3, /*width=*/10, /*classes=*/4, 2);
    hogwild::HogwildEngine eng(fx.model, hw, 1);
    for (int step = 0; step < 6; ++step) {
      (void)eng.forward_backward(fx.inputs, fx.targets, fx.head);
      eng.commit_update();
    }
  }
  {
    MlpFixture fx(/*layers=*/3, /*width=*/10, /*classes=*/4, 2);
    hw.num_workers = 2;
    hogwild::ThreadedHogwildEngine eng(fx.model, hw, 1);
    for (int step = 0; step < 6; ++step) {
      (void)eng.forward_backward(fx.inputs, fx.targets, fx.head);
      eng.commit_update();
    }
  }

  // Both engines feed the same per-stage histogram family; the sampled
  // delay is truncated at max_delay and clamped at startup, so every
  // observation obeys the configured bound.
  for (int s = 0; s < kStages; ++s) {
    const obs::Histogram* h = obs::MetricsRegistry::instance().find_histogram(
        "train.staleness.stage" + std::to_string(s));
    ASSERT_NE(h, nullptr) << "stage " << s;
    EXPECT_GT(h->count(), 0u) << "stage " << s;
    EXPECT_LE(h->max_observed(), kMaxDelay) << "stage " << s;
    EXPECT_GE(h->max_observed(), 0.0) << "stage " << s;
  }
}

// ---------------------------------------------------------------------------
// Traced end-to-end runs (the acceptance criteria)
// ---------------------------------------------------------------------------

core::TrainerConfig tiny_steal_config() {
  core::TrainerConfig cfg;
  cfg.engine.method = pipeline::Method::PipeMare;
  cfg.engine.num_stages = 4;
  cfg.epochs = 2;
  cfg.minibatch_size = 32;
  cfg.microbatch_size = 8;
  cfg.schedule = core::TrainerConfig::Sched::Constant;
  cfg.lr = 0.05;
  cfg.seed = 5;
  core::StealOptions opts;
  opts.workers = 3;
  opts.mode = sched::StealMode::Deterministic;
  cfg.backend = {"threaded_steal", opts};
  return cfg;
}

TEST(TracedTraining, CurvesBitwiseEqualAndFilesValid) {
  data::ImageDatasetConfig d;
  d.classes = 4;
  d.train_size = 64;
  d.test_size = 32;
  d.image_size = 8;
  d.noise_std = 0.4;
  d.seed = 11;
  nn::ResNetConfig m;
  m.base_channels = 6;
  m.blocks_per_group = {1, 1};
  core::ImageTask task(d, m, "tiny-image");

  // Reference: same config, no instrumentation outputs.
  auto plain = core::train(task, tiny_steal_config());

  obs::MetricsRegistry::instance().reset();
  auto cfg = tiny_steal_config();
  cfg.trace_path = temp_path("train_trace.json");
  cfg.metrics_path = temp_path("train_metrics.json");
  auto traced = core::train(task, cfg);

  // The headline invariant: observability must not touch numerics.
  ASSERT_EQ(plain.curve.size(), traced.curve.size());
  for (std::size_t e = 0; e < plain.curve.size(); ++e) {
    EXPECT_EQ(plain.curve[e].train_loss, traced.curve[e].train_loss) << "epoch " << e;
    EXPECT_EQ(plain.curve[e].metric, traced.curve[e].metric) << "epoch " << e;
    EXPECT_EQ(plain.curve[e].param_norm, traced.curve[e].param_norm) << "epoch " << e;
  }

  // train() owns the session: the recorder is off again after returning.
  EXPECT_FALSE(obs::TraceRecorder::instance().enabled());
  EXPECT_GT(obs::TraceRecorder::instance().recorded(), 0u);

  const std::string trace = read_file(cfg.trace_path);
  EXPECT_TRUE(balanced_json(trace));
  for (const char* needle :
       {"\"traceEvents\"", "\"ph\": \"X\"", "\"cat\": \"sched\"",
        "\"name\": \"fwd\"", "\"name\": \"bwd\"", "\"thread_name\"",
        "\"pool-worker-0\""}) {
    EXPECT_NE(trace.find(needle), std::string::npos) << "missing " << needle;
  }

  const std::string metrics = read_file(cfg.metrics_path);
  EXPECT_TRUE(balanced_json(metrics));
  for (const char* needle :
       {"\"train.staleness.stage0\"", "\"train.staleness.stage3\"",
        "\"sched.tasks_pushed\"", "\"sched.tasks_popped\"", "\"train.epoch\"",
        "\"train.loss\"", "\"train.param_norm\"", "\"kernels.gemm_dispatch\"",
        "\"sched.total_steals\""}) {
    EXPECT_NE(metrics.find(needle), std::string::npos) << "missing " << needle;
  }

  // The MetricsObserver's final epoch gauge matches the returned curve.
  EXPECT_EQ(obs::MetricsRegistry::instance().gauge("train.loss").value(),
            traced.curve.back().train_loss);
  obs::TraceRecorder::instance().reset();
}

TEST(TracedServe, SessionWritesTraceAndLatencyHistograms) {
  obs::MetricsRegistry::instance().reset();
  constexpr int kWidth = 8;
  constexpr int kRequests = 8;
  nn::Model model;
  model.add(std::make_unique<nn::Linear>(kWidth, kWidth, /*relu_init=*/true));
  model.add(std::make_unique<nn::ReLU>());
  model.add(std::make_unique<nn::Linear>(kWidth, 4));
  std::vector<float> w(static_cast<std::size_t>(model.param_count()));
  util::Rng rng(3);
  model.init_params(w, rng);
  serve::ModelCheckpoint ckpt;
  ckpt.digest = serve::shape_digest(model);
  ckpt.weights = w;

  serve::ServeConfig cfg;
  cfg.num_stages = 2;
  cfg.workers = 2;
  cfg.batch.policy = serve::BatchPolicy::Continuous;
  cfg.batch.max_batch = 2;
  cfg.trace_path = temp_path("serve_trace.json");
  cfg.metrics_path = temp_path("serve_metrics.json");

  serve::PipelineServer server(model, ckpt, cfg);
  server.start();
  std::vector<serve::TicketPtr> tickets;
  for (int i = 0; i < kRequests; ++i) {
    nn::Flow f;
    f.x = tensor::Tensor({1, kWidth});
    for (std::int64_t j = 0; j < f.x.size(); ++j) {
      f.x[j] = static_cast<float>(rng.normal());
    }
    tickets.push_back(server.submit(std::move(f)));
  }
  for (auto& t : tickets) ASSERT_EQ(t->wait().status, serve::Status::Ok);
  server.stop();
  EXPECT_FALSE(obs::TraceRecorder::instance().enabled());

  auto& reg = obs::MetricsRegistry::instance();
  EXPECT_EQ(reg.counter("serve.submitted").value(), kRequests);
  EXPECT_EQ(reg.counter("serve.admitted").value(), kRequests);
  EXPECT_EQ(reg.counter("serve.completed").value(), kRequests);
  EXPECT_EQ(reg.counter("serve.rejected").value(), 0u);
  EXPECT_EQ(reg.counter("serve.errors").value(), 0u);
  EXPECT_GE(reg.counter("serve.batches").value(),
            static_cast<std::uint64_t>(kRequests / cfg.batch.max_batch));
  // The latency histograms observe exactly the Response values clients see.
  const obs::Histogram* queue_ms = reg.find_histogram("serve.queue_ms");
  const obs::Histogram* total_ms = reg.find_histogram("serve.total_ms");
  ASSERT_NE(queue_ms, nullptr);
  ASSERT_NE(total_ms, nullptr);
  EXPECT_EQ(queue_ms->count(), kRequests);
  EXPECT_EQ(total_ms->count(), kRequests);
  EXPECT_GE(total_ms->max_observed(), 0.0);

  const std::string trace = read_file(cfg.trace_path);
  EXPECT_TRUE(balanced_json(trace));
  for (const char* needle :
       {"\"traceEvents\"", "\"cat\": \"serve\"", "\"name\": \"enqueue\"",
        "\"name\": \"admit\"", "\"name\": \"complete\"", "\"name\": \"stage\"",
        "\"ph\": \"i\"", "\"s\": \"t\"", "\"ph\": \"X\""}) {
    EXPECT_NE(trace.find(needle), std::string::npos) << "missing " << needle;
  }
  const std::string metrics = read_file(cfg.metrics_path);
  EXPECT_TRUE(balanced_json(metrics));
  EXPECT_NE(metrics.find("\"serve.queue_ms\""), std::string::npos);
  EXPECT_NE(metrics.find("\"serve.total_ms\""), std::string::npos);
  obs::TraceRecorder::instance().reset();
}

// ---------------------------------------------------------------------------
// StageStats delta/reset contract across all five backends (the surface
// StageLoadObserver and the metrics exporter both build on)
// ---------------------------------------------------------------------------

core::BackendConfig backend_config_for(const std::string& name) {
  if (name == "threaded_steal") {
    core::StealOptions opts;
    opts.workers = 2;
    opts.mode = sched::StealMode::Forced;
    return {name, opts};
  }
  if (name == "threaded_hogwild") {
    core::ThreadedHogwildOptions opts;
    opts.workers = 2;
    return {name, opts};
  }
  return {name};
}

TEST(StageStatsContract, DeltaAndResetSemanticsAcrossAllBackends) {
  constexpr int kStages = 2;
  constexpr int kMicro = 2;
  const std::vector<std::string> instrumented = {"threaded", "threaded_steal",
                                                 "threaded_hogwild"};
  const std::vector<std::string> uninstrumented = {"sequential", "hogwild"};

  for (const auto& name : uninstrumented) {
    MlpFixture fx(/*layers=*/4, /*width=*/10, /*classes=*/4, kMicro);
    pipeline::EngineConfig ec;
    ec.method = pipeline::Method::PipeMare;
    ec.num_stages = kStages;
    ec.num_microbatches = kMicro;
    auto backend = core::BackendRegistry::instance().create(
        std::move(fx.model), backend_config_for(name), ec, 1);
    core::StageLoadObserver load(*backend);
    // No per-slot instrumentation: the observer deactivates, uniformly.
    EXPECT_FALSE(load.active()) << name;
    core::EpochRecord rec;
    load.on_epoch(rec);
    EXPECT_TRUE(load.epoch_stats().empty()) << name;
  }

  for (const auto& name : instrumented) {
    MlpFixture fx(/*layers=*/4, /*width=*/10, /*classes=*/4, kMicro);
    pipeline::EngineConfig ec;
    ec.method = pipeline::Method::PipeMare;
    ec.num_stages = kStages;
    ec.num_microbatches = kMicro;
    auto backend = core::BackendRegistry::instance().create(
        std::move(fx.model), backend_config_for(name), ec, 1);
    core::StageLoadObserver load(*backend);
    ASSERT_TRUE(load.active()) << name;

    // Two "epochs" of two steps each: the observer's deltas must tile the
    // cumulative counters exactly (no double counting, nothing lost).
    for (int epoch = 0; epoch < 2; ++epoch) {
      for (int step = 0; step < 2; ++step) {
        (void)backend->forward_backward(fx.inputs, fx.targets, fx.head);
        backend->commit_update();
      }
      core::EpochRecord rec;
      load.on_epoch(rec);
    }
    ASSERT_EQ(load.epoch_stats().size(), 2u) << name;
    const auto& totals = load.totals();
    ASSERT_EQ(totals.size(), load.epoch_stats()[0].size()) << name;
    for (std::size_t s = 0; s < totals.size(); ++s) {
      std::uint64_t items = 0;
      std::uint64_t busy = 0;
      for (const auto& epoch : load.epoch_stats()) {
        items += epoch[s].items;
        busy += epoch[s].busy_ns;
      }
      EXPECT_EQ(items, totals[s].items) << name << " slot " << s;
      EXPECT_EQ(busy, totals[s].busy_ns) << name << " slot " << s;
      EXPECT_GT(totals[s].items, 0u) << name << " slot " << s;
    }

    // reset_stage_stats zeroes every slot...
    backend->reset_stage_stats();
    for (const auto& s : backend->stage_stats()) {
      EXPECT_EQ(s.items, 0u) << name;
      EXPECT_EQ(s.busy_ns, 0u) << name;
      EXPECT_EQ(s.pop_wait_ns, 0u) << name;
      EXPECT_EQ(s.stolen_items, 0u) << name;
    }

    // ...and the observer's since() fallback treats the post-reset
    // cumulative value as the next epoch's delta (counters regressed below
    // the stale baseline), so per-epoch reporting survives a mid-run reset.
    (void)backend->forward_backward(fx.inputs, fx.targets, fx.head);
    backend->commit_update();
    auto cumulative = backend->stage_stats();
    core::EpochRecord rec;
    load.on_epoch(rec);
    const auto& delta = load.epoch_stats().back();
    ASSERT_EQ(delta.size(), cumulative.size()) << name;
    for (std::size_t s = 0; s < delta.size(); ++s) {
      EXPECT_EQ(delta[s].items, cumulative[s].items) << name << " slot " << s;
    }
  }
}

}  // namespace
}  // namespace pipemare
