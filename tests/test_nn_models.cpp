#include <gtest/gtest.h>

#include <cmath>

#include "src/nn/activations.h"
#include "src/nn/attention.h"
#include "src/nn/conv2d.h"
#include "src/nn/embedding.h"
#include "src/nn/heads.h"
#include "src/nn/linear.h"
#include "src/nn/norm.h"
#include "src/nn/residual.h"
#include "src/nn/resnet.h"
#include "src/nn/transformer.h"
#include "src/util/rng.h"

namespace pipemare::nn {
namespace {

using tensor::Tensor;

double model_loss(const Model& model, const LossHead& head, const Flow& in,
                  const Tensor& target, std::span<const float> params) {
  auto caches = model.make_caches();
  Flow out = model.forward(in, params, caches);
  return head.forward_backward(out.x, target).loss;
}

/// Whole-model finite-difference gradient check on random parameter probes.
void model_gradcheck(const Model& model, const LossHead& head, const Flow& in,
                     const Tensor& target, util::Rng& rng, int probes,
                     double eps = 5e-3, double rel_tol = 0.1, double abs_tol = 4e-3) {
  std::vector<float> params(static_cast<std::size_t>(model.param_count()));
  model.init_params(params, rng);
  std::vector<float> grad(params.size(), 0.0F);
  auto caches = model.make_caches();
  Flow out = model.forward(in, params, caches);
  LossResult lr = head.forward_backward(out.x, target);
  Flow dflow;
  dflow.x = lr.doutput;
  model.backward(std::move(dflow), params, caches, grad);

  for (int probe = 0; probe < probes; ++probe) {
    auto i = static_cast<std::size_t>(rng.randint(static_cast<int>(params.size())));
    float saved = params[i];
    params[i] = saved + static_cast<float>(eps);
    double lp = model_loss(model, head, in, target, params);
    params[i] = saved - static_cast<float>(eps);
    double lm = model_loss(model, head, in, target, params);
    params[i] = saved;
    double numeric = (lp - lm) / (2.0 * eps);
    double tol = abs_tol + rel_tol * std::abs(numeric);
    EXPECT_NEAR(grad[i], numeric, tol) << "param " << i;
  }
}

TEST(ResNetModel, BuildsAndClassifiesShapes) {
  ResNetConfig cfg;
  cfg.blocks_per_group = {1, 1};
  Model m = make_resnet(cfg);
  EXPECT_GT(m.param_count(), 0);
  util::Rng rng(1);
  std::vector<float> params(static_cast<std::size_t>(m.param_count()));
  m.init_params(params, rng);
  Flow in;
  in.x = Tensor({2, 3, 8, 8});
  for (std::int64_t i = 0; i < in.x.size(); ++i) in.x[i] = static_cast<float>(rng.normal());
  auto caches = m.make_caches();
  Flow out = m.forward(std::move(in), params, caches);
  EXPECT_EQ(out.x.dim(0), 2);
  EXPECT_EQ(out.x.dim(1), cfg.num_classes);
}

TEST(ResNetModel, WholeModelGradCheck) {
  ResNetConfig cfg;
  cfg.base_channels = 4;
  cfg.blocks_per_group = {1, 1};
  cfg.num_classes = 3;
  Model m = make_resnet(cfg);
  util::Rng rng(2);
  Flow in;
  in.x = Tensor({2, 3, 8, 8});
  for (std::int64_t i = 0; i < in.x.size(); ++i) in.x[i] = static_cast<float>(rng.normal());
  Tensor target({2}, {0.0F, 2.0F});
  // Loose tolerance: BatchNorm centers activations at zero, so finite
  // differences constantly cross ReLU kinks; the tight compositional check
  // is the kink-free variant below plus the per-layer gradchecks.
  model_gradcheck(m, ClassificationXent(), in, target, rng, 40, 5e-3, 0.35, 0.025);
}

TEST(ResNetModel, KinkFreeCompositionGradCheckTight) {
  // Same structural ingredients as make_resnet (conv stride-2, BatchNorm,
  // identity + projection residuals, GAP, linear head) but without ReLU,
  // so finite differences are trustworthy and the tolerance can be tight.
  util::Rng rng(21);
  Model m;
  m.add(std::make_unique<Conv2d>(3, 4, 3, 1, 1));
  m.add(std::make_unique<BatchNorm2d>(4));
  m.add(std::make_unique<ResidualOpen>());
  m.add(std::make_unique<Conv2d>(4, 4, 3, 1, 1));
  m.add(std::make_unique<BatchNorm2d>(4));
  m.add(std::make_unique<ResidualClose>());
  m.add(std::make_unique<ResidualOpen>());
  m.add(std::make_unique<Conv2d>(4, 8, 3, 2, 1));
  m.add(std::make_unique<BatchNorm2d>(8));
  m.add(std::make_unique<ResidualClose>(4, 8, 2));
  m.add(std::make_unique<GlobalAvgPool>());
  m.add(std::make_unique<Linear>(8, 3));
  Flow in;
  in.x = Tensor({2, 3, 8, 8});
  for (std::int64_t i = 0; i < in.x.size(); ++i) in.x[i] = static_cast<float>(rng.normal());
  Tensor target({2}, {1.0F, 2.0F});
  model_gradcheck(m, ClassificationXent(), in, target, rng, 60);
}

TEST(ResNetModel, DeepPresetHasMoreWeightUnits) {
  Model base = make_resnet(ResNetConfig{});
  Model deep = make_resnet(ResNetConfig::deep());
  EXPECT_GT(deep.weight_units(false).size(), base.weight_units(false).size());
}

TEST(TransformerModel, ForwardShapes) {
  TransformerConfig cfg;
  cfg.vocab = 11;
  cfg.d_model = 16;
  cfg.heads = 2;
  cfg.enc_layers = 1;
  cfg.dec_layers = 1;
  cfg.ffn_hidden = 24;
  Model m = make_transformer(cfg);
  util::Rng rng(3);
  std::vector<float> params(static_cast<std::size_t>(m.param_count()));
  m.init_params(params, rng);
  Flow in;
  in.x = Tensor({2, 5});   // src tokens
  in.aux = Tensor({2, 4});  // tgt-in tokens
  for (std::int64_t i = 0; i < in.x.size(); ++i)
    in.x[i] = static_cast<float>(rng.randint(cfg.vocab));
  for (std::int64_t i = 0; i < in.aux.size(); ++i)
    in.aux[i] = static_cast<float>(rng.randint(cfg.vocab));
  auto caches = m.make_caches();
  Flow out = m.forward(std::move(in), params, caches);
  EXPECT_EQ(out.x.dim(0), 2);
  EXPECT_EQ(out.x.dim(1), 4);  // target length
  EXPECT_EQ(out.x.dim(2), cfg.vocab);
}

TEST(TransformerModel, WholeModelGradCheckIncludingCrossAttention) {
  TransformerConfig cfg;
  cfg.vocab = 7;
  cfg.d_model = 8;
  cfg.heads = 2;
  cfg.enc_layers = 1;
  cfg.dec_layers = 1;
  cfg.ffn_hidden = 12;
  Model m = make_transformer(cfg);
  util::Rng rng(4);
  Flow in;
  in.x = Tensor({2, 3});
  in.aux = Tensor({2, 3});
  for (std::int64_t i = 0; i < in.x.size(); ++i)
    in.x[i] = static_cast<float>(rng.randint(cfg.vocab));
  for (std::int64_t i = 0; i < in.aux.size(); ++i)
    in.aux[i] = static_cast<float>(rng.randint(cfg.vocab));
  Tensor target({2, 3}, {1, 2, 3, 4, 5, 6});
  model_gradcheck(m, SequenceXent(0.1), in, target, rng, 60);
}

TEST(TransformerModel, CausalMaskBlocksFuture) {
  // Changing a *later* target token must not change earlier positions'
  // logits (causality of the decoder).
  TransformerConfig cfg;
  cfg.vocab = 9;
  cfg.d_model = 8;
  cfg.heads = 2;
  cfg.enc_layers = 1;
  cfg.dec_layers = 1;
  cfg.ffn_hidden = 12;
  Model m = make_transformer(cfg);
  util::Rng rng(5);
  std::vector<float> params(static_cast<std::size_t>(m.param_count()));
  m.init_params(params, rng);
  Flow in;
  in.x = Tensor({1, 4}, {1, 2, 3, 4});
  in.aux = Tensor({1, 3}, {0, 5, 6});
  auto caches = m.make_caches();
  Flow out1 = m.forward(in, params, caches);
  in.aux.at(0, 2) = 8.0F;  // mutate the last target token
  Flow out2 = m.forward(in, params, caches);
  for (int j = 0; j < cfg.vocab; ++j) {
    EXPECT_NEAR(out1.x.at(0, 0, j), out2.x.at(0, 0, j), 1e-6F);
    EXPECT_NEAR(out1.x.at(0, 1, j), out2.x.at(0, 1, j), 1e-6F);
  }
}

TEST(TransformerModel, GreedyAndBeamDecodeProduceValidTokens) {
  TransformerConfig cfg;
  cfg.vocab = 10;
  cfg.d_model = 8;
  cfg.heads = 2;
  cfg.enc_layers = 1;
  cfg.dec_layers = 1;
  cfg.ffn_hidden = 12;
  Model m = make_transformer(cfg);
  util::Rng rng(6);
  std::vector<float> params(static_cast<std::size_t>(m.param_count()));
  m.init_params(params, rng);
  Tensor src({2, 4}, {1, 2, 3, 4, 4, 3, 2, 1});
  auto greedy = greedy_decode(m, params, src, /*bos=*/0, /*eos=*/1, /*max_steps=*/6);
  auto beam = beam_decode(m, params, src, 0, 1, 6, /*beam_width=*/3);
  ASSERT_EQ(greedy.size(), 2u);
  ASSERT_EQ(beam.size(), 2u);
  for (const auto& seq : greedy) {
    EXPECT_LE(seq.size(), 6u);
    for (int t : seq) {
      EXPECT_GE(t, 0);
      EXPECT_LT(t, cfg.vocab);
    }
  }
}

TEST(Embedding, SinusoidalPositionsBounded) {
  Tensor pos = sinusoidal_positions(10, 8);
  for (std::int64_t i = 0; i < pos.size(); ++i) {
    EXPECT_LE(std::abs(pos[i]), 1.0F);
  }
  // Distinct positions get distinct encodings.
  bool differs = false;
  for (int j = 0; j < 8; ++j) {
    if (std::abs(pos.at(0, j) - pos.at(5, j)) > 1e-3F) differs = true;
  }
  EXPECT_TRUE(differs);
}

}  // namespace
}  // namespace pipemare::nn
