#include <gtest/gtest.h>

#include <cmath>

#include "src/nn/attention.h"
#include "src/nn/embedding.h"
#include "src/nn/heads.h"
#include "src/nn/linear.h"
#include "src/nn/model.h"
#include "src/tensor/ops.h"
#include "src/util/rng.h"

namespace pipemare::nn {
namespace {

using tensor::Tensor;

// ---------------------------------------------------------------------------
// Cross-attention context gradient: finite-difference check of dL/dctx
// ---------------------------------------------------------------------------

TEST(CrossAttention, ContextGradientMatchesFiniteDifferences) {
  util::Rng rng(31);
  MultiHeadAttention cross(8, 2, MultiHeadAttention::Kind::CrossAttention);
  std::vector<float> w(static_cast<std::size_t>(cross.param_count()));
  cross.init_params(w, rng);

  Flow in;
  in.x = Tensor({2, 3, 8});
  in.ctx = Tensor({2, 4, 8});
  for (std::int64_t i = 0; i < in.x.size(); ++i) in.x[i] = static_cast<float>(rng.normal());
  for (std::int64_t i = 0; i < in.ctx.size(); ++i)
    in.ctx[i] = static_cast<float>(rng.normal());

  // Scalar loss: sum of outputs (so dL/dy = 1 everywhere).
  auto loss_at = [&](const Flow& flow) {
    Cache cache;
    Flow out = cross.forward(flow, w, cache);
    return tensor::sum(out.x);
  };

  Cache cache;
  Flow out = cross.forward(in, w, cache);
  Flow dout;
  dout.x = Tensor(out.x.shape());
  dout.x.fill(1.0F);
  std::vector<float> grad(w.size(), 0.0F);
  Flow din = cross.backward(dout, w, cache, grad);
  ASSERT_FALSE(din.ctx.empty());

  const double eps = 1e-2;
  for (int probe = 0; probe < 12; ++probe) {
    auto i = static_cast<std::int64_t>(rng.randint(static_cast<int>(in.ctx.size())));
    Flow plus = in;
    plus.ctx[i] += static_cast<float>(eps);
    Flow minus = in;
    minus.ctx[i] -= static_cast<float>(eps);
    double numeric = (loss_at(plus) - loss_at(minus)) / (2.0 * eps);
    EXPECT_NEAR(din.ctx[i], numeric, 5e-3 + 0.05 * std::abs(numeric)) << "ctx idx " << i;
  }
}

TEST(CrossAttention, AccumulatesIntoExistingContextGradient) {
  // When downstream layers already contributed a ctx gradient, the
  // cross-attention backward must *add* its own contribution.
  util::Rng rng(33);
  MultiHeadAttention cross(8, 2, MultiHeadAttention::Kind::CrossAttention);
  std::vector<float> w(static_cast<std::size_t>(cross.param_count()));
  cross.init_params(w, rng);
  Flow in;
  in.x = Tensor({1, 2, 8});
  in.ctx = Tensor({1, 3, 8});
  for (std::int64_t i = 0; i < in.x.size(); ++i) in.x[i] = static_cast<float>(rng.normal());
  for (std::int64_t i = 0; i < in.ctx.size(); ++i)
    in.ctx[i] = static_cast<float>(rng.normal());
  Cache cache;
  Flow out = cross.forward(in, w, cache);

  Flow dout_zero;
  dout_zero.x = Tensor(out.x.shape());
  dout_zero.x.fill(1.0F);
  std::vector<float> g1(w.size(), 0.0F);
  Flow din_zero = cross.backward(dout_zero, w, cache, g1);

  Flow dout_pre = dout_zero;
  dout_pre.ctx = Tensor(in.ctx.shape());
  dout_pre.ctx.fill(0.5F);
  std::vector<float> g2(w.size(), 0.0F);
  Flow din_pre = cross.backward(dout_pre, w, cache, g2);

  for (std::int64_t i = 0; i < din_zero.ctx.size(); ++i) {
    EXPECT_NEAR(din_pre.ctx[i], din_zero.ctx[i] + 0.5F, 1e-5F);
  }
}

// ---------------------------------------------------------------------------
// Self-attention invariances
// ---------------------------------------------------------------------------

TEST(SelfAttention, PermutingBatchPermutesOutput) {
  // Batch elements are independent: swapping two inputs swaps the outputs.
  util::Rng rng(35);
  MultiHeadAttention attn(8, 2, MultiHeadAttention::Kind::SelfAttention);
  std::vector<float> w(static_cast<std::size_t>(attn.param_count()));
  attn.init_params(w, rng);
  Flow in;
  in.x = Tensor({2, 3, 8});
  for (std::int64_t i = 0; i < in.x.size(); ++i) in.x[i] = static_cast<float>(rng.normal());
  Cache cache;
  Flow out = attn.forward(in, w, cache);

  Flow swapped;
  swapped.x = Tensor({2, 3, 8});
  for (int s = 0; s < 3; ++s)
    for (int d = 0; d < 8; ++d) {
      swapped.x.at(0, s, d) = in.x.at(1, s, d);
      swapped.x.at(1, s, d) = in.x.at(0, s, d);
    }
  Flow out2 = attn.forward(swapped, w, cache);
  for (int s = 0; s < 3; ++s)
    for (int d = 0; d < 8; ++d) {
      EXPECT_NEAR(out2.x.at(0, s, d), out.x.at(1, s, d), 1e-5F);
      EXPECT_NEAR(out2.x.at(1, s, d), out.x.at(0, s, d), 1e-5F);
    }
}

TEST(Embedding, BackwardScattersIntoUsedRowsOnly) {
  util::Rng rng(37);
  TokenEmbedding emb(10, 4, 8);
  std::vector<float> w(static_cast<std::size_t>(emb.param_count()));
  emb.init_params(w, rng);
  Flow in;
  in.x = Tensor({1, 3}, {2, 7, 2});
  Cache cache;
  Flow out = emb.forward(in, w, cache);
  Flow dout;
  dout.x = Tensor(out.x.shape());
  dout.x.fill(1.0F);
  std::vector<float> grad(w.size(), 0.0F);
  emb.backward(dout, w, cache, grad);
  float scale = std::sqrt(4.0F);
  for (int v = 0; v < 10; ++v) {
    for (int d = 0; d < 4; ++d) {
      float g = grad[static_cast<std::size_t>(v) * 4 + d];
      if (v == 2) {
        EXPECT_NEAR(g, 2.0F * scale, 1e-5F);  // token 2 used twice
      } else if (v == 7) {
        EXPECT_NEAR(g, 1.0F * scale, 1e-5F);
      } else {
        EXPECT_EQ(g, 0.0F);
      }
    }
  }
}

TEST(Embedding, RejectsOutOfRangeTokens) {
  util::Rng rng(39);
  TokenEmbedding emb(5, 4, 8);
  std::vector<float> w(static_cast<std::size_t>(emb.param_count()));
  emb.init_params(w, rng);
  Flow in;
  in.x = Tensor({1, 2}, {1, 9});
  Cache cache;
  EXPECT_THROW(emb.forward(in, w, cache), std::out_of_range);
}

TEST(Model, BackwardRangeOnlyTouchesRangeGradients) {
  util::Rng rng(41);
  Model m;
  m.add(std::make_unique<Linear>(4, 4));
  m.add(std::make_unique<Linear>(4, 4));
  m.add(std::make_unique<Linear>(4, 2));
  std::vector<float> params(static_cast<std::size_t>(m.param_count()));
  m.init_params(params, rng);
  Flow in;
  in.x = Tensor({2, 4});
  for (std::int64_t i = 0; i < in.x.size(); ++i) in.x[i] = static_cast<float>(rng.normal());
  auto caches = m.make_caches();
  Flow out = m.forward(in, params, caches);
  Tensor target({2}, {0.0F, 1.0F});
  auto lr = ClassificationXent().forward_backward(out.x, target);
  std::vector<float> grad(params.size(), 0.0F);
  Flow dflow;
  dflow.x = lr.doutput;
  // Backward through the last module only.
  m.backward_range(2, 3, std::move(dflow), params, caches, grad);
  auto g0 = m.module_params(0, std::span<const float>(grad));
  auto g2 = m.module_params(2, std::span<const float>(grad));
  double sum0 = 0.0, sum2 = 0.0;
  for (float g : g0) sum0 += std::abs(g);
  for (float g : g2) sum2 += std::abs(g);
  EXPECT_EQ(sum0, 0.0);
  EXPECT_GT(sum2, 0.0);
}

}  // namespace
}  // namespace pipemare::nn
