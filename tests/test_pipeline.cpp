#include <gtest/gtest.h>

#include <cmath>

#include "src/nn/activations.h"
#include "src/nn/heads.h"
#include "src/nn/linear.h"
#include "src/nn/model.h"
#include "src/pipeline/engine.h"
#include "src/pipeline/partition.h"
#include "src/pipeline/schedule.h"
#include "src/util/rng.h"

namespace pipemare::pipeline {
namespace {

using nn::Flow;
using tensor::Tensor;

// ---------------------------------------------------------------------------
// Schedule: closed forms vs brute-force tick counting
// ---------------------------------------------------------------------------

/// Brute force: count stage-i updates whose tick precedes the forward tick
/// of microbatch (t, n). Update u lands at tick u*N - 1 + 2P - 1 - i; the
/// forward of k = t*N + n at stage i reads at tick k + i (read-before-update).
int brute_fwd_staleness(int p, int n_micro, int t, int n, int i) {
  int version = 0;
  for (int u = 1; u <= t + 2 * p + 2; ++u) {
    if (u * n_micro - 1 + 2 * p - 1 - i < t * n_micro + n + i) ++version;
  }
  return t - version;
}

int brute_recompute_staleness(int p, int n_micro, int t, int n, int i, int b) {
  int version = 0;
  int tick = t * n_micro + n + 2 * p - 1 - 2 * b + i;
  for (int u = 1; u <= t + 2 * p + 2; ++u) {
    if (u * n_micro - 1 + 2 * p - 1 - i < tick) ++version;
  }
  return t - version;
}

struct PN {
  int p;
  int n;
};

class ScheduleGrid : public ::testing::TestWithParam<PN> {};

TEST_P(ScheduleGrid, FwdStalenessMatchesBruteForceTicks) {
  auto [p, n_micro] = GetParam();
  Schedule sched(p, n_micro);
  int t = 100;  // deep in steady state
  for (int i = 0; i < p; ++i) {
    for (int n = 0; n < n_micro; ++n) {
      EXPECT_EQ(sched.fwd_staleness(i, n), brute_fwd_staleness(p, n_micro, t, n, i))
          << "P=" << p << " N=" << n_micro << " stage=" << i << " micro=" << n;
    }
  }
}

TEST_P(ScheduleGrid, MeanFwdStalenessEqualsTable1Formula) {
  // Table 1: tau_fwd,i = (2(P-i)+1)/N with 1-indexed stages. Our engine
  // derives versions from the tick schedule; their microbatch-average must
  // reproduce the formula *exactly*.
  auto [p, n_micro] = GetParam();
  Schedule sched(p, n_micro);
  for (int i = 0; i < p; ++i) {
    double sum = 0.0;
    for (int n = 0; n < n_micro; ++n) sum += sched.fwd_staleness(i, n);
    double empirical = sum / n_micro;
    EXPECT_DOUBLE_EQ(empirical, sched.mean_tau_fwd(i)) << "stage " << i;
    EXPECT_DOUBLE_EQ(empirical,
                     static_cast<double>(2 * (p - 1 - i) + 1) / n_micro);
  }
}

TEST_P(ScheduleGrid, RecomputeStalenessBetweenBkwdAndFwd) {
  auto [p, n_micro] = GetParam();
  Schedule sched(p, n_micro);
  int segment = std::max(1, p / 2);
  for (int b = segment - 1; b < p; b += segment) {
    for (int i = std::max(0, b - segment + 1); i <= b; ++i) {
      for (int n = 0; n < n_micro; ++n) {
        int r = sched.recompute_staleness(i, n, b);
        EXPECT_EQ(r, std::max(0, brute_recompute_staleness(p, n_micro, 100, n, i, b)));
        EXPECT_GE(r, sched.bwd_staleness(i, n));
        EXPECT_LE(r, sched.fwd_staleness(i, n));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Grid, ScheduleGrid,
                         ::testing::Values(PN{1, 1}, PN{2, 1}, PN{4, 1}, PN{4, 4},
                                           PN{8, 3}, PN{16, 8}, PN{107, 8}, PN{93, 19}),
                         [](const auto& info) {
                           return "P" + std::to_string(info.param.p) + "N" +
                                  std::to_string(info.param.n);
                         });

TEST(Schedule, LastStageHasMeanDelayOneOverN) {
  Schedule sched(10, 4);
  EXPECT_DOUBLE_EQ(sched.mean_tau_fwd(9), 0.25);
  // Only microbatch 0 is stale by one step, the rest see fresh weights.
  EXPECT_EQ(sched.fwd_staleness(9, 0), 1);
  EXPECT_EQ(sched.fwd_staleness(9, 1), 0);
}

TEST(Schedule, AsciiRenderShowsBubblesOnlyForGPipe)
{
  std::string nobubble = render_schedule_ascii(3, 2, 3, false);
  std::string gpipe = render_schedule_ascii(3, 2, 3, true);
  // GPipe flush leaves idle cells ('.') between minibatches in stage 0's
  // steady-state region; the 1F1B schedule's stage-0 row is dense between
  // pipeline fill and drain.
  auto density = [](const std::string& s) {
    int idle = 0, busy = 0;
    for (char c : s) {
      if (c == '.') ++idle;
      if (c == 'F' || c == 'B' || c == '*') ++busy;
    }
    return std::pair<int, int>(busy, idle);
  };
  auto [busy_nb, idle_nb] = density(nobubble);
  auto [busy_gp, idle_gp] = density(gpipe);
  EXPECT_GT(busy_nb, 0);
  EXPECT_GT(busy_gp, 0);
  // Same work, more idle slots for the flushing schedule.
  EXPECT_GT(idle_gp * (busy_nb + idle_nb), idle_nb * (busy_gp + idle_gp));
}

// ---------------------------------------------------------------------------
// Partition
// ---------------------------------------------------------------------------

nn::Model make_mlp(int in, int hidden, int out, int layers = 2) {
  nn::Model m;
  m.add(std::make_unique<nn::Linear>(in, hidden, true));
  m.add(std::make_unique<nn::ReLU>());
  for (int l = 1; l < layers; ++l) {
    m.add(std::make_unique<nn::Linear>(hidden, hidden, true));
    m.add(std::make_unique<nn::ReLU>());
  }
  m.add(std::make_unique<nn::Linear>(hidden, out));
  return m;
}

TEST(Partition, EvenContiguousSplit) {
  nn::Model m = make_mlp(4, 8, 3, 3);  // 4 Linear modules -> 4 units
  Partition part = make_partition(m, 2, false);
  EXPECT_EQ(part.num_units(), 4);
  EXPECT_EQ(part.unit_stage, (std::vector<int>{0, 0, 1, 1}));
  EXPECT_EQ(part.stage_param_count.size(), 2u);
  EXPECT_EQ(part.stage_param_count[0] + part.stage_param_count[1], m.param_count());
}

TEST(Partition, SplitBiasDoublesStagesAvailable) {
  nn::Model m = make_mlp(4, 8, 3, 2);
  EXPECT_EQ(max_stages(m, false), 3);
  EXPECT_EQ(max_stages(m, true), 6);
  Partition part = make_partition(m, 6, true);
  EXPECT_EQ(part.num_stages, 6);
}

TEST(Partition, RejectsTooManyStages) {
  nn::Model m = make_mlp(4, 8, 3, 2);
  EXPECT_THROW(make_partition(m, 10, false), std::invalid_argument);
}

TEST(Partition, ModuleStageMonotone) {
  nn::Model m = make_mlp(4, 8, 3, 4);
  Partition part = make_partition(m, 5, false);
  for (std::size_t i = 1; i < part.module_stage.size(); ++i) {
    EXPECT_GE(part.module_stage[i], part.module_stage[i - 1]);
  }
}

// ---------------------------------------------------------------------------
// Engine semantics
// ---------------------------------------------------------------------------

struct Batch {
  std::vector<Flow> inputs;
  std::vector<Tensor> targets;
};

Batch random_micro_batches(int n, int micro_size, int features, int classes,
                           util::Rng& rng) {
  Batch b;
  for (int i = 0; i < n; ++i) {
    Flow f;
    f.x = Tensor({micro_size, features});
    for (std::int64_t j = 0; j < f.x.size(); ++j) f.x[j] = static_cast<float>(rng.normal());
    Tensor t({micro_size});
    for (int j = 0; j < micro_size; ++j) t[j] = static_cast<float>(rng.randint(classes));
    b.inputs.push_back(std::move(f));
    b.targets.push_back(std::move(t));
  }
  return b;
}

TEST(Engine, SyncMatchesManualSequentialTraining) {
  // GPipe-style execution must be *bitwise* plain minibatch SGD.
  nn::Model model = make_mlp(5, 6, 3);
  EngineConfig cfg;
  cfg.method = Method::Sync;
  cfg.num_stages = 2;
  cfg.num_microbatches = 2;
  PipelineEngine engine(model, cfg, /*seed=*/7);

  std::vector<float> manual(engine.weights().begin(), engine.weights().end());
  nn::ClassificationXent head;
  optim::SgdMomentum opt_engine(0.9), opt_manual(0.9);
  util::Rng data_rng(3);

  for (int step = 0; step < 10; ++step) {
    Batch batch = random_micro_batches(2, 3, 5, 3, data_rng);
    auto res = engine.forward_backward(batch.inputs, batch.targets, head);
    ASSERT_TRUE(res.finite);

    // Manual: same microbatches, same weights, mean gradient.
    std::vector<float> grad(manual.size(), 0.0F);
    double manual_loss = 0.0;
    for (int n = 0; n < 2; ++n) {
      auto caches = model.make_caches();
      Flow out = model.forward(batch.inputs[static_cast<std::size_t>(n)], manual, caches);
      auto lr = head.forward_backward(out.x, batch.targets[static_cast<std::size_t>(n)]);
      manual_loss += lr.loss / 2;
      Flow dflow;
      dflow.x = lr.doutput;
      std::vector<float> g(manual.size(), 0.0F);
      model.backward(std::move(dflow), manual, caches, g);
      // Engine gradients are the minibatch mean: average the two
      // microbatch-mean gradients.
      for (std::size_t i = 0; i < g.size(); ++i) grad[i] += g[i] / 2.0F;
    }
    EXPECT_NEAR(res.loss, manual_loss, 1e-6);

    for (std::size_t i = 0; i < grad.size(); ++i) {
      EXPECT_NEAR(engine.gradients()[i], grad[i], 1e-5F) << "grad " << i;
    }

    std::vector<optim::LrSegment> seg{{0, static_cast<std::int64_t>(manual.size()), 0.05}};
    opt_engine.step(engine.weights(), engine.gradients(), seg);
    engine.commit_update();
    opt_manual.step(manual, grad, seg);
    for (std::size_t i = 0; i < manual.size(); ++i) {
      ASSERT_NEAR(engine.weights()[i], manual[i], 1e-6F);
    }
  }
}

/// Manual fixed-delay reference: w_{t+1} = w_t - alpha * grad(f; u_fwd, u_bkwd)
/// with u_fwd = w_{t-1}, u_bkwd per method, for a P=1, N=1 pipeline.
TEST(Engine, SingleStageDelayMatchesManualDelayedSgd) {
  nn::Model model = make_mlp(4, 5, 2);
  for (Method method : {Method::PipeDream, Method::PipeMare}) {
    EngineConfig cfg;
    cfg.method = method;
    cfg.num_stages = 1;
    cfg.num_microbatches = 1;
    PipelineEngine engine(model, cfg, /*seed=*/11);
    // P=1, N=1: tau_fwd = (2(P-1)+1)/N = 1 for the single stage.
    ASSERT_EQ(engine.schedule().fwd_staleness(0, 0), 1);

    nn::ClassificationXent head;
    util::Rng data_rng(5);
    double alpha = 0.05;

    // Manual history of weight versions.
    std::vector<std::vector<float>> versions;
    versions.emplace_back(engine.weights().begin(), engine.weights().end());

    for (int t = 0; t < 6; ++t) {
      Batch batch = random_micro_batches(1, 3, 4, 2, data_rng);
      auto res = engine.forward_backward(batch.inputs, batch.targets, head);
      ASSERT_TRUE(res.finite);

      // Manual gradient: forward with w_{t-1}, backward with w_{t-1}
      // (PipeDream stash) or w_t (PipeMare).
      const auto& u_fwd = versions[static_cast<std::size_t>(std::max(0, t - 1))];
      const auto& u_bkwd =
          method == Method::PipeDream ? u_fwd : versions[static_cast<std::size_t>(t)];
      auto caches = model.make_caches();
      Flow out = model.forward(batch.inputs[0], u_fwd, caches);
      auto lr = head.forward_backward(out.x, batch.targets[0]);
      EXPECT_NEAR(res.loss, lr.loss, 1e-6) << method_name(method) << " t=" << t;
      Flow dflow;
      dflow.x = lr.doutput;
      std::vector<float> grad(versions[0].size(), 0.0F);
      model.backward(std::move(dflow), u_bkwd, caches, grad);
      for (std::size_t i = 0; i < grad.size(); ++i) {
        ASSERT_NEAR(engine.gradients()[i], grad[i], 1e-5F)
            << method_name(method) << " t=" << t << " i=" << i;
      }

      // SGD (no momentum) on both.
      std::vector<float> next = versions.back();
      for (std::size_t i = 0; i < next.size(); ++i) {
        next[i] -= static_cast<float>(alpha) * grad[i];
      }
      versions.push_back(std::move(next));

      optim::SgdMomentum opt(0.0);
      std::vector<optim::LrSegment> seg{
          {0, static_cast<std::int64_t>(versions[0].size()), alpha}};
      opt.step(engine.weights(), engine.gradients(), seg);
      engine.commit_update();
      for (std::size_t i = 0; i < versions.back().size(); ++i) {
        ASSERT_NEAR(engine.weights()[i], versions.back()[i], 1e-5F);
      }
    }
  }
}

TEST(Engine, PipeMareEarlierStagesSeeStalerWeights) {
  nn::Model model = make_mlp(4, 5, 2, 4);  // 5 units
  EngineConfig cfg;
  cfg.method = Method::PipeMare;
  cfg.num_stages = 5;
  cfg.num_microbatches = 2;
  PipelineEngine engine(model, cfg, 1);
  const Schedule& sched = engine.schedule();
  for (int i = 1; i < 5; ++i) {
    EXPECT_GT(sched.mean_tau_fwd(i - 1), sched.mean_tau_fwd(i));
  }
}

TEST(Engine, RecomputeIsInvisibleUnderSync) {
  // With synchronous weights, recomputation rebuilds identical activations,
  // so gradients must match exactly.
  nn::Model model_a = make_mlp(5, 6, 3, 3);
  nn::Model model_b = make_mlp(5, 6, 3, 3);
  EngineConfig cfg;
  cfg.method = Method::Sync;
  cfg.num_stages = 3;
  cfg.num_microbatches = 2;
  EngineConfig cfg_rec = cfg;
  cfg_rec.recompute_segments = 2;
  PipelineEngine plain(model_a, cfg, 9);
  PipelineEngine recompute(model_b, cfg_rec, 9);

  nn::ClassificationXent head;
  util::Rng data_rng(13);
  Batch batch = random_micro_batches(2, 3, 5, 3, data_rng);
  auto r1 = plain.forward_backward(batch.inputs, batch.targets, head);
  auto r2 = recompute.forward_backward(batch.inputs, batch.targets, head);
  EXPECT_NEAR(r1.loss, r2.loss, 1e-7);
  for (std::size_t i = 0; i < plain.gradients().size(); ++i) {
    ASSERT_NEAR(plain.gradients()[i], recompute.gradients()[i], 1e-6F);
  }
}

TEST(Engine, RecomputeUnderPipeMareStaysFiniteAndUsesSegments) {
  nn::Model model = make_mlp(5, 6, 3, 4);
  EngineConfig cfg;
  cfg.method = Method::PipeMare;
  cfg.num_stages = 5;
  cfg.num_microbatches = 2;
  cfg.recompute_segments = 2;
  cfg.discrepancy_correction = true;
  cfg.decay_d = 0.135;
  PipelineEngine engine(model, cfg, 3);
  EXPECT_EQ(engine.recompute_ranges().size(), 2u);

  nn::ClassificationXent head;
  optim::SgdMomentum opt(0.9);
  util::Rng data_rng(17);
  for (int step = 0; step < 8; ++step) {
    Batch batch = random_micro_batches(2, 3, 5, 3, data_rng);
    auto res = engine.forward_backward(batch.inputs, batch.targets, head);
    ASSERT_TRUE(res.finite);
    auto segs = engine.lr_segments(0.02, {});
    opt.step(engine.weights(), engine.gradients(), segs);
    engine.commit_update();
  }
}

TEST(Engine, LrSegmentsTileParameterSpace) {
  nn::Model model = make_mlp(4, 5, 2, 4);
  EngineConfig cfg;
  cfg.num_stages = 3;
  PipelineEngine engine(model, cfg, 1);
  std::vector<double> scales = {0.5, 1.0, 2.0};
  auto segs = engine.lr_segments(0.1, scales);
  ASSERT_EQ(segs.size(), 3u);
  std::int64_t covered = 0;
  for (std::size_t i = 0; i < segs.size(); ++i) {
    EXPECT_EQ(segs[i].offset, covered);
    covered += segs[i].size;
    EXPECT_NEAR(segs[i].lr, 0.1 * scales[i], 1e-12);
  }
  EXPECT_EQ(covered, model.param_count());
}

TEST(Engine, T2DeltaTracksWeightVelocity) {
  // After repeated commits with a constant weight decrement, the T2 delta
  // buffer must converge to that decrement (EMA fixed point).
  nn::Model model = make_mlp(3, 4, 2);
  EngineConfig cfg;
  cfg.method = Method::PipeMare;
  cfg.num_stages = 2;
  cfg.num_microbatches = 1;
  cfg.discrepancy_correction = true;
  cfg.decay_d = 0.135;
  PipelineEngine engine(model, cfg, 2);

  nn::ClassificationXent head;
  util::Rng data_rng(19);
  const float decrement = 0.01F;
  for (int step = 0; step < 60; ++step) {
    for (auto& w : engine.weights()) w -= decrement;
    engine.commit_update();
  }
  // Probe: with gap tau and u_bkwd = w - tau*delta, a converged delta equals
  // the per-step decrement, so u_bkwd ~= the forward weights. We verify via
  // a PipeMare backward params assembly: run one forward_backward and check
  // finiteness (white-box delta inspection is covered by construction).
  Batch batch = random_micro_batches(1, 2, 3, 2, data_rng);
  auto res = engine.forward_backward(batch.inputs, batch.targets, head);
  EXPECT_TRUE(res.finite);
}

}  // namespace
}  // namespace pipemare::pipeline
