#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "src/core/task.h"
#include "src/core/trainer.h"
#include "src/nn/heads.h"
#include "src/nn/model.h"
#include "src/nn/resnet.h"
#include "src/pipeline/engine.h"
#include "src/pipeline/partition.h"
#include "src/pipeline/stage_mailbox.h"
#include "src/pipeline/threaded_engine.h"
#include "src/util/rng.h"

namespace pipemare::pipeline {
namespace {

/// Small CNN + random classification microbatches shared by the parity
/// tests (same recipe as bench/micro_engine's engine benchmark).
struct ParityFixture {
  nn::Model model;
  nn::ClassificationXent head;
  std::vector<nn::Flow> inputs;
  std::vector<tensor::Tensor> targets;

  explicit ParityFixture(int num_micro, std::uint64_t seed = 3) {
    nn::ResNetConfig mc;
    mc.base_channels = 8;
    mc.blocks_per_group = {1, 1};
    model = nn::make_resnet(mc);
    util::Rng rng(seed);
    for (int m = 0; m < num_micro; ++m) {
      nn::Flow f;
      f.x = tensor::Tensor({2, 3, 8, 8});
      for (std::int64_t i = 0; i < f.x.size(); ++i) {
        f.x[i] = static_cast<float>(rng.normal());
      }
      tensor::Tensor t({2});
      for (int j = 0; j < 2; ++j) t[j] = static_cast<float>(rng.randint(10));
      inputs.push_back(std::move(f));
      targets.push_back(std::move(t));
    }
  }
};

EngineConfig parity_config(Method method, int stages, int micro) {
  EngineConfig ec;
  ec.method = method;
  ec.num_stages = stages;
  ec.num_microbatches = micro;
  return ec;
}

/// Runs `steps` SGD steps on both engines and asserts bitwise-equal
/// losses, gradients and weights at every step.
void expect_bitwise_parity(EngineConfig ec, int steps) {
  ParityFixture fx(ec.num_microbatches);
  PipelineEngine seq(fx.model, ec, 1);
  ThreadedEngine thr(fx.model, ec, 1);
  for (int step = 0; step < steps; ++step) {
    auto rs = seq.forward_backward(fx.inputs, fx.targets, fx.head);
    auto rt = thr.forward_backward(fx.inputs, fx.targets, fx.head);
    ASSERT_EQ(rs.finite, rt.finite) << "step " << step;
    ASSERT_DOUBLE_EQ(rs.loss, rt.loss) << "step " << step;
    ASSERT_DOUBLE_EQ(rs.correct, rt.correct) << "step " << step;
    auto gs = seq.gradients();
    auto gt = thr.gradients();
    ASSERT_EQ(gs.size(), gt.size());
    for (std::size_t i = 0; i < gs.size(); ++i) {
      ASSERT_EQ(gs[i], gt[i]) << "grad " << i << " at step " << step;
    }
    for (std::size_t i = 0; i < gs.size(); ++i) {
      seq.weights()[i] -= 0.05F * gs[i];
      thr.weights()[i] -= 0.05F * gt[i];
    }
    seq.commit_update();
    thr.commit_update();
  }
  for (std::size_t i = 0; i < seq.weights().size(); ++i) {
    ASSERT_EQ(seq.weights()[i], thr.weights()[i]) << "weight " << i;
  }
}

TEST(ThreadedEngine, BitwiseParityWithSequentialSync) {
  expect_bitwise_parity(parity_config(Method::Sync, 4, 4), 5);
}

TEST(ThreadedEngine, BitwiseParityWithSequentialPipeDream) {
  expect_bitwise_parity(parity_config(Method::PipeDream, 4, 4), 5);
}

TEST(ThreadedEngine, BitwiseParityWithSequentialPipeMare) {
  expect_bitwise_parity(parity_config(Method::PipeMare, 4, 4), 5);
}

TEST(ThreadedEngine, BitwiseParityWithDiscrepancyCorrection) {
  auto ec = parity_config(Method::PipeMare, 6, 2);
  ec.discrepancy_correction = true;
  ec.decay_d = 0.25;
  expect_bitwise_parity(ec, 5);
}

TEST(ThreadedEngine, BitwiseParityWithSplitBiasUnits) {
  // split_bias can schedule a module's bias unit on the stage after the
  // one executing the module; the threaded engine must still version that
  // unit by its own scheduled stage.
  ParityFixture fx(2);
  int stages = max_stages(fx.model, true);
  auto ec = parity_config(Method::PipeMare, stages, 2);
  ec.split_bias = true;
  expect_bitwise_parity(ec, 3);
}

TEST(ThreadedEngine, SingleStageDegeneratesToSequential) {
  expect_bitwise_parity(parity_config(Method::PipeMare, 1, 4), 3);
}

TEST(ThreadedEngine, BitwiseParityWithDropoutStreams) {
  // Each Dropout module owns a deterministic RNG stream consumed in
  // microbatch order; with one worker per stage the threaded engine must
  // consume every stream in the same order as the sequential engine. Each
  // engine gets its own (identically seeded) model so the streams stay
  // independent across engines.
  data::TranslationConfig d;
  d.vocab = 12;
  d.seq_len = 5;
  d.train_size = 32;
  d.test_size = 8;
  d.seed = 3;
  nn::TransformerConfig mc;
  mc.d_model = 16;
  mc.heads = 2;
  mc.enc_layers = 1;
  mc.dec_layers = 1;
  mc.ffn_hidden = 24;
  mc.dropout = 0.3;
  core::TranslationTask task(d, mc, "tiny-dropout", /*eval=*/8);
  nn::Model model_seq = task.build_model();
  nn::Model model_thr = task.build_model();

  auto ec = parity_config(Method::PipeMare, 4, 2);
  PipelineEngine seq(model_seq, ec, 1);
  ThreadedEngine thr(model_thr, ec, 1);

  auto mb = task.minibatch({0, 1, 2, 3}, 2);
  for (int step = 0; step < 3; ++step) {
    auto rs = seq.forward_backward(mb.inputs, mb.targets, task.loss());
    auto rt = thr.forward_backward(mb.inputs, mb.targets, task.loss());
    ASSERT_DOUBLE_EQ(rs.loss, rt.loss) << "step " << step;
    auto gs = seq.gradients();
    auto gt = thr.gradients();
    for (std::size_t i = 0; i < gs.size(); ++i) {
      ASSERT_EQ(gs[i], gt[i]) << "grad " << i << " at step " << step;
    }
    for (std::size_t i = 0; i < gs.size(); ++i) {
      seq.weights()[i] -= 0.05F * gs[i];
      thr.weights()[i] -= 0.05F * gt[i];
    }
    seq.commit_update();
    thr.commit_update();
  }
}

TEST(ThreadedEngine, MatchesSequentialStalenessStatistics) {
  auto ec = parity_config(Method::PipeMare, 8, 4);
  ParityFixture fx(ec.num_microbatches);
  PipelineEngine seq(fx.model, ec, 1);
  ThreadedEngine thr(fx.model, ec, 1);
  auto tau_s = seq.stage_tau_fwd();
  auto tau_t = thr.stage_tau_fwd();
  ASSERT_EQ(tau_s.size(), tau_t.size());
  for (std::size_t s = 0; s < tau_s.size(); ++s) {
    EXPECT_DOUBLE_EQ(tau_s[s], tau_t[s]);
    // The paper's closed form (2(P-i)+1)/N for 1-indexed stage i.
    EXPECT_DOUBLE_EQ(tau_t[s], (2.0 * (8 - 1 - static_cast<double>(s)) + 1.0) / 4.0);
  }
  EXPECT_EQ(thr.num_workers(), 8);
}

TEST(ThreadedEngine, RejectsRecomputeSegments) {
  ParityFixture fx(2);
  auto ec = parity_config(Method::PipeMare, 4, 2);
  ec.recompute_segments = 2;
  EXPECT_THROW(ThreadedEngine(fx.model, ec, 1), std::invalid_argument);
}

TEST(ThreadedEngine, TrainLoopParityOnTinyTranslation) {
  // End-to-end: core::train drives either engine to the same loss
  // trajectory and metric curve (Sync and fully-async PipeMare).
  data::TranslationConfig d;
  d.vocab = 12;
  d.seq_len = 5;
  d.train_size = 64;
  d.test_size = 16;
  d.seed = 3;
  nn::TransformerConfig m;
  m.d_model = 16;
  m.heads = 2;
  m.enc_layers = 1;
  m.dec_layers = 1;
  m.ffn_hidden = 24;
  core::TranslationTask task(d, m, "tiny-parity", /*eval=*/8);

  for (auto method : {Method::Sync, Method::PipeMare}) {
    core::TrainerConfig cfg;
    cfg.epochs = 2;
    cfg.minibatch_size = 16;
    cfg.microbatch_size = 4;
    cfg.optimizer = core::TrainerConfig::Opt::AdamW;
    cfg.schedule = core::TrainerConfig::Sched::InverseSqrt;
    cfg.lr = 4e-3;
    cfg.sched_warmup_steps = 10;
    cfg.seed = 7;
    cfg.engine.method = method;
    cfg.engine.num_stages = 4;

    auto seq_res = core::train(task, cfg);
    cfg.threaded_execution = true;
    auto thr_res = core::train(task, cfg);

    ASSERT_EQ(seq_res.curve.size(), thr_res.curve.size()) << method_name(method);
    for (std::size_t e = 0; e < seq_res.curve.size(); ++e) {
      EXPECT_DOUBLE_EQ(seq_res.curve[e].train_loss, thr_res.curve[e].train_loss)
          << method_name(method) << " epoch " << e;
      EXPECT_DOUBLE_EQ(seq_res.curve[e].metric, thr_res.curve[e].metric)
          << method_name(method) << " epoch " << e;
      EXPECT_DOUBLE_EQ(seq_res.curve[e].param_norm, thr_res.curve[e].param_norm)
          << method_name(method) << " epoch " << e;
    }
  }
}

TEST(StageMailbox, PopDrainsBackwardLaneFirst) {
  StageMailbox box(4);
  StageItem f;
  f.kind = StageItem::Kind::Forward;
  f.micro = 0;
  box.push_forward(std::move(f));
  StageItem b;
  b.kind = StageItem::Kind::Backward;
  b.micro = 1;
  box.push_backward(std::move(b));
  EXPECT_EQ(box.pop().kind, StageItem::Kind::Backward);
  EXPECT_EQ(box.pop().kind, StageItem::Kind::Forward);
}

}  // namespace
}  // namespace pipemare::pipeline
