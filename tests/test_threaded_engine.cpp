#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <limits>
#include <thread>
#include <vector>

#include "src/core/stage_load.h"
#include "src/core/task.h"
#include "src/core/trainer.h"
#include "src/nn/activations.h"
#include "src/nn/heads.h"
#include "src/nn/linear.h"
#include "src/nn/model.h"
#include "src/nn/resnet.h"
#include "src/pipeline/engine.h"
#include "src/pipeline/partition.h"
#include "src/pipeline/stage_mailbox.h"
#include "src/pipeline/threaded_engine.h"
#include "src/util/rng.h"

namespace pipemare::pipeline {
namespace {

/// Small CNN + random classification microbatches shared by the parity
/// tests (same recipe as bench/micro_engine's engine benchmark).
struct ParityFixture {
  nn::Model model;
  nn::ClassificationXent head;
  std::vector<nn::Flow> inputs;
  std::vector<tensor::Tensor> targets;

  explicit ParityFixture(int num_micro, std::uint64_t seed = 3) {
    nn::ResNetConfig mc;
    mc.base_channels = 8;
    mc.blocks_per_group = {1, 1};
    model = nn::make_resnet(mc);
    util::Rng rng(seed);
    for (int m = 0; m < num_micro; ++m) {
      nn::Flow f;
      f.x = tensor::Tensor({2, 3, 8, 8});
      for (std::int64_t i = 0; i < f.x.size(); ++i) {
        f.x[i] = static_cast<float>(rng.normal());
      }
      tensor::Tensor t({2});
      for (int j = 0; j < 2; ++j) t[j] = static_cast<float>(rng.randint(10));
      inputs.push_back(std::move(f));
      targets.push_back(std::move(t));
    }
  }
};

EngineConfig parity_config(Method method, int stages, int micro) {
  EngineConfig ec;
  ec.method = method;
  ec.num_stages = stages;
  ec.num_microbatches = micro;
  return ec;
}

/// Runs `steps` SGD steps on both engines and asserts bitwise-equal
/// losses, gradients and weights at every step.
void expect_bitwise_parity(EngineConfig ec, int steps) {
  ParityFixture fx(ec.num_microbatches);
  PipelineEngine seq(fx.model, ec, 1);
  ThreadedEngine thr(fx.model, ec, 1);
  for (int step = 0; step < steps; ++step) {
    auto rs = seq.forward_backward(fx.inputs, fx.targets, fx.head);
    auto rt = thr.forward_backward(fx.inputs, fx.targets, fx.head);
    ASSERT_EQ(rs.finite, rt.finite) << "step " << step;
    ASSERT_DOUBLE_EQ(rs.loss, rt.loss) << "step " << step;
    ASSERT_DOUBLE_EQ(rs.correct, rt.correct) << "step " << step;
    auto gs = seq.gradients();
    auto gt = thr.gradients();
    ASSERT_EQ(gs.size(), gt.size());
    for (std::size_t i = 0; i < gs.size(); ++i) {
      ASSERT_EQ(gs[i], gt[i]) << "grad " << i << " at step " << step;
    }
    for (std::size_t i = 0; i < gs.size(); ++i) {
      seq.weights()[i] -= 0.05F * gs[i];
      thr.weights()[i] -= 0.05F * gt[i];
    }
    seq.commit_update();
    thr.commit_update();
  }
  for (std::size_t i = 0; i < seq.weights().size(); ++i) {
    ASSERT_EQ(seq.weights()[i], thr.weights()[i]) << "weight " << i;
  }
}

TEST(ThreadedEngine, BitwiseParityWithSequentialSync) {
  expect_bitwise_parity(parity_config(Method::Sync, 4, 4), 5);
}

TEST(ThreadedEngine, BitwiseParityWithSequentialPipeDream) {
  expect_bitwise_parity(parity_config(Method::PipeDream, 4, 4), 5);
}

TEST(ThreadedEngine, BitwiseParityWithSequentialPipeMare) {
  expect_bitwise_parity(parity_config(Method::PipeMare, 4, 4), 5);
}

TEST(ThreadedEngine, BitwiseParityWithDiscrepancyCorrection) {
  auto ec = parity_config(Method::PipeMare, 6, 2);
  ec.discrepancy_correction = true;
  ec.decay_d = 0.25;
  expect_bitwise_parity(ec, 5);
}

TEST(ThreadedEngine, BitwiseParityWithSplitBiasUnits) {
  // split_bias can schedule a module's bias unit on the stage after the
  // one executing the module; the threaded engine must still version that
  // unit by its own scheduled stage.
  ParityFixture fx(2);
  int stages = max_stages(fx.model, true);
  auto ec = parity_config(Method::PipeMare, stages, 2);
  ec.split_bias = true;
  expect_bitwise_parity(ec, 3);
}

TEST(ThreadedEngine, SingleStageDegeneratesToSequential) {
  expect_bitwise_parity(parity_config(Method::PipeMare, 1, 4), 3);
}

TEST(ThreadedEngine, BitwiseParityWithBalancedPartition) {
  // Both engines derive the same cost-balanced partition from the shared
  // spec, so the parity guarantee is strategy-independent.
  ParityFixture fx(4);
  auto ec = parity_config(Method::PipeMare, 4, 4);
  ec.partition.strategy = PartitionStrategy::Balanced;
  ec.partition.probe = std::make_shared<const nn::Flow>(fx.inputs.at(0));
  PipelineEngine seq(fx.model, ec, 1);
  ThreadedEngine thr(fx.model, ec, 1);
  EXPECT_EQ(seq.partition().unit_stage, thr.partition().unit_stage);
  EXPECT_EQ(thr.partition().strategy, PartitionStrategy::Balanced);
  for (int step = 0; step < 3; ++step) {
    auto rs = seq.forward_backward(fx.inputs, fx.targets, fx.head);
    auto rt = thr.forward_backward(fx.inputs, fx.targets, fx.head);
    ASSERT_DOUBLE_EQ(rs.loss, rt.loss) << "step " << step;
    auto gs = seq.gradients();
    auto gt = thr.gradients();
    for (std::size_t i = 0; i < gs.size(); ++i) {
      ASSERT_EQ(gs[i], gt[i]) << "grad " << i << " at step " << step;
    }
    for (std::size_t i = 0; i < gs.size(); ++i) {
      seq.weights()[i] -= 0.05F * gs[i];
      thr.weights()[i] -= 0.05F * gt[i];
    }
    seq.commit_update();
    thr.commit_update();
  }
}

TEST(ThreadedEngine, StageStatsTrackPerStageLoad) {
  const int stages = 3;
  const int micro = 4;
  ParityFixture fx(micro);
  ThreadedEngine thr(fx.model, parity_config(Method::PipeMare, stages, micro), 1);

  auto before = thr.stage_stats();
  ASSERT_EQ(before.size(), static_cast<std::size_t>(stages));
  for (const auto& s : before) {
    EXPECT_EQ(s.busy_ns, 0u);
    EXPECT_EQ(s.items, 0u);
  }

  const int steps = 2;
  for (int step = 0; step < steps; ++step) {
    (void)thr.forward_backward(fx.inputs, fx.targets, fx.head);
    thr.commit_update();
  }

  auto after = thr.stage_stats();
  for (int s = 0; s < stages; ++s) {
    const auto& st = after[static_cast<std::size_t>(s)];
    EXPECT_GT(st.busy_ns, 0u) << "stage " << s;
    // The tail stage fuses F+B and pops only its N forwards; every other
    // stage pops N forwards + N backwards per minibatch.
    auto expected_items =
        static_cast<std::uint64_t>(steps * micro * (s == stages - 1 ? 1 : 2));
    EXPECT_EQ(st.items, expected_items) << "stage " << s;
  }

  thr.reset_stage_stats();
  for (const auto& s : thr.stage_stats()) {
    EXPECT_EQ(s.busy_ns, 0u);
    EXPECT_EQ(s.pop_wait_ns, 0u);
    EXPECT_EQ(s.push_wait_ns, 0u);
    EXPECT_EQ(s.items, 0u);
  }
}

TEST(ThreadedEngine, StageLoadObserverSamplesEpochDeltas) {
  ParityFixture fx(2);
  ThreadedEngine thr(fx.model, parity_config(Method::PipeMare, 2, 2), 1);
  core::StageLoadObserver load(thr);
  ASSERT_TRUE(load.active());
  for (int epoch = 0; epoch < 2; ++epoch) {
    (void)thr.forward_backward(fx.inputs, fx.targets, fx.head);
    thr.commit_update();
    core::EpochRecord rec;
    load.on_epoch(rec);
  }
  ASSERT_EQ(load.epoch_stats().size(), 2u);
  for (const auto& epoch : load.epoch_stats()) {
    ASSERT_EQ(epoch.size(), 2u);
    for (const auto& s : epoch) EXPECT_GT(s.items, 0u);
  }
  EXPECT_GE(core::StageLoadObserver::busy_spread(load.totals()), 1.0);
}

TEST(ThreadedEngine, BitwiseParityWithDropoutStreams) {
  // Dropout masks are counter-based: pure functions of (module seed, step,
  // micro, element) stamped on the Flow, so the threaded engine reproduces
  // the sequential engine's masks bitwise regardless of worker timing.
  // Each engine gets its own (identically seeded) model; with stateless
  // modules even sharing one model would be safe.
  data::TranslationConfig d;
  d.vocab = 12;
  d.seq_len = 5;
  d.train_size = 32;
  d.test_size = 8;
  d.seed = 3;
  nn::TransformerConfig mc;
  mc.d_model = 16;
  mc.heads = 2;
  mc.enc_layers = 1;
  mc.dec_layers = 1;
  mc.ffn_hidden = 24;
  mc.dropout = 0.3;
  core::TranslationTask task(d, mc, "tiny-dropout", /*eval=*/8);
  nn::Model model_seq = task.build_model();
  nn::Model model_thr = task.build_model();

  auto ec = parity_config(Method::PipeMare, 4, 2);
  PipelineEngine seq(model_seq, ec, 1);
  ThreadedEngine thr(model_thr, ec, 1);

  auto mb = task.minibatch({0, 1, 2, 3}, 2);
  for (int step = 0; step < 3; ++step) {
    auto rs = seq.forward_backward(mb.inputs, mb.targets, task.loss());
    auto rt = thr.forward_backward(mb.inputs, mb.targets, task.loss());
    ASSERT_DOUBLE_EQ(rs.loss, rt.loss) << "step " << step;
    auto gs = seq.gradients();
    auto gt = thr.gradients();
    for (std::size_t i = 0; i < gs.size(); ++i) {
      ASSERT_EQ(gs[i], gt[i]) << "grad " << i << " at step " << step;
    }
    for (std::size_t i = 0; i < gs.size(); ++i) {
      seq.weights()[i] -= 0.05F * gs[i];
      thr.weights()[i] -= 0.05F * gt[i];
    }
    seq.commit_update();
    thr.commit_update();
  }
}

TEST(ThreadedEngine, MatchesSequentialStalenessStatistics) {
  auto ec = parity_config(Method::PipeMare, 8, 4);
  ParityFixture fx(ec.num_microbatches);
  PipelineEngine seq(fx.model, ec, 1);
  ThreadedEngine thr(fx.model, ec, 1);
  auto tau_s = seq.stage_tau_fwd();
  auto tau_t = thr.stage_tau_fwd();
  ASSERT_EQ(tau_s.size(), tau_t.size());
  for (std::size_t s = 0; s < tau_s.size(); ++s) {
    EXPECT_DOUBLE_EQ(tau_s[s], tau_t[s]);
    // The paper's closed form (2(P-i)+1)/N for 1-indexed stage i.
    EXPECT_DOUBLE_EQ(tau_t[s], (2.0 * (8 - 1 - static_cast<double>(s)) + 1.0) / 4.0);
  }
  EXPECT_EQ(thr.num_workers(), 8);
}

TEST(ThreadedEngine, RejectsRecomputeSegments) {
  ParityFixture fx(2);
  auto ec = parity_config(Method::PipeMare, 4, 2);
  ec.recompute_segments = 2;
  EXPECT_THROW(ThreadedEngine(fx.model, ec, 1), std::invalid_argument);
}

TEST(ThreadedEngine, TrainLoopParityOnTinyTranslation) {
  // End-to-end: core::train drives either engine to the same loss
  // trajectory and metric curve (Sync and fully-async PipeMare).
  data::TranslationConfig d;
  d.vocab = 12;
  d.seq_len = 5;
  d.train_size = 64;
  d.test_size = 16;
  d.seed = 3;
  nn::TransformerConfig m;
  m.d_model = 16;
  m.heads = 2;
  m.enc_layers = 1;
  m.dec_layers = 1;
  m.ffn_hidden = 24;
  core::TranslationTask task(d, m, "tiny-parity", /*eval=*/8);

  for (auto method : {Method::Sync, Method::PipeMare}) {
    core::TrainerConfig cfg;
    cfg.epochs = 2;
    cfg.minibatch_size = 16;
    cfg.microbatch_size = 4;
    cfg.optimizer = core::TrainerConfig::Opt::AdamW;
    cfg.schedule = core::TrainerConfig::Sched::InverseSqrt;
    cfg.lr = 4e-3;
    cfg.sched_warmup_steps = 10;
    cfg.seed = 7;
    cfg.engine.method = method;
    cfg.engine.num_stages = 4;

    auto seq_res = core::train(task, cfg);
    cfg.backend = "threaded";
    auto thr_res = core::train(task, cfg);

    ASSERT_EQ(seq_res.curve.size(), thr_res.curve.size()) << method_name(method);
    for (std::size_t e = 0; e < seq_res.curve.size(); ++e) {
      EXPECT_DOUBLE_EQ(seq_res.curve[e].train_loss, thr_res.curve[e].train_loss)
          << method_name(method) << " epoch " << e;
      EXPECT_DOUBLE_EQ(seq_res.curve[e].metric, thr_res.curve[e].metric)
          << method_name(method) << " epoch " << e;
      EXPECT_DOUBLE_EQ(seq_res.curve[e].param_norm, thr_res.curve[e].param_norm)
          << method_name(method) << " epoch " << e;
    }
  }
}

TEST(StageMailbox, PopDrainsBackwardLaneFirst) {
  StageMailbox box(4, StageMailbox::kUnboundedCredits);
  StageItem f;
  f.kind = StageItem::Kind::Forward;
  f.micro = 0;
  box.push_forward(std::move(f));
  StageItem b;
  b.kind = StageItem::Kind::Backward;
  b.micro = 1;
  box.push_backward(std::move(b));
  EXPECT_EQ(box.pop().kind, StageItem::Kind::Backward);
  EXPECT_EQ(box.pop().kind, StageItem::Kind::Forward);
}

TEST(StageMailbox, PushBackwardNeverBlocks) {
  // The backward lane has no capacity wait: pushing far beyond the forward
  // capacity from the test thread must not deadlock.
  StageMailbox box(1, 1);
  for (int i = 0; i < 16; ++i) {
    box.push_backward({StageItem::Kind::Backward, i, {}});
  }
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(box.pop().micro, i);
  }
  EXPECT_EQ(box.stats().bwd_high_water, 16u);
}

TEST(StageMailbox, CreditGatesForwardPops) {
  // credits = 1: a second forward is admitted only after the first round
  // trip completes (a Backward pop or complete_inflight).
  StageMailbox box(4, 1);
  box.push_forward({StageItem::Kind::Forward, 0, {}});
  box.push_forward({StageItem::Kind::Forward, 1, {}});
  EXPECT_EQ(box.pop().micro, 0);  // in-flight: 1 of 1

  std::atomic<bool> popped{false};
  std::thread consumer([&] {
    StageItem item = box.pop();  // gated: must wait for the round trip
    EXPECT_EQ(item.kind, StageItem::Kind::Backward);
    EXPECT_EQ(item.micro, 7);
    popped.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(popped.load()) << "forward admitted past the credit bound";
  // The returning backward is always admissible; popping it completes the
  // round trip, after which forward 1 becomes admissible too.
  box.push_backward({StageItem::Kind::Backward, 7, {}});
  consumer.join();
  EXPECT_TRUE(popped.load());
  EXPECT_EQ(box.pop().micro, 1);
  EXPECT_EQ(box.stats().inflight_high_water, 1u);
}

TEST(StageMailbox, CompleteInflightReturnsFusedCredit) {
  // The tail stage fuses F+B and never pops Backward items; its explicit
  // credit return must re-admit the next forward (no deadlock).
  StageMailbox box(4, 1);
  box.push_forward({StageItem::Kind::Forward, 0, {}});
  box.push_forward({StageItem::Kind::Forward, 1, {}});
  EXPECT_EQ(box.pop().micro, 0);
  box.complete_inflight();  // same-thread consumer: no notify needed
  EXPECT_EQ(box.pop().micro, 1);
}

TEST(StageMailbox, BackwardPopCompletesRoundTrip) {
  StageMailbox box(4, 1);
  box.push_forward({StageItem::Kind::Forward, 0, {}});
  box.push_forward({StageItem::Kind::Forward, 1, {}});
  EXPECT_EQ(box.pop().micro, 0);
  box.push_backward({StageItem::Kind::Backward, 0, {}});
  EXPECT_EQ(box.pop().micro, 0);  // backward first; frees the credit
  EXPECT_EQ(box.pop().micro, 1);  // now admissible without explicit return
}

TEST(StageMailbox, TracksHighWaterMarks) {
  StageMailbox box(3, StageMailbox::kUnboundedCredits);
  box.push_forward({StageItem::Kind::Forward, 0, {}});
  box.push_forward({StageItem::Kind::Forward, 1, {}});
  box.push_backward({StageItem::Kind::Backward, 0, {}});
  auto s = box.stats();
  EXPECT_EQ(s.fwd_high_water, 2u);
  EXPECT_EQ(s.bwd_high_water, 1u);
  (void)box.pop();
  (void)box.pop();
  (void)box.pop();
  s = box.stats();  // high-water marks persist across pops
  EXPECT_EQ(s.fwd_high_water, 2u);
  EXPECT_EQ(s.bwd_high_water, 1u);
  box.reset_stats();
  EXPECT_EQ(box.stats().fwd_high_water, 0u);
}

/// A deep MLP of `layers` Linear(+ReLU) blocks: `layers` weight units, so
/// any P <= layers partitions cleanly; uniform per-layer cost.
nn::Model make_stress_mlp(int layers, int width, int classes) {
  nn::Model m;
  for (int i = 0; i < layers; ++i) {
    m.add(std::make_unique<nn::Linear>(width, width, /*relu_init=*/true));
    m.add(std::make_unique<nn::ReLU>());
  }
  m.add(std::make_unique<nn::Linear>(width, classes));
  return m;
}

TEST(ThreadedEngine, SmallLaneStressSweepHoldsOneFOneBBound) {
  // Sweep (P, N) in {1..4} x {1..8} with the tight 1F1B lane bounds:
  // every config must (a) stay bitwise-identical to the sequential
  // engine (deadlock-freedom + correctness under small lanes) and
  // (b) keep every per-lane high-water mark within the 1F1B occupancy
  // bound min(N, P - s + 1) for 0-indexed stage s (the in-flight
  // round-trip peak within the warmup depth min(N, P - s)).
  constexpr int kClasses = 6;
  nn::ClassificationXent head;
  for (int p = 1; p <= 4; ++p) {
    for (int n = 1; n <= 8; ++n) {
      nn::Model model = make_stress_mlp(/*layers=*/4, /*width=*/12, kClasses);
      util::Rng rng(17);
      std::vector<nn::Flow> inputs;
      std::vector<tensor::Tensor> targets;
      for (int m = 0; m < n; ++m) {
        nn::Flow f;
        f.x = tensor::Tensor({2, 12});
        for (std::int64_t i = 0; i < f.x.size(); ++i) {
          f.x[i] = static_cast<float>(rng.normal());
        }
        tensor::Tensor t({2});
        for (int j = 0; j < 2; ++j) t[j] = static_cast<float>(rng.randint(kClasses));
        inputs.push_back(std::move(f));
        targets.push_back(std::move(t));
      }

      auto ec = parity_config(Method::PipeMare, p, n);
      PipelineEngine seq(model, ec, 1);
      ThreadedEngine thr(model, ec, 1);
      for (int step = 0; step < 3; ++step) {
        auto rs = seq.forward_backward(inputs, targets, head);
        auto rt = thr.forward_backward(inputs, targets, head);
        ASSERT_DOUBLE_EQ(rs.loss, rt.loss) << "P=" << p << " N=" << n;
        auto gs = seq.gradients();
        auto gt = thr.gradients();
        for (std::size_t i = 0; i < gs.size(); ++i) {
          ASSERT_EQ(gs[i], gt[i]) << "P=" << p << " N=" << n << " grad " << i;
        }
        for (std::size_t i = 0; i < gs.size(); ++i) {
          seq.weights()[i] -= 0.05F * gs[i];
          thr.weights()[i] -= 0.05F * gt[i];
        }
        seq.commit_update();
        thr.commit_update();
      }

      auto stats = thr.lane_stats();
      ASSERT_EQ(stats.size(), static_cast<std::size_t>(p));
      for (int s = 0; s < p; ++s) {
        auto bound = static_cast<std::size_t>(std::min(n, p - s + 1));
        auto warmup = static_cast<std::size_t>(std::max(1, std::min(n, p - s)));
        const auto& ls = stats[static_cast<std::size_t>(s)];
        EXPECT_LE(ls.fwd_high_water, bound) << "P=" << p << " N=" << n << " s=" << s;
        EXPECT_LE(ls.bwd_high_water, bound) << "P=" << p << " N=" << n << " s=" << s;
        EXPECT_LE(ls.inflight_high_water, warmup)
            << "P=" << p << " N=" << n << " s=" << s;
      }
    }
  }
}

TEST(ThreadedEngine, NonFiniteLossContractMatchesSequential) {
  // Unified StepResult contract: first non-finite loss, zeroed metrics.
  constexpr int kClasses = 6;
  auto ec = parity_config(Method::PipeMare, 4, 4);
  // Linear-only chain: ReLU maps NaN to 0 (x > 0 ? x : 0), so an
  // activation would wash the poison out before it reaches the loss.
  nn::Model model;
  for (int i = 0; i < 4; ++i) {
    model.add(std::make_unique<nn::Linear>(12, 12));
  }
  model.add(std::make_unique<nn::Linear>(12, kClasses));
  nn::ClassificationXent head;
  util::Rng rng(17);
  std::vector<nn::Flow> inputs;
  std::vector<tensor::Tensor> targets;
  for (int m = 0; m < ec.num_microbatches; ++m) {
    nn::Flow f;
    f.x = tensor::Tensor({2, 12});
    for (std::int64_t i = 0; i < f.x.size(); ++i) {
      f.x[i] = static_cast<float>(rng.normal());
    }
    tensor::Tensor t({2});
    for (int j = 0; j < 2; ++j) t[j] = static_cast<float>(rng.randint(kClasses));
    inputs.push_back(std::move(f));
    targets.push_back(std::move(t));
  }
  // Poison microbatch 2 so earlier microbatches accumulate loss/metrics
  // that the contract requires the engines to discard. (An MLP propagates
  // the NaN to the loss; normalization layers could wash out mere infs.)
  for (std::int64_t i = 0; i < inputs[2].x.size(); ++i) {
    inputs[2].x[i] = std::numeric_limits<float>::quiet_NaN();
  }
  PipelineEngine seq(model, ec, 1);
  ThreadedEngine thr(model, ec, 1);
  auto rs = seq.forward_backward(inputs, targets, head);
  auto rt = thr.forward_backward(inputs, targets, head);
  EXPECT_FALSE(rs.finite);
  EXPECT_FALSE(rt.finite);
  EXPECT_FALSE(std::isfinite(rs.loss));
  EXPECT_FALSE(std::isfinite(rt.loss));
  EXPECT_EQ(rs.correct, 0.0);
  EXPECT_EQ(rs.count, 0.0);
  EXPECT_EQ(rt.correct, 0.0);
  EXPECT_EQ(rt.count, 0.0);
}

}  // namespace
}  // namespace pipemare::pipeline
