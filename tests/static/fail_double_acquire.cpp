// MUST NOT COMPILE under Clang -Wthread-safety -Werror: acquires the same
// non-recursive mutex twice in one scope — a guaranteed self-deadlock at
// runtime, rejected at compile time.
// Expected diagnostic: "acquiring mutex 'm' that is already held".
#include "src/util/sync.h"

namespace {

struct State {
  pipemare::util::Mutex m;
  int value GUARDED_BY(m) = 0;
};

}  // namespace

int static_suite_entry(State& s) {
  pipemare::util::MutexLock outer(s.m);
  pipemare::util::MutexLock inner(s.m);  // BUG: m already held
  return s.value;
}
