// MUST NOT COMPILE under Clang -Wthread-safety -Werror: releases a mutex
// the caller does not hold (undefined behavior on std::mutex), rejected at
// compile time.
// Expected diagnostic: "releasing mutex 'm' that was not held".
#include "src/util/sync.h"

namespace {

struct State {
  pipemare::util::Mutex m;
};

}  // namespace

void static_suite_entry(State& s) {
  s.m.unlock();  // BUG: never locked on this path
}
