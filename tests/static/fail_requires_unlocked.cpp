// MUST NOT COMPILE under Clang -Wthread-safety -Werror: calls
// CondVar::wait (annotated REQUIRES(mu)) without holding the mutex — the
// classic lost-wakeup/undefined-behavior bug, rejected at compile time.
// Expected diagnostic: "calling function 'wait' requires holding mutex".
#include "src/util/sync.h"

namespace {

struct Waiter {
  pipemare::util::Mutex m;
  pipemare::util::CondVar cv;
  bool ready GUARDED_BY(m) = false;

  void wait_without_lock() {
    cv.wait(m);  // BUG: m not held at the call
  }
};

}  // namespace

int static_suite_entry(Waiter& w) {
  w.wait_without_lock();
  return 0;
}
