// MUST NOT COMPILE under Clang -Wthread-safety -Werror: writes a
// GUARDED_BY field without holding its mutex.
// Expected diagnostic: -Wthread-safety-analysis "writing variable 'value_'
// requires holding mutex 'm_' exclusively".
#include "src/util/sync.h"

namespace {

class Counter {
 public:
  void increment_unlocked() {
    ++value_;  // BUG: m_ not held
  }

 private:
  pipemare::util::Mutex m_;
  int value_ GUARDED_BY(m_) = 0;
};

}  // namespace

int static_suite_entry(Counter& c) {
  c.increment_unlocked();
  return 0;
}
