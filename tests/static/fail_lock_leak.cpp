// MUST NOT COMPILE under Clang -Wthread-safety -Werror: a function locks a
// mutex manually and returns on one path without unlocking — the
// balance-on-every-path check MutexLock's RAII makes unnecessary.
// Expected diagnostic: "mutex 'm' is still held at the end of function".
#include "src/util/sync.h"

namespace {

struct State {
  pipemare::util::Mutex m;
  int value GUARDED_BY(m) = 0;
};

}  // namespace

int static_suite_entry(State& s, bool early) {
  s.m.lock();
  int v = s.value;
  if (early) return v;  // BUG: leaks the lock
  s.m.unlock();
  return v;
}
