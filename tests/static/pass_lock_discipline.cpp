// Positive control: the same surface the fail_* TUs abuse, used correctly.
// MUST compile cleanly under Clang -Wthread-safety -Werror — proving the
// suite's failures come from the violations, not from the harness or the
// wrappers themselves.
#include "src/util/sync.h"

namespace {

class BoundedCell {
 public:
  void put(int v) {
    pipemare::util::MutexLock lock(m_);
    while (full_) space_.wait(m_);  // while-loop wait, lock provably held
    value_ = v;
    full_ = true;
    ready_.notify_one();
  }

  int take() {
    pipemare::util::MutexLock lock(m_);
    while (!full_) ready_.wait(m_);
    full_ = false;
    space_.notify_one();
    return value_;
  }

  bool try_peek(int& out) {
    if (!m_.try_lock()) return false;
    out = value_;  // analysis knows try_lock() == true implies held
    m_.unlock();
    return true;
  }

 private:
  pipemare::util::Mutex m_;
  pipemare::util::CondVar ready_;
  pipemare::util::CondVar space_;
  int value_ GUARDED_BY(m_) = 0;
  bool full_ GUARDED_BY(m_) = false;
};

}  // namespace

int static_suite_entry(BoundedCell& cell) {
  cell.put(42);
  int v = 0;
  (void)cell.try_peek(v);
  return cell.take() + v;
}
