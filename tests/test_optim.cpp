#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "src/optim/optimizer.h"
#include "src/optim/schedule.h"
#include "src/optim/t1_reschedule.h"

namespace pipemare::optim {
namespace {

std::vector<LrSegment> whole(double lr, std::size_t n) {
  return {{0, static_cast<std::int64_t>(n), lr}};
}

TEST(SgdMomentum, PlainSgdStep) {
  SgdMomentum opt(0.0, 0.0);
  std::vector<float> w = {1.0F, -2.0F};
  std::vector<float> g = {0.5F, 1.0F};
  opt.step(w, g, whole(0.1, 2));
  EXPECT_NEAR(w[0], 0.95F, 1e-6F);
  EXPECT_NEAR(w[1], -2.1F, 1e-6F);
  EXPECT_EQ(opt.state_copies(), 0);
}

TEST(SgdMomentum, MomentumAccumulates) {
  // PyTorch convention: v = mu v + g, w -= lr v. Two identical steps:
  // step1: v=g, w -= lr g; step2: v = mu g + g, w -= lr (1+mu) g.
  SgdMomentum opt(0.9, 0.0);
  std::vector<float> w = {0.0F};
  std::vector<float> g = {1.0F};
  opt.step(w, g, whole(0.1, 1));
  EXPECT_NEAR(w[0], -0.1F, 1e-6F);
  opt.step(w, g, whole(0.1, 1));
  EXPECT_NEAR(w[0], -0.1F - 0.1F * 1.9F, 1e-6F);
  EXPECT_EQ(opt.state_copies(), 1);
}

TEST(SgdMomentum, WeightDecayAddsToGradient) {
  SgdMomentum opt(0.0, 0.1);
  std::vector<float> w = {2.0F};
  std::vector<float> g = {0.0F};
  opt.step(w, g, whole(0.5, 1));
  // g' = 0 + 0.1*2 = 0.2; w -= 0.5*0.2.
  EXPECT_NEAR(w[0], 1.9F, 1e-6F);
}

TEST(SgdMomentum, PerSegmentLearningRates) {
  SgdMomentum opt(0.0, 0.0);
  std::vector<float> w = {1.0F, 1.0F};
  std::vector<float> g = {1.0F, 1.0F};
  std::vector<LrSegment> segs = {{0, 1, 0.1}, {1, 1, 0.2}};
  opt.step(w, g, segs);
  EXPECT_NEAR(w[0], 0.9F, 1e-6F);
  EXPECT_NEAR(w[1], 0.8F, 1e-6F);
}

TEST(AdamW, FirstStepIsSignedLr) {
  // With bias correction, the first Adam step is ~lr * sign(g).
  AdamW opt(0.9, 0.999, 1e-12, 0.0);
  std::vector<float> w = {0.0F, 0.0F};
  std::vector<float> g = {3.0F, -0.5F};
  opt.step(w, g, whole(0.01, 2));
  EXPECT_NEAR(w[0], -0.01F, 1e-5F);
  EXPECT_NEAR(w[1], 0.01F, 1e-5F);
  EXPECT_EQ(opt.state_copies(), 2);
}

TEST(AdamW, DecoupledWeightDecayShrinksWeights) {
  AdamW opt(0.9, 0.999, 1e-12, 0.1);
  std::vector<float> w = {1.0F};
  std::vector<float> g = {0.0F};
  opt.step(w, g, whole(0.01, 1));
  // Zero gradient: only the decoupled decay applies: w -= lr*wd*w.
  EXPECT_NEAR(w[0], 1.0F - 0.01F * 0.1F, 1e-6F);
}

TEST(AdamW, ConvergesOnQuadratic) {
  AdamW opt;
  std::vector<float> w = {5.0F};
  for (int i = 0; i < 3000; ++i) {
    std::vector<float> g = {w[0]};  // f = w^2/2
    opt.step(w, g, whole(0.01, 1));
  }
  EXPECT_NEAR(w[0], 0.0F, 0.02F);
}

TEST(ClipGradNorm, ScalesOnlyAboveThreshold) {
  std::vector<float> g = {3.0F, 4.0F};  // norm 5
  double norm = clip_grad_norm(g, 10.0);
  EXPECT_NEAR(norm, 5.0, 1e-9);
  EXPECT_NEAR(g[0], 3.0F, 1e-6F);
  norm = clip_grad_norm(g, 1.0);
  EXPECT_NEAR(norm, 5.0, 1e-9);
  EXPECT_NEAR(std::hypot(g[0], g[1]), 1.0F, 1e-4F);
}

TEST(Schedules, StepDecayDropsByFactor) {
  StepDecay s(0.1, 0.1, 100);
  EXPECT_DOUBLE_EQ(s.lr(0), 0.1);
  EXPECT_DOUBLE_EQ(s.lr(99), 0.1);
  EXPECT_DOUBLE_EQ(s.lr(100), 0.01);
  EXPECT_DOUBLE_EQ(s.lr(250), 0.001);
}

TEST(Schedules, InverseSqrtWarmupShape) {
  InverseSqrtWarmup s(1e-3, 100, 1e-7);
  EXPECT_NEAR(s.lr(0), 1e-7, 1e-12);
  EXPECT_NEAR(s.lr(50), 0.5e-3, 1e-5);
  EXPECT_NEAR(s.lr(100), 1e-3, 1e-12);
  EXPECT_NEAR(s.lr(400), 1e-3 * 0.5, 1e-12);  // sqrt(100/400)
  // Monotone decreasing after warmup.
  EXPECT_GT(s.lr(200), s.lr(300));
}

TEST(T1, ScaleAnnealsFromInverseTauToOne) {
  T1Rescheduler t1({8.0, 2.0, 0.25}, 100);
  // Step 0: p=1 -> scale = 1/tau (tau clamped to >= 1).
  EXPECT_NEAR(t1.scale(0, 0), 1.0 / 8.0, 1e-12);
  EXPECT_NEAR(t1.scale(0, 1), 1.0 / 2.0, 1e-12);
  EXPECT_NEAR(t1.scale(0, 2), 1.0, 1e-12);  // tau<1 clamped: never boosts LR
  // Step 50: p=0.5 -> scale = tau^{-1/2}.
  EXPECT_NEAR(t1.scale(50, 0), std::pow(8.0, -0.5), 1e-12);
  // Step >= K: back to the base schedule.
  EXPECT_NEAR(t1.scale(100, 0), 1.0, 1e-12);
  EXPECT_NEAR(t1.scale(500, 0), 1.0, 1e-12);
}

TEST(T1, DisabledWhenAnnealingNonPositive) {
  T1Rescheduler t1({8.0}, 0);
  EXPECT_NEAR(t1.scale(0, 0), 1.0, 1e-12);
}

TEST(T1, ScalesVectorMonotoneInStage) {
  // Earlier stages (larger tau) get smaller multipliers.
  T1Rescheduler t1({10.0, 5.0, 2.0, 1.0}, 1000);
  auto s = t1.scales(0);
  for (std::size_t i = 1; i < s.size(); ++i) EXPECT_GE(s[i], s[i - 1]);
}

}  // namespace
}  // namespace pipemare::optim
