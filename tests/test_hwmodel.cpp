#include <gtest/gtest.h>

#include <cmath>

#include "src/hwmodel/activation_memory.h"
#include "src/hwmodel/characteristics.h"
#include "src/hwmodel/gpipe_throughput.h"
#include "src/pipeline/schedule.h"

namespace pipemare::hwmodel {
namespace {

using pipeline::Method;

TEST(Table1, DelayFormulas) {
  // First stage of PipeDream/PipeMare: (2P-1)/N; GPipe has zero delay.
  EXPECT_DOUBLE_EQ(tau_fwd(Method::PipeDream, 107, 8, 1), 213.0 / 8.0);
  EXPECT_DOUBLE_EQ(tau_fwd(Method::PipeMare, 107, 8, 1), 213.0 / 8.0);
  EXPECT_DOUBLE_EQ(tau_fwd(Method::Sync, 107, 8, 1), 0.0);
  // Last stage: 1/N.
  EXPECT_DOUBLE_EQ(tau_fwd(Method::PipeMare, 107, 8, 107), 1.0 / 8.0);
  // Backward delay: equal to forward for PipeDream, zero for PipeMare.
  EXPECT_DOUBLE_EQ(tau_bkwd(Method::PipeDream, 16, 4, 5),
                   tau_fwd(Method::PipeDream, 16, 4, 5));
  EXPECT_DOUBLE_EQ(tau_bkwd(Method::PipeMare, 16, 4, 5), 0.0);
}

TEST(Table1, DelayFormulaMatchesEngineSchedule) {
  // The analytic Table 1 row and the tick-schedule engine must agree.
  for (int p : {4, 16, 107}) {
    for (int n : {1, 8}) {
      pipeline::Schedule sched(p, n);
      for (int i = 1; i <= p; ++i) {
        EXPECT_DOUBLE_EQ(tau_fwd(Method::PipeMare, p, n, i), sched.mean_tau_fwd(i - 1));
      }
    }
  }
}

TEST(Table1, ThroughputAndMemory) {
  EXPECT_DOUBLE_EQ(normalized_throughput_simple(Method::PipeDream, 50, 10), 1.0);
  EXPECT_DOUBLE_EQ(normalized_throughput_simple(Method::PipeMare, 50, 10), 1.0);
  EXPECT_DOUBLE_EQ(normalized_throughput_simple(Method::Sync, 50, 10), 10.0 / 59.0);
  EXPECT_DOUBLE_EQ(weight_memory_copies(Method::Sync, 50, 10), 1.0);
  EXPECT_DOUBLE_EQ(weight_memory_copies(Method::PipeMare, 50, 10), 1.0);
  EXPECT_DOUBLE_EQ(weight_memory_copies(Method::PipeDream, 50, 10), 1.0 + 5.0);
}

TEST(Memory, PipeMareT2FactorsMatchPaper) {
  // Footnote 2: +33% with SGD momentum (3 -> 4 copies), +25% with Adam
  // (4 -> 5 copies).
  EXPECT_NEAR(memory_factor_vs_gpipe(Method::PipeMare, 107, 8, /*sgd*/ 1, true),
              4.0 / 3.0, 1e-12);
  EXPECT_NEAR(memory_factor_vs_gpipe(Method::PipeMare, 93, 19, /*adam*/ 2, true),
              5.0 / 4.0, 1e-12);
  // Without T2 PipeMare costs exactly the GPipe baseline.
  EXPECT_NEAR(memory_factor_vs_gpipe(Method::PipeMare, 107, 8, 1, false), 1.0, 1e-12);
}

TEST(Memory, PipeDreamGrowsLinearlyWithStages) {
  double f1 = memory_factor_vs_gpipe(Method::PipeDream, 50, 10, 1, false);
  double f2 = memory_factor_vs_gpipe(Method::PipeDream, 100, 10, 1, false);
  EXPECT_GT(f2, f1);
  // Factor = (base + P/N) / base.
  EXPECT_NEAR(f1, (3.0 + 5.0) / 3.0, 1e-12);
}

TEST(TimeToTarget, InfinityWhenUnreached) {
  EXPECT_TRUE(std::isinf(time_to_target(-1.0, 1.0)));
  EXPECT_DOUBLE_EQ(time_to_target(30.0, 0.3), 100.0);
}

TEST(TimeToTarget, PaperSpeedupsReproduced) {
  // CIFAR10 (Table 2): GPipe 83 epochs @0.3 vs PipeMare 82 @1.0 -> 3.3X.
  double gpipe = time_to_target(83, normalized_throughput_budget(Method::Sync));
  double pipemare = time_to_target(82, 1.0);
  EXPECT_NEAR(gpipe / pipemare, 3.37, 0.05);
  // IWSLT: GPipe 30 @0.3 vs PipeMare 35 epochs with 10 sync warmup -> 1.7X
  // and amortized throughput 0.6.
  double tp = amortized_throughput(10, 35);
  EXPECT_NEAR(tp, 0.6, 0.02);
  double speedup = time_to_target(30, 0.3) / time_to_target(35, tp);
  EXPECT_NEAR(speedup, 1.7, 0.05);
  // WMT: GPipe 50 @0.3 vs PipeMare 54 epochs with 4 sync warmup -> ~2.6X.
  double tp_wmt = amortized_throughput(4, 54);
  EXPECT_NEAR(tp_wmt, 0.85, 0.05);
  double speedup_wmt = time_to_target(50, 0.3) / time_to_target(54, tp_wmt);
  EXPECT_NEAR(speedup_wmt, 2.6, 0.1);
}

TEST(ActivationMemory, NoRecomputeTotalIsPSquared) {
  for (int p : {4, 16, 107}) {
    auto counts = pipemare_activation_counts(p);
    EXPECT_EQ(total_activations(counts), static_cast<std::int64_t>(p) * p);
    // Monotone decreasing: later stages hold fewer in-flight activations.
    for (std::size_t i = 1; i < counts.size(); ++i) {
      EXPECT_LT(counts[i], counts[i - 1]);
    }
  }
}

TEST(ActivationMemory, RecomputeScalesAsP32) {
  // Appendix A.2: total with S = sqrt(P) is O(P^{3/2}) against O(P^2).
  for (int p : {16, 64, 144}) {
    int s = optimal_segment_size(p);
    auto rec = total_activations(pipemare_recompute_counts(p, s));
    auto base = total_activations(pipemare_activation_counts(p));
    double ratio = static_cast<double>(rec) / static_cast<double>(base);
    // Counted constant is ~2/sqrt(P) (checkpoints + recompute buffers).
    EXPECT_LT(ratio, 2.5 / std::sqrt(static_cast<double>(p)));
    EXPECT_GT(ratio, 1.0 / std::sqrt(static_cast<double>(p)));
    // Optimal segment size is near sqrt(P).
    EXPECT_NEAR(s, std::sqrt(static_cast<double>(p)), std::sqrt(static_cast<double>(p)));
  }
}

TEST(ActivationMemory, Figure6CountsFor16Stages4Segments) {
  // Figure 6's example: 16 stages, 4 segments of 4. Segment starts keep the
  // full in-flight window; in-segment stages keep small recompute buffers.
  auto counts = pipemare_recompute_counts(16, 4);
  EXPECT_EQ(counts[0], 31);  // 2*15+1
  EXPECT_EQ(counts[1], 5);   // 2*(4-1-1)+1
  EXPECT_EQ(counts[2], 3);
  EXPECT_EQ(counts[3], 1);
  EXPECT_EQ(counts[4], 23);  // next segment start: 2*(16-1-4)+1
  auto base = pipemare_activation_counts(16);
  for (std::size_t i = 0; i < counts.size(); ++i) {
    EXPECT_LE(counts[i], base[i]);  // recompute never exceeds the original
  }
}

TEST(ActivationMemory, Table5RatiosMatchPaper) {
  EXPECT_NEAR(table5_ratio(107), 0.097, 0.001);
  EXPECT_NEAR(table5_ratio(93), 0.104, 0.001);
  EXPECT_NEAR(table5_ratio(91), 0.105, 0.001);
}

TEST(ActivationMemory, GPipeRecomputeScalesAsSqrtN) {
  int p = 100;
  for (int n : {16, 64}) {
    int s = gpipe_optimal_segment_size(p, n);
    auto rec = gpipe_recompute_total(p, n, s);
    auto base = gpipe_total_activations(p, n);
    double ratio = static_cast<double>(rec) / static_cast<double>(base);
    EXPECT_LT(ratio, 2.5 / std::sqrt(static_cast<double>(n)));
  }
}

TEST(GpipeThroughput, PiecewiseCasesFromAppendixA3) {
  // Case 2 (alpha <= 3/2): T = alpha / (2 (1 + alpha)); max 0.3 at 3/2.
  EXPECT_NEAR(gpipe_relative_throughput(1.5, false), 0.3, 1e-9);
  // Case 1 (alpha >= 3): T = 1 / (1 + alpha) <= 0.25.
  EXPECT_NEAR(gpipe_relative_throughput(3.0, false), 0.25, 1e-9);
  EXPECT_NEAR(gpipe_relative_throughput(6.0, false), 1.0 / 7.0, 1e-9);
}

TEST(GpipeThroughput, MaximumIsPoint30) {
  // The paper reports max ~0.3 at alpha = sqrt(3/2); sqrt(3/2) actually
  // falls outside its case-3 domain, and the true maximum of the piecewise
  // model is exactly 0.30 at the case boundary alpha = 3/2 — the same
  // headline 0.3 the paper uses for its time-to-accuracy estimates.
  double best_alpha = 0.0;
  double best = gpipe_max_relative_throughput(false, &best_alpha);
  EXPECT_NEAR(best, 0.300, 0.001);
  EXPECT_NEAR(best_alpha, 1.5, 0.05);
}

TEST(GpipeThroughput, MaximumWithRecomputeIsPoint29) {
  double best = gpipe_max_relative_throughput(true, nullptr);
  EXPECT_NEAR(best, 0.29, 0.01);
}

class BudgetSweep : public ::testing::TestWithParam<double> {};

TEST_P(BudgetSweep, NeverExceedsPaperMaximum) {
  double alpha = GetParam();
  EXPECT_LE(gpipe_relative_throughput(alpha, false), 0.3001);
  EXPECT_LE(gpipe_relative_throughput(alpha, true), 0.2858);
}

INSTANTIATE_TEST_SUITE_P(AlphaGrid, BudgetSweep,
                         ::testing::Values(0.1, 0.5, 1.0, 1.2247, 1.5, 2.0, 3.0, 5.0,
                                           10.0));

}  // namespace
}  // namespace pipemare::hwmodel
