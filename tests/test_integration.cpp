#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "src/core/experiments.h"
#include "src/core/task.h"
#include "src/core/trainer.h"
#include "src/data/bleu.h"
#include "src/nn/serialize.h"
#include "src/pipeline/partition.h"

namespace pipemare::core {
namespace {

/// Small, fast translation task for end-to-end trainer tests.
std::unique_ptr<TranslationTask> tiny_translation_task(std::uint64_t seed = 3) {
  data::TranslationConfig d;
  d.vocab = 12;
  d.seq_len = 5;
  d.train_size = 256;
  d.test_size = 48;
  d.seed = seed;
  nn::TransformerConfig m;
  m.d_model = 16;
  m.heads = 2;
  m.enc_layers = 1;
  m.dec_layers = 1;
  m.ffn_hidden = 24;
  return std::make_unique<TranslationTask>(d, m, "tiny-translation", /*eval=*/32);
}

TrainerConfig tiny_translation_config(int epochs) {
  TrainerConfig cfg;
  cfg.epochs = epochs;
  cfg.minibatch_size = 16;
  cfg.microbatch_size = 1;
  cfg.optimizer = TrainerConfig::Opt::AdamW;
  cfg.weight_decay = 1e-4;
  cfg.grad_clip = 25.0;
  cfg.schedule = TrainerConfig::Sched::InverseSqrt;
  cfg.lr = 4e-3;
  cfg.sched_warmup_steps = 40;
  cfg.seed = 7;
  return cfg;
}

TEST(Integration, SyncTransformerLearnsTinyTranslation) {
  auto task = tiny_translation_task();
  auto cfg = tiny_translation_config(10);
  cfg.engine.method = pipeline::Method::Sync;
  cfg.engine.num_stages = 4;
  auto res = train(*task, cfg);
  ASSERT_FALSE(res.diverged);
  EXPECT_GT(res.best_metric, 20.0) << "BLEU after 10 sync epochs";
}

TEST(Integration, PipeMareFullStackOnTinyTranslation) {
  // All three techniques together at full weight-unit granularity: the
  // asynchronous run must make real progress (BLEU well above the random
  // floor, which is ~0).
  auto task = tiny_translation_task(5);
  int stages = pipeline::max_stages(task->build_model(), false);
  auto cfg = tiny_translation_config(14);
  cfg.engine.method = pipeline::Method::PipeMare;
  cfg.engine.num_stages = stages;
  cfg.t1 = true;
  cfg.t1_annealing_steps = 120;
  cfg.engine.discrepancy_correction = true;
  cfg.engine.decay_d = 0.1;
  cfg.warmup_epochs = 2;
  auto res = train(*task, cfg);
  ASSERT_FALSE(res.diverged);
  EXPECT_GT(res.best_metric, 10.0);
}

TEST(Integration, TrainedWeightsSurviveSerializationRoundTrip) {
  auto task = tiny_translation_task(9);
  auto cfg = tiny_translation_config(6);
  cfg.engine.method = pipeline::Method::Sync;
  cfg.engine.num_stages = 2;

  nn::Model model = task->build_model();
  cfg.engine.num_microbatches = cfg.num_microbatches();
  pipeline::PipelineEngine engine(model, cfg.engine, cfg.seed);
  auto res = train_loop(*task, engine, cfg);
  ASSERT_FALSE(res.diverged);
  double before = task->evaluate(model, engine.weights());

  std::string path =
      (std::filesystem::temp_directory_path() / "pipemare_integration_ckpt.bin").string();
  nn::save_weights(path, engine.weights());
  auto loaded = nn::load_weights(path);
  std::remove(path.c_str());
  double after = task->evaluate(model, loaded);
  EXPECT_DOUBLE_EQ(before, after);
}

TEST(Integration, BeamAndGreedyAgreeOnWellTrainedModel) {
  // Once the synthetic mapping is learned, the model's distribution is
  // sharply peaked and beam-5 output matches greedy output (this is the
  // justification for evaluating curves greedily; DESIGN decision).
  // 30 epochs drive the synthetic mapping to (near-)perfect BLEU across
  // seeds (12 epochs used to land around BLEU 20 and forced a skip).
  auto task = tiny_translation_task(11);
  auto cfg = tiny_translation_config(30);
  cfg.engine.method = pipeline::Method::Sync;
  cfg.engine.num_stages = 4;

  nn::Model model = task->build_model();
  cfg.engine.num_microbatches = cfg.num_microbatches();
  pipeline::PipelineEngine engine(model, cfg.engine, cfg.seed);
  auto res = train_loop(*task, engine, cfg);
  ASSERT_FALSE(res.diverged);
  ASSERT_GE(res.best_metric, 60.0) << "model must train well enough for the agreement check";
  double greedy = task->evaluate(model, engine.weights());
  double beam = task->evaluate_beam(model, engine.weights(), 5);
  EXPECT_NEAR(greedy, beam, 5.0);
}

TEST(Integration, SplitBiasDoublesStagesAndStillTrains) {
  auto task = tiny_translation_task(13);
  nn::Model probe = task->build_model();
  int stages_1x = pipeline::max_stages(probe, false);
  int stages_2x = pipeline::max_stages(probe, true);
  EXPECT_GT(stages_2x, stages_1x);
  auto cfg = tiny_translation_config(8);
  cfg.engine.method = pipeline::Method::PipeMare;
  cfg.engine.num_stages = stages_2x;
  cfg.engine.split_bias = true;
  cfg.t1 = true;
  cfg.t1_annealing_steps = 120;
  cfg.engine.discrepancy_correction = true;
  cfg.warmup_epochs = 1;
  auto res = train(*task, cfg);
  EXPECT_FALSE(res.diverged);
}

TEST(Integration, DivergenceIsDetectedAndTruncatesTraining) {
  auto task = tiny_translation_task(15);
  auto cfg = tiny_translation_config(6);
  cfg.engine.method = pipeline::Method::PipeMare;
  cfg.engine.num_stages = pipeline::max_stages(task->build_model(), false);
  // Plain SGD with an absurd step size: guaranteed blow-up (AdamW's
  // normalized updates would merely saturate the loss).
  cfg.optimizer = TrainerConfig::Opt::SgdMomentum;
  cfg.schedule = TrainerConfig::Sched::Constant;
  cfg.lr = 50.0;
  cfg.grad_clip = 0.0;
  auto res = train(*task, cfg);
  EXPECT_TRUE(res.diverged);
  EXPECT_LT(res.curve.size(), 6u);
}

}  // namespace
}  // namespace pipemare::core
