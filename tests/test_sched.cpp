// The work-stealing runtime suite (tier1): TaskQueue push/pop/steal
// mechanics (single-owner order + concurrent stealers), StealPolicy
// ranking/refresh/parsing, WorkerPool generations, and the StealingEngine
// guarantees the ISSUE acceptance criteria name — steals-disabled bitwise
// parity vs the threaded engine, forced-steal bitwise parity vs the
// sequential engine, a (P, N, W) stress sweep asserting no task is lost or
// run twice, run-to-run reproducible curves in deterministic steal mode,
// and steal counts surfacing through core::StageLoadObserver.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "src/core/backend.h"
#include "src/core/engine_backend.h"
#include "src/core/stage_load.h"
#include "src/core/task.h"
#include "src/core/trainer.h"
#include "src/nn/activations.h"
#include "src/nn/heads.h"
#include "src/nn/linear.h"
#include "src/nn/model.h"
#include "src/pipeline/engine.h"
#include "src/pipeline/threaded_engine.h"
#include "src/sched/steal_policy.h"
#include "src/sched/stealing_engine.h"
#include "src/sched/task_queue.h"
#include "src/sched/worker_pool.h"
#include "src/util/rng.h"

namespace pipemare::sched {
namespace {

// ---------------------------------------------------------------------------
// TaskQueue
// ---------------------------------------------------------------------------

TEST(TaskQueue, OwnerPopsBackwardFirstThiefStealsForwardFirst) {
  TaskQueue q;
  q.push({Task::Kind::Forward, 0, 0});
  q.push({Task::Kind::Forward, 0, 1});
  q.push({Task::Kind::Backward, 0, 2});

  Task t;
  ASSERT_TRUE(q.pop(t));
  EXPECT_EQ(t.kind, Task::Kind::Backward);  // owner: backward lane first
  ASSERT_TRUE(q.steal(t));
  EXPECT_EQ(t.kind, Task::Kind::Forward);  // thief: forward lane first
  EXPECT_EQ(t.micro, 0);                   // ... and the oldest forward
  ASSERT_TRUE(q.pop(t));
  EXPECT_EQ(t.micro, 1);
  EXPECT_FALSE(q.pop(t));
  EXPECT_FALSE(q.steal(t));
  EXPECT_TRUE(q.empty());
}

TEST(TaskQueue, BothEndsAreFifoWithinALane) {
  TaskQueue q;
  for (int m = 0; m < 4; ++m) q.push({Task::Kind::Forward, 1, m});
  Task t;
  ASSERT_TRUE(q.steal(t));
  EXPECT_EQ(t.micro, 0);  // steal takes the oldest
  ASSERT_TRUE(q.pop(t));
  EXPECT_EQ(t.micro, 1);  // owner also takes the oldest (pipeline order)
  ASSERT_TRUE(q.steal(t));
  EXPECT_EQ(t.micro, 2);
  ASSERT_TRUE(q.pop(t));
  EXPECT_EQ(t.micro, 3);
}

TEST(TaskQueue, ConcurrentStealersTakeEachTaskExactlyOnce) {
  constexpr int kTasks = 512;
  constexpr int kThieves = 4;
  TaskQueue q;
  for (int m = 0; m < kTasks; ++m) q.push({Task::Kind::Forward, 0, m});

  std::mutex taken_m;
  std::vector<int> taken;
  std::vector<std::thread> thieves;
  thieves.reserve(kThieves);
  for (int i = 0; i < kThieves; ++i) {
    thieves.emplace_back([&] {
      std::vector<int> mine;
      Task t;
      while (q.steal(t)) mine.push_back(t.micro);
      std::lock_guard<std::mutex> lock(taken_m);
      taken.insert(taken.end(), mine.begin(), mine.end());
    });
  }
  for (auto& th : thieves) th.join();

  ASSERT_EQ(taken.size(), static_cast<std::size_t>(kTasks)) << "lost or duplicated";
  std::sort(taken.begin(), taken.end());
  for (int m = 0; m < kTasks; ++m) {
    ASSERT_EQ(taken[static_cast<std::size_t>(m)], m) << "task " << m;
  }
  EXPECT_TRUE(q.empty());
}

// ---------------------------------------------------------------------------
// StealPolicy
// ---------------------------------------------------------------------------

TEST(StealPolicy, RanksByPredictedShareBusiestFirstStableTies) {
  StealPolicy p(StealMode::Deterministic, {1.0, 5.0, 5.0, 2.0});
  EXPECT_EQ(p.victim_order(), (std::vector<int>{1, 2, 3, 0}));
  EXPECT_TRUE(p.deterministic());
  EXPECT_TRUE(p.steal_enabled());
  EXPECT_FALSE(p.steal_first());
}

TEST(StealPolicy, LoadAwareRefreshReRanksDeterministicDoesNot) {
  StealPolicy load(StealMode::LoadAware, {1.0, 1.0, 1.0});
  EXPECT_EQ(load.victim_order(), (std::vector<int>{0, 1, 2}));
  load.refresh(std::vector<std::uint64_t>{5, 50, 10});
  EXPECT_EQ(load.victim_order(), (std::vector<int>{1, 2, 0}));
  // All-zero observations keep the current ranking (nothing measured).
  load.refresh(std::vector<std::uint64_t>{0, 0, 0});
  EXPECT_EQ(load.victim_order(), (std::vector<int>{1, 2, 0}));

  StealPolicy det(StealMode::Deterministic, {1.0, 2.0, 3.0});
  EXPECT_EQ(det.victim_order(), (std::vector<int>{2, 1, 0}));
  det.refresh(std::vector<std::uint64_t>{100, 1, 1});
  EXPECT_EQ(det.victim_order(), (std::vector<int>{2, 1, 0}));  // fixed order
}

TEST(StealPolicy, ModeParsingAndNames) {
  EXPECT_EQ(parse_steal_mode("off"), StealMode::Disabled);
  EXPECT_EQ(parse_steal_mode("disabled"), StealMode::Disabled);
  EXPECT_EQ(parse_steal_mode("load"), StealMode::LoadAware);
  EXPECT_EQ(parse_steal_mode("load-aware"), StealMode::LoadAware);
  EXPECT_EQ(parse_steal_mode("det"), StealMode::Deterministic);
  EXPECT_EQ(parse_steal_mode("deterministic"), StealMode::Deterministic);
  EXPECT_EQ(parse_steal_mode("forced"), StealMode::Forced);
  EXPECT_THROW(parse_steal_mode("sideways"), std::invalid_argument);
  for (auto mode : {StealMode::Disabled, StealMode::LoadAware,
                    StealMode::Deterministic, StealMode::Forced}) {
    EXPECT_EQ(parse_steal_mode(steal_mode_name(mode)), mode);
  }
  EXPECT_FALSE(StealPolicy(StealMode::Disabled, {1.0}).steal_enabled());
  EXPECT_TRUE(StealPolicy(StealMode::Forced, {1.0}).steal_first());
}

// ---------------------------------------------------------------------------
// WorkerPool
// ---------------------------------------------------------------------------

TEST(WorkerPool, RunsBodyOncePerWorkerPerGeneration) {
  constexpr int kWorkers = 3;
  std::atomic<int> calls{0};
  std::vector<std::atomic<int>> per_worker(kWorkers);
  WorkerPool pool(kWorkers, [&](int w) {
    calls.fetch_add(1);
    per_worker[static_cast<std::size_t>(w)].fetch_add(1);
  });
  EXPECT_EQ(pool.size(), kWorkers);
  for (int gen = 1; gen <= 4; ++gen) {
    pool.run_generation();
    EXPECT_EQ(calls.load(), gen * kWorkers);
    for (int w = 0; w < kWorkers; ++w) {
      EXPECT_EQ(per_worker[static_cast<std::size_t>(w)].load(), gen);
    }
  }
}

// ---------------------------------------------------------------------------
// StealingEngine
// ---------------------------------------------------------------------------

/// The tier-1 MLP fixture: `layers` Linear(+ReLU) units with random
/// classification microbatches (same recipe as the threaded-engine stress
/// suite).
struct MlpFixture {
  nn::Model model;
  nn::ClassificationXent head;
  std::vector<nn::Flow> inputs;
  std::vector<tensor::Tensor> targets;

  MlpFixture(int layers, int width, int classes, int num_micro,
             std::uint64_t seed = 17) {
    for (int i = 0; i < layers; ++i) {
      model.add(std::make_unique<nn::Linear>(width, width, /*relu_init=*/true));
      model.add(std::make_unique<nn::ReLU>());
    }
    model.add(std::make_unique<nn::Linear>(width, classes));
    util::Rng rng(seed);
    for (int m = 0; m < num_micro; ++m) {
      nn::Flow f;
      f.x = tensor::Tensor({2, width});
      for (std::int64_t i = 0; i < f.x.size(); ++i) {
        f.x[i] = static_cast<float>(rng.normal());
      }
      tensor::Tensor t({2});
      for (int j = 0; j < 2; ++j) t[j] = static_cast<float>(rng.randint(classes));
      inputs.push_back(std::move(f));
      targets.push_back(std::move(t));
    }
  }
};

StealConfig steal_config(pipeline::Method method, int stages, int micro, int workers,
                         StealMode mode) {
  StealConfig cfg;
  cfg.engine.method = method;
  cfg.engine.num_stages = stages;
  cfg.engine.num_microbatches = micro;
  cfg.workers = workers;
  cfg.mode = mode;
  return cfg;
}

/// Runs `steps` SGD steps on a reference engine and the stealing engine
/// and asserts bitwise-equal losses, gradients and weights at every step.
template <class Ref>
void expect_bitwise_parity(Ref& ref, StealingEngine& eng, MlpFixture& fx, int steps,
                           const std::string& label) {
  for (int step = 0; step < steps; ++step) {
    auto rr = ref.forward_backward(fx.inputs, fx.targets, fx.head);
    auto rs = eng.forward_backward(fx.inputs, fx.targets, fx.head);
    ASSERT_EQ(rr.finite, rs.finite) << label << " step " << step;
    ASSERT_DOUBLE_EQ(rr.loss, rs.loss) << label << " step " << step;
    ASSERT_DOUBLE_EQ(rr.correct, rs.correct) << label << " step " << step;
    auto gr = ref.gradients();
    auto gs = eng.gradients();
    ASSERT_EQ(gr.size(), gs.size()) << label;
    for (std::size_t i = 0; i < gr.size(); ++i) {
      ASSERT_EQ(gr[i], gs[i]) << label << " grad " << i << " at step " << step;
    }
    for (std::size_t i = 0; i < gr.size(); ++i) {
      ref.weights()[i] -= 0.05F * gr[i];
      eng.weights()[i] -= 0.05F * gs[i];
    }
    ref.commit_update();
    eng.commit_update();
  }
  for (std::size_t i = 0; i < ref.weights().size(); ++i) {
    ASSERT_EQ(ref.weights()[i], eng.weights()[i]) << label << " weight " << i;
  }
}

TEST(StealingEngine, StealsDisabledBitwiseMatchesThreaded) {
  for (auto method : {pipeline::Method::Sync, pipeline::Method::PipeDream,
                      pipeline::Method::PipeMare}) {
    MlpFixture fx(/*layers=*/4, /*width=*/12, /*classes=*/6, /*num_micro=*/4);
    auto cfg = steal_config(method, 4, 4, /*workers=*/4, StealMode::Disabled);
    pipeline::ThreadedEngine thr(fx.model, cfg.engine, 1);
    StealingEngine eng(fx.model, cfg, 1);
    expect_bitwise_parity(thr, eng, fx, 4, pipeline::method_name(method));
    EXPECT_EQ(eng.total_steals(), 0u);
    EXPECT_TRUE(eng.steal_log().empty());
  }
}

TEST(StealingEngine, ForcedStealBitwiseMatchesSequential) {
  for (auto method : {pipeline::Method::Sync, pipeline::Method::PipeMare}) {
    MlpFixture fx(/*layers=*/4, /*width=*/12, /*classes=*/6, /*num_micro=*/4);
    auto cfg = steal_config(method, 4, 4, /*workers=*/3, StealMode::Forced);
    pipeline::PipelineEngine seq(fx.model, cfg.engine, 1);
    StealingEngine eng(fx.model, cfg, 1);
    expect_bitwise_parity(seq, eng, fx, 4, pipeline::method_name(method));
  }
}

TEST(StealingEngine, LoadAwareBitwiseMatchesSequentialWithT2) {
  // Stealing + discrepancy correction: the T2 extrapolation path reads the
  // same WeightVersions state, so curves stay bitwise-equal under any
  // scheduling.
  MlpFixture fx(/*layers=*/6, /*width=*/12, /*classes=*/6, /*num_micro=*/2);
  auto cfg = steal_config(pipeline::Method::PipeMare, 6, 2, /*workers=*/2,
                          StealMode::LoadAware);
  cfg.engine.discrepancy_correction = true;
  cfg.engine.decay_d = 0.25;
  pipeline::PipelineEngine seq(fx.model, cfg.engine, 1);
  StealingEngine eng(fx.model, cfg, 1);
  expect_bitwise_parity(seq, eng, fx, 4, "PipeMare+T2");
}

TEST(StealingEngine, StressSweepNoTaskLostOrRunTwice) {
  // (P, N, W) sweep under forced stealing: every config must stay
  // bitwise-identical to the sequential engine AND account for exactly
  // 2 * N tasks per stage per step (a lost task would deadlock or skew
  // the counters; a double-run would corrupt the gradient accumulation
  // and break parity).
  constexpr int kSteps = 2;
  for (int p = 1; p <= 4; ++p) {
    for (int n : {1, 2, 4}) {
      for (int w : {1, 2, 5}) {
        MlpFixture fx(/*layers=*/4, /*width=*/12, /*classes=*/6, n);
        auto cfg = steal_config(pipeline::Method::PipeMare, p, n, w, StealMode::Forced);
        pipeline::PipelineEngine seq(fx.model, cfg.engine, 1);
        StealingEngine eng(fx.model, cfg, 1);
        std::string label =
            "P=" + std::to_string(p) + " N=" + std::to_string(n) + " W=" + std::to_string(w);
        expect_bitwise_parity(seq, eng, fx, kSteps, label);

        auto stats = eng.stage_stats();
        ASSERT_EQ(stats.size(), static_cast<std::size_t>(p)) << label;
        std::uint64_t total_items = 0;
        for (int s = 0; s < p; ++s) {
          const auto& st = stats[static_cast<std::size_t>(s)];
          EXPECT_EQ(st.items, static_cast<std::uint64_t>(kSteps * 2 * n))
              << label << " stage " << s;
          EXPECT_LE(st.stolen_items, st.items) << label << " stage " << s;
          total_items += st.items;
        }
        EXPECT_EQ(total_items, static_cast<std::uint64_t>(kSteps * 2 * n * p)) << label;
        // Worker-side accounting must agree with the stage-side ledger.
        std::uint64_t worker_items = 0;
        std::uint64_t worker_steals = 0;
        for (const auto& ws : eng.worker_stats()) {
          worker_items += ws.items;
          worker_steals += ws.stolen_items;
        }
        EXPECT_EQ(worker_items, total_items) << label;
        EXPECT_EQ(worker_steals, eng.total_steals()) << label;
      }
    }
  }
}

TEST(StealingEngine, StealLogMatchesCountersAndNamesThieves) {
  MlpFixture fx(/*layers=*/4, /*width=*/12, /*classes=*/6, /*num_micro=*/4);
  auto cfg = steal_config(pipeline::Method::PipeMare, 4, 4, /*workers=*/2,
                          StealMode::Forced);
  StealingEngine eng(fx.model, cfg, 1);
  for (int step = 0; step < 3; ++step) {
    (void)eng.forward_backward(fx.inputs, fx.targets, fx.head);
    eng.commit_update();
  }
  EXPECT_EQ(eng.dropped_log_entries(), 0u);
  EXPECT_EQ(eng.steal_log().size(), static_cast<std::size_t>(eng.total_steals()));
  for (const auto& rec : eng.steal_log()) {
    EXPECT_NE(rec.worker, rec.stage % eng.num_workers())
        << "a home worker's pop is not a steal";
    EXPECT_GE(rec.step, 0);
    EXPECT_LT(rec.step, 3);
    EXPECT_GE(rec.micro, 0);
    EXPECT_LT(rec.micro, 4);
  }
  eng.clear_steal_log();
  EXPECT_TRUE(eng.steal_log().empty());
}

TEST(StealingEngine, DeterministicModeCurvesAreRunToRunReproducible) {
  data::ImageDatasetConfig d;
  d.classes = 4;
  d.train_size = 64;
  d.test_size = 32;
  d.image_size = 8;
  d.noise_std = 0.4;
  d.seed = 11;
  nn::ResNetConfig m;
  m.base_channels = 6;
  m.blocks_per_group = {1, 1};
  core::ImageTask task(d, m, "tiny-image");

  core::TrainerConfig cfg;
  cfg.engine.method = pipeline::Method::PipeMare;
  cfg.engine.num_stages = 4;
  cfg.epochs = 2;
  cfg.minibatch_size = 32;
  cfg.microbatch_size = 8;
  cfg.schedule = core::TrainerConfig::Sched::Constant;
  cfg.lr = 0.05;
  cfg.seed = 5;
  core::StealOptions opts;
  opts.workers = 3;
  opts.mode = StealMode::Deterministic;
  cfg.backend = {"threaded_steal", opts};
  auto first = core::train(task, cfg);
  auto second = core::train(task, cfg);
  ASSERT_EQ(first.curve.size(), second.curve.size());
  for (std::size_t e = 0; e < first.curve.size(); ++e) {
    EXPECT_EQ(first.curve[e].train_loss, second.curve[e].train_loss) << "epoch " << e;
    EXPECT_EQ(first.curve[e].metric, second.curve[e].metric) << "epoch " << e;
    EXPECT_EQ(first.curve[e].param_norm, second.curve[e].param_norm) << "epoch " << e;
  }

  // ... and the same config through the "threaded" backend produces the
  // same curve bitwise (the acceptance criterion's disabled-steal parity
  // holds for every mode because the numerics are scheduling-independent).
  cfg.backend = "threaded";
  auto threaded = core::train(task, cfg);
  ASSERT_EQ(first.curve.size(), threaded.curve.size());
  for (std::size_t e = 0; e < first.curve.size(); ++e) {
    EXPECT_EQ(first.curve[e].train_loss, threaded.curve[e].train_loss) << "epoch " << e;
    EXPECT_EQ(first.curve[e].metric, threaded.curve[e].metric) << "epoch " << e;
  }
}

TEST(StealingEngine, StealCountsSurfaceThroughStageLoadObserver) {
  MlpFixture fx(/*layers=*/4, /*width=*/12, /*classes=*/6, /*num_micro=*/4);
  auto cfg = steal_config(pipeline::Method::PipeMare, 4, 4, /*workers=*/2,
                          StealMode::Forced);
  auto backend = core::BackendRegistry::instance().create(
      std::move(fx.model), core::BackendConfig{"threaded_steal",
                                               core::StealOptions{2, StealMode::Forced,
                                                                  false}},
      cfg.engine, 1);
  core::StageLoadObserver load(*backend);
  ASSERT_TRUE(load.active());
  for (int epoch = 0; epoch < 2; ++epoch) {
    (void)backend->forward_backward(fx.inputs, fx.targets, fx.head);
    backend->commit_update();
    core::EpochRecord rec;
    load.on_epoch(rec);
  }
  ASSERT_EQ(load.epoch_stats().size(), 2u);
  std::uint64_t items = 0;
  std::uint64_t stolen = 0;
  for (const auto& epoch : load.epoch_stats()) {
    ASSERT_EQ(epoch.size(), 4u);
    for (const auto& s : epoch) {
      items += s.items;
      stolen += s.stolen_items;
    }
  }
  EXPECT_EQ(items, 2u * 2u * 4u * 4u);  // epochs * (fwd+bwd) * N * P
  auto* steal_backend = dynamic_cast<core::ThreadedStealBackend*>(backend.get());
  ASSERT_NE(steal_backend, nullptr);
  EXPECT_EQ(stolen, steal_backend->engine().total_steals());
  EXPECT_GE(core::StageLoadObserver::busy_spread(load.totals()), 1.0);
}

TEST(StealingEngine, RejectsRecomputeAndNegativeWorkers) {
  MlpFixture fx(/*layers=*/4, /*width=*/12, /*classes=*/6, /*num_micro=*/2);
  auto cfg = steal_config(pipeline::Method::PipeMare, 2, 2, 0, StealMode::LoadAware);
  cfg.engine.recompute_segments = 2;
  EXPECT_THROW(StealingEngine(fx.model, cfg, 1), std::invalid_argument);
  cfg.engine.recompute_segments = 0;
  cfg.workers = -1;
  EXPECT_THROW(StealingEngine(fx.model, cfg, 1), std::invalid_argument);
}

TEST(StealingEngine, WorkerCountIndependentOfStageCount) {
  MlpFixture fx(/*layers=*/4, /*width=*/12, /*classes=*/6, /*num_micro=*/2);
  auto cfg = steal_config(pipeline::Method::PipeMare, 4, 2, /*workers=*/7,
                          StealMode::LoadAware);
  StealingEngine eng(fx.model, cfg, 1);
  EXPECT_EQ(eng.num_workers(), 7);  // W > P: extra workers live by stealing
  (void)eng.forward_backward(fx.inputs, fx.targets, fx.head);
  eng.commit_update();
  auto stats = eng.stage_stats();
  std::uint64_t total = 0;
  for (const auto& s : stats) total += s.items;
  EXPECT_EQ(total, 2u * 2u * 4u);
}

}  // namespace
}  // namespace pipemare::sched
