// Graph IR tests: lowering every in-tree model family (chain MLP,
// residual CNN, encoder-decoder Transformer) to the op graph, the
// identity-linearization invariant the executors rely on, contiguous-cut
// legality, and the manual-assembly API (cycle detection, deterministic
// Kahn order, cut crossings).

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/graph/graph.h"
#include "src/nn/activations.h"
#include "src/nn/attention.h"
#include "src/nn/linear.h"
#include "src/nn/model.h"
#include "src/nn/residual.h"
#include "src/nn/resnet.h"
#include "src/nn/transformer.h"

namespace pipemare::graph {
namespace {

nn::Model make_mlp(int layers) {
  nn::Model m;
  m.add(std::make_unique<nn::Linear>(8, 8, true));
  m.add(std::make_unique<nn::ReLU>());
  for (int l = 1; l < layers; ++l) {
    m.add(std::make_unique<nn::Linear>(8, 8, true));
    m.add(std::make_unique<nn::ReLU>());
  }
  m.add(std::make_unique<nn::Linear>(8, 4));
  return m;
}

int count_edges(const Graph& g, Channel c) {
  return static_cast<int>(
      std::count_if(g.edges().begin(), g.edges().end(),
                    [c](const Edge& e) { return e.channel == c; }));
}

void expect_units_equal(const std::vector<nn::WeightUnit>& got,
                        const std::vector<nn::WeightUnit>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].module, want[i].module) << "unit " << i;
    EXPECT_EQ(got[i].offset, want[i].offset) << "unit " << i;
    EXPECT_EQ(got[i].size, want[i].size) << "unit " << i;
  }
}

// ---------------------------------------------------------------------------
// Lowering: chain models
// ---------------------------------------------------------------------------

TEST(GraphLowering, MlpLowersToPureChain) {
  nn::Model m = make_mlp(3);
  Graph g = Graph::lower(m);
  ASSERT_EQ(g.num_nodes(), m.num_modules());
  // A chain model has exactly the Act edges between consecutive modules.
  ASSERT_EQ(static_cast<int>(g.edges().size()), m.num_modules() - 1);
  for (int i = 0; i < static_cast<int>(g.edges().size()); ++i) {
    const Edge& e = g.edges()[static_cast<std::size_t>(i)];
    EXPECT_EQ(e.from, i);
    EXPECT_EQ(e.to, i + 1);
    EXPECT_EQ(e.channel, Channel::Act);
  }
  // Nodes mirror the modules: name and parameter count.
  for (int i = 0; i < g.num_nodes(); ++i) {
    EXPECT_EQ(g.node(i).name, m.module(i).name());
    EXPECT_EQ(g.node(i).param_count, m.module(i).param_count());
  }
  EXPECT_TRUE(g.linearization_is_identity());
}

// ---------------------------------------------------------------------------
// Lowering: skip and ctx channels
// ---------------------------------------------------------------------------

TEST(GraphLowering, ResNetSkipEdgesPairOpenWithClose) {
  nn::ResNetConfig rc;
  rc.blocks_per_group = {2, 2};
  nn::Model m = nn::make_resnet(rc);
  Graph g = Graph::lower(m);
  // One Skip edge per residual block, each from a ResidualOpen node to the
  // matching (next) ResidualClose node, flowing forward.
  EXPECT_EQ(count_edges(g, Channel::Skip), 4);
  EXPECT_EQ(count_edges(g, Channel::Ctx), 0);
  for (const Edge& e : g.edges()) {
    if (e.channel != Channel::Skip) continue;
    EXPECT_LT(e.from, e.to);
    EXPECT_EQ(g.node(e.from).name, "ResidualOpen");
    EXPECT_EQ(g.node(e.to).name, "ResidualClose");
  }
  EXPECT_TRUE(g.linearization_is_identity());
}

TEST(GraphLowering, TransformerCtxEdgesBroadcastToEveryCrossAttention) {
  nn::TransformerConfig tc;
  tc.enc_layers = 2;
  tc.dec_layers = 3;
  nn::Model m = nn::make_transformer(tc);
  Graph g = Graph::lower(m);
  // The DecoderBridge publishes the encoder memory once; every decoder
  // layer's cross-attention consumes it.
  ASSERT_EQ(count_edges(g, Channel::Ctx), tc.dec_layers);
  int bridge = -1;
  for (int i = 0; i < g.num_nodes(); ++i) {
    if (g.node(i).name == "DecoderBridge") bridge = i;
  }
  ASSERT_GE(bridge, 0);
  for (const Edge& e : g.edges()) {
    if (e.channel != Channel::Ctx) continue;
    EXPECT_EQ(e.from, bridge);
    EXPECT_GT(e.to, bridge);
  }
  // Transformer sublayers are residual; skips must pair up too.
  EXPECT_GT(count_edges(g, Channel::Skip), 0);
  EXPECT_TRUE(g.linearization_is_identity());
}

// ---------------------------------------------------------------------------
// Linearized units reproduce the executors' weight-unit order
// ---------------------------------------------------------------------------

TEST(GraphLowering, LinearizedUnitsMatchModelOrderForEveryModelFamily) {
  std::vector<std::pair<const char*, nn::Model>> models;
  models.emplace_back("mlp", make_mlp(3));
  models.emplace_back("resnet", nn::make_resnet(nn::ResNetConfig{}));
  models.emplace_back("resnet-deep", nn::make_resnet(nn::ResNetConfig::deep()));
  models.emplace_back("transformer", nn::make_transformer(nn::TransformerConfig{}));
  for (const auto& [name, m] : models) {
    SCOPED_TRACE(name);
    Graph g = Graph::lower(m);
    EXPECT_TRUE(g.linearization_is_identity());
    for (bool split_bias : {false, true}) {
      SCOPED_TRACE(split_bias ? "split_bias" : "fused_bias");
      expect_units_equal(linearized_weight_units(g, m, split_bias),
                         m.weight_units(split_bias));
    }
  }
}

// ---------------------------------------------------------------------------
// Lowering error cases
// ---------------------------------------------------------------------------

TEST(GraphLowering, CloseWithoutOpenThrows) {
  nn::Model m;
  m.add(std::make_unique<nn::Linear>(4, 4, true));
  m.add(std::make_unique<nn::ResidualClose>());
  EXPECT_THROW(Graph::lower(m), std::invalid_argument);
}

TEST(GraphLowering, DoubleOpenThrows) {
  nn::Model m;
  m.add(std::make_unique<nn::ResidualOpen>());
  m.add(std::make_unique<nn::Linear>(4, 4, true));
  m.add(std::make_unique<nn::ResidualOpen>());
  m.add(std::make_unique<nn::ResidualClose>());
  EXPECT_THROW(Graph::lower(m), std::invalid_argument);
}

TEST(GraphLowering, NeverClosedThrows) {
  nn::Model m;
  m.add(std::make_unique<nn::ResidualOpen>());
  m.add(std::make_unique<nn::Linear>(4, 4, true));
  EXPECT_THROW(Graph::lower(m), std::invalid_argument);
}

TEST(GraphLowering, CtxConsumedBeforeProducerThrows) {
  nn::Model m;
  m.add(std::make_unique<nn::MultiHeadAttention>(
      8, 2, nn::MultiHeadAttention::Kind::CrossAttention));
  EXPECT_THROW(Graph::lower(m), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Manual assembly: Kahn order, cycles, cut legality
// ---------------------------------------------------------------------------

// Built via append on a named lvalue: `"n" + std::to_string(i)` trips
// GCC 12's -O3 -Wrestrict false positive (PR 105329) in -Werror builds.
std::string node_name(int i) {
  std::string name = "n";
  name += std::to_string(i);
  return name;
}

Graph diamond() {
  Graph g;
  for (int i = 0; i < 4; ++i) g.add_node(node_name(i));
  g.add_edge(0, 1, Channel::Act);
  g.add_edge(0, 2, Channel::Act);
  g.add_edge(1, 3, Channel::Act);
  g.add_edge(2, 3, Channel::Act);
  return g;
}

TEST(GraphManual, KahnPrefersLowestReadyId) {
  Graph g = diamond();
  EXPECT_EQ(g.linearize(), (std::vector<int>{0, 1, 2, 3}));
  EXPECT_TRUE(g.linearization_is_identity());
}

TEST(GraphManual, NonIdentityDagStillLinearizes) {
  // 0 -> 2, 2 -> 1: module order is NOT executable; the linearization
  // reorders and the identity check reports it.
  Graph g;
  for (int i = 0; i < 3; ++i) g.add_node(node_name(i));
  g.add_edge(0, 2, Channel::Act);
  g.add_edge(2, 1, Channel::Act);
  EXPECT_EQ(g.linearize(), (std::vector<int>{0, 2, 1}));
  EXPECT_FALSE(g.linearization_is_identity());
  std::vector<int> reordered = {0, 2, 1};
  std::vector<int> raw = {0, 1, 2};
  EXPECT_TRUE(g.is_topological_order(reordered));
  EXPECT_FALSE(g.is_topological_order(raw));
}

TEST(GraphManual, CycleThrowsNamingAMember) {
  Graph g;
  for (int i = 0; i < 3; ++i) g.add_node(node_name(i));
  g.add_edge(0, 1, Channel::Act);
  g.add_edge(1, 2, Channel::Act);
  g.add_edge(2, 0, Channel::Act);
  EXPECT_THROW(g.linearize(), std::invalid_argument);
  EXPECT_THROW(g.linearization_is_identity(), std::invalid_argument);
}

TEST(GraphManual, IsTopologicalOrderRejectsMalformedOrders) {
  Graph g = diamond();
  std::vector<int> short_order = {0, 1, 2};
  std::vector<int> duplicate = {0, 1, 1, 3};
  std::vector<int> out_of_range = {0, 1, 2, 9};
  EXPECT_FALSE(g.is_topological_order(short_order));
  EXPECT_FALSE(g.is_topological_order(duplicate));
  EXPECT_FALSE(g.is_topological_order(out_of_range));
}

TEST(GraphManual, CutCrossingsCountEdgesAcrossTheBoundary) {
  // Chain 0-1-2-3 plus a skip 0 -> 3: cuts inside the skip cross 2 edges,
  // the trivial cuts cross 0.
  Graph g;
  for (int i = 0; i < 4; ++i) g.add_node(node_name(i));
  for (int i = 1; i < 4; ++i) g.add_edge(i - 1, i, Channel::Act);
  g.add_edge(0, 3, Channel::Skip);
  std::vector<int> order = g.linearize();
  EXPECT_EQ(g.cut_crossings(order, 0), 0);
  EXPECT_EQ(g.cut_crossings(order, 1), 2);
  EXPECT_EQ(g.cut_crossings(order, 2), 2);
  EXPECT_EQ(g.cut_crossings(order, 3), 2);
  EXPECT_EQ(g.cut_crossings(order, 4), 0);
  EXPECT_THROW(g.cut_crossings(order, 5), std::invalid_argument);
  std::vector<int> bad = {3, 2, 1, 0};
  EXPECT_THROW(g.cut_crossings(bad, 1), std::invalid_argument);
}

TEST(GraphManual, AddEdgeRejectsSelfEdgesAndBadIds) {
  Graph g;
  g.add_node("a");
  g.add_node("b");
  EXPECT_THROW(g.add_edge(0, 0, Channel::Act), std::invalid_argument);
  EXPECT_THROW(g.add_edge(0, 2, Channel::Act), std::invalid_argument);
  EXPECT_THROW(g.add_edge(-1, 1, Channel::Act), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Contiguous-cut legality: the property the partitioner relies on
// ---------------------------------------------------------------------------

TEST(GraphProperty, EveryContiguousCutOfATopologicalOrderIsLegal) {
  // For the real models: any prefix/suffix split of the linearization has
  // all crossing edges flowing forward (cut_crossings validates the order
  // and counts only forward edges — it not throwing IS the property).
  std::vector<nn::Model> models;
  models.push_back(nn::make_resnet(nn::ResNetConfig{}));
  models.push_back(nn::make_transformer(nn::TransformerConfig{}));
  for (const nn::Model& m : models) {
    Graph g = Graph::lower(m);
    std::vector<int> order = g.linearize();
    ASSERT_TRUE(g.is_topological_order(order));
    for (int cut = 0; cut <= g.num_nodes(); ++cut) {
      EXPECT_GE(g.cut_crossings(order, cut), 0);
    }
    // Interior chain cuts cross at least the Act edge.
    for (int cut = 1; cut < g.num_nodes(); ++cut) {
      EXPECT_GE(g.cut_crossings(order, cut), 1) << "cut " << cut;
    }
  }
}

}  // namespace
}  // namespace pipemare::graph
