// Tensor kernel layer suite (tier1, also run under ASan/TSan and with
// PIPEMARE_KERNELS={naive,tiled} in CI): the KernelRegistry dispatch, the
// golden-value guarantee (tiled bitwise-equal to the naive oracle for
// every GEMM variant, epilogue, elementwise op and shape — including
// degenerate and non-tile-multiple sizes and intra-op lane counts 1..4),
// the NaN-propagation regression for the removed zero-skip, the
// KernelCalibration micro-profile and its partitioner hookup, the CLI
// plumbing, and end-to-end bitwise curve parity sequential vs
// threaded_steal under tiled kernels.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <memory>
#include <vector>

#include "src/core/backend.h"
#include "src/core/task.h"
#include "src/core/trainer.h"
#include "src/data/image_data.h"
#include "src/nn/activations.h"
#include "src/nn/linear.h"
#include "src/nn/model.h"
#include "src/nn/resnet.h"
#include "src/pipeline/cost_model.h"
#include "src/tensor/kernels/calibration.h"
#include "src/tensor/kernels/gemm_tiled.h"
#include "src/tensor/kernels/registry.h"
#include "src/tensor/ops.h"
#include "src/util/cli.h"
#include "src/util/rng.h"

namespace pipemare::tensor {
namespace {

using kernels::KernelCalibration;
using kernels::KernelKind;
using kernels::KernelRegistry;

/// Saves and restores the process-global kernel selection so tests can't
/// leak state into each other (the suite runs under both PIPEMARE_KERNELS
/// settings in CI; whatever the environment chose must survive).
class KernelStateGuard {
 public:
  KernelStateGuard()
      : kind_(KernelRegistry::kind()),
        lanes_(KernelRegistry::lanes()),
        min_flops_(KernelRegistry::intra_op_min_flops()) {}
  ~KernelStateGuard() {
    KernelRegistry::set_kind(kind_);
    KernelRegistry::set_lanes(lanes_);
    KernelRegistry::set_intra_op_min_flops(min_flops_);
  }

 private:
  KernelKind kind_;
  int lanes_;
  std::int64_t min_flops_;
};

Tensor random_tensor(std::vector<int> shape, util::Rng& rng) {
  Tensor t(std::move(shape));
  for (std::int64_t i = 0; i < t.size(); ++i) {
    t[i] = static_cast<float>(rng.normal());
  }
  // Sprinkle exact zeros and negatives so the old zero-skip path and the
  // ReLU epilogue are both exercised.
  for (std::int64_t i = 0; i < t.size(); i += 7) t[i] = 0.0F;
  return t;
}

void expect_bitwise(const Tensor& a, const Tensor& b, const char* label) {
  ASSERT_EQ(a.shape(), b.shape()) << label;
  if (a.size() == 0) return;
  EXPECT_EQ(std::memcmp(a.data(), b.data(),
                        sizeof(float) * static_cast<std::size_t>(a.size())),
            0)
      << label;
}

/// Runs `op` under the naive oracle and under tiled, and asserts bitwise
/// identity of the results.
template <typename Op>
void expect_kinds_agree(Op&& op, const char* label) {
  KernelStateGuard guard;
  KernelRegistry::set_kind(KernelKind::naive);
  Tensor want = op();
  KernelRegistry::set_kind(KernelKind::tiled);
  Tensor got = op();
  expect_bitwise(want, got, label);
}

// ---------------------------------------------------------------------------
// Registry dispatch
// ---------------------------------------------------------------------------

TEST(KernelRegistry, ParseRoundTripsAndRejectsUnknown) {
  EXPECT_EQ(KernelRegistry::parse("naive"), KernelKind::naive);
  EXPECT_EQ(KernelRegistry::parse("tiled"), KernelKind::tiled);
  EXPECT_FALSE(KernelRegistry::parse("blas").has_value());
  EXPECT_FALSE(KernelRegistry::parse("").has_value());
  EXPECT_EQ(KernelRegistry::kind_name(KernelKind::naive), "naive");
  EXPECT_EQ(KernelRegistry::kind_name(KernelKind::tiled), "tiled");
}

TEST(KernelRegistry, SetKindSwitchesActiveTable) {
  KernelStateGuard guard;
  KernelRegistry::set_kind(KernelKind::naive);
  EXPECT_EQ(KernelRegistry::name(), "naive");
  EXPECT_STREQ(KernelRegistry::table().name, "naive");
  KernelRegistry::set_kind(KernelKind::tiled);
  EXPECT_EQ(KernelRegistry::name(), "tiled");
  EXPECT_STREQ(KernelRegistry::table().name, "tiled");
  // Specific-table queries are independent of the active kind.
  EXPECT_STREQ(KernelRegistry::table(KernelKind::naive).name, "naive");
}

TEST(KernelRegistry, LanesAndThresholdClampAndStick) {
  KernelStateGuard guard;
  KernelRegistry::set_lanes(3);
  EXPECT_EQ(KernelRegistry::lanes(), 3);
  KernelRegistry::set_lanes(0);
  EXPECT_EQ(KernelRegistry::lanes(), 1);  // clamped
  KernelRegistry::set_lanes(1000);
  EXPECT_EQ(KernelRegistry::lanes(), 16);  // clamped
  KernelRegistry::set_intra_op_min_flops(-5);
  EXPECT_EQ(KernelRegistry::intra_op_min_flops(), 0);
}

TEST(KernelRegistry, TiledIsaIsConsistentWithDispatch) {
  // Whichever instantiation the runtime picked must be one of the two and
  // agree with the reported name.
  auto isa = KernelRegistry::tiled_isa();
  EXPECT_TRUE(isa == "avx2" || isa == "base") << isa;
  if (isa == "avx2") {
    EXPECT_EQ(kernels::tiled_fns(), kernels::tiled_fns_avx2());
  } else {
    EXPECT_EQ(kernels::tiled_fns(), kernels::tiled_fns_base());
  }
}

// ---------------------------------------------------------------------------
// Golden-value grid: tiled == naive, bitwise
// ---------------------------------------------------------------------------

TEST(KernelParity, GemmVariantsAcrossShapeGrid) {
  util::Rng rng(1234);
  // Degenerate (0, 1), sub-tile, non-tile-multiple, and multi-tile sizes:
  // the tile is 4x16, so 17/33 force edge kernels in both dimensions.
  const std::vector<int> dims = {0, 1, 3, 8, 17, 33};
  for (int m : dims) {
    for (int k : dims) {
      for (int n : dims) {
        Tensor a = random_tensor({m, k}, rng);
        Tensor at = random_tensor({k, m}, rng);
        Tensor b = random_tensor({k, n}, rng);
        Tensor bt = random_tensor({n, k}, rng);
        expect_kinds_agree([&] { return matmul(a, b); }, "matmul");
        expect_kinds_agree([&] { return matmul_tn(at, b); }, "matmul_tn");
        expect_kinds_agree([&] { return matmul_nt(a, bt); }, "matmul_nt");
      }
    }
  }
}

TEST(KernelParity, FusedEpiloguesMatchNaiveAndUnfused) {
  util::Rng rng(99);
  for (int m : {1, 2, 7, 8, 19, 40}) {
    for (int n : {1, 5, 16, 23}) {
      int k = 11;
      Tensor a = random_tensor({m, k}, rng);
      Tensor bt = random_tensor({n, k}, rng);
      std::vector<float> bias(static_cast<std::size_t>(n));
      for (auto& v : bias) v = static_cast<float>(rng.normal());
      std::span<const float> bs(bias);

      expect_kinds_agree([&] { return matmul_nt_bias(a, bt, bs); },
                         "matmul_nt_bias");
      expect_kinds_agree([&] { return matmul_nt_bias_relu(a, bt, bs); },
                         "matmul_nt_bias_relu");

      // Fused must also equal the unfused sequence under BOTH kinds — the
      // nn::Linear adoption must not change any training curve.
      KernelStateGuard guard;
      for (KernelKind kind : {KernelKind::naive, KernelKind::tiled}) {
        KernelRegistry::set_kind(kind);
        Tensor unfused = matmul_nt(a, bt);
        add_row_inplace(unfused, bs);
        expect_bitwise(unfused, matmul_nt_bias(a, bt, bs),
                       "fused vs unfused bias");
        Tensor unfused_relu = relu(unfused);
        expect_bitwise(unfused_relu, matmul_nt_bias_relu(a, bt, bs),
                       "fused vs unfused bias+relu");
      }
    }
  }
}

TEST(KernelParity, ElementwiseTransposeSoftmaxAgree) {
  util::Rng rng(7);
  for (auto [m, n] : std::vector<std::pair<int, int>>{
           {1, 1}, {3, 5}, {17, 33}, {64, 10}}) {
    Tensor a = random_tensor({m, n}, rng);
    Tensor b = random_tensor({m, n}, rng);
    std::vector<float> row(static_cast<std::size_t>(n));
    for (auto& v : row) v = static_cast<float>(rng.normal());

    expect_kinds_agree([&] { return transpose2d(a); }, "transpose2d");
    expect_kinds_agree([&] { return add(a, b); }, "add");
    expect_kinds_agree([&] { return sub(a, b); }, "sub");
    expect_kinds_agree([&] { return mul(a, b); }, "mul");
    expect_kinds_agree([&] { return scale(a, 1.372F); }, "scale");
    expect_kinds_agree([&] { return relu(a); }, "relu");
    expect_kinds_agree([&] { return relu_backward(b, a); }, "relu_backward");
    expect_kinds_agree([&] { return softmax_rows(a); }, "softmax_rows");
    expect_kinds_agree([&] { return log_softmax_rows(a); },
                       "log_softmax_rows");
    expect_kinds_agree(
        [&] {
          Tensor c = a;
          add_inplace(c, b, -0.25F);
          return c;
        },
        "add_inplace");
    expect_kinds_agree(
        [&] {
          Tensor c = a;
          add_row_inplace(c, std::span<const float>(row));
          return c;
        },
        "add_row_inplace");
  }
}

TEST(KernelParity, IntraOpLaneCountsAreBitwiseInvariant) {
  KernelStateGuard guard;
  util::Rng rng(42);
  // Shapes chosen so lane boundaries land mid-tile and rows don't divide
  // evenly across lanes.
  Tensor a = random_tensor({37, 29}, rng);
  Tensor at = random_tensor({29, 37}, rng);
  Tensor b = random_tensor({29, 41}, rng);
  Tensor bt = random_tensor({41, 29}, rng);
  std::vector<float> bias(41);
  for (auto& v : bias) v = static_cast<float>(rng.normal());
  std::span<const float> bs(bias);

  KernelRegistry::set_kind(KernelKind::naive);
  Tensor want_nn = matmul(a, b);
  Tensor want_tn = matmul_tn(at, b);
  Tensor want_nt = matmul_nt(a, bt);
  Tensor want_bias = matmul_nt_bias_relu(a, bt, bs);

  KernelRegistry::set_kind(KernelKind::tiled);
  KernelRegistry::set_intra_op_min_flops(0);  // force the split for tiny GEMMs
  for (int lanes = 1; lanes <= 4; ++lanes) {
    KernelRegistry::set_lanes(lanes);
    expect_bitwise(want_nn, matmul(a, b), "lanes matmul");
    expect_bitwise(want_tn, matmul_tn(at, b), "lanes matmul_tn");
    expect_bitwise(want_nt, matmul_nt(a, bt), "lanes matmul_nt");
    expect_bitwise(want_bias, matmul_nt_bias_relu(a, bt, bs),
                   "lanes matmul_nt_bias_relu");
  }
}

// ---------------------------------------------------------------------------
// NaN/Inf propagation (the removed zero-skip regression)
// ---------------------------------------------------------------------------

TEST(KernelNumerics, ZeroTimesInfPropagatesNaN) {
  // Old naive matmul skipped the whole B row when A held an exact zero, so
  // 0 * Inf quietly became 0 and a diverged run could look healthy. Both
  // backends must now produce NaN.
  const float inf = std::numeric_limits<float>::infinity();
  Tensor a({2, 2}, {1.0F, 0.0F,   // row 0: the zero multiplies the Inf row
                    0.5F, 2.0F});
  Tensor b({2, 2}, {3.0F, 1.0F,   //
                    inf, inf});
  Tensor at = transpose2d(a);
  KernelStateGuard guard;
  for (KernelKind kind : {KernelKind::naive, KernelKind::tiled}) {
    KernelRegistry::set_kind(kind);
    Tensor c = matmul(a, b);
    EXPECT_TRUE(std::isnan(c.at(0, 0))) << KernelRegistry::name();
    EXPECT_TRUE(std::isnan(c.at(0, 1))) << KernelRegistry::name();
    // Row 1 has no exact zero: Inf flows through as Inf.
    EXPECT_TRUE(std::isinf(c.at(1, 0))) << KernelRegistry::name();
    Tensor ctn = matmul_tn(at, b);
    EXPECT_TRUE(std::isnan(ctn.at(0, 0))) << KernelRegistry::name();
  }
}

// ---------------------------------------------------------------------------
// Calibration
// ---------------------------------------------------------------------------

TEST(KernelCalibrationTest, MeasuresPositiveRatesAndCaches) {
  auto naive = KernelCalibration::measure(KernelKind::naive);
  EXPECT_EQ(naive.kind, KernelKind::naive);
  EXPECT_GT(naive.gemm_flops_per_ns, 0.0);
  EXPECT_GT(naive.mem_bytes_per_ns, 0.0);

  const auto& first = KernelCalibration::active();
  const auto& second = KernelCalibration::active();
  EXPECT_EQ(&first, &second);  // cached, not re-measured
  EXPECT_EQ(first.kind, KernelRegistry::kind());

  // Roofline prediction: more work must never predict less time.
  EXPECT_GT(KernelCalibration::predict_ns(naive, 1e9, 0.0),
            KernelCalibration::predict_ns(naive, 1e6, 0.0));
  EXPECT_GT(KernelCalibration::predict_ns(naive, 1e6, 1e6),
            KernelCalibration::predict_ns(naive, 1e6, 0.0));
  EXPECT_EQ(KernelCalibration::predict_ns(naive, 0.0, 0.0), 0.0);
}

TEST(KernelCalibrationTest, CalibratedPartitionCostsAreUsable) {
  nn::Model model;
  model.add(std::make_unique<nn::Linear>(24, 48, /*relu_init=*/true));
  model.add(std::make_unique<nn::ReLU>());
  model.add(std::make_unique<nn::Linear>(48, 8));

  pipeline::PartitionSpec spec;
  spec.strategy = pipeline::PartitionStrategy::Balanced;
  spec.calibrated = true;
  auto costs = pipeline::profile_module_costs(model, spec);
  ASSERT_EQ(costs.size(), 3u);
  // Predicted nanoseconds: positive for the Linears, and the wider Linear
  // must stay costlier than the narrow one (calibration rescales, it must
  // not reorder same-kind modules).
  EXPECT_GT(costs[0].total_flops(), 0.0);
  EXPECT_GT(costs[2].total_flops(), 0.0);
  EXPECT_GT(costs[0].total_flops(), costs[2].total_flops());

  spec.measured = true;
  spec.probe = std::make_shared<const nn::Flow>();
  EXPECT_THROW(pipeline::profile_module_costs(model, spec),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// CLI plumbing
// ---------------------------------------------------------------------------

core::TrainerConfig parse_cli(std::vector<std::string> args) {
  std::vector<char*> argv;
  args.insert(args.begin(), "test");
  argv.reserve(args.size());
  for (auto& a : args) argv.push_back(a.data());
  util::Cli cli(static_cast<int>(argv.size()), argv.data());
  core::TrainerConfig cfg;
  core::parse_backend_cli(cli, cfg);
  return cfg;
}

TEST(KernelCli, KernelsFlagSelectsBackendGlobally) {
  KernelStateGuard guard;
  (void)parse_cli({"--kernels=naive"});
  EXPECT_EQ(KernelRegistry::kind(), KernelKind::naive);
  (void)parse_cli({"--kernels=tiled", "--kernel-lanes=2"});
  EXPECT_EQ(KernelRegistry::kind(), KernelKind::tiled);
  EXPECT_EQ(KernelRegistry::lanes(), 2);
  EXPECT_THROW((void)parse_cli({"--kernels=blas"}), std::invalid_argument);
}

TEST(KernelCli, PartitionGrammarAcceptsCalibrated) {
  auto cfg = parse_cli({"--partition=balanced,calibrated"});
  EXPECT_EQ(cfg.engine.partition.strategy, pipeline::PartitionStrategy::Balanced);
  EXPECT_TRUE(cfg.engine.partition.calibrated);
  EXPECT_FALSE(cfg.engine.partition.measured);

  cfg = parse_cli({"--partition=balanced,measured"});
  EXPECT_TRUE(cfg.engine.partition.measured);
  EXPECT_FALSE(cfg.engine.partition.calibrated);

  cfg = parse_cli({"--partition=uniform"});
  EXPECT_FALSE(cfg.engine.partition.measured);
  EXPECT_FALSE(cfg.engine.partition.calibrated);

  EXPECT_THROW((void)parse_cli({"--partition=uniform,calibrated"}),
               std::invalid_argument);
  EXPECT_THROW((void)parse_cli({"--partition=balanced,wrong"}),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// End-to-end: curves are kernel-kind- and backend-invariant
// ---------------------------------------------------------------------------

TEST(KernelEndToEnd, CurvesBitwiseEqualAcrossKindsAndBackends) {
  data::ImageDatasetConfig d;
  d.classes = 4;
  d.train_size = 48;
  d.test_size = 24;
  d.image_size = 8;
  d.noise_std = 0.4;
  d.seed = 11;
  nn::ResNetConfig m;
  m.base_channels = 6;
  m.blocks_per_group = {1, 1};
  core::ImageTask task(d, m, "tiny-image");

  core::TrainerConfig cfg;
  cfg.engine.method = pipeline::Method::PipeMare;
  cfg.engine.num_stages = 4;
  cfg.epochs = 2;
  cfg.minibatch_size = 24;
  cfg.microbatch_size = 6;
  cfg.schedule = core::TrainerConfig::Sched::Constant;
  cfg.lr = 0.05;
  cfg.seed = 5;
  cfg.backend = "sequential";

  KernelStateGuard guard;
  KernelRegistry::set_kind(KernelKind::naive);
  auto naive_seq = core::train(task, cfg);

  KernelRegistry::set_kind(KernelKind::tiled);
  auto tiled_seq = core::train(task, cfg);

  core::StealOptions steal;
  steal.workers = 3;
  steal.mode = sched::StealMode::Forced;
  cfg.backend = {"threaded_steal", steal};
  auto tiled_steal = core::train(task, cfg);

  ASSERT_EQ(naive_seq.curve.size(), tiled_seq.curve.size());
  ASSERT_EQ(naive_seq.curve.size(), tiled_steal.curve.size());
  for (std::size_t e = 0; e < naive_seq.curve.size(); ++e) {
    EXPECT_EQ(naive_seq.curve[e].train_loss, tiled_seq.curve[e].train_loss)
        << "epoch " << e;
    EXPECT_EQ(naive_seq.curve[e].metric, tiled_seq.curve[e].metric)
        << "epoch " << e;
    EXPECT_EQ(naive_seq.curve[e].param_norm, tiled_seq.curve[e].param_norm)
        << "epoch " << e;
    EXPECT_EQ(naive_seq.curve[e].train_loss, tiled_steal.curve[e].train_loss)
        << "epoch " << e;
    EXPECT_EQ(naive_seq.curve[e].metric, tiled_steal.curve[e].metric)
        << "epoch " << e;
    EXPECT_EQ(naive_seq.curve[e].param_norm, tiled_steal.curve[e].param_norm)
        << "epoch " << e;
  }
}

}  // namespace
}  // namespace pipemare::tensor
