#include <gtest/gtest.h>

#include <cmath>

#include "src/util/rng.h"
#include "src/util/stats.h"
#include "src/util/table.h"

namespace pipemare::util {
namespace {

TEST(Rng, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u32(), b.next_u32());
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, NormalMomentsApproximatelyStandard) {
  Rng rng(3);
  const int n = 200000;
  double s = 0.0, s2 = 0.0;
  for (int i = 0; i < n; ++i) {
    double x = rng.normal();
    s += x;
    s2 += x * x;
  }
  double mean = s / n;
  double var = s2 / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(Rng, RandintBounds) {
  Rng rng(11);
  std::vector<int> counts(5, 0);
  for (int i = 0; i < 5000; ++i) {
    int v = rng.randint(5);
    ASSERT_GE(v, 0);
    ASSERT_LT(v, 5);
    counts[static_cast<std::size_t>(v)]++;
  }
  for (int c : counts) EXPECT_GT(c, 700);  // roughly uniform
}

TEST(Rng, TruncatedExponentialWithinRange) {
  Rng rng(5);
  double s = 0.0;
  for (int i = 0; i < 20000; ++i) {
    double x = rng.truncated_exponential(3.0, 10.0);
    ASSERT_GE(x, 0.0);
    ASSERT_LE(x, 10.0);
    s += x;
  }
  // Mean of Exp(3) truncated at 10 is below 3 but well above 2.
  double mean = s / 20000.0;
  EXPECT_GT(mean, 2.0);
  EXPECT_LT(mean, 3.0);
}

TEST(Rng, SplitStreamsDiffer) {
  Rng rng(9);
  Rng a = rng.split();
  Rng b = rng.split();
  int differing = 0;
  for (int i = 0; i < 10; ++i) {
    if (a.next_u32() != b.next_u32()) ++differing;
  }
  EXPECT_GT(differing, 5);
}

TEST(Stats, MeanVariance) {
  std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
  EXPECT_DOUBLE_EQ(variance(xs), 1.25);
}

TEST(Stats, Diverged) {
  EXPECT_TRUE(diverged(std::nan("")));
  EXPECT_TRUE(diverged(std::numeric_limits<double>::infinity()));
  EXPECT_TRUE(diverged(1e9));
  EXPECT_FALSE(diverged(10.0));
}

TEST(Stats, Ema) {
  std::vector<double> xs = {1.0, 0.0, 0.0};
  auto e = ema(xs, 0.5);
  EXPECT_DOUBLE_EQ(e[0], 1.0);
  EXPECT_DOUBLE_EQ(e[1], 0.5);
  EXPECT_DOUBLE_EQ(e[2], 0.25);
}

TEST(Table, RendersAlignedRows) {
  Table t({"a", "bbbb"});
  t.add_row({"xx", "y"});
  std::string s = t.to_string();
  EXPECT_NE(s.find("a"), std::string::npos);
  EXPECT_NE(s.find("xx"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 1u);
}

TEST(Table, RejectsMismatchedRow) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(Table, FormatsValues) {
  EXPECT_EQ(fmt(1.2345, 2), "1.23");
  EXPECT_EQ(fmt(std::numeric_limits<double>::infinity()), "inf");
  EXPECT_EQ(fmt_x(3.28), "3.3X");
  EXPECT_EQ(fmt_x(std::numeric_limits<double>::infinity()), "-");
}

}  // namespace
}  // namespace pipemare::util
