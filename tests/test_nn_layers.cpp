#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "src/nn/activations.h"
#include "src/nn/conv2d.h"
#include "src/nn/heads.h"
#include "src/nn/linear.h"
#include "src/nn/model.h"
#include "src/nn/norm.h"
#include "src/nn/residual.h"
#include "src/tensor/ops.h"
#include "src/util/rng.h"

namespace pipemare::nn {
namespace {

using tensor::Tensor;

/// Finite-difference gradient check of a model + loss head.
/// Verifies a random subset of parameter coordinates and, optionally, the
/// gradient w.r.t. the input activation.
void gradcheck(const Model& model, const LossHead& head, Flow input, Tensor target,
               util::Rng& rng, int param_probes = 40, bool check_input = true,
               double eps = 5e-3, double rel_tol = 0.08, double abs_tol = 3e-3) {
  std::vector<float> params(static_cast<std::size_t>(model.param_count()));
  model.init_params(params, rng);

  auto loss_at = [&](std::span<const float> p, const Flow& in) {
    auto caches = model.make_caches();
    Flow out = model.forward(in, p, caches);
    return head.forward_backward(out.x, target).loss;
  };

  // Analytic gradients.
  std::vector<float> grad(params.size(), 0.0F);
  auto caches = model.make_caches();
  Flow out = model.forward(input, params, caches);
  LossResult lr = head.forward_backward(out.x, target);
  Flow dflow;
  dflow.x = lr.doutput;
  Flow din = model.backward(std::move(dflow), params, caches, grad);

  for (int probe = 0; probe < param_probes; ++probe) {
    if (params.empty()) break;
    auto i = static_cast<std::size_t>(rng.randint(static_cast<int>(params.size())));
    float saved = params[i];
    params[i] = saved + static_cast<float>(eps);
    double lp = loss_at(params, input);
    params[i] = saved - static_cast<float>(eps);
    double lm = loss_at(params, input);
    params[i] = saved;
    double numeric = (lp - lm) / (2.0 * eps);
    double analytic = grad[i];
    double tol = abs_tol + rel_tol * std::abs(numeric);
    EXPECT_NEAR(analytic, numeric, tol) << "param index " << i;
  }

  if (check_input && !din.x.empty()) {
    for (int probe = 0; probe < 10; ++probe) {
      auto i = static_cast<std::int64_t>(rng.randint(static_cast<int>(input.x.size())));
      float saved = input.x[i];
      Flow in2 = input;
      in2.x[i] = saved + static_cast<float>(eps);
      double lp = loss_at(params, in2);
      in2.x[i] = saved - static_cast<float>(eps);
      double lm = loss_at(params, in2);
      double numeric = (lp - lm) / (2.0 * eps);
      double analytic = din.x[i];
      double tol = abs_tol + rel_tol * std::abs(numeric);
      EXPECT_NEAR(analytic, numeric, tol) << "input index " << i;
    }
  }
}

Flow random_flow(std::vector<int> shape, util::Rng& rng) {
  Flow f;
  f.x = Tensor(std::move(shape));
  for (std::int64_t i = 0; i < f.x.size(); ++i) f.x[i] = static_cast<float>(rng.normal());
  return f;
}

Tensor random_labels(int batch, int classes, util::Rng& rng) {
  Tensor t({batch});
  for (int i = 0; i < batch; ++i) t[i] = static_cast<float>(rng.randint(classes));
  return t;
}

TEST(GradCheck, Linear) {
  util::Rng rng(1);
  Model m;
  m.add(std::make_unique<Linear>(5, 4));
  gradcheck(m, ClassificationXent(), random_flow({3, 5}, rng), random_labels(3, 4, rng), rng);
}

TEST(GradCheck, TwoLayerMlpWithRelu) {
  util::Rng rng(2);
  Model m;
  m.add(std::make_unique<Linear>(6, 8, true));
  m.add(std::make_unique<ReLU>());
  m.add(std::make_unique<Linear>(8, 3));
  gradcheck(m, ClassificationXent(), random_flow({4, 6}, rng), random_labels(4, 3, rng), rng);
}

TEST(GradCheck, Conv2d) {
  util::Rng rng(3);
  Model m;
  m.add(std::make_unique<Conv2d>(2, 3, 3, 1, 1));
  m.add(std::make_unique<GlobalAvgPool>());
  gradcheck(m, ClassificationXent(), random_flow({2, 2, 4, 4}, rng),
            random_labels(2, 3, rng), rng);
}

TEST(GradCheck, Conv2dStride2) {
  util::Rng rng(4);
  Model m;
  m.add(std::make_unique<Conv2d>(2, 4, 3, 2, 1));
  m.add(std::make_unique<GlobalAvgPool>());
  gradcheck(m, ClassificationXent(), random_flow({2, 2, 6, 6}, rng),
            random_labels(2, 4, rng), rng);
}

TEST(GradCheck, BatchNorm) {
  util::Rng rng(5);
  Model m;
  m.add(std::make_unique<BatchNorm2d>(3));
  m.add(std::make_unique<GlobalAvgPool>());
  m.add(std::make_unique<Linear>(3, 2));
  gradcheck(m, ClassificationXent(), random_flow({4, 3, 3, 3}, rng),
            random_labels(4, 2, rng), rng);
}

TEST(GradCheck, GroupNorm) {
  util::Rng rng(51);
  Model m;
  m.add(std::make_unique<GroupNorm2d>(4, 2));
  m.add(std::make_unique<GlobalAvgPool>());
  m.add(std::make_unique<Linear>(4, 2));
  gradcheck(m, ClassificationXent(), random_flow({3, 4, 3, 3}, rng),
            random_labels(3, 2, rng), rng);
}

TEST(GroupNorm, WorksWithBatchSizeOne) {
  // The whole point of GroupNorm here: statistics are per-sample, so a
  // microbatch of one sample is fine (BatchNorm would degenerate).
  util::Rng rng(52);
  GroupNorm2d gn(4, 2);
  std::vector<float> w(static_cast<std::size_t>(gn.param_count()));
  gn.init_params(w, rng);
  Flow in = random_flow({1, 4, 4, 4}, rng);
  Cache cache;
  Flow out = gn.forward(in, w, cache);
  // Normalized output: each group has ~zero mean and ~unit variance.
  for (int g = 0; g < 2; ++g) {
    double s = 0.0, s2 = 0.0;
    int n = 0;
    for (int c = g * 2; c < (g + 1) * 2; ++c)
      for (int y = 0; y < 4; ++y)
        for (int x = 0; x < 4; ++x) {
          double v = out.x.at(0, c, y, x);
          s += v;
          s2 += v * v;
          ++n;
        }
    EXPECT_NEAR(s / n, 0.0, 1e-4);
    EXPECT_NEAR(s2 / n, 1.0, 1e-2);
  }
}

TEST(GradCheck, LayerNorm) {
  util::Rng rng(6);
  Model m;
  m.add(std::make_unique<LayerNorm>(6));
  m.add(std::make_unique<Linear>(6, 3));
  gradcheck(m, ClassificationXent(), random_flow({5, 6}, rng), random_labels(5, 3, rng), rng);
}

TEST(GradCheck, MaxPool) {
  util::Rng rng(7);
  Model m;
  m.add(std::make_unique<Conv2d>(1, 2, 3, 1, 1));
  m.add(std::make_unique<MaxPool2x2>());
  m.add(std::make_unique<GlobalAvgPool>());
  m.add(std::make_unique<Linear>(2, 2));
  gradcheck(m, ClassificationXent(), random_flow({2, 1, 4, 4}, rng),
            random_labels(2, 2, rng), rng);
}

TEST(GradCheck, ResidualIdentity) {
  util::Rng rng(8);
  Model m;
  m.add(std::make_unique<ResidualOpen>());
  m.add(std::make_unique<Conv2d>(2, 2, 3, 1, 1));
  m.add(std::make_unique<ResidualClose>());
  m.add(std::make_unique<GlobalAvgPool>());
  gradcheck(m, ClassificationXent(), random_flow({2, 2, 4, 4}, rng),
            random_labels(2, 2, rng), rng);
}

TEST(GradCheck, ResidualProjection) {
  util::Rng rng(9);
  Model m;
  m.add(std::make_unique<ResidualOpen>());
  m.add(std::make_unique<Conv2d>(2, 4, 3, 2, 1));
  m.add(std::make_unique<ResidualClose>(2, 4, 2));
  m.add(std::make_unique<GlobalAvgPool>());
  gradcheck(m, ClassificationXent(), random_flow({2, 2, 4, 4}, rng),
            random_labels(2, 4, rng), rng);
}

TEST(BackpropDifferentWeights, LinearUsesBackwardWeightsForInputGrad) {
  // The paper's model evaluates grad f(u_fwd, u_bkwd) with different weight
  // vectors. For y = x W^T: dX must use W_bkwd while dW must use the cached
  // forward activations.
  util::Rng rng(10);
  Linear lin(3, 2);
  std::vector<float> w_fwd(static_cast<std::size_t>(lin.param_count()));
  std::vector<float> w_bkwd(w_fwd.size());
  lin.init_params(w_fwd, rng);
  lin.init_params(w_bkwd, rng);

  Flow in = random_flow({2, 3}, rng);
  Cache cache;
  Flow out = lin.forward(in, w_fwd, cache);
  (void)out;
  Flow dout;
  dout.x = Tensor({2, 2}, {1.0F, 0.5F, -1.0F, 2.0F});
  std::vector<float> grad(w_fwd.size(), 0.0F);
  Flow din = lin.backward(dout, w_bkwd, cache, grad);

  // dX = dY * W_bkwd (row-major [out,in] weight).
  for (int i = 0; i < 2; ++i) {
    for (int j = 0; j < 3; ++j) {
      float expect = 0.0F;
      for (int o = 0; o < 2; ++o) {
        expect += dout.x.at(i, o) * w_bkwd[static_cast<std::size_t>(o) * 3 + j];
      }
      EXPECT_NEAR(din.x.at(i, j), expect, 1e-5F);
    }
  }
  // dW = dY^T X_fwd.
  for (int o = 0; o < 2; ++o) {
    for (int j = 0; j < 3; ++j) {
      float expect = 0.0F;
      for (int i = 0; i < 2; ++i) expect += dout.x.at(i, o) * in.x.at(i, j);
      EXPECT_NEAR(grad[static_cast<std::size_t>(o) * 3 + j], expect, 1e-5F);
    }
  }
}

TEST(Heads, ClassificationXentMatchesManual) {
  Tensor logits({1, 3}, {1.0F, 2.0F, 0.5F});
  Tensor label({1}, {1.0F});
  auto res = ClassificationXent().forward_backward(logits, label);
  // Manual: -log softmax(logits)[1].
  double z = std::exp(1.0) + std::exp(2.0) + std::exp(0.5);
  EXPECT_NEAR(res.loss, -std::log(std::exp(2.0) / z), 1e-5);
  EXPECT_EQ(res.correct, 1.0);
  // Gradient sums to zero per row.
  double s = 0.0;
  for (int j = 0; j < 3; ++j) s += res.doutput.at(0, j);
  EXPECT_NEAR(s, 0.0, 1e-6);
}

TEST(Heads, SequenceXentLabelSmoothingGradSumsToZero) {
  util::Rng rng(11);
  Tensor logits({2, 3, 5});
  for (std::int64_t i = 0; i < logits.size(); ++i)
    logits[i] = static_cast<float>(rng.normal());
  Tensor target({2, 3}, {0, 1, 2, 3, 4, 0});
  auto res = SequenceXent(0.1).forward_backward(logits, target);
  EXPECT_GT(res.loss, 0.0);
  EXPECT_EQ(res.count, 6.0);
  double s = 0.0;
  for (std::int64_t i = 0; i < res.doutput.size(); ++i) s += res.doutput[i];
  EXPECT_NEAR(s, 0.0, 1e-5);
}

TEST(Heads, SequenceXentIgnoresPadding) {
  Tensor logits({1, 2, 4});
  Tensor target({1, 2}, {2.0F, 3.0F});
  auto all = SequenceXent(0.0, /*pad_id=*/-1).forward_backward(logits, target);
  auto padded = SequenceXent(0.0, /*pad_id=*/3).forward_backward(logits, target);
  EXPECT_EQ(all.count, 2.0);
  EXPECT_EQ(padded.count, 1.0);
}

TEST(Heads, MseLossGradient) {
  Tensor out({2}, {1.0F, 3.0F});
  Tensor tgt({2}, {0.0F, 1.0F});
  auto res = MseLoss().forward_backward(out, tgt);
  EXPECT_NEAR(res.loss, 0.5 * (1.0 + 4.0) / 2.0, 1e-6);
  EXPECT_NEAR(res.doutput[0], 0.5F, 1e-6F);
  EXPECT_NEAR(res.doutput[1], 1.0F, 1e-6F);
}

TEST(Model, WeightUnitsSplitBiasDoublesUnits) {
  Model m;
  m.add(std::make_unique<Linear>(4, 3));
  m.add(std::make_unique<ReLU>());
  m.add(std::make_unique<Linear>(3, 2));
  auto units = m.weight_units(false);
  auto split = m.weight_units(true);
  EXPECT_EQ(units.size(), 2u);
  EXPECT_EQ(split.size(), 4u);
  // Units tile the flat parameter vector exactly.
  std::int64_t covered = 0;
  for (const auto& u : split) {
    EXPECT_EQ(u.offset, covered);
    covered += u.size;
  }
  EXPECT_EQ(covered, m.param_count());
}

TEST(Residual, OpenRejectsNestedShortcuts) {
  ResidualOpen open;
  Cache cache;
  util::Rng rng(12);
  Flow f = random_flow({1, 2, 2, 2}, rng);
  Flow opened = open.forward(f, {}, cache);
  EXPECT_THROW(open.forward(opened, {}, cache), std::logic_error);
}

TEST(Residual, CloseWithoutOpenThrows) {
  ResidualClose close;
  Cache cache;
  util::Rng rng(13);
  Flow f = random_flow({1, 2, 2, 2}, rng);
  EXPECT_THROW(close.forward(f, {}, cache), std::logic_error);
}

}  // namespace
}  // namespace pipemare::nn
