#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "src/hwmodel/activation_memory.h"
#include "src/hwmodel/characteristics.h"
#include "src/nn/dropout.h"
#include "src/nn/serialize.h"
#include "src/nn/transformer.h"
#include "src/pipeline/tick_sim.h"
#include "src/theory/char_polys.h"
#include "src/theory/companion.h"
#include "src/theory/stability.h"
#include "src/util/rng.h"

namespace pipemare {
namespace {

// ---------------------------------------------------------------------------
// Tick simulator vs analytic models
// ---------------------------------------------------------------------------

struct PN {
  int p;
  int n;
};

class TickSimGrid : public ::testing::TestWithParam<PN> {};

TEST_P(TickSimGrid, OneFOneBInflightMatchesAppendixA1) {
  // Appendix A.1: stage i caches O(2(P-i)+1) activations. The tick
  // simulation must measure exactly 2(P-1-i)+1 (0-indexed) once the
  // pipeline is in steady state.
  auto [p, n] = GetParam();
  // Enough minibatches for every stage to reach pipeline steady state
  // (total microbatches must exceed the 2P-tick round trip).
  int minibatches = std::max(6, 4 * p / n);
  auto stats = pipeline::simulate_1f1b_schedule(p, n, minibatches);
  auto expected = hwmodel::pipemare_activation_counts(p);
  ASSERT_EQ(stats.max_inflight_activations.size(), expected.size());
  for (int i = 0; i < p; ++i) {
    EXPECT_EQ(stats.max_inflight_activations[static_cast<std::size_t>(i)],
              expected[static_cast<std::size_t>(i)])
        << "stage " << i;
  }
}

TEST_P(TickSimGrid, FlushThroughputMatchesTable1) {
  // Table 1: GPipe normalized throughput N/(N+P-1). The simulator uses
  // dual F/B units (one microbatch completes per tick in bubble-free
  // steady state), while Table 1 normalizes against a serialized unit
  // (one per 2 ticks): the Table 1 value is exactly 2x the measured
  // flush/1F1B ratio for long runs.
  auto [p, n] = GetParam();
  int minibatches = std::max(60, 40 * p / n);
  auto flush = pipeline::simulate_flush_schedule(p, n, minibatches);
  auto steady = pipeline::simulate_1f1b_schedule(p, n, minibatches);
  double relative = 2.0 * flush.throughput / steady.throughput;
  double table1 = hwmodel::normalized_throughput_simple(pipeline::Method::Sync, p, n);
  EXPECT_NEAR(relative, table1, 0.05 * table1 + 0.02) << "P=" << p << " N=" << n;
}

TEST_P(TickSimGrid, OneFOneBHasNoSteadyStateBubbles) {
  auto [p, n] = GetParam();
  int minibatches = std::max(50, 40 * p / n);
  auto stats = pipeline::simulate_1f1b_schedule(p, n, minibatches);
  // Busy fraction approaches 1 for long runs (only fill/drain idle).
  double busy_frac = static_cast<double>(stats.busy_slots) /
                     static_cast<double>(stats.busy_slots + stats.idle_slots);
  EXPECT_GT(busy_frac, 0.85) << "P=" << p << " N=" << n;
  auto flush = pipeline::simulate_flush_schedule(p, n, minibatches);
  double flush_busy = static_cast<double>(flush.busy_slots) /
                      static_cast<double>(flush.busy_slots + flush.idle_slots);
  EXPECT_GT(busy_frac, flush_busy);
}

INSTANTIATE_TEST_SUITE_P(Grid, TickSimGrid,
                         ::testing::Values(PN{2, 2}, PN{4, 4}, PN{8, 4}, PN{16, 8},
                                           PN{16, 2}),
                         [](const auto& info) {
                           return "P" + std::to_string(info.param.p) + "N" +
                                  std::to_string(info.param.n);
                         });

// ---------------------------------------------------------------------------
// Companion matrix cross-validation
// ---------------------------------------------------------------------------

TEST(Companion, SpectralRadiusMatchesPolynomialRoots) {
  for (double alpha : {0.01, 0.1, 0.3}) {
    theory::Polynomial p = theory::char_poly_basic(8, alpha, 1.0);
    theory::CompanionMatrix c(p);
    EXPECT_EQ(c.dim(), 9);
    EXPECT_NEAR(c.spectral_radius_power(4000), p.spectral_radius(), 2e-2)
        << "alpha=" << alpha;
  }
}

TEST(Companion, DiscrepancyPolyAgreesToo) {
  theory::Polynomial p = theory::char_poly_discrepancy(10, 6, 0.05, 1.0, 5.0);
  theory::CompanionMatrix c(p);
  EXPECT_NEAR(c.spectral_radius_power(4000), p.spectral_radius(), 2e-2);
}

TEST(Companion, SimulationBoundedIffStable) {
  double stable_alpha = 0.5 * theory::lemma1_max_alpha(1.0, 6);
  double unstable_alpha = 2.0 * theory::lemma1_max_alpha(1.0, 6);
  theory::CompanionMatrix stable(theory::char_poly_basic(6, stable_alpha, 1.0));
  theory::CompanionMatrix unstable(theory::char_poly_basic(6, unstable_alpha, 1.0));
  EXPECT_LT(stable.simulate_norm(3000, 0.1, 7), 1e3);
  EXPECT_GT(unstable.simulate_norm(3000, 0.1, 7), 1e6);
}

// ---------------------------------------------------------------------------
// Dropout
// ---------------------------------------------------------------------------

TEST(Dropout, IdentityAtEval) {
  nn::Dropout drop(0.5);
  nn::Flow in;
  in.x = tensor::Tensor({2, 4}, {1, 2, 3, 4, 5, 6, 7, 8});
  in.training = false;
  nn::Cache cache;
  nn::Flow out = drop.forward(in, {}, cache);
  for (std::int64_t i = 0; i < in.x.size(); ++i) EXPECT_EQ(out.x[i], in.x[i]);
}

TEST(Dropout, TrainingMasksAndRescales) {
  nn::Dropout drop(0.5, 42);
  nn::Flow in;
  in.x = tensor::Tensor({1, 1000});
  in.x.fill(1.0F);
  in.training = true;
  nn::Cache cache;
  nn::Flow out = drop.forward(in, {}, cache);
  int zeros = 0;
  double sum = 0.0;
  for (std::int64_t i = 0; i < out.x.size(); ++i) {
    if (out.x[i] == 0.0F) {
      ++zeros;
    } else {
      EXPECT_NEAR(out.x[i], 2.0F, 1e-6F);  // inverted scaling 1/(1-0.5)
    }
    sum += out.x[i];
  }
  EXPECT_NEAR(zeros, 500, 60);
  EXPECT_NEAR(sum / 1000.0, 1.0, 0.15);  // expectation preserved
}

TEST(Dropout, BackwardAppliesForwardMask) {
  nn::Dropout drop(0.3, 7);
  nn::Flow in;
  in.x = tensor::Tensor({1, 64});
  in.x.fill(1.0F);
  in.training = true;
  nn::Cache cache;
  nn::Flow out = drop.forward(in, {}, cache);
  nn::Flow dout;
  dout.x = tensor::Tensor({1, 64});
  dout.x.fill(1.0F);
  nn::Flow din = drop.backward(dout, {}, cache, {});
  for (std::int64_t i = 0; i < out.x.size(); ++i) {
    EXPECT_EQ(din.x[i], out.x[i]);  // dy=1, mask applied identically
  }
}

TEST(Dropout, TransformerWithDropoutTrainsAndEvalsDeterministically) {
  nn::TransformerConfig cfg;
  cfg.vocab = 9;
  cfg.d_model = 8;
  cfg.heads = 2;
  cfg.enc_layers = 1;
  cfg.dec_layers = 1;
  cfg.ffn_hidden = 12;
  cfg.dropout = 0.2;
  nn::Model m = nn::make_transformer(cfg);
  util::Rng rng(3);
  std::vector<float> params(static_cast<std::size_t>(m.param_count()));
  m.init_params(params, rng);
  nn::Flow in;
  in.x = tensor::Tensor({1, 4}, {3, 4, 5, 6});
  in.aux = tensor::Tensor({1, 3}, {1, 3, 4});
  in.training = false;
  auto caches = m.make_caches();
  nn::Flow a = m.forward(in, params, caches);
  nn::Flow b = m.forward(in, params, caches);
  for (std::int64_t i = 0; i < a.x.size(); ++i) {
    EXPECT_EQ(a.x[i], b.x[i]);  // eval is dropout-free and deterministic
  }
  in.training = true;
  nn::Flow c = m.forward(in, params, caches);
  // Training pass differs from eval (masks active) almost surely.
  bool differs = false;
  for (std::int64_t i = 0; i < a.x.size(); ++i) {
    if (std::abs(a.x[i] - c.x[i]) > 1e-7F) differs = true;
  }
  EXPECT_TRUE(differs);
}

// ---------------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------------

TEST(Serialize, RoundTrip) {
  std::vector<float> w = {1.5F, -2.25F, 0.0F, 3.75F};
  std::string path =
      (std::filesystem::temp_directory_path() / "pipemare_weights_test.bin").string();
  nn::save_weights(path, w);
  auto back = nn::load_weights(path);
  ASSERT_EQ(back.size(), w.size());
  for (std::size_t i = 0; i < w.size(); ++i) EXPECT_EQ(back[i], w[i]);
  std::remove(path.c_str());
}

TEST(Serialize, RejectsGarbage) {
  std::string path =
      (std::filesystem::temp_directory_path() / "pipemare_garbage_test.bin").string();
  {
    std::ofstream out(path, std::ios::binary);
    out << "not a checkpoint";
  }
  EXPECT_THROW(nn::load_weights(path), std::runtime_error);
  EXPECT_THROW(nn::load_weights("/nonexistent/dir/x.bin"), std::runtime_error);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace pipemare
