#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "src/data/bleu.h"
#include "src/data/image_data.h"
#include "src/data/regression_data.h"
#include "src/data/translation_data.h"

namespace pipemare::data {
namespace {

TEST(ImageData, ShapesAndDeterminism) {
  ImageDatasetConfig cfg;
  cfg.classes = 4;
  cfg.train_size = 32;
  cfg.test_size = 16;
  cfg.image_size = 8;
  SynthImageDataset ds(cfg);
  std::vector<int> idx = {0, 1, 2, 3, 4, 5, 6, 7};
  auto mb1 = ds.train_minibatch(idx, 4);
  auto mb2 = ds.train_minibatch(idx, 4);
  ASSERT_EQ(mb1.inputs.size(), 2u);
  EXPECT_EQ(mb1.inputs[0].x.shape(), (std::vector<int>{4, 3, 8, 8}));
  // Same index -> identical pixels (per-sample noise seeds are fixed).
  for (std::int64_t i = 0; i < mb1.inputs[0].x.size(); ++i) {
    ASSERT_EQ(mb1.inputs[0].x[i], mb2.inputs[0].x[i]);
  }
  for (std::int64_t i = 0; i < mb1.targets[0].size(); ++i) {
    int label = static_cast<int>(mb1.targets[0][i]);
    EXPECT_GE(label, 0);
    EXPECT_LT(label, cfg.classes);
  }
}

TEST(ImageData, TestBatchCoversSplit) {
  ImageDatasetConfig cfg;
  cfg.train_size = 8;
  cfg.test_size = 20;
  cfg.image_size = 8;
  SynthImageDataset ds(cfg);
  auto batches = ds.test_batch(8);
  ASSERT_EQ(batches.inputs.size(), 3u);  // 8 + 8 + 4
  EXPECT_EQ(batches.inputs[2].x.dim(0), 4);
}

TEST(ImageData, ClassesAreSeparable) {
  // Templates of different classes must differ far more than the noise so
  // the task is learnable: compare two samples of the same vs different
  // classes with noise disabled.
  ImageDatasetConfig cfg;
  cfg.noise_std = 0.0;
  cfg.max_shift = 0;
  cfg.train_size = 64;
  cfg.test_size = 4;
  SynthImageDataset ds(cfg);
  auto mb = ds.train_minibatch([] {
    std::vector<int> v(64);
    for (int i = 0; i < 64; ++i) v[static_cast<std::size_t>(i)] = i;
    return v;
  }(), 64);
  // Group samples by label and check mean intra/inter distances.
  const auto& x = mb.inputs[0].x;
  const auto& y = mb.targets[0];
  std::int64_t pix = x.size() / 64;
  double intra = 0.0, inter = 0.0;
  int n_intra = 0, n_inter = 0;
  for (int a = 0; a < 64; ++a) {
    for (int b = a + 1; b < 64; ++b) {
      double d = 0.0;
      for (std::int64_t p = 0; p < pix; ++p) {
        double diff = x[a * pix + p] - x[b * pix + p];
        d += diff * diff;
      }
      if (y[a] == y[b]) {
        intra += d;
        ++n_intra;
      } else {
        inter += d;
        ++n_inter;
      }
    }
  }
  ASSERT_GT(n_intra, 0);
  ASSERT_GT(n_inter, 0);
  EXPECT_LT(intra / n_intra, 1e-9);          // identical without noise/shift
  EXPECT_GT(inter / n_inter, 0.1);           // classes clearly distinct
}

TEST(TranslationData, ReferenceIsMappedReversal) {
  TranslationConfig cfg;
  cfg.vocab = 16;
  cfg.seq_len = 5;
  SynthTranslationDataset ds(cfg);
  std::vector<int> src = {3, 4, 5, 6, 7};
  auto ref = ds.reference(src);
  ASSERT_EQ(ref.size(), 5u);
  // Reversal: ref[i] depends only on src[len-1-i]; mapping is a bijection
  // on content tokens.
  auto ref2 = ds.reference({7, 6, 5, 4, 3});
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(ref[static_cast<std::size_t>(i)], ref2[static_cast<std::size_t>(4 - i)]);
    EXPECT_GE(ref[static_cast<std::size_t>(i)], TranslationConfig::kFirstContent);
    EXPECT_LT(ref[static_cast<std::size_t>(i)], cfg.vocab);
  }
  std::set<int> mapped;
  for (int t = TranslationConfig::kFirstContent; t < cfg.vocab; ++t) {
    auto r = ds.reference({t});
    mapped.insert(r[0]);
  }
  EXPECT_EQ(static_cast<int>(mapped.size()), cfg.vocab - TranslationConfig::kFirstContent);
}

TEST(TranslationData, BatchLayoutTeacherForcing) {
  TranslationConfig cfg;
  cfg.vocab = 16;
  cfg.seq_len = 4;
  cfg.train_size = 8;
  SynthTranslationDataset ds(cfg);
  auto mb = ds.train_minibatch({0, 1}, 2);
  ASSERT_EQ(mb.inputs.size(), 1u);
  const auto& flow = mb.inputs[0];
  const auto& tgt = mb.targets[0];
  EXPECT_EQ(flow.x.shape(), (std::vector<int>{2, 4}));
  EXPECT_EQ(flow.aux.shape(), (std::vector<int>{2, 5}));
  EXPECT_EQ(tgt.shape(), (std::vector<int>{2, 5}));
  // aux = BOS + ref; target = ref + EOS (shifted by one).
  EXPECT_EQ(static_cast<int>(flow.aux.at(0, 0)), TranslationConfig::kBos);
  for (int t = 0; t < 4; ++t) {
    EXPECT_EQ(flow.aux.at(0, t + 1), tgt.at(0, t));
  }
  EXPECT_EQ(static_cast<int>(tgt.at(0, 4)), TranslationConfig::kEos);
}

TEST(RegressionData, LambdaMaxMatchesExplicitEigenvalue) {
  RegressionConfig cfg;
  cfg.features = 3;
  cfg.size = 512;
  cfg.scale_decades = 0.5;
  SynthRegressionDataset ds(cfg);
  // Rayleigh quotient at random probes never exceeds lambda_max.
  auto mb = ds.minibatch([] {
    std::vector<int> v(512);
    for (int i = 0; i < 512; ++i) v[static_cast<std::size_t>(i)] = i;
    return v;
  }(), 512);
  const auto& x = mb.inputs[0].x;
  int n = x.dim(0), d = x.dim(1);
  // Build H = (1/n) X^T X explicitly (d = 3).
  double h[3][3] = {};
  for (int i = 0; i < n; ++i)
    for (int a = 0; a < d; ++a)
      for (int b = 0; b < d; ++b) h[a][b] += static_cast<double>(x.at(i, a)) * x.at(i, b) / n;
  // Power-iterate explicitly.
  double v[3] = {1, 1, 1};
  double lam = 0.0;
  for (int it = 0; it < 500; ++it) {
    double hv[3] = {};
    for (int a = 0; a < d; ++a)
      for (int b = 0; b < d; ++b) hv[a] += h[a][b] * v[b];
    double norm = std::sqrt(hv[0] * hv[0] + hv[1] * hv[1] + hv[2] * hv[2]);
    for (int a = 0; a < d; ++a) v[a] = hv[a] / norm;
    lam = norm;
  }
  EXPECT_NEAR(ds.lambda_max(), lam, 1e-6 * lam);
}

TEST(Bleu, PerfectMatchScores100) {
  std::vector<std::vector<int>> refs = {{1, 2, 3, 4, 5}, {6, 7, 8, 9}};
  EXPECT_NEAR(corpus_bleu(refs, refs), 100.0, 1e-9);
}

TEST(Bleu, EmptyOrDisjointScoresZero) {
  std::vector<std::vector<int>> hyp = {{1, 2, 3, 4}};
  std::vector<std::vector<int>> ref = {{5, 6, 7, 8}};
  EXPECT_EQ(corpus_bleu(hyp, ref), 0.0);
  EXPECT_EQ(corpus_bleu({{}}, {{1, 2, 3}}), 0.0);
}

TEST(Bleu, BrevityPenaltyApplies) {
  // Hypothesis is a perfect prefix but shorter: precisions are 1, so the
  // score equals 100 * exp(1 - ref/hyp).
  std::vector<std::vector<int>> hyp = {{1, 2, 3, 4, 5}};
  std::vector<std::vector<int>> ref = {{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}};
  double expected = 100.0 * std::exp(1.0 - 10.0 / 5.0);
  EXPECT_NEAR(corpus_bleu(hyp, ref), expected, 1e-9);
}

TEST(Bleu, PartialOverlapBetweenZeroAndHundred) {
  std::vector<std::vector<int>> hyp = {{1, 2, 3, 9, 5, 6, 7, 8}};
  std::vector<std::vector<int>> ref = {{1, 2, 3, 4, 5, 6, 7, 8}};
  double bleu = corpus_bleu(hyp, ref);
  EXPECT_GT(bleu, 10.0);
  EXPECT_LT(bleu, 90.0);
}

TEST(Bleu, MonotoneInQuality) {
  std::vector<std::vector<int>> ref = {{1, 2, 3, 4, 5, 6, 7, 8}};
  std::vector<std::vector<int>> near = {{1, 2, 3, 4, 5, 6, 7, 9}};
  std::vector<std::vector<int>> far = {{1, 9, 3, 9, 5, 9, 7, 9}};
  EXPECT_GT(corpus_bleu(near, ref), corpus_bleu(far, ref));
}

TEST(SequenceAccuracy, CountsMatchesAndLengthMismatch) {
  EXPECT_NEAR(sequence_accuracy({{1, 2, 3}}, {{1, 2, 3}}), 1.0, 1e-12);
  EXPECT_NEAR(sequence_accuracy({{1, 2}}, {{1, 2, 3, 4}}), 0.5, 1e-12);
  EXPECT_NEAR(sequence_accuracy({{9, 9, 9}}, {{1, 2, 3}}), 0.0, 1e-12);
}

}  // namespace
}  // namespace pipemare::data
