#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>
#include <stdexcept>
#include <vector>

#include "src/core/stage_load.h"
#include "src/core/task.h"
#include "src/core/trainer.h"
#include "src/data/regression_data.h"
#include "src/data/translation_data.h"
#include "src/hogwild/hogwild.h"
#include "src/hogwild/threaded_hogwild.h"
#include "src/nn/activations.h"
#include "src/nn/dropout.h"
#include "src/nn/heads.h"
#include "src/nn/linear.h"
#include "src/nn/model.h"
#include "src/nn/transformer.h"
#include "src/util/rng.h"

namespace pipemare::hogwild {
namespace {

/// Small dropout-free MLP + random classification microbatches shared by
/// the sequential-vs-threaded comparisons.
struct HogwildFixture {
  nn::Model model;
  nn::ClassificationXent head;
  std::vector<nn::Flow> inputs;
  std::vector<tensor::Tensor> targets;

  HogwildFixture(int num_micro, int layers = 4, int width = 12, int classes = 6,
                 std::uint64_t seed = 17, bool relu = true) {
    for (int i = 0; i < layers; ++i) {
      model.add(std::make_unique<nn::Linear>(width, width, /*relu_init=*/relu));
      // ReLU maps NaN to 0; the non-finite contract test drops it so a
      // poisoned input actually reaches the loss.
      if (relu) model.add(std::make_unique<nn::ReLU>());
    }
    model.add(std::make_unique<nn::Linear>(width, classes));
    util::Rng rng(seed);
    for (int m = 0; m < num_micro; ++m) {
      nn::Flow f;
      f.x = tensor::Tensor({2, width});
      for (std::int64_t i = 0; i < f.x.size(); ++i) {
        f.x[i] = static_cast<float>(rng.normal());
      }
      tensor::Tensor t({2});
      for (int j = 0; j < 2; ++j) t[j] = static_cast<float>(rng.randint(classes));
      inputs.push_back(std::move(f));
      targets.push_back(std::move(t));
    }
  }
};

HogwildConfig base_config(int stages, int micro) {
  HogwildConfig hw;
  hw.num_stages = stages;
  hw.num_microbatches = micro;
  hw.max_delay = 6.0;
  return hw;
}

TEST(HogwildValidation, RejectsBadConfigs) {
  HogwildFixture fx(2);
  auto bad_stages = base_config(0, 2);
  EXPECT_THROW(HogwildEngine(fx.model, bad_stages, 1), std::invalid_argument);
  EXPECT_THROW(ThreadedHogwildEngine(fx.model, bad_stages, 1), std::invalid_argument);

  auto bad_micro = base_config(2, 0);
  EXPECT_THROW(HogwildEngine(fx.model, bad_micro, 1), std::invalid_argument);
  EXPECT_THROW(ThreadedHogwildEngine(fx.model, bad_micro, 1), std::invalid_argument);

  // The original bug: a negative max_delay silently produced a nonsense
  // history depth; it must throw like the pipeline engines' validation.
  auto bad_delay = base_config(2, 2);
  bad_delay.max_delay = -1.0;
  EXPECT_THROW(HogwildEngine(fx.model, bad_delay, 1), std::invalid_argument);
  EXPECT_THROW(ThreadedHogwildEngine(fx.model, bad_delay, 1), std::invalid_argument);

  auto bad_mean = base_config(2, 2);
  bad_mean.mean_delay = {1.0, 2.0, 3.0};  // size != num_stages
  EXPECT_THROW(HogwildEngine(fx.model, bad_mean, 1), std::invalid_argument);
  EXPECT_THROW(ThreadedHogwildEngine(fx.model, bad_mean, 1), std::invalid_argument);

  auto bad_workers = base_config(2, 2);
  bad_workers.num_workers = -1;
  EXPECT_THROW(ThreadedHogwildEngine(fx.model, bad_workers, 1), std::invalid_argument);
}

namespace {

/// A module that really does mutate state in forward, to keep the
/// whole-model-replica safety gate honest now that no in-tree module
/// trips it.
class StatefulProbe : public nn::Linear {
 public:
  StatefulProbe() : nn::Linear(8, 8) {}
  std::string name() const override { return "StatefulProbe"; }
  bool stateful_forward() const override { return true; }
};

}  // namespace

TEST(ThreadedHogwild, RejectsStatefulForwardModules) {
  nn::Model model;
  model.add(std::make_unique<nn::Linear>(8, 8));
  model.add(std::make_unique<StatefulProbe>());
  model.add(std::make_unique<nn::Linear>(8, 4));
  EXPECT_THROW(ThreadedHogwildEngine(model, base_config(2, 2), 1),
               std::invalid_argument);
  // The sequential engine keeps supporting stateful-forward models.
  EXPECT_NO_THROW(HogwildEngine(model, base_config(2, 2), 1));
}

TEST(ThreadedHogwild, AcceptsDropoutModels) {
  // Dropout masks are counter-based (pure functions of seed/step/micro/
  // element), so concurrent whole-model replicas are safe and the
  // Transformer analogs can run on this backend (the ROADMAP item the
  // old stateful RNG stream blocked).
  nn::Model model;
  model.add(std::make_unique<nn::Linear>(8, 8));
  model.add(std::make_unique<nn::Dropout>(0.3));
  model.add(std::make_unique<nn::Linear>(8, 4));
  EXPECT_NO_THROW(ThreadedHogwildEngine(model, base_config(2, 2), 1));
}

TEST(ThreadedHogwild, TransformerDropoutBitwiseAcrossWorkerCounts) {
  // The ROADMAP item this PR closes: the Transformer analogs (with active
  // Dropout) run on the threaded Hogwild backend, and because masks are
  // counter-based, thread timing cannot leak into them — two identically
  // seeded runs with different worker counts stay bitwise equal, and both
  // match the sequential HogwildEngine's losses exactly (identical weight
  // views, identical masks; only gradient accumulation reassociates).
  data::TranslationConfig d;
  d.vocab = 12;
  d.seq_len = 5;
  d.train_size = 16;
  d.test_size = 4;
  d.seed = 3;
  nn::TransformerConfig mc;
  mc.d_model = 16;
  mc.heads = 2;
  mc.enc_layers = 1;
  mc.dec_layers = 1;
  mc.ffn_hidden = 24;
  mc.dropout = 0.3;
  core::TranslationTask task(d, mc, "tiny-dropout", /*eval=*/4);
  nn::Model model = task.build_model();

  auto hw = base_config(3, 2);
  HogwildEngine seq(model, hw, 11);
  ThreadedHogwildEngine a(model, hw, 11);
  hw.num_workers = 2;
  ThreadedHogwildEngine b(model, hw, 11);

  auto mb = task.minibatch({0, 1, 2, 3}, 2);
  for (int step = 0; step < 3; ++step) {
    auto rs = seq.forward_backward(mb.inputs, mb.targets, task.loss());
    auto ra = a.forward_backward(mb.inputs, mb.targets, task.loss());
    auto rb = b.forward_backward(mb.inputs, mb.targets, task.loss());
    ASSERT_DOUBLE_EQ(ra.loss, rb.loss) << "step " << step;
    // Sequential comparison is tight but not bitwise: gradient
    // accumulation reassociates across microbatch boundaries, so weights
    // (and with them later losses) drift by float rounding after step 0.
    ASSERT_NEAR(rs.loss, ra.loss, 1e-5 * (1.0 + std::abs(rs.loss)))
        << "step " << step;
    auto ga = a.gradients();
    auto gb = b.gradients();
    for (std::size_t i = 0; i < ga.size(); ++i) {
      ASSERT_EQ(ga[i], gb[i]) << "grad " << i << " at step " << step;
    }
    auto apply = [](auto& engine) {
      auto g = engine.gradients();
      for (std::size_t i = 0; i < g.size(); ++i) engine.weights()[i] -= 0.05F * g[i];
      engine.commit_update();
    };
    apply(seq);
    apply(a);
    apply(b);
  }
}

TEST(ThreadedHogwild, ResolvesWorkerCount) {
  HogwildFixture fx(4);
  auto hw = base_config(2, 4);
  hw.num_workers = 3;
  ThreadedHogwildEngine engine(fx.model, hw, 1);
  EXPECT_EQ(engine.num_workers(), 3);

  hw.num_workers = 0;  // auto: min(cores, N) >= 1
  ThreadedHogwildEngine auto_engine(fx.model, hw, 1);
  EXPECT_GE(auto_engine.num_workers(), 1);
  EXPECT_LE(auto_engine.num_workers(), 4);
}

TEST(ThreadedHogwild, PerWorkerStatsCountProcessedMicrobatches) {
  // Parity with ThreadedEngine's load instrumentation: per-worker busy /
  // pop-wait counters behind the same stage_stats() surface, so
  // core::StageLoadObserver samples every multithreaded backend uniformly.
  const int n = 6;
  HogwildFixture fx(n);
  auto hw = base_config(2, n);
  hw.num_workers = 2;
  ThreadedHogwildEngine engine(fx.model, hw, 1);

  auto before = engine.stage_stats();
  ASSERT_EQ(before.size(), 2u);  // slots are workers, not stages
  for (const auto& s : before) {
    EXPECT_EQ(s.busy_ns, 0u);
    EXPECT_EQ(s.items, 0u);
  }

  const int steps = 3;
  for (int step = 0; step < steps; ++step) {
    (void)engine.forward_backward(fx.inputs, fx.targets, fx.head);
    engine.commit_update();
  }
  auto after = engine.stage_stats();
  std::uint64_t items = 0;
  std::uint64_t busy = 0;
  for (const auto& s : after) {
    items += s.items;
    busy += s.busy_ns;
    EXPECT_EQ(s.stolen_items, 0u);  // no stealing in this backend
  }
  EXPECT_EQ(items, static_cast<std::uint64_t>(steps * n));
  EXPECT_GT(busy, 0u);

  engine.reset_stage_stats();
  for (const auto& s : engine.stage_stats()) {
    EXPECT_EQ(s.busy_ns, 0u);
    EXPECT_EQ(s.pop_wait_ns, 0u);
    EXPECT_EQ(s.items, 0u);
  }
}

TEST(ThreadedHogwild, StageLoadObserverActivatesThroughRegistryBackend) {
  HogwildFixture fx(4);
  pipeline::EngineConfig engine;
  engine.num_stages = 2;
  engine.num_microbatches = 4;
  core::ThreadedHogwildOptions opts;
  opts.workers = 2;
  opts.max_delay = 6.0;
  auto backend = core::BackendRegistry::instance().create(
      std::move(fx.model), core::BackendConfig{"threaded_hogwild", opts}, engine, 1);
  core::StageLoadObserver load(*backend);
  ASSERT_TRUE(load.active());
  (void)backend->forward_backward(fx.inputs, fx.targets, fx.head);
  backend->commit_update();
  core::EpochRecord rec;
  load.on_epoch(rec);
  ASSERT_EQ(load.epoch_stats().size(), 1u);
  ASSERT_EQ(load.epoch_stats()[0].size(), 2u);
  std::uint64_t items = 0;
  for (const auto& s : load.epoch_stats()[0]) items += s.items;
  EXPECT_EQ(items, 4u);
}

TEST(ThreadedHogwild, MatchesDelayProfileOfSequential) {
  HogwildFixture fx(2);
  auto hw = base_config(4, 2);
  HogwildEngine seq(fx.model, hw, 7);
  ThreadedHogwildEngine thr(fx.model, hw, 7);
  auto tau_s = seq.stage_tau_fwd();
  auto tau_t = thr.stage_tau_fwd();
  ASSERT_EQ(tau_s.size(), tau_t.size());
  for (std::size_t s = 0; s < tau_s.size(); ++s) {
    EXPECT_DOUBLE_EQ(tau_s[s], tau_t[s]);
  }
}

/// Runs `steps` SGD steps on both engines. Losses must agree to tight
/// tolerance at every step; the engines share the delay RNG stream and
/// weight views, and differ only by float reassociation across microbatch
/// boundaries in gradient accumulation (bias column sums).
void expect_close_trajectories(pipeline::Method method, int stages, int micro,
                               int steps, int workers) {
  HogwildFixture fx(micro);
  auto hw = base_config(stages, micro);
  hw.num_workers = workers;
  HogwildEngine seq(fx.model, hw, 3);
  ThreadedHogwildEngine thr(fx.model, hw, 3);
  seq.set_method(method);
  thr.set_method(method);
  for (int step = 0; step < steps; ++step) {
    auto rs = seq.forward_backward(fx.inputs, fx.targets, fx.head);
    auto rt = thr.forward_backward(fx.inputs, fx.targets, fx.head);
    ASSERT_EQ(rs.finite, rt.finite) << "step " << step;
    ASSERT_NEAR(rs.loss, rt.loss, 1e-5 * (1.0 + std::abs(rs.loss))) << "step " << step;
    ASSERT_DOUBLE_EQ(rs.correct, rt.correct) << "step " << step;
    ASSERT_DOUBLE_EQ(rs.count, rt.count) << "step " << step;
    auto gs = seq.gradients();
    auto gt = thr.gradients();
    ASSERT_EQ(gs.size(), gt.size());
    for (std::size_t i = 0; i < gs.size(); ++i) {
      ASSERT_NEAR(gs[i], gt[i], 1e-4F * (1.0F + std::abs(gs[i])))
          << "grad " << i << " at step " << step;
    }
    for (std::size_t i = 0; i < gs.size(); ++i) {
      seq.weights()[i] -= 0.05F * gs[i];
      thr.weights()[i] -= 0.05F * gt[i];
    }
    seq.commit_update();
    thr.commit_update();
  }
}

TEST(ThreadedHogwild, TracksSequentialUnderStochasticDelays) {
  expect_close_trajectories(pipeline::Method::PipeMare, 4, 4, 6, 4);
}

TEST(ThreadedHogwild, TracksSequentialUnderSync) {
  expect_close_trajectories(pipeline::Method::Sync, 4, 4, 4, 2);
}

TEST(ThreadedHogwild, SingleWorkerDegeneratesCleanly) {
  expect_close_trajectories(pipeline::Method::PipeMare, 3, 5, 4, 1);
}

TEST(ThreadedHogwild, RunToRunBitwiseReproducible) {
  // Thread timing must not leak into results: two identically seeded runs
  // with different worker counts produce bitwise-equal losses, gradients
  // and weights (per-microbatch slots merged in microbatch order).
  HogwildFixture fx(6);
  auto hw = base_config(3, 6);
  hw.num_workers = 4;
  ThreadedHogwildEngine a(fx.model, hw, 11);
  hw.num_workers = 2;
  ThreadedHogwildEngine b(fx.model, hw, 11);
  for (int step = 0; step < 5; ++step) {
    auto ra = a.forward_backward(fx.inputs, fx.targets, fx.head);
    auto rb = b.forward_backward(fx.inputs, fx.targets, fx.head);
    ASSERT_DOUBLE_EQ(ra.loss, rb.loss) << "step " << step;
    auto ga = a.gradients();
    auto gb = b.gradients();
    for (std::size_t i = 0; i < ga.size(); ++i) {
      ASSERT_EQ(ga[i], gb[i]) << "grad " << i << " at step " << step;
    }
    for (std::size_t i = 0; i < ga.size(); ++i) {
      a.weights()[i] -= 0.05F * ga[i];
      b.weights()[i] -= 0.05F * gb[i];
    }
    a.commit_update();
    b.commit_update();
  }
  for (std::size_t i = 0; i < a.weights().size(); ++i) {
    ASSERT_EQ(a.weights()[i], b.weights()[i]) << "weight " << i;
  }
}

TEST(ThreadedHogwild, NonFiniteLossContractMatchesSequential) {
  HogwildFixture fx(4, 4, 12, 6, 17, /*relu=*/false);
  for (std::int64_t i = 0; i < fx.inputs[2].x.size(); ++i) {
    fx.inputs[2].x[i] = std::numeric_limits<float>::quiet_NaN();
  }
  auto hw = base_config(2, 4);
  HogwildEngine seq(fx.model, hw, 3);
  ThreadedHogwildEngine thr(fx.model, hw, 3);
  auto rs = seq.forward_backward(fx.inputs, fx.targets, fx.head);
  auto rt = thr.forward_backward(fx.inputs, fx.targets, fx.head);
  EXPECT_FALSE(rs.finite);
  EXPECT_FALSE(rt.finite);
  EXPECT_FALSE(std::isfinite(rs.loss));
  EXPECT_FALSE(std::isfinite(rt.loss));
  // The unified contract: a divergent step has no meaningful metrics.
  EXPECT_EQ(rs.correct, 0.0);
  EXPECT_EQ(rs.count, 0.0);
  EXPECT_EQ(rt.correct, 0.0);
  EXPECT_EQ(rt.count, 0.0);
}

TEST(ThreadedHogwild, TrainsQuadraticWorkloadToSequentialLoss) {
  // The fig19-style quadratic (linear regression) workload: the threaded
  // backend must reach the sequential engine's final loss to tolerance,
  // driven end-to-end through core::train via the registry backend.
  data::RegressionConfig rc;
  rc.features = 8;
  rc.size = 128;
  rc.noise_std = 0.05;
  rc.seed = 9;
  core::RegressionTask task(rc);

  core::TrainerConfig cfg;
  cfg.epochs = 4;
  cfg.minibatch_size = 16;
  cfg.microbatch_size = 4;
  cfg.schedule = core::TrainerConfig::Sched::Constant;
  cfg.lr = 0.05;
  cfg.weight_decay = 0.0;
  cfg.seed = 5;
  cfg.engine.method = pipeline::Method::PipeMare;
  cfg.engine.num_stages = 1;
  const double max_delay = 6.0;

  // Sequential reference via train_loop on HogwildEngine.
  nn::Model model = task.build_model();
  HogwildConfig hw;
  hw.num_stages = cfg.engine.num_stages;
  hw.num_microbatches = cfg.num_microbatches();
  hw.max_delay = max_delay;
  HogwildEngine seq(model, hw, cfg.seed);
  auto seq_res = core::train_loop(task, seq, cfg);

  core::ThreadedHogwildOptions opts;
  opts.max_delay = max_delay;
  opts.workers = 3;
  cfg.backend = {"threaded_hogwild", opts};
  auto thr_res = core::train(task, cfg);

  ASSERT_FALSE(seq_res.diverged);
  ASSERT_FALSE(thr_res.diverged);
  ASSERT_EQ(seq_res.curve.size(), thr_res.curve.size());
  double seq_final = seq_res.curve.back().train_loss;
  double thr_final = thr_res.curve.back().train_loss;
  EXPECT_NEAR(seq_final, thr_final, 1e-4 * (1.0 + std::abs(seq_final)));
}

TEST(Trainer, HogwildExecutionRejectsRecompute) {
  // Parity with ThreadedEngine: recomputation is modelled only by the
  // analytic engine, so the Hogwild backend must reject it rather than
  // silently dropping the setting.
  data::RegressionConfig rc;
  rc.features = 4;
  rc.size = 32;
  core::RegressionTask task(rc);
  core::TrainerConfig cfg;
  cfg.backend = "threaded_hogwild";
  cfg.engine.recompute_segments = 2;
  EXPECT_THROW(core::train(task, cfg), std::invalid_argument);
}

}  // namespace
}  // namespace pipemare::hogwild
