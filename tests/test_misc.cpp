#include <gtest/gtest.h>

#include <cmath>

#include "src/data/bleu.h"
#include "src/nn/transformer.h"
#include "src/tensor/ops.h"
#include "src/util/cli.h"
#include "src/util/rng.h"

namespace pipemare {
namespace {

// ---------------------------------------------------------------------------
// Cli
// ---------------------------------------------------------------------------

TEST(Cli, ParsesKeyValueAndFlags) {
  const char* argv[] = {"prog", "--alpha=0.5", "--quick", "--name=test", "ignored"};
  util::Cli cli(5, const_cast<char**>(argv));
  EXPECT_TRUE(cli.has("alpha"));
  EXPECT_DOUBLE_EQ(cli.get_double("alpha", 0.0), 0.5);
  EXPECT_TRUE(cli.get_bool("quick", false));  // bare flag means "1"
  EXPECT_EQ(cli.get("name", ""), "test");
  EXPECT_FALSE(cli.has("ignored"));
  EXPECT_EQ(cli.get_int("missing", 7), 7);
}

TEST(Cli, BoolSpellings) {
  const char* argv[] = {"prog", "--a=true", "--b=0", "--c=yes", "--d=no"};
  util::Cli cli(5, const_cast<char**>(argv));
  EXPECT_TRUE(cli.get_bool("a", false));
  EXPECT_FALSE(cli.get_bool("b", true));
  EXPECT_TRUE(cli.get_bool("c", false));
  EXPECT_FALSE(cli.get_bool("d", true));
}

// ---------------------------------------------------------------------------
// BLEU properties
// ---------------------------------------------------------------------------

TEST(BleuProperty, BoundedAndCorpusOrderInvariant) {
  util::Rng rng(3);
  std::vector<std::vector<int>> hyp, ref;
  for (int s = 0; s < 8; ++s) {
    std::vector<int> r, h;
    for (int t = 0; t < 10; ++t) {
      int tok = rng.randint(6);
      r.push_back(tok);
      h.push_back(rng.uniform() < 0.7 ? tok : rng.randint(6));
    }
    ref.push_back(r);
    hyp.push_back(h);
  }
  double b = data::corpus_bleu(hyp, ref);
  EXPECT_GE(b, 0.0);
  EXPECT_LE(b, 100.0);
  // Reversing the corpus order must not change corpus BLEU.
  std::vector<std::vector<int>> hyp_r(hyp.rbegin(), hyp.rend());
  std::vector<std::vector<int>> ref_r(ref.rbegin(), ref.rend());
  EXPECT_NEAR(data::corpus_bleu(hyp_r, ref_r), b, 1e-9);
}

TEST(BleuProperty, CorruptionMonotone) {
  // Corrupting progressively more tokens can only lower (or keep) BLEU.
  util::Rng rng(5);
  std::vector<std::vector<int>> ref;
  for (int s = 0; s < 6; ++s) {
    std::vector<int> r;
    for (int t = 0; t < 12; ++t) r.push_back(rng.randint(8));
    ref.push_back(r);
  }
  double prev = 100.0;
  for (int corrupt = 0; corrupt <= 12; corrupt += 3) {
    auto hyp = ref;
    for (auto& h : hyp) {
      for (int c = 0; c < corrupt; ++c) h[static_cast<std::size_t>(c)] = 99;
    }
    double b = data::corpus_bleu(hyp, ref);
    EXPECT_LE(b, prev + 1e-9) << "corrupt=" << corrupt;
    prev = b;
  }
}

// ---------------------------------------------------------------------------
// Beam search vs greedy
// ---------------------------------------------------------------------------

TEST(BeamSearch, BeamNeverWorseThanGreedyInModelScore) {
  // Score each decoded sequence under the model (teacher-forced log-prob of
  // the produced tokens); the beam-5 hypothesis must be at least as likely
  // as the greedy one (both under length normalization 1.0 and short
  // horizons where normalization effects cannot flip the order... we use
  // raw log-prob of equal-length sequences to keep the property exact).
  nn::TransformerConfig cfg;
  cfg.vocab = 12;
  cfg.d_model = 8;
  cfg.heads = 2;
  cfg.enc_layers = 1;
  cfg.dec_layers = 1;
  cfg.ffn_hidden = 12;
  nn::Model m = nn::make_transformer(cfg);
  util::Rng rng(9);
  std::vector<float> params(static_cast<std::size_t>(m.param_count()));
  m.init_params(params, rng);

  auto sequence_logprob = [&](const tensor::Tensor& src, const std::vector<int>& toks) {
    // Teacher-forced: feed BOS + toks, sum logprob of toks at each position.
    int t_len = static_cast<int>(toks.size());
    if (t_len == 0) return 0.0;
    nn::Flow flow;
    flow.x = src;
    flow.aux = tensor::Tensor({1, t_len});
    flow.aux.at(0, 0) = 0;  // BOS
    for (int t = 0; t + 1 < t_len; ++t) {
      flow.aux.at(0, t + 1) = static_cast<float>(toks[static_cast<std::size_t>(t)]);
    }
    auto caches = m.make_caches();
    nn::Flow out = m.forward(std::move(flow), params, caches);
    double lp = 0.0;
    tensor::Tensor probs = tensor::log_softmax_rows(out.x.reshaped({t_len, cfg.vocab}));
    for (int t = 0; t < t_len; ++t) {
      lp += probs.at(t, toks[static_cast<std::size_t>(t)]);
    }
    return lp;
  };

  tensor::Tensor src({1, 5}, {3, 4, 5, 6, 7});
  // eos=1; use a horizon short enough that neither decode emits EOS-pads.
  auto greedy = nn::greedy_decode(m, params, src, /*bos=*/0, /*eos=*/1, 4);
  auto beam = nn::beam_decode(m, params, src, 0, 1, 4, 5, /*length_penalty=*/0.0);
  ASSERT_EQ(greedy.size(), 1u);
  ASSERT_EQ(beam.size(), 1u);
  if (greedy[0].size() == beam[0].size()) {
    EXPECT_GE(sequence_logprob(src, beam[0]) + 1e-5, sequence_logprob(src, greedy[0]));
  }
}

// ---------------------------------------------------------------------------
// Numeric odds and ends
// ---------------------------------------------------------------------------

TEST(Ops, AddRowBroadcastsOverLeadingDims) {
  tensor::Tensor x({2, 2, 3});
  std::vector<float> row = {1.0F, 2.0F, 3.0F};
  tensor::add_row_inplace(x, row);
  EXPECT_FLOAT_EQ(x.at(0, 0, 0), 1.0F);
  EXPECT_FLOAT_EQ(x.at(1, 1, 2), 3.0F);
}

TEST(Ops, ShapeMismatchThrows) {
  tensor::Tensor a({2, 2});
  tensor::Tensor b({2, 3});
  EXPECT_THROW(tensor::add(a, b), std::invalid_argument);
  EXPECT_THROW(tensor::matmul(a, b.reshaped({3, 2})), std::invalid_argument);
}

}  // namespace
}  // namespace pipemare
