// Reproduces Figure 1 (schematically): the three pipelining modes.
// Renders exact tick timelines: the GPipe-style flush schedule shows
// bubbles (idle '.') growing with P, while the 1F1B schedule used by
// PipeDream/PipeMare is bubble-free in steady state. The difference
// between PipeDream and PipeMare is not the schedule but the weight
// memory: PipeDream stashes one weight copy per in-flight minibatch.
#include <iostream>

#include "src/hwmodel/characteristics.h"
#include "src/pipeline/schedule.h"
#include "src/util/cli.h"
#include "src/util/table.h"

int main(int argc, char** argv) {
  using namespace pipemare;
  util::Cli cli(argc, argv);
  int p = cli.get_int("stages", 4);
  int n = cli.get_int("micro", 3);
  int minibatches = cli.get_int("minibatches", 3);

  std::cout << "=== Figure 1: pipelining modes (P=" << p << ", N=" << n
            << ", " << minibatches << " minibatches) ===\n\n";
  std::cout << "(a) Throughput-poor pipelining (GPipe): fill/drain bubbles '.'\n"
            << pipeline::render_schedule_ascii(p, n, minibatches, /*gpipe_flush=*/true)
            << '\n';
  std::cout << "(b)+(c) Bubble-free 1F1B (PipeDream = weight stashing, PipeMare = "
               "async):\n"
            << pipeline::render_schedule_ascii(p, n, minibatches, /*gpipe_flush=*/false)
            << '\n';

  util::Table t({"Mode", "Bubbles", "Extra weight copies", "Tradeoff"});
  t.add_row({"GPipe", "(P-1)/(N+P-1) of time", "0", "throughput"});
  t.add_row({"PipeDream", "none", util::fmt(static_cast<double>(p) / n, 2) + " W",
             "memory"});
  t.add_row({"PipeMare", "none", "0", "asynchrony (tau_fwd != tau_bkwd)"});
  std::cout << t.to_string();
  return 0;
}
