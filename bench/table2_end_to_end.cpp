// Reproduces Table 2 (end-to-end comparison on the four workload analogs)
// and Figure 9 (ImageNet/WMT metric-vs-epoch curves), with GPipe,
// PipeDream and PipeMare (T1+T2+T3 per the paper's per-task recipes).
//
// Paper reference (Table 2): PipeMare matches the best metric everywhere
// (CIFAR 95.0 / ImageNet 75.5 vs 76.4 / IWSLT 34.5 / WMT 27.8), with
// speedups 3.3X / 2.5X / 1.7X / 2.6X over GPipe; PipeDream fails on both
// translation tasks (BLEU 0.0) despite 1.9-2.4X more weight+opt memory.
// Absolute metrics here are for the synthetic analogs; the comparisons
// (who wins, who fails, memory/throughput factors) are the reproduction.
//
// Usage: table2_end_to_end [--quick=1] [--task=cifar|imagenet|iwslt|wmt|all]
#include <iostream>

#include "bench/bench_util.h"
#include "src/core/experiments.h"
#include "src/core/task.h"
#include "src/pipeline/partition.h"
#include "src/util/cli.h"

int main(int argc, char** argv) {
  using namespace pipemare;
  util::Cli cli(argc, argv);
  bool quick = cli.get_bool("quick", false);
  std::string which = cli.get(std::string("task"), "all");

  std::cout << "=== Table 2: end-to-end comparison (synthetic analogs) ===\n\n";

  auto run_image = [&](const core::ImageTask& task, int epochs, const char* paper_note) {
    int stages = pipeline::max_stages(task.build_model(), false);
    core::TrainerConfig cfg = core::image_recipe(stages, quick ? epochs / 2 : epochs);
    auto rows = core::compare_methods(task, cfg, /*target_gap=*/1.0);
    benchutil::print_rows("-- " + task.name() + " (" + std::to_string(stages) +
                              " stages)  [paper: " + paper_note + "]",
                          "acc", rows);
    benchutil::print_curves("metric curves (Figure 9 style):", rows);
  };
  auto run_translation = [&](const core::TranslationTask& task, int epochs,
                             const char* paper_note) {
    int stages = pipeline::max_stages(task.build_model(), false);
    core::TrainerConfig cfg = core::translation_recipe(stages, quick ? epochs / 2 : epochs);
    auto rows = core::compare_methods(task, cfg, /*target_gap=*/5.0);
    benchutil::print_rows("-- " + task.name() + " (" + std::to_string(stages) +
                              " stages)  [paper: " + paper_note + "]",
                          "BLEU", rows);
    benchutil::print_curves("metric curves (Figure 9 style):", rows, 4);
  };

  if (which == "all" || which == "cifar") {
    run_image(*core::make_cifar10_analog(), 12,
              "95.0 all methods; PipeMare 3.3X speedup, PipeDream 2.70X memory");
  }
  if (which == "all" || which == "imagenet") {
    run_image(*core::make_imagenet_analog(), 14,
              "GPipe 76.4, PipeMare 75.5, PipeDream 74.7 (misses target); 2.5X");
  }
  if (which == "all" || which == "iwslt") {
    run_translation(*core::make_iwslt_analog(), 32,
                    "GPipe/PipeMare 34.5, PipeDream 0.0; PipeMare 1.7X, tput 0.6X");
  }
  if (which == "all" || which == "wmt") {
    run_translation(*core::make_wmt_analog(), 32,
                    "GPipe 27.5, PipeMare 27.8, PipeDream 0.0; PipeMare 2.6X");
  }
  return 0;
}
