// Reproduces Figure 19 (Appendix E): Hogwild!-style stochastic asynchrony
// with truncated-exponential per-stage delays, with and without the T1
// learning-rate rescheduling, against a synchronous reference. Runs go
// through the BackendRegistry ("hogwild" by default;
// --backend=threaded_hogwild swaps in the W-worker threaded variant).
//
// Paper reference: T1 lifts Hogwild! CIFAR accuracy from 94.51 to 94.80
// (matching sync 95.0-ish) and Transformer BLEU from 3.6 to 33.8.
//
// Usage: fig19_hogwild [--quick=1] [--backend=hogwild|threaded_hogwild]
//          [--workers=0]
#include <iostream>

#include "src/core/experiments.h"
#include "src/core/task.h"
#include "src/core/trainer.h"
#include "src/pipeline/partition.h"
#include "src/util/cli.h"
#include "src/util/table.h"

namespace {

using namespace pipemare;

void run_block(const core::Task& task, const util::Cli& cli, core::TrainerConfig cfg,
               double max_delay, const char* metric) {
  util::Table t({"Run", std::string("Best ") + metric, "Diverged"});
  cfg.engine.discrepancy_correction = false;  // Appendix E studies T1 alone
  cfg.warmup_epochs = 0;
  core::HogwildOptions hw_opts;
  hw_opts.max_delay = max_delay;
  cfg.backend = {"hogwild", hw_opts};
  core::parse_backend_cli(cli, cfg);
  {
    // Fail fast on bad knobs (negative --max-delay / --workers); the
    // try/catch below then only guards model rejection at engine build.
    core::TrainerConfig probe = cfg;
    probe.engine.num_microbatches = probe.num_microbatches();
    core::BackendRegistry::instance().validate(probe.backend, probe.engine);
  }
  for (bool t1 : {false, true}) {
    core::TrainerConfig run_cfg = cfg;
    run_cfg.t1 = t1;
    try {
      auto res = core::train(task, run_cfg);
      t.add_row({t1 ? "Hogwild! + T1" : "Hogwild!", util::fmt(res.best_metric, 1),
                 res.diverged ? "yes" : "no"});
    } catch (const std::invalid_argument& e) {
      // e.g. threaded_hogwild rejecting a (user-supplied) stateful-forward
      // model; in-tree Dropout is counter-based and no longer trips this.
      t.add_row({t1 ? "Hogwild! + T1" : "Hogwild!", "n/a", "-"});
      std::cerr << "fig19: " << cfg.backend.name << " run skipped: " << e.what()
                << '\n';
    }
  }
  core::TrainerConfig sync_cfg = cfg;
  sync_cfg.backend = "sequential";
  sync_cfg.engine.method = pipeline::Method::Sync;
  sync_cfg.t1 = false;
  auto sync = core::train(task, sync_cfg);
  t.add_row({"Sync.", util::fmt(sync.best_metric, 1), sync.diverged ? "yes" : "no"});
  std::cout << t.to_string() << '\n';
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  bool quick = cli.get_bool("quick", false);

  {
    auto task = core::make_cifar10_analog();
    int stages = pipeline::max_stages(task->build_model(), false);
    std::cout << "=== Figure 19 (left): Hogwild! on " << task->name()
              << "  [paper: 94.5 -> 94.8 with T1; sync ~95.0] ===\n\n";
    core::TrainerConfig cfg = core::image_recipe(stages, quick ? 6 : 12);
    run_block(*task, cli, cfg, /*max_delay=*/12.0, "acc");
  }
  {
    auto task = core::make_iwslt_analog();
    int stages = pipeline::max_stages(task->build_model(), false);
    std::cout << "=== Figure 19 (right): Hogwild! on " << task->name()
              << "  [paper: 3.6 -> 33.8 BLEU with T1; sync ~34.5] ===\n\n";
    core::TrainerConfig cfg = core::translation_recipe(stages, quick ? 16 : 30);
    run_block(*task, cli, cfg, /*max_delay=*/8.0, "BLEU");
  }
  return 0;
}
