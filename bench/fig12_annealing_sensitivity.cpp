// Reproduces Figure 12: sensitivity of the final model quality to the T1
// annealing horizon K (number of annealing steps), on both tasks.
//
// Paper reference: the ResNet prefers a small number of annealing epochs
// while the Transformer prefers a large one; a badly chosen K costs final
// quality. Also includes the unclamped-tau ablation (DESIGN.md decision 4:
// we clamp tau >= 1 so T1 never *increases* a stage's LR).
//
// Usage: fig12_annealing_sensitivity [--quick=1]
#include <iostream>

#include "bench/bench_util.h"
#include "src/core/experiments.h"
#include "src/core/task.h"
#include "src/pipeline/partition.h"
#include "src/util/cli.h"

int main(int argc, char** argv) {
  using namespace pipemare;
  util::Cli cli(argc, argv);
  bool quick = cli.get_bool("quick", false);

  std::cout << "=== Figure 12: sensitivity to T1 annealing steps K ===\n\n";

  {
    auto task = core::make_cifar10_analog();
    int stages = pipeline::max_stages(task->build_model(), false);
    util::Table t({"K (steps)", "Best acc", "Diverged"});
    int spe = task->train_size() / 64;  // steps per epoch
    for (int k_epochs : {1, 5, 20, 40}) {
      core::TrainerConfig cfg = core::image_recipe(stages, quick ? 6 : 12);
      cfg.t1_annealing_steps = static_cast<std::int64_t>(k_epochs) * spe;
      auto res = core::train(*task, cfg);
      t.add_row({std::to_string(k_epochs * spe), util::fmt(res.best_metric, 1),
                 res.diverged ? "yes" : "no"});
    }
    std::cout << "-- " << task->name()
              << "  [paper: small K preferred for ResNet]\n"
              << t.to_string() << '\n';
  }

  {
    auto task = core::make_iwslt_analog();
    int stages = pipeline::max_stages(task->build_model(), false);
    util::Table t({"K (steps)", "Best BLEU", "Diverged"});
    for (int k : {30, 150, 300, 600}) {
      core::TrainerConfig cfg = core::translation_recipe(stages, quick ? 16 : 30);
      cfg.t1_annealing_steps = k;
      auto res = core::train(*task, cfg);
      t.add_row({std::to_string(k), util::fmt(res.best_metric, 1),
                 res.diverged ? "yes" : "no"});
    }
    std::cout << "-- " << task->name()
              << "  [paper: large K preferred for Transformer]\n"
              << t.to_string();
  }
  return 0;
}
