// Microbenchmarks for the stability-theory toolkit (root finding, winding
// stability test, quadratic-model simulation). These are google-benchmark
// targets, not paper reproductions.
#include <benchmark/benchmark.h>

#include "src/theory/char_polys.h"
#include "src/theory/quadratic_sim.h"
#include "src/theory/stability.h"

namespace {

using namespace pipemare::theory;

void BM_DurandKernerRoots(benchmark::State& state) {
  int tau = static_cast<int>(state.range(0));
  Polynomial p = char_poly_basic(tau, 0.01, 1.0);
  for (auto _ : state) {
    auto rs = p.roots();
    benchmark::DoNotOptimize(rs);
  }
}
BENCHMARK(BM_DurandKernerRoots)->Arg(8)->Arg(32)->Arg(64);

void BM_WindingStability(benchmark::State& state) {
  int tau = static_cast<int>(state.range(0));
  Polynomial p = char_poly_basic(tau, 0.01, 1.0);
  for (auto _ : state) {
    bool s = p.is_stable();
    benchmark::DoNotOptimize(s);
  }
}
BENCHMARK(BM_WindingStability)->Arg(8)->Arg(64)->Arg(256);

void BM_QuadraticSim(benchmark::State& state) {
  QuadraticSimConfig cfg;
  cfg.tau_fwd = 10;
  cfg.tau_bkwd = 6;
  cfg.delta = 3.0;
  cfg.t2_correction = true;
  for (auto _ : state) {
    auto res = run_quadratic_sim(cfg, 1000);
    benchmark::DoNotOptimize(res);
  }
}
BENCHMARK(BM_QuadraticSim);

}  // namespace

BENCHMARK_MAIN();
