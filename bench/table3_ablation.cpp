// Reproduces Table 3: ablation of the PipeMare techniques.
// CIFAR10 rows: T1 only / T2 only / T1+T2 (warmup unnecessary for images).
// IWSLT rows:   T1 only / T2 only / T1+T2 / T1+T2+T3.
//
// Paper reference: on CIFAR10, T1-only already matches sync (95.0) and
// T2-only is slightly behind (94.5); on IWSLT, T2-only scores 0.0 BLEU,
// T1-only and T1+T2 reach 34.1, and adding T3 closes the gap to 34.5 at
// the cost of 0.6X amortized throughput.
//
// Usage: table3_ablation [--quick=1] [--task=cifar|iwslt|all]
#include <iostream>

#include "bench/bench_util.h"
#include "src/core/experiments.h"
#include "src/core/task.h"
#include "src/pipeline/partition.h"
#include "src/util/cli.h"

int main(int argc, char** argv) {
  using namespace pipemare;
  util::Cli cli(argc, argv);
  bool quick = cli.get_bool("quick", false);
  std::string which = cli.get("task", "all");

  std::cout << "=== Table 3: PipeMare ablation study ===\n\n";

  if (which == "all" || which == "cifar") {
    auto task = core::make_cifar10_analog();
    int stages = pipeline::max_stages(task->build_model(), false);
    core::TrainerConfig cfg = core::image_recipe(stages, quick ? 6 : 12);
    std::vector<core::AblationSpec> specs = {
        {"T1 Only", true, false, 0},
        {"T2 Only", false, true, 0},
        {"T1+T2", true, true, 0},
    };
    auto rows = core::ablation_study(*task, cfg, specs, 1.0);
    benchutil::print_rows(
        "-- " + task->name() +
            "  [paper: T1 95.0 (3.3X), T2 94.5 (3.2X), T1+T2 95.0 (3.3X)]",
        "acc", rows);
  }

  if (which == "all" || which == "iwslt") {
    auto task = core::make_iwslt_analog();
    int stages = pipeline::max_stages(task->build_model(), false);
    core::TrainerConfig cfg = core::translation_recipe(stages, quick ? 16 : 32);
    std::vector<core::AblationSpec> specs = {
        {"T1 Only", true, false, 0},
        {"T2 Only", false, true, 0},
        {"T1+T2", true, true, 0},
        {"T1+T2+T3", true, true, cfg.warmup_epochs > 0 ? cfg.warmup_epochs : 2},
    };
    auto rows = core::ablation_study(*task, cfg, specs, 5.0);
    benchutil::print_rows(
        "-- " + task->name() +
            "  [paper: T1 34.1 (1.6X), T2 0.0, T1+T2 34.1 (1.6X), +T3 34.5 (1.7X)]",
        "BLEU", rows);
  }
  return 0;
}
