// Reproduces Figure 5.
// (a) Quadratic model with forward/backward delay discrepancy
//     (tau_fwd=10, tau_bkwd=6, lambda=1, alpha fixed): increasing the
//     sensitivity Delta in {0, 3, 5} drives divergence.
// (b) Largest-magnitude eigenvalue of the companion matrix vs step size
//     for: discrepancy without correction, no discrepancy, and the T2
//     discrepancy correction with D = 0.1 (Delta = 5).
#include <iostream>

#include "src/theory/char_polys.h"
#include "src/theory/quadratic_sim.h"
#include "src/theory/stability.h"
#include "src/util/cli.h"
#include "src/util/table.h"

int main(int argc, char** argv) {
  using namespace pipemare;
  util::Cli cli(argc, argv);
  (void)cli;
  const int tf = 10, tb = 6;
  const double lambda = 1.0;

  std::cout << "=== Figure 5(a): quadratic model with delay discrepancy ===\n";
  std::cout << "tau_fwd=10 tau_bkwd=6 alpha=0.12 (paper: Delta=5 diverges)\n\n";
  util::Table traj({"iter", "Delta=0", "Delta=3", "Delta=5"});
  std::vector<std::vector<double>> losses;
  for (double delta : {0.0, 3.0, 5.0}) {
    theory::QuadraticSimConfig cfg;
    cfg.tau_fwd = tf;
    cfg.tau_bkwd = tb;
    cfg.delta = delta;
    cfg.alpha = 0.12;
    cfg.seed = 23;
    cfg.divergence_limit = 1e4;
    losses.push_back(run_quadratic_sim(cfg, 250).losses);
  }
  for (int it = 0; it <= 250; it += 25) {
    int i = std::min(it, 249);
    traj.add_row({std::to_string(it), util::fmt(losses[0][static_cast<std::size_t>(i)], 3),
                  util::fmt(losses[1][static_cast<std::size_t>(i)], 3),
                  util::fmt(losses[2][static_cast<std::size_t>(i)], 3)});
  }
  std::cout << traj.to_string() << '\n';

  std::cout << "=== Figure 5(b): largest eigenvalue vs step size (Delta=5) ===\n";
  std::cout << "(paper: T2 with D=0.1 pulls the eigenvalue back toward the "
               "no-discrepancy curve)\n\n";
  double delta = 5.0;
  double gamma = theory::gamma_from_decay(0.1, tf - tb);
  util::Table eig({"alpha", "discrepancy, no corr.", "no discrepancy", "T2 (D=0.1)"});
  for (double a = 0.01; a <= 1.0001; a *= std::pow(100.0, 1.0 / 12.0)) {
    double rho_disc =
        theory::char_poly_discrepancy(tf, tb, a, lambda, delta).spectral_radius();
    double rho_none = theory::char_poly_basic(tf, a, lambda).spectral_radius();
    double rho_t2 = theory::char_poly_t2(tf, tb, a, lambda, delta, gamma).spectral_radius();
    eig.add_row({util::fmt(a, 4), util::fmt(rho_disc, 4), util::fmt(rho_none, 4),
                 util::fmt(rho_t2, 4)});
  }
  std::cout << eig.to_string() << '\n';

  double a_disc = theory::largest_stable_alpha([&](double a) {
    return theory::char_poly_discrepancy(tf, tb, a, lambda, delta);
  });
  double a_none = theory::largest_stable_alpha(
      [&](double a) { return theory::char_poly_basic(tf, a, lambda); });
  double a_t2 = theory::largest_stable_alpha([&](double a) {
    return theory::char_poly_t2(tf, tb, a, lambda, delta, gamma);
  });
  std::cout << "stability thresholds: uncorrected " << util::fmt(a_disc, 4)
            << "  <  T2-corrected " << util::fmt(a_t2, 4) << "  <  no-discrepancy "
            << util::fmt(a_none, 4) << '\n';
  return 0;
}
