// Reproduces Figure 8: largest stable step size vs the discrepancy
// sensitivity Delta in [-100, 100], comparing the original quadratic model
// against the T2-corrected model (tau_fwd=40, tau_bkwd=10,
// gamma = gamma* = 1 - 2/(tau_f - tau_b + 1)).
//
// Paper claim: T2 consistently enlarges the stable range for Delta >= 0,
// and can occasionally shrink it for Delta < 0.
#include <cmath>
#include <iostream>

#include "src/theory/char_polys.h"
#include "src/theory/stability.h"
#include "src/util/cli.h"
#include "src/util/table.h"

int main(int argc, char** argv) {
  using namespace pipemare;
  util::Cli cli(argc, argv);
  int tf = cli.get_int("tau-fwd", 40);
  int tb = cli.get_int("tau-bkwd", 10);
  double lambda = 1.0;
  double gamma = theory::gamma_star(tf, tb);

  std::cout << "=== Figure 8: largest stable alpha vs Delta (tau_f=" << tf
            << ", tau_b=" << tb << ", gamma*=" << util::fmt(gamma, 4) << ") ===\n\n";
  util::Table t({"Delta", "original", "T2 corrected", "T2 helps"});
  int wins = 0, total_pos = 0;
  for (double delta : {-100.0, -50.0, -20.0, -10.0, -5.0, -2.0, -1.0, 0.5, 1.0, 2.0,
                       5.0, 10.0, 20.0, 50.0, 100.0}) {
    double orig = theory::largest_stable_alpha([&](double a) {
      return theory::char_poly_discrepancy(tf, tb, a, lambda, delta);
    });
    double corr = theory::largest_stable_alpha([&](double a) {
      return theory::char_poly_t2(tf, tb, a, lambda, delta, gamma);
    });
    bool helps = corr > orig;
    if (delta > 0) {
      ++total_pos;
      if (helps) ++wins;
    }
    t.add_row({util::fmt(delta, 1), util::fmt(orig, 6), util::fmt(corr, 6),
               helps ? "yes" : "no"});
  }
  std::cout << t.to_string() << '\n';
  std::cout << "T2 enlarged the stable range for " << wins << "/" << total_pos
            << " positive-Delta points (paper: always for Delta >= 0; "
               "occasionally negative effect for Delta < 0)\n";
  return 0;
}
