// Zero-overhead check for the annotated sync wrappers (src/util/sync.h):
// times util::Mutex / util::MutexLock / util::CondVar against the raw
// std::mutex / std::lock_guard / std::condition_variable they wrap, on the
// operations the runtime's hot paths issue — uncontended lock/unlock, the
// scoped-guard round trip, and a notify with no waiter. The annotations
// are compile-time only, so each util row must match its std row to noise;
// a real gap would mean the wrappers grew runtime behavior and the "free
// contracts" claim in the README is stale.
//
// google-benchmark target: bench_micro_sync
//   [--benchmark_filter=...] [--benchmark_min_time=...]
#include <benchmark/benchmark.h>

#include <condition_variable>
#include <mutex>

#include "src/util/sync.h"

namespace {

void BM_StdMutexLockUnlock(benchmark::State& state) {
  std::mutex m;
  for (auto _ : state) {
    m.lock();
    benchmark::DoNotOptimize(&m);
    m.unlock();
  }
}
BENCHMARK(BM_StdMutexLockUnlock);

void BM_UtilMutexLockUnlock(benchmark::State& state) {
  pipemare::util::Mutex m;
  for (auto _ : state) {
    m.lock();
    benchmark::DoNotOptimize(&m);
    m.unlock();
  }
}
BENCHMARK(BM_UtilMutexLockUnlock);

void BM_StdLockGuard(benchmark::State& state) {
  std::mutex m;
  for (auto _ : state) {
    std::lock_guard<std::mutex> lock(m);
    benchmark::DoNotOptimize(&m);
  }
}
BENCHMARK(BM_StdLockGuard);

void BM_UtilMutexLockGuard(benchmark::State& state) {
  pipemare::util::Mutex m;
  for (auto _ : state) {
    pipemare::util::MutexLock lock(m);
    benchmark::DoNotOptimize(&m);
  }
}
BENCHMARK(BM_UtilMutexLockGuard);

void BM_StdCondVarNotifyNoWaiter(benchmark::State& state) {
  std::condition_variable cv;
  for (auto _ : state) {
    cv.notify_one();
    benchmark::DoNotOptimize(&cv);
  }
}
BENCHMARK(BM_StdCondVarNotifyNoWaiter);

void BM_UtilCondVarNotifyNoWaiter(benchmark::State& state) {
  pipemare::util::CondVar cv;
  for (auto _ : state) {
    cv.notify_one();
    benchmark::DoNotOptimize(&cv);
  }
}
BENCHMARK(BM_UtilCondVarNotifyNoWaiter);

}  // namespace

BENCHMARK_MAIN();
