// Reproduces Figures 4 and 10: metric-vs-epoch curves when incrementally
// combining the PipeMare techniques (Sync baseline vs T1, T1+T2,
// T1+T2+T3), at two pipeline granularities:
//   Figure 10: one stage per weight unit (the Section 4 setting),
//   Figure 4:  2x that, splitting each weight and bias into separate
//              stages (the stress test; 214/186 stages in the paper).
//
// Paper reference: at the fine granularity, T1 alone converges but lags,
// T2 closes most of the image-task gap, and T3 is needed for the
// Transformer to match sync.
//
// Usage: fig4_fig10_ablation_curves [--quick=1] [--split-bias=1]
#include <iostream>

#include "bench/bench_util.h"
#include "src/core/experiments.h"
#include "src/core/task.h"
#include "src/pipeline/partition.h"
#include "src/util/cli.h"

int main(int argc, char** argv) {
  using namespace pipemare;
  util::Cli cli(argc, argv);
  bool quick = cli.get_bool("quick", false);

  for (bool split_bias : {false, true}) {
    std::cout << (split_bias ? "=== Figure 4 regime: 2x stages (weight/bias split) ===\n\n"
                             : "=== Figure 10 regime: 1x stages (one per weight) ===\n\n");

    {
      auto task = core::make_cifar10_analog();
      int stages = pipeline::max_stages(task->build_model(), split_bias);
      core::TrainerConfig cfg = core::image_recipe(stages, quick ? 6 : 12);
      cfg.engine.split_bias = split_bias;
      std::vector<core::AblationSpec> specs = {
          {"T1", true, false, 0},
          {"T1+T2", true, true, 0},
          {"T1+T2+T3", true, true, 2},
      };
      auto rows = core::ablation_study(*task, cfg, specs, 1.0);
      benchutil::print_curves("-- " + task->name() + " (" + std::to_string(stages) +
                                  " stages), test accuracy vs epoch:",
                              rows);
    }
    if (!quick || !split_bias) {
      auto task = core::make_iwslt_analog();
      int stages = pipeline::max_stages(task->build_model(), split_bias);
      core::TrainerConfig cfg = core::translation_recipe(stages, quick ? 16 : 32);
      cfg.engine.split_bias = split_bias;
      std::vector<core::AblationSpec> specs = {
          {"T1", true, false, 0},
          {"T1+T2", true, true, 0},
          {"T1+T2+T3", true, true, cfg.warmup_epochs},
      };
      auto rows = core::ablation_study(*task, cfg, specs, 5.0);
      benchutil::print_curves("-- " + task->name() + " (" + std::to_string(stages) +
                                  " stages), BLEU vs epoch:",
                              rows, 4);
    }
  }
  return 0;
}
