// Reproduces Figure 7: why naive asynchronous pipeline-parallel training
// diverges on a real DNN. Tracks the parameter norm and test accuracy of:
//   - synchronous training,
//   - PipeDream-style (tau_fwd = tau_bkwd: delayed but consistent),
//   - PipeMare-style naive (tau_fwd != tau_bkwd: delay discrepancy),
//   - the same two at 4x the delay (fewer microbatches = larger tau).
// No PipeMare techniques are enabled here; this is the motivation figure.
//
// Paper reference: large fixed delay alone can diverge; forward/backward
// discrepancy makes divergence strictly easier (diverges at delays where
// the consistent variant still trains).
//
// Usage: fig7_divergence_dnn [--quick=1]
#include <iostream>

#include "src/core/task.h"
#include "src/core/trainer.h"
#include "src/pipeline/partition.h"
#include "src/util/cli.h"
#include "src/util/table.h"

int main(int argc, char** argv) {
  using namespace pipemare;
  util::Cli cli(argc, argv);
  bool quick = cli.get_bool("quick", false);

  auto task = core::make_cifar10_analog(7);
  int stages = pipeline::max_stages(task->build_model(), false);
  int epochs = quick ? 4 : 8;

  struct Variant {
    std::string label;
    pipeline::Method method;
    int microbatch;  // smaller N = larger delay
  };
  std::vector<Variant> variants = {
      {"Sync", pipeline::Method::Sync, 8},
      {"tau_f=tau_b (PipeDream-style)", pipeline::Method::PipeDream, 8},
      {"tau_f!=tau_b (naive async)", pipeline::Method::PipeMare, 8},
      {"tau_f=tau_b, 4x delay", pipeline::Method::PipeDream, 32},
      {"tau_f!=tau_b, 4x delay", pipeline::Method::PipeMare, 32},
  };

  std::cout << "=== Figure 7: divergence of naive asynchronous training ===\n";
  std::cout << "(" << task->name() << ", " << stages
            << " stages, aggressive LR, no T1/T2/T3)\n\n";
  util::Table t({"Variant", "tau_fwd(stage 1)", "Best acc", "Final |w|", "Diverged"});
  std::vector<core::TrainResult> results;
  for (const auto& v : variants) {
    core::TrainerConfig cfg;
    cfg.engine.method = v.method;
    cfg.engine.num_stages = stages;
    cfg.epochs = epochs;
    cfg.minibatch_size = 64;
    cfg.microbatch_size = v.microbatch;
    cfg.schedule = core::TrainerConfig::Sched::Constant;
    cfg.lr = 0.15;  // tolerated by sync, too hot for large-delay async
    cfg.weight_decay = 5e-4;
    cfg.seed = 3;
    // Diverging runs end with a divergence record (observed loss, blown-up
    // ||w||), so "Final |w|" and the trajectory table show the blow-up
    // point itself rather than a silently truncated curve.
    auto res = core::train(*task, cfg);
    double tau1 = v.method == pipeline::Method::Sync
                      ? 0.0
                      : static_cast<double>(2 * stages - 1) /
                            (64 / v.microbatch);
    double final_norm =
        res.curve.empty() ? 0.0 : res.curve.back().param_norm;
    t.add_row({v.label, util::fmt(tau1, 2), util::fmt(res.best_metric, 1),
               util::fmt(final_norm, 1), res.diverged ? "yes" : "no"});
    results.push_back(std::move(res));
  }
  std::cout << t.to_string() << '\n';

  std::cout << "parameter-norm trajectories (epoch: |w| per variant):\n";
  std::vector<std::string> header = {"epoch"};
  for (const auto& v : variants) header.push_back(v.label);
  util::Table norms(std::move(header));
  for (int e = 0; e < epochs; ++e) {
    std::vector<std::string> row = {std::to_string(e + 1)};
    for (const auto& r : results) {
      row.push_back(e < static_cast<int>(r.curve.size())
                        ? util::fmt(r.curve[static_cast<std::size_t>(e)].param_norm, 1)
                        : "div");
    }
    norms.add_row(std::move(row));
  }
  std::cout << norms.to_string();
  return 0;
}
