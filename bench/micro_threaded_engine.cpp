// Wall-clock comparison of the "sequential" (analytic PipelineEngine) and
// "threaded" (stage-per-thread ThreadedEngine) registry backends on an
// identical training step. The two produce bitwise-identical results
// (tests/test_threaded_engine, tests/test_backend_registry); this benchmark
// measures the real concurrency the threaded backend adds. On a host with
// >= P cores the threaded rows should show a >= 2x higher items/s at P = 4
// once per-stage compute dominates queue overhead; on a single-core host
// the two degenerate to the same throughput minus scheduling overhead.
//
// google-benchmark target: bench_micro_threaded_engine
//   [--benchmark_filter=...] [--benchmark_min_time=...]
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstddef>
#include <string>

#include "bench/bench_util.h"
#include "src/core/engine_backend.h"

namespace {

using namespace pipemare;

constexpr int kLayers = 8;
constexpr int kWidth = 192;
constexpr int kClasses = 10;
constexpr int kMicroBatches = 8;
constexpr int kMicroSize = 4;

pipeline::EngineConfig bench_config(int stages) {
  pipeline::EngineConfig ec;
  ec.method = pipeline::Method::PipeMare;
  ec.num_stages = stages;
  ec.num_microbatches = kMicroBatches;
  return ec;
}

void BM_PipelineBackendStep(benchmark::State& state, const std::string& backend) {
  auto stages = static_cast<int>(state.range(0));
  auto be = core::BackendRegistry::instance().create(
      benchutil::make_bench_mlp(kLayers, kWidth, kClasses),
      core::BackendConfig{backend}, bench_config(stages), /*seed=*/1);
  benchutil::MlpWorkload w(kMicroBatches, kMicroSize, kWidth, kClasses);
  for (auto _ : state) {
    auto res = benchutil::backend_step(*be, w);
    benchmark::DoNotOptimize(res);
  }
  state.SetItemsProcessed(state.iterations() * kMicroBatches * kMicroSize);
  // Peak mailbox occupancy across stages (threaded backend only): with the
  // credit-based 1F1B lane bounds these stay at most min(N, P - s + 1) per
  // lane for stage s (the old configuration buffered up to N per lane).
  if (auto* threaded = dynamic_cast<core::ThreadedBackend*>(be.get())) {
    std::size_t fwd_peak = 0;
    std::size_t bwd_peak = 0;
    std::size_t inflight_peak = 0;
    for (const auto& ls : threaded->engine().lane_stats()) {
      fwd_peak = std::max(fwd_peak, ls.fwd_high_water);
      bwd_peak = std::max(bwd_peak, ls.bwd_high_water);
      inflight_peak = std::max(inflight_peak, ls.inflight_high_water);
    }
    state.counters["peak_fwd_lane"] = static_cast<double>(fwd_peak);
    state.counters["peak_bwd_lane"] = static_cast<double>(bwd_peak);
    state.counters["peak_inflight"] = static_cast<double>(inflight_peak);
  }
}
BENCHMARK_CAPTURE(BM_PipelineBackendStep, sequential, "sequential")
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_PipelineBackendStep, threaded, "threaded")
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
