// Wall-clock comparison of the sequential analytic PipelineEngine and the
// stage-per-thread ThreadedEngine on an identical training step. The two
// engines produce bitwise-identical results (tests/test_threaded_engine);
// this benchmark measures the real concurrency the threaded engine adds.
// On a host with >= P cores the ThreadedEngine rows should show a >= 2x
// higher items/s at P = 4 once per-stage compute dominates queue overhead;
// on a single-core host the two degenerate to the same throughput minus
// scheduling overhead.
//
// google-benchmark target: bench_micro_threaded_engine
//   [--benchmark_filter=...] [--benchmark_min_time=...]
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstddef>
#include <memory>

#include "src/nn/activations.h"
#include "src/nn/heads.h"
#include "src/nn/linear.h"
#include "src/nn/model.h"
#include "src/pipeline/engine.h"
#include "src/pipeline/threaded_engine.h"
#include "src/util/rng.h"

namespace {

using namespace pipemare;

constexpr int kLayers = 8;
constexpr int kWidth = 192;
constexpr int kClasses = 10;
constexpr int kMicroBatches = 8;
constexpr int kMicroSize = 4;

/// A deep MLP with uniform per-layer cost, so an even weight-unit
/// partition is also an even compute partition across stages.
nn::Model make_mlp() {
  nn::Model m;
  for (int i = 0; i < kLayers; ++i) {
    m.add(std::make_unique<nn::Linear>(kWidth, kWidth, /*relu_init=*/true));
    m.add(std::make_unique<nn::ReLU>());
  }
  m.add(std::make_unique<nn::Linear>(kWidth, kClasses));
  return m;
}

struct Workload {
  std::vector<nn::Flow> inputs;
  std::vector<tensor::Tensor> targets;
  nn::ClassificationXent head;

  Workload() {
    util::Rng rng(3);
    for (int m = 0; m < kMicroBatches; ++m) {
      nn::Flow f;
      f.x = tensor::Tensor({kMicroSize, kWidth});
      for (std::int64_t i = 0; i < f.x.size(); ++i) {
        f.x[i] = static_cast<float>(rng.normal());
      }
      tensor::Tensor t({kMicroSize});
      for (int j = 0; j < kMicroSize; ++j) {
        t[j] = static_cast<float>(rng.randint(kClasses));
      }
      inputs.push_back(std::move(f));
      targets.push_back(std::move(t));
    }
  }
};

pipeline::EngineConfig bench_config(int stages) {
  pipeline::EngineConfig ec;
  ec.method = pipeline::Method::PipeMare;
  ec.num_stages = stages;
  ec.num_microbatches = kMicroBatches;
  return ec;
}

template <class Engine>
void run_step(Engine& engine, const Workload& w) {
  auto res = engine.forward_backward(w.inputs, w.targets, w.head);
  benchmark::DoNotOptimize(res);
  for (std::size_t i = 0; i < engine.weights().size(); ++i) {
    engine.weights()[i] -= 1e-4F * engine.gradients()[i];
  }
  engine.commit_update();
}

void BM_SequentialEngineStep(benchmark::State& state) {
  auto stages = static_cast<int>(state.range(0));
  nn::Model model = make_mlp();
  pipeline::PipelineEngine engine(model, bench_config(stages), 1);
  Workload w;
  for (auto _ : state) {
    run_step(engine, w);
  }
  state.SetItemsProcessed(state.iterations() * kMicroBatches * kMicroSize);
}
BENCHMARK(BM_SequentialEngineStep)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_ThreadedEngineStep(benchmark::State& state) {
  auto stages = static_cast<int>(state.range(0));
  nn::Model model = make_mlp();
  pipeline::ThreadedEngine engine(model, bench_config(stages), 1);
  Workload w;
  for (auto _ : state) {
    run_step(engine, w);
  }
  state.SetItemsProcessed(state.iterations() * kMicroBatches * kMicroSize);
  // Peak mailbox occupancy across stages: with the credit-based 1F1B lane
  // bounds these stay at most min(N, P - s + 1) per lane for stage s
  // (the old configuration buffered up to N per lane).
  std::size_t fwd_peak = 0;
  std::size_t bwd_peak = 0;
  std::size_t inflight_peak = 0;
  for (const auto& ls : engine.lane_stats()) {
    fwd_peak = std::max(fwd_peak, ls.fwd_high_water);
    bwd_peak = std::max(bwd_peak, ls.bwd_high_water);
    inflight_peak = std::max(inflight_peak, ls.inflight_high_water);
  }
  state.counters["peak_fwd_lane"] = static_cast<double>(fwd_peak);
  state.counters["peak_bwd_lane"] = static_cast<double>(bwd_peak);
  state.counters["peak_inflight"] = static_cast<double>(inflight_peak);
}
BENCHMARK(BM_ThreadedEngineStep)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
