// Reproduces Figure 16: effect of the discrepancy correction on the
// quadratic model when activation recompute is used.
// Parameters from the paper: Delta=10, Phi=-5, tau_fwd=10, tau_bkwd=1,
// tau_recomp=4, lambda=1. Series:
//   - discrepancy, no correction     (three-delay model, raw weights)
//   - no discrepancy (Delta=Phi=0)   (plain delayed SGD)
//   - no recompute (Phi=0)           (T2-corrected two-delay model)
//   - T2 correction with D = 0.1     (three-delay model, corrected)
#include <cmath>
#include <iostream>

#include "src/theory/char_polys.h"
#include "src/theory/stability.h"
#include "src/util/cli.h"
#include "src/util/table.h"

int main(int argc, char** argv) {
  using namespace pipemare;
  util::Cli cli(argc, argv);
  (void)cli;
  const int tf = 10, tb = 1, tr = 4;
  const double lambda = 1.0, delta = 10.0, phi = -5.0;
  const double gamma = theory::gamma_from_decay(0.1, tf - tb);

  std::cout << "=== Figure 16: recompute + discrepancy correction "
               "(Delta=10, Phi=-5, tau=(10,4,1)) ===\n\n";
  util::Table t({"alpha", "discr., no corr.", "no discr.", "no recompute (Phi=0)",
                 "T2 (D=0.1)"});
  for (double a = 1e-3; a <= 1.0001; a *= std::pow(1000.0, 1.0 / 15.0)) {
    double rho_disc =
        theory::char_poly_recompute_uncorrected(tf, tb, tr, a, lambda, delta, phi)
            .spectral_radius();
    double rho_none = theory::char_poly_basic(tf, a, lambda).spectral_radius();
    double rho_norec =
        theory::char_poly_t2(tf, tb, a, lambda, delta, gamma).spectral_radius();
    double rho_t2 =
        theory::char_poly_recompute(tf, tb, tr, a, lambda, delta, phi, gamma)
            .spectral_radius();
    t.add_row({util::fmt(a, 4), util::fmt(rho_disc, 4), util::fmt(rho_none, 4),
               util::fmt(rho_norec, 4), util::fmt(rho_t2, 4)});
  }
  std::cout << t.to_string() << '\n';

  double a_disc = theory::largest_stable_alpha([&](double a) {
    return theory::char_poly_recompute_uncorrected(tf, tb, tr, a, lambda, delta, phi);
  });
  double a_t2 = theory::largest_stable_alpha([&](double a) {
    return theory::char_poly_recompute(tf, tb, tr, a, lambda, delta, phi, gamma);
  });
  std::cout << "stability thresholds: uncorrected " << util::fmt(a_disc, 5)
            << "  vs  T2-corrected " << util::fmt(a_t2, 5)
            << "  (paper: correction increases the stable range and pulls the\n"
               " eigenvalue toward the no-discrepancy curve)\n";
  return 0;
}
