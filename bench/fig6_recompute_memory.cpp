// Reproduces Figure 6: per-stage cached-activation counts for PipeMare
// with and without PipeMare Recompute, for the paper's example of 16
// stages split into 4 segments. Bars are printed as counts plus an ASCII
// bar chart (green bars = with recompute; orange extra = without).
#include <iostream>

#include "src/hwmodel/activation_memory.h"
#include "src/util/cli.h"
#include "src/util/table.h"

int main(int argc, char** argv) {
  using namespace pipemare;
  util::Cli cli(argc, argv);
  int p = cli.get_int("stages", 16);
  int s = cli.get_int("segment", 4);

  auto base = hwmodel::pipemare_activation_counts(p);
  auto rec = hwmodel::pipemare_recompute_counts(p, s);

  std::cout << "=== Figure 6: cached activations per stage (P=" << p << ", "
            << p / s << " segments of " << s << ") ===\n\n";
  util::Table t({"stage", "w/ recompute", "w/o recompute", "bar (#=recompute, +=extra)"});
  for (int i = 0; i < p; ++i) {
    auto r = rec[static_cast<std::size_t>(i)];
    auto b = base[static_cast<std::size_t>(i)];
    std::string bar(static_cast<std::size_t>(r), '#');
    bar += std::string(static_cast<std::size_t>(b - r), '+');
    t.add_row({std::to_string(i), std::to_string(r), std::to_string(b), bar});
  }
  std::cout << t.to_string() << '\n';
  std::cout << "totals: with recompute " << hwmodel::total_activations(rec)
            << "  vs without " << hwmodel::total_activations(base) << "  (= P^2 = "
            << p * p << ")\n";
  int s_opt = hwmodel::optimal_segment_size(p);
  std::cout << "optimal segment size S* = " << s_opt << " ~ sqrt(P); total at S*: "
            << hwmodel::total_activations(hwmodel::pipemare_recompute_counts(p, s_opt))
            << "  (paper: O(P^(3/2)) vs O(P^2))\n";
  return 0;
}
