// Work-stealing micro bench: uniform vs balanced vs stealing on the
// skewed model from bench/micro_partition.cpp.
//
// The uniform-by-count split piles the two wide layers onto one stage, so
// the stage-per-thread "threaded" engine is bounded by that stage while
// its siblings burn pop-wait. The bench compares three remedies for the
// same workload:
//   threaded/uniform    the baseline (one thread per stage, skewed load)
//   threaded/balanced   the static fix (cost-model split, PR 4)
//   steal/uniform       the runtime fix (threaded_steal: W workers over
//                       the *uniform* split, idle workers stealing from
//                       the busy-share leader)
// plus steal/off as a sanity row (stealing disabled ~= threaded/uniform).
//
// For the stage-per-thread engine, per-stage busy spread IS per-thread
// busy spread. For the stealing engine the per-stage spread is invariant
// (a stage's compute is its compute wherever it runs), so the number that
// shows the win is the per-*worker* busy spread — with stealing enabled it
// should drop toward 1.0 while threaded/uniform stays pinned at the skew.
// Loss curves are bitwise identical across the uniform-partition rows by
// construction (only scheduling differs); the balanced row moves stage
// boundaries, which changes PipeMare's delay distribution and therefore
// the trajectory. The throughput gain needs >= `stages` real cores; the
// busy-spread reduction shows on any machine.
//
// Usage: bench_micro_steal [--quick=1] [--steps=40] [--stages=4]
//          [--microbatches=4] [--workers=0 (= stages)] [--seed=3]
//          [--json=1]  (also write the BENCH_steal.json snapshot)
//          [--trace=<file>]    (Chrome trace of the whole bench run)
//          [--metrics=<file>]  (metrics registry snapshot at exit)

#include <chrono>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_json.h"
#include "bench/bench_util.h"
#include "src/core/engine_backend.h"
#include "src/core/stage_load.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/pipeline/partition.h"
#include "src/sched/stealing_engine.h"
#include "src/util/cli.h"
#include "src/util/table.h"

namespace {

using namespace pipemare;

constexpr int kWide = 256;
constexpr int kClasses = 10;

struct RunResult {
  std::string label;
  double steps_per_sec = 0.0;
  double worker_spread = 0.0;   ///< max/mean busy over execution threads
  double loss = 0.0;            ///< last-step loss (bitwise-equal across rows)
  std::uint64_t steals = 0;
  double stolen_busy_share = 0.0;  ///< share of busy ns executed by thieves
};

RunResult run_backend(const std::string& label, const core::BackendConfig& backend,
                      pipeline::PartitionStrategy strategy,
                      const benchutil::MlpWorkload& workload, int stages,
                      int microbatches, int steps, std::uint64_t seed) {
  pipeline::EngineConfig ec;
  ec.method = pipeline::Method::PipeMare;
  ec.num_stages = stages;
  ec.num_microbatches = microbatches;
  ec.partition.strategy = strategy;
  ec.partition.probe = std::make_shared<const nn::Flow>(workload.inputs.at(0));

  auto built = core::BackendRegistry::instance().create(
      benchutil::make_skewed_mlp(kWide), backend, ec, seed);

  // Warmup fills the version ring and faults in buffers off the clock.
  for (int s = 0; s < 2; ++s) benchutil::backend_step(*built, workload);
  built->reset_stage_stats();

  pipeline::StepResult last{};
  auto t0 = std::chrono::steady_clock::now();
  for (int s = 0; s < steps; ++s) last = benchutil::backend_step(*built, workload);
  auto t1 = std::chrono::steady_clock::now();

  RunResult r;
  r.label = label;
  double secs = std::chrono::duration<double>(t1 - t0).count();
  r.steps_per_sec = secs > 0.0 ? steps / secs : 0.0;
  r.loss = last.loss;

  // Busy spread over *execution threads*: stage slots for the
  // stage-per-thread engine, worker slots for the stealing engine.
  if (auto* steal = dynamic_cast<core::ThreadedStealBackend*>(built.get())) {
    r.worker_spread = core::StageLoadObserver::busy_spread(steal->engine().worker_stats());
    std::uint64_t busy = 0;
    std::uint64_t stolen = 0;
    for (const auto& st : steal->engine().stage_stats()) {
      busy += st.busy_ns;
      stolen += st.stolen_ns;
      r.steals += st.stolen_items;
    }
    r.stolen_busy_share = busy > 0 ? static_cast<double>(stolen) / static_cast<double>(busy)
                                   : 0.0;
  } else {
    r.worker_spread = core::StageLoadObserver::busy_spread(built->stage_stats());
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  const bool quick = cli.get_bool("quick", false);
  const int steps = cli.get_int("steps", quick ? 6 : 40);
  const int stages = cli.get_int("stages", 4);
  const int microbatches = cli.get_int("microbatches", 4);
  int workers = cli.get_int("workers", 0);
  if (workers <= 0) workers = stages;
  const bool json = cli.get_bool("json", false);
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 3));
  const std::string trace_path = cli.get("trace", "");
  const std::string metrics_path = cli.get("metrics", "");
  if (!trace_path.empty()) obs::TraceRecorder::instance().enable();

  benchutil::MlpWorkload workload(microbatches, /*micro_size=*/32, kWide, kClasses,
                                  seed);

  std::cout << "micro_steal: skewed MLP (micro_partition model), P=" << stages
            << ", N=" << microbatches << ", W=" << workers << ", " << steps
            << " steps\n\n";

  std::vector<RunResult> rows;
  rows.push_back(run_backend("threaded/uniform", core::BackendConfig("threaded"),
                             pipeline::PartitionStrategy::Uniform, workload, stages,
                             microbatches, steps, seed));
  rows.push_back(run_backend("threaded/balanced", core::BackendConfig("threaded"),
                             pipeline::PartitionStrategy::Balanced, workload, stages,
                             microbatches, steps, seed));
  core::StealOptions off;
  off.workers = workers;
  off.mode = sched::StealMode::Disabled;
  rows.push_back(run_backend("steal/off (sanity)",
                             core::BackendConfig("threaded_steal", off),
                             pipeline::PartitionStrategy::Uniform, workload, stages,
                             microbatches, steps, seed));
  core::StealOptions load;
  load.workers = workers;
  load.mode = sched::StealMode::LoadAware;
  rows.push_back(run_backend("steal/load-aware",
                             core::BackendConfig("threaded_steal", load),
                             pipeline::PartitionStrategy::Uniform, workload, stages,
                             microbatches, steps, seed));

  util::Table t({"run", "steps/s", "worker busy spread", "steals", "stolen busy",
                 "last loss"});
  for (const auto& r : rows) {
    t.add_row({r.label, util::fmt(r.steps_per_sec, 1), util::fmt(r.worker_spread, 2),
               std::to_string(r.steals),
               util::fmt(100.0 * r.stolen_busy_share, 1) + "%",
               util::fmt(r.loss, 6)});
  }
  std::cout << t.to_string() << '\n';

  const RunResult& uniform = rows[0];
  const RunResult& stealing = rows[3];
  std::cout << "stealing vs stage-per-thread on the uniform split: worker busy "
               "spread "
            << util::fmt(uniform.worker_spread, 2) << " -> "
            << util::fmt(stealing.worker_spread, 2) << ", throughput "
            << util::fmt(uniform.steps_per_sec, 1) << " -> "
            << util::fmt(stealing.steps_per_sec, 1) << " steps/s ("
            << util::fmt_x(stealing.steps_per_sec /
                           std::max(1e-9, uniform.steps_per_sec))
            << "); the uniform-partition rows' losses are bitwise-identical "
               "by construction (the balanced row's split changes the delay "
               "distribution, hence its trajectory).\n";

  if (json) {
    benchutil::Json root = benchutil::Json::object();
    root.set("bench", "micro_steal");
    root.set("machine", benchutil::machine_info());
    benchutil::Json params = benchutil::Json::object();
    params.set("stages", stages);
    params.set("microbatches", microbatches);
    params.set("workers", workers);
    params.set("steps", steps);
    params.set("seed", static_cast<std::int64_t>(seed));
    root.set("params", std::move(params));
    benchutil::Json runs = benchutil::Json::array();
    for (const auto& r : rows) {
      benchutil::Json j = benchutil::Json::object();
      j.set("label", r.label);
      j.set("steps_per_sec", r.steps_per_sec);
      j.set("worker_busy_spread", r.worker_spread);
      j.set("steals", r.steals);
      j.set("stolen_busy_share", r.stolen_busy_share);
      j.set("last_loss", r.loss);
      runs.push(std::move(j));
    }
    root.set("runs", std::move(runs));
    benchutil::Json summary = benchutil::Json::object();
    summary.set("worker_spread_uniform", uniform.worker_spread);
    summary.set("worker_spread_stealing", stealing.worker_spread);
    summary.set("throughput_gain",
                stealing.steps_per_sec / std::max(1e-9, uniform.steps_per_sec));
    root.set("summary", std::move(summary));
    benchutil::write_bench_json("BENCH_steal.json", root);
  }
  if (!trace_path.empty()) {
    obs::TraceRecorder::instance().disable();
    obs::write_chrome_trace(trace_path);
    std::cout << "wrote " << trace_path << " ("
              << obs::TraceRecorder::instance().recorded() << " events, "
              << obs::TraceRecorder::instance().dropped() << " dropped)\n";
  }
  if (!metrics_path.empty()) {
    obs::MetricsRegistry::instance().write_json(metrics_path);
    std::cout << "wrote " << metrics_path << '\n';
  }
  return 0;
}
