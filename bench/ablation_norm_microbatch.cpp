// Design-decision ablation (DESIGN.md / Section 4.1 of the paper): the
// paper chooses microbatch 8/16 for the image tasks because smaller
// microbatches "cause issues for batch normalization", and cites
// GroupNorm as the alternative. Here we sweep the microbatch size under
// PipeMare with BatchNorm vs GroupNorm:
//   - BatchNorm degrades as the microbatch shrinks (batch statistics
//     collapse; M=1 is a hard failure mode),
//   - GroupNorm tolerates M=1, which minimizes the pipeline delay
//     tau_1 = (2P-1)/N and the activation memory simultaneously.
//
// Usage: ablation_norm_microbatch [--quick=1]
#include <iostream>

#include "src/core/experiments.h"
#include "src/core/task.h"
#include "src/pipeline/partition.h"
#include "src/util/cli.h"
#include "src/util/table.h"

int main(int argc, char** argv) {
  using namespace pipemare;
  util::Cli cli(argc, argv);
  bool quick = cli.get_bool("quick", false);

  std::cout << "=== Ablation: normalization vs microbatch size (PipeMare) ===\n\n";
  util::Table t({"Norm", "Microbatch M", "N = B/M", "tau_1", "Best acc", "Diverged"});
  for (bool gn : {false, true}) {
    data::ImageDatasetConfig d;
    d.classes = 10;
    d.train_size = 1024;
    d.test_size = 256;
    d.image_size = 12;
    d.seed = 1;
    nn::ResNetConfig m;
    m.base_channels = 8;
    m.blocks_per_group = {1, 1};
    m.group_norm = gn;
    core::ImageTask task(d, m, gn ? "synth-cifar10-gn" : "synth-cifar10-bn");
    int stages = pipeline::max_stages(task.build_model(), false);
    for (int micro : {16, 8, 2, 1}) {
      core::TrainerConfig cfg = core::image_recipe(stages, quick ? 5 : 10);
      cfg.microbatch_size = micro;
      auto res = core::train(task, cfg);
      double tau1 = static_cast<double>(2 * stages - 1) / (64 / micro);
      t.add_row({gn ? "GroupNorm" : "BatchNorm", std::to_string(micro),
                 std::to_string(64 / micro), util::fmt(tau1, 2),
                 util::fmt(res.best_metric, 1), res.diverged ? "yes" : "no"});
    }
  }
  std::cout << t.to_string() << '\n';
  std::cout << "[paper section 4.1: microbatch kept >= 8/16 'as smaller microbatches\n"
               " can cause issues for batch normalization'; GroupNorm (cited) lifts\n"
               " that floor, enabling the minimal-delay M=1 regime]\n";
  return 0;
}
