// Reproduces Figure 11: on a deeper ResNet (the paper's ResNet152 with 150
// stages), learning-rate rescheduling alone (T1) is not enough — training
// diverges — while adding the discrepancy correction (T1+T2, D=0.5)
// converges and matches synchronous training.
//
// Usage: fig11_deep_resnet [--quick=1]
#include <iostream>

#include "bench/bench_util.h"
#include "src/core/experiments.h"
#include "src/core/task.h"
#include "src/pipeline/partition.h"
#include "src/util/cli.h"

int main(int argc, char** argv) {
  using namespace pipemare;
  util::Cli cli(argc, argv);
  bool quick = cli.get_bool("quick", false);

  auto task = core::make_deep_resnet_analog();
  bool split = cli.get_bool("split", false);
  int stages = pipeline::max_stages(task->build_model(), split);
  std::cout << "=== Figure 11: deep ResNet, " << stages << " stages"
            << (split ? " (weight/bias split)" : "") << " ===\n";
  std::cout << "[paper: T1-only diverges on ResNet152@150 stages; T1+T2 (D=0.5) "
               "matches sync]\n\n";

  core::TrainerConfig cfg = core::image_recipe(stages, quick ? 8 : 16);
  cfg.engine.split_bias = split;
  // Intermediate delay regime (tau_1 = (2P-1)/16 ~ 5.7 at 46 stages): the
  // depth makes T1-only training lag badly while T1+T2 stays near sync —
  // the regime where the discrepancy correction becomes necessary rather
  // than merely helpful (the paper's ResNet152@150-stage observation).
  cfg.minibatch_size = cli.get_int("minibatch", 64);
  cfg.microbatch_size = cli.get_int("micro", 4);
  cfg.lr = cli.get_double("lr", 0.05);
  cfg.drop_every_epochs = cli.get_int("drop", 8);
  cfg.t1_annealing_steps = cli.get_int("k-steps", 128);
  cfg.engine.decay_d = 0.5;
  std::vector<core::AblationSpec> specs = {
      {"PM T1", true, false, 0},
      {"PM T1+T2, D=0.5", true, true, 0},
  };
  auto rows = core::ablation_study(*task, cfg, specs, 1.0);
  benchutil::print_rows("-- " + task->name(), "acc", rows);
  benchutil::print_curves("accuracy vs epoch:", rows, 1);
  return 0;
}
