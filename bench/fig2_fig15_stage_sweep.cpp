// Reproduces Figure 2 (Transformer) and Figure 15 (ResNet/CIFAR10): the
// impact of the number of pipeline stages on
//   (1) normalized throughput            [analytic, P x method efficiency]
//   (2) weight + optimizer memory        [analytic, counted in weight copies]
//   (3) best model quality               [trained]
//   (4) time-to-target quality           [epochs / throughput]
//
// Paper reference: GPipe's throughput and PipeDream's memory scale badly
// with P; PipeMare keeps full throughput and flat memory while its final
// quality stays competitive at every stage count (PipeDream's BLEU
// collapses; its time-to-target is infinite on IWSLT).
//
// Usage: fig2_fig15_stage_sweep [--quick=1] [--task=resnet|transformer|all]
#include <iostream>

#include "bench/bench_util.h"
#include "src/core/experiments.h"
#include "src/core/task.h"
#include "src/hwmodel/characteristics.h"
#include "src/pipeline/partition.h"
#include "src/util/cli.h"

namespace {

using namespace pipemare;

/// Absolute throughput model for the sweep plots: P parallel stages times
/// the method's relative efficiency, normalized to GPipe at the smallest
/// swept stage count (the paper normalizes to GPipe at 47 stages).
double sweep_throughput(pipeline::Method m, int stages, int ref_stages) {
  double eff = hwmodel::normalized_throughput_budget(m);
  double ref = ref_stages * hwmodel::normalized_throughput_budget(pipeline::Method::Sync);
  return stages * eff / ref;
}

void sweep(const core::Task& task, const core::TrainerConfig& base,
           const std::vector<int>& stage_counts, double target_gap, int opt_copies) {
  int ref_stages = stage_counts.front();
  util::Table t({"Stages", "Method", "Throughput", "W+Opt mem", "Best metric",
                 "Time-to-target"});
  for (int stages : stage_counts) {
    core::TrainerConfig cfg = base;
    cfg.engine.num_stages = stages;
    auto rows = core::compare_methods(task, cfg, target_gap);
    for (const auto& r : rows) {
      pipeline::Method m = r.label == "GPipe"       ? pipeline::Method::Sync
                           : r.label == "PipeDream" ? pipeline::Method::PipeDream
                                                    : pipeline::Method::PipeMare;
      double tput = sweep_throughput(m, stages, ref_stages);
      double mem = hwmodel::memory_factor_vs_gpipe(m, stages, cfg.num_microbatches(),
                                                   opt_copies,
                                                   m == pipeline::Method::PipeMare &&
                                                       cfg.engine.discrepancy_correction);
      double ttt = r.epochs_to_target < 0
                       ? std::numeric_limits<double>::infinity()
                       : r.epochs_to_target / tput;
      t.add_row({std::to_string(stages), r.label, util::fmt(tput, 2) + "x",
                 util::fmt_x(mem, 2), util::fmt(r.best_metric, 1),
                 std::isfinite(ttt) ? util::fmt(ttt, 1) : "inf"});
    }
  }
  std::cout << t.to_string() << '\n';
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  bool quick = cli.get_bool("quick", false);
  std::string which = cli.get("task", "all");

  if (which == "all" || which == "resnet") {
    std::cout << "=== Figure 15: stage sweep, ResNet on synth-CIFAR10 ===\n\n";
    auto task = core::make_cifar10_analog();
    int max_p = pipeline::max_stages(task->build_model(), false);
    core::TrainerConfig cfg = core::image_recipe(max_p, quick ? 5 : 10);
    std::vector<int> counts = quick ? std::vector<int>{max_p / 2, max_p}
                                    : std::vector<int>{max_p / 4, max_p / 2, max_p};
    sweep(*task, cfg, counts, 1.0, /*SGD momentum*/ 1);
  }

  if (which == "all" || which == "transformer") {
    std::cout << "=== Figure 2: stage sweep, Transformer on synth-IWSLT14 ===\n\n";
    auto task = core::make_iwslt_analog();
    int max_p = pipeline::max_stages(task->build_model(), false);
    core::TrainerConfig cfg = core::translation_recipe(max_p, quick ? 14 : 28);
    std::vector<int> counts = quick ? std::vector<int>{max_p}
                                    : std::vector<int>{max_p / 2, max_p};
    sweep(*task, cfg, counts, 5.0, /*AdamW*/ 2);
  }
  return 0;
}
