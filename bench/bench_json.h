#pragma once

// Bench-side helpers around the shared JSON emitter (src/util/json_writer.h)
// for the BENCH_*.json snapshots the micro benches write next to their
// table output (the ROADMAP's BENCH convention: a machine-readable record
// of throughput / balance numbers that can be diffed across commits). The
// emitter itself lives in util so the obs trace/metrics exporters share
// one escaping/ordering implementation with the benches.

#include <fstream>
#include <iostream>
#include <stdexcept>
#include <string>
#include <thread>

#include "src/util/json_writer.h"

namespace pipemare::benchutil {

using Json = util::Json;

/// The shared "machine" block of every BENCH snapshot: enough to judge
/// whether two snapshots are comparable (thread counts drive every
/// pipeline-throughput number in this repo).
inline Json machine_info() {
  Json m = Json::object();
  m.set("hardware_concurrency",
        static_cast<std::int64_t>(std::thread::hardware_concurrency()));
  m.set("compiler", std::string(__VERSION__));
#if defined(__linux__)
  m.set("os", "linux");
#elif defined(__APPLE__)
  m.set("os", "darwin");
#else
  m.set("os", "unknown");
#endif
#if defined(NDEBUG)
  m.set("build", "release");
#else
  m.set("build", "debug");
#endif
  return m;
}

/// Writes the snapshot and reports the path on stdout (the CI smoke step
/// re-parses the file with `python3 -m json.tool`).
inline void write_bench_json(const std::string& path, const Json& root) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("write_bench_json: cannot open " + path);
  }
  out << root.dump();
  std::cout << "wrote " << path << '\n';
}

}  // namespace pipemare::benchutil
