// Microbenchmarks for the compute substrate and the pipeline engine:
// matmul/conv kernels, schedule arithmetic, weight-version assembly, and a
// full engine training step. google-benchmark targets (not paper tables).
#include <benchmark/benchmark.h>

#include "src/core/backend.h"
#include "src/nn/activations.h"
#include "src/nn/conv2d.h"
#include "src/nn/heads.h"
#include "src/nn/linear.h"
#include "src/nn/model.h"
#include "src/nn/resnet.h"
#include "src/pipeline/engine.h"
#include "src/tensor/conv.h"
#include "src/tensor/ops.h"
#include "src/util/rng.h"

namespace {

using namespace pipemare;

void BM_Matmul(benchmark::State& state) {
  auto n = static_cast<int>(state.range(0));
  util::Rng rng(1);
  tensor::Tensor a({n, n}), b({n, n});
  for (std::int64_t i = 0; i < a.size(); ++i) a[i] = static_cast<float>(rng.normal());
  for (std::int64_t i = 0; i < b.size(); ++i) b[i] = static_cast<float>(rng.normal());
  for (auto _ : state) {
    auto c = tensor::matmul(a, b);
    benchmark::DoNotOptimize(c);
  }
  state.SetItemsProcessed(state.iterations() * 2LL * n * n * n);
}
BENCHMARK(BM_Matmul)->Arg(32)->Arg(64)->Arg(128);

void BM_Conv2dForward(benchmark::State& state) {
  util::Rng rng(2);
  nn::Conv2d conv(8, 8, 3, 1, 1);
  std::vector<float> w(static_cast<std::size_t>(conv.param_count()));
  conv.init_params(w, rng);
  nn::Flow in;
  in.x = tensor::Tensor({8, 8, 16, 16});
  for (std::int64_t i = 0; i < in.x.size(); ++i) in.x[i] = static_cast<float>(rng.normal());
  nn::Cache cache;
  for (auto _ : state) {
    auto out = conv.forward(in, w, cache);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_Conv2dForward);

void BM_ScheduleStaleness(benchmark::State& state) {
  pipeline::Schedule sched(107, 8);
  for (auto _ : state) {
    long long sum = 0;
    for (int i = 0; i < 107; ++i) {
      for (int n = 0; n < 8; ++n) sum += sched.fwd_staleness(i, n);
    }
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(BM_ScheduleStaleness);

void BM_EngineMinibatchStep(benchmark::State& state) {
  nn::ResNetConfig mc;
  mc.base_channels = 8;
  mc.blocks_per_group = {1, 1};
  pipeline::EngineConfig ec;
  ec.method = pipeline::Method::PipeMare;
  ec.num_stages = 8;
  ec.num_microbatches = 4;
  ec.discrepancy_correction = true;
  auto engine_ptr = core::BackendRegistry::instance().create(
      nn::make_resnet(mc), core::BackendConfig{"sequential"}, ec, /*seed=*/1);
  core::ExecutionBackend& engine = *engine_ptr;
  nn::ClassificationXent head;
  util::Rng rng(3);
  std::vector<nn::Flow> inputs;
  std::vector<tensor::Tensor> targets;
  for (int m = 0; m < 4; ++m) {
    nn::Flow f;
    f.x = tensor::Tensor({4, 3, 12, 12});
    for (std::int64_t i = 0; i < f.x.size(); ++i) f.x[i] = static_cast<float>(rng.normal());
    tensor::Tensor t({4});
    for (int j = 0; j < 4; ++j) t[j] = static_cast<float>(rng.randint(10));
    inputs.push_back(std::move(f));
    targets.push_back(std::move(t));
  }
  for (auto _ : state) {
    auto res = engine.forward_backward(inputs, targets, head);
    benchmark::DoNotOptimize(res);
    for (std::size_t i = 0; i < engine.weights().size(); ++i) {
      engine.weights()[i] -= 1e-4F * engine.gradients()[i];
    }
    engine.commit_update();
  }
}
BENCHMARK(BM_EngineMinibatchStep);

}  // namespace

BENCHMARK_MAIN();
