// Observability overhead bench: what does the always-compiled-in tracing
// and metrics layer cost on the hottest instrumented workload?
//
// Three measurements, written to BENCH_obs.json:
//   1. steal workload, tracing OFF — the skewed-MLP threaded_steal run
//      from bench/micro_steal with the recorder disabled. Every Span /
//      instant site still executes its relaxed-load-and-branch guard, so
//      this row IS the disabled-path cost the design budget bounds (<1%
//      vs an uninstrumented build; cross-checked below by the primitive
//      cost times the measured event rate).
//   2. steal workload, tracing ON — same run with the recorder enabled
//      and a buffer large enough to never drop, giving the enabled-path
//      overhead and the per-step event volume.
//   3. recorder primitives — tight-loop cost of a disabled Span, an
//      enabled instant and an enabled Span (events/sec throughput).
//
// The summary derives `disabled_overhead_pct_estimate`: events-per-step
// (from run 2) x disabled-guard cost (from 3) / step time (from 1). This
// estimates the instrumentation's share of a step without needing a
// second binary compiled without instrumentation, and must stay < 1%.
//
// Usage: bench_micro_obs [--quick=1] [--steps=40] [--stages=4]
//          [--microbatches=4] [--workers=0 (= stages)] [--seed=3]
//          [--json=1]  (write the BENCH_obs.json snapshot)

#include <chrono>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_json.h"
#include "bench/bench_util.h"
#include "src/core/engine_backend.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/pipeline/partition.h"
#include "src/sched/stealing_engine.h"
#include "src/util/cli.h"
#include "src/util/table.h"

namespace {

using namespace pipemare;

constexpr int kWide = 256;
constexpr int kClasses = 10;

double run_steal_workload(const benchutil::MlpWorkload& workload, int stages,
                          int microbatches, int workers, int steps,
                          std::uint64_t seed) {
  pipeline::EngineConfig ec;
  ec.method = pipeline::Method::PipeMare;
  ec.num_stages = stages;
  ec.num_microbatches = microbatches;
  ec.partition.strategy = pipeline::PartitionStrategy::Uniform;
  ec.partition.probe = std::make_shared<const nn::Flow>(workload.inputs.at(0));

  core::StealOptions opts;
  opts.workers = workers;
  opts.mode = sched::StealMode::LoadAware;
  auto built = core::BackendRegistry::instance().create(
      benchutil::make_skewed_mlp(kWide), core::BackendConfig("threaded_steal", opts),
      ec, seed);

  for (int s = 0; s < 2; ++s) benchutil::backend_step(*built, workload);

  auto t0 = std::chrono::steady_clock::now();
  for (int s = 0; s < steps; ++s) benchutil::backend_step(*built, workload);
  auto t1 = std::chrono::steady_clock::now();
  double secs = std::chrono::duration<double>(t1 - t0).count();
  return secs > 0.0 ? steps / secs : 0.0;
}

/// ns/op over `iters` calls of `body` (one warmup pass of 1k included).
template <class F>
double time_ns_per_op(int iters, F&& body) {
  for (int i = 0; i < 1000; ++i) body(i);
  auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < iters; ++i) body(i);
  auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::nano>(t1 - t0).count() / iters;
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  const bool quick = cli.get_bool("quick", false);
  const int steps = cli.get_int("steps", quick ? 6 : 40);
  const int stages = cli.get_int("stages", 4);
  const int microbatches = cli.get_int("microbatches", 4);
  int workers = cli.get_int("workers", 0);
  if (workers <= 0) workers = stages;
  const bool json = cli.get_bool("json", false);
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 3));
  const int prim_iters = quick ? 100000 : 1000000;

  benchutil::MlpWorkload workload(microbatches, /*micro_size=*/32, kWide, kClasses,
                                  seed);
  auto& rec = obs::TraceRecorder::instance();

  std::cout << "micro_obs: tracing overhead on the micro_steal workload, P="
            << stages << ", N=" << microbatches << ", W=" << workers << ", "
            << steps << " steps\n\n";

  rec.reset();
  const double off_sps =
      run_steal_workload(workload, stages, microbatches, workers, steps, seed);

  // Large enough that nothing drops: the on-row measures recording, not
  // the (cheaper) drop-counting saturation path.
  rec.enable(std::size_t{1} << 19);
  const double on_sps =
      run_steal_workload(workload, stages, microbatches, workers, steps, seed);
  rec.disable();
  const double recorded = static_cast<double>(rec.recorded());
  const double dropped = static_cast<double>(rec.dropped());
  // warmup steps record too; per-step volume uses the full run length.
  const double events_per_step = recorded / (steps + 2);
  rec.reset();

  // Primitive costs. Disabled guard first (recorder just reset).
  const double span_off_ns =
      time_ns_per_op(prim_iters, [](int) { obs::Span s("prim", "bench"); });
  const std::size_t prim_capacity = static_cast<std::size_t>(prim_iters) + 2000;
  rec.enable(prim_capacity);
  const double instant_on_ns = time_ns_per_op(
      prim_iters, [](int i) { obs::instant("prim", "bench", -1, -1, i); });
  rec.enable(prim_capacity);  // fresh buffers for the span row
  const double span_on_ns =
      time_ns_per_op(prim_iters, [](int) { obs::Span s("prim", "bench"); });
  rec.reset();

  const double on_overhead_pct =
      off_sps > 0.0 ? 100.0 * (off_sps - on_sps) / off_sps : 0.0;
  const double step_ns = off_sps > 0.0 ? 1e9 / off_sps : 0.0;
  const double disabled_overhead_pct =
      step_ns > 0.0 ? 100.0 * events_per_step * span_off_ns / step_ns : 0.0;
  const double events_per_sec = instant_on_ns > 0.0 ? 1e9 / instant_on_ns : 0.0;

  util::Table t({"measurement", "value"});
  t.add_row({"steal workload, tracing off", util::fmt(off_sps, 1) + " steps/s"});
  t.add_row({"steal workload, tracing on", util::fmt(on_sps, 1) + " steps/s"});
  t.add_row({"tracing-on overhead", util::fmt(on_overhead_pct, 2) + "%"});
  t.add_row({"events per step (traced)", util::fmt(events_per_step, 1)});
  t.add_row({"disabled Span guard", util::fmt(span_off_ns, 1) + " ns"});
  t.add_row({"enabled instant", util::fmt(instant_on_ns, 1) + " ns"});
  t.add_row({"enabled Span", util::fmt(span_on_ns, 1) + " ns"});
  t.add_row({"recorder throughput", util::fmt(events_per_sec / 1e6, 1) + " M events/s"});
  t.add_row({"disabled overhead (est.)", util::fmt(disabled_overhead_pct, 4) + "%"});
  std::cout << t.to_string() << '\n';

  std::cout << "disabled-path budget: " << util::fmt(events_per_step, 0)
            << " guard sites/step x " << util::fmt(span_off_ns, 1) << " ns = "
            << util::fmt(disabled_overhead_pct, 4)
            << "% of a step (budget: < 1%); enabled tracing costs "
            << util::fmt(on_overhead_pct, 2) << "% on the same workload ("
            << util::fmt(dropped, 0) << " events dropped).\n";

  if (json) {
    benchutil::Json root = benchutil::Json::object();
    root.set("bench", "micro_obs");
    root.set("machine", benchutil::machine_info());
    benchutil::Json params = benchutil::Json::object();
    params.set("stages", stages);
    params.set("microbatches", microbatches);
    params.set("workers", workers);
    params.set("steps", steps);
    params.set("seed", static_cast<std::int64_t>(seed));
    params.set("primitive_iters", prim_iters);
    root.set("params", std::move(params));
    benchutil::Json runs = benchutil::Json::object();
    runs.set("steal_tracing_off_steps_per_sec", off_sps);
    runs.set("steal_tracing_on_steps_per_sec", on_sps);
    runs.set("events_per_step", events_per_step);
    runs.set("events_dropped", dropped);
    runs.set("disabled_span_ns", span_off_ns);
    runs.set("enabled_instant_ns", instant_on_ns);
    runs.set("enabled_span_ns", span_on_ns);
    root.set("runs", std::move(runs));
    benchutil::Json summary = benchutil::Json::object();
    summary.set("tracing_on_overhead_pct", on_overhead_pct);
    summary.set("disabled_overhead_pct_estimate", disabled_overhead_pct);
    summary.set("disabled_overhead_budget_pct", 1.0);
    summary.set("recorder_events_per_sec", events_per_sec);
    root.set("summary", std::move(summary));
    benchutil::write_bench_json("BENCH_obs.json", root);
  }
  return 0;
}
