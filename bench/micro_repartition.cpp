// Dynamic-repartitioning micro bench: the skewed MLP started from a
// deliberately bad uniform split, with the epoch-boundary Repartitioner
// watching the observed per-stage busy time.
//
// The first "epoch" (a block of steps) runs the uniform-by-count split —
// both wide layers piled onto stage 0, observed busy spread ~ the skew.
// At its boundary the RepartitionObserver compares the observed balance
// ratio against the threshold, replans the balanced DP split from the
// observed per-unit costs, and migrates under the WeightVersions protocol
// (no weight bytes move — see src/pipeline/repartition.h). The remaining
// epochs measure the migrated split; the bench reports per-epoch busy
// spread and throughput, before/after balance, and writes the
// BENCH_repartition.json snapshot.
//
// The busy-spread improvement shows on any machine; the throughput gain
// needs >= `stages` real cores (on fewer, stage workers timeshare and the
// wall clock is bounded by total compute, not the max stage).
//
// Usage: bench_micro_repartition [--quick=1] [--steps=20 (per epoch)]
//          [--epochs=4] [--stages=4] [--microbatches=4]
//          [--threshold=1.25] [--seed=3] [--json=1]

#include <chrono>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_json.h"
#include "bench/bench_util.h"
#include "src/core/engine_backend.h"
#include "src/core/repartition_observer.h"
#include "src/core/stage_load.h"
#include "src/pipeline/repartition.h"
#include "src/util/cli.h"
#include "src/util/table.h"

namespace {

using namespace pipemare;

constexpr int kWide = 256;
constexpr int kNarrow = 16;
constexpr int kNarrowLayers = 8;
constexpr int kClasses = 10;

/// Three wide layers (vs the partition/steal benches' two): with only two
/// heavies and four stages the balanced floor is already ~half the uniform
/// skew, which understates what migration recovers. Three heavies let the
/// balanced split park one per stage, so the before/after spread shows the
/// full uniform-by-count penalty.
constexpr int kWideLayers = 3;

struct EpochResult {
  int epoch = 0;
  double busy_spread = 0.0;
  double steps_per_sec = 0.0;
  bool migrated = false;
  double observed_ratio = 0.0;
  double planned_ratio = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  const bool quick = cli.get_bool("quick", false);
  const int steps = cli.get_int("steps", quick ? 4 : 20);
  const int epochs = cli.get_int("epochs", 4);
  const int stages = cli.get_int("stages", 4);
  const int microbatches = cli.get_int("microbatches", 4);
  const double threshold = cli.get_double("threshold", 1.25);
  const bool json = cli.get_bool("json", false);
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 3));

  benchutil::MlpWorkload workload(microbatches, /*micro_size=*/32, kWide, kClasses,
                                  seed);

  // Deliberately bad start: the uniform-by-count split on the skewed model.
  pipeline::EngineConfig ec;
  ec.method = pipeline::Method::PipeMare;
  ec.num_stages = stages;
  ec.num_microbatches = microbatches;
  ec.partition.probe = std::make_shared<const nn::Flow>(workload.inputs.at(0));
  auto backend = core::BackendRegistry::instance().create(
      benchutil::make_skewed_mlp(kWide, kNarrow, kNarrowLayers, kClasses, kWideLayers),
      core::BackendConfig("threaded"), ec, seed);

  pipeline::RepartitionConfig rcfg;
  rcfg.enabled = true;
  rcfg.threshold = threshold;
  core::StageLoadObserver load(*backend);
  core::StepObserver* peers[] = {&load};
  core::RepartitionObserver repartitioner(*backend, rcfg, peers);

  std::cout << "micro_repartition: skewed MLP from a uniform split, P=" << stages
            << ", N=" << microbatches << ", " << epochs << " epochs x " << steps
            << " steps, threshold " << util::fmt(threshold, 2) << "\n\n";

  // Warmup fills the version ring and faults in buffers off the clock.
  for (int s = 0; s < 2; ++s) benchutil::backend_step(*backend, workload);
  backend->reset_stage_stats();

  std::vector<EpochResult> results;
  for (int e = 1; e <= epochs; ++e) {
    auto t0 = std::chrono::steady_clock::now();
    for (int s = 0; s < steps; ++s) benchutil::backend_step(*backend, workload);
    auto t1 = std::chrono::steady_clock::now();

    // Same ordering as core::train: load observers sample the epoch's
    // stats first, then the repartitioner decides (and possibly resets).
    core::EpochRecord rec;
    rec.epoch = e;
    load.on_epoch(rec);
    std::size_t events_before = repartitioner.events().size();
    repartitioner.on_epoch(rec);

    EpochResult r;
    r.epoch = e;
    r.busy_spread = core::StageLoadObserver::busy_spread(load.epoch_stats().back());
    double secs = std::chrono::duration<double>(t1 - t0).count();
    r.steps_per_sec = secs > 0.0 ? steps / secs : 0.0;
    if (repartitioner.events().size() > events_before) {
      const auto& ev = repartitioner.events().back();
      r.migrated = ev.migrated;
      r.observed_ratio = ev.observed_ratio;
      r.planned_ratio = ev.planned_ratio;
    }
    results.push_back(r);
  }

  util::Table t({"epoch", "busy spread", "steps/s", "migrated", "observed ratio",
                 "planned ratio"});
  for (const auto& r : results) {
    t.add_row({std::to_string(r.epoch), util::fmt(r.busy_spread, 2),
               util::fmt(r.steps_per_sec, 1), r.migrated ? "yes" : "-",
               r.observed_ratio > 0.0 ? util::fmt(r.observed_ratio, 2) : "-",
               r.planned_ratio > 0.0 ? util::fmt(r.planned_ratio, 2) : "-"});
  }
  std::cout << t.to_string() << '\n';

  const EpochResult& before = results.front();
  const EpochResult& after = results.back();
  std::cout << "repartition: busy spread " << util::fmt(before.busy_spread, 2)
            << " -> " << util::fmt(after.busy_spread, 2) << " ("
            << util::fmt_x(before.busy_spread /
                           std::max(1e-9, after.busy_spread))
            << " better), throughput " << util::fmt(before.steps_per_sec, 1)
            << " -> " << util::fmt(after.steps_per_sec, 1) << " steps/s, "
            << repartitioner.migrations() << " migration(s)\n";

  if (json) {
    benchutil::Json root = benchutil::Json::object();
    root.set("bench", "micro_repartition");
    root.set("machine", benchutil::machine_info());
    benchutil::Json params = benchutil::Json::object();
    params.set("stages", stages);
    params.set("microbatches", microbatches);
    params.set("steps_per_epoch", steps);
    params.set("epochs", epochs);
    params.set("threshold", threshold);
    params.set("seed", static_cast<std::int64_t>(seed));
    root.set("params", std::move(params));
    benchutil::Json epochs_json = benchutil::Json::array();
    for (const auto& r : results) {
      benchutil::Json j = benchutil::Json::object();
      j.set("epoch", r.epoch);
      j.set("busy_spread", r.busy_spread);
      j.set("steps_per_sec", r.steps_per_sec);
      j.set("migrated", r.migrated);
      j.set("observed_ratio", r.observed_ratio);
      j.set("planned_ratio", r.planned_ratio);
      epochs_json.push(std::move(j));
    }
    root.set("epochs", std::move(epochs_json));
    benchutil::Json summary = benchutil::Json::object();
    summary.set("balance_before", before.busy_spread);
    summary.set("balance_after", after.busy_spread);
    summary.set("balance_improvement",
                before.busy_spread / std::max(1e-9, after.busy_spread));
    summary.set("throughput_before", before.steps_per_sec);
    summary.set("throughput_after", after.steps_per_sec);
    summary.set("migrations", repartitioner.migrations());
    root.set("summary", std::move(summary));
    benchutil::write_bench_json("BENCH_repartition.json", root);
  }
  return 0;
}
