// Reproduces Figure 14: sensitivity to the number of T3 synchronous warmup
// epochs on the translation task, including the time-to-accuracy tradeoff
// (warmup epochs run at GPipe's 0.3X budget throughput).
//
// Paper reference: some warmup converges in fewer epochs, but too many
// warmup epochs erode the throughput advantage; an intermediate count
// gives the best time-to-accuracy.
//
// Usage: fig14_warmup_sensitivity [--quick=1]
#include <iostream>

#include "src/core/experiments.h"
#include "src/core/task.h"
#include "src/hwmodel/characteristics.h"
#include "src/pipeline/partition.h"
#include "src/util/cli.h"
#include "src/util/table.h"

int main(int argc, char** argv) {
  using namespace pipemare;
  util::Cli cli(argc, argv);
  bool quick = cli.get_bool("quick", false);

  auto task = core::make_iwslt_analog();
  int stages = pipeline::max_stages(task->build_model(), false);
  int epochs = quick ? 16 : 32;

  std::cout << "=== Figure 14: sensitivity to synchronous warmup epochs ("
            << task->name() << ") ===\n\n";
  util::Table t({"Warmup epochs", "Best BLEU", "Epochs to best", "Amort. tput",
                 "Time-to-best"});
  for (int warmup : {0, 1, 2, 4, 8}) {
    core::TrainerConfig cfg = core::translation_recipe(stages, epochs);
    cfg.warmup_epochs = warmup;
    auto res = core::train(*task, cfg);
    double tput = hwmodel::amortized_throughput(
        warmup, std::max<int>(1, res.epochs_completed()));
    double ttb = res.best_epoch > 0 ? res.best_epoch / tput
                                    : std::numeric_limits<double>::infinity();
    t.add_row({std::to_string(warmup), util::fmt(res.best_metric, 1),
               res.best_epoch > 0 ? std::to_string(res.best_epoch) : "-",
               util::fmt_x(tput), std::isfinite(ttb) ? util::fmt(ttb, 1) : "inf"});
  }
  std::cout << t.to_string() << '\n';
  std::cout << "[paper: best time-to-accuracy at an intermediate warmup count; "
               "extra warmup costs throughput]\n";
  return 0;
}
