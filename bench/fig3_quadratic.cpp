// Reproduces Figure 3.
// (a) Quadratic model (lambda=1, alpha=0.2, noise N(0,1)): loss
//     trajectories for tau in {0, 5, 10}; tau=10 diverges quickly.
// (b) Fixed-delay SGD on a 12-feature linear regression (cpusmall analog):
//     a (step size, delay) grid of final losses with the Lemma 1 boundary
//     alpha = (2/lambda_max) sin(pi/(4 tau + 2)) overlaid; the divergence
//     frontier follows alpha ~ 1/tau exactly as the paper observes.
#include <iostream>

#include "src/core/delayed_sgd.h"
#include "src/core/task.h"
#include "src/theory/quadratic_sim.h"
#include "src/theory/stability.h"
#include "src/util/cli.h"
#include "src/util/table.h"

int main(int argc, char** argv) {
  using namespace pipemare;
  util::Cli cli(argc, argv);
  bool quick = cli.get_bool("quick", false);

  std::cout << "=== Figure 3(a): quadratic model, alpha=0.2, lambda=1 ===\n";
  std::cout << "(paper: tau=10 diverges, tau in {0,5} stay at the noise floor)\n\n";
  util::Table traj({"iter", "tau=0", "tau=5", "tau=10"});
  std::vector<std::vector<double>> losses;
  for (int tau : {0, 5, 10}) {
    theory::QuadraticSimConfig cfg;
    cfg.tau_fwd = cfg.tau_bkwd = tau;
    cfg.alpha = 0.2;
    cfg.seed = 17;
    cfg.divergence_limit = 1e4;
    losses.push_back(run_quadratic_sim(cfg, 250).losses);
  }
  for (int it = 0; it <= 250; it += 25) {
    int i = std::min(it, 249);
    traj.add_row({std::to_string(it), util::fmt(losses[0][static_cast<std::size_t>(i)], 3),
                  util::fmt(losses[1][static_cast<std::size_t>(i)], 3),
                  util::fmt(losses[2][static_cast<std::size_t>(i)], 3)});
  }
  std::cout << traj.to_string() << '\n';

  std::cout << "=== Figure 3(b): (alpha, tau) grid on linear regression ===\n";
  data::RegressionConfig rc;
  rc.features = 12;
  rc.size = quick ? 256 : 512;
  core::RegressionTask task(rc);
  double lambda = task.dataset().lambda_max();
  std::cout << "largest curvature lambda_max = " << util::fmt(lambda, 4)
            << "; cells show final loss ('div' = divergence); '|' marks the "
               "Lemma 1 boundary\n\n";

  std::vector<int> taus = {1, 4, 16, 64, 256};
  if (!quick) taus.push_back(1024);
  std::vector<double> alphas;
  for (int e = -12; e <= -2; ++e) alphas.push_back(std::pow(2.0, e));

  std::vector<std::string> header = {"tau \\ alpha"};
  for (double a : alphas) header.push_back(util::fmt(std::log2(a), 0));
  util::Table grid(std::move(header));
  for (int tau : taus) {
    double bound = theory::lemma1_max_alpha(lambda, tau);
    std::vector<std::string> row = {std::to_string(tau)};
    for (double a : alphas) {
      core::DelayedSgdConfig cfg;
      cfg.alpha = a;
      cfg.tau_fwd = cfg.tau_bkwd = tau;
      cfg.iterations = quick ? 3000 : 10000;
      cfg.minibatch_size = 16;
      cfg.seed = 5;
      auto res = core::run_delayed_sgd(task, cfg);
      std::string cell = res.diverged ? "div" : util::fmt(res.final_loss, 3);
      if (a <= bound && a * 2 > bound) cell += "|";  // theoretical boundary
      row.push_back(cell);
    }
    grid.add_row(std::move(row));
  }
  std::cout << grid.to_string() << '\n';
  std::cout << "Lemma 1 boundary alpha*(tau): ";
  for (int tau : taus) {
    std::cout << "tau=" << tau << ": " << util::fmt(theory::lemma1_max_alpha(lambda, tau), 5)
              << "  ";
  }
  std::cout << "\n(divergence frontier tracks alpha ~ 1/tau, as in the paper)\n";
  return 0;
}
