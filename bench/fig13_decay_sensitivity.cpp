// Reproduces Figure 13: sensitivity of the final model quality to the T2
// decay hyperparameter D (which sets the per-stage EMA decay
// gamma_i = D^{1/tau_i}).
//
// Paper reference: D <= 0.2 speeds up Transformer convergence while a too
// large D can be worse than no correction; D = 0.5 works for the ResNet.
// Theory (B.5) motivates D near exp(-2) ~= 0.135.
//
// Usage: fig13_decay_sensitivity [--quick=1]
#include <iostream>

#include "src/core/experiments.h"
#include "src/core/task.h"
#include "src/pipeline/partition.h"
#include "src/util/cli.h"
#include "src/util/table.h"

int main(int argc, char** argv) {
  using namespace pipemare;
  util::Cli cli(argc, argv);
  bool quick = cli.get_bool("quick", false);

  std::cout << "=== Figure 13: sensitivity to the T2 decay D ===\n\n";

  {
    auto task = core::make_cifar10_analog();
    int stages = pipeline::max_stages(task->build_model(), false);
    util::Table t({"D", "Best acc", "Diverged"});
    for (double d : {0.0, 0.2, 0.5, 0.7}) {
      core::TrainerConfig cfg = core::image_recipe(stages, quick ? 6 : 12);
      cfg.engine.discrepancy_correction = d > 0.0;
      cfg.engine.decay_d = d;
      auto res = core::train(*task, cfg);
      t.add_row({util::fmt(d, 2), util::fmt(res.best_metric, 1),
                 res.diverged ? "yes" : "no"});
    }
    std::cout << "-- " << task->name() << "  [paper: D=0.5 matches sync]\n"
              << t.to_string() << '\n';
  }

  {
    auto task = core::make_iwslt_analog();
    int stages = pipeline::max_stages(task->build_model(), false);
    util::Table t({"D", "Best BLEU", "Diverged"});
    for (double d : {0.0, 0.01, 0.1, 0.5}) {
      core::TrainerConfig cfg = core::translation_recipe(stages, quick ? 16 : 30);
      cfg.engine.discrepancy_correction = d > 0.0;
      cfg.engine.decay_d = d;
      auto res = core::train(*task, cfg);
      t.add_row({util::fmt(d, 2), util::fmt(res.best_metric, 1),
                 res.diverged ? "yes" : "no"});
    }
    std::cout << "-- " << task->name()
              << "  [paper: D <= 0.2 helps; large D can hurt]\n"
              << t.to_string();
  }
  return 0;
}
