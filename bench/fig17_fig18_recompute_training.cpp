// Reproduces Figures 17 and 18: statistical performance of PipeMare
// Recompute with different numbers of gradient checkpoints.
//
// Paper reference: on CIFAR10, recompute is statistically invisible with
// or without T2 (Fig 17); on IWSLT, T1-only training with recompute can be
// unstable, while adding the discrepancy correction (T2, which also
// corrects the recompute weights, Appendix D) restores the no-recompute
// quality for every checkpoint count (Fig 18).
//
// Usage: fig17_fig18_recompute_training [--quick=1]
#include <iostream>

#include "src/core/experiments.h"
#include "src/core/task.h"
#include "src/pipeline/partition.h"
#include "src/util/cli.h"
#include "src/util/table.h"

namespace {

using namespace pipemare;

void run_block(const core::Task& task, core::TrainerConfig base,
               const std::vector<int>& checkpoint_counts, const char* metric) {
  for (bool with_t2 : {false, true}) {
    util::Table t({"Variant", std::string("Best ") + metric, "Diverged"});
    for (int ckpts : checkpoint_counts) {
      core::TrainerConfig cfg = base;
      cfg.engine.discrepancy_correction = with_t2;
      cfg.engine.recompute_segments = ckpts;
      auto res = core::train(task, cfg);
      std::string label = ckpts == 0 ? "no recompute" : std::to_string(ckpts) + " ckpts";
      t.add_row({label, util::fmt(res.best_metric, 1), res.diverged ? "yes" : "no"});
    }
    std::cout << (with_t2 ? "PipeMare T1+T2 (recompute weights corrected):\n"
                          : "PipeMare T1 only:\n")
              << t.to_string() << '\n';
  }
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  bool quick = cli.get_bool("quick", false);

  {
    auto task = core::make_cifar10_analog();
    int stages = pipeline::max_stages(task->build_model(), false);
    std::cout << "=== Figure 17: recompute on " << task->name() << " (" << stages
              << " stages)  [paper ckpts: 2/4/17; recompute invisible] ===\n\n";
    core::TrainerConfig cfg = core::image_recipe(stages, quick ? 5 : 10);
    run_block(*task, cfg, {0, 2, 4}, "acc");
  }
  {
    auto task = core::make_iwslt_analog();
    int stages = pipeline::max_stages(task->build_model(), false);
    std::cout << "=== Figure 18: recompute on " << task->name() << " (" << stages
              << " stages)  [paper ckpts: 2/12/31; T2 needed for stability] ===\n\n";
    core::TrainerConfig cfg = core::translation_recipe(stages, quick ? 14 : 28);
    run_block(*task, cfg, {0, 2, 6}, "BLEU");
  }
  return 0;
}
