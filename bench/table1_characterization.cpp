// Reproduces Table 1: delays, normalized throughput and weights memory of
// PipeDream, GPipe and PipeMare — and cross-checks the analytic delay
// formulas against the engine's exact tick-schedule staleness.
//
// Paper reference (Table 1, 1-indexed stage i):
//   PipeDream: tau_fwd = tau_bkwd = (2(P-i)+1)/N, throughput 1.0, mem W*P/N
//   GPipe:     tau = 0,                throughput N/(N+P-1), mem W
//   PipeMare:  tau_fwd = (2(P-i)+1)/N, tau_bkwd = 0, throughput 1.0, mem W
#include <iostream>

#include "src/hwmodel/characteristics.h"
#include "src/pipeline/schedule.h"
#include "src/util/cli.h"
#include "src/util/table.h"

int main(int argc, char** argv) {
  using namespace pipemare;
  util::Cli cli(argc, argv);
  (void)cli;

  std::cout << "=== Table 1: characterization of pipeline-parallel methods ===\n\n";
  struct Config {
    int p;
    int n;
  };
  for (Config c : {Config{8, 4}, Config{16, 8}, Config{107, 8}, Config{93, 19}}) {
    std::cout << "P = " << c.p << " stages, N = " << c.n << " microbatches\n";
    util::Table t({"Method", "tau_fwd (stage 1)", "tau_bkwd (stage 1)",
                   "tau_fwd (stage P)", "Norm. throughput", "Weights memory"});
    for (auto m : {pipeline::Method::PipeDream, pipeline::Method::Sync,
                   pipeline::Method::PipeMare}) {
      t.add_row({pipeline::method_name(m),
                 util::fmt(hwmodel::tau_fwd(m, c.p, c.n, 1), 3),
                 util::fmt(hwmodel::tau_bkwd(m, c.p, c.n, 1), 3),
                 util::fmt(hwmodel::tau_fwd(m, c.p, c.n, c.p), 3),
                 util::fmt(hwmodel::normalized_throughput_simple(m, c.p, c.n), 3),
                 util::fmt(hwmodel::weight_memory_copies(m, c.p, c.n), 2) + " W"});
    }
    std::cout << t.to_string();

    // Cross-check: engine tick-schedule staleness averaged over microbatches
    // must equal the analytic (2(P-i)+1)/N row exactly.
    pipeline::Schedule sched(c.p, c.n);
    double max_err = 0.0;
    for (int i = 0; i < c.p; ++i) {
      double sum = 0.0;
      for (int n = 0; n < c.n; ++n) sum += sched.fwd_staleness(i, n);
      max_err = std::max(max_err,
                         std::abs(sum / c.n - hwmodel::tau_fwd(pipeline::Method::PipeMare,
                                                               c.p, c.n, i + 1)));
    }
    std::cout << "tick-schedule vs formula: max |error| over stages = "
              << util::fmt(max_err, 12) << "  (paper formula holds exactly)\n\n";
  }
  return 0;
}
