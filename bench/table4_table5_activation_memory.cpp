// Reproduces Table 4 (activation memory scaling with/without PipeMare
// Recompute, in the fine-grained P = L regime) and Table 5 (activation
// memory ratios for the paper's four tasks: 0.097X / 0.097X / 0.104X /
// 0.105X at 107 / 107 / 93 / 91 stages).
#include <cmath>
#include <iostream>

#include "src/hwmodel/activation_memory.h"
#include "src/util/cli.h"
#include "src/util/table.h"

int main(int argc, char** argv) {
  using namespace pipemare;
  util::Cli cli(argc, argv);
  (void)cli;

  std::cout << "=== Table 4: activation memory (units of one microbatch "
               "activation M), P = L ===\n\n";
  util::Table t4({"Mode", "P", "N", "w/o recompute", "w/ recompute (S*)",
                  "paper scaling"});
  for (int p : {16, 64, 107}) {
    int n = 8;
    // GPipe rows: M*P*N -> M*P*sqrt(N).
    int sg = hwmodel::gpipe_optimal_segment_size(p, n);
    t4.add_row({"GPipe", std::to_string(p), std::to_string(n),
                std::to_string(hwmodel::gpipe_total_activations(p, n)),
                std::to_string(hwmodel::gpipe_recompute_total(p, n, sg)),
                "MPN -> MPN^(1/2)"});
    // PipeMare/PipeDream rows: M*P^2 -> M*P^(3/2).
    int sp = hwmodel::optimal_segment_size(p);
    t4.add_row({"PipeMare/PipeDream", std::to_string(p), "-",
                std::to_string(hwmodel::total_activations(
                    hwmodel::pipemare_activation_counts(p))),
                std::to_string(hwmodel::total_activations(
                    hwmodel::pipemare_recompute_counts(p, sp))),
                "MP^2 -> MP^(3/2)"});
  }
  std::cout << t4.to_string() << '\n';

  std::cout << "=== Table 5: PipeMare activation memory with recompute ===\n";
  std::cout << "(paper reports the O-model ratio 1/sqrt(P); we additionally "
               "report the exactly counted buffer ratio)\n\n";
  util::Table t5({"Dataset", "stages", "paper ratio", "O-model 1/sqrt(P)",
                  "counted ratio (S*)"});
  struct Row {
    const char* name;
    int stages;
    const char* paper;
  };
  for (Row r : {Row{"CIFAR10", 107, "0.097X"}, Row{"ImageNet", 107, "0.097X"},
                Row{"IWSLT14", 93, "0.104X"}, Row{"WMT17", 91, "0.105X"}}) {
    t5.add_row({r.name, std::to_string(r.stages), r.paper,
                util::fmt(hwmodel::table5_ratio(r.stages), 3) + "X",
                util::fmt(hwmodel::counted_recompute_ratio(r.stages), 3) + "X"});
  }
  std::cout << t5.to_string() << '\n';
  std::cout << "The counted ratio carries a ~2x constant over the O-model "
               "(checkpoints + recompute buffers); the paper's reported\n"
               "numbers use the O-model constant 1. Scaling in P matches.\n";
  return 0;
}
