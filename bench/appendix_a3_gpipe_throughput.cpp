// Reproduces Appendix A.3: GPipe's throughput relative to PipeMare under
// equal activation-memory and compute budgets, as a function of the
// microbatch-size ratio alpha = M_GP / M_PM.
//
// Paper: the optimum is ~0.30 (0.29 with recompute); this constant is what
// the paper (and this repo) uses for every GPipe time-to-accuracy figure.
#include <cmath>
#include <iostream>

#include "src/hwmodel/gpipe_throughput.h"
#include "src/util/cli.h"
#include "src/util/table.h"

int main(int argc, char** argv) {
  using namespace pipemare;
  util::Cli cli(argc, argv);
  (void)cli;

  std::cout << "=== Appendix A.3: GPipe relative throughput vs microbatch ratio ===\n\n";
  util::Table t({"alpha = M_GP/M_PM", "l_fwd+l_bkwd", "T(alpha)", "case",
                 "T(alpha), recompute"});
  for (double a : {0.25, 0.5, 0.75, 1.0, 1.2247, 1.5, 2.0, 2.1213, 3.0, 4.0, 6.0, 10.0}) {
    const char* which = a <= 1.5 ? "2 (underutilized)"
                        : a < 3.0 ? "3 (bwd saturated)"
                                  : "1 (saturated)";
    t.add_row({util::fmt(a, 4), util::fmt(hwmodel::gpipe_latency_factor(a, false), 3),
               util::fmt(hwmodel::gpipe_relative_throughput(a, false), 4), which,
               util::fmt(hwmodel::gpipe_relative_throughput(a, true), 4)});
  }
  std::cout << t.to_string() << '\n';

  double best_a = 0.0, best_ar = 0.0;
  double best = hwmodel::gpipe_max_relative_throughput(false, &best_a);
  double best_rec = hwmodel::gpipe_max_relative_throughput(true, &best_ar);
  std::cout << "max T = " << util::fmt(best, 4) << " at alpha = " << util::fmt(best_a, 3)
            << "   (paper: ~0.30)\n";
  std::cout << "max T with recompute = " << util::fmt(best_rec, 4) << " at alpha = "
            << util::fmt(best_ar, 3) << "   (paper: ~0.29)\n";
  return 0;
}
