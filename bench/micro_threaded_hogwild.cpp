// Wall-clock comparison of the "hogwild" (sequential HogwildEngine) and
// "threaded_hogwild" (W free-running workers) registry backends on an
// identical training step (Appendix E stochastic-delay semantics). The
// threaded backend runs the minibatch's microbatches on W workers sharing
// the delayed weight snapshots; results are bitwise reproducible run-to-run
// and match the sequential engine up to gradient-sum reassociation, so the
// rows measure pure execution overlap. On a host with >= W cores the
// threaded rows should approach W-fold items/s once per-microbatch compute
// dominates queue and snapshot-assembly overhead.
//
// google-benchmark target: bench_micro_threaded_hogwild
//   [--benchmark_filter=...] [--benchmark_min_time=...]
#include <benchmark/benchmark.h>

#include <string>

#include "bench/bench_util.h"
#include "src/core/engine_backend.h"

namespace {

using namespace pipemare;

constexpr int kLayers = 8;
constexpr int kWidth = 192;
constexpr int kClasses = 10;
constexpr int kMicroBatches = 8;
constexpr int kMicroSize = 4;
constexpr int kStages = 4;
constexpr double kMaxDelay = 8.0;

pipeline::EngineConfig bench_config() {
  pipeline::EngineConfig ec;
  ec.method = pipeline::Method::PipeMare;
  ec.num_stages = kStages;
  ec.num_microbatches = kMicroBatches;
  return ec;
}

core::BackendConfig backend_config(const std::string& backend, int workers) {
  if (backend == "threaded_hogwild") {
    core::ThreadedHogwildOptions opts;
    opts.max_delay = kMaxDelay;
    opts.workers = workers;
    return {backend, opts};
  }
  core::HogwildOptions opts;
  opts.max_delay = kMaxDelay;
  return {backend, opts};
}

void BM_HogwildBackendStep(benchmark::State& state, const std::string& backend) {
  auto workers = static_cast<int>(state.range(0));
  auto be = core::BackendRegistry::instance().create(
      benchutil::make_bench_mlp(kLayers, kWidth, kClasses),
      backend_config(backend, workers), bench_config(), /*seed=*/1);
  benchutil::MlpWorkload w(kMicroBatches, kMicroSize, kWidth, kClasses);
  for (auto _ : state) {
    auto res = benchutil::backend_step(*be, w);
    benchmark::DoNotOptimize(res);
  }
  state.SetItemsProcessed(state.iterations() * kMicroBatches * kMicroSize);
  if (auto* threaded = dynamic_cast<core::ThreadedHogwildBackend*>(be.get())) {
    state.counters["workers"] = static_cast<double>(threaded->engine().num_workers());
  }
}
BENCHMARK_CAPTURE(BM_HogwildBackendStep, hogwild, "hogwild")
    ->Arg(0)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_HogwildBackendStep, threaded_hogwild, "threaded_hogwild")
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
