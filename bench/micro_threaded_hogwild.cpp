// Wall-clock comparison of the sequential HogwildEngine and the
// multithreaded ThreadedHogwildEngine on an identical training step
// (Appendix E stochastic-delay semantics). The threaded backend runs the
// minibatch's microbatches on W free-running workers sharing the delayed
// weight snapshots; results are bitwise reproducible run-to-run and match
// the sequential engine up to gradient-sum reassociation, so the rows
// measure pure execution overlap. On a host with >= W cores the threaded
// rows should approach W-fold items/s once per-microbatch compute
// dominates queue and snapshot-assembly overhead.
//
// google-benchmark target: bench_micro_threaded_hogwild
//   [--benchmark_filter=...] [--benchmark_min_time=...]
#include <benchmark/benchmark.h>

#include <memory>

#include "src/hogwild/hogwild.h"
#include "src/hogwild/threaded_hogwild.h"
#include "src/nn/activations.h"
#include "src/nn/heads.h"
#include "src/nn/linear.h"
#include "src/nn/model.h"
#include "src/util/rng.h"

namespace {

using namespace pipemare;

constexpr int kLayers = 8;
constexpr int kWidth = 192;
constexpr int kClasses = 10;
constexpr int kMicroBatches = 8;
constexpr int kMicroSize = 4;
constexpr int kStages = 4;

/// A deep dropout-free MLP (the threaded backend rejects stateful-forward
/// modules); uniform per-layer cost.
nn::Model make_mlp() {
  nn::Model m;
  for (int i = 0; i < kLayers; ++i) {
    m.add(std::make_unique<nn::Linear>(kWidth, kWidth, /*relu_init=*/true));
    m.add(std::make_unique<nn::ReLU>());
  }
  m.add(std::make_unique<nn::Linear>(kWidth, kClasses));
  return m;
}

struct Workload {
  std::vector<nn::Flow> inputs;
  std::vector<tensor::Tensor> targets;
  nn::ClassificationXent head;

  Workload() {
    util::Rng rng(3);
    for (int m = 0; m < kMicroBatches; ++m) {
      nn::Flow f;
      f.x = tensor::Tensor({kMicroSize, kWidth});
      for (std::int64_t i = 0; i < f.x.size(); ++i) {
        f.x[i] = static_cast<float>(rng.normal());
      }
      tensor::Tensor t({kMicroSize});
      for (int j = 0; j < kMicroSize; ++j) {
        t[j] = static_cast<float>(rng.randint(kClasses));
      }
      inputs.push_back(std::move(f));
      targets.push_back(std::move(t));
    }
  }
};

hogwild::HogwildConfig bench_config(int workers) {
  hogwild::HogwildConfig hw;
  hw.num_stages = kStages;
  hw.num_microbatches = kMicroBatches;
  hw.max_delay = 8.0;
  hw.num_workers = workers;
  return hw;
}

template <class Engine>
void run_step(Engine& engine, const Workload& w) {
  auto res = engine.forward_backward(w.inputs, w.targets, w.head);
  benchmark::DoNotOptimize(res);
  for (std::size_t i = 0; i < engine.weights().size(); ++i) {
    engine.weights()[i] -= 1e-4F * engine.gradients()[i];
  }
  engine.commit_update();
}

void BM_SequentialHogwildStep(benchmark::State& state) {
  nn::Model model = make_mlp();
  hogwild::HogwildEngine engine(model, bench_config(0), 1);
  Workload w;
  for (auto _ : state) {
    run_step(engine, w);
  }
  state.SetItemsProcessed(state.iterations() * kMicroBatches * kMicroSize);
}
BENCHMARK(BM_SequentialHogwildStep)->Unit(benchmark::kMillisecond);

void BM_ThreadedHogwildStep(benchmark::State& state) {
  auto workers = static_cast<int>(state.range(0));
  nn::Model model = make_mlp();
  hogwild::ThreadedHogwildEngine engine(model, bench_config(workers), 1);
  Workload w;
  for (auto _ : state) {
    run_step(engine, w);
  }
  state.SetItemsProcessed(state.iterations() * kMicroBatches * kMicroSize);
  state.counters["workers"] = static_cast<double>(engine.num_workers());
}
BENCHMARK(BM_ThreadedHogwildStep)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
