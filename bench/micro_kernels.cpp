// Tensor-kernel micro bench: the naive oracle vs the tiled backend
// (src/tensor/kernels/), from raw GEMM GFLOP/s up to end-to-end training
// and serving throughput.
//
// Sections:
//   gemm        GFLOP/s per variant across a size sweep (square sizes plus
//               a Linear-forward-shaped nt case), with a bitwise check of
//               every tiled result against naive — the speedup numbers are
//               only meaningful because the outputs are identical.
//   epilogue    fused bias+ReLU GEMM vs the unfused three-pass sequence.
//   lanes       intra-op row-split scaling of the tiled 512^3 GEMM
//               (single-core hosts should show ~1x: the lanes timeshare).
//   train       steps/s of a sequential-backend MLP training loop under
//               each kernel kind (the whole-pipeline win, not just GEMM).
//   serve       saturation throughput of serve::PipelineServer per kind.
//   calibration the measured GEMM/memory rates KernelCalibration feeds the
//               partitioner's `calibrated` mode.
//
// Usage: bench_micro_kernels [--quick=1] [--reps=5] [--train-steps=30]
//          [--sat-requests=600] [--seed=3]
//          [--json=1]  (also write the BENCH_kernels.json snapshot)

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <iostream>
#include <limits>
#include <string>
#include <vector>

#include "bench/bench_json.h"
#include "bench/bench_util.h"
#include "src/core/backend.h"
#include "src/serve/batch_scheduler.h"
#include "src/serve/checkpoint.h"
#include "src/serve/pipeline_server.h"
#include "src/tensor/kernels/calibration.h"
#include "src/tensor/kernels/registry.h"
#include "src/tensor/ops.h"
#include "src/util/cli.h"
#include "src/util/rng.h"
#include "src/util/table.h"

namespace {

using namespace pipemare;
using tensor::kernels::KernelKind;
using tensor::kernels::KernelRegistry;

using Clock = std::chrono::steady_clock;

/// Saves/restores the process-global kernel selection around the bench.
class KernelStateGuard {
 public:
  KernelStateGuard()
      : kind_(KernelRegistry::kind()),
        lanes_(KernelRegistry::lanes()),
        min_flops_(KernelRegistry::intra_op_min_flops()) {}
  ~KernelStateGuard() {
    KernelRegistry::set_kind(kind_);
    KernelRegistry::set_lanes(lanes_);
    KernelRegistry::set_intra_op_min_flops(min_flops_);
  }

 private:
  KernelKind kind_;
  int lanes_;
  std::int64_t min_flops_;
};

std::vector<float> filled(std::int64_t count, int salt) {
  std::vector<float> v(static_cast<std::size_t>(count));
  for (std::int64_t i = 0; i < count; ++i) {
    v[static_cast<std::size_t>(i)] =
        static_cast<float>((i * 31 + salt) % 13) * 0.25F - 1.5F;
  }
  return v;
}

/// Minimum wall time of `reps` calls to fn(), in nanoseconds.
template <typename Fn>
double min_ns(int reps, Fn&& fn) {
  double best = std::numeric_limits<double>::max();
  for (int r = 0; r < reps; ++r) {
    auto t0 = Clock::now();
    fn();
    auto t1 = Clock::now();
    best = std::min(
        best, static_cast<double>(
                  std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                      .count()));
  }
  return best;
}

struct GemmRow {
  std::string variant;  // "nn", "tn", "nt"
  int m = 0, k = 0, n = 0;
  double naive_gflops = 0.0;
  double tiled_gflops = 0.0;
  bool bitwise_equal = false;
  double speedup() const {
    return naive_gflops > 0.0 ? tiled_gflops / naive_gflops : 0.0;
  }
};

GemmRow bench_gemm(const std::string& variant, int m, int k, int n, int reps) {
  GemmRow row;
  row.variant = variant;
  row.m = m;
  row.k = k;
  row.n = n;
  auto a = filled(static_cast<std::int64_t>(m) * k, 1);
  auto b = filled(static_cast<std::int64_t>(k) * n, 2);
  std::vector<float> c(static_cast<std::size_t>(m) * static_cast<std::size_t>(n));
  std::vector<float> c_ref(c.size());

  const double flops = 2.0 * m * static_cast<double>(k) * n;
  for (KernelKind kind : {KernelKind::naive, KernelKind::tiled}) {
    const auto& table = KernelRegistry::table(kind);
    auto* fn = variant == "nn"   ? table.gemm_nn
               : variant == "tn" ? table.gemm_tn
                                 : table.gemm_nt;
    double ns = min_ns(reps, [&] {
      std::fill(c.begin(), c.end(), 0.0F);
      fn(a.data(), b.data(), c.data(), m, k, n);
    });
    // The fill is inside the timed region (the table's contract is a
    // zeroed C); at these sizes it is noise next to the GEMM itself.
    const double gflops = ns > 0.0 ? flops / ns : 0.0;
    if (kind == KernelKind::naive) {
      row.naive_gflops = gflops;
      c_ref = c;
    } else {
      row.tiled_gflops = gflops;
      row.bitwise_equal =
          std::memcmp(c.data(), c_ref.data(), sizeof(float) * c.size()) == 0;
    }
  }
  return row;
}

struct EpilogueResult {
  double unfused_ms = 0.0;
  double fused_ms = 0.0;
  bool bitwise_equal = false;
  double speedup() const { return fused_ms > 0.0 ? unfused_ms / fused_ms : 0.0; }
};

EpilogueResult bench_epilogue(int m, int k, int n, int reps) {
  KernelStateGuard guard;
  KernelRegistry::set_kind(KernelKind::tiled);
  util::Rng rng(17);
  tensor::Tensor a({m, k});
  tensor::Tensor bt({n, k});
  for (std::int64_t i = 0; i < a.size(); ++i) a[i] = static_cast<float>(rng.normal());
  for (std::int64_t i = 0; i < bt.size(); ++i) bt[i] = static_cast<float>(rng.normal());
  std::vector<float> bias(static_cast<std::size_t>(n));
  for (auto& v : bias) v = static_cast<float>(rng.normal());
  std::span<const float> bs(bias);

  EpilogueResult r;
  tensor::Tensor unfused;
  r.unfused_ms = min_ns(reps, [&] {
                   tensor::Tensor y = tensor::matmul_nt(a, bt);
                   tensor::add_row_inplace(y, bs);
                   unfused = tensor::relu(y);
                 }) /
                 1e6;
  tensor::Tensor fused;
  r.fused_ms = min_ns(reps, [&] {
                 fused = tensor::matmul_nt_bias_relu(a, bt, bs);
               }) /
               1e6;
  r.bitwise_equal =
      std::memcmp(fused.data(), unfused.data(),
                  sizeof(float) * static_cast<std::size_t>(fused.size())) == 0;
  return r;
}

double bench_lanes(int lanes, int size, int reps) {
  KernelStateGuard guard;
  KernelRegistry::set_kind(KernelKind::tiled);
  KernelRegistry::set_lanes(lanes);
  KernelRegistry::set_intra_op_min_flops(0);
  auto a = filled(static_cast<std::int64_t>(size) * size, 1);
  auto b = filled(static_cast<std::int64_t>(size) * size, 2);
  std::vector<float> c(static_cast<std::size_t>(size) * static_cast<std::size_t>(size));
  const auto& table = KernelRegistry::table(KernelKind::tiled);
  double ns = min_ns(reps, [&] {
    std::fill(c.begin(), c.end(), 0.0F);
    table.gemm_nn(a.data(), b.data(), c.data(), size, size, size);
  });
  return ns > 0.0 ? 2.0 * size * static_cast<double>(size) * size / ns : 0.0;
}

/// Sequential-backend training steps/s under the given kernel kind.
double bench_train(KernelKind kind, int steps, std::uint64_t seed) {
  KernelStateGuard guard;
  KernelRegistry::set_kind(kind);
  constexpr int kLayers = 6, kWidth = 256, kClasses = 10, kMicro = 4;
  benchutil::MlpWorkload workload(kMicro, /*micro_size=*/32, kWidth, kClasses,
                                  seed);
  pipeline::EngineConfig ec;
  ec.method = pipeline::Method::PipeMare;
  ec.num_stages = 4;
  ec.num_microbatches = kMicro;
  auto backend = core::BackendRegistry::instance().create(
      benchutil::make_bench_mlp(kLayers, kWidth, kClasses),
      core::BackendConfig("sequential"), ec, seed);
  for (int s = 0; s < 2; ++s) benchutil::backend_step(*backend, workload);
  auto t0 = Clock::now();
  for (int s = 0; s < steps; ++s) benchutil::backend_step(*backend, workload);
  const double secs = std::chrono::duration<double>(Clock::now() - t0).count();
  return secs > 0.0 ? steps / secs : 0.0;
}

/// Closed-loop serving saturation throughput under the given kernel kind.
double bench_serve(KernelKind kind, int requests, std::uint64_t seed) {
  KernelStateGuard guard;
  KernelRegistry::set_kind(kind);
  constexpr int kLayers = 6, kWidth = 128, kClasses = 10;
  nn::Model model = benchutil::make_bench_mlp(kLayers, kWidth, kClasses);
  std::vector<float> weights(static_cast<std::size_t>(model.param_count()));
  util::Rng rng(seed);
  model.init_params(weights, rng);
  serve::ModelCheckpoint ckpt;
  ckpt.digest = serve::shape_digest(model);
  ckpt.weights = weights;
  serve::ServeConfig cfg;
  cfg.num_stages = 4;
  cfg.workers = 1;
  cfg.queue_capacity = requests;
  cfg.batch.policy = serve::BatchPolicy::Continuous;
  cfg.batch.max_batch = 8;
  serve::PipelineServer server(model, ckpt, cfg);
  server.start();

  std::vector<serve::TicketPtr> tickets;
  tickets.reserve(static_cast<std::size_t>(requests));
  const auto t0 = Clock::now();
  for (int i = 0; i < requests; ++i) {
    nn::Flow f;
    f.x = tensor::Tensor({1, kWidth});
    for (std::int64_t j = 0; j < f.x.size(); ++j) {
      f.x[j] = static_cast<float>(rng.normal()) * 0.5F;
    }
    tickets.push_back(server.submit(std::move(f)));
  }
  int ok = 0;
  for (auto& t : tickets) {
    if (t->wait().status == serve::Status::Ok) ++ok;
  }
  const double secs = std::chrono::duration<double>(Clock::now() - t0).count();
  server.stop();
  return secs > 0.0 ? ok / secs : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  const bool quick = cli.get_bool("quick", false);
  const int reps = cli.get_int("reps", quick ? 2 : 5);
  const int train_steps = cli.get_int("train-steps", quick ? 4 : 30);
  const int sat_requests = cli.get_int("sat-requests", quick ? 120 : 600);
  const bool json = cli.get_bool("json", false);
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 3));

  std::cout << "micro_kernels: naive vs tiled (" << KernelRegistry::tiled_isa()
            << " tiled ISA, SIMD pragmas "
            << (KernelRegistry::simd_compiled() ? "on" : "off") << ")\n\n";

  // ---- GEMM sweep ---------------------------------------------------------
  std::vector<GemmRow> gemm_rows;
  const std::vector<int> sizes = quick ? std::vector<int>{128, 512}
                                       : std::vector<int>{64, 128, 256, 512};
  for (int s : sizes) {
    for (const char* variant : {"nn", "tn", "nt"}) {
      gemm_rows.push_back(bench_gemm(variant, s, s, s, reps));
    }
  }
  // A Linear-forward shape: skinny activation rows against a wide packed
  // weight (the nt variant nn::Linear dispatches).
  gemm_rows.push_back(bench_gemm("nt", 32, 256, 256, reps));

  util::Table gemm_table(
      {"variant", "m", "k", "n", "naive GF/s", "tiled GF/s", "speedup", "bitwise"});
  bool all_bitwise = true;
  for (const auto& r : gemm_rows) {
    all_bitwise = all_bitwise && r.bitwise_equal;
    gemm_table.add_row({r.variant, std::to_string(r.m), std::to_string(r.k),
                        std::to_string(r.n), util::fmt(r.naive_gflops, 1),
                        util::fmt(r.tiled_gflops, 1), util::fmt_x(r.speedup()),
                        r.bitwise_equal ? "==" : "DIFF"});
  }
  std::cout << gemm_table.to_string() << '\n';
  if (!all_bitwise) {
    std::cout << "ERROR: tiled result diverged from naive\n";
    return 1;
  }

  // ---- Fused epilogue -----------------------------------------------------
  auto epi = bench_epilogue(256, 256, 256, reps);
  std::cout << "epilogue 256^3: unfused (gemm+bias+relu) "
            << util::fmt(epi.unfused_ms, 2) << "ms, fused "
            << util::fmt(epi.fused_ms, 2) << "ms ("
            << util::fmt_x(epi.speedup()) << ", bitwise "
            << (epi.bitwise_equal ? "==" : "DIFF") << ")\n";

  // ---- Intra-op lanes -----------------------------------------------------
  std::vector<std::pair<int, double>> lane_rows;
  for (int lanes : {1, 2, 4}) {
    lane_rows.emplace_back(lanes, bench_lanes(lanes, 512, reps));
  }
  std::cout << "tiled 512^3 by intra-op lanes:";
  for (auto& [lanes, gflops] : lane_rows) {
    std::cout << "  L" << lanes << "=" << util::fmt(gflops, 1) << "GF/s";
  }
  std::cout << '\n';

  // ---- End-to-end train / serve ------------------------------------------
  const double train_naive = bench_train(KernelKind::naive, train_steps, seed);
  const double train_tiled = bench_train(KernelKind::tiled, train_steps, seed);
  const double serve_naive = bench_serve(KernelKind::naive, sat_requests, seed);
  const double serve_tiled = bench_serve(KernelKind::tiled, sat_requests, seed);
  std::cout << "train (sequential, 6x256 MLP): naive "
            << util::fmt(train_naive, 1) << " -> tiled "
            << util::fmt(train_tiled, 1) << " steps/s ("
            << util::fmt_x(train_tiled / std::max(1e-9, train_naive)) << ")\n";
  std::cout << "serve (saturation, 6x128 MLP): naive "
            << util::fmt(serve_naive, 0) << " -> tiled "
            << util::fmt(serve_tiled, 0) << " req/s ("
            << util::fmt_x(serve_tiled / std::max(1e-9, serve_naive)) << ")\n";

  // ---- Calibration --------------------------------------------------------
  auto cal_naive = tensor::kernels::KernelCalibration::measure(KernelKind::naive);
  auto cal_tiled = tensor::kernels::KernelCalibration::measure(KernelKind::tiled);
  std::cout << "calibration: naive gemm " << util::fmt(cal_naive.gemm_flops_per_ns, 1)
            << " GF/s / mem " << util::fmt(cal_naive.mem_bytes_per_ns, 1)
            << " GB/s; tiled gemm " << util::fmt(cal_tiled.gemm_flops_per_ns, 1)
            << " GF/s / mem " << util::fmt(cal_tiled.mem_bytes_per_ns, 1)
            << " GB/s\n";

  double gemm512_speedup = 0.0;
  for (const auto& r : gemm_rows) {
    if (r.variant == "nn" && r.m == 512) gemm512_speedup = r.speedup();
  }

  if (json) {
    benchutil::Json root = benchutil::Json::object();
    root.set("bench", "micro_kernels");
    root.set("machine", benchutil::machine_info());
    benchutil::Json params = benchutil::Json::object();
    params.set("reps", reps);
    params.set("train_steps", train_steps);
    params.set("sat_requests", sat_requests);
    params.set("seed", static_cast<std::int64_t>(seed));
    params.set("tiled_isa", std::string(KernelRegistry::tiled_isa()));
    params.set("simd_compiled", KernelRegistry::simd_compiled());
    root.set("params", std::move(params));

    benchutil::Json gemm = benchutil::Json::array();
    for (const auto& r : gemm_rows) {
      benchutil::Json g = benchutil::Json::object();
      g.set("variant", r.variant);
      g.set("m", r.m);
      g.set("k", r.k);
      g.set("n", r.n);
      g.set("naive_gflops", r.naive_gflops);
      g.set("tiled_gflops", r.tiled_gflops);
      g.set("speedup", r.speedup());
      g.set("bitwise_equal", r.bitwise_equal);
      gemm.push(std::move(g));
    }
    root.set("gemm", std::move(gemm));

    benchutil::Json ep = benchutil::Json::object();
    ep.set("unfused_ms", epi.unfused_ms);
    ep.set("fused_ms", epi.fused_ms);
    ep.set("speedup", epi.speedup());
    ep.set("bitwise_equal", epi.bitwise_equal);
    root.set("epilogue", std::move(ep));

    benchutil::Json lanes = benchutil::Json::array();
    for (auto& [count, gflops] : lane_rows) {
      benchutil::Json l = benchutil::Json::object();
      l.set("lanes", count);
      l.set("gflops", gflops);
      lanes.push(std::move(l));
    }
    root.set("intra_op_lanes", std::move(lanes));

    benchutil::Json cal = benchutil::Json::object();
    cal.set("naive_gemm_flops_per_ns", cal_naive.gemm_flops_per_ns);
    cal.set("naive_mem_bytes_per_ns", cal_naive.mem_bytes_per_ns);
    cal.set("tiled_gemm_flops_per_ns", cal_tiled.gemm_flops_per_ns);
    cal.set("tiled_mem_bytes_per_ns", cal_tiled.mem_bytes_per_ns);
    root.set("calibration", std::move(cal));

    benchutil::Json summary = benchutil::Json::object();
    summary.set("gemm_512_speedup", gemm512_speedup);
    summary.set("all_bitwise_equal", all_bitwise);
    summary.set("train_naive_steps_per_sec", train_naive);
    summary.set("train_tiled_steps_per_sec", train_tiled);
    summary.set("train_gain", train_tiled / std::max(1e-9, train_naive));
    summary.set("serve_naive_req_per_sec", serve_naive);
    summary.set("serve_tiled_req_per_sec", serve_tiled);
    summary.set("serve_gain", serve_tiled / std::max(1e-9, serve_naive));
    root.set("summary", std::move(summary));
    benchutil::write_bench_json("BENCH_kernels.json", root);
  }
  return 0;
}
