#pragma once

// Shared helpers for the bench binaries: table printing for the
// paper-reproduction drivers, plus the common MLP workload + backend step
// the micro benches run against the BackendRegistry.

#include <cstdint>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "src/core/backend.h"
#include "src/core/experiments.h"
#include "src/nn/activations.h"
#include "src/nn/heads.h"
#include "src/nn/linear.h"
#include "src/nn/model.h"
#include "src/util/rng.h"
#include "src/util/table.h"

namespace pipemare::benchutil {

/// A deep dropout-free MLP with uniform per-layer cost, so an even
/// weight-unit partition is also an even compute partition and every
/// registered backend (including threaded_hogwild, which rejects
/// stateful-forward modules) can run it.
inline nn::Model make_bench_mlp(int layers, int width, int classes) {
  nn::Model m;
  for (int i = 0; i < layers; ++i) {
    m.add(std::make_unique<nn::Linear>(width, width, /*relu_init=*/true));
    m.add(std::make_unique<nn::ReLU>());
  }
  m.add(std::make_unique<nn::Linear>(width, classes));
  return m;
}

/// The deliberately cost-skewed MLP the partition/steal/repartition
/// benches share: `wide_layers` wide Linear layers, a funnel, then a tail
/// of narrow ones, so the paper's uniform-by-count split (Section 4.1)
/// piles the heavy units onto one stage while the cost-balanced split (or
/// runtime stealing) spreads the work. With the default shape: 12 weight
/// units whose costs differ by ~64x end to end.
inline nn::Model make_skewed_mlp(int wide = 256, int narrow = 16,
                                 int narrow_layers = 8, int classes = 10,
                                 int wide_layers = 2) {
  nn::Model m;
  for (int i = 0; i < wide_layers; ++i) {
    m.add(std::make_unique<nn::Linear>(wide, wide, /*relu_init=*/true));
    m.add(std::make_unique<nn::ReLU>());
  }
  m.add(std::make_unique<nn::Linear>(wide, narrow, /*relu_init=*/true));
  m.add(std::make_unique<nn::ReLU>());
  for (int i = 0; i < narrow_layers; ++i) {
    m.add(std::make_unique<nn::Linear>(narrow, narrow, /*relu_init=*/true));
    m.add(std::make_unique<nn::ReLU>());
  }
  m.add(std::make_unique<nn::Linear>(narrow, classes));
  return m;
}

/// Deterministic classification minibatch for make_bench_mlp models.
struct MlpWorkload {
  std::vector<nn::Flow> inputs;
  std::vector<tensor::Tensor> targets;
  nn::ClassificationXent head;

  MlpWorkload(int microbatches, int micro_size, int width, int classes,
              std::uint64_t seed = 3) {
    util::Rng rng(seed);
    for (int m = 0; m < microbatches; ++m) {
      nn::Flow f;
      f.x = tensor::Tensor({micro_size, width});
      for (std::int64_t i = 0; i < f.x.size(); ++i) {
        f.x[i] = static_cast<float>(rng.normal());
      }
      tensor::Tensor t({micro_size});
      for (int j = 0; j < micro_size; ++j) {
        t[j] = static_cast<float>(rng.randint(classes));
      }
      inputs.push_back(std::move(f));
      targets.push_back(std::move(t));
    }
  }
};

/// One optimizer-free training step through the ExecutionBackend
/// interface — the single inner loop shared by the micro benches
/// (previously copy-pasted per engine type).
inline pipeline::StepResult backend_step(core::ExecutionBackend& backend,
                                         const MlpWorkload& w) {
  auto res = backend.forward_backward(w.inputs, w.targets, w.head);
  auto weights = backend.weights();
  auto grads = backend.gradients();
  for (std::size_t i = 0; i < weights.size(); ++i) {
    weights[i] -= 1e-4F * grads[i];
  }
  backend.commit_update();
  return res;
}

/// Prints a Table 2 / Table 3-style block of method rows.
inline void print_rows(const std::string& title, const std::string& metric,
                       const std::vector<core::MethodRow>& rows) {
  std::cout << title << '\n';
  util::Table t({"Method", "Best " + metric, "Target", "Speedup", "Epochs to tgt",
                 "Throughput", "W+Opt mem"});
  for (const auto& r : rows) {
    t.add_row({r.label, util::fmt(r.best_metric, 1), util::fmt(r.target_metric, 1),
               util::fmt_x(r.speedup_vs_gpipe),
               r.epochs_to_target < 0 ? "-" : std::to_string(r.epochs_to_target),
               util::fmt_x(r.throughput), util::fmt_x(r.memory_factor, 2)});
  }
  std::cout << t.to_string() << '\n';
}

/// Prints per-epoch metric curves side by side (figure-series output).
inline void print_curves(const std::string& title,
                         const std::vector<core::MethodRow>& rows, int stride = 2) {
  std::cout << title << '\n';
  std::vector<std::string> header = {"epoch"};
  std::size_t max_len = 0;
  for (const auto& r : rows) {
    header.push_back(r.label);
    max_len = std::max(max_len, r.result.curve.size());
  }
  util::Table t(std::move(header));
  for (std::size_t e = 0; e < max_len; e += static_cast<std::size_t>(stride)) {
    std::vector<std::string> row = {std::to_string(e + 1)};
    for (const auto& r : rows) {
      // A trailing divergence record has a NaN metric; print it as the
      // blow-up marker rather than "nan".
      row.push_back(e >= r.result.curve.size() ? (r.result.diverged ? "div" : "-")
                    : r.result.curve[e].is_divergence_record()
                        ? "div"
                        : util::fmt(r.result.curve[e].metric, 1));
    }
    t.add_row(std::move(row));
  }
  std::cout << t.to_string() << '\n';
}

}  // namespace pipemare::benchutil
