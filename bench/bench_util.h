#pragma once

// Shared printing helpers for the paper-reproduction bench binaries.

#include <iostream>
#include <string>
#include <vector>

#include "src/core/experiments.h"
#include "src/util/table.h"

namespace pipemare::benchutil {

/// Prints a Table 2 / Table 3-style block of method rows.
inline void print_rows(const std::string& title, const std::string& metric,
                       const std::vector<core::MethodRow>& rows) {
  std::cout << title << '\n';
  util::Table t({"Method", "Best " + metric, "Target", "Speedup", "Epochs to tgt",
                 "Throughput", "W+Opt mem"});
  for (const auto& r : rows) {
    t.add_row({r.label, util::fmt(r.best_metric, 1), util::fmt(r.target_metric, 1),
               util::fmt_x(r.speedup_vs_gpipe),
               r.epochs_to_target < 0 ? "-" : std::to_string(r.epochs_to_target),
               util::fmt_x(r.throughput), util::fmt_x(r.memory_factor, 2)});
  }
  std::cout << t.to_string() << '\n';
}

/// Prints per-epoch metric curves side by side (figure-series output).
inline void print_curves(const std::string& title,
                         const std::vector<core::MethodRow>& rows, int stride = 2) {
  std::cout << title << '\n';
  std::vector<std::string> header = {"epoch"};
  std::size_t max_len = 0;
  for (const auto& r : rows) {
    header.push_back(r.label);
    max_len = std::max(max_len, r.result.curve.size());
  }
  util::Table t(std::move(header));
  for (std::size_t e = 0; e < max_len; e += static_cast<std::size_t>(stride)) {
    std::vector<std::string> row = {std::to_string(e + 1)};
    for (const auto& r : rows) {
      row.push_back(e < r.result.curve.size()
                        ? util::fmt(r.result.curve[e].metric, 1)
                        : (r.result.diverged ? "div" : "-"));
    }
    t.add_row(std::move(row));
  }
  std::cout << t.to_string() << '\n';
}

}  // namespace pipemare::benchutil
