// Partition-strategy micro bench: predicted vs measured per-stage load on
// a deliberately cost-skewed model, uniform vs balanced splits.
//
// The model front-loads two wide Linear layers ahead of a tail of narrow
// ones, so the paper's uniform-by-count split (Section 4.1) piles the
// heavy units onto one stage while the cost-balanced split spreads them.
// For each strategy the bench reports the partitioner's predicted stage
// costs (cost_model.h) next to ThreadedEngine's measured busy / wait
// nanoseconds (stage_stats()), plus end-to-end steps/sec — uniform's
// throughput is bounded by its overloaded stage, so balanced should win
// on both the balance ratio and the wall clock.
//
// The busy-spread reduction shows on any machine; the steps/sec gain
// needs >= `stages` real cores (stage workers timeshare otherwise, so the
// wall clock is bounded by *total* compute, not the max stage — on a
// single-core host balanced and uniform converge to the same throughput).
//
// Usage: bench_micro_partition [--quick=1] [--steps=40] [--stages=4]
//          [--microbatches=4] [--measured=1]  (measured: time each module
//          instead of the analytic FLOP model) [--seed=3]
//          [--json=1]  (also write the BENCH_partition.json snapshot)

#include <chrono>
#include <cmath>
#include <cstdint>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_json.h"
#include "bench/bench_util.h"
#include "src/core/engine_backend.h"
#include "src/core/stage_load.h"
#include "src/pipeline/partition.h"
#include "src/util/cli.h"
#include "src/util/table.h"

namespace {

using namespace pipemare;

constexpr int kWide = 256;
constexpr int kNarrow = 16;
constexpr int kNarrowLayers = 8;
constexpr int kClasses = 10;

/// The shared skewed model (bench_util.h); micro_steal runs the same one.
nn::Model make_skewed_mlp() {
  return benchutil::make_skewed_mlp(kWide, kNarrow, kNarrowLayers, kClasses);
}

struct RunResult {
  pipeline::Partition partition;
  std::vector<pipeline::ThreadedEngine::StageStats> stats;
  double steps_per_sec = 0.0;
};

RunResult run_strategy(pipeline::PartitionStrategy strategy, bool measured,
                       const benchutil::MlpWorkload& workload, int stages,
                       int microbatches, int steps, std::uint64_t seed,
                       bool calibrated = false) {
  pipeline::EngineConfig ec;
  ec.method = pipeline::Method::PipeMare;
  ec.num_stages = stages;
  ec.num_microbatches = microbatches;
  ec.partition.strategy = strategy;
  ec.partition.measured = measured;
  ec.partition.calibrated = calibrated;
  ec.partition.probe = std::make_shared<const nn::Flow>(workload.inputs.at(0));

  auto backend = core::BackendRegistry::instance().create(
      make_skewed_mlp(), core::BackendConfig("threaded"), ec, seed);
  auto* threaded = dynamic_cast<core::ThreadedBackend*>(backend.get());

  // Warmup fills the version ring and faults in buffers off the clock.
  for (int s = 0; s < 2; ++s) benchutil::backend_step(*backend, workload);
  threaded->engine().reset_stage_stats();

  auto t0 = std::chrono::steady_clock::now();
  for (int s = 0; s < steps; ++s) benchutil::backend_step(*backend, workload);
  auto t1 = std::chrono::steady_clock::now();

  RunResult r;
  r.partition = threaded->engine().partition();
  r.stats = threaded->engine().stage_stats();
  double secs = std::chrono::duration<double>(t1 - t0).count();
  r.steps_per_sec = secs > 0.0 ? steps / secs : 0.0;
  return r;
}

void print_run(const std::string& label, const RunResult& r) {
  std::cout << label << " (balance ratio "
            << util::fmt(r.partition.balance_ratio(), 2) << ", "
            << util::fmt(r.steps_per_sec, 1) << " steps/s)\n";
  util::Table t({"stage", "units", "params", "predicted share", "busy ms",
                 "busy share", "pop wait ms", "push wait ms"});
  double cost_total = 0.0;
  for (double c : r.partition.stage_cost) cost_total += c;
  std::uint64_t busy_total = 0;
  for (const auto& s : r.stats) busy_total += s.busy_ns;
  std::vector<int> units_per_stage(static_cast<std::size_t>(r.partition.num_stages), 0);
  for (int st : r.partition.unit_stage) ++units_per_stage[static_cast<std::size_t>(st)];
  for (int s = 0; s < r.partition.num_stages; ++s) {
    auto idx = static_cast<std::size_t>(s);
    t.add_row({std::to_string(s), std::to_string(units_per_stage[idx]),
               std::to_string(r.partition.stage_param_count[idx]),
               util::fmt(100.0 * r.partition.stage_cost[idx] / cost_total, 1) + "%",
               util::fmt(static_cast<double>(r.stats[idx].busy_ns) / 1e6, 1),
               util::fmt(busy_total > 0
                             ? 100.0 * static_cast<double>(r.stats[idx].busy_ns) /
                                   static_cast<double>(busy_total)
                             : 0.0,
                         1) +
                   "%",
               util::fmt(static_cast<double>(r.stats[idx].pop_wait_ns) / 1e6, 1),
               util::fmt(static_cast<double>(r.stats[idx].push_wait_ns) / 1e6, 1)});
  }
  std::cout << t.to_string() << '\n';
}

/// One strategy's block of the BENCH_partition.json snapshot.
benchutil::Json run_to_json(const std::string& label, const RunResult& r) {
  benchutil::Json j = benchutil::Json::object();
  j.set("label", label);
  j.set("balance_ratio", r.partition.balance_ratio());
  j.set("busy_spread", pipemare::core::StageLoadObserver::busy_spread(r.stats));
  j.set("steps_per_sec", r.steps_per_sec);
  benchutil::Json stages = benchutil::Json::array();
  for (int s = 0; s < r.partition.num_stages; ++s) {
    auto idx = static_cast<std::size_t>(s);
    benchutil::Json st = benchutil::Json::object();
    st.set("stage", s);
    st.set("params", static_cast<std::int64_t>(r.partition.stage_param_count[idx]));
    st.set("predicted_cost", r.partition.stage_cost[idx]);
    st.set("busy_ns", r.stats[idx].busy_ns);
    st.set("pop_wait_ns", r.stats[idx].pop_wait_ns);
    st.set("push_wait_ns", r.stats[idx].push_wait_ns);
    stages.push(std::move(st));
  }
  j.set("stages", std::move(stages));
  return j;
}

/// Total-variation distance between the partition's predicted stage-cost
/// shares and the measured busy-ns shares: 0 = the cost model's split
/// weights match wall-clock exactly, 1 = completely misallocated. The
/// kernel-calibration pass (PartitionSpec::calibrated) exists to shrink
/// this number: raw FLOP counts over-weight GEMM-heavy modules once the
/// tiled kernels run them ~2-3x faster than the memory-bound ops.
double predicted_vs_measured_error(const RunResult& r) {
  double cost_total = 0.0;
  for (double c : r.partition.stage_cost) cost_total += c;
  std::uint64_t busy_total = 0;
  for (const auto& s : r.stats) busy_total += s.busy_ns;
  if (cost_total <= 0.0 || busy_total == 0) return 0.0;
  double err = 0.0;
  for (int s = 0; s < r.partition.num_stages; ++s) {
    auto idx = static_cast<std::size_t>(s);
    err += std::abs(r.partition.stage_cost[idx] / cost_total -
                    static_cast<double>(r.stats[idx].busy_ns) /
                        static_cast<double>(busy_total));
  }
  return err / 2.0;
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  const bool quick = cli.get_bool("quick", false);
  const int steps = cli.get_int("steps", quick ? 6 : 40);
  const int stages = cli.get_int("stages", 4);
  const int microbatches = cli.get_int("microbatches", 4);
  const bool measured = cli.get_bool("measured", false);
  const bool json = cli.get_bool("json", false);
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 3));

  benchutil::MlpWorkload workload(microbatches, /*micro_size=*/32, kWide, kClasses,
                                  seed);

  std::cout << "micro_partition: skewed " << kWide << "->" << kNarrow
            << " MLP, P=" << stages << ", N=" << microbatches << ", " << steps
            << " steps, cost source "
            << (measured ? "measured (timed reps)" : "analytic (FLOP model)") << "\n\n";

  auto uniform = run_strategy(pipeline::PartitionStrategy::Uniform, false, workload,
                              stages, microbatches, steps, seed);
  auto balanced = run_strategy(pipeline::PartitionStrategy::Balanced, measured,
                               workload, stages, microbatches, steps, seed);
  // Same analytic cost model, rescaled to predicted nanoseconds by the
  // KernelCalibration micro-profile of the active kernel backend.
  auto calibrated = run_strategy(pipeline::PartitionStrategy::Balanced, false,
                                 workload, stages, microbatches, steps, seed,
                                 /*calibrated=*/true);

  print_run("uniform (unit-count split)", uniform);
  print_run("balanced (cost-model split)", balanced);
  print_run("balanced,calibrated (kernel-calibrated cost model)", calibrated);

  // Evaluate both splits under the same (balanced-run) cost model: the
  // uniform partition's own stage_cost counts units, which is exactly the
  // assumption the cost model corrects.
  auto ratio_under = [](const pipeline::Partition& p,
                        const std::vector<double>& costs) {
    std::vector<double> stage(static_cast<std::size_t>(p.num_stages), 0.0);
    for (std::size_t u = 0; u < costs.size(); ++u) {
      stage[static_cast<std::size_t>(p.unit_stage[u])] += costs[u];
    }
    return pipeline::balance_ratio(stage);
  };
  const std::vector<double>& costs = balanced.partition.unit_cost;

  const double spread_u = core::StageLoadObserver::busy_spread(uniform.stats);
  const double spread_b = core::StageLoadObserver::busy_spread(balanced.stats);
  std::cout << "balanced vs uniform: predicted max/mean "
            << util::fmt(ratio_under(uniform.partition, costs), 2) << " -> "
            << util::fmt(ratio_under(balanced.partition, costs), 2)
            << ", measured busy spread " << util::fmt(spread_u, 2) << " -> "
            << util::fmt(spread_b, 2) << ", throughput "
            << util::fmt(uniform.steps_per_sec, 1) << " -> "
            << util::fmt(balanced.steps_per_sec, 1) << " steps/s ("
            << util::fmt_x(balanced.steps_per_sec /
                           std::max(1e-9, uniform.steps_per_sec))
            << ")\n";

  const double err_analytic = predicted_vs_measured_error(balanced);
  const double err_calibrated = predicted_vs_measured_error(calibrated);
  std::cout << "predicted-vs-measured stage-share error (TV distance): "
            << "analytic " << util::fmt(err_analytic, 3) << " -> calibrated "
            << util::fmt(err_calibrated, 3) << "\n";

  if (json) {
    benchutil::Json root = benchutil::Json::object();
    root.set("bench", "micro_partition");
    root.set("machine", benchutil::machine_info());
    benchutil::Json params = benchutil::Json::object();
    params.set("stages", stages);
    params.set("microbatches", microbatches);
    params.set("steps", steps);
    params.set("measured", measured);
    params.set("seed", static_cast<std::int64_t>(seed));
    root.set("params", std::move(params));
    benchutil::Json runs = benchutil::Json::array();
    runs.push(run_to_json("uniform", uniform));
    runs.push(run_to_json("balanced", balanced));
    runs.push(run_to_json("balanced,calibrated", calibrated));
    root.set("runs", std::move(runs));
    benchutil::Json summary = benchutil::Json::object();
    summary.set("predicted_ratio_uniform", ratio_under(uniform.partition, costs));
    summary.set("predicted_ratio_balanced", ratio_under(balanced.partition, costs));
    summary.set("busy_spread_uniform", spread_u);
    summary.set("busy_spread_balanced", spread_b);
    summary.set("predicted_error_analytic", err_analytic);
    summary.set("predicted_error_calibrated", err_calibrated);
    summary.set("throughput_gain",
                balanced.steps_per_sec / std::max(1e-9, uniform.steps_per_sec));
    root.set("summary", std::move(summary));
    benchutil::write_bench_json("BENCH_partition.json", root);
  }
  return 0;
}
