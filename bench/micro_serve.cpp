// Serving micro bench: continuous vs fixed batching on the
// serve::PipelineServer, across worker counts.
//
// Two load shapes per configuration:
//   light       open-loop arrivals at --rate req/s (the generator sleeps
//               to the next arrival time regardless of completions), the
//               regime the batch policy dominates: a fixed-batch server
//               holds every lone request until the max-wait flush, so its
//               p99 floors at ~max_wait + service time, while continuous
//               batching dispatches on arrival (p99 ~ service time);
//   saturation  closed-loop: every request submitted up front, the queue
//               never runs dry, so the slots stay busy and each admission
//               round forms a full batch under either policy — throughput
//               should match to noise.
// That pair is the serving claim in one table: continuous wins p99 under
// light load and gives up nothing at saturation.
//
// Usage: bench_micro_serve [--quick=1] [--requests=160] [--sat-requests=1200]
//          [--rate=200] [--stages=4] [--batch=8] [--max-wait=5]
//          [--workers=<int> (0 = 1 and min(4, cores) rows)] [--seed=3]
//          [--json=1]  (also write the BENCH_serve.json snapshot)

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_json.h"
#include "bench/bench_util.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/serve/batch_scheduler.h"
#include "src/serve/checkpoint.h"
#include "src/serve/pipeline_server.h"
#include "src/util/cli.h"
#include "src/util/rng.h"
#include "src/util/table.h"

namespace {

using namespace pipemare;

constexpr int kWidth = 128;
constexpr int kLayers = 6;
constexpr int kClasses = 10;

double percentile(std::vector<double> v, double q) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const auto idx = static_cast<std::size_t>(
      q * static_cast<double>(v.size() - 1) + 0.5);
  return v[std::min(idx, v.size() - 1)];
}

tensor::Tensor make_input(util::Rng& rng) {
  tensor::Tensor x({1, kWidth});
  for (std::int64_t i = 0; i < x.size(); ++i) {
    x[i] = static_cast<float>(rng.normal()) * 0.5f;
  }
  return x;
}

struct RunResult {
  std::string label;
  serve::BatchPolicy policy = serve::BatchPolicy::Continuous;
  int workers = 0;
  double light_p50_ms = 0.0;
  double light_p99_ms = 0.0;
  double light_mean_batch = 0.0;
  double sat_throughput = 0.0;   ///< completed requests / second
  double sat_mean_batch = 0.0;
  std::uint64_t rejected = 0;
};

serve::ServeConfig make_config(serve::BatchPolicy policy, int workers, int stages,
                               int max_batch, double max_wait_ms,
                               int queue_capacity) {
  serve::ServeConfig cfg;
  cfg.num_stages = stages;
  cfg.workers = workers;
  cfg.queue_capacity = queue_capacity;
  cfg.batch.policy = policy;
  cfg.batch.max_batch = max_batch;
  cfg.batch.max_wait_ms = max_wait_ms;
  return cfg;
}

/// Open-loop generator: submissions at fixed interarrival 1/rate,
/// independent of completions (the arrival process of a latency bench must
/// not be throttled by the thing it measures).
void run_light(serve::PipelineServer& server, int requests, double rate,
               std::uint64_t seed, RunResult& out) {
  util::Rng rng(seed);
  const auto interarrival = std::chrono::nanoseconds(
      static_cast<std::int64_t>(1e9 / std::max(1.0, rate)));
  std::vector<serve::TicketPtr> tickets;
  tickets.reserve(static_cast<std::size_t>(requests));
  auto next = std::chrono::steady_clock::now();
  for (int i = 0; i < requests; ++i) {
    std::this_thread::sleep_until(next);
    next += interarrival;
    nn::Flow f;
    f.x = make_input(rng);
    tickets.push_back(server.submit(std::move(f)));
  }
  std::vector<double> latencies;
  double batch_sum = 0.0;
  for (auto& t : tickets) {
    const serve::Response& r = t->wait();
    if (r.status != serve::Status::Ok) {
      ++out.rejected;
      continue;
    }
    latencies.push_back(r.total_ms);
    batch_sum += r.batch_requests;
  }
  out.light_p50_ms = percentile(latencies, 0.50);
  out.light_p99_ms = percentile(latencies, 0.99);
  out.light_mean_batch =
      latencies.empty() ? 0.0 : batch_sum / static_cast<double>(latencies.size());
}

/// Closed-loop saturation: everything submitted up front (the queue is
/// sized to hold it), throughput = completions / wall.
void run_saturation(serve::PipelineServer& server, int requests,
                    std::uint64_t seed, RunResult& out) {
  util::Rng rng(seed);
  std::vector<serve::TicketPtr> tickets;
  tickets.reserve(static_cast<std::size_t>(requests));
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < requests; ++i) {
    nn::Flow f;
    f.x = make_input(rng);
    tickets.push_back(server.submit(std::move(f)));
  }
  double batch_sum = 0.0;
  int ok = 0;
  for (auto& t : tickets) {
    const serve::Response& r = t->wait();
    if (r.status != serve::Status::Ok) {
      ++out.rejected;
      continue;
    }
    ++ok;
    batch_sum += r.batch_requests;
  }
  const auto t1 = std::chrono::steady_clock::now();
  const double secs = std::chrono::duration<double>(t1 - t0).count();
  out.sat_throughput = secs > 0.0 ? ok / secs : 0.0;
  out.sat_mean_batch = ok > 0 ? batch_sum / ok : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  const bool quick = cli.get_bool("quick", false);
  const int requests = cli.get_int("requests", quick ? 40 : 160);
  const int sat_requests = cli.get_int("sat-requests", quick ? 240 : 1200);
  const double rate = cli.get_double("rate", 200.0);
  const int stages = cli.get_int("stages", 4);
  const int max_batch = cli.get_int("batch", 8);
  const double max_wait_ms = cli.get_double("max-wait", 5.0);
  const bool json = cli.get_bool("json", false);
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 3));
  // Bench-level tracing (one session over every server run; the
  // ServeConfig paths stay unset so the servers don't restart it).
  const std::string trace_path = cli.get("trace", "");
  const std::string metrics_path = cli.get("metrics", "");
  if (!trace_path.empty()) obs::TraceRecorder::instance().enable();

  std::vector<int> worker_counts;
  const int workers_flag = cli.get_int("workers", 0);
  if (workers_flag > 0) {
    worker_counts.push_back(workers_flag);
  } else {
    worker_counts.push_back(1);
    const int cores = static_cast<int>(std::thread::hardware_concurrency());
    const int more = std::min(4, std::max(2, cores));
    if (more > 1) worker_counts.push_back(more);
  }

  nn::Model model = benchutil::make_bench_mlp(kLayers, kWidth, kClasses);
  std::vector<float> weights(static_cast<std::size_t>(model.param_count()));
  util::Rng rng(seed);
  model.init_params(weights, rng);
  serve::ModelCheckpoint ckpt;
  ckpt.digest = serve::shape_digest(model);
  ckpt.weights = weights;

  std::cout << "micro_serve: " << kLayers << "x" << kWidth << " MLP, P=" << stages
            << ", max_batch=" << max_batch << ", max_wait=" << max_wait_ms
            << "ms; light: " << requests << " req @ " << rate
            << "/s, saturation: " << sat_requests << " req\n\n";

  std::vector<RunResult> rows;
  for (int workers : worker_counts) {
    for (serve::BatchPolicy policy :
         {serve::BatchPolicy::Fixed, serve::BatchPolicy::Continuous}) {
      RunResult r;
      r.policy = policy;
      r.workers = workers;
      r.label = std::string(serve::batch_policy_name(policy)) + "/W=" +
                std::to_string(workers);
      {
        serve::PipelineServer server(
            model, ckpt,
            make_config(policy, workers, stages, max_batch, max_wait_ms,
                        /*queue_capacity=*/std::max(64, requests)));
        server.start();
        run_light(server, requests, rate, seed, r);
        server.stop();
      }
      {
        serve::PipelineServer server(
            model, ckpt,
            make_config(policy, workers, stages, max_batch, max_wait_ms,
                        /*queue_capacity=*/sat_requests));
        server.start();
        run_saturation(server, sat_requests, seed, r);
        server.stop();
      }
      rows.push_back(std::move(r));
    }
  }

  util::Table t({"run", "light p50", "light p99", "light batch", "sat req/s",
                 "sat batch", "rejected"});
  for (const auto& r : rows) {
    t.add_row({r.label, util::fmt(r.light_p50_ms, 2) + "ms",
               util::fmt(r.light_p99_ms, 2) + "ms",
               util::fmt(r.light_mean_batch, 1), util::fmt(r.sat_throughput, 0),
               util::fmt(r.sat_mean_batch, 1), std::to_string(r.rejected)});
  }
  std::cout << t.to_string() << '\n';

  // Policy comparison at matched worker count (the last worker row).
  const RunResult* fixed = nullptr;
  const RunResult* continuous = nullptr;
  for (const auto& r : rows) {
    if (r.workers != worker_counts.back()) continue;
    (r.policy == serve::BatchPolicy::Fixed ? fixed : continuous) = &r;
  }
  if (fixed != nullptr && continuous != nullptr) {
    std::cout << "continuous vs fixed at W=" << worker_counts.back()
              << ": light-load p99 " << util::fmt(fixed->light_p99_ms, 2)
              << "ms -> " << util::fmt(continuous->light_p99_ms, 2)
              << "ms (fixed pays the max-wait flush on nearly every lone "
                 "request), saturation throughput "
              << util::fmt(fixed->sat_throughput, 0) << " -> "
              << util::fmt(continuous->sat_throughput, 0)
              << " req/s (full batches either way once the queue stays "
                 "non-empty).\n";
  }

  if (json) {
    benchutil::Json root = benchutil::Json::object();
    root.set("bench", "micro_serve");
    root.set("machine", benchutil::machine_info());
    benchutil::Json params = benchutil::Json::object();
    params.set("stages", stages);
    params.set("max_batch", max_batch);
    params.set("max_wait_ms", max_wait_ms);
    params.set("light_requests", requests);
    params.set("light_rate_per_sec", rate);
    params.set("saturation_requests", sat_requests);
    params.set("seed", static_cast<std::int64_t>(seed));
    root.set("params", std::move(params));
    benchutil::Json runs = benchutil::Json::array();
    for (const auto& r : rows) {
      benchutil::Json j = benchutil::Json::object();
      j.set("label", r.label);
      j.set("policy", std::string(serve::batch_policy_name(r.policy)));
      j.set("workers", r.workers);
      j.set("light_p50_ms", r.light_p50_ms);
      j.set("light_p99_ms", r.light_p99_ms);
      j.set("light_mean_batch", r.light_mean_batch);
      j.set("saturation_req_per_sec", r.sat_throughput);
      j.set("saturation_mean_batch", r.sat_mean_batch);
      j.set("rejected", r.rejected);
      runs.push(std::move(j));
    }
    root.set("runs", std::move(runs));
    if (fixed != nullptr && continuous != nullptr) {
      benchutil::Json summary = benchutil::Json::object();
      summary.set("workers", worker_counts.back());
      summary.set("light_p99_fixed_ms", fixed->light_p99_ms);
      summary.set("light_p99_continuous_ms", continuous->light_p99_ms);
      summary.set("light_p99_speedup",
                  fixed->light_p99_ms / std::max(1e-9, continuous->light_p99_ms));
      summary.set("saturation_throughput_ratio",
                  continuous->sat_throughput /
                      std::max(1e-9, fixed->sat_throughput));
      root.set("summary", std::move(summary));
    }
    benchutil::write_bench_json("BENCH_serve.json", root);
  }
  if (!trace_path.empty()) {
    obs::TraceRecorder::instance().disable();
    obs::write_chrome_trace(trace_path);
    std::cout << "wrote " << trace_path << '\n';
  }
  if (!metrics_path.empty()) {
    obs::MetricsRegistry::instance().write_json(metrics_path);
    std::cout << "wrote " << metrics_path << '\n';
  }
  return 0;
}
