#include "src/core/repartition_observer.h"

#include <stdexcept>
#include <string>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace pipemare::core {

RepartitionObserver::RepartitionObserver(ExecutionBackend& backend,
                                         pipeline::RepartitionConfig cfg,
                                         std::span<StepObserver* const> peers)
    : backend_(&backend),
      planner_(backend.model(), cfg),
      cfg_(cfg) {
  if (!backend.supports_repartition() || backend.partition() == nullptr) {
    throw std::invalid_argument(
        "RepartitionObserver: backend '" + std::string(backend.name()) +
        "' does not support dynamic repartitioning");
  }
  if (backend.stage_stats().empty()) {
    throw std::invalid_argument(
        "RepartitionObserver: backend '" + std::string(backend.name()) +
        "' has no per-stage load instrumentation to observe");
  }
  for (StepObserver* p : peers) {
    if (p != nullptr) peers_.push_back(p);
  }
}

int RepartitionObserver::migrations() const {
  int n = 0;
  for (const Event& e : events_) {
    if (e.migrated) ++n;
  }
  return n;
}

void RepartitionObserver::on_method_switch(pipeline::Method /*from*/,
                                           pipeline::Method /*to*/, int /*epoch*/) {
  // A method switch changes the delay profile mid-run; measurements that
  // straddle it would mix regimes, so restart the epoch baseline.
  last_busy_ = {};
  for (const auto& s : backend_->stage_stats()) last_busy_.push_back(s.busy_ns);
}

void RepartitionObserver::on_epoch(EpochRecord& record) {
  ++epoch_;
  if (record.is_divergence_record()) return;

  // This epoch's per-stage busy delta against the cumulative baseline
  // (with the same regressed-counter fallback StageLoadObserver uses).
  auto cumulative = backend_->stage_stats();
  std::vector<std::uint64_t> busy(cumulative.size(), 0);
  for (std::size_t s = 0; s < cumulative.size(); ++s) {
    std::uint64_t now = cumulative[s].busy_ns;
    std::uint64_t before = s < last_busy_.size() ? last_busy_[s] : 0;
    busy[s] = now >= before ? now - before : now;
  }

  // Cool-down after a migration: the new split must be measured for
  // min_epochs_between full epochs before another move is considered.
  if (last_migration_epoch_ > 0 &&
      epoch_ - last_migration_epoch_ < cfg_.min_epochs_between) {
    last_busy_.assign(cumulative.size(), 0);
    for (std::size_t s = 0; s < cumulative.size(); ++s) {
      last_busy_[s] = cumulative[s].busy_ns;
    }
    return;
  }

  pipeline::RepartitionDecision decision;
  auto planned = planner_.plan(*backend_->partition(), busy, &decision);

  Event ev;
  ev.epoch = epoch_;
  ev.observed_ratio = decision.observed_ratio;
  ev.planned_ratio = decision.planned_ratio;
  ev.migrated = planned.has_value();
  events_.push_back(ev);

  if (!planned.has_value()) {
    last_busy_.assign(cumulative.size(), 0);
    for (std::size_t s = 0; s < cumulative.size(); ++s) {
      last_busy_[s] = cumulative[s].busy_ns;
    }
    return;
  }

  // Migrate at the quiescent point (we are between minibatches here),
  // reset the load counters so the next epoch measures the new split from
  // zero, and tell the peers their per-stage baselines are stale.
  static obs::Counter& migrations =
      obs::MetricsRegistry::instance().counter("train.repartitions");
  migrations.add();
  obs::instant("repartition", "train", -1, -1, epoch_);
  pipeline::Partition from = *backend_->partition();
  backend_->repartition(*planned);
  backend_->reset_stage_stats();
  last_busy_ = {};
  last_migration_epoch_ = epoch_;
  for (StepObserver* p : peers_) {
    p->on_repartition(from, *backend_->partition(), epoch_);
  }
}

}  // namespace pipemare::core
