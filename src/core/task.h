#pragma once

#include <memory>
#include <string>

#include "src/data/dataset.h"
#include "src/data/image_data.h"
#include "src/data/regression_data.h"
#include "src/data/translation_data.h"
#include "src/nn/heads.h"
#include "src/nn/model.h"
#include "src/nn/resnet.h"
#include "src/nn/transformer.h"

namespace pipemare::core {

/// A benchmark task: dataset + model recipe + loss + quality metric.
/// The four paper workloads map to:
///   CIFAR10   -> ImageTask(cifar10_analog())
///   ImageNet  -> ImageTask(imagenet_analog())
///   IWSLT14   -> TranslationTask(iwslt_analog())
///   WMT17     -> TranslationTask(wmt_analog())
/// (synthetic stand-ins; see DESIGN.md section 4).
class Task {
 public:
  virtual ~Task() = default;

  virtual std::string name() const = 0;
  virtual std::string metric_name() const = 0;

  /// Fresh untrained model for this task.
  virtual nn::Model build_model() const = 0;

  virtual const nn::LossHead& loss() const = 0;

  virtual int train_size() const = 0;

  /// Minibatch of training examples at `indices`, split every `micro_size`.
  virtual data::MicroBatches minibatch(const std::vector<int>& indices,
                                       int micro_size) const = 0;

  /// Test-set quality metric of the given parameters (accuracy %, BLEU, or
  /// negative loss), higher is better.
  virtual double evaluate(const nn::Model& model, std::span<const float> params) const = 0;
};

/// Image classification with the ResNet-style CNN.
class ImageTask : public Task {
 public:
  ImageTask(data::ImageDatasetConfig data_cfg, nn::ResNetConfig model_cfg,
            std::string name);

  std::string name() const override { return name_; }
  std::string metric_name() const override { return "test accuracy (%)"; }
  nn::Model build_model() const override;
  const nn::LossHead& loss() const override { return loss_; }
  int train_size() const override { return dataset_.train_size(); }
  data::MicroBatches minibatch(const std::vector<int>& indices,
                               int micro_size) const override;
  double evaluate(const nn::Model& model, std::span<const float> params) const override;

  const data::SynthImageDataset& dataset() const { return dataset_; }

 private:
  data::SynthImageDataset dataset_;
  nn::ResNetConfig model_cfg_;
  nn::ClassificationXent loss_;
  std::string name_;
};

/// Sequence-to-sequence translation with the encoder-decoder Transformer.
/// Quality metric: corpus BLEU of beam-search decodes against references.
class TranslationTask : public Task {
 public:
  /// `beam_width` <= 1 evaluates with batched greedy decoding (fast; used
  /// for per-epoch curves), > 1 with beam search (the paper's beam-5
  /// protocol; on the synthetic task the two agree once the model trains —
  /// see tests). `evaluate_beam` always uses beam search regardless.
  TranslationTask(data::TranslationConfig data_cfg, nn::TransformerConfig model_cfg,
                  std::string name, int eval_sentences = 64, int beam_width = 1);

  /// Beam-search BLEU (width 5 by default), the paper's final metric.
  double evaluate_beam(const nn::Model& model, std::span<const float> params,
                       int beam_width = 5) const;

  std::string name() const override { return name_; }
  std::string metric_name() const override { return "BLEU"; }
  nn::Model build_model() const override;
  const nn::LossHead& loss() const override { return loss_; }
  int train_size() const override { return dataset_.train_size(); }
  data::MicroBatches minibatch(const std::vector<int>& indices,
                               int micro_size) const override;
  double evaluate(const nn::Model& model, std::span<const float> params) const override;

  const data::SynthTranslationDataset& dataset() const { return dataset_; }

 private:
  data::SynthTranslationDataset dataset_;
  nn::TransformerConfig model_cfg_;
  nn::SequenceXent loss_;
  std::string name_;
  int eval_sentences_;
  int beam_width_;
};

/// Linear regression (the Figure 3(b) workload).
class RegressionTask : public Task {
 public:
  explicit RegressionTask(data::RegressionConfig cfg);

  std::string name() const override { return "linear-regression"; }
  std::string metric_name() const override { return "-train loss"; }
  nn::Model build_model() const override;
  const nn::LossHead& loss() const override { return loss_; }
  int train_size() const override { return dataset_.size(); }
  data::MicroBatches minibatch(const std::vector<int>& indices,
                               int micro_size) const override;
  double evaluate(const nn::Model& model, std::span<const float> params) const override;

  const data::SynthRegressionDataset& dataset() const { return dataset_; }

 private:
  data::SynthRegressionDataset dataset_;
  nn::MseLoss loss_;
};

/// The four paper-workload analogs with tuned default shapes (sized so
/// that a full bench suite runs in minutes; --quick shrinks them further).
std::unique_ptr<ImageTask> make_cifar10_analog(std::uint64_t seed = 1);
std::unique_ptr<ImageTask> make_imagenet_analog(std::uint64_t seed = 2);
std::unique_ptr<ImageTask> make_deep_resnet_analog(std::uint64_t seed = 3);  ///< Fig 11
std::unique_ptr<TranslationTask> make_iwslt_analog(std::uint64_t seed = 4);
std::unique_ptr<TranslationTask> make_wmt_analog(std::uint64_t seed = 5);

}  // namespace pipemare::core
