#include "src/core/experiments.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/hwmodel/characteristics.h"

namespace pipemare::core {

using pipeline::Method;

void finalize_rows(std::vector<MethodRow>& rows, double target_gap, int gpipe_index) {
  if (rows.empty()) return;
  double best = -std::numeric_limits<double>::infinity();
  for (const auto& r : rows) best = std::max(best, r.best_metric);
  double target = best - target_gap;
  if (gpipe_index < 0) {
    for (std::size_t i = 0; i < rows.size(); ++i) {
      if (rows[i].label == "GPipe") gpipe_index = static_cast<int>(i);
    }
    if (gpipe_index < 0) gpipe_index = 0;
  }
  for (auto& r : rows) {
    r.target_metric = target;
    r.epochs_to_target = r.result.epochs_to_target(target);
    r.time_to_target = hwmodel::time_to_target(r.epochs_to_target, r.throughput);
  }
  double ref = rows[static_cast<std::size_t>(gpipe_index)].time_to_target;
  for (auto& r : rows) {
    r.speedup_vs_gpipe = std::isfinite(r.time_to_target) && r.time_to_target > 0.0
                             ? ref / r.time_to_target
                             : std::numeric_limits<double>::quiet_NaN();
  }
}

namespace {

int optimizer_state_copies(const TrainerConfig& cfg) {
  return cfg.optimizer == TrainerConfig::Opt::SgdMomentum ? 1 : 2;
}

MethodRow run_variant(const Task& task, TrainerConfig cfg, std::string label) {
  MethodRow row;
  row.label = std::move(label);
  row.result = train(task, cfg);
  row.best_metric = row.result.best_metric;
  int n = cfg.num_microbatches();
  bool t2 = cfg.engine.method == Method::PipeMare && cfg.engine.discrepancy_correction;
  row.memory_factor = hwmodel::memory_factor_vs_gpipe(
      cfg.engine.method, cfg.engine.num_stages, n, optimizer_state_copies(cfg), t2);
  double base_tp = hwmodel::normalized_throughput_budget(cfg.engine.method);
  if (cfg.engine.method == Method::PipeMare && cfg.warmup_epochs > 0) {
    int epochs = std::max<int>(1, row.result.epochs_completed());
    row.throughput = hwmodel::amortized_throughput(cfg.warmup_epochs, epochs);
  } else {
    row.throughput = base_tp;
  }
  return row;
}

}  // namespace

std::vector<MethodRow> compare_methods(const Task& task, const TrainerConfig& base,
                                       double target_gap) {
  std::vector<MethodRow> rows;

  TrainerConfig gpipe = base;
  gpipe.engine.method = Method::Sync;
  gpipe.engine.discrepancy_correction = false;
  gpipe.t1 = false;
  gpipe.warmup_epochs = 0;
  rows.push_back(run_variant(task, gpipe, "GPipe"));

  TrainerConfig pipedream = gpipe;
  pipedream.engine.method = Method::PipeDream;
  rows.push_back(run_variant(task, pipedream, "PipeDream"));

  TrainerConfig pipemare = base;
  pipemare.engine.method = Method::PipeMare;
  rows.push_back(run_variant(task, pipemare, "PipeMare"));

  finalize_rows(rows, target_gap, 0);
  return rows;
}

std::vector<MethodRow> ablation_study(const Task& task, const TrainerConfig& base,
                                      const std::vector<AblationSpec>& specs,
                                      double target_gap) {
  std::vector<MethodRow> rows;
  // Reference GPipe run supplies the speedup denominator.
  TrainerConfig gpipe = base;
  gpipe.engine.method = Method::Sync;
  gpipe.engine.discrepancy_correction = false;
  gpipe.t1 = false;
  gpipe.warmup_epochs = 0;
  rows.push_back(run_variant(task, gpipe, "GPipe"));
  for (const auto& spec : specs) {
    TrainerConfig cfg = base;
    cfg.engine.method = Method::PipeMare;
    cfg.t1 = spec.t1;
    cfg.engine.discrepancy_correction = spec.t2;
    cfg.warmup_epochs = spec.warmup_epochs;
    rows.push_back(run_variant(task, cfg, spec.label));
  }
  finalize_rows(rows, target_gap, 0);
  return rows;
}

TrainerConfig image_recipe(int stages, int epochs) {
  TrainerConfig cfg;
  cfg.engine.num_stages = stages;
  cfg.epochs = epochs;
  cfg.minibatch_size = 64;
  cfg.microbatch_size = 8;
  cfg.optimizer = TrainerConfig::Opt::SgdMomentum;
  cfg.momentum = 0.9;
  cfg.weight_decay = 5e-4;
  cfg.schedule = TrainerConfig::Sched::StepDecay;
  cfg.lr = 0.05;
  cfg.drop_factor = 0.1;
  cfg.drop_every_epochs = std::max(2, epochs * 2 / 5);
  // K = one quarter of the first LR phase (the paper's ResNet rule).
  cfg.t1 = true;
  cfg.t1_annealing_steps = 0;  // filled below from steps-per-epoch at run time
  cfg.engine.discrepancy_correction = true;
  cfg.engine.decay_d = 0.5;  // the paper's tuned CIFAR10 value
  cfg.warmup_epochs = 0;     // warmup not needed for image tasks (Section 4.3)
  return cfg;
}

TrainerConfig translation_recipe(int stages, int epochs) {
  TrainerConfig cfg;
  cfg.engine.num_stages = stages;
  cfg.epochs = epochs;
  cfg.minibatch_size = 32;
  // The paper's rule: the smallest feasible microbatch minimizes both
  // activation memory and the delay tau = (2(P-i)+1)/N.
  cfg.microbatch_size = 1;
  cfg.optimizer = TrainerConfig::Opt::AdamW;
  cfg.adam_beta1 = 0.9;
  cfg.adam_beta2 = 0.98;
  cfg.weight_decay = 1e-4;
  cfg.grad_clip = 25.0;
  cfg.schedule = TrainerConfig::Sched::InverseSqrt;
  cfg.lr = 4e-3;
  cfg.sched_warmup_steps = 60;
  // K = 5x the linear warmup steps (the paper's Transformer rule).
  cfg.t1 = true;
  cfg.t1_annealing_steps = 5 * cfg.sched_warmup_steps;
  cfg.engine.discrepancy_correction = true;
  cfg.engine.decay_d = 0.1;  // the paper's tuned IWSLT value
  cfg.warmup_epochs = 2;     // scaled-down analog of the paper's 10
  return cfg;
}

}  // namespace pipemare::core
