#pragma once

#include <string>
#include <vector>

#include "src/core/trainer.h"

namespace pipemare::core {

/// One row of a Table 2 / Table 3-style comparison.
struct MethodRow {
  std::string label;
  double best_metric = 0.0;
  double target_metric = 0.0;
  int epochs_to_target = -1;         ///< -1: target not reached
  double throughput = 1.0;           ///< normalized, warmup-amortized
  double time_to_target = 0.0;       ///< epochs / throughput (inf if unreached)
  double speedup_vs_gpipe = 0.0;     ///< GPipe time / this time
  double memory_factor = 1.0;        ///< weight+optimizer memory vs GPipe
  TrainResult result;
};

/// Runs GPipe / PipeDream / PipeMare on a task with shared hyperparameters
/// and produces Table 2-style rows. The target metric is the best metric
/// across methods minus `target_gap` (the paper's protocol: 1.0% accuracy
/// or 0.4 BLEU).
///
/// PipeMare runs with the T1/T2/T3 settings already present in `base`
/// (t1, engine.discrepancy_correction, warmup_epochs); the baselines run
/// with those features off, as in the paper.
std::vector<MethodRow> compare_methods(const Task& task, const TrainerConfig& base,
                                       double target_gap);

/// One ablation variant: a label plus feature switches.
struct AblationSpec {
  std::string label;
  bool t1 = false;
  bool t2 = false;
  int warmup_epochs = 0;
};

/// Runs PipeMare ablation variants (Table 3 / Figures 4 and 10). The
/// target metric is best-across-variants minus `target_gap`.
std::vector<MethodRow> ablation_study(const Task& task, const TrainerConfig& base,
                                      const std::vector<AblationSpec>& specs,
                                      double target_gap);

/// Fills the target/epochs/throughput/speedup columns of rows whose
/// `result` and `memory_factor`/`throughput` inputs are already set.
/// `gpipe_index` selects the reference row for speedups (-1: first row
/// labeled "GPipe").
void finalize_rows(std::vector<MethodRow>& rows, double target_gap, int gpipe_index = -1);

/// Default TrainerConfig presets matching each task analog's recipe
/// (Tables 6 and 7 scaled to the synthetic workloads).
TrainerConfig image_recipe(int stages, int epochs = 18);
TrainerConfig translation_recipe(int stages, int epochs = 32);

}  // namespace pipemare::core
