#pragma once

#include <chrono>
#include <cmath>
#include <limits>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "src/core/backend.h"
#include "src/core/task.h"
#include "src/optim/optimizer.h"
#include "src/optim/schedule.h"
#include "src/optim/t1_reschedule.h"
#include "src/pipeline/engine.h"
#include "src/pipeline/repartition.h"
#include "src/util/stats.h"

namespace pipemare::util {
class Cli;
}

namespace pipemare::core {

/// Full training configuration: engine (method / stages / T2 / recompute),
/// execution backend, optimizer, base LR schedule, T1 annealing and T3
/// warmup.
struct TrainerConfig {
  pipeline::EngineConfig engine;

  /// Execution backend selection: a BackendRegistry key ("sequential",
  /// "threaded", "hogwild", "threaded_hogwild", "threaded_steal") plus
  /// that backend's typed options. core::train resolves it through the
  /// registry:
  ///
  ///   cfg.backend = "threaded";
  ///   cfg.backend = {"threaded_hogwild",
  ///                  ThreadedHogwildOptions{.max_delay = 8.0, .workers = 4}};
  BackendConfig backend;

  int epochs = 20;
  int minibatch_size = 64;
  int microbatch_size = 8;  ///< N = minibatch_size / microbatch_size

  enum class Opt { SgdMomentum, AdamW };
  Opt optimizer = Opt::SgdMomentum;
  double momentum = 0.9;
  double weight_decay = 5e-4;
  double adam_beta1 = 0.9;
  double adam_beta2 = 0.98;
  double adam_eps = 1e-9;
  double grad_clip = 0.0;  ///< 0 disables clipping

  enum class Sched { Constant, StepDecay, InverseSqrt };
  Sched schedule = Sched::StepDecay;
  double lr = 0.05;
  double drop_factor = 0.1;
  int drop_every_epochs = 10;
  int sched_warmup_steps = 200;  ///< linear warmup length for InverseSqrt

  /// Technique 1: rescale per-stage LR by tau^{-p_k}; K = annealing steps.
  bool t1 = false;
  std::int64_t t1_annealing_steps = 0;

  /// Technique 3: synchronous (GPipe-style) epochs before going async.
  int warmup_epochs = 0;

  /// Epoch-boundary dynamic repartitioning (`--repartition=off|auto[,t]`):
  /// when enabled, core::train installs a RepartitionObserver that
  /// compares observed per-stage busy time against the partition's
  /// predicted stage costs and migrates weight units across stage
  /// boundaries when the balance drifts (see pipeline/repartition.h).
  /// Requires a repartition-capable, stage-instrumented backend
  /// ("threaded", "threaded_steal").
  pipeline::RepartitionConfig repartition;

  std::uint64_t seed = 1;
  double divergence_loss = 1e3;  ///< train loss above this declares divergence

  /// Observability (`--trace=<file>` / `--metrics=<file>`): when
  /// trace_path is set, core::train enables the process-global
  /// obs::TraceRecorder for the run and writes Chrome trace-event JSON
  /// (open in Perfetto / chrome://tracing) at the end; when metrics_path
  /// is set it installs a MetricsObserver that rewrites a registry
  /// snapshot after every epoch. Recording never perturbs numerics —
  /// curves are bitwise-equal with tracing on or off.
  std::string trace_path;
  std::string metrics_path;

  int num_microbatches() const { return minibatch_size / microbatch_size; }
};

struct EpochRecord {
  int epoch = 0;           ///< 1-based
  double train_loss = 0.0;
  double metric = 0.0;     ///< task quality metric after this epoch
  double param_norm = 0.0; ///< ||w||_2, the Figure 7 divergence probe
  double base_lr = 0.0;
  double seconds = 0.0;    ///< wall-clock of this epoch (train + eval),
                           ///< stamped by the built-in EpochTimer observer

  /// When a run diverges mid-epoch the curve ends with a divergence
  /// record: train_loss holds the observed blow-up loss, param_norm the
  /// blown-up ||w||_2, and metric is NaN (no evaluation is run).
  bool is_divergence_record() const { return std::isnan(metric); }
};

/// Training-step context delivered to StepObserver::on_step after each
/// optimizer step commits.
struct StepInfo {
  int epoch = 0;                  ///< 1-based epoch the step belongs to
  std::int64_t step = 0;          ///< 0-based global optimizer-step index
  bool async = false;             ///< engine was in an asynchronous method
  double loss = 0.0;              ///< minibatch mean loss
  double base_lr = 0.0;           ///< schedule LR used for this step
  pipeline::StepResult result{};  ///< full step result
};

/// Hook interface threaded through train_loop. Default implementations are
/// no-ops, so observers override only what they need.
///
/// Call order per epoch: on_step after every committed optimizer step
/// (divergent steps abort before committing and produce no on_step);
/// on_epoch after the epoch's record is assembled and *before* it is
/// appended to the curve — observers may annotate the record (that is how
/// the built-in EpochTimer stamps EpochRecord::seconds). on_method_switch
/// fires whenever train_loop changes the engine's method: once when T3
/// warmup engages Sync before epoch 1 (epoch = 0) and once at the
/// mid-training switch back to the asynchronous method. on_repartition
/// fires after a RepartitionObserver migrated the backend to a new
/// unit -> stage assignment (and reset its stage counters) — observers
/// holding per-stage baselines must drop them (StageLoadObserver does).
class StepObserver {
 public:
  virtual ~StepObserver() = default;
  virtual void on_step(const StepInfo& /*info*/) {}
  virtual void on_epoch(EpochRecord& /*record*/) {}
  virtual void on_method_switch(pipeline::Method /*from*/, pipeline::Method /*to*/,
                                int /*epoch*/) {}
  virtual void on_repartition(const pipeline::Partition& /*from*/,
                              const pipeline::Partition& /*to*/, int /*epoch*/) {}
};

/// Built-in observer that stamps EpochRecord::seconds with the wall-clock
/// duration of each epoch (training steps plus evaluation). train_loop
/// always installs one ahead of user observers, so BENCH_*.json-style
/// consumers can read real per-backend throughput off the curve.
class EpochTimer final : public StepObserver {
 public:
  EpochTimer();
  void on_epoch(EpochRecord& record) override;

 private:
  std::chrono::steady_clock::time_point epoch_start_;
};

struct TrainResult {
  std::string method;
  std::vector<EpochRecord> curve;
  double best_metric = -1e300;
  int best_epoch = -1;  ///< 1-based
  bool diverged = false;

  /// First epoch (1-based) whose metric reaches `target`; -1 if never.
  int epochs_to_target(double target) const {
    for (const auto& r : curve) {
      if (r.metric >= target) return r.epoch;
    }
    return -1;
  }

  /// Fully completed epochs — excludes a trailing divergence record, so
  /// "epochs run" consumers (amortized-throughput math, table columns) do
  /// not count the partial blow-up epoch.
  int epochs_completed() const {
    int n = 0;
    for (const auto& r : curve) {
      if (!r.is_divergence_record()) ++n;
    }
    return n;
  }

  /// Total wall-clock seconds over the curve (stamped by EpochTimer).
  double total_seconds() const {
    double secs = 0.0;
    for (const auto& r : curve) secs += r.seconds;
    return secs;
  }
};

/// Core training loop, templated over the execution engine so direct
/// (devirtualized) engine use stays zero-cost; core::train drives it
/// through the polymorphic ExecutionBackend instead.
///
/// Engine concept (== the ExecutionBackend interface): forward_backward,
/// weights, gradients, commit_update, lr_segments, stage_tau_fwd,
/// set_method, method, model.
template <class Engine>
TrainResult train_loop(const Task& task, Engine& engine, const TrainerConfig& cfg,
                       std::span<StepObserver* const> observers = {}) {
  TrainResult result;
  result.method = pipeline::method_name(cfg.engine.method);

  // The built-in epoch timer runs ahead of user observers so they already
  // see EpochRecord::seconds filled in.
  EpochTimer timer;
  std::vector<StepObserver*> obs;
  obs.reserve(observers.size() + 1);
  obs.push_back(&timer);
  for (StepObserver* o : observers) {
    if (o != nullptr) obs.push_back(o);
  }

  std::unique_ptr<optim::Optimizer> opt;
  if (cfg.optimizer == TrainerConfig::Opt::SgdMomentum) {
    opt = std::make_unique<optim::SgdMomentum>(cfg.momentum, cfg.weight_decay);
  } else {
    // Decoupled weight decay (the fairseq AdamW recipe).
    opt = std::make_unique<optim::AdamW>(cfg.adam_beta1, cfg.adam_beta2, cfg.adam_eps,
                                         cfg.weight_decay);
  }

  int steps_per_epoch = std::max(1, task.train_size() / cfg.minibatch_size);
  std::unique_ptr<optim::LrSchedule> sched;
  switch (cfg.schedule) {
    case TrainerConfig::Sched::Constant:
      sched = std::make_unique<optim::ConstantLr>(cfg.lr);
      break;
    case TrainerConfig::Sched::StepDecay:
      sched = std::make_unique<optim::StepDecay>(
          cfg.lr, cfg.drop_factor,
          static_cast<std::int64_t>(cfg.drop_every_epochs) * steps_per_epoch);
      break;
    case TrainerConfig::Sched::InverseSqrt:
      sched = std::make_unique<optim::InverseSqrtWarmup>(cfg.lr, cfg.sched_warmup_steps);
      break;
  }

  // T3: begin synchronously, switch to the configured (async) method later.
  pipeline::Method final_method = cfg.engine.method;
  if (cfg.warmup_epochs > 0 && final_method == pipeline::Method::PipeMare) {
    pipeline::Method from = engine.method();
    engine.set_method(pipeline::Method::Sync);
    for (StepObserver* o : obs) {
      o->on_method_switch(from, pipeline::Method::Sync, 0);
    }
  }

  // Default annealing horizon K when unspecified, following the paper's
  // rules of thumb: a quarter of the first fixed-LR phase (step decay), or
  // 5x the linear warmup (inverse-sqrt schedule).
  std::int64_t annealing_steps = cfg.t1_annealing_steps;
  if (cfg.t1 && annealing_steps <= 0) {
    annealing_steps = cfg.schedule == TrainerConfig::Sched::InverseSqrt
                          ? 5 * cfg.sched_warmup_steps
                          : std::max<std::int64_t>(
                                1, static_cast<std::int64_t>(cfg.drop_every_epochs) *
                                       steps_per_epoch / 4);
  }
  optim::T1Rescheduler t1(engine.stage_tau_fwd(), cfg.t1 ? annealing_steps : 0);

  util::Rng shuffle_rng(cfg.seed ^ 0x5bd1e995ULL);
  std::vector<int> order(static_cast<std::size_t>(task.train_size()));
  for (int i = 0; i < task.train_size(); ++i) order[static_cast<std::size_t>(i)] = i;

  std::int64_t step = 0;
  std::int64_t async_step = 0;  // T1 annealing counts from the async switch
  for (int epoch = 1; epoch <= cfg.epochs; ++epoch) {
    if (cfg.warmup_epochs > 0 && epoch == cfg.warmup_epochs + 1 &&
        final_method == pipeline::Method::PipeMare) {
      pipeline::Method from = engine.method();
      engine.set_method(final_method);
      for (StepObserver* o : obs) {
        o->on_method_switch(from, final_method, epoch);
      }
    }
    bool async_phase = engine.method() != pipeline::Method::Sync;

    shuffle_rng.shuffle(order);
    double epoch_loss = 0.0;
    int epoch_batches = 0;
    double divergent_loss = 0.0;
    for (int start = 0; start + cfg.minibatch_size <= task.train_size();
         start += cfg.minibatch_size) {
      std::vector<int> idx(order.begin() + start,
                           order.begin() + start + cfg.minibatch_size);
      auto mb = task.minibatch(idx, cfg.microbatch_size);
      auto res = engine.forward_backward(mb.inputs, mb.targets, task.loss());
      if (!res.finite || res.loss > cfg.divergence_loss) {
        result.diverged = true;
        divergent_loss = res.loss;
        break;
      }
      epoch_loss += res.loss;
      ++epoch_batches;

      if (cfg.grad_clip > 0.0) {
        optim::clip_grad_norm(engine.gradients(), cfg.grad_clip);
      }
      double base_lr = sched->lr(step);
      std::vector<double> scales;
      if (cfg.t1 && async_phase) {
        scales = t1.scales(async_step);
      }
      auto segments = engine.lr_segments(base_lr, scales);
      opt->step(engine.weights(), engine.gradients(), segments);
      engine.commit_update();

      StepInfo info;
      info.epoch = epoch;
      info.step = step;
      info.async = async_phase;
      info.loss = res.loss;
      info.base_lr = base_lr;
      info.result = res;
      ++step;
      if (async_phase) ++async_step;
      for (StepObserver* o : obs) o->on_step(info);
    }
    if (result.diverged) {
      // Keep the blow-up point: a mid-epoch divergence still emits a final
      // record (observed loss + blown-up ||w||, metric = NaN) so Figure
      // 7-style divergence probes see where the run exploded instead of a
      // silently truncated curve.
      EpochRecord rec;
      rec.epoch = epoch;
      rec.train_loss = divergent_loss;
      rec.metric = std::numeric_limits<double>::quiet_NaN();
      rec.param_norm = util::l2_norm(engine.weights());
      rec.base_lr = sched->lr(step);
      for (StepObserver* o : obs) o->on_epoch(rec);
      result.curve.push_back(rec);
      break;
    }

    EpochRecord rec;
    rec.epoch = epoch;
    rec.train_loss = epoch_batches > 0 ? epoch_loss / epoch_batches : 0.0;
    rec.metric = task.evaluate(engine.model(), engine.weights());
    rec.param_norm = util::l2_norm(engine.weights());
    rec.base_lr = sched->lr(step);
    for (StepObserver* o : obs) o->on_epoch(rec);
    if (rec.metric > result.best_metric) {
      result.best_metric = rec.metric;
      result.best_epoch = epoch;
    }
    result.curve.push_back(rec);
  }
  if (result.best_epoch < 0) result.best_metric = 0.0;
  return result;
}

/// Applies the shared backend CLI flags onto `cfg.backend` /
/// `cfg.engine.partition` / `cfg.repartition` (the one parser all
/// examples and bench drivers use):
///   --backend=<name>     BackendRegistry key; unknown names throw with
///                        the available list in the message
///   --partition=uniform|balanced[,measured|,calibrated]
///                        stage-partition strategy (any backend); measured
///                        micro-profiles module costs on a probe batch;
///                        calibrated rescales the analytic estimates by the
///                        kernel micro-profile (KernelCalibration)
///   --kernels=naive|tiled
///                        tensor kernel backend (process-global; both are
///                        bitwise-equal, see tensor::kernels::KernelRegistry)
///   --kernel-lanes=<int> intra-op GEMM lanes nested per worker (1 = off)
///   --max-delay=<float>  hogwild family: delay truncation bound
///   --workers=<int>      threaded_hogwild / threaded_steal: worker threads
///   --steal=off|load|det|forced
///                        threaded_steal: steal mode (see sched::StealMode)
///   --steal-log=0|1      threaded_steal: keep the per-step steal log
///   --repartition=off|auto[,<threshold>]
///                        epoch-boundary dynamic repartitioning (threaded /
///                        threaded_steal; see pipeline::RepartitionConfig)
///   --trace=<file>       Chrome trace-event JSON of the run (any backend)
///   --metrics=<file>     per-epoch metrics registry snapshot (any backend)
/// Absent flags keep the configuration already in `cfg.backend`; switching
/// between the two hogwild backends carries max_delay / mean_delay over
/// (and worker counts carry between the worker-pool backends), while a
/// flag the selected built-in backend cannot honor (e.g. --workers with
/// "hogwild") throws instead of being silently dropped.
void parse_backend_cli(const util::Cli& cli, TrainerConfig& cfg);

/// The shared-flag usage block for --help text, with the backend list
/// built from the BackendRegistry — new backends appear in every binary's
/// help automatically instead of drifting hardcoded name lists.
std::string backend_cli_help();

/// Convenience wrapper: builds the model, resolves cfg.backend through the
/// BackendRegistry, and runs train_loop on the resulting ExecutionBackend.
/// The returned result's curve covers `cfg.epochs` epochs unless training
/// diverged (in which case it ends with a divergence record). Optional
/// observers receive the train_loop hooks.
TrainResult train(const Task& task, TrainerConfig cfg,
                  std::span<StepObserver* const> observers = {});

}  // namespace pipemare::core
