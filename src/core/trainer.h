#pragma once

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "src/core/task.h"
#include "src/optim/optimizer.h"
#include "src/optim/schedule.h"
#include "src/optim/t1_reschedule.h"
#include "src/pipeline/engine.h"
#include "src/util/stats.h"

namespace pipemare::core {

/// Full training configuration: engine (method / stages / T2 / recompute),
/// optimizer, base LR schedule, T1 annealing and T3 warmup.
struct TrainerConfig {
  pipeline::EngineConfig engine;

  int epochs = 20;
  int minibatch_size = 64;
  int microbatch_size = 8;  ///< N = minibatch_size / microbatch_size

  enum class Opt { SgdMomentum, AdamW };
  Opt optimizer = Opt::SgdMomentum;
  double momentum = 0.9;
  double weight_decay = 5e-4;
  double adam_beta1 = 0.9;
  double adam_beta2 = 0.98;
  double adam_eps = 1e-9;
  double grad_clip = 0.0;  ///< 0 disables clipping

  enum class Sched { Constant, StepDecay, InverseSqrt };
  Sched schedule = Sched::StepDecay;
  double lr = 0.05;
  double drop_factor = 0.1;
  int drop_every_epochs = 10;
  int sched_warmup_steps = 200;  ///< linear warmup length for InverseSqrt

  /// Technique 1: rescale per-stage LR by tau^{-p_k}; K = annealing steps.
  bool t1 = false;
  std::int64_t t1_annealing_steps = 0;

  /// Technique 3: synchronous (GPipe-style) epochs before going async.
  int warmup_epochs = 0;

  /// Execute minibatches on the multithreaded stage-per-worker engine
  /// (pipeline::ThreadedEngine) instead of the sequential analytic engine.
  /// Statistically identical (same weight-version store); wall-clock
  /// faster on multicore hosts. Incompatible with engine.recompute_segments.
  bool threaded_execution = false;

  /// Execute minibatches on the threaded Hogwild! backend
  /// (hogwild::ThreadedHogwildEngine, Appendix E): W free-running workers
  /// with stochastic truncated-exponential per-stage delays instead of the
  /// pipeline's deterministic schedule. engine.method still selects
  /// Sync (no delays) vs asynchronous semantics; engine.num_stages /
  /// split_bias shape the delay profile. Mutually exclusive with
  /// threaded_execution.
  bool hogwild_execution = false;
  double hogwild_max_delay = 16.0;  ///< delay truncation bound (>= 0)
  int hogwild_workers = 0;          ///< worker threads; 0 = min(cores, N)

  std::uint64_t seed = 1;
  double divergence_loss = 1e3;  ///< train loss above this declares divergence

  int num_microbatches() const { return minibatch_size / microbatch_size; }
};

struct EpochRecord {
  int epoch = 0;           ///< 1-based
  double train_loss = 0.0;
  double metric = 0.0;     ///< task quality metric after this epoch
  double param_norm = 0.0; ///< ||w||_2, the Figure 7 divergence probe
  double base_lr = 0.0;
};

struct TrainResult {
  std::string method;
  std::vector<EpochRecord> curve;
  double best_metric = -1e300;
  int best_epoch = -1;  ///< 1-based
  bool diverged = false;

  /// First epoch (1-based) whose metric reaches `target`; -1 if never.
  int epochs_to_target(double target) const {
    for (const auto& r : curve) {
      if (r.metric >= target) return r.epoch;
    }
    return -1;
  }
};

/// Core training loop, templated over the execution engine so the
/// pipeline engine (fixed schedule delays) and the Hogwild engine
/// (stochastic delays, Appendix E) share identical training logic.
///
/// Engine concept: forward_backward, weights, gradients, commit_update,
/// lr_segments, stage_tau_fwd, set_method, method, model.
template <class Engine>
TrainResult train_loop(const Task& task, Engine& engine, const TrainerConfig& cfg) {
  TrainResult result;
  result.method = pipeline::method_name(cfg.engine.method);

  std::unique_ptr<optim::Optimizer> opt;
  if (cfg.optimizer == TrainerConfig::Opt::SgdMomentum) {
    opt = std::make_unique<optim::SgdMomentum>(cfg.momentum, cfg.weight_decay);
  } else {
    // Decoupled weight decay (the fairseq AdamW recipe).
    opt = std::make_unique<optim::AdamW>(cfg.adam_beta1, cfg.adam_beta2, cfg.adam_eps,
                                         cfg.weight_decay);
  }

  int steps_per_epoch = std::max(1, task.train_size() / cfg.minibatch_size);
  std::unique_ptr<optim::LrSchedule> sched;
  switch (cfg.schedule) {
    case TrainerConfig::Sched::Constant:
      sched = std::make_unique<optim::ConstantLr>(cfg.lr);
      break;
    case TrainerConfig::Sched::StepDecay:
      sched = std::make_unique<optim::StepDecay>(
          cfg.lr, cfg.drop_factor,
          static_cast<std::int64_t>(cfg.drop_every_epochs) * steps_per_epoch);
      break;
    case TrainerConfig::Sched::InverseSqrt:
      sched = std::make_unique<optim::InverseSqrtWarmup>(cfg.lr, cfg.sched_warmup_steps);
      break;
  }

  // T3: begin synchronously, switch to the configured (async) method later.
  pipeline::Method final_method = cfg.engine.method;
  if (cfg.warmup_epochs > 0 && final_method == pipeline::Method::PipeMare) {
    engine.set_method(pipeline::Method::Sync);
  }

  // Default annealing horizon K when unspecified, following the paper's
  // rules of thumb: a quarter of the first fixed-LR phase (step decay), or
  // 5x the linear warmup (inverse-sqrt schedule).
  std::int64_t annealing_steps = cfg.t1_annealing_steps;
  if (cfg.t1 && annealing_steps <= 0) {
    annealing_steps = cfg.schedule == TrainerConfig::Sched::InverseSqrt
                          ? 5 * cfg.sched_warmup_steps
                          : std::max<std::int64_t>(
                                1, static_cast<std::int64_t>(cfg.drop_every_epochs) *
                                       steps_per_epoch / 4);
  }
  optim::T1Rescheduler t1(engine.stage_tau_fwd(), cfg.t1 ? annealing_steps : 0);

  util::Rng shuffle_rng(cfg.seed ^ 0x5bd1e995ULL);
  std::vector<int> order(static_cast<std::size_t>(task.train_size()));
  for (int i = 0; i < task.train_size(); ++i) order[static_cast<std::size_t>(i)] = i;

  std::int64_t step = 0;
  std::int64_t async_step = 0;  // T1 annealing counts from the async switch
  for (int epoch = 1; epoch <= cfg.epochs; ++epoch) {
    if (cfg.warmup_epochs > 0 && epoch == cfg.warmup_epochs + 1 &&
        final_method == pipeline::Method::PipeMare) {
      engine.set_method(final_method);
    }
    bool async_phase = engine.method() != pipeline::Method::Sync;

    shuffle_rng.shuffle(order);
    double epoch_loss = 0.0;
    int epoch_batches = 0;
    for (int start = 0; start + cfg.minibatch_size <= task.train_size();
         start += cfg.minibatch_size) {
      std::vector<int> idx(order.begin() + start,
                           order.begin() + start + cfg.minibatch_size);
      auto mb = task.minibatch(idx, cfg.microbatch_size);
      auto res = engine.forward_backward(mb.inputs, mb.targets, task.loss());
      if (!res.finite || res.loss > cfg.divergence_loss) {
        result.diverged = true;
        break;
      }
      epoch_loss += res.loss;
      ++epoch_batches;

      if (cfg.grad_clip > 0.0) {
        optim::clip_grad_norm(engine.gradients(), cfg.grad_clip);
      }
      double base_lr = sched->lr(step);
      std::vector<double> scales;
      if (cfg.t1 && async_phase) {
        scales = t1.scales(async_step);
      }
      auto segments = engine.lr_segments(base_lr, scales);
      opt->step(engine.weights(), engine.gradients(), segments);
      engine.commit_update();
      ++step;
      if (async_phase) ++async_step;
    }
    if (result.diverged) break;

    EpochRecord rec;
    rec.epoch = epoch;
    rec.train_loss = epoch_batches > 0 ? epoch_loss / epoch_batches : 0.0;
    rec.metric = task.evaluate(engine.model(), engine.weights());
    rec.param_norm = util::l2_norm(engine.weights());
    rec.base_lr = sched->lr(step);
    if (rec.metric > result.best_metric) {
      result.best_metric = rec.metric;
      result.best_epoch = epoch;
    }
    result.curve.push_back(rec);
  }
  if (result.curve.empty()) result.best_metric = 0.0;
  return result;
}

/// Convenience wrapper: builds the model and pipeline engine, then runs
/// the loop. The returned result's curve covers `cfg.epochs` epochs unless
/// training diverged.
TrainResult train(const Task& task, TrainerConfig cfg);

}  // namespace pipemare::core
