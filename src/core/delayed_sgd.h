#pragma once

#include <cstdint>

#include "src/core/task.h"

namespace pipemare::core {

/// Plain fixed-delay SGD (no pipeline structure): every weight shares the
/// same forward/backward delays,
///   w_{t+1} = w_t - alpha * grad f_t(w_{t - tau_fwd}, w_{t - tau_bkwd}).
/// This is the model of Section 3's theory, run on a *real* objective.
/// Figure 3(b) uses it with tau_fwd = tau_bkwd on linear regression.
struct DelayedSgdConfig {
  double alpha = 0.01;
  int tau_fwd = 0;
  int tau_bkwd = 0;
  int iterations = 10000;
  int minibatch_size = 16;
  std::uint64_t seed = 1;
  double divergence_loss = 1e8;
};

struct DelayedSgdResult {
  double final_loss = 0.0;  ///< full-dataset loss after the last iteration
  bool diverged = false;
};

DelayedSgdResult run_delayed_sgd(const Task& task, const DelayedSgdConfig& cfg);

}  // namespace pipemare::core
