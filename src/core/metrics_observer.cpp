#include "src/core/metrics_observer.h"

#include <string>
#include <utility>

#include "src/core/engine_backend.h"
#include "src/obs/metrics.h"

namespace pipemare::core {

namespace {

obs::Gauge& gauge(const std::string& name) {
  return obs::MetricsRegistry::instance().gauge(name);
}

}  // namespace

MetricsObserver::MetricsObserver(ExecutionBackend& backend,
                                 std::string metrics_path)
    : backend_(&backend), metrics_path_(std::move(metrics_path)) {}

void MetricsObserver::on_epoch(EpochRecord& record) {
  gauge("train.epoch").set(static_cast<double>(record.epoch));
  gauge("train.loss").set(record.train_loss);
  if (!record.is_divergence_record()) gauge("train.metric").set(record.metric);
  gauge("train.param_norm").set(record.param_norm);

  // Engine-specific instrumentation that lives behind the concrete
  // surfaces (no ExecutionBackend virtuals for these — they are
  // engine-private notions, mirrored into the registry here so every
  // consumer reads one uniform snapshot).
  if (const auto* threaded = dynamic_cast<const ThreadedBackend*>(backend_)) {
    const auto lanes = threaded->engine().lane_stats();
    for (std::size_t s = 0; s < lanes.size(); ++s) {
      const std::string prefix =
          "pipeline.mailbox.stage" + std::to_string(s) + ".";
      gauge(prefix + "fwd_high_water")
          .set(static_cast<double>(lanes[s].fwd_high_water));
      gauge(prefix + "bwd_high_water")
          .set(static_cast<double>(lanes[s].bwd_high_water));
      gauge(prefix + "inflight_high_water")
          .set(static_cast<double>(lanes[s].inflight_high_water));
    }
  }
  if (const auto* steal = dynamic_cast<const ThreadedStealBackend*>(backend_)) {
    // Cumulative engine-side truth (the "sched.steal_log_dropped" counter
    // only sees drops since process start across all engines; this gauge
    // is this engine's exact current value).
    gauge("sched.dropped_log_entries")
        .set(static_cast<double>(steal->engine().dropped_log_entries()));
    gauge("sched.total_steals")
        .set(static_cast<double>(steal->engine().total_steals()));
  }

  if (!metrics_path_.empty()) {
    obs::MetricsRegistry::instance().write_json(metrics_path_);
  }
}

}  // namespace pipemare::core
