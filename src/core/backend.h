#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "src/nn/model.h"
#include "src/optim/optimizer.h"
#include "src/pipeline/config.h"
#include "src/pipeline/engine.h"
#include "src/pipeline/stage_stats.h"
#include "src/sched/steal_policy.h"

namespace pipemare::core {

/// The engine concept `core::train_loop` is templated over, as a
/// first-class polymorphic interface. Every execution substrate — the
/// analytic sequential pipeline, the stage-per-thread pipeline, and the
/// sequential / multithreaded Hogwild! backends — implements this surface,
/// and `core::train` drives whichever one the `BackendRegistry` resolves
/// from `TrainerConfig::backend`. `train_loop` stays templated, so direct
/// (devirtualized) engine use keeps working; the virtual path is the
/// public entry point.
///
/// One training step through the interface:
///
///   auto res = backend.forward_backward(inputs, targets, head);
///   opt.step(backend.weights(), backend.gradients(), segments);
///   backend.commit_update();
class ExecutionBackend {
 public:
  virtual ~ExecutionBackend() = default;

  /// Runs the N microbatches of one minibatch forward and backward,
  /// accumulating the mean gradient (see pipeline::StepResult for the
  /// shared non-finite contract).
  virtual pipeline::StepResult forward_backward(
      const std::vector<nn::Flow>& micro_inputs,
      const std::vector<tensor::Tensor>& micro_targets,
      const nn::LossHead& head) = 0;

  /// Live (most recent) weights; the caller's optimizer mutates these.
  virtual std::span<float> weights() = 0;
  virtual std::span<const float> weights() const = 0;

  /// Mean gradient produced by the last forward_backward.
  virtual std::span<float> gradients() = 0;

  /// Publishes the mutated live weights as the next weight version. Call
  /// exactly once after each optimizer step.
  virtual void commit_update() = 0;

  /// Per-stage optimizer segments with the given base LR and per-stage
  /// scale factors (from the T1 rescheduler). Scales may be empty (all 1).
  virtual std::vector<optim::LrSegment> lr_segments(
      double base_lr, std::span<const double> scales) const = 0;

  /// Mean forward delay per stage — the tau vector T1 divides by.
  virtual std::vector<double> stage_tau_fwd() const = 0;

  /// Technique 3 switches from Sync warmup to the async method mid-run.
  virtual void set_method(pipeline::Method m) = 0;
  virtual pipeline::Method method() const = 0;

  /// The model this backend trains (owned by the backend).
  virtual const nn::Model& model() const = 0;

  /// The registry key this backend was created under (e.g. "threaded").
  virtual std::string_view name() const = 0;

  /// Per-slot load counters (a slot is a stage for the stage-partitioned
  /// engines, a worker for the Hogwild backend — see
  /// pipeline::StageStats), cumulative since construction or the last
  /// reset. Empty when the backend has no per-slot instrumentation (the
  /// default); StageLoadObserver uses that to deactivate itself. Call
  /// between minibatches.
  virtual std::vector<pipeline::StageStats> stage_stats() const { return {}; }
  virtual void reset_stage_stats() {}

  /// Dynamic repartitioning surface. Backends whose engine can swap in a
  /// new unit -> stage assignment between minibatches (the
  /// WeightVersions-protocol engines: sequential, threaded,
  /// threaded_steal) report true and implement the pair below; the rest
  /// keep the defaults (the Hogwild family's delay model is per-worker,
  /// not per-stage — there is nothing to migrate).
  virtual bool supports_repartition() const { return false; }

  /// The current stage partition, or nullptr when the backend has none
  /// exposed (the Hogwild family).
  virtual const pipeline::Partition* partition() const { return nullptr; }

  /// Migrates to `next` (validated by pipeline::validate_repartition).
  /// Only call between minibatches — e.g. from a StepObserver's on_epoch.
  /// Throws std::logic_error when unsupported.
  virtual void repartition(const pipeline::Partition& next);
};

// ---------------------------------------------------------------------------
// Typed per-backend options. BackendConfig carries them as a tagged variant
// so each backend's knobs are declared once, next to the backend, instead of
// as loose fields hand-copied inside core::train.
// ---------------------------------------------------------------------------

/// "sequential" — the analytic PipelineEngine. No extra knobs; the shared
/// pipeline::EngineConfig (method / stages / T2 / recompute) covers it.
struct SequentialOptions {
  static constexpr std::string_view kName = "SequentialOptions";
};

/// "threaded" — the stage-per-thread ThreadedEngine. No extra knobs;
/// rejects engine.recompute_segments > 0 (an analytic-engine feature).
struct ThreadedOptions {
  static constexpr std::string_view kName = "ThreadedOptions";
};

/// "hogwild" — the sequential stochastic-delay HogwildEngine (Appendix E).
struct HogwildOptions {
  static constexpr std::string_view kName = "HogwildOptions";
  double max_delay = 16.0;         ///< delay truncation bound (>= 0)
  std::vector<double> mean_delay;  ///< per-stage expectation; empty =>
                                   ///< pipeline profile (2(P-i)+1)/N
};

/// "threaded_hogwild" — W free-running workers over the same stochastic
/// delay model (hogwild::ThreadedHogwildEngine).
struct ThreadedHogwildOptions {
  static constexpr std::string_view kName = "ThreadedHogwildOptions";
  double max_delay = 16.0;         ///< delay truncation bound (>= 0)
  int workers = 0;                 ///< worker threads; 0 = min(cores, N)
  std::vector<double> mean_delay;  ///< per-stage expectation; empty =>
                                   ///< pipeline profile (2(P-i)+1)/N
};

/// "threaded_steal" — the work-stealing worker-pool runtime
/// (sched::StealingEngine): W workers drain per-stage deques of ready
/// forward/backward tasks, idle workers stealing from the busy-share
/// leader while stolen tasks keep the owner stage's weight version
/// (PipeMare's delay distribution is unchanged; curves are bitwise equal
/// to "threaded" in every mode).
struct StealOptions {
  static constexpr std::string_view kName = "StealOptions";
  int workers = 0;  ///< worker threads; 0 = min(cores, num_stages)
  sched::StealMode mode = sched::StealMode::LoadAware;
  bool record_log = false;  ///< keep the per-step steal log (deterministic
                            ///< modes log regardless)
};

/// Tagged options union. `std::monostate` means "this backend's defaults";
/// a populated alternative must match the selected backend or the registry
/// throws (catching e.g. ThreadedHogwildOptions sent to "sequential").
using BackendOptions = std::variant<std::monostate, SequentialOptions, ThreadedOptions,
                                    HogwildOptions, ThreadedHogwildOptions,
                                    StealOptions>;

/// Human-readable tag of the active alternative (for error messages).
std::string_view backend_options_name(const BackendOptions& options);

/// Selects an execution backend: a BackendRegistry key plus that backend's
/// typed options. Implicitly constructible from a name so configuration
/// reads naturally:
///
///   cfg.backend = "threaded";
///   cfg.backend = {"threaded_hogwild", ThreadedHogwildOptions{.workers = 4}};
struct BackendConfig {
  std::string name = "sequential";
  BackendOptions options{};  ///< monostate = the backend's defaults

  BackendConfig() = default;
  BackendConfig(std::string backend_name) : name(std::move(backend_name)) {}
  BackendConfig(const char* backend_name) : name(backend_name) {}
  BackendConfig(std::string backend_name, BackendOptions backend_options)
      : name(std::move(backend_name)), options(std::move(backend_options)) {}
};

// ---------------------------------------------------------------------------
// Registry.
// ---------------------------------------------------------------------------

/// String-keyed factory table mapping backend names to ExecutionBackend
/// builders. The five in-tree backends ("sequential", "threaded",
/// "hogwild", "threaded_hogwild", "threaded_steal") register themselves on
/// first use; new execution substrates (free-running Hogwild) plug in via
/// register_backend without touching core::train.
///
/// Registration is intended for startup; concurrent register_backend calls
/// are not synchronized. create/validate afterwards are const lookups.
class BackendRegistry {
 public:
  /// Rejects invalid (backend, engine) combinations by throwing
  /// std::invalid_argument; each backend's validator is its single
  /// validation path (the Hogwild backends delegate to
  /// hogwild::validate_config). `model` is the model about to be trained
  /// when available (create passes it; the model-free validate overload
  /// passes nullptr) — validators use it for model-dependent checks such
  /// as num_stages <= max_stages, surfacing them as proper configuration
  /// errors instead of exceptions from deep inside engine construction.
  using Validator = std::function<void(const BackendConfig& backend,
                                       const pipeline::EngineConfig& engine,
                                       const nn::Model* model)>;
  /// Builds the backend; the model is moved into (and owned by) it. Only
  /// called with a validated configuration.
  using Factory = std::function<std::unique_ptr<ExecutionBackend>(
      nn::Model model, const BackendConfig& backend,
      const pipeline::EngineConfig& engine, std::uint64_t seed)>;

  /// The process-wide registry, with the built-in backends pre-registered.
  static BackendRegistry& instance();

  /// Registers a backend under `name`; throws if the name is taken.
  void register_backend(std::string name, Validator validate, Factory create);

  bool contains(std::string_view name) const;

  /// All registered names, sorted.
  std::vector<std::string> names() const;

  /// Throws std::invalid_argument listing the registered backends when
  /// `name` is unknown — the one unknown-backend error everywhere.
  void require(const std::string& name) const;

  /// Validates without a model (model-dependent checks are skipped).
  /// Unknown names throw std::invalid_argument listing the registered
  /// backends.
  void validate(const BackendConfig& backend,
                const pipeline::EngineConfig& engine) const;

  /// Validates including model-dependent checks (stage count vs
  /// max_stages). This is what create() runs before building the engine.
  void validate(const BackendConfig& backend, const pipeline::EngineConfig& engine,
                const nn::Model& model) const;

  /// Validates, builds the backend around `model`, and applies
  /// engine.method (the single source of truth for the training method).
  std::unique_ptr<ExecutionBackend> create(nn::Model model,
                                           const BackendConfig& backend,
                                           const pipeline::EngineConfig& engine,
                                           std::uint64_t seed) const;

 private:
  BackendRegistry();

  struct Entry {
    Validator validate;
    Factory create;
  };
  std::map<std::string, Entry, std::less<>> entries_;
};

}  // namespace pipemare::core
