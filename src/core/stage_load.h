#pragma once

// StepObserver that turns ThreadedEngine's per-stage busy/idle/mailbox-wait
// counters into per-epoch load records — the measurement side of the
// partition cost model (predicted stage cost vs observed busy time) and
// the substrate a future work-stealing backend will balance at runtime.

#include <algorithm>
#include <cstdint>
#include <vector>

#include "src/core/engine_backend.h"
#include "src/core/trainer.h"

namespace pipemare::core {

/// Samples ThreadedEngine::stage_stats() at every epoch boundary.
///
/// Attach to a backend created by the registry (activates only when the
/// backend actually wraps a ThreadedEngine — other backends have no stage
/// workers to measure) or to a ThreadedEngine directly, then pass to
/// train_loop's observer list:
///
///   auto backend = BackendRegistry::instance().create(...);
///   StageLoadObserver load(*backend);
///   StepObserver* obs[] = {&load};
///   core::train_loop(task, *backend, cfg, obs);
///   if (load.active()) report(load.epoch_stats().back());
class StageLoadObserver final : public StepObserver {
 public:
  using StageStats = pipeline::ThreadedEngine::StageStats;

  explicit StageLoadObserver(ExecutionBackend& backend) {
    if (auto* threaded = dynamic_cast<ThreadedBackend*>(&backend)) {
      engine_ = &threaded->engine();
    }
  }
  explicit StageLoadObserver(const pipeline::ThreadedEngine& engine)
      : engine_(&engine) {}

  /// False when the observed backend has no stage workers (not threaded).
  bool active() const { return engine_ != nullptr; }

  void on_epoch(EpochRecord& /*record*/) override {
    if (engine_ == nullptr) return;
    auto cumulative = engine_->stage_stats();
    auto delta = cumulative;
    if (!last_.empty()) {
      // Counters are cumulative and monotone unless someone called
      // reset_stage_stats() mid-epoch; a regressed counter means the
      // baseline is stale, and the cumulative value IS the epoch's delta.
      auto since = [](std::uint64_t now, std::uint64_t before) {
        return now >= before ? now - before : now;
      };
      for (std::size_t s = 0; s < delta.size(); ++s) {
        delta[s].busy_ns = since(cumulative[s].busy_ns, last_[s].busy_ns);
        delta[s].pop_wait_ns = since(cumulative[s].pop_wait_ns, last_[s].pop_wait_ns);
        delta[s].push_wait_ns =
            since(cumulative[s].push_wait_ns, last_[s].push_wait_ns);
        delta[s].items = since(cumulative[s].items, last_[s].items);
      }
    }
    last_ = std::move(cumulative);
    epoch_stats_.push_back(std::move(delta));
  }

  /// Per-epoch per-stage load deltas, one entry per observed epoch.
  const std::vector<std::vector<StageStats>>& epoch_stats() const {
    return epoch_stats_;
  }

  /// Cumulative stats at the last observed epoch boundary.
  const std::vector<StageStats>& totals() const { return last_; }

  /// Busy-time imbalance of a stats vector: max busy / mean busy (1.0 =
  /// perfectly balanced). The wall-clock analogue of
  /// Partition::balance_ratio, computed by the same helper.
  static double busy_spread(const std::vector<StageStats>& stats) {
    std::vector<double> busy;
    busy.reserve(stats.size());
    for (const auto& s : stats) busy.push_back(static_cast<double>(s.busy_ns));
    return pipeline::balance_ratio(busy);
  }

 private:
  const pipeline::ThreadedEngine* engine_ = nullptr;
  std::vector<StageStats> last_;
  std::vector<std::vector<StageStats>> epoch_stats_;
};

}  // namespace pipemare::core
