#pragma once

// StepObserver that turns a backend's per-slot busy/idle/wait counters
// into per-epoch load records — the measurement side of the partition cost
// model (predicted stage cost vs observed busy time) and the refinement
// input of the work-stealing runtime's victim policy. A slot is a stage
// for "threaded" / "threaded_steal" and a worker for "threaded_hogwild"
// (see pipeline::StageStats); the steal counters ride along, so steal
// counts per stage surface on every epoch record.

#include <algorithm>
#include <cstdint>
#include <vector>

#include "src/core/engine_backend.h"
#include "src/core/trainer.h"

namespace pipemare::core {

/// Samples the observed backend's stage_stats() at every epoch boundary.
///
/// Works over any ExecutionBackend: backends without per-slot
/// instrumentation (sequential, hogwild) report empty stats and the
/// observer deactivates itself. Attach to a backend created by the
/// registry, or to a ThreadedEngine directly, then pass to train_loop's
/// observer list:
///
///   auto backend = BackendRegistry::instance().create(...);
///   StageLoadObserver load(*backend);
///   StepObserver* obs[] = {&load};
///   core::train_loop(task, *backend, cfg, obs);
///   if (load.active()) report(load.epoch_stats().back());
class StageLoadObserver final : public StepObserver {
 public:
  using StageStats = pipeline::StageStats;

  explicit StageLoadObserver(const ExecutionBackend& backend)
      : backend_(&backend) {}
  explicit StageLoadObserver(const pipeline::ThreadedEngine& engine)
      : engine_(&engine) {}

  /// False when the observed backend has no per-slot instrumentation.
  bool active() const { return !sample().empty(); }

  void on_epoch(EpochRecord& /*record*/) override {
    auto cumulative = sample();
    if (cumulative.empty()) return;
    auto delta = cumulative;
    if (last_.size() != cumulative.size()) {
      // Slot count changed mid-run (a backend swap or reconfiguration the
      // baseline cannot describe): treat the cumulative values as this
      // epoch's delta rather than indexing a mismatched baseline.
      last_.clear();
    }
    if (!last_.empty()) {
      // Counters are cumulative and monotone unless someone called
      // reset_stage_stats() mid-epoch; a regressed counter means the
      // baseline is stale, and the cumulative value IS the epoch's delta.
      auto since = [](std::uint64_t now, std::uint64_t before) {
        return now >= before ? now - before : now;
      };
      for (std::size_t s = 0; s < delta.size(); ++s) {
        delta[s].busy_ns = since(cumulative[s].busy_ns, last_[s].busy_ns);
        delta[s].pop_wait_ns = since(cumulative[s].pop_wait_ns, last_[s].pop_wait_ns);
        delta[s].push_wait_ns =
            since(cumulative[s].push_wait_ns, last_[s].push_wait_ns);
        delta[s].items = since(cumulative[s].items, last_[s].items);
        delta[s].stolen_items = since(cumulative[s].stolen_items, last_[s].stolen_items);
        delta[s].stolen_ns = since(cumulative[s].stolen_ns, last_[s].stolen_ns);
      }
    }
    last_ = std::move(cumulative);
    epoch_stats_.push_back(std::move(delta));
  }

  /// The per-slot baselines assume counters accumulate within one
  /// execution regime; both events below reset the backend's view of the
  /// world (a repartition also resets the counters themselves), so drop
  /// the baseline — otherwise the first post-event delta would compare
  /// new counters against a stale epoch and go "negative" (wrap through
  /// the since() fallback) per stage.
  void on_method_switch(pipeline::Method /*from*/, pipeline::Method /*to*/,
                        int /*epoch*/) override {
    last_ = sample();
  }
  void on_repartition(const pipeline::Partition& /*from*/,
                      const pipeline::Partition& /*to*/, int /*epoch*/) override {
    last_.clear();
  }

  /// Per-epoch per-slot load deltas, one entry per observed epoch.
  const std::vector<std::vector<StageStats>>& epoch_stats() const {
    return epoch_stats_;
  }

  /// Cumulative stats at the last observed epoch boundary.
  const std::vector<StageStats>& totals() const { return last_; }

  /// Busy-time imbalance of a stats vector: max busy / mean busy (1.0 =
  /// perfectly balanced). The wall-clock analogue of
  /// Partition::balance_ratio, computed by the same helper.
  static double busy_spread(const std::vector<StageStats>& stats) {
    std::vector<double> busy;
    busy.reserve(stats.size());
    for (const auto& s : stats) busy.push_back(static_cast<double>(s.busy_ns));
    return pipeline::balance_ratio(busy);
  }

 private:
  std::vector<StageStats> sample() const {
    if (engine_ != nullptr) return engine_->stage_stats();
    return backend_->stage_stats();
  }

  const ExecutionBackend* backend_ = nullptr;
  const pipeline::ThreadedEngine* engine_ = nullptr;
  std::vector<StageStats> last_;
  std::vector<std::vector<StageStats>> epoch_stats_;
};

}  // namespace pipemare::core
