#include "src/core/backend.h"

#include <stdexcept>
#include <utility>

#include "src/core/engine_backend.h"

namespace pipemare::core {

void ExecutionBackend::repartition(const pipeline::Partition& /*next*/) {
  throw std::logic_error("backend '" + std::string(name()) +
                         "' does not support dynamic repartitioning "
                         "(supports_repartition() is false)");
}

std::string_view backend_options_name(const BackendOptions& options) {
  return std::visit(
      [](const auto& alt) -> std::string_view {
        using T = std::decay_t<decltype(alt)>;
        if constexpr (std::is_same_v<T, std::monostate>) {
          return "(backend defaults)";
        } else {
          return T::kName;
        }
      },
      options);
}

namespace {

/// Extracts the backend's option struct from the tagged variant: monostate
/// yields defaults, the matching alternative is returned, anything else is
/// a configuration error.
template <class Opts>
Opts options_as(const BackendConfig& cfg) {
  if (std::holds_alternative<std::monostate>(cfg.options)) return Opts{};
  if (const Opts* opts = std::get_if<Opts>(&cfg.options)) return *opts;
  throw std::invalid_argument(
      "backend '" + cfg.name + "' takes " + std::string(Opts::kName) +
      " (or no options), but BackendConfig::options holds " +
      std::string(backend_options_name(cfg.options)));
}

void reject_recompute(const char* backend, const pipeline::EngineConfig& engine) {
  if (engine.recompute_segments > 0) {
    throw std::invalid_argument(
        std::string("backend '") + backend +
        "': activation recomputation is modelled only by the analytic "
        "'sequential' backend; set engine.recompute_segments = 0");
  }
}

}  // namespace

BackendRegistry& BackendRegistry::instance() {
  static BackendRegistry registry;
  return registry;
}

void BackendRegistry::register_backend(std::string name, Validator validate,
                                       Factory create) {
  auto [it, inserted] = entries_.emplace(
      std::move(name), Entry{std::move(validate), std::move(create)});
  if (!inserted) {
    throw std::invalid_argument("BackendRegistry: backend '" + it->first +
                                "' is already registered");
  }
}

bool BackendRegistry::contains(std::string_view name) const {
  return entries_.find(name) != entries_.end();
}

std::vector<std::string> BackendRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) out.push_back(name);
  return out;  // std::map iteration order: already sorted
}

void BackendRegistry::require(const std::string& name) const {
  if (entries_.find(name) != entries_.end()) return;
  std::string msg =
      "BackendRegistry: unknown execution backend '" + name + "'; available backends: ";
  bool first = true;
  for (const auto& [known, entry] : entries_) {
    if (!first) msg += ", ";
    msg += known;
    first = false;
  }
  throw std::invalid_argument(msg);
}

void BackendRegistry::validate(const BackendConfig& backend,
                               const pipeline::EngineConfig& engine) const {
  require(backend.name);
  entries_.find(backend.name)->second.validate(backend, engine, nullptr);
}

void BackendRegistry::validate(const BackendConfig& backend,
                               const pipeline::EngineConfig& engine,
                               const nn::Model& model) const {
  require(backend.name);
  entries_.find(backend.name)->second.validate(backend, engine, &model);
}

std::unique_ptr<ExecutionBackend> BackendRegistry::create(
    nn::Model model, const BackendConfig& backend,
    const pipeline::EngineConfig& engine, std::uint64_t seed) const {
  validate(backend, engine, model);
  auto built = entries_.find(backend.name)->second.create(std::move(model), backend,
                                                          engine, seed);
  // engine.method is the single source of truth for the training method;
  // backends whose own config lacks a method field (the Hogwild family)
  // pick it up here.
  built->set_method(engine.method);
  return built;
}

BackendRegistry::BackendRegistry() {
  // Every built-in backend shares the partition validation (strategy /
  // probe consistency, and — when the model is known — the stage-count
  // bound naming max_stages).
  auto check_partition = [](const char* name, const pipeline::EngineConfig& engine,
                            const nn::Model* model) {
    pipeline::validate_partition_config(name, model, engine.num_stages,
                                        engine.split_bias, engine.partition);
  };

  register_backend(
      "sequential",
      [check_partition](const BackendConfig& b, const pipeline::EngineConfig& engine,
                        const nn::Model* model) {
        options_as<SequentialOptions>(b);
        check_partition("sequential", engine, model);
      },
      [](nn::Model model, const BackendConfig&, const pipeline::EngineConfig& engine,
         std::uint64_t seed) -> std::unique_ptr<ExecutionBackend> {
        return std::make_unique<SequentialBackend>("sequential", std::move(model),
                                                   engine, seed);
      });

  register_backend(
      "threaded",
      [check_partition](const BackendConfig& b, const pipeline::EngineConfig& engine,
                        const nn::Model* model) {
        options_as<ThreadedOptions>(b);
        reject_recompute("threaded", engine);
        check_partition("threaded", engine, model);
      },
      [](nn::Model model, const BackendConfig&, const pipeline::EngineConfig& engine,
         std::uint64_t seed) -> std::unique_ptr<ExecutionBackend> {
        return std::make_unique<ThreadedBackend>("threaded", std::move(model), engine,
                                                 seed);
      });

  register_backend(
      "hogwild",
      [check_partition](const BackendConfig& b, const pipeline::EngineConfig& engine,
                        const nn::Model* model) {
        auto opts = options_as<HogwildOptions>(b);
        reject_recompute("hogwild", engine);
        check_partition("hogwild", engine, model);
        hogwild::validate_config(hogwild::from_engine_config(
            engine, opts.max_delay, /*num_workers=*/0, std::move(opts.mean_delay)));
      },
      [](nn::Model model, const BackendConfig& b, const pipeline::EngineConfig& engine,
         std::uint64_t seed) -> std::unique_ptr<ExecutionBackend> {
        auto opts = options_as<HogwildOptions>(b);
        return std::make_unique<HogwildBackend>(
            "hogwild", std::move(model),
            hogwild::from_engine_config(engine, opts.max_delay, /*num_workers=*/0,
                                        std::move(opts.mean_delay)),
            seed);
      });

  register_backend(
      "threaded_steal",
      [check_partition](const BackendConfig& b, const pipeline::EngineConfig& engine,
                        const nn::Model* model) {
        auto opts = options_as<StealOptions>(b);
        reject_recompute("threaded_steal", engine);
        check_partition("threaded_steal", engine, model);
        if (opts.workers < 0) {
          throw std::invalid_argument(
              "backend 'threaded_steal': workers must be >= 0 (0 = "
              "min(cores, num_stages))");
        }
      },
      [](nn::Model model, const BackendConfig& b, const pipeline::EngineConfig& engine,
         std::uint64_t seed) -> std::unique_ptr<ExecutionBackend> {
        auto opts = options_as<StealOptions>(b);
        sched::StealConfig cfg;
        cfg.engine = engine;
        cfg.workers = opts.workers;
        cfg.mode = opts.mode;
        cfg.record_log = opts.record_log;
        return std::make_unique<ThreadedStealBackend>("threaded_steal",
                                                      std::move(model),
                                                      std::move(cfg), seed);
      });

  register_backend(
      "threaded_hogwild",
      [check_partition](const BackendConfig& b, const pipeline::EngineConfig& engine,
                        const nn::Model* model) {
        auto opts = options_as<ThreadedHogwildOptions>(b);
        reject_recompute("threaded_hogwild", engine);
        check_partition("threaded_hogwild", engine, model);
        hogwild::validate_config(hogwild::from_engine_config(
            engine, opts.max_delay, opts.workers, std::move(opts.mean_delay)));
      },
      [](nn::Model model, const BackendConfig& b, const pipeline::EngineConfig& engine,
         std::uint64_t seed) -> std::unique_ptr<ExecutionBackend> {
        auto opts = options_as<ThreadedHogwildOptions>(b);
        return std::make_unique<ThreadedHogwildBackend>(
            "threaded_hogwild", std::move(model),
            hogwild::from_engine_config(engine, opts.max_delay, opts.workers,
                                        std::move(opts.mean_delay)),
            seed);
      });
}

}  // namespace pipemare::core
