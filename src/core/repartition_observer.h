#pragma once

// The core-side half of dynamic repartitioning: a StepObserver that, at
// every epoch boundary, feeds the backend's observed per-stage busy time
// into the pipeline::Repartitioner and — when the planner says migrate —
// drives ExecutionBackend::repartition() at the inter-minibatch quiescent
// point, resets the stage counters, and notifies its peer observers via
// on_repartition. core::train installs one automatically when
// TrainerConfig::repartition.enabled; direct train_loop users append one
// to their observer list themselves.

#include <cstdint>
#include <span>
#include <vector>

#include "src/core/backend.h"
#include "src/core/trainer.h"
#include "src/pipeline/repartition.h"

namespace pipemare::core {

/// Epoch-boundary repartitioning driver. Place it *after* observers that
/// sample stage_stats() themselves (core::train does): a migration resets
/// the backend's counters, and peers are told through on_repartition so
/// they drop their baselines.
class RepartitionObserver final : public StepObserver {
 public:
  /// One migration decision per observed epoch (migrated or not), the
  /// audit trail tests and the repartition bench read back.
  struct Event {
    int epoch = 0;                ///< 1-based epoch the decision closed
    double observed_ratio = 1.0;  ///< busy-time balance ratio this epoch
    double planned_ratio = 1.0;   ///< predicted ratio of the replanned split
    bool migrated = false;
  };

  /// `peers` are the observers to notify on migration (not owned; must
  /// outlive this observer). The backend must support repartitioning and
  /// expose per-stage stats; throws std::invalid_argument otherwise.
  RepartitionObserver(ExecutionBackend& backend, pipeline::RepartitionConfig cfg,
                      std::span<StepObserver* const> peers = {});

  void on_epoch(EpochRecord& record) override;
  void on_method_switch(pipeline::Method from, pipeline::Method to,
                        int epoch) override;

  const std::vector<Event>& events() const { return events_; }
  int migrations() const;

 private:
  ExecutionBackend* backend_;
  pipeline::Repartitioner planner_;
  pipeline::RepartitionConfig cfg_;
  std::vector<StepObserver*> peers_;
  std::vector<std::uint64_t> last_busy_;  ///< cumulative baseline per stage
  int epoch_ = 0;                         ///< 1-based count of observed epochs
  int last_migration_epoch_ = 0;          ///< 0 = never migrated
  std::vector<Event> events_;
};

}  // namespace pipemare::core
