#include "src/core/trainer.h"

#include <stdexcept>

#include "src/pipeline/threaded_engine.h"

namespace pipemare::core {

TrainResult train(const Task& task, TrainerConfig cfg) {
  if (cfg.minibatch_size % cfg.microbatch_size != 0) {
    throw std::invalid_argument("train: minibatch must be a multiple of microbatch");
  }
  cfg.engine.num_microbatches = cfg.num_microbatches();
  nn::Model model = task.build_model();
  if (cfg.threaded_execution) {
    pipeline::ThreadedEngine engine(model, cfg.engine, cfg.seed);
    return train_loop(task, engine, cfg);
  }
  pipeline::PipelineEngine engine(model, cfg.engine, cfg.seed);
  return train_loop(task, engine, cfg);
}

}  // namespace pipemare::core
