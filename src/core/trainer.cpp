#include "src/core/trainer.h"

#include <stdexcept>
#include <utility>

#include "src/core/metrics_observer.h"
#include "src/core/repartition_observer.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/tensor/kernels/registry.h"
#include "src/util/cli.h"

namespace pipemare::core {

namespace {

/// Flag-routing table for the shared backend CLI: which built-in backend
/// honors which backend-specific flag. parse_backend_cli enforces it for
/// the built-in names (custom registered backends own their flags); the
/// serve-side CLI (serve/serve_cli.cpp) reuses the same mechanism for its
/// policy-specific flags.
std::span<const util::FlagRule> backend_flag_rules() {
  static const std::vector<util::FlagRule> rules = {
      {"steal",
       {"threaded_steal"},
       "applies to the threaded_steal backend; pass --backend=threaded_steal"},
      {"steal-log",
       {"threaded_steal"},
       "applies to the threaded_steal backend; pass --backend=threaded_steal"},
      {"max-delay",
       {"hogwild", "threaded_hogwild"},
       "applies to the hogwild backends; pass --backend=hogwild or "
       "--backend=threaded_hogwild"},
      {"workers",
       {"threaded_hogwild", "threaded_steal"},
       "applies to the worker-pool backends; pass --backend=threaded_hogwild "
       "or --backend=threaded_steal"},
  };
  return rules;
}

bool is_builtin_backend(const std::string& name) {
  return name == "sequential" || name == "threaded" || name == "hogwild" ||
         name == "threaded_hogwild" || name == "threaded_steal";
}

}  // namespace

EpochTimer::EpochTimer() : epoch_start_(std::chrono::steady_clock::now()) {}

void EpochTimer::on_epoch(EpochRecord& record) {
  auto now = std::chrono::steady_clock::now();
  record.seconds = std::chrono::duration<double>(now - epoch_start_).count();
  epoch_start_ = now;
}

std::string backend_cli_help() {
  std::string names;
  for (const auto& name : BackendRegistry::instance().names()) {
    if (!names.empty()) names += '|';
    names += name;
  }
  return "  --backend=<" + names +
         ">\n"
         "  --partition=uniform|balanced[,measured|,calibrated]\n"
         "  --kernels=naive|tiled (tensor kernel backend; both bitwise-equal)\n"
         "  --kernel-lanes=<int>  (intra-op GEMM lanes per worker; 1 = off)\n"
         "  --max-delay=<float>   (hogwild family: delay truncation bound)\n"
         "  --workers=<int>       (threaded_hogwild, threaded_steal)\n"
         "  --steal=off|load|det|forced --steal-log=0|1 (threaded_steal)\n"
         "  --repartition=off|auto[,<threshold>]  (threaded, threaded_steal: "
         "epoch-boundary dynamic repartitioning)\n"
         "  --trace=<file>        (Chrome trace-event JSON; open in Perfetto)\n"
         "  --metrics=<file>      (per-epoch metrics snapshot JSON)\n";
}

void parse_backend_cli(const util::Cli& cli, TrainerConfig& cfg) {
  const std::string name = cli.get("backend", cfg.backend.name);
  BackendRegistry::instance().require(name);
  cfg.backend.name = name;
  // Flags the selected built-in backend cannot honor are rejected via the
  // routing table instead of being silently dropped; custom registered
  // backends are left untouched (their flags are the caller's business).
  util::reject_mismatched_flags(cli, "parse_backend_cli", name,
                                is_builtin_backend(name), backend_flag_rules());
  // --repartition is value-dependent (=off is legal everywhere), so it
  // stays outside the table.
  if (cli.has("repartition")) {
    cfg.repartition = pipeline::parse_repartition_spec(cli.get("repartition", "off"));
    if (cfg.repartition.enabled &&
        (name == "sequential" || name == "hogwild" || name == "threaded_hogwild")) {
      throw std::invalid_argument(
          "parse_backend_cli: --repartition=auto needs a repartition-capable, "
          "stage-instrumented backend; pass --backend=threaded or "
          "--backend=threaded_steal");
    }
  }
  if (cli.has("partition")) {
    const std::string spec = cli.get("partition", "uniform");
    // Token grammar: <strategy>[,measured|,calibrated]. The cost model
    // itself rejects measured+calibrated; here each token must parse.
    std::string strategy = spec;
    std::string modifier;
    if (auto comma = spec.find(','); comma != std::string::npos) {
      strategy = spec.substr(0, comma);
      modifier = spec.substr(comma + 1);
    }
    cfg.engine.partition.measured = false;
    cfg.engine.partition.calibrated = false;
    if (strategy == "uniform" && modifier.empty()) {
      cfg.engine.partition.strategy = pipeline::PartitionStrategy::Uniform;
    } else if (strategy == "balanced" &&
               (modifier.empty() || modifier == "measured" ||
                modifier == "calibrated")) {
      cfg.engine.partition.strategy = pipeline::PartitionStrategy::Balanced;
      cfg.engine.partition.measured = modifier == "measured";
      cfg.engine.partition.calibrated = modifier == "calibrated";
    } else {
      throw std::invalid_argument(
          "parse_backend_cli: --partition='" + spec +
          "' is not recognized; use uniform, balanced, balanced,measured, or "
          "balanced,calibrated");
    }
  }
  // Kernel selection is process-global (the tensor ops dispatch through
  // one registry), not per-backend — every backend sees the same kernels
  // and, because naive and tiled are bitwise-equal, the same curves.
  if (cli.has("kernels")) {
    const std::string kspec = cli.get("kernels", "tiled");
    auto kind = tensor::kernels::KernelRegistry::parse(kspec);
    if (!kind) {
      throw std::invalid_argument("parse_backend_cli: --kernels='" + kspec +
                                  "' is not recognized; use naive or tiled");
    }
    tensor::kernels::KernelRegistry::set_kind(*kind);
  }
  if (cli.has("kernel-lanes")) {
    tensor::kernels::KernelRegistry::set_lanes(cli.get_int("kernel-lanes", 1));
  }
  // Observability flags are universal (every backend is instrumented), so
  // they stay outside the flag-routing table.
  cfg.trace_path = cli.get("trace", cfg.trace_path);
  cfg.metrics_path = cli.get("metrics", cfg.metrics_path);
  if (name == "hogwild") {
    HogwildOptions opts;
    if (const auto* prev = std::get_if<HogwildOptions>(&cfg.backend.options)) {
      opts = *prev;
    } else if (const auto* prev_thr =
                   std::get_if<ThreadedHogwildOptions>(&cfg.backend.options)) {
      opts.max_delay = prev_thr->max_delay;
      opts.mean_delay = prev_thr->mean_delay;
    }
    opts.max_delay = cli.get_double("max-delay", opts.max_delay);
    cfg.backend.options = std::move(opts);
  } else if (name == "threaded_hogwild") {
    ThreadedHogwildOptions opts;
    if (const auto* prev = std::get_if<ThreadedHogwildOptions>(&cfg.backend.options)) {
      opts = *prev;
    } else if (const auto* prev_seq = std::get_if<HogwildOptions>(&cfg.backend.options)) {
      opts.max_delay = prev_seq->max_delay;
      opts.mean_delay = prev_seq->mean_delay;
    } else if (const auto* prev_steal = std::get_if<StealOptions>(&cfg.backend.options)) {
      // Worker counts carry between the worker-pool backends.
      opts.workers = prev_steal->workers;
    }
    opts.max_delay = cli.get_double("max-delay", opts.max_delay);
    opts.workers = cli.get_int("workers", opts.workers);
    cfg.backend.options = std::move(opts);
  } else if (name == "threaded_steal") {
    StealOptions opts;
    if (const auto* prev = std::get_if<StealOptions>(&cfg.backend.options)) {
      opts = *prev;
    } else if (const auto* prev_thr =
                   std::get_if<ThreadedHogwildOptions>(&cfg.backend.options)) {
      opts.workers = prev_thr->workers;
    }
    opts.workers = cli.get_int("workers", opts.workers);
    if (cli.has("steal")) {
      opts.mode = sched::parse_steal_mode(cli.get("steal", "load"));
    }
    opts.record_log = cli.get_bool("steal-log", opts.record_log);
    cfg.backend.options = std::move(opts);
  } else if (name == "sequential" || name == "threaded") {
    // A --backend switch must not leave another backend's preset options
    // behind (e.g. a driver presets {"hogwild", HogwildOptions{...}} and
    // the user passes --backend=threaded); drop anything that is not the
    // target backend's own option struct. Custom registered backends are
    // left untouched — their options are the caller's business.
    const bool matches =
        std::holds_alternative<std::monostate>(cfg.backend.options) ||
        (name == "sequential" &&
         std::holds_alternative<SequentialOptions>(cfg.backend.options)) ||
        (name == "threaded" &&
         std::holds_alternative<ThreadedOptions>(cfg.backend.options));
    if (!matches) cfg.backend.options = {};
  }
}

TrainResult train(const Task& task, TrainerConfig cfg,
                  std::span<StepObserver* const> observers) {
  if (cfg.minibatch_size % cfg.microbatch_size != 0) {
    throw std::invalid_argument("train: minibatch must be a multiple of microbatch");
  }
  cfg.engine.num_microbatches = cfg.num_microbatches();
  const BackendConfig& backend = cfg.backend;
  // Balanced partitioning wants a probe microbatch for cost profiling
  // (shape-aware analytic estimates, or the timed reps of measured mode),
  // and the work-stealing backend wants one even under a uniform split —
  // its StealPolicy victim ranking is seeded from cost-model predictions,
  // and without a probe the shape-blind intrinsic fallback can rank a
  // shape-dependent model's stages wrongly for the whole run in the
  // fixed-order (det/forced) modes. The task's first training microbatch
  // is a representative sample. A training set smaller than one
  // microbatch still probes with whatever examples exist (per-stage cost
  // *ratios* barely move with row count).
  const int probe_rows = std::min(cfg.microbatch_size, task.train_size());
  if ((cfg.engine.partition.strategy == pipeline::PartitionStrategy::Balanced ||
       backend.name == "threaded_steal") &&
      !cfg.engine.partition.probe && probe_rows > 0) {
    std::vector<int> idx(static_cast<std::size_t>(probe_rows));
    for (int i = 0; i < probe_rows; ++i) idx[static_cast<std::size_t>(i)] = i;
    auto probe_mb = task.minibatch(idx, probe_rows);
    cfg.engine.partition.probe =
        std::make_shared<const nn::Flow>(std::move(probe_mb.inputs.at(0)));
  }
  // Validate before build_model so a bad configuration fails fast instead
  // of constructing (and discarding) a potentially large model first;
  // create() re-validates with the model for the stage-count bound.
  BackendRegistry::instance().validate(backend, cfg.engine);
  auto engine = BackendRegistry::instance().create(task.build_model(), backend,
                                                  cfg.engine, cfg.seed);
  // Observability wiring: tracing covers the whole run (enable here, one
  // export at the end); the metrics observer rides the observer list like
  // any other, after the user's (so their on_epoch sampling is reflected)
  // and before the repartitioner (whose counter resets it must not miss).
  MetricsObserver metrics_observer(*engine, cfg.metrics_path);
  std::vector<StepObserver*> obs(observers.begin(), observers.end());
  if (!cfg.metrics_path.empty()) obs.push_back(&metrics_observer);
  const bool tracing = !cfg.trace_path.empty();
  if (tracing) obs::TraceRecorder::instance().enable();

  TrainResult result;
  if (!cfg.repartition.enabled) {
    result = train_loop(task, *engine, cfg, obs);
  } else {
    // Dynamic repartitioning: the observer runs *after* the user observers
    // (they sample the epoch's stage stats before it resets the counters)
    // and notifies them through on_repartition when it migrates.
    if (!engine->supports_repartition() || engine->stage_stats().empty()) {
      throw std::invalid_argument(
          "train: repartition=auto needs a repartition-capable, "
          "stage-instrumented backend ('threaded', 'threaded_steal'); backend '" +
          std::string(engine->name()) + "' is not");
    }
    RepartitionObserver repartitioner(*engine, cfg.repartition, obs);
    std::vector<StepObserver*> obs_with_rep = obs;
    obs_with_rep.push_back(&repartitioner);
    result = train_loop(task, *engine, cfg, obs_with_rep);
  }

  if (tracing) {
    obs::TraceRecorder::instance().disable();
    obs::write_chrome_trace(cfg.trace_path);
  }
  if (!cfg.metrics_path.empty()) {
    obs::MetricsRegistry::instance().write_json(cfg.metrics_path);
  }
  return result;
}

}  // namespace pipemare::core
