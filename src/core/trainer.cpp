#include "src/core/trainer.h"

#include <stdexcept>

#include "src/hogwild/threaded_hogwild.h"
#include "src/pipeline/threaded_engine.h"

namespace pipemare::core {

TrainResult train(const Task& task, TrainerConfig cfg) {
  if (cfg.minibatch_size % cfg.microbatch_size != 0) {
    throw std::invalid_argument("train: minibatch must be a multiple of microbatch");
  }
  if (cfg.threaded_execution && cfg.hogwild_execution) {
    throw std::invalid_argument(
        "train: threaded_execution and hogwild_execution are mutually exclusive");
  }
  cfg.engine.num_microbatches = cfg.num_microbatches();
  nn::Model model = task.build_model();
  if (cfg.hogwild_execution) {
    if (cfg.engine.recompute_segments > 0) {
      throw std::invalid_argument(
          "train: activation recomputation is modelled only by the analytic "
          "PipelineEngine; set recompute_segments = 0 for hogwild_execution");
    }
    hogwild::HogwildConfig hw;
    hw.num_stages = cfg.engine.num_stages;
    hw.num_microbatches = cfg.engine.num_microbatches;
    hw.split_bias = cfg.engine.split_bias;
    hw.max_delay = cfg.hogwild_max_delay;
    hw.num_workers = cfg.hogwild_workers;
    hogwild::ThreadedHogwildEngine engine(model, hw, cfg.seed);
    engine.set_method(cfg.engine.method);
    return train_loop(task, engine, cfg);
  }
  if (cfg.threaded_execution) {
    pipeline::ThreadedEngine engine(model, cfg.engine, cfg.seed);
    return train_loop(task, engine, cfg);
  }
  pipeline::PipelineEngine engine(model, cfg.engine, cfg.seed);
  return train_loop(task, engine, cfg);
}

}  // namespace pipemare::core
