#include "src/core/task.h"

#include "src/data/bleu.h"
#include "src/nn/linear.h"

namespace pipemare::core {

// ---------------------------------------------------------------------------
// ImageTask
// ---------------------------------------------------------------------------

ImageTask::ImageTask(data::ImageDatasetConfig data_cfg, nn::ResNetConfig model_cfg,
                     std::string name)
    : dataset_(data_cfg), model_cfg_(std::move(model_cfg)), name_(std::move(name)) {
  model_cfg_.in_channels = data_cfg.channels;
  model_cfg_.num_classes = data_cfg.classes;
}

nn::Model ImageTask::build_model() const { return nn::make_resnet(model_cfg_); }

data::MicroBatches ImageTask::minibatch(const std::vector<int>& indices,
                                        int micro_size) const {
  return dataset_.train_minibatch(indices, micro_size);
}

double ImageTask::evaluate(const nn::Model& model, std::span<const float> params) const {
  auto batches = dataset_.test_batch(64);
  double correct = 0.0, count = 0.0;
  for (std::size_t b = 0; b < batches.inputs.size(); ++b) {
    auto caches = model.make_caches();
    nn::Flow out = model.forward(batches.inputs[b], params, caches);
    auto res = loss_.forward_backward(out.x, batches.targets[b]);
    correct += res.correct;
    count += res.count;
  }
  return count == 0.0 ? 0.0 : 100.0 * correct / count;
}

// ---------------------------------------------------------------------------
// TranslationTask
// ---------------------------------------------------------------------------

TranslationTask::TranslationTask(data::TranslationConfig data_cfg,
                                 nn::TransformerConfig model_cfg, std::string name,
                                 int eval_sentences, int beam_width)
    : dataset_(data_cfg),
      model_cfg_(model_cfg),
      loss_(0.1, data::TranslationConfig::kPad),
      name_(std::move(name)),
      eval_sentences_(eval_sentences),
      beam_width_(beam_width) {
  model_cfg_.vocab = data_cfg.vocab;
  // Room for BOS + sequence + EOS.
  model_cfg_.max_len = std::max(model_cfg_.max_len, data_cfg.seq_len + 4);
}

nn::Model TranslationTask::build_model() const { return nn::make_transformer(model_cfg_); }

data::MicroBatches TranslationTask::minibatch(const std::vector<int>& indices,
                                              int micro_size) const {
  return dataset_.train_minibatch(indices, micro_size);
}

double TranslationTask::evaluate(const nn::Model& model,
                                 std::span<const float> params) const {
  auto test = dataset_.test_set(eval_sentences_);
  int max_steps = dataset_.config().seq_len + 2;
  auto hyps =
      beam_width_ > 1
          ? nn::beam_decode(model, params, test.sources, data::TranslationConfig::kBos,
                            data::TranslationConfig::kEos, max_steps, beam_width_)
          : nn::greedy_decode(model, params, test.sources,
                              data::TranslationConfig::kBos,
                              data::TranslationConfig::kEos, max_steps);
  return data::corpus_bleu(hyps, test.references);
}

double TranslationTask::evaluate_beam(const nn::Model& model,
                                      std::span<const float> params,
                                      int beam_width) const {
  auto test = dataset_.test_set(eval_sentences_);
  int max_steps = dataset_.config().seq_len + 2;
  auto hyps = nn::beam_decode(model, params, test.sources, data::TranslationConfig::kBos,
                              data::TranslationConfig::kEos, max_steps, beam_width);
  return data::corpus_bleu(hyps, test.references);
}

// ---------------------------------------------------------------------------
// RegressionTask
// ---------------------------------------------------------------------------

RegressionTask::RegressionTask(data::RegressionConfig cfg) : dataset_(cfg) {}

nn::Model RegressionTask::build_model() const {
  nn::Model m;
  m.add(std::make_unique<nn::Linear>(dataset_.config().features, 1));
  return m;
}

data::MicroBatches RegressionTask::minibatch(const std::vector<int>& indices,
                                             int micro_size) const {
  return dataset_.minibatch(indices, micro_size);
}

double RegressionTask::evaluate(const nn::Model& model,
                                std::span<const float> params) const {
  std::vector<int> all(static_cast<std::size_t>(dataset_.size()));
  for (int i = 0; i < dataset_.size(); ++i) all[static_cast<std::size_t>(i)] = i;
  auto mb = dataset_.minibatch(all, dataset_.size());
  auto caches = model.make_caches();
  nn::Flow out = model.forward(mb.inputs[0], params, caches);
  auto res = loss_.forward_backward(out.x.reshaped({dataset_.size()}), mb.targets[0]);
  return -res.loss;
}

// ---------------------------------------------------------------------------
// Paper-workload analogs
// ---------------------------------------------------------------------------

std::unique_ptr<ImageTask> make_cifar10_analog(std::uint64_t seed) {
  data::ImageDatasetConfig d;
  d.classes = 10;
  d.train_size = 1024;
  d.test_size = 256;
  d.image_size = 12;
  d.seed = seed;
  nn::ResNetConfig m;
  m.base_channels = 8;
  m.blocks_per_group = {1, 1};
  return std::make_unique<ImageTask>(d, m, "synth-cifar10");
}

std::unique_ptr<ImageTask> make_imagenet_analog(std::uint64_t seed) {
  data::ImageDatasetConfig d;
  d.classes = 20;
  d.train_size = 1024;
  d.test_size = 256;
  d.image_size = 14;
  d.noise_std = 0.7;
  d.seed = seed;
  nn::ResNetConfig m;
  m.base_channels = 8;
  m.blocks_per_group = {1, 1, 1};
  return std::make_unique<ImageTask>(d, m, "synth-imagenet");
}

std::unique_ptr<ImageTask> make_deep_resnet_analog(std::uint64_t seed) {
  data::ImageDatasetConfig d;
  d.classes = 10;
  d.train_size = 1024;
  d.test_size = 256;
  d.image_size = 12;
  d.seed = seed;
  nn::ResNetConfig m = nn::ResNetConfig::deep();
  return std::make_unique<ImageTask>(d, m, "synth-cifar10-deep");
}

std::unique_ptr<TranslationTask> make_iwslt_analog(std::uint64_t seed) {
  data::TranslationConfig d;
  d.vocab = 24;
  d.seq_len = 8;
  d.train_size = 768;
  d.test_size = 96;
  d.seed = seed;
  nn::TransformerConfig m;
  m.d_model = 32;
  m.heads = 4;
  m.enc_layers = 2;
  m.dec_layers = 2;
  m.ffn_hidden = 64;
  return std::make_unique<TranslationTask>(d, m, "synth-iwslt14", /*eval=*/48);
}

std::unique_ptr<TranslationTask> make_wmt_analog(std::uint64_t seed) {
  data::TranslationConfig d;
  d.vocab = 32;
  d.seq_len = 10;
  d.train_size = 768;
  d.test_size = 96;
  d.seed = seed;
  nn::TransformerConfig m;
  m.d_model = 32;
  m.heads = 4;
  m.enc_layers = 2;
  m.dec_layers = 2;
  m.ffn_hidden = 64;
  return std::make_unique<TranslationTask>(d, m, "synth-wmt17", /*eval=*/48);
}

}  // namespace pipemare::core
