#pragma once

// The EngineBackend adapter lives apart from backend.h so that
// TrainerConfig consumers (everything including trainer.h) depend only on
// the ExecutionBackend interface + registry, not on the four concrete
// engine headers. Include this header where the adapter itself is needed:
// the registry factories (backend.cpp), custom backend registrations, and
// callers that dynamic_cast a created backend to reach an engine-specific
// surface (e.g. ThreadedEngine::lane_stats in the micro benches).

#include <concepts>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/core/backend.h"
#include "src/hogwild/hogwild.h"
#include "src/hogwild/threaded_hogwild.h"
#include "src/pipeline/engine.h"
#include "src/pipeline/threaded_engine.h"
#include "src/sched/stealing_engine.h"

namespace pipemare::core {

/// Adapter: any type satisfying the train_loop engine concept becomes an
/// ExecutionBackend. The adapter owns the model (engines keep a reference).
template <class Engine, class EngineCfg>
class EngineBackend final : public ExecutionBackend {
 public:
  EngineBackend(std::string name, nn::Model model, EngineCfg cfg, std::uint64_t seed)
      : name_(std::move(name)), model_(std::move(model)),
        engine_(model_, std::move(cfg), seed) {}

  EngineBackend(const EngineBackend&) = delete;
  EngineBackend& operator=(const EngineBackend&) = delete;

  pipeline::StepResult forward_backward(
      const std::vector<nn::Flow>& micro_inputs,
      const std::vector<tensor::Tensor>& micro_targets,
      const nn::LossHead& head) override {
    return engine_.forward_backward(micro_inputs, micro_targets, head);
  }
  std::span<float> weights() override { return engine_.weights(); }
  std::span<const float> weights() const override { return engine_.weights(); }
  std::span<float> gradients() override { return engine_.gradients(); }
  void commit_update() override { engine_.commit_update(); }
  std::vector<optim::LrSegment> lr_segments(
      double base_lr, std::span<const double> scales) const override {
    return engine_.lr_segments(base_lr, scales);
  }
  std::vector<double> stage_tau_fwd() const override { return engine_.stage_tau_fwd(); }
  void set_method(pipeline::Method m) override { engine_.set_method(m); }
  pipeline::Method method() const override { return engine_.method(); }
  const nn::Model& model() const override { return model_; }
  std::string_view name() const override { return name_; }

  /// Engines expose load instrumentation by providing stage_stats() /
  /// reset_stage_stats(); engines without it (the analytic sequential
  /// pipeline, the single-threaded Hogwild engine) fall back to the
  /// interface default (empty = uninstrumented).
  std::vector<pipeline::StageStats> stage_stats() const override {
    if constexpr (requires(const Engine& e) { e.stage_stats(); }) {
      return engine_.stage_stats();
    } else {
      return {};
    }
  }
  void reset_stage_stats() override {
    if constexpr (requires(Engine& e) { e.reset_stage_stats(); }) {
      engine_.reset_stage_stats();
    }
  }

  /// Engines opt into dynamic repartitioning by providing repartition();
  /// the rest keep the interface default (unsupported, throwing).
  bool supports_repartition() const override {
    return requires(Engine& e, const pipeline::Partition& p) { e.repartition(p); };
  }
  const pipeline::Partition* partition() const override {
    if constexpr (requires(const Engine& e) {
                    { e.partition() } -> std::same_as<const pipeline::Partition&>;
                  }) {
      return &engine_.partition();
    } else {
      return nullptr;
    }
  }
  void repartition(const pipeline::Partition& next) override {
    if constexpr (requires(Engine& e, const pipeline::Partition& p) {
                    e.repartition(p);
                  }) {
      engine_.repartition(next);
    } else {
      ExecutionBackend::repartition(next);  // throws
    }
  }

  /// The wrapped engine, for callers needing its concrete surface
  /// (e.g. ThreadedEngine::lane_stats in the micro benches).
  Engine& engine() { return engine_; }
  const Engine& engine() const { return engine_; }

 private:
  std::string name_;
  nn::Model model_;
  Engine engine_;
};

/// Concrete adapter instantiations of the built-in backends (what the
/// registry factories return; dynamic_cast targets for engine-specific
/// introspection).
using SequentialBackend = EngineBackend<pipeline::PipelineEngine, pipeline::EngineConfig>;
using ThreadedBackend = EngineBackend<pipeline::ThreadedEngine, pipeline::EngineConfig>;
using HogwildBackend = EngineBackend<hogwild::HogwildEngine, hogwild::HogwildConfig>;
using ThreadedHogwildBackend =
    EngineBackend<hogwild::ThreadedHogwildEngine, hogwild::HogwildConfig>;
using ThreadedStealBackend = EngineBackend<sched::StealingEngine, sched::StealConfig>;

}  // namespace pipemare::core
