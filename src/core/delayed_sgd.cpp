#include "src/core/delayed_sgd.h"

#include <algorithm>
#include <cmath>

#include "src/util/rng.h"
#include "src/util/stats.h"

namespace pipemare::core {

DelayedSgdResult run_delayed_sgd(const Task& task, const DelayedSgdConfig& cfg) {
  nn::Model model = task.build_model();
  util::Rng rng(cfg.seed);
  std::vector<float> live(static_cast<std::size_t>(model.param_count()));
  model.init_params(live, rng);

  int max_tau = std::max(cfg.tau_fwd, cfg.tau_bkwd);
  int depth = max_tau + 1;
  std::vector<std::vector<float>> history(static_cast<std::size_t>(depth), live);

  DelayedSgdResult result;
  std::vector<float> grad(live.size());
  for (int t = 0; t < cfg.iterations; ++t) {
    std::vector<int> idx(static_cast<std::size_t>(cfg.minibatch_size));
    for (auto& i : idx) i = rng.randint(task.train_size());
    auto mb = task.minibatch(idx, cfg.minibatch_size);

    const auto& u_fwd =
        history[static_cast<std::size_t>(std::max(0, t - cfg.tau_fwd) % depth)];
    const auto& u_bkwd =
        history[static_cast<std::size_t>(std::max(0, t - cfg.tau_bkwd) % depth)];
    std::fill(grad.begin(), grad.end(), 0.0F);
    auto caches = model.make_caches();
    nn::Flow input = mb.inputs[0];
    input.training = true;
    nn::Flow out = model.forward(std::move(input), u_fwd, caches);
    auto lr = task.loss().forward_backward(out.x, mb.targets[0]);
    nn::Flow dflow;
    dflow.x = lr.doutput;
    model.backward(std::move(dflow), u_bkwd, caches, grad);

    bool finite = std::isfinite(lr.loss);
    for (std::size_t i = 0; i < live.size() && finite; ++i) {
      finite = std::isfinite(grad[i]);
    }
    if (!finite || lr.loss > cfg.divergence_loss) {
      result.diverged = true;
      result.final_loss = cfg.divergence_loss;
      return result;
    }
    for (std::size_t i = 0; i < live.size(); ++i) {
      live[i] -= static_cast<float>(cfg.alpha) * grad[i];
    }
    history[static_cast<std::size_t>((t + 1) % depth)] = live;
  }
  result.final_loss = -task.evaluate(model, live);  // evaluate returns -loss
  if (!std::isfinite(result.final_loss) || result.final_loss > cfg.divergence_loss) {
    result.diverged = true;
    result.final_loss = cfg.divergence_loss;
  }
  return result;
}

}  // namespace pipemare::core
