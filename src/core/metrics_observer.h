#pragma once

// StepObserver that surfaces the backend's observability state through the
// obs::MetricsRegistry at every epoch boundary: curve-level gauges
// (train.epoch / train.loss / train.metric / train.param_norm), the
// backend-specific instrumentation that only exists behind a concrete
// engine surface (ThreadedEngine's StageMailbox lane high-water marks,
// StealingEngine's cumulative dropped steal-log entries), and — when a
// --metrics=<file> path is set — a JSON snapshot of the whole registry
// rewritten after each epoch, so a run killed mid-training still leaves
// its latest metrics on disk. core::train installs one automatically when
// TrainerConfig::metrics_path is non-empty; direct train_loop users append
// one to their observer list themselves.

#include <string>

#include "src/core/backend.h"
#include "src/core/trainer.h"

namespace pipemare::core {

/// Epoch-boundary metrics snapshotter. Runs fine ahead of or behind the
/// RepartitionObserver — it reads engine accessors that are valid between
/// minibatches and never resets backend counters itself.
class MetricsObserver final : public StepObserver {
 public:
  /// `backend` is borrowed and must outlive the observer. `metrics_path`
  /// empty = keep the registry updated but write no file.
  explicit MetricsObserver(ExecutionBackend& backend,
                           std::string metrics_path = "");

  void on_epoch(EpochRecord& record) override;

 private:
  ExecutionBackend* backend_;
  std::string metrics_path_;
};

}  // namespace pipemare::core
