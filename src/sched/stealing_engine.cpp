#include "src/sched/stealing_engine.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <stdexcept>
#include <thread>
#include <utility>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/pipeline/cost_model.h"
#include "src/pipeline/repartition.h"
#include "src/util/stats.h"

namespace pipemare::sched {

namespace {

using Clock = std::chrono::steady_clock;
using util::ns_between;

/// Steal-log soft cap: the log is an opt-in debugging artifact; a long run
/// with logging left on must not grow without bound.
constexpr std::size_t kMaxStealLog = std::size_t{1} << 20;

int resolve_worker_count(const StealConfig& cfg) {
  if (cfg.workers > 0) return cfg.workers;
  auto cores = static_cast<int>(std::thread::hardware_concurrency());
  if (cores <= 0) cores = 2;
  return std::max(1, std::min(cores, cfg.engine.num_stages));
}

/// Predicted per-stage busy shares for the StealPolicy seed. A balanced
/// partition already carries cost-model stage costs; a uniform partition's
/// stage_cost counts units (exactly the assumption the cost model
/// corrects), so re-profile through the cost model — analytic fallback
/// when the spec has no probe microbatch.
std::vector<double> predicted_stage_costs(const nn::Model& model,
                                          const pipeline::Partition& partition,
                                          pipeline::PartitionSpec spec) {
  if (partition.strategy == pipeline::PartitionStrategy::Balanced) {
    return partition.stage_cost;
  }
  if (!spec.probe) spec.measured = false;
  auto unit = pipeline::profile_unit_costs(model, partition.units, spec);
  std::vector<double> stage(static_cast<std::size_t>(partition.num_stages), 0.0);
  for (std::size_t u = 0; u < unit.size(); ++u) {
    stage[static_cast<std::size_t>(partition.unit_stage[u])] += unit[u];
  }
  return stage;
}

}  // namespace

StealingEngine::StealingEngine(const nn::Model& model, StealConfig cfg,
                               std::uint64_t seed)
    : model_(model),
      cfg_(std::move(cfg)),
      partition_(pipeline::make_partition(model, cfg_.engine.num_stages,
                                          cfg_.engine.split_bias,
                                          cfg_.engine.partition)),
      schedule_(cfg_.engine.num_stages, cfg_.engine.num_microbatches),
      store_(model, cfg_.engine, partition_, schedule_, seed),
      policy_(cfg_.mode,
              predicted_stage_costs(model, partition_, cfg_.engine.partition)) {
  if (cfg_.engine.recompute_segments > 0) {
    throw std::invalid_argument(
        "StealingEngine: activation recomputation is modelled only by the "
        "analytic PipelineEngine; set recompute_segments = 0");
  }
  if (cfg_.workers < 0) {
    throw std::invalid_argument("StealingEngine: workers must be >= 0");
  }
  // The probe microbatch is consumed by make_partition / the policy seed
  // above; don't keep its tensors alive for the whole engine lifetime.
  cfg_.engine.partition.probe.reset();
  grads_.assign(store_.live().size(), 0.0F);

  // Stage -> module/unit ranges, shared with ThreadedEngine.
  ranges_ = pipeline::stage_module_ranges(partition_);

  const int p = cfg_.engine.num_stages;
  const int n = cfg_.engine.num_microbatches;
  caches_.resize(static_cast<std::size_t>(n));
  for (auto& c : caches_) c = model_.make_caches();
  fwd_flow_.resize(static_cast<std::size_t>(n));
  bwd_flow_.resize(static_cast<std::size_t>(n));
  micro_loss_.assign(static_cast<std::size_t>(n), 0.0);
  micro_correct_.assign(static_cast<std::size_t>(n), 0.0);
  micro_count_.assign(static_cast<std::size_t>(n), 0.0);
  next_bwd_.assign(static_cast<std::size_t>(p), 0);
  bwd_ready_.assign(static_cast<std::size_t>(p) * static_cast<std::size_t>(n), 0);

  queues_.reserve(static_cast<std::size_t>(p));
  for (int s = 0; s < p; ++s) queues_.push_back(std::make_unique<TaskQueue>());
  stage_counters_ = std::make_unique<AtomicStageCounters[]>(static_cast<std::size_t>(p));

  const int w = resolve_worker_count(cfg_);
  home_stages_.resize(static_cast<std::size_t>(w));
  for (int s = 0; s < p; ++s) {
    home_stages_[static_cast<std::size_t>(s % w)].push_back(s);
  }
  worker_stats_.assign(static_cast<std::size_t>(w), StageStats{});
  scratch_.resize(static_cast<std::size_t>(w));
  for (auto& buf : scratch_) buf.resize(store_.live().size());

  // Spawn last: drain() touches every field above.
  pool_ = std::make_unique<WorkerPool>(w, [this](int worker) { drain(worker); });
}

StealingEngine::~StealingEngine() = default;

void StealingEngine::repartition(const pipeline::Partition& next) {
  pipeline::validate_repartition(partition_, next);
  // Quiescent point: between minibatches the workers are parked on the
  // pool barrier; the next generation's release barrier publishes the new
  // ranges / staleness map / victim order. Stage count is unchanged, so
  // the per-stage queues, counters and home assignments stay valid.
  partition_ = next;
  ranges_ = pipeline::stage_module_ranges(partition_);
  // Reseed the victim ranking from the new split's predicted stage costs
  // (the probe was dropped after construction; the analytic fallback is
  // fine — a migrated partition carries observed-cost stage totals).
  policy_ = StealPolicy(cfg_.mode,
                        predicted_stage_costs(model_, partition_, cfg_.engine.partition));
}

void StealingEngine::record_failure(const char* what) {
  bool expected = false;
  if (mb_failed_.compare_exchange_strong(expected, true)) {
    util::MutexLock lock(sched_m_);
    mb_error_ = what;
  }
}

void StealingEngine::enqueue(const Task& task) {
  queues_[static_cast<std::size_t>(task.stage)]->push(task);
  {
    util::MutexLock lock(sched_m_);
    ++push_version_;
  }
  sched_cv_.notify_all();
}

void StealingEngine::mark_backward_ready(int stage, int micro) {
  const int n = cfg_.engine.num_microbatches;
  bool notify = false;
  {
    util::MutexLock lock(sched_m_);
    bwd_ready_[static_cast<std::size_t>(stage) * static_cast<std::size_t>(n) +
               static_cast<std::size_t>(micro)] = 1;
    // Enqueue only at the chain head; Backward(stage, micro) with an
    // uncompleted predecessor is enqueued by that predecessor's
    // chain-advance instead. Both checks run under sched_m_, so exactly
    // one path fires.
    if (next_bwd_[static_cast<std::size_t>(stage)] == micro) {
      queues_[static_cast<std::size_t>(stage)]->push(
          {Task::Kind::Backward, stage, micro});
      ++push_version_;
      notify = true;
    }
  }
  if (notify) sched_cv_.notify_all();
}

void StealingEngine::complete_task() {
  bool all_done = false;
  {
    util::MutexLock lock(sched_m_);
    all_done = --remaining_ == 0;
  }
  if (all_done) sched_cv_.notify_all();
}

bool StealingEngine::acquire_home(int worker, Task& out) {
  for (int s : home_stages_[static_cast<std::size_t>(worker)]) {
    if (queues_[static_cast<std::size_t>(s)]->pop(out)) return true;
  }
  return false;
}

bool StealingEngine::acquire_steal(int worker, Task& out, bool& stolen) {
  for (int s : policy_.victim_order()) {
    if (!queues_[static_cast<std::size_t>(s)]->steal(out)) continue;
    if (home_worker(s) != worker) {
      stolen = true;
      stage_counters_[static_cast<std::size_t>(s)].stolen_items.fetch_add(
          1, std::memory_order_relaxed);
      worker_stats_[static_cast<std::size_t>(worker)].stolen_items += 1;
      static obs::Counter& steals =
          obs::MetricsRegistry::instance().counter("sched.steals");
      steals.add();
      obs::instant("steal", "sched", out.stage, out.micro, store_.step());
      if (policy_.deterministic() || cfg_.record_log) {
        util::MutexLock lock(sched_m_);
        if (steal_log_.size() < kMaxStealLog) {
          steal_log_.push_back(
              {store_.step(), worker, out.stage, out.micro, out.kind});
        } else {
          ++dropped_log_entries_;
          // Mirrored in the registry: the in-object counter needs a lock
          // and an engine pointer to read, the metric shows up in every
          // snapshot (satellite: surface steal-log drops).
          static obs::Counter& dropped =
              obs::MetricsRegistry::instance().counter("sched.steal_log_dropped");
          dropped.add();
        }
      }
    }
    return true;
  }
  return false;
}

bool StealingEngine::acquire(int worker, Task& out, bool& stolen) {
  stolen = false;
  if (policy_.steal_first()) {
    return acquire_steal(worker, out, stolen) || acquire_home(worker, out);
  }
  if (acquire_home(worker, out)) return true;
  return policy_.steal_enabled() && acquire_steal(worker, out, stolen);
}

void StealingEngine::drain(int worker) {
  std::vector<float>& w = scratch_[static_cast<std::size_t>(worker)];
  StageStats& ws = worker_stats_[static_cast<std::size_t>(worker)];
  for (;;) {
    std::uint64_t version;
    {
      util::MutexLock lock(sched_m_);
      if (remaining_ == 0) return;
      version = push_version_;
    }
    Task task;
    bool stolen = false;
    if (acquire(worker, task, stolen)) {
      execute(worker, task, stolen, w);
      continue;
    }
    // Nothing admissible anywhere: sleep until a push bumps the version
    // (re-scan) or the last task completes (exit). Reading `version`
    // before the scan makes the wait race-free — a push between scan and
    // wait leaves push_version_ != version, so the wait condition is
    // already true and we never sleep through work.
    auto t0 = Clock::now();
    {
      obs::Span bubble("pop_wait", "sched", -1, -1, store_.step());
      util::MutexLock lock(sched_m_);
      while (remaining_ != 0 && push_version_ == version) sched_cv_.wait(sched_m_);
    }
    ws.pop_wait_ns += ns_between(t0, Clock::now());
  }
}

void StealingEngine::execute(int worker, const Task& task, bool stolen,
                             std::vector<float>& w) {
  obs::Span span(task.kind == Task::Kind::Forward ? "fwd" : "bwd", "sched",
                 task.stage, task.micro, store_.step());
  std::uint64_t busy = task.kind == Task::Kind::Forward
                           ? run_forward(worker, task, w)
                           : run_backward(worker, task, w);
  AtomicStageCounters& sc = stage_counters_[static_cast<std::size_t>(task.stage)];
  sc.busy_ns.fetch_add(busy, std::memory_order_relaxed);
  sc.items.fetch_add(1, std::memory_order_relaxed);
  if (stolen) sc.stolen_ns.fetch_add(busy, std::memory_order_relaxed);
  StageStats& ws = worker_stats_[static_cast<std::size_t>(worker)];
  ws.busy_ns += busy;
  ws.items += 1;
  complete_task();
}

std::uint64_t StealingEngine::run_forward(int /*worker*/, const Task& task,
                                          std::vector<float>& w) {
  const int s = task.stage;
  const int m = task.micro;
  const StageRange& r = ranges_[static_cast<std::size_t>(s)];
  const bool last = s == cfg_.engine.num_stages - 1;
  std::uint64_t busy = 0;
  nn::Flow in = std::move(fwd_flow_[static_cast<std::size_t>(m)]);
  nn::Flow out;
  if (!mb_failed_.load(std::memory_order_relaxed)) {
    try {
      auto t0 = Clock::now();
      store_.assemble_forward_units(r.unit_first, r.unit_last, m, w);
      out = model_.forward_range(r.module_first, r.module_last, std::move(in), w,
                                 caches_[static_cast<std::size_t>(m)]);
      busy += ns_between(t0, Clock::now());
    } catch (const std::exception& e) {
      record_failure(e.what());
    }
  }
  if (!last) {
    fwd_flow_[static_cast<std::size_t>(m)] = std::move(out);
    enqueue({Task::Kind::Forward, s + 1, m});
    return busy;
  }
  // Tail stage: loss into this microbatch's slot (slots are merged in
  // microbatch order after the barrier, replaying the sequential sum even
  // when tail forwards complete out of order), then hand the output
  // gradient to the stage's backward chain.
  nn::Flow dflow;
  if (!mb_failed_.load(std::memory_order_relaxed)) {
    try {
      auto t0 = Clock::now();
      nn::LossResult lr = mb_head_->forward_backward(
          out.x, (*mb_targets_)[static_cast<std::size_t>(m)]);
      busy += ns_between(t0, Clock::now());
      micro_loss_[static_cast<std::size_t>(m)] = lr.loss;
      micro_correct_[static_cast<std::size_t>(m)] = lr.correct;
      micro_count_[static_cast<std::size_t>(m)] = lr.count;
      dflow.x = std::move(lr.doutput);
    } catch (const std::exception& e) {
      record_failure(e.what());
    }
  }
  bwd_flow_[static_cast<std::size_t>(m)] = std::move(dflow);
  mark_backward_ready(s, m);
  return busy;
}

std::uint64_t StealingEngine::run_backward(int /*worker*/, const Task& task,
                                           std::vector<float>& w) {
  const int s = task.stage;
  const int m = task.micro;
  const int n = cfg_.engine.num_microbatches;
  const StageRange& r = ranges_[static_cast<std::size_t>(s)];
  std::uint64_t busy = 0;
  nn::Flow dflow = std::move(bwd_flow_[static_cast<std::size_t>(m)]);
  nn::Flow din;
  if (!mb_failed_.load(std::memory_order_relaxed)) {
    try {
      auto t0 = Clock::now();
      store_.assemble_backward_units(r.unit_first, r.unit_last, m, w);
      din = model_.backward_range(r.module_first, r.module_last, std::move(dflow), w,
                                  caches_[static_cast<std::size_t>(m)], grads_);
      busy += ns_between(t0, Clock::now());
    } catch (const std::exception& e) {
      record_failure(e.what());
    }
  }
  if (s > 0) {
    // The flow slot must be written before the ready flag is published;
    // the sched_m_ lock inside mark_backward_ready orders both for the
    // worker that picks the task up.
    bwd_flow_[static_cast<std::size_t>(m)] = std::move(din);
    mark_backward_ready(s - 1, m);
  }
  // Advance this stage's backward chain: the successor was parked if its
  // gradient arrived while we were running.
  bool notify = false;
  {
    util::MutexLock lock(sched_m_);
    next_bwd_[static_cast<std::size_t>(s)] = m + 1;
    if (m + 1 < n &&
        bwd_ready_[static_cast<std::size_t>(s) * static_cast<std::size_t>(n) +
                   static_cast<std::size_t>(m) + 1] != 0) {
      queues_[static_cast<std::size_t>(s)]->push({Task::Kind::Backward, s, m + 1});
      ++push_version_;
      notify = true;
    }
  }
  if (notify) sched_cv_.notify_all();
  return busy;
}

StealingEngine::StepResult StealingEngine::forward_backward(
    const std::vector<nn::Flow>& micro_inputs,
    const std::vector<tensor::Tensor>& micro_targets, const nn::LossHead& head) {
  const int n = cfg_.engine.num_microbatches;
  const int p = cfg_.engine.num_stages;
  if (static_cast<int>(micro_inputs.size()) != n ||
      static_cast<int>(micro_targets.size()) != n) {
    throw std::invalid_argument("forward_backward: expected N microbatches");
  }
  std::fill(grads_.begin(), grads_.end(), 0.0F);
  std::fill(micro_loss_.begin(), micro_loss_.end(), 0.0);
  std::fill(micro_correct_.begin(), micro_correct_.end(), 0.0);
  std::fill(micro_count_.begin(), micro_count_.end(), 0.0);
  for (int m = 0; m < n; ++m) {
    nn::Flow in = micro_inputs[static_cast<std::size_t>(m)];
    in.training = true;
    in.micro = m;
    in.step = store_.step();
    fwd_flow_[static_cast<std::size_t>(m)] = std::move(in);
    bwd_flow_[static_cast<std::size_t>(m)] = nn::Flow{};
  }
  mb_targets_ = &micro_targets;
  mb_head_ = &head;
  mb_failed_.store(false);

  // LoadAware victim re-ranking from the cumulative busy counters (no-op
  // in the other modes; the first minibatch keeps the cost-model seed).
  {
    std::vector<std::uint64_t> busy(static_cast<std::size_t>(p));
    for (int s = 0; s < p; ++s) {
      busy[static_cast<std::size_t>(s)] =
          stage_counters_[static_cast<std::size_t>(s)].busy_ns.load(
              std::memory_order_relaxed);
    }
    policy_.refresh(busy);
  }

  {
    // Workers are parked in the pool barrier here, so taking sched_m_ is
    // uncontended — and lets the analysis prove the per-minibatch resets
    // of the gating state never race a straggler.
    util::MutexLock lock(sched_m_);
    remaining_ = 2 * n * p;
    push_version_ = 0;
    std::fill(next_bwd_.begin(), next_bwd_.end(), 0);
    std::fill(bwd_ready_.begin(), bwd_ready_.end(), 0);
    mb_error_.clear();
  }
  // Workers are parked in the pool barrier, so the seed tasks can be
  // enqueued without notifications.
  for (int m = 0; m < n; ++m) {
    queues_[0]->push({Task::Kind::Forward, 0, m});
  }
  pool_->run_generation();
  mb_targets_ = nullptr;
  mb_head_ = nullptr;
  if (mb_failed_.load()) {
    util::MutexLock lock(sched_m_);
    throw std::runtime_error("StealingEngine worker failed: " + mb_error_);
  }

  // Ordered merge of the per-microbatch slots: bitwise-identical to the
  // sequential engine's in-order accumulation (and the unified non-finite
  // StepResult contract: first non-finite loss in microbatch order,
  // zeroed metrics, gradients unspecified).
  StepResult result;
  for (int m = 0; m < n; ++m) {
    double loss = micro_loss_[static_cast<std::size_t>(m)];
    if (!std::isfinite(loss)) {
      result.finite = false;
      result.loss = loss;
      result.correct = 0.0;
      result.count = 0.0;
      return result;
    }
    result.loss += loss / n;
    result.correct += micro_correct_[static_cast<std::size_t>(m)];
    result.count += micro_count_[static_cast<std::size_t>(m)];
  }
  // Same normalization and finiteness sweep as the sequential engine.
  auto inv_n = 1.0F / static_cast<float>(n);
  for (float& g : grads_) {
    g *= inv_n;
    if (!std::isfinite(g)) result.finite = false;
  }
  return result;
}

std::vector<StealingEngine::StageStats> StealingEngine::stage_stats() const {
  const int p = cfg_.engine.num_stages;
  std::vector<StageStats> out(static_cast<std::size_t>(p));
  for (int s = 0; s < p; ++s) {
    const AtomicStageCounters& c = stage_counters_[static_cast<std::size_t>(s)];
    StageStats& st = out[static_cast<std::size_t>(s)];
    st.busy_ns = c.busy_ns.load(std::memory_order_relaxed);
    st.items = c.items.load(std::memory_order_relaxed);
    st.stolen_items = c.stolen_items.load(std::memory_order_relaxed);
    st.stolen_ns = c.stolen_ns.load(std::memory_order_relaxed);
  }
  return out;
}

void StealingEngine::reset_stage_stats() {
  const int p = cfg_.engine.num_stages;
  for (int s = 0; s < p; ++s) {
    AtomicStageCounters& c = stage_counters_[static_cast<std::size_t>(s)];
    c.busy_ns.store(0, std::memory_order_relaxed);
    c.items.store(0, std::memory_order_relaxed);
    c.stolen_items.store(0, std::memory_order_relaxed);
    c.stolen_ns.store(0, std::memory_order_relaxed);
  }
  worker_stats_.assign(worker_stats_.size(), StageStats{});
}

std::vector<StealingEngine::StageStats> StealingEngine::worker_stats() const {
  return worker_stats_;
}

std::uint64_t StealingEngine::total_steals() const {
  std::uint64_t total = 0;
  for (const auto& st : stage_stats()) total += st.stolen_items;
  return total;
}

const std::vector<StealRecord>& StealingEngine::steal_log() const {
  // Between minibatches the workers are parked, so the reference stays
  // stable after the lock drops (see the header contract).
  util::MutexLock lock(sched_m_);
  return steal_log_;
}

std::uint64_t StealingEngine::dropped_log_entries() const {
  util::MutexLock lock(sched_m_);
  return dropped_log_entries_;
}

void StealingEngine::clear_steal_log() {
  util::MutexLock lock(sched_m_);
  steal_log_.clear();
  dropped_log_entries_ = 0;
}

nn::LossResult StealingEngine::evaluate(const nn::Flow& input,
                                        const tensor::Tensor& target,
                                        const nn::LossHead& head) const {
  return pipeline::evaluate_forward(model_, store_.live(), input, target, head);
}

}  // namespace pipemare::sched
