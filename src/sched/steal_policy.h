#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace pipemare::sched {

/// How (and whether) idle workers steal work from other stages' deques.
enum class StealMode {
  /// Never steal: each worker drains only the stages it is home to. With
  /// W == P this degenerates to stage-per-thread execution ("threaded"
  /// with queue mechanics); the parity baseline.
  Disabled,
  /// Steal from the busy-share leader: victim ranking is seeded from the
  /// partition cost model's predicted stage costs and re-ranked between
  /// minibatches from the observed per-stage busy counters. The default.
  LoadAware,
  /// Fixed victim order (predicted costs only, never re-ranked at runtime)
  /// plus a per-step steal log, so steal *decisions* are a pure function
  /// of observable pre-run state. Training curves are bitwise run-to-run
  /// reproducible in every mode — the engine's numerics are scheduling-
  /// independent by construction — this mode additionally makes the steal
  /// policy itself auditable.
  Deterministic,
  /// Stress mode for tests: workers try to steal *before* draining their
  /// own stages (fixed victim order, logged like Deterministic), which
  /// maximizes cross-stage execution and is what the bitwise-parity-under-
  /// stealing tests run.
  Forced,
};

std::string steal_mode_name(StealMode mode);

/// Parses "off"/"disabled", "load"/"load-aware", "det"/"deterministic",
/// "forced"; throws std::invalid_argument naming the accepted spellings.
StealMode parse_steal_mode(std::string_view text);

/// Victim selection for idle workers: ranks stages by busy share, busiest
/// first. Seeded from the partition cost model's predicted per-stage costs
/// (so the very first minibatch already steals from the predicted leader);
/// in LoadAware mode `refresh` re-ranks from observed busy nanoseconds
/// between minibatches, in the deterministic modes the seeded order is
/// fixed for the lifetime of the run.
///
/// Not internally synchronized: the owning engine calls refresh() between
/// minibatches only, and the worker-release barrier orders the write
/// before any worker reads victim_order().
class StealPolicy {
 public:
  StealPolicy(StealMode mode, std::vector<double> predicted_cost);

  StealMode mode() const { return mode_; }
  bool steal_enabled() const { return mode_ != StealMode::Disabled; }
  /// Forced mode: thieves try victims before their own deques.
  bool steal_first() const { return mode_ == StealMode::Forced; }
  /// Deterministic and Forced: fixed victim order, steal log on.
  bool deterministic() const {
    return mode_ == StealMode::Deterministic || mode_ == StealMode::Forced;
  }

  /// Stage indices, preferred victim first. Stable for a given ranking
  /// input: ties break toward the lower stage index.
  const std::vector<int>& victim_order() const { return order_; }

  /// Re-ranks victims by observed cumulative busy time (LoadAware only; a
  /// no-op in the other modes). All-zero observations keep the predicted
  /// seed — the first minibatch has nothing measured yet.
  void refresh(std::span<const std::uint64_t> busy_ns);

 private:
  void rank(std::span<const double> share);

  StealMode mode_;
  std::vector<double> predicted_;
  std::vector<int> order_;
};

}  // namespace pipemare::sched
