#pragma once

#include <cstddef>
#include <deque>

#include "src/obs/metrics.h"
#include "src/util/sync.h"

namespace pipemare::sched {

/// One ready unit of pipeline work: run the forward or backward pass of
/// microbatch `micro` through the modules of stage `stage`. Tasks carry no
/// payload — activations and gradients live in the engine's per-microbatch
/// flow slots — so a task is three ints and queue traffic is cheap.
struct Task {
  enum class Kind { Forward, Backward };
  Kind kind = Kind::Forward;
  int stage = 0;
  int micro = 0;
};

/// The per-stage deque of *ready* tasks the work-stealing runtime drains:
/// every stage owns one, its home worker pops from it, and idle workers
/// steal from the deque of the stage the StealPolicy names.
///
/// The layout follows the Chase-Lev work-stealing deque — one deque per
/// owner, owner and thieves operating on opposite preferences — with two
/// deliberate departures:
///
///  1. *Owner takes the oldest, not the newest.* Classic Chase-Lev owners
///     pop LIFO for cache locality of freshly spawned subtasks. Pipeline
///     tasks have an intrinsic microbatch order (the 1F1B wavefront moves
///     micro 0 first) and backwards are serialized per stage anyway, so a
///     LIFO owner would invert the wavefront for no benefit. Both ends pop
///     FIFO; what remains of Chase-Lev is the topology (one deque per
///     stage, thief-end discipline, steal = oldest).
///  2. *A small mutex instead of the lock-free CAS protocol.* Ready tasks
///     are produced by whichever worker completed the predecessor — a
///     multi-producer pattern the single-pusher Chase-Lev ring does not
///     support — and one task is a full layer-range forward/backward pass
///     (micro- to milliseconds), so queue ops are nowhere near the
///     critical path. The mutex also gives the scheduler its
///     happens-before edge for free: a flow slot written before push() is
///     visible to the worker that pop()s the task.
///
/// Priorities: the owner drains the backward lane first (backwards are the
/// serialized, credit-returning half of 1F1B — the same pop priority the
/// StageMailbox gives them); a thief prefers the oldest *forward* (forwards
/// of a stage are mutually independent, so they are the parallel-friendly
/// work worth moving to another core, and the backward chain stays warm on
/// whichever worker has been running it).
///
/// Both lanes are GUARDED_BY(m_): the multi-producer/multi-consumer
/// discipline is proven by a Clang -Wthread-safety build, not just by the
/// TSan CI job.
class TaskQueue {
 public:
  TaskQueue() = default;
  TaskQueue(const TaskQueue&) = delete;
  TaskQueue& operator=(const TaskQueue&) = delete;

  /// Enqueues a ready task (any worker; multi-producer).
  void push(Task t) {
    pushed_counter().add();
    util::MutexLock lock(m_);
    if (t.kind == Task::Kind::Backward) {
      bwd_.push_back(t);
    } else {
      fwd_.push_back(t);
    }
  }

  /// Home-worker pop: oldest backward first, then oldest forward.
  bool pop(Task& out) {
    util::MutexLock lock(m_);
    if (!bwd_.empty()) {
      out = bwd_.front();
      bwd_.pop_front();
      popped_counter().add();
      return true;
    }
    if (!fwd_.empty()) {
      out = fwd_.front();
      fwd_.pop_front();
      popped_counter().add();
      return true;
    }
    return false;
  }

  /// Thief pop: oldest forward first, then oldest backward.
  bool steal(Task& out) {
    util::MutexLock lock(m_);
    if (!fwd_.empty()) {
      out = fwd_.front();
      fwd_.pop_front();
      popped_counter().add();
      return true;
    }
    if (!bwd_.empty()) {
      out = bwd_.front();
      bwd_.pop_front();
      popped_counter().add();
      return true;
    }
    return false;
  }

  std::size_t size() const {
    util::MutexLock lock(m_);
    return fwd_.size() + bwd_.size();
  }

  bool empty() const { return size() == 0; }

 private:
  // Process-global queue-traffic counters (one lookup per process, then a
  // relaxed fetch_add per op — a task is a full layer-range pass, so queue
  // traffic is far off the critical path).
  static obs::Counter& pushed_counter() {
    static obs::Counter& c =
        obs::MetricsRegistry::instance().counter("sched.tasks_pushed");
    return c;
  }
  static obs::Counter& popped_counter() {
    static obs::Counter& c =
        obs::MetricsRegistry::instance().counter("sched.tasks_popped");
    return c;
  }

  mutable util::Mutex m_;
  std::deque<Task> fwd_ GUARDED_BY(m_);
  std::deque<Task> bwd_ GUARDED_BY(m_);
};

}  // namespace pipemare::sched
