#include "src/sched/worker_pool.h"

#include <string>
#include <utility>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace pipemare::sched {

WorkerPool::WorkerPool(int workers, Body body) : body_(std::move(body)) {
  threads_.reserve(static_cast<std::size_t>(workers));
  try {
    for (int w = 0; w < workers; ++w) {
      threads_.emplace_back([this, w] { thread_loop(w); });
    }
  } catch (...) {
    {
      util::MutexLock lock(m_);
      shutdown_ = true;
    }
    go_.notify_all();
    for (auto& t : threads_) t.join();
    throw;
  }
}

WorkerPool::~WorkerPool() {
  {
    util::MutexLock lock(m_);
    shutdown_ = true;
  }
  go_.notify_all();
  for (auto& t : threads_) t.join();
}

void WorkerPool::thread_loop(int worker) {
  std::uint64_t seen = 0;
  for (;;) {
    {
      util::MutexLock lock(m_);
      while (!shutdown_ && generation_ <= seen) go_.wait(m_);
      if (shutdown_) return;
      seen = generation_;
    }
    if (obs::TraceRecorder::instance().enabled()) {
      obs::TraceRecorder::instance().set_thread_name("pool-worker-" +
                                                     std::to_string(worker));
    }
    body_(worker);
    {
      util::MutexLock lock(m_);
      ++done_count_;
    }
    done_.notify_one();
  }
}

void WorkerPool::run_generation() {
  begin_generation();
  wait_generation();
}

void WorkerPool::begin_generation() {
  // Cached once: generation turnover is the pool's coarsest event (one per
  // minibatch / serving session), but the registry lookup is still string
  // keyed and not worth repeating.
  static obs::Counter& generations =
      obs::MetricsRegistry::instance().counter("sched.generations");
  generations.add();
  {
    util::MutexLock lock(m_);
    done_count_ = 0;
    ++generation_;
  }
  go_.notify_all();
}

void WorkerPool::wait_generation() {
  util::MutexLock lock(m_);
  while (done_count_ != static_cast<int>(threads_.size())) done_.wait(m_);
}

}  // namespace pipemare::sched
