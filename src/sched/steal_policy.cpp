#include "src/sched/steal_policy.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace pipemare::sched {

std::string steal_mode_name(StealMode mode) {
  switch (mode) {
    case StealMode::Disabled: return "off";
    case StealMode::LoadAware: return "load";
    case StealMode::Deterministic: return "det";
    case StealMode::Forced: return "forced";
  }
  return "?";
}

StealMode parse_steal_mode(std::string_view text) {
  if (text == "off" || text == "disabled" || text == "none") {
    return StealMode::Disabled;
  }
  if (text == "load" || text == "load-aware" || text == "load_aware") {
    return StealMode::LoadAware;
  }
  if (text == "det" || text == "deterministic") return StealMode::Deterministic;
  if (text == "forced") return StealMode::Forced;
  throw std::invalid_argument(
      "parse_steal_mode: '" + std::string(text) +
      "' is not a steal mode; use off|load|det|forced (long forms: disabled, "
      "load-aware, deterministic)");
}

StealPolicy::StealPolicy(StealMode mode, std::vector<double> predicted_cost)
    : mode_(mode), predicted_(std::move(predicted_cost)) {
  rank(predicted_);
}

void StealPolicy::rank(std::span<const double> share) {
  order_.resize(share.size());
  std::iota(order_.begin(), order_.end(), 0);
  // stable_sort + strictly-greater comparator: equal shares keep ascending
  // stage order, so the ranking is a pure function of the input vector.
  std::stable_sort(order_.begin(), order_.end(), [&](int a, int b) {
    return share[static_cast<std::size_t>(a)] > share[static_cast<std::size_t>(b)];
  });
}

void StealPolicy::refresh(std::span<const std::uint64_t> busy_ns) {
  if (mode_ != StealMode::LoadAware) return;
  if (busy_ns.size() != predicted_.size()) return;
  std::uint64_t total = 0;
  for (std::uint64_t b : busy_ns) total += b;
  if (total == 0) return;  // nothing measured yet: keep the predicted seed
  std::vector<double> observed(busy_ns.begin(), busy_ns.end());
  rank(observed);
}

}  // namespace pipemare::sched
