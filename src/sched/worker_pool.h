#pragma once

#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "src/util/sync.h"

namespace pipemare::sched {

/// A persistent pool of W worker threads driven in *generations*: the
/// owner calls run_generation(), every worker runs the body exactly once
/// (with its worker index), and run_generation returns when all W bodies
/// have finished. This is the release/collect barrier ThreadedEngine and
/// ThreadedHogwildEngine each hand-roll, extracted so the stealing engine
/// (and future substrates) can reuse it.
///
/// The barrier also carries the memory-ordering contract the engines rely
/// on: everything the owner writes before run_generation() is visible to
/// every body, and everything the bodies write is visible to the owner
/// after run_generation() returns — so per-minibatch context and plain
/// (non-atomic) single-writer counters need no further synchronization.
///
/// The barrier state (generation counter, completion count, shutdown flag)
/// is GUARDED_BY(m_); a Clang -Wthread-safety build proves the protocol
/// never reads or writes it outside the lock.
///
/// The body must not throw (engines catch worker-side exceptions and
/// record them; see StealingEngine::record_failure).
class WorkerPool {
 public:
  using Body = std::function<void(int worker)>;

  /// Spawns `workers` threads running `body` once per generation. If
  /// thread creation fails partway, the started threads are shut down and
  /// joined before the exception propagates (destroying joinable
  /// std::threads would std::terminate).
  WorkerPool(int workers, Body body);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  int size() const { return static_cast<int>(threads_.size()); }

  /// Releases all workers for one generation and blocks until every
  /// body has returned. Equivalent to begin_generation() followed by
  /// wait_generation() — the engines' per-minibatch barrier.
  void run_generation();

  /// Releases all workers for one generation without waiting — the
  /// non-blocking half of run_generation, for long-running bodies whose
  /// lifetime is controlled elsewhere (serve::PipelineServer's workers run
  /// one generation per serving session and park when the server drains).
  /// At most one generation may be open at a time.
  void begin_generation();

  /// Blocks until every body of the generation opened by the last
  /// begin_generation() has returned. Call exactly once per
  /// begin_generation(); carries the same memory-ordering contract as
  /// run_generation.
  void wait_generation();

 private:
  void thread_loop(int worker);

  Body body_;
  util::Mutex m_;
  util::CondVar go_;
  util::CondVar done_;
  std::uint64_t generation_ GUARDED_BY(m_) = 0;
  int done_count_ GUARDED_BY(m_) = 0;
  bool shutdown_ GUARDED_BY(m_) = false;
  std::vector<std::thread> threads_;
};

}  // namespace pipemare::sched
