#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/nn/heads.h"
#include "src/nn/model.h"
#include "src/optim/optimizer.h"
#include "src/pipeline/config.h"
#include "src/pipeline/engine.h"
#include "src/pipeline/partition.h"
#include "src/pipeline/schedule.h"
#include "src/pipeline/stage_stats.h"
#include "src/pipeline/weight_versions.h"
#include "src/sched/steal_policy.h"
#include "src/sched/task_queue.h"
#include "src/sched/worker_pool.h"
#include "src/util/sync.h"

namespace pipemare::sched {

/// Configuration of the work-stealing runtime: the shared pipeline
/// EngineConfig plus the scheduler knobs (registered with the
/// core::BackendRegistry as "threaded_steal" via core::StealOptions).
struct StealConfig {
  pipeline::EngineConfig engine;
  int workers = 0;          ///< worker threads; 0 = min(cores, num_stages)
  StealMode mode = StealMode::LoadAware;
  bool record_log = false;  ///< keep the per-step steal log (the
                            ///< deterministic modes log regardless)
};

/// One recorded steal: worker `worker` executed a task of stage `stage`
/// (whose home worker it is not) during optimizer step `step`.
struct StealRecord {
  std::int64_t step = 0;
  int worker = 0;
  int stage = 0;
  int micro = 0;
  Task::Kind kind = Task::Kind::Forward;
};

/// Work-stealing pipeline-parallel execution (registered with the
/// core::BackendRegistry as "threaded_steal"): instead of pinning one
/// thread per stage, W workers — W chosen independently of P — drain
/// per-stage TaskQueue deques of *ready* forward/backward microbatch
/// tasks, and an idle worker steals the oldest ready task from the stage
/// the StealPolicy ranks busiest (seeded from the partition cost model's
/// predicted stage costs, re-ranked between minibatches from the observed
/// per-stage busy counters). Stage s is *home* to worker s mod W; any
/// other worker executing its tasks is a thief, counted in the
/// stolen_items / stolen_ns stats and (in the deterministic modes or with
/// record_log) appended to the steal log.
///
/// PipeMare semantics are preserved exactly: a stolen task executes with
/// the *owner stage's* weight version — every (stage, microbatch) forward
/// and backward parameter view is assembled through the same shared
/// WeightVersions snapshot protocol the sequential and threaded engines
/// use, so the delay distribution (Table 1) does not depend on which
/// worker runs the task.
///
/// Stronger still, the engine's numerics are *scheduling-independent by
/// construction*, so training curves are bitwise-identical to the
/// "sequential" and "threaded" engines whether stealing is off, on, or
/// forced (tests assert both), and bitwise run-to-run reproducible in
/// every mode:
///  1. weight views are pure functions of (stage, micro, step) through
///     WeightVersions, frozen within a minibatch;
///  2. forwards of a stage touch disjoint per-microbatch caches and
///     counter-based Dropout masks are draw-order-independent, so their
///     execution order is free;
///  3. backwards of a stage are serialized in microbatch order by a
///     readiness chain (Backward(s, m) becomes ready only once
///     Backward(s+1, m) produced its gradient AND Backward(s, m-1)
///     completed), so gradient accumulation into the stage's disjoint
///     slice of the gradient buffer replays the sequential order;
///  4. per-microbatch losses land in slots merged in microbatch order
///     after the minibatch barrier, replaying the sequential sum.
/// The StealMode therefore only changes *which worker* runs a task and
/// when — wall-clock, busy spread, steal counters — never the floats.
///
/// The surface matches the core::train_loop engine concept /
/// core::ExecutionBackend interface. Unsupported: activation
/// recomputation (an analytic-engine feature), as in ThreadedEngine.
class StealingEngine {
 public:
  using StepResult = pipeline::StepResult;
  using StageStats = pipeline::StageStats;

  StealingEngine(const nn::Model& model, StealConfig cfg, std::uint64_t seed);
  ~StealingEngine();

  StealingEngine(const StealingEngine&) = delete;
  StealingEngine& operator=(const StealingEngine&) = delete;

  /// Runs the N microbatches of one minibatch through the worker pool
  /// with schedule-exact weight versions, accumulating the mean gradient.
  /// Rethrows the first worker-side exception (after the task graph
  /// drains).
  StepResult forward_backward(const std::vector<nn::Flow>& micro_inputs,
                              const std::vector<tensor::Tensor>& micro_targets,
                              const nn::LossHead& head);

  std::span<float> weights() { return store_.live(); }
  std::span<const float> weights() const { return store_.live(); }
  std::span<float> gradients() { return grads_; }
  void commit_update() { store_.commit_update(); }

  /// Evaluation helper: forward-only on the live weights (single-threaded).
  nn::LossResult evaluate(const nn::Flow& input, const tensor::Tensor& target,
                          const nn::LossHead& head) const;

  void set_method(pipeline::Method m) { cfg_.engine.method = m; }
  pipeline::Method method() const { return cfg_.engine.method; }

  /// Epoch-boundary dynamic repartitioning: swaps in a new unit -> stage
  /// assignment over the same weight units (checked by
  /// pipeline::validate_repartition), rebuilds the per-stage module/unit
  /// ranges, and reseeds the StealPolicy's victim ranking from the new
  /// partition's predicted stage costs. Only call between minibatches:
  /// the workers are parked on the pool barrier then, and the next
  /// generation's release barrier publishes the new state. No weights,
  /// version history, or optimizer state move.
  void repartition(const pipeline::Partition& next);

  const pipeline::Partition& partition() const { return partition_; }
  const pipeline::Schedule& schedule() const { return schedule_; }
  const nn::Model& model() const { return model_; }
  const StealConfig& config() const { return cfg_; }
  const StealPolicy& policy() const { return policy_; }
  std::int64_t steps_taken() const { return store_.step(); }
  int num_workers() const { return pool_->size(); }

  std::vector<double> stage_tau_fwd() const {
    return pipeline::stage_tau_fwd_vector(schedule_);
  }
  std::vector<optim::LrSegment> lr_segments(double base_lr,
                                            std::span<const double> scales) const {
    return pipeline::stage_lr_segments(partition_, base_lr, scales);
  }

  /// Per-*stage* load counters, cumulative since construction (or the last
  /// reset): busy/items of the stage's tasks wherever they executed, plus
  /// stolen_items / stolen_ns for the share executed by non-home workers.
  /// pop_wait/push_wait are 0 — waiting is a worker-side notion here; see
  /// worker_stats(). Call between minibatches.
  std::vector<StageStats> stage_stats() const;
  void reset_stage_stats();

  /// Per-*worker* load counters: busy time, pop_wait_ns = time idle waiting
  /// for any admissible task, items executed, stolen_items = tasks taken
  /// from stages the worker is not home to. The busy spread across workers
  /// is the number stealing actually flattens (per-stage busy is invariant
  /// under stealing — a stage's compute is its compute wherever it runs).
  std::vector<StageStats> worker_stats() const;

  /// The steal log (populated in the deterministic modes or when
  /// cfg.record_log is set; capped — see dropped_log_entries()). Call
  /// between minibatches; the returned reference stays valid until the
  /// next forward_backward or clear_steal_log.
  const std::vector<StealRecord>& steal_log() const;
  std::uint64_t dropped_log_entries() const;
  void clear_steal_log();

  /// Total tasks stolen since construction (or the last stats reset).
  std::uint64_t total_steals() const;

 private:
  using StageRange = pipeline::StageModuleRange;

  /// Per-stage counters with multi-writer slots (two thieves can execute
  /// forwards of the same stage concurrently), hence atomics; relaxed
  /// increments, read between minibatches under the pool barrier.
  struct AtomicStageCounters {
    std::atomic<std::uint64_t> busy_ns{0};
    std::atomic<std::uint64_t> items{0};
    std::atomic<std::uint64_t> stolen_items{0};
    std::atomic<std::uint64_t> stolen_ns{0};
  };

  void drain(int worker);
  /// Fills `out` with the next task for `worker`; `stolen` reports whether
  /// it came from a stage the worker is not home to.
  bool acquire(int worker, Task& out, bool& stolen);
  bool acquire_home(int worker, Task& out);
  bool acquire_steal(int worker, Task& out, bool& stolen);
  void execute(int worker, const Task& task, bool stolen, std::vector<float>& w);
  /// Run one task's compute; returns the busy nanoseconds spent.
  std::uint64_t run_forward(int worker, const Task& task, std::vector<float>& w);
  std::uint64_t run_backward(int worker, const Task& task, std::vector<float>& w);
  void enqueue(const Task& task);
  /// Marks Backward(stage, micro)'s gradient input as available and
  /// enqueues it if its predecessor in the stage's backward chain is done.
  void mark_backward_ready(int stage, int micro);
  void complete_task();
  void record_failure(const char* what);
  int home_worker(int stage) const { return stage % pool_->size(); }

  const nn::Model& model_;
  StealConfig cfg_;
  pipeline::Partition partition_;
  pipeline::Schedule schedule_;
  pipeline::WeightVersions store_;
  StealPolicy policy_;
  std::vector<float> grads_;

  std::vector<StageRange> ranges_;                   ///< per stage
  std::vector<std::vector<int>> home_stages_;        ///< per worker
  std::vector<std::unique_ptr<TaskQueue>> queues_;   ///< per stage
  std::vector<std::vector<nn::Cache>> caches_;       ///< per microbatch

  std::unique_ptr<AtomicStageCounters[]> stage_counters_;  ///< per stage
  /// Per-worker counters: single-writer slots (each worker writes only its
  /// own), read between minibatches under the pool barrier — plain fields.
  std::vector<StageStats> worker_stats_;

  // Per-minibatch context, owned by forward_backward for the duration of
  // one generation; workers read it between the pool barriers.
  const std::vector<tensor::Tensor>* mb_targets_ = nullptr;
  const nn::LossHead* mb_head_ = nullptr;
  std::vector<nn::Flow> fwd_flow_;   ///< per micro: activation between stages
  std::vector<nn::Flow> bwd_flow_;   ///< per micro: gradient between stages
  std::vector<double> micro_loss_;   ///< per micro: loss slots (ordered merge)
  std::vector<double> micro_correct_;
  std::vector<double> micro_count_;
  std::atomic<bool> mb_failed_{false};
  std::string mb_error_ GUARDED_BY(sched_m_);  ///< first worker exception

  // Scheduler state: remaining task count, push notification version, and
  // the backward-chain gates, all GUARDED_BY(sched_m_) — a Clang
  // -Wthread-safety build proves the gating protocol never touches them
  // unlocked. Lock order is sched_m_ -> TaskQueue::m_
  // (enqueue-while-gating); TaskQueue ops never take sched_m_.
  mutable util::Mutex sched_m_;
  util::CondVar sched_cv_;
  int remaining_ GUARDED_BY(sched_m_) = 0;
  std::uint64_t push_version_ GUARDED_BY(sched_m_) = 0;
  std::vector<int> next_bwd_ GUARDED_BY(sched_m_);      ///< per stage: next micro
  std::vector<std::uint8_t> bwd_ready_ GUARDED_BY(sched_m_);  ///< [stage*N+micro]

  std::vector<StealRecord> steal_log_ GUARDED_BY(sched_m_);
  std::uint64_t dropped_log_entries_ GUARDED_BY(sched_m_) = 0;
  std::vector<std::vector<float>> scratch_;  ///< per worker: weight buffer

  std::unique_ptr<WorkerPool> pool_;  ///< last member: joins before teardown
};

}  // namespace pipemare::sched
