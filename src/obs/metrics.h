#pragma once

// Process-global metrics: named counters, gauges and fixed-bucket
// histograms with text/JSON snapshot exporters.
//
// Registration (name -> metric) is a mutex-guarded slow path; instruments
// cache the returned reference/pointer once (metrics are never deleted —
// the registry owns them for the process lifetime, so cached pointers
// stay valid across reset()). Increments/observations are relaxed atomics:
// wait-free, allocation-free, and safe from any thread. Like tracing,
// recording never touches model state or float accumulation order, so
// instrumented runs stay bitwise-equal to uninstrumented ones.
//
// PipeMare metric names in use (see README "Observability" for the table):
//   train.staleness.stage<k>    histogram of observed weight delay (tau)
//   serve.queue_ms / serve.total_ms   request latency histograms
//   sched.steals / sched.steal_log_dropped / kernels.gemm_dispatch ...

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/util/json_writer.h"
#include "src/util/sync.h"

namespace pipemare::obs {

/// Monotonic event counter.
class Counter {
 public:
  void add(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-write-wins instantaneous value (queue depths, high-water marks).
class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  double value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Fixed-bucket histogram: `bounds` are inclusive upper bounds of the
/// finite buckets; one implicit overflow bucket catches everything above
/// the last bound. Bucket counts, total count, sum and max are relaxed
/// atomics, so observe() is wait-free and snapshot reads are monotonic
/// but possibly transiently skewed (fine for telemetry).
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double v);

  /// Equal-width bounds lo, lo+step, ..., lo+(n-1)*step (n finite buckets).
  static std::vector<double> linear_bounds(double lo, double step, int n);
  /// Geometric bounds start, start*factor, ... (n finite buckets).
  static std::vector<double> exponential_bounds(double start, double factor,
                                                int n);

  const std::vector<double>& bounds() const { return bounds_; }
  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const;
  double mean() const;
  /// Largest value observed so far (-inf when empty).
  double max_observed() const;
  std::uint64_t bucket_count(std::size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  std::size_t num_buckets() const { return buckets_.size(); }

  /// Bucket-resolution quantile in [0, 1]: the upper bound of the first
  /// bucket whose cumulative count reaches q * count (the last finite
  /// bound for the overflow bucket). NaN when empty.
  double quantile(double q) const;

  void reset();

 private:
  std::vector<double> bounds_;  ///< immutable after construction
  std::vector<std::atomic<std::uint64_t>> buckets_;  ///< bounds + overflow
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> max_{0.0};
  std::atomic<bool> has_max_{false};
};

/// Process-global name -> metric registry. Lookups are mutex-guarded and
/// return references that stay valid for the process lifetime; cache them.
class MetricsRegistry {
 public:
  static MetricsRegistry& instance();

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// First registration fixes the bucket bounds; later calls with the same
  /// name return the existing histogram (bounds argument ignored).
  Histogram& histogram(const std::string& name, std::vector<double> bounds);
  /// Existing histogram or nullptr (for tests/exporters that must not
  /// create-on-read).
  const Histogram* find_histogram(const std::string& name) const;

  /// Snapshot of every registered metric, names sorted (std::map order):
  /// {"counters": {...}, "gauges": {...}, "histograms": {name: {count,
  /// sum, mean, max, p50, p99, buckets: [{le, count}, ...]}}}.
  util::Json snapshot_json() const;
  /// One metric per line: "name value" / histogram summary lines.
  std::string snapshot_text() const;
  /// snapshot_json() to a file; throws std::runtime_error on open failure.
  void write_json(const std::string& path) const;

  /// Zeroes every metric's state; registrations (and cached pointers)
  /// survive.
  void reset();

 private:
  MetricsRegistry() = default;

  mutable util::Mutex m_;
  std::map<std::string, std::unique_ptr<Counter>> counters_ GUARDED_BY(m_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_ GUARDED_BY(m_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_ GUARDED_BY(m_);
};

}  // namespace pipemare::obs
