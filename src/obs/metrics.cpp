#include "src/obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <utility>

namespace pipemare::obs {

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1) {
  if (!std::is_sorted(bounds_.begin(), bounds_.end())) {
    throw std::invalid_argument("Histogram: bucket bounds must be sorted");
  }
}

void Histogram::observe(double v) {
  // Upper-bound binary search: first bucket with bound >= v; everything
  // past the last bound lands in the overflow bucket.
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const auto i = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[i].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double prev = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(prev, prev + v, std::memory_order_relaxed)) {
  }
  double mx = max_.load(std::memory_order_relaxed);
  bool has = has_max_.load(std::memory_order_relaxed);
  while ((!has || v > mx) &&
         !max_.compare_exchange_weak(mx, v, std::memory_order_relaxed)) {
    has = has_max_.load(std::memory_order_relaxed);
  }
  has_max_.store(true, std::memory_order_relaxed);
}

std::vector<double> Histogram::linear_bounds(double lo, double step, int n) {
  std::vector<double> b(static_cast<std::size_t>(std::max(n, 1)));
  for (std::size_t i = 0; i < b.size(); ++i) {
    b[i] = lo + step * static_cast<double>(i);
  }
  return b;
}

std::vector<double> Histogram::exponential_bounds(double start, double factor,
                                                  int n) {
  std::vector<double> b(static_cast<std::size_t>(std::max(n, 1)));
  double v = start;
  for (std::size_t i = 0; i < b.size(); ++i) {
    b[i] = v;
    v *= factor;
  }
  return b;
}

double Histogram::sum() const { return sum_.load(std::memory_order_relaxed); }

double Histogram::mean() const {
  const std::uint64_t n = count();
  return n > 0 ? sum() / static_cast<double>(n)
               : std::numeric_limits<double>::quiet_NaN();
}

double Histogram::max_observed() const {
  return has_max_.load(std::memory_order_relaxed)
             ? max_.load(std::memory_order_relaxed)
             : -std::numeric_limits<double>::infinity();
}

double Histogram::quantile(double q) const {
  const std::uint64_t n = count();
  if (n == 0) return std::numeric_limits<double>::quiet_NaN();
  q = std::clamp(q, 0.0, 1.0);
  const auto rank = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(n)));
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    cum += buckets_[i].load(std::memory_order_relaxed);
    if (cum >= rank) {
      return i < bounds_.size() ? bounds_[i]
                                : (bounds_.empty() ? 0.0 : bounds_.back());
    }
  }
  return bounds_.empty() ? 0.0 : bounds_.back();
}

void Histogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  max_.store(0.0, std::memory_order_relaxed);
  has_max_.store(false, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::instance() {
  static MetricsRegistry registry;
  return registry;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  util::MutexLock lock(m_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  util::MutexLock lock(m_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> bounds) {
  util::MutexLock lock(m_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(std::move(bounds));
  return *slot;
}

const Histogram* MetricsRegistry::find_histogram(const std::string& name) const {
  util::MutexLock lock(m_);
  auto it = histograms_.find(name);
  return it != histograms_.end() ? it->second.get() : nullptr;
}

util::Json MetricsRegistry::snapshot_json() const {
  util::MutexLock lock(m_);
  util::Json root = util::Json::object();
  util::Json counters = util::Json::object();
  for (const auto& [name, c] : counters_) {
    counters.set(name, c->value());
  }
  root.set("counters", std::move(counters));
  util::Json gauges = util::Json::object();
  for (const auto& [name, g] : gauges_) {
    gauges.set(name, g->value());
  }
  root.set("gauges", std::move(gauges));
  util::Json histos = util::Json::object();
  for (const auto& [name, h] : histograms_) {
    util::Json j = util::Json::object();
    j.set("count", h->count());
    j.set("sum", h->sum());
    j.set("mean", h->mean());
    j.set("max", h->max_observed());
    j.set("p50", h->quantile(0.5));
    j.set("p99", h->quantile(0.99));
    util::Json buckets = util::Json::array();
    for (std::size_t i = 0; i < h->num_buckets(); ++i) {
      util::Json b = util::Json::object();
      if (i < h->bounds().size()) {
        b.set("le", h->bounds()[i]);
      } else {
        b.set("le", "inf");
      }
      b.set("count", h->bucket_count(i));
      buckets.push(std::move(b));
    }
    j.set("buckets", std::move(buckets));
    histos.set(name, std::move(j));
  }
  root.set("histograms", std::move(histos));
  return root;
}

std::string MetricsRegistry::snapshot_text() const {
  util::MutexLock lock(m_);
  std::ostringstream out;
  out.precision(12);
  for (const auto& [name, c] : counters_) {
    out << name << ' ' << c->value() << '\n';
  }
  for (const auto& [name, g] : gauges_) {
    out << name << ' ' << g->value() << '\n';
  }
  for (const auto& [name, h] : histograms_) {
    out << name << " count=" << h->count() << " mean=" << h->mean()
        << " max=" << h->max_observed() << " p50=" << h->quantile(0.5)
        << " p99=" << h->quantile(0.99) << '\n';
  }
  return out.str();
}

void MetricsRegistry::write_json(const std::string& path) const {
  util::Json root = snapshot_json();
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("MetricsRegistry::write_json: cannot open " + path);
  }
  out << root.dump();
}

void MetricsRegistry::reset() {
  util::MutexLock lock(m_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

}  // namespace pipemare::obs
