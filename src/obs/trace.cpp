#include "src/obs/trace.h"

#include <fstream>
#include <stdexcept>
#include <utility>

#include "src/util/json_writer.h"

namespace pipemare::obs {

namespace {

/// Cached per-thread buffer pointer, tagged with the session it belongs
/// to: enable()/reset() bump the session, so a stale cache re-registers
/// instead of writing into a dropped buffer.
struct ThreadCache {
  void* buffer = nullptr;
  std::uint64_t session = 0;
};
thread_local ThreadCache t_cache;

}  // namespace

TraceRecorder::TraceRecorder() : base_(std::chrono::steady_clock::now()) {}

TraceRecorder& TraceRecorder::instance() {
  static TraceRecorder recorder;
  return recorder;
}

std::uint64_t TraceRecorder::now_ns() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - base_)
          .count());
}

void TraceRecorder::enable(std::size_t capacity_per_thread) {
  reset();
  {
    util::MutexLock lock(m_);
    ring_capacity_ = capacity_per_thread > 0 ? capacity_per_thread : 1;
  }
  enabled_.store(true, std::memory_order_release);
}

void TraceRecorder::disable() {
  enabled_.store(false, std::memory_order_release);
}

void TraceRecorder::reset() {
  enabled_.store(false, std::memory_order_release);
  // Invalidate every thread's cached buffer pointer *before* dropping the
  // buffers: a thread observing the old session re-registers; one that
  // somehow raced past the disabled check writes into a still-live buffer
  // of the old vector only if it read the old session, which the contract
  // (quiescence during reset) forbids.
  session_.fetch_add(1, std::memory_order_acq_rel);
  util::MutexLock lock(m_);
  buffers_.clear();
}

TraceRecorder::ThreadBuffer* TraceRecorder::this_thread_buffer() {
  const std::uint64_t session = session_.load(std::memory_order_acquire);
  if (t_cache.buffer != nullptr && t_cache.session == session) {
    return static_cast<ThreadBuffer*>(t_cache.buffer);
  }
  // Slow path: first event of this thread this session.
  auto buf = std::make_unique<ThreadBuffer>();
  ThreadBuffer* raw = buf.get();
  {
    util::MutexLock lock(m_);
    raw->events.resize(ring_capacity_);
    raw->tid = static_cast<int>(buffers_.size());
    buffers_.push_back(std::move(buf));
  }
  t_cache.buffer = raw;
  t_cache.session = session;
  return raw;
}

void TraceRecorder::record_complete(const char* name, const char* cat,
                                    std::uint64_t ts_ns, std::uint64_t dur_ns,
                                    int stage, int micro, std::int64_t step) {
  if (!enabled()) return;
  ThreadBuffer* buf = this_thread_buffer();
  const std::size_t i = buf->count.load(std::memory_order_relaxed);
  if (i >= buf->events.size()) {
    buf->dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  TraceEvent& ev = buf->events[i];
  ev.name = name;
  ev.cat = cat;
  ev.ts_ns = ts_ns;
  ev.dur_ns = dur_ns;
  ev.phase = TraceEvent::Phase::Complete;
  ev.stage = stage;
  ev.micro = micro;
  ev.step = step;
  buf->count.store(i + 1, std::memory_order_release);
}

void TraceRecorder::record_instant(const char* name, const char* cat, int stage,
                                   int micro, std::int64_t step) {
  if (!enabled()) return;
  ThreadBuffer* buf = this_thread_buffer();
  const std::size_t i = buf->count.load(std::memory_order_relaxed);
  if (i >= buf->events.size()) {
    buf->dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  TraceEvent& ev = buf->events[i];
  ev.name = name;
  ev.cat = cat;
  ev.ts_ns = now_ns();
  ev.dur_ns = 0;
  ev.phase = TraceEvent::Phase::Instant;
  ev.stage = stage;
  ev.micro = micro;
  ev.step = step;
  buf->count.store(i + 1, std::memory_order_release);
}

void TraceRecorder::set_thread_name(const std::string& name) {
  if (!enabled()) return;
  ThreadBuffer* buf = this_thread_buffer();
  util::MutexLock lock(m_);  // exporters read names under m_
  buf->name = name;
}

std::uint64_t TraceRecorder::recorded() const {
  std::uint64_t total = 0;
  util::MutexLock lock(m_);
  for (const auto& buf : buffers_) {
    total += buf->count.load(std::memory_order_acquire);
  }
  return total;
}

std::uint64_t TraceRecorder::dropped() const {
  std::uint64_t total = 0;
  util::MutexLock lock(m_);
  for (const auto& buf : buffers_) {
    total += buf->dropped.load(std::memory_order_relaxed);
  }
  return total;
}

void TraceRecorder::write_chrome_trace(const std::string& path) const {
  util::Json events = util::Json::array();
  {
    util::MutexLock lock(m_);
    for (const auto& buf : buffers_) {
      // thread_name metadata labels the tid row in Perfetto.
      if (!buf->name.empty()) {
        util::Json meta = util::Json::object();
        meta.set("name", "thread_name");
        meta.set("ph", "M");
        meta.set("pid", 1);
        meta.set("tid", buf->tid);
        util::Json margs = util::Json::object();
        margs.set("name", buf->name);
        meta.set("args", std::move(margs));
        events.push(std::move(meta));
      }
      const std::size_t n = buf->count.load(std::memory_order_acquire);
      for (std::size_t i = 0; i < n; ++i) {
        const TraceEvent& ev = buf->events[i];
        util::Json j = util::Json::object();
        j.set("name", ev.name);
        j.set("cat", ev.cat);
        j.set("ph", ev.phase == TraceEvent::Phase::Complete ? "X" : "i");
        // Chrome trace timestamps are microseconds; fractional keeps ns.
        j.set("ts", static_cast<double>(ev.ts_ns) / 1000.0);
        if (ev.phase == TraceEvent::Phase::Complete) {
          j.set("dur", static_cast<double>(ev.dur_ns) / 1000.0);
        } else {
          j.set("s", "t");  // instant scope: thread
        }
        j.set("pid", 1);
        j.set("tid", buf->tid);
        util::Json args = util::Json::object();
        if (ev.stage >= 0) args.set("stage", static_cast<std::int64_t>(ev.stage));
        if (ev.micro >= 0) args.set("micro", static_cast<std::int64_t>(ev.micro));
        if (ev.step >= 0) args.set("step", ev.step);
        j.set("args", std::move(args));
        events.push(std::move(j));
      }
    }
  }
  util::Json root = util::Json::object();
  root.set("traceEvents", std::move(events));
  root.set("displayTimeUnit", "ms");
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("write_chrome_trace: cannot open " + path);
  }
  out << root.dump();
}

void write_chrome_trace(const std::string& path) {
  TraceRecorder::instance().write_chrome_trace(path);
}

}  // namespace pipemare::obs
