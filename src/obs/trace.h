#pragma once

// Low-overhead tracing: per-thread fixed-capacity span ring buffers that
// export Chrome trace-event JSON (loadable in Perfetto / chrome://tracing).
//
// Design goals, in order:
//   1. The *disabled* path is one relaxed atomic load and one branch —
//      tracing is always compiled in, and the training hot loops are
//      instrumented unconditionally, so the off cost must be invisible
//      (<1% on bench/micro_steal; measured by bench/micro_obs).
//   2. The *enabled* path allocates nothing: each thread writes POD events
//      into its own pre-sized buffer, published with a single release
//      store of the count. Buffers fill until full; overflow increments a
//      drop counter instead of overwriting (so a concurrent export never
//      races a wrapping writer, and the Chrome trace is an honest prefix).
//   3. Recording must not perturb numerics: events carry observations
//      (names, timestamps, stage/micro/step indices) and never touch
//      model state, RNG streams, or float accumulation order — curves are
//      bitwise-equal with tracing on vs off (asserted in tests/test_obs).
//
// Event names and categories must be string literals (or otherwise
// immortal): the hot path stores the pointers, not copies.
//
// Thread model. Each recording thread lazily registers one ThreadBuffer
// (under the registry mutex — a once-per-thread slow path) and caches the
// pointer in a thread_local; buffers outlive their threads, so short-lived
// worker-pool threads keep their events. enable()/reset() must only be
// called while no instrumented thread is recording (between training
// minibatches / serving sessions, or in tests) — they bump a session
// counter that invalidates every cached thread_local pointer.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/util/sync.h"

namespace pipemare::obs {

/// One recorded event. POD on purpose: writing one is a handful of stores.
struct TraceEvent {
  enum class Phase : std::uint8_t { Complete, Instant };
  const char* name = nullptr;  ///< string literal
  const char* cat = nullptr;   ///< string literal ("pipeline", "sched", ...)
  std::uint64_t ts_ns = 0;     ///< start time, ns since recorder base
  std::uint64_t dur_ns = 0;    ///< Complete events only
  Phase phase = Phase::Instant;
  std::int32_t stage = -1;     ///< -1 = not applicable
  std::int32_t micro = -1;
  std::int64_t step = -1;
};

/// Process-global trace recorder. All methods are safe to call from any
/// thread except enable()/reset(), which require recording quiescence
/// (see file comment).
class TraceRecorder {
 public:
  static constexpr std::size_t kDefaultCapacity = std::size_t{1} << 16;

  static TraceRecorder& instance();

  /// Starts a recording session: clears previous buffers and sets the
  /// per-thread event capacity. Idempotent capacity-wise only across
  /// reset(); calling enable() twice restarts the session.
  void enable(std::size_t capacity_per_thread = kDefaultCapacity);

  /// Stops recording (already-written events stay exportable).
  void disable();

  /// Drops all buffers and counters; leaves the recorder disabled.
  void reset();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Nanoseconds since the recorder's steady-clock base.
  std::uint64_t now_ns() const;

  /// Records a completed span [ts_ns, ts_ns + dur_ns). No-op when disabled.
  void record_complete(const char* name, const char* cat, std::uint64_t ts_ns,
                       std::uint64_t dur_ns, int stage, int micro,
                       std::int64_t step);

  /// Records a point-in-time event. No-op when disabled.
  void record_instant(const char* name, const char* cat, int stage, int micro,
                      std::int64_t step);

  /// Labels the calling thread in the exported trace ("steal-worker", ...).
  /// Slow path (takes the registry mutex); call once per thread role.
  void set_thread_name(const std::string& name);

  /// Events recorded across all threads this session.
  std::uint64_t recorded() const;
  /// Events discarded because a thread's buffer was full.
  std::uint64_t dropped() const;

  /// Writes the session as Chrome trace-event JSON:
  ///   {"traceEvents": [{name, cat, ph, ts, dur, pid, tid, args}, ...]}
  /// ts/dur are microseconds (fractional); args carries stage/micro/step
  /// when present. Thread-name metadata events label each tid. Throws
  /// std::runtime_error if the file cannot be opened.
  void write_chrome_trace(const std::string& path) const;

 private:
  /// One thread's buffer. Only the owning thread writes events/count; the
  /// release store of count_ publishes each event to concurrent exporters.
  struct ThreadBuffer {
    std::vector<TraceEvent> events;       ///< sized once at registration
    std::atomic<std::size_t> count{0};    ///< published events
    std::atomic<std::uint64_t> dropped{0};
    int tid = 0;                          ///< registration order
    std::string name;                     ///< set_thread_name label
  };

  TraceRecorder();
  ThreadBuffer* this_thread_buffer();

  std::atomic<bool> enabled_{false};
  std::atomic<std::uint64_t> session_{0};  ///< bumped by enable()/reset()
  std::chrono::steady_clock::time_point base_;

  mutable util::Mutex m_;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_ GUARDED_BY(m_);
  std::size_t ring_capacity_ GUARDED_BY(m_) = kDefaultCapacity;
};

/// RAII span: captures the start time at construction and records one
/// Complete event at destruction. When tracing is disabled both ends cost
/// a relaxed load and a branch.
class Span {
 public:
  explicit Span(const char* name, const char* cat = "default", int stage = -1,
                int micro = -1, std::int64_t step = -1)
      : name_(name), cat_(cat), stage_(stage), micro_(micro), step_(step) {
    TraceRecorder& r = TraceRecorder::instance();
    active_ = r.enabled();
    if (active_) start_ns_ = r.now_ns();
  }
  ~Span() {
    if (active_) {
      TraceRecorder& r = TraceRecorder::instance();
      r.record_complete(name_, cat_, start_ns_, r.now_ns() - start_ns_, stage_,
                        micro_, step_);
    }
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const char* name_;
  const char* cat_;
  std::uint64_t start_ns_ = 0;
  std::int32_t stage_;
  std::int32_t micro_;
  std::int64_t step_;
  bool active_;
};

/// Point event helper (steals, repartitions, request lifecycle marks).
inline void instant(const char* name, const char* cat = "default",
                    int stage = -1, int micro = -1, std::int64_t step = -1) {
  TraceRecorder& r = TraceRecorder::instance();
  if (!r.enabled()) return;
  r.record_instant(name, cat, stage, micro, step);
}

/// Convenience forwarder for TraceRecorder::instance().write_chrome_trace.
void write_chrome_trace(const std::string& path);

}  // namespace pipemare::obs
