#include "src/tensor/conv.h"

#include <stdexcept>

namespace pipemare::tensor {

Tensor im2col(const Tensor& x, const ConvSpec& spec) {
  if (x.rank() != 4) throw std::invalid_argument("im2col: BCHW tensor required");
  int b = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  if (c != spec.in_channels) throw std::invalid_argument("im2col: channel mismatch");
  int oh = spec.out_dim(h), ow = spec.out_dim(w);
  int k = spec.kernel;
  Tensor cols({b * oh * ow, c * k * k});
  float* out = cols.data();
  for (int bi = 0; bi < b; ++bi) {
    for (int oy = 0; oy < oh; ++oy) {
      for (int ox = 0; ox < ow; ++ox) {
        std::size_t row =
            ((static_cast<std::size_t>(bi) * oh + oy) * ow + ox) *
            static_cast<std::size_t>(c) * k * k;
        for (int ci = 0; ci < c; ++ci) {
          for (int ky = 0; ky < k; ++ky) {
            int iy = oy * spec.stride + ky - spec.padding;
            for (int kx = 0; kx < k; ++kx) {
              int ix = ox * spec.stride + kx - spec.padding;
              float v = 0.0F;
              if (iy >= 0 && iy < h && ix >= 0 && ix < w) v = x.at(bi, ci, iy, ix);
              out[row + (static_cast<std::size_t>(ci) * k + ky) * k + kx] = v;
            }
          }
        }
      }
    }
  }
  return cols;
}

Tensor col2im(const Tensor& cols, const ConvSpec& spec, int batch, int h, int w) {
  int c = spec.in_channels;
  int oh = spec.out_dim(h), ow = spec.out_dim(w);
  int k = spec.kernel;
  if (cols.dim(0) != batch * oh * ow || cols.dim(1) != c * k * k) {
    throw std::invalid_argument("col2im: column shape mismatch");
  }
  Tensor dx({batch, c, h, w});
  const float* in = cols.data();
  for (int bi = 0; bi < batch; ++bi) {
    for (int oy = 0; oy < oh; ++oy) {
      for (int ox = 0; ox < ow; ++ox) {
        std::size_t row =
            ((static_cast<std::size_t>(bi) * oh + oy) * ow + ox) *
            static_cast<std::size_t>(c) * k * k;
        for (int ci = 0; ci < c; ++ci) {
          for (int ky = 0; ky < k; ++ky) {
            int iy = oy * spec.stride + ky - spec.padding;
            if (iy < 0 || iy >= h) continue;
            for (int kx = 0; kx < k; ++kx) {
              int ix = ox * spec.stride + kx - spec.padding;
              if (ix < 0 || ix >= w) continue;
              dx.at(bi, ci, iy, ix) +=
                  in[row + (static_cast<std::size_t>(ci) * k + ky) * k + kx];
            }
          }
        }
      }
    }
  }
  return dx;
}

Tensor maxpool2x2(const Tensor& x, Tensor& indices) {
  if (x.rank() != 4) throw std::invalid_argument("maxpool2x2: BCHW tensor required");
  int b = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  int oh = h / 2, ow = w / 2;
  Tensor out({b, c, oh, ow});
  indices = Tensor({b, c, oh, ow});
  for (int bi = 0; bi < b; ++bi) {
    for (int ci = 0; ci < c; ++ci) {
      for (int oy = 0; oy < oh; ++oy) {
        for (int ox = 0; ox < ow; ++ox) {
          float best = x.at(bi, ci, oy * 2, ox * 2);
          int best_iy = oy * 2, best_ix = ox * 2;
          for (int dy = 0; dy < 2; ++dy) {
            for (int dx2 = 0; dx2 < 2; ++dx2) {
              int iy = oy * 2 + dy, ix = ox * 2 + dx2;
              if (x.at(bi, ci, iy, ix) > best) {
                best = x.at(bi, ci, iy, ix);
                best_iy = iy;
                best_ix = ix;
              }
            }
          }
          out.at(bi, ci, oy, ox) = best;
          indices.at(bi, ci, oy, ox) = static_cast<float>(best_iy * w + best_ix);
        }
      }
    }
  }
  return out;
}

Tensor maxpool2x2_backward(const Tensor& dy, const Tensor& indices,
                           const std::vector<int>& input_shape) {
  Tensor dx(input_shape);
  int b = dy.dim(0), c = dy.dim(1), oh = dy.dim(2), ow = dy.dim(3);
  int h = input_shape[2], w = input_shape[3];
  for (int bi = 0; bi < b; ++bi) {
    for (int ci = 0; ci < c; ++ci) {
      for (int oy = 0; oy < oh; ++oy) {
        for (int ox = 0; ox < ow; ++ox) {
          int flat = static_cast<int>(indices.at(bi, ci, oy, ox));
          int iy = flat / w, ix = flat % w;
          (void)h;
          dx.at(bi, ci, iy, ix) += dy.at(bi, ci, oy, ox);
        }
      }
    }
  }
  return dx;
}

Tensor global_avg_pool(const Tensor& x) {
  if (x.rank() != 4) throw std::invalid_argument("global_avg_pool: BCHW required");
  int b = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  Tensor out({b, c});
  float inv = 1.0F / static_cast<float>(h * w);
  for (int bi = 0; bi < b; ++bi) {
    for (int ci = 0; ci < c; ++ci) {
      float s = 0.0F;
      for (int iy = 0; iy < h; ++iy)
        for (int ix = 0; ix < w; ++ix) s += x.at(bi, ci, iy, ix);
      out.at(bi, ci) = s * inv;
    }
  }
  return out;
}

Tensor global_avg_pool_backward(const Tensor& dy, const std::vector<int>& input_shape) {
  Tensor dx(input_shape);
  int b = input_shape[0], c = input_shape[1], h = input_shape[2], w = input_shape[3];
  float inv = 1.0F / static_cast<float>(h * w);
  for (int bi = 0; bi < b; ++bi) {
    for (int ci = 0; ci < c; ++ci) {
      float g = dy.at(bi, ci) * inv;
      for (int iy = 0; iy < h; ++iy)
        for (int ix = 0; ix < w; ++ix) dx.at(bi, ci, iy, ix) = g;
    }
  }
  return dx;
}

}  // namespace pipemare::tensor
