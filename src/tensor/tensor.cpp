#include "src/tensor/tensor.h"

#include <sstream>
#include <stdexcept>

namespace pipemare::tensor {

std::int64_t shape_size(const std::vector<int>& shape) {
  std::int64_t n = 1;
  for (int d : shape) {
    if (d < 0) throw std::invalid_argument("negative dimension in shape");
    n *= d;
  }
  return n;
}

Tensor::Tensor(std::vector<int> shape)
    : shape_(std::move(shape)),
      data_(static_cast<std::size_t>(shape_size(shape_)), 0.0F) {}

Tensor::Tensor(std::vector<int> shape, std::vector<float> data)
    : shape_(std::move(shape)), data_(std::move(data)) {
  if (shape_size(shape_) != static_cast<std::int64_t>(data_.size())) {
    throw std::invalid_argument("Tensor: shape/data size mismatch");
  }
}

Tensor Tensor::zeros(std::vector<int> shape) { return Tensor(std::move(shape)); }

Tensor Tensor::full(std::vector<int> shape, float value) {
  Tensor t(std::move(shape));
  t.fill(value);
  return t;
}

Tensor Tensor::scalar(float value) { return Tensor({1}, {value}); }

int Tensor::dim(int i) const {
  if (i < 0 || i >= rank()) throw std::out_of_range("Tensor::dim index");
  return shape_[static_cast<std::size_t>(i)];
}

float& Tensor::at(int i) { return data_[static_cast<std::size_t>(i)]; }
float& Tensor::at(int i, int j) {
  return data_[static_cast<std::size_t>(i) * shape_[1] + j];
}
float& Tensor::at(int i, int j, int k) {
  return data_[(static_cast<std::size_t>(i) * shape_[1] + j) * shape_[2] + k];
}
float& Tensor::at(int i, int j, int k, int l) {
  return data_[((static_cast<std::size_t>(i) * shape_[1] + j) * shape_[2] + k) *
                   shape_[3] +
               l];
}
float Tensor::at(int i) const { return data_[static_cast<std::size_t>(i)]; }
float Tensor::at(int i, int j) const {
  return data_[static_cast<std::size_t>(i) * shape_[1] + j];
}
float Tensor::at(int i, int j, int k) const {
  return data_[(static_cast<std::size_t>(i) * shape_[1] + j) * shape_[2] + k];
}
float Tensor::at(int i, int j, int k, int l) const {
  return data_[((static_cast<std::size_t>(i) * shape_[1] + j) * shape_[2] + k) *
                   shape_[3] +
               l];
}

Tensor Tensor::reshaped(std::vector<int> new_shape) const {
  Tensor t = *this;
  t.reshape(std::move(new_shape));
  return t;
}

void Tensor::reshape(std::vector<int> new_shape) {
  if (shape_size(new_shape) != size()) {
    throw std::invalid_argument("Tensor::reshape: size mismatch");
  }
  shape_ = std::move(new_shape);
}

void Tensor::fill(float value) {
  for (auto& x : data_) x = value;
}

std::string Tensor::shape_str() const {
  std::ostringstream os;
  os << '[';
  for (std::size_t i = 0; i < shape_.size(); ++i) {
    if (i > 0) os << ',';
    os << shape_[i];
  }
  os << ']';
  return os.str();
}

}  // namespace pipemare::tensor
