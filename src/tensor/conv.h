#pragma once

#include "src/tensor/tensor.h"

namespace pipemare::tensor {

/// Geometry of a 2-D convolution / pooling window.
struct ConvSpec {
  int in_channels = 0;
  int out_channels = 0;
  int kernel = 3;
  int stride = 1;
  int padding = 1;

  int out_dim(int in_dim) const { return (in_dim + 2 * padding - kernel) / stride + 1; }
};

/// Unfolds x[B,C,H,W] into columns [B*OH*OW, C*K*K] so that convolution
/// becomes a single matmul with the [C*K*K, OC] weight matrix.
Tensor im2col(const Tensor& x, const ConvSpec& spec);

/// Adjoint of im2col: folds columns [B*OH*OW, C*K*K] back into the padded
/// input gradient dx[B,C,H,W], summing overlapping windows.
Tensor col2im(const Tensor& cols, const ConvSpec& spec, int batch, int h, int w);

/// 2x2 stride-2 max pooling. Returns pooled tensor; records the flat argmax
/// index of each window in `indices` (same shape as output) for backward.
Tensor maxpool2x2(const Tensor& x, Tensor& indices);

/// Backward of maxpool2x2: scatters dy into dx at the recorded indices.
Tensor maxpool2x2_backward(const Tensor& dy, const Tensor& indices,
                           const std::vector<int>& input_shape);

/// Global average pooling: x[B,C,H,W] -> [B,C].
Tensor global_avg_pool(const Tensor& x);

/// Backward of global average pooling.
Tensor global_avg_pool_backward(const Tensor& dy, const std::vector<int>& input_shape);

}  // namespace pipemare::tensor
