#pragma once

#include <version>

// The whole library leans on C++20 (<span> views over flat parameter
// vectors, std::numbers in the math kernels). Catch an under-configured
// toolchain here, at the root include, with one clear message instead of
// hundreds of template errors downstream.
#if !defined(__cpp_lib_span) || __cpp_lib_span < 202002L
#error "pipemare requires C++20 (std::span): build with -std=c++20 on GCC >= 10 or Clang >= 12"
#endif

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace pipemare::tensor {

/// Dense row-major float32 n-dimensional array with value semantics.
///
/// This is the compute substrate for the whole library: activations,
/// parameters views and gradients are all Tensors or float spans. Copies
/// are deep; moves are cheap. Shapes are small vectors of ints.
class Tensor {
 public:
  Tensor() = default;

  /// Allocates a zero-initialized tensor of the given shape.
  explicit Tensor(std::vector<int> shape);

  /// Wraps existing data (copied) with the given shape.
  Tensor(std::vector<int> shape, std::vector<float> data);

  static Tensor zeros(std::vector<int> shape);
  static Tensor full(std::vector<int> shape, float value);

  /// Scalar (rank-0, one element) tensor.
  static Tensor scalar(float value);

  const std::vector<int>& shape() const { return shape_; }
  int dim(int i) const;
  int rank() const { return static_cast<int>(shape_.size()); }
  std::int64_t size() const { return static_cast<std::int64_t>(data_.size()); }
  bool empty() const { return data_.empty(); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  std::span<float> span() { return data_; }
  std::span<const float> span() const { return data_; }

  float& operator[](std::int64_t i) { return data_[static_cast<std::size_t>(i)]; }
  float operator[](std::int64_t i) const { return data_[static_cast<std::size_t>(i)]; }

  /// Bounds-unchecked multi-dimensional accessors for the common ranks.
  float& at(int i);
  float& at(int i, int j);
  float& at(int i, int j, int k);
  float& at(int i, int j, int k, int l);
  float at(int i) const;
  float at(int i, int j) const;
  float at(int i, int j, int k) const;
  float at(int i, int j, int k, int l) const;

  /// Returns a tensor sharing no storage with `*this` but reinterpreted
  /// with a new shape of the same total size.
  Tensor reshaped(std::vector<int> new_shape) const;

  /// In-place reshape; total size must be preserved.
  void reshape(std::vector<int> new_shape);

  void fill(float value);

  std::string shape_str() const;

 private:
  std::vector<int> shape_;
  std::vector<float> data_;
};

/// Total element count of a shape.
std::int64_t shape_size(const std::vector<int>& shape);

}  // namespace pipemare::tensor
