// Thin dispatch wrappers: shape validation and Tensor allocation live
// here; the arithmetic lives in src/tensor/kernels/ behind the
// KernelRegistry (naive oracle vs tiled+SIMD, selected via --kernels= or
// PIPEMARE_KERNELS). Scalar double-precision reductions (sum, mse,
// col_sum_accumulate) stay here: their accumulation order is the spec.
#include "src/tensor/ops.h"

#include <stdexcept>

#include "src/obs/metrics.h"
#include "src/tensor/kernels/registry.h"

namespace pipemare::tensor {

namespace {

using kernels::KernelRegistry;

void require(bool ok, const char* msg) {
  if (!ok) throw std::invalid_argument(msg);
}

/// GEMM-family dispatch counter ("kernels.gemm_dispatch"): counts every
/// matmul* call routed through the KernelRegistry, whichever backend
/// table is selected. GEMMs are the O(mkn) calls — elementwise ops are
/// deliberately not counted to keep dispatch overhead a single relaxed
/// fetch_add on only the heavy path.
void count_gemm() {
  static obs::Counter& c =
      obs::MetricsRegistry::instance().counter("kernels.gemm_dispatch");
  c.add();
}

Tensor gemm_nt_bias_dispatch(const Tensor& a, const Tensor& b,
                             std::span<const float> bias, bool relu) {
  require(a.rank() == 2 && b.rank() == 2, "matmul_nt_bias: rank-2 tensors required");
  int m = a.dim(0), k = a.dim(1), n = b.dim(0);
  require(b.dim(1) == k, "matmul_nt_bias: inner dimension mismatch");
  require(static_cast<int>(bias.size()) == n,
          "matmul_nt_bias: bias size mismatch");
  Tensor c({m, n});
  count_gemm();
  KernelRegistry::table().gemm_nt_bias(a.data(), b.data(), bias.data(),
                                       c.data(), m, k, n, relu);
  return c;
}

}  // namespace

Tensor matmul(const Tensor& a, const Tensor& b) {
  require(a.rank() == 2 && b.rank() == 2, "matmul: rank-2 tensors required");
  int m = a.dim(0), k = a.dim(1), n = b.dim(1);
  require(b.dim(0) == k, "matmul: inner dimension mismatch");
  Tensor c({m, n});
  count_gemm();
  KernelRegistry::table().gemm_nn(a.data(), b.data(), c.data(), m, k, n);
  return c;
}

Tensor matmul_tn(const Tensor& a, const Tensor& b) {
  require(a.rank() == 2 && b.rank() == 2, "matmul_tn: rank-2 tensors required");
  int k = a.dim(0), m = a.dim(1), n = b.dim(1);
  require(b.dim(0) == k, "matmul_tn: inner dimension mismatch");
  Tensor c({m, n});
  count_gemm();
  KernelRegistry::table().gemm_tn(a.data(), b.data(), c.data(), m, k, n);
  return c;
}

Tensor matmul_nt(const Tensor& a, const Tensor& b) {
  require(a.rank() == 2 && b.rank() == 2, "matmul_nt: rank-2 tensors required");
  int m = a.dim(0), k = a.dim(1), n = b.dim(0);
  require(b.dim(1) == k, "matmul_nt: inner dimension mismatch");
  Tensor c({m, n});
  count_gemm();
  KernelRegistry::table().gemm_nt(a.data(), b.data(), c.data(), m, k, n);
  return c;
}

Tensor matmul_nt_bias(const Tensor& a, const Tensor& b,
                      std::span<const float> bias) {
  return gemm_nt_bias_dispatch(a, b, bias, false);
}

Tensor matmul_nt_bias_relu(const Tensor& a, const Tensor& b,
                           std::span<const float> bias) {
  return gemm_nt_bias_dispatch(a, b, bias, true);
}

Tensor transpose2d(const Tensor& a) {
  require(a.rank() == 2, "transpose2d: rank-2 tensor required");
  int m = a.dim(0), n = a.dim(1);
  Tensor t({n, m});
  KernelRegistry::table().transpose2d(a.data(), t.data(), m, n);
  return t;
}

Tensor add(const Tensor& a, const Tensor& b) {
  require(a.shape() == b.shape(), "add: shape mismatch");
  Tensor c = a;
  add_inplace(c, b, 1.0F);
  return c;
}

Tensor sub(const Tensor& a, const Tensor& b) {
  require(a.shape() == b.shape(), "sub: shape mismatch");
  Tensor c = a;
  add_inplace(c, b, -1.0F);
  return c;
}

Tensor mul(const Tensor& a, const Tensor& b) {
  require(a.shape() == b.shape(), "mul: shape mismatch");
  Tensor c = a;
  KernelRegistry::table().mul_inplace(c.data(), b.data(), c.size());
  return c;
}

Tensor scale(const Tensor& a, float s) {
  Tensor c = a;
  KernelRegistry::table().scale_inplace(c.data(), s, c.size());
  return c;
}

void add_inplace(Tensor& a, const Tensor& b, float s) {
  require(a.size() == b.size(), "add_inplace: size mismatch");
  KernelRegistry::table().axpy(a.data(), b.data(), s, a.size());
}

void add_row_inplace(Tensor& a, std::span<const float> b) {
  require(a.rank() >= 1, "add_row_inplace: tensor required");
  int n = a.dim(a.rank() - 1);
  require(static_cast<int>(b.size()) == n, "add_row_inplace: row size mismatch");
  std::int64_t rows = n == 0 ? 0 : a.size() / n;
  KernelRegistry::table().add_row_inplace(a.data(), b.data(), rows, n);
}

Tensor relu(const Tensor& a) {
  Tensor c = a;
  KernelRegistry::table().relu_inplace(c.data(), c.size());
  return c;
}

Tensor relu_backward(const Tensor& dy, const Tensor& a) {
  require(dy.size() == a.size(), "relu_backward: size mismatch");
  Tensor dx = dy;
  KernelRegistry::table().relu_backward(dx.data(), a.data(), dx.size());
  return dx;
}

Tensor softmax_rows(const Tensor& a) {
  require(a.rank() == 2, "softmax_rows: rank-2 tensor required");
  int m = a.dim(0), n = a.dim(1);
  Tensor out({m, n});
  if (n > 0) KernelRegistry::table().softmax_rows(a.data(), out.data(), m, n);
  return out;
}

Tensor log_softmax_rows(const Tensor& a) {
  require(a.rank() == 2, "log_softmax_rows: rank-2 tensor required");
  int m = a.dim(0), n = a.dim(1);
  Tensor out({m, n});
  if (n > 0)
    KernelRegistry::table().log_softmax_rows(a.data(), out.data(), m, n);
  return out;
}

double sum(const Tensor& a) {
  double s = 0.0;
  for (std::int64_t i = 0; i < a.size(); ++i) s += a[i];
  return s;
}

void col_sum_accumulate(const Tensor& a, std::span<float> out) {
  require(a.rank() == 2, "col_sum_accumulate: rank-2 tensor required");
  int m = a.dim(0), n = a.dim(1);
  require(static_cast<int>(out.size()) == n, "col_sum_accumulate: size mismatch");
  for (int i = 0; i < m; ++i)
    for (int j = 0; j < n; ++j) out[static_cast<std::size_t>(j)] += a.at(i, j);
}

double mse(const Tensor& a, const Tensor& b) {
  require(a.size() == b.size(), "mse: size mismatch");
  double s = 0.0;
  for (std::int64_t i = 0; i < a.size(); ++i) {
    double d = static_cast<double>(a[i]) - b[i];
    s += d * d;
  }
  return a.size() == 0 ? 0.0 : s / static_cast<double>(a.size());
}

}  // namespace pipemare::tensor
