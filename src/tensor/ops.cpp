#include "src/tensor/ops.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace pipemare::tensor {

namespace {
void require(bool ok, const char* msg) {
  if (!ok) throw std::invalid_argument(msg);
}
}  // namespace

Tensor matmul(const Tensor& a, const Tensor& b) {
  require(a.rank() == 2 && b.rank() == 2, "matmul: rank-2 tensors required");
  int m = a.dim(0), k = a.dim(1), n = b.dim(1);
  require(b.dim(0) == k, "matmul: inner dimension mismatch");
  Tensor c({m, n});
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  // ikj loop order: streams over B and C rows, friendly to the prefetcher.
  for (int i = 0; i < m; ++i) {
    float* crow = pc + static_cast<std::size_t>(i) * n;
    for (int p = 0; p < k; ++p) {
      float av = pa[static_cast<std::size_t>(i) * k + p];
      if (av == 0.0F) continue;
      const float* brow = pb + static_cast<std::size_t>(p) * n;
      for (int j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
  return c;
}

Tensor matmul_tn(const Tensor& a, const Tensor& b) {
  require(a.rank() == 2 && b.rank() == 2, "matmul_tn: rank-2 tensors required");
  int k = a.dim(0), m = a.dim(1), n = b.dim(1);
  require(b.dim(0) == k, "matmul_tn: inner dimension mismatch");
  Tensor c({m, n});
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  for (int p = 0; p < k; ++p) {
    const float* arow = pa + static_cast<std::size_t>(p) * m;
    const float* brow = pb + static_cast<std::size_t>(p) * n;
    for (int i = 0; i < m; ++i) {
      float av = arow[i];
      if (av == 0.0F) continue;
      float* crow = pc + static_cast<std::size_t>(i) * n;
      for (int j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
  return c;
}

Tensor matmul_nt(const Tensor& a, const Tensor& b) {
  require(a.rank() == 2 && b.rank() == 2, "matmul_nt: rank-2 tensors required");
  int m = a.dim(0), k = a.dim(1), n = b.dim(0);
  require(b.dim(1) == k, "matmul_nt: inner dimension mismatch");
  Tensor c({m, n});
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  for (int i = 0; i < m; ++i) {
    const float* arow = pa + static_cast<std::size_t>(i) * k;
    float* crow = pc + static_cast<std::size_t>(i) * n;
    for (int j = 0; j < n; ++j) {
      const float* brow = pb + static_cast<std::size_t>(j) * k;
      float s = 0.0F;
      for (int p = 0; p < k; ++p) s += arow[p] * brow[p];
      crow[j] = s;
    }
  }
  return c;
}

Tensor transpose2d(const Tensor& a) {
  require(a.rank() == 2, "transpose2d: rank-2 tensor required");
  int m = a.dim(0), n = a.dim(1);
  Tensor t({n, m});
  for (int i = 0; i < m; ++i)
    for (int j = 0; j < n; ++j) t.at(j, i) = a.at(i, j);
  return t;
}

Tensor add(const Tensor& a, const Tensor& b) {
  require(a.shape() == b.shape(), "add: shape mismatch");
  Tensor c = a;
  add_inplace(c, b, 1.0F);
  return c;
}

Tensor sub(const Tensor& a, const Tensor& b) {
  require(a.shape() == b.shape(), "sub: shape mismatch");
  Tensor c = a;
  add_inplace(c, b, -1.0F);
  return c;
}

Tensor mul(const Tensor& a, const Tensor& b) {
  require(a.shape() == b.shape(), "mul: shape mismatch");
  Tensor c = a;
  for (std::int64_t i = 0; i < c.size(); ++i) c[i] *= b[i];
  return c;
}

Tensor scale(const Tensor& a, float s) {
  Tensor c = a;
  for (std::int64_t i = 0; i < c.size(); ++i) c[i] *= s;
  return c;
}

void add_inplace(Tensor& a, const Tensor& b, float s) {
  require(a.size() == b.size(), "add_inplace: size mismatch");
  float* pa = a.data();
  const float* pb = b.data();
  for (std::int64_t i = 0; i < a.size(); ++i) pa[i] += s * pb[i];
}

void add_row_inplace(Tensor& a, std::span<const float> b) {
  require(a.rank() >= 1, "add_row_inplace: tensor required");
  int n = a.dim(a.rank() - 1);
  require(static_cast<int>(b.size()) == n, "add_row_inplace: row size mismatch");
  std::int64_t rows = a.size() / n;
  float* pa = a.data();
  for (std::int64_t r = 0; r < rows; ++r) {
    for (int j = 0; j < n; ++j) pa[r * n + j] += b[static_cast<std::size_t>(j)];
  }
}

Tensor relu(const Tensor& a) {
  Tensor c = a;
  for (std::int64_t i = 0; i < c.size(); ++i) c[i] = std::max(0.0F, c[i]);
  return c;
}

Tensor relu_backward(const Tensor& dy, const Tensor& a) {
  require(dy.size() == a.size(), "relu_backward: size mismatch");
  Tensor dx = dy;
  for (std::int64_t i = 0; i < dx.size(); ++i) {
    if (a[i] <= 0.0F) dx[i] = 0.0F;
  }
  return dx;
}

Tensor softmax_rows(const Tensor& a) {
  require(a.rank() == 2, "softmax_rows: rank-2 tensor required");
  int m = a.dim(0), n = a.dim(1);
  Tensor out({m, n});
  for (int i = 0; i < m; ++i) {
    float mx = a.at(i, 0);
    for (int j = 1; j < n; ++j) mx = std::max(mx, a.at(i, j));
    float z = 0.0F;
    for (int j = 0; j < n; ++j) {
      float e = std::exp(a.at(i, j) - mx);
      out.at(i, j) = e;
      z += e;
    }
    float inv = 1.0F / z;
    for (int j = 0; j < n; ++j) out.at(i, j) *= inv;
  }
  return out;
}

Tensor log_softmax_rows(const Tensor& a) {
  require(a.rank() == 2, "log_softmax_rows: rank-2 tensor required");
  int m = a.dim(0), n = a.dim(1);
  Tensor out({m, n});
  for (int i = 0; i < m; ++i) {
    float mx = a.at(i, 0);
    for (int j = 1; j < n; ++j) mx = std::max(mx, a.at(i, j));
    float z = 0.0F;
    for (int j = 0; j < n; ++j) z += std::exp(a.at(i, j) - mx);
    float lz = std::log(z) + mx;
    for (int j = 0; j < n; ++j) out.at(i, j) = a.at(i, j) - lz;
  }
  return out;
}

double sum(const Tensor& a) {
  double s = 0.0;
  for (std::int64_t i = 0; i < a.size(); ++i) s += a[i];
  return s;
}

void col_sum_accumulate(const Tensor& a, std::span<float> out) {
  require(a.rank() == 2, "col_sum_accumulate: rank-2 tensor required");
  int m = a.dim(0), n = a.dim(1);
  require(static_cast<int>(out.size()) == n, "col_sum_accumulate: size mismatch");
  for (int i = 0; i < m; ++i)
    for (int j = 0; j < n; ++j) out[static_cast<std::size_t>(j)] += a.at(i, j);
}

double mse(const Tensor& a, const Tensor& b) {
  require(a.size() == b.size(), "mse: size mismatch");
  double s = 0.0;
  for (std::int64_t i = 0; i < a.size(); ++i) {
    double d = static_cast<double>(a[i]) - b[i];
    s += d * d;
  }
  return a.size() == 0 ? 0.0 : s / static_cast<double>(a.size());
}

}  // namespace pipemare::tensor
