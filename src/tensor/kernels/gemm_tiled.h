#pragma once

#include <cstddef>

namespace pipemare::tensor::kernels {

/// Row-range GEMM primitives the tiled backend is built from. Two TUs
/// compile the same implementation (gemm_tile_impl.h): gemm_tiled.cpp at
/// the project's baseline ISA and gemm_tiled_avx2.cpp with -mavx2 (when
/// the compiler supports it). AVX2 is deliberately used WITHOUT -mfma:
/// 8-wide separate multiply+add rounds each operation exactly like the
/// scalar code, so the wide path stays bitwise-equal to naive; a fused
/// multiply-add would round once instead of twice and break parity.
struct TiledFns {
  /// Rows [i0,i1) of C[m,n] = A * B[k,n], with A read through accessor
  /// strides so one kernel serves both layouts:
  ///   nn: A[m,k] row-major  -> a_row_stride = k, a_p_stride = 1
  ///   tn: A[k,m] (transposed use) -> a_row_stride = 1, a_p_stride = m
  /// Each C element is written exactly once from a single accumulator
  /// that saw its k addends in ascending order — the bitwise contract.
  void (*gemm_rows)(const float* a, std::size_t a_row_stride,
                    std::size_t a_p_stride, const float* b, float* c, int i0,
                    int i1, int k, int n);

  /// Rows [i0,i1) of C[m,n] = A[m,k] * B[n,k]^T via direct scalar dots —
  /// the small-m fallback where packing B^T costs more than it saves.
  void (*gemm_nt_rows)(const float* a, const float* b, float* c, int i0,
                       int i1, int k, int n);

  /// T[n,m] = A[m,n]^T, blocked for cache (pure data movement).
  void (*transpose2d)(const float* a, float* t, int m, int n);
};

/// Baseline-ISA instantiation (always available).
const TiledFns* tiled_fns_base();
/// AVX2 instantiation, or nullptr when the build lacks AVX2 support.
const TiledFns* tiled_fns_avx2();
/// Runtime-dispatched best instantiation for this machine (cached).
const TiledFns* tiled_fns();
/// "avx2" or "base" — which instantiation tiled_fns() returns.
const char* tiled_fns_isa();

}  // namespace pipemare::tensor::kernels
