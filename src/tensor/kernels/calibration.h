#pragma once

#include "src/tensor/kernels/registry.h"

namespace pipemare::tensor::kernels {

/// Measured kernel throughput from a one-shot micro-profile.
struct CalibrationResult {
  KernelKind kind = KernelKind::naive;
  /// Sustained GEMM rate (FLOPs per nanosecond, i.e. GFLOP/s).
  double gemm_flops_per_ns = 0.0;
  /// Sustained streaming-memory rate from an axpy sweep (bytes per ns).
  double mem_bytes_per_ns = 0.0;
};

/// One-shot micro-profile mapping nn::Module::cost() FLOP/byte estimates
/// to wall-clock on THIS machine with the CURRENTLY SELECTED kernels.
///
/// The analytic cost model counts FLOPs, which is a fine *relative* layer
/// weighting under one kernel backend — but switching naive→tiled shifts
/// GEMM throughput ~2x while leaving memory-bound ops untouched, so
/// FLOP-proportional stage splits drift from wall-clock balance. The
/// partitioner's `calibrated` mode (PartitionSpec::calibrated) converts
/// each module's (flops, bytes) estimate to predicted nanoseconds via the
/// measured rates below, re-grounding the DP split without the full
/// per-module timed profile of `measured` mode.
class KernelCalibration {
 public:
  /// Micro-benchmarks the given backend (a ~160^3 GEMM for the compute
  /// rate, a multi-megabyte axpy sweep for the memory rate; min over a
  /// few reps). Takes a few milliseconds; result is NOT cached.
  static CalibrationResult measure(KernelKind kind);

  /// Cached measurement for the active kernel kind — measured once per
  /// kind per process, then served from the cache. Thread-safe.
  static const CalibrationResult& active();

  /// Roofline-style time prediction: flops at the measured GEMM rate plus
  /// bytes at the measured memory rate.
  static double predict_ns(const CalibrationResult& cal, double flops,
                           double bytes);
  /// predict_ns against active().
  static double predict_ns(double flops, double bytes);
};

}  // namespace pipemare::tensor::kernels
