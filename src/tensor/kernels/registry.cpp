#include "src/tensor/kernels/registry.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/tensor/kernels/gemm_naive.h"
#include "src/tensor/kernels/gemm_tiled.h"
#include "src/tensor/kernels/intra_op.h"
#include "src/tensor/kernels/simd.h"

namespace pipemare::tensor::kernels {

namespace {

constexpr int kMaxLanes = 16;

// Below this many rows, packing B^T for the nt variant costs more than the
// packed kernel saves (pack is O(k*n), compute only O(m*k*n)); fall back
// to direct scalar dots, which are bitwise-identical anyway.
constexpr int kNtPackMinRows = 8;

std::atomic<int> g_kind{static_cast<int>(KernelKind::tiled)};
std::atomic<int> g_lanes{1};
std::atomic<std::int64_t> g_min_flops{2'000'000};

int clamp_lanes(int lanes) { return std::clamp(lanes, 1, kMaxLanes); }

void init_from_env_once() {
  // getenv is mt-unsafe only against a concurrent setenv; this runs once
  // behind a magic-static before any worker thread exists, and nothing in
  // the tree writes the environment.
  static const bool done = [] {
    if (const char* e = std::getenv("PIPEMARE_KERNELS")) {  // NOLINT(concurrency-mt-unsafe)
      auto kind = KernelRegistry::parse(e);
      if (!kind) {
        throw std::invalid_argument(
            std::string("PIPEMARE_KERNELS: unknown kernel kind '") + e +
            "' (expected naive|tiled)");
      }
      g_kind.store(static_cast<int>(*kind), std::memory_order_relaxed);
    }
    if (const char* e = std::getenv("PIPEMARE_KERNEL_LANES")) {  // NOLINT(concurrency-mt-unsafe)
      g_lanes.store(clamp_lanes(std::atoi(e)), std::memory_order_relaxed);
    }
    if (const char* e = std::getenv("PIPEMARE_KERNEL_MIN_FLOPS")) {  // NOLINT(concurrency-mt-unsafe)
      g_min_flops.store(std::max(0LL, std::atoll(e)),
                        std::memory_order_relaxed);
    }
    return true;
  }();
  (void)done;
}

// ---- Tiled elementwise / epilogue kernels ---------------------------------
// Every PIPEMARE_SIMD loop below is elementwise-independent (or, for the
// bias epilogue, an independent per-element add), so vectorizing it cannot
// reorder any accumulation chain — bitwise-safe by construction.

void bias_rows(float* c, const float* bias, int i0, int i1, int n,
               bool relu) {
  for (int i = i0; i < i1; ++i) {
    float* crow = c + static_cast<std::size_t>(i) * n;
    PIPEMARE_SIMD
    for (int j = 0; j < n; ++j) crow[j] += bias[j];
    if (relu) {
      PIPEMARE_SIMD
      for (int j = 0; j < n; ++j) crow[j] = std::max(0.0F, crow[j]);
    }
  }
}

void tiled_axpy(float* a, const float* b, float s, std::int64_t count) {
  PIPEMARE_SIMD
  for (std::int64_t i = 0; i < count; ++i) a[i] += s * b[i];
}

void tiled_mul_inplace(float* a, const float* b, std::int64_t count) {
  PIPEMARE_SIMD
  for (std::int64_t i = 0; i < count; ++i) a[i] *= b[i];
}

void tiled_scale_inplace(float* a, float s, std::int64_t count) {
  PIPEMARE_SIMD
  for (std::int64_t i = 0; i < count; ++i) a[i] *= s;
}

void tiled_add_row_inplace(float* a, const float* b, std::int64_t rows,
                           int n) {
  for (std::int64_t r = 0; r < rows; ++r) {
    float* arow = a + r * n;
    PIPEMARE_SIMD
    for (int j = 0; j < n; ++j) arow[j] += b[j];
  }
}

void tiled_relu_inplace(float* a, std::int64_t count) {
  PIPEMARE_SIMD
  for (std::int64_t i = 0; i < count; ++i) a[i] = std::max(0.0F, a[i]);
}

void tiled_relu_backward(float* dx, const float* a, std::int64_t count) {
  PIPEMARE_SIMD
  for (std::int64_t i = 0; i < count; ++i) {
    dx[i] = a[i] <= 0.0F ? 0.0F : dx[i];
  }
}

void tiled_softmax_rows(const float* a, float* out, int m, int n) {
  for (int i = 0; i < m; ++i) {
    const float* ar = a + static_cast<std::size_t>(i) * n;
    float* orow = out + static_cast<std::size_t>(i) * n;
    float mx = ar[0];
    for (int j = 1; j < n; ++j) mx = std::max(mx, ar[j]);
    // z stays a sequential scalar reduction: vectorizing it would
    // reassociate the sum and break bitwise parity with naive.
    float z = 0.0F;
    for (int j = 0; j < n; ++j) {
      float e = std::exp(ar[j] - mx);
      orow[j] = e;
      z += e;
    }
    float inv = 1.0F / z;
    PIPEMARE_SIMD
    for (int j = 0; j < n; ++j) orow[j] *= inv;
  }
}

void tiled_log_softmax_rows(const float* a, float* out, int m, int n) {
  for (int i = 0; i < m; ++i) {
    const float* ar = a + static_cast<std::size_t>(i) * n;
    float* orow = out + static_cast<std::size_t>(i) * n;
    float mx = ar[0];
    for (int j = 1; j < n; ++j) mx = std::max(mx, ar[j]);
    float z = 0.0F;
    for (int j = 0; j < n; ++j) z += std::exp(ar[j] - mx);
    float lz = std::log(z) + mx;
    PIPEMARE_SIMD
    for (int j = 0; j < n; ++j) orow[j] = ar[j] - lz;
  }
}

// ---- Tiled GEMM wrappers: ISA dispatch + optional lane split --------------

void tiled_gemm_nn(const float* a, const float* b, float* c, int m, int k,
                   int n) {
  const TiledFns* fns = tiled_fns();
  double flops = 2.0 * m * k * n;
  parallel_rows(m, flops, [&](int i0, int i1) {
    fns->gemm_rows(a, static_cast<std::size_t>(k), 1, b, c, i0, i1, k, n);
  });
}

void tiled_gemm_tn(const float* a, const float* b, float* c, int m, int k,
                   int n) {
  const TiledFns* fns = tiled_fns();
  double flops = 2.0 * m * k * n;
  parallel_rows(m, flops, [&](int i0, int i1) {
    fns->gemm_rows(a, 1, static_cast<std::size_t>(m), b, c, i0, i1, k, n);
  });
}

// Shared nt body: pack B^T once to [k,n] (pure data movement, so the
// packed run reads the same values in the same ascending-k order as the
// naive dot) and reuse the nn row kernel; the fused bias(+ReLU) epilogue
// runs per lane right after its rows are produced, while they are hot.
void tiled_gemm_nt_body(const float* a, const float* b, const float* bias,
                        float* c, int m, int k, int n, bool relu) {
  const TiledFns* fns = tiled_fns();
  if (m < kNtPackMinRows) {
    fns->gemm_nt_rows(a, b, c, 0, m, k, n);
    if (bias != nullptr) bias_rows(c, bias, 0, m, n, relu);
    return;
  }
  std::vector<float> bt(static_cast<std::size_t>(k) * n);
  fns->transpose2d(b, bt.data(), n, k);
  double flops = 2.0 * m * k * n;
  parallel_rows(m, flops, [&](int i0, int i1) {
    fns->gemm_rows(a, static_cast<std::size_t>(k), 1, bt.data(), c, i0, i1, k,
                   n);
    if (bias != nullptr) bias_rows(c, bias, i0, i1, n, relu);
  });
}

void tiled_gemm_nt(const float* a, const float* b, float* c, int m, int k,
                   int n) {
  tiled_gemm_nt_body(a, b, nullptr, c, m, k, n, false);
}

void tiled_gemm_nt_bias(const float* a, const float* b, const float* bias,
                        float* c, int m, int k, int n, bool relu) {
  tiled_gemm_nt_body(a, b, bias, c, m, k, n, relu);
}

void tiled_transpose2d_entry(const float* a, float* t, int m, int n) {
  tiled_fns()->transpose2d(a, t, m, n);
}

const KernelTable& tiled_table() {
  static const KernelTable table{
      "tiled",          tiled_gemm_nn,      tiled_gemm_tn,
      tiled_gemm_nt,    tiled_gemm_nt_bias, tiled_transpose2d_entry,
      tiled_axpy,       tiled_mul_inplace,  tiled_scale_inplace,
      tiled_add_row_inplace, tiled_relu_inplace, tiled_relu_backward,
      tiled_softmax_rows, tiled_log_softmax_rows,
  };
  return table;
}

}  // namespace

KernelKind KernelRegistry::kind() {
  init_from_env_once();
  return static_cast<KernelKind>(g_kind.load(std::memory_order_relaxed));
}

void KernelRegistry::set_kind(KernelKind k) {
  init_from_env_once();
  g_kind.store(static_cast<int>(k), std::memory_order_relaxed);
}

const KernelTable& KernelRegistry::table() { return table(kind()); }

const KernelTable& KernelRegistry::table(KernelKind k) {
  return k == KernelKind::tiled ? tiled_table() : naive_table();
}

std::string_view KernelRegistry::kind_name(KernelKind k) {
  return table(k).name;
}

std::string_view KernelRegistry::name() { return kind_name(kind()); }

std::optional<KernelKind> KernelRegistry::parse(std::string_view s) {
  if (s == "naive") return KernelKind::naive;
  if (s == "tiled") return KernelKind::tiled;
  return std::nullopt;
}

int KernelRegistry::lanes() {
  init_from_env_once();
  return g_lanes.load(std::memory_order_relaxed);
}

void KernelRegistry::set_lanes(int lanes) {
  init_from_env_once();
  g_lanes.store(clamp_lanes(lanes), std::memory_order_relaxed);
}

std::int64_t KernelRegistry::intra_op_min_flops() {
  init_from_env_once();
  return g_min_flops.load(std::memory_order_relaxed);
}

void KernelRegistry::set_intra_op_min_flops(std::int64_t flops) {
  init_from_env_once();
  g_min_flops.store(std::max<std::int64_t>(0, flops),
                    std::memory_order_relaxed);
}

bool KernelRegistry::simd_compiled() {
#if defined(PIPEMARE_OPENMP_SIMD)
  return true;
#else
  return false;
#endif
}

std::string_view KernelRegistry::tiled_isa() { return tiled_fns_isa(); }

}  // namespace pipemare::tensor::kernels
