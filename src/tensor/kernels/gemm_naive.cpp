#include "src/tensor/kernels/gemm_naive.h"

#include <algorithm>
#include <cmath>
#include <cstddef>

namespace pipemare::tensor::kernels {

namespace {

void naive_gemm_nn(const float* a, const float* b, float* c, int m, int k,
                   int n) {
  // ikj loop order: streams over B and C rows, friendly to the prefetcher.
  for (int i = 0; i < m; ++i) {
    float* crow = c + static_cast<std::size_t>(i) * n;
    for (int p = 0; p < k; ++p) {
      float av = a[static_cast<std::size_t>(i) * k + p];
      const float* brow = b + static_cast<std::size_t>(p) * n;
      for (int j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

void naive_gemm_tn(const float* a, const float* b, float* c, int m, int k,
                   int n) {
  for (int p = 0; p < k; ++p) {
    const float* arow = a + static_cast<std::size_t>(p) * m;
    const float* brow = b + static_cast<std::size_t>(p) * n;
    for (int i = 0; i < m; ++i) {
      float av = arow[i];
      float* crow = c + static_cast<std::size_t>(i) * n;
      for (int j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

void naive_gemm_nt(const float* a, const float* b, float* c, int m, int k,
                   int n) {
  for (int i = 0; i < m; ++i) {
    const float* arow = a + static_cast<std::size_t>(i) * k;
    float* crow = c + static_cast<std::size_t>(i) * n;
    for (int j = 0; j < n; ++j) {
      const float* brow = b + static_cast<std::size_t>(j) * k;
      float s = 0.0F;
      for (int p = 0; p < k; ++p) s += arow[p] * brow[p];
      crow[j] = s;
    }
  }
}

void naive_axpy(float* a, const float* b, float s, std::int64_t count) {
  for (std::int64_t i = 0; i < count; ++i) a[i] += s * b[i];
}

void naive_add_row_inplace(float* a, const float* b, std::int64_t rows,
                           int n) {
  for (std::int64_t r = 0; r < rows; ++r) {
    for (int j = 0; j < n; ++j) a[r * n + j] += b[j];
  }
}

void naive_relu_inplace(float* a, std::int64_t count) {
  for (std::int64_t i = 0; i < count; ++i) a[i] = std::max(0.0F, a[i]);
}

// The unfused oracle for the fused epilogue: full GEMM pass, then a bias
// pass, then a ReLU pass — the exact op sequence nn::Linear ran before
// fusion, so tiled-fused must match it bitwise.
void naive_gemm_nt_bias(const float* a, const float* b, const float* bias,
                        float* c, int m, int k, int n, bool relu) {
  naive_gemm_nt(a, b, c, m, k, n);
  naive_add_row_inplace(c, bias, m, n);
  if (relu) naive_relu_inplace(c, static_cast<std::int64_t>(m) * n);
}

void naive_transpose2d(const float* a, float* t, int m, int n) {
  for (int i = 0; i < m; ++i)
    for (int j = 0; j < n; ++j)
      t[static_cast<std::size_t>(j) * m + i] =
          a[static_cast<std::size_t>(i) * n + j];
}

void naive_mul_inplace(float* a, const float* b, std::int64_t count) {
  for (std::int64_t i = 0; i < count; ++i) a[i] *= b[i];
}

void naive_scale_inplace(float* a, float s, std::int64_t count) {
  for (std::int64_t i = 0; i < count; ++i) a[i] *= s;
}

void naive_relu_backward(float* dx, const float* a, std::int64_t count) {
  for (std::int64_t i = 0; i < count; ++i) {
    if (a[i] <= 0.0F) dx[i] = 0.0F;
  }
}

void naive_softmax_rows(const float* a, float* out, int m, int n) {
  for (int i = 0; i < m; ++i) {
    const float* ar = a + static_cast<std::size_t>(i) * n;
    float* orow = out + static_cast<std::size_t>(i) * n;
    float mx = ar[0];
    for (int j = 1; j < n; ++j) mx = std::max(mx, ar[j]);
    float z = 0.0F;
    for (int j = 0; j < n; ++j) {
      float e = std::exp(ar[j] - mx);
      orow[j] = e;
      z += e;
    }
    float inv = 1.0F / z;
    for (int j = 0; j < n; ++j) orow[j] *= inv;
  }
}

void naive_log_softmax_rows(const float* a, float* out, int m, int n) {
  for (int i = 0; i < m; ++i) {
    const float* ar = a + static_cast<std::size_t>(i) * n;
    float* orow = out + static_cast<std::size_t>(i) * n;
    float mx = ar[0];
    for (int j = 1; j < n; ++j) mx = std::max(mx, ar[j]);
    float z = 0.0F;
    for (int j = 0; j < n; ++j) z += std::exp(ar[j] - mx);
    float lz = std::log(z) + mx;
    for (int j = 0; j < n; ++j) orow[j] = ar[j] - lz;
  }
}

}  // namespace

const KernelTable& naive_table() {
  static const KernelTable table{
      "naive",          naive_gemm_nn,      naive_gemm_tn,
      naive_gemm_nt,    naive_gemm_nt_bias, naive_transpose2d,
      naive_axpy,       naive_mul_inplace,  naive_scale_inplace,
      naive_add_row_inplace, naive_relu_inplace, naive_relu_backward,
      naive_softmax_rows, naive_log_softmax_rows,
  };
  return table;
}

}  // namespace pipemare::tensor::kernels
