#pragma once

// Portable inner-loop vectorization hint. `#pragma omp simd` needs only
// -fopenmp-simd (no OpenMP runtime); CMake probes for the flag and defines
// PIPEMARE_OPENMP_SIMD when it is active, so the pragma never fires as an
// unknown-pragma warning under -Werror on compilers without it.
//
// The pragma is applied ONLY to loops whose reordering is bitwise-exact:
// independent per-element stores, or per-lane accumulator updates where
// each accumulator still sees its addends in the original (ascending-k)
// order. Sum-style reductions are never annotated — vectorizing a single
// accumulator reassociates the chain and breaks the repo's bitwise-parity
// invariant.
#if defined(PIPEMARE_OPENMP_SIMD)
#define PIPEMARE_SIMD _Pragma("omp simd")
#else
#define PIPEMARE_SIMD
#endif
