#include "src/tensor/kernels/calibration.h"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <vector>

#include "src/util/sync.h"

namespace pipemare::tensor::kernels {

namespace {

using Clock = std::chrono::steady_clock;

constexpr int kGemmDim = 160;      // ~8.2 MFLOP per rep: big enough to hit
                                   // steady-state rate, small enough for ms
constexpr std::int64_t kAxpyCount = 1 << 20;  // 4 MiB per operand
constexpr int kReps = 3;

double min_ns(const std::vector<double>& xs) {
  double best = xs.front();
  for (double x : xs) best = best < x ? best : x;
  return best;
}

// Cache indexed by KernelKind. Meyers singleton so tests that measure
// before any other tensor work still see initialized state.
struct CalibrationCache {
  util::Mutex mu;
  bool have[2] GUARDED_BY(mu) = {false, false};
  CalibrationResult results[2] GUARDED_BY(mu) = {};
};

CalibrationCache& cache() {
  static CalibrationCache c;
  return c;
}

}  // namespace

CalibrationResult KernelCalibration::measure(KernelKind kind) {
  const KernelTable& table = KernelRegistry::table(kind);

  // Deterministic non-zero fill: no RNG needed, and no exact zeros that
  // the old naive skip path would have special-cased.
  std::vector<float> a(static_cast<std::size_t>(kGemmDim) * kGemmDim);
  std::vector<float> b(a.size());
  std::vector<float> c(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = 0.25F + static_cast<float>(i % 13) * 0.125F;
    b[i] = 0.50F - static_cast<float>(i % 7) * 0.0625F;
  }

  std::vector<double> gemm_ns;
  for (int r = 0; r < kReps; ++r) {
    std::fill(c.begin(), c.end(), 0.0F);
    auto t0 = Clock::now();
    table.gemm_nn(a.data(), b.data(), c.data(), kGemmDim, kGemmDim, kGemmDim);
    auto t1 = Clock::now();
    gemm_ns.push_back(
        std::chrono::duration<double, std::nano>(t1 - t0).count());
  }

  std::vector<float> x(static_cast<std::size_t>(kAxpyCount));
  std::vector<float> y(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = static_cast<float>(i % 5) * 0.5F;
    y[i] = 1.0F;
  }
  std::vector<double> axpy_ns;
  for (int r = 0; r < kReps; ++r) {
    auto t0 = Clock::now();
    table.axpy(y.data(), x.data(), 0.5F, kAxpyCount);
    auto t1 = Clock::now();
    axpy_ns.push_back(
        std::chrono::duration<double, std::nano>(t1 - t0).count());
  }

  CalibrationResult out;
  out.kind = kind;
  double gflop = 2.0 * kGemmDim * kGemmDim * kGemmDim;
  out.gemm_flops_per_ns = gflop / min_ns(gemm_ns);
  // axpy touches 12 bytes per element: load x, load y, store y.
  double bytes = 12.0 * static_cast<double>(kAxpyCount);
  out.mem_bytes_per_ns = bytes / min_ns(axpy_ns);
  return out;
}

const CalibrationResult& KernelCalibration::active() {
  KernelKind kind = KernelRegistry::kind();
  auto idx = static_cast<std::size_t>(kind);
  CalibrationCache& c = cache();
  {
    util::MutexLock lock(c.mu);
    if (c.have[idx]) return c.results[idx];
  }
  // Measure outside the lock: the micro-bench takes milliseconds and other
  // threads may want the other kind's cached entry meanwhile. The entry is
  // write-once — a racing duplicate measurement is discarded — so every
  // returned reference points at data that is never written again.
  CalibrationResult fresh = measure(kind);
  util::MutexLock lock(c.mu);
  if (!c.have[idx]) {
    c.results[idx] = fresh;
    c.have[idx] = true;
  }
  return c.results[idx];
}

double KernelCalibration::predict_ns(const CalibrationResult& cal,
                                     double flops, double bytes) {
  double ns = 0.0;
  if (cal.gemm_flops_per_ns > 0.0) ns += flops / cal.gemm_flops_per_ns;
  if (cal.mem_bytes_per_ns > 0.0) ns += bytes / cal.mem_bytes_per_ns;
  return ns;
}

double KernelCalibration::predict_ns(double flops, double bytes) {
  return predict_ns(active(), flops, bytes);
}

}  // namespace pipemare::tensor::kernels
