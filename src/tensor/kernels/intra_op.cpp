#include "src/tensor/kernels/intra_op.h"

#include <cstdint>
#include <memory>

#include "src/sched/worker_pool.h"
#include "src/tensor/kernels/registry.h"

namespace pipemare::tensor::kernels {

namespace {

/// K-lane fork/join pool: K-1 helper threads from a sched::WorkerPool
/// plus the caller as lane 0. The slice function is published as a plain
/// member under WorkerPool's generation-barrier memory contract (owner
/// writes before begin_generation are visible to every body; body writes
/// are visible after wait_generation), so no extra synchronization is
/// needed — same single-writer pattern the pipeline engines use.
class LanePool {
 public:
  explicit LanePool(int lanes)
      : lanes_(lanes),
        pool_(lanes - 1, [this](int worker) { (*fn_)(worker + 1, lanes_); }) {}

  int lanes() const { return lanes_; }

  void run(const std::function<void(int lane, int lanes)>& fn) {
    fn_ = &fn;
    pool_.begin_generation();
    fn(0, lanes_);
    pool_.wait_generation();
  }

 private:
  int lanes_;
  const std::function<void(int, int)>* fn_ = nullptr;
  sched::WorkerPool pool_;
};

}  // namespace

void parallel_rows(int m, double flops,
                   const std::function<void(int i0, int i1)>& fn) {
  int lanes = KernelRegistry::lanes();
  if (lanes > m) lanes = m;
  if (lanes <= 1 ||
      flops < static_cast<double>(KernelRegistry::intra_op_min_flops())) {
    fn(0, m);
    return;
  }

  // One pool per calling thread: stage workers never contend on a shared
  // pool, and the helper threads die with their owner thread.
  thread_local std::unique_ptr<LanePool> pool;
  if (!pool || pool->lanes() != lanes) {
    pool = std::make_unique<LanePool>(lanes);
  }

  pool->run([m, &fn](int lane, int total) {
    auto rows = static_cast<std::int64_t>(m);
    int i0 = static_cast<int>(rows * lane / total);
    int i1 = static_cast<int>(rows * (lane + 1) / total);
    if (i0 < i1) fn(i0, i1);
  });
}

}  // namespace pipemare::tensor::kernels
