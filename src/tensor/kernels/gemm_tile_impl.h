// Register-blocked GEMM micro-kernels, included by BOTH gemm_tiled.cpp
// (baseline ISA) and gemm_tiled_avx2.cpp (-mavx2). Everything lives in an
// anonymous namespace ON PURPOSE: each including TU gets its own
// internal-linkage copy compiled for its own ISA. With ordinary `inline`
// linkage the linker would keep one arbitrary copy (ODR merge) and the
// baseline build could silently run AVX2 code — or vice versa.
//
// Bitwise contract (the repo's core invariant): every C element is
// produced by ONE accumulator that receives its k addends in ascending-p
// order, exactly like the naive kernels. m/n tiling, row-range splits and
// the MR×NR register block only change WHICH independent accumulators a
// vector lane owns, never the order within one — so results are
// bit-identical to naive on any ISA (no FMA; see gemm_tiled.h).
//
// Tile shape: MR=4 rows × NR=16 columns (two AVX2 vectors) measured best
// on this generation of x86 cores — the 4×16 accumulator block fits the
// 16 ymm registers with room for the A broadcast, and the k×NR panel of B
// walked by the inner loop stays L1-resident.

#include <algorithm>
#include <cstddef>

#include "src/tensor/kernels/simd.h"

namespace {

constexpr int kMr = 4;
constexpr int kNr = 16;

// Full MR×NR tile: constant trip counts let the compiler keep acc[][] in
// registers. `a` is pre-offset to the tile's first row; `b`/`c` to the
// tile's first column.
void micro_full(const float* a, std::size_t a_row_stride,
                std::size_t a_p_stride, const float* b, std::size_t ldb,
                float* c, std::size_t ldc, int k) {
  float acc[kMr][kNr] = {};
  for (int p = 0; p < k; ++p) {
    const float* brow = b + static_cast<std::size_t>(p) * ldb;
    for (int r = 0; r < kMr; ++r) {
      float av = a[static_cast<std::size_t>(r) * a_row_stride +
                   static_cast<std::size_t>(p) * a_p_stride];
      PIPEMARE_SIMD
      for (int j = 0; j < kNr; ++j) acc[r][j] += av * brow[j];
    }
  }
  for (int r = 0; r < kMr; ++r)
    for (int j = 0; j < kNr; ++j) c[static_cast<std::size_t>(r) * ldc + j] = acc[r][j];
}

// Partial tile at the m/n edges: same accumulation, variable bounds.
void micro_edge(const float* a, std::size_t a_row_stride,
                std::size_t a_p_stride, const float* b, std::size_t ldb,
                float* c, std::size_t ldc, int k, int mr, int nr) {
  float acc[kMr][kNr] = {};
  for (int p = 0; p < k; ++p) {
    const float* brow = b + static_cast<std::size_t>(p) * ldb;
    for (int r = 0; r < mr; ++r) {
      float av = a[static_cast<std::size_t>(r) * a_row_stride +
                   static_cast<std::size_t>(p) * a_p_stride];
      PIPEMARE_SIMD
      for (int j = 0; j < nr; ++j) acc[r][j] += av * brow[j];
    }
  }
  for (int r = 0; r < mr; ++r)
    for (int j = 0; j < nr; ++j) c[static_cast<std::size_t>(r) * ldc + j] = acc[r][j];
}

void tiled_gemm_rows(const float* a, std::size_t a_row_stride,
                     std::size_t a_p_stride, const float* b, float* c, int i0,
                     int i1, int k, int n) {
  // NR-column panels outermost: the k×NR slab of B a panel reads stays
  // L1-hot across every MR-row block underneath it.
  for (int j0 = 0; j0 < n; j0 += kNr) {
    int nr = std::min(kNr, n - j0);
    for (int r0 = i0; r0 < i1; r0 += kMr) {
      int mr = std::min(kMr, i1 - r0);
      const float* at = a + static_cast<std::size_t>(r0) * a_row_stride;
      const float* bt = b + j0;
      float* ct = c + static_cast<std::size_t>(r0) * n + j0;
      if (mr == kMr && nr == kNr) {
        micro_full(at, a_row_stride, a_p_stride, bt, n, ct, n, k);
      } else {
        micro_edge(at, a_row_stride, a_p_stride, bt, n, ct, n, k, mr, nr);
      }
    }
  }
}

void tiled_gemm_nt_rows(const float* a, const float* b, float* c, int i0,
                        int i1, int k, int n) {
  for (int i = i0; i < i1; ++i) {
    const float* arow = a + static_cast<std::size_t>(i) * k;
    float* crow = c + static_cast<std::size_t>(i) * n;
    for (int j = 0; j < n; ++j) {
      const float* brow = b + static_cast<std::size_t>(j) * k;
      float s = 0.0F;
      // Sequential dot — a SIMD reduction would reassociate and break
      // bitwise parity with naive.
      for (int p = 0; p < k; ++p) s += arow[p] * brow[p];
      crow[j] = s;
    }
  }
}

constexpr int kTransposeBlock = 32;

void tiled_transpose2d(const float* a, float* t, int m, int n) {
  for (int i0 = 0; i0 < m; i0 += kTransposeBlock) {
    int i1 = std::min(i0 + kTransposeBlock, m);
    for (int j0 = 0; j0 < n; j0 += kTransposeBlock) {
      int j1 = std::min(j0 + kTransposeBlock, n);
      for (int i = i0; i < i1; ++i) {
        const float* ar = a + static_cast<std::size_t>(i) * n;
        for (int j = j0; j < j1; ++j)
          t[static_cast<std::size_t>(j) * m + i] = ar[j];
      }
    }
  }
}

}  // namespace
