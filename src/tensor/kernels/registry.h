#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

namespace pipemare::tensor::kernels {

/// Which kernel backend the tensor ops dispatch to.
///
/// `naive` is the original scalar code (the oracle); `tiled` is the
/// register-blocked + SIMD path. Both produce bitwise-identical results —
/// the tiled kernels preserve the exact per-output-element k-accumulation
/// order — so the choice is pure performance, never semantics, and the
/// repo's sequential-parity invariant holds under either.
enum class KernelKind { naive, tiled };

/// Raw-pointer kernel table: one entry per dispatched op. The `tensor::ops`
/// wrappers keep all shape checking and Tensor allocation; table entries
/// see validated pointers only. GEMM outputs are written assuming `c` is
/// zero-initialized (Tensor allocation guarantees it).
struct KernelTable {
  const char* name;

  /// C[m,n] = A[m,k] * B[k,n].
  void (*gemm_nn)(const float* a, const float* b, float* c, int m, int k,
                  int n);
  /// C[m,n] = A[k,m]^T * B[k,n].
  void (*gemm_tn)(const float* a, const float* b, float* c, int m, int k,
                  int n);
  /// C[m,n] = A[m,k] * B[n,k]^T.
  void (*gemm_nt)(const float* a, const float* b, float* c, int m, int k,
                  int n);
  /// C[m,n] = A[m,k] * B[n,k]^T + bias[n] (broadcast over rows), then
  /// optionally ReLU — the fused Linear-forward epilogue.
  void (*gemm_nt_bias)(const float* a, const float* b, const float* bias,
                       float* c, int m, int k, int n, bool relu);

  /// T[n,m] = A[m,n]^T.
  void (*transpose2d)(const float* a, float* t, int m, int n);

  /// a[i] += s * b[i].
  void (*axpy)(float* a, const float* b, float s, std::int64_t count);
  /// a[i] *= b[i].
  void (*mul_inplace)(float* a, const float* b, std::int64_t count);
  /// a[i] *= s.
  void (*scale_inplace)(float* a, float s, std::int64_t count);
  /// a[r*n + j] += b[j] for every row r.
  void (*add_row_inplace)(float* a, const float* b, std::int64_t rows, int n);
  /// a[i] = max(0, a[i]).
  void (*relu_inplace)(float* a, std::int64_t count);
  /// dx[i] = 0 where a[i] <= 0 (dx pre-loaded with dy).
  void (*relu_backward)(float* dx, const float* a, std::int64_t count);

  /// Row-wise stable softmax / log-softmax of a[m,n] into out[m,n].
  void (*softmax_rows)(const float* a, float* out, int m, int n);
  void (*log_softmax_rows)(const float* a, float* out, int m, int n);
};

/// Process-wide kernel selection, initialized once from the environment
/// (PIPEMARE_KERNELS=naive|tiled, PIPEMARE_KERNEL_LANES=<int>,
/// PIPEMARE_KERNEL_MIN_FLOPS=<int>) on first use and overridable at
/// startup via `--kernels=` / `--kernel-lanes=` (core::parse_backend_cli).
///
/// Selection is a single atomic pointer swap: changing the kind mid-run is
/// safe (ops dispatch through one load), though the supported pattern is
/// set-at-startup. Intra-op lanes default to 1 (off); when set > 1, wide
/// GEMMs whose FLOP count exceeds intra_op_min_flops() split their m
/// dimension across a per-thread lane pool nested under sched::WorkerPool.
class KernelRegistry {
 public:
  static KernelKind kind();
  static void set_kind(KernelKind k);

  /// Active table (the one `tensor::ops` dispatches to).
  static const KernelTable& table();
  /// Specific table, independent of the active kind — lets tests and
  /// benches run naive-as-oracle against tiled without flipping state.
  static const KernelTable& table(KernelKind k);

  static std::string_view kind_name(KernelKind k);
  /// Active kind's name ("naive" / "tiled").
  static std::string_view name();
  static std::optional<KernelKind> parse(std::string_view s);

  /// Intra-op lane count (1 = off). Clamped to [1, 16].
  static int lanes();
  static void set_lanes(int lanes);

  /// Minimum per-GEMM FLOP count before the lane split engages; below it
  /// the fork/join barrier costs more than it buys.
  static std::int64_t intra_op_min_flops();
  static void set_intra_op_min_flops(std::int64_t flops);

  /// True when the build had -fopenmp-simd (PIPEMARE_SIMD pragmas active).
  static bool simd_compiled();
  /// ISA the tiled GEMM dispatches to on this machine: "avx2" or "base".
  static std::string_view tiled_isa();
};

}  // namespace pipemare::tensor::kernels
