// Baseline-ISA instantiation of the tiled GEMM micro-kernels, plus the
// runtime ISA dispatch. See gemm_tile_impl.h for the tiling scheme and
// gemm_tiled.h for why AVX2 is compiled without FMA.
#include "src/tensor/kernels/gemm_tiled.h"

#include "src/tensor/kernels/gemm_tile_impl.h"

namespace pipemare::tensor::kernels {

const TiledFns* tiled_fns_base() {
  static const TiledFns fns{tiled_gemm_rows, tiled_gemm_nt_rows,
                            tiled_transpose2d};
  return &fns;
}

namespace {

const TiledFns* select_fns() {
#if defined(__x86_64__) || defined(__i386__)
  const TiledFns* avx2 = tiled_fns_avx2();
  if (avx2 != nullptr && __builtin_cpu_supports("avx2")) return avx2;
#endif
  return tiled_fns_base();
}

}  // namespace

const TiledFns* tiled_fns() {
  static const TiledFns* best = select_fns();
  return best;
}

const char* tiled_fns_isa() {
  return tiled_fns() == tiled_fns_avx2() ? "avx2" : "base";
}

}  // namespace pipemare::tensor::kernels
