// AVX2 instantiation of the tiled GEMM micro-kernels. CMake compiles this
// one TU with `-mavx2` (no `-mfma` — separate mul+add rounds like scalar,
// keeping results bitwise-equal to naive) and defines PIPEMARE_KERNEL_AVX2
// when the compiler supports the flag; gemm_tiled.cpp selects this
// instantiation at runtime only on CPUs that report AVX2, so the binary
// still runs on baseline x86-64.
#include "src/tensor/kernels/gemm_tiled.h"

#if defined(PIPEMARE_KERNEL_AVX2)

#include "src/tensor/kernels/gemm_tile_impl.h"

namespace pipemare::tensor::kernels {

const TiledFns* tiled_fns_avx2() {
  static const TiledFns fns{tiled_gemm_rows, tiled_gemm_nt_rows,
                            tiled_transpose2d};
  return &fns;
}

}  // namespace pipemare::tensor::kernels

#else  // !PIPEMARE_KERNEL_AVX2

namespace pipemare::tensor::kernels {

const TiledFns* tiled_fns_avx2() { return nullptr; }

}  // namespace pipemare::tensor::kernels

#endif
