#pragma once

#include <functional>

namespace pipemare::tensor::kernels {

/// Intra-op parallelism: splits the rows [0, m) of a GEMM output into
/// contiguous per-lane ranges and runs `fn(i0, i1)` on each lane, lane 0
/// on the calling thread. The lane count comes from
/// KernelRegistry::lanes(); the split engages only when lanes > 1 AND the
/// op's FLOP count clears KernelRegistry::intra_op_min_flops() — below
/// that the fork/join barrier costs more than it buys — otherwise fn runs
/// inline as fn(0, m).
///
/// Helper lanes live in a thread_local pool nested under
/// sched::WorkerPool, so a pipeline engine's W stage workers compose with
/// K lanes (W×K threads) without sharing any lane state across stages.
/// Row ranges are disjoint and every output element keeps its sequential
/// accumulation order, so any lane count produces bitwise-identical
/// results.
void parallel_rows(int m, double flops,
                   const std::function<void(int i0, int i1)>& fn);

}  // namespace pipemare::tensor::kernels
