#pragma once

#include "src/tensor/kernels/registry.h"

namespace pipemare::tensor::kernels {

/// The original scalar kernels from pre-registry tensor/ops.cpp, kept
/// verbatim as the bitwise oracle every other backend is tested against.
/// One deliberate change: the old `if (av == 0.0F) continue;` fast path in
/// gemm_nn/gemm_tn is gone — skipping the multiply dropped NaN/Inf
/// propagation from B wherever A held an exact zero (0 * Inf must be NaN),
/// so a diverged run could masquerade as healthy. The branch also cost
/// more than it saved in the hot loop.
const KernelTable& naive_table();

}  // namespace pipemare::tensor::kernels
