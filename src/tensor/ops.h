#pragma once

#include "src/tensor/tensor.h"

namespace pipemare::tensor {

// All ops below dispatch through kernels::KernelRegistry (naive oracle vs
// tiled+SIMD; see src/tensor/kernels/) — every backend produces bitwise-
// identical results, so callers never observe the selection.

// ---- BLAS-like kernels (row-major) -----------------------------------------

/// C[m,n] = A[m,k] * B[k,n].
Tensor matmul(const Tensor& a, const Tensor& b);

/// C[m,n] = A[k,m]^T * B[k,n] (transpose-first matmul, used in backward).
Tensor matmul_tn(const Tensor& a, const Tensor& b);

/// C[m,n] = A[m,k] * B[n,k]^T (transpose-second matmul, used in backward).
Tensor matmul_nt(const Tensor& a, const Tensor& b);

/// C[m,n] = A[m,k] * B[n,k]^T + bias[n] broadcast over rows — the fused
/// Linear/Conv/attention-projection forward (one pass over C instead of a
/// GEMM pass plus an add_row_inplace pass). Bitwise-equal to the unfused
/// sequence.
Tensor matmul_nt_bias(const Tensor& a, const Tensor& b,
                      std::span<const float> bias);

/// matmul_nt_bias followed by ReLU in the same pass — the epilogue hook
/// for fusing a Linear+ReLU pair. Bitwise-equal to matmul_nt_bias + relu.
Tensor matmul_nt_bias_relu(const Tensor& a, const Tensor& b,
                           std::span<const float> bias);

/// B[n,m] = A[m,n]^T.
Tensor transpose2d(const Tensor& a);

// ---- Elementwise ------------------------------------------------------------

Tensor add(const Tensor& a, const Tensor& b);
Tensor sub(const Tensor& a, const Tensor& b);
Tensor mul(const Tensor& a, const Tensor& b);
Tensor scale(const Tensor& a, float s);

/// a += s * b (axpy); shapes must match.
void add_inplace(Tensor& a, const Tensor& b, float s = 1.0F);

/// Adds a row vector b[n] to every row of a[m,n].
void add_row_inplace(Tensor& a, std::span<const float> b);

Tensor relu(const Tensor& a);
/// dx = dy where a > 0 else 0 (a is the forward *input*).
Tensor relu_backward(const Tensor& dy, const Tensor& a);

// ---- Reductions and softmax -------------------------------------------------

/// Numerically stable softmax over the last dimension of a 2-D tensor.
Tensor softmax_rows(const Tensor& a);

/// Numerically stable log-softmax over the last dimension of a 2-D tensor.
Tensor log_softmax_rows(const Tensor& a);

/// Sum over all elements.
double sum(const Tensor& a);

/// Column sums of a 2-D tensor: out[n] = sum_m a[m,n]; accumulated into
/// `out` (must have size n).
void col_sum_accumulate(const Tensor& a, std::span<float> out);

/// Mean squared difference between two tensors of identical shape.
double mse(const Tensor& a, const Tensor& b);

}  // namespace pipemare::tensor
