#include "src/hogwild/threaded_hogwild.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "src/obs/trace.h"
#include "src/pipeline/weight_versions.h"
#include "src/util/stats.h"

namespace pipemare::hogwild {

namespace {

using Clock = std::chrono::steady_clock;
using util::ns_between;

int resolve_worker_count(const HogwildConfig& cfg) {
  if (cfg.num_workers > 0) return cfg.num_workers;
  auto cores = static_cast<int>(std::thread::hardware_concurrency());
  if (cores <= 0) cores = 2;
  return std::max(1, std::min(cores, cfg.num_microbatches));
}

}  // namespace

ThreadedHogwildEngine::ThreadedHogwildEngine(const nn::Model& model, HogwildConfig cfg,
                                             std::uint64_t seed)
    : model_(model),
      cfg_(std::move(cfg)),
      partition_((validate_config(cfg_),
                  pipeline::make_partition(model, cfg_.num_stages, cfg_.split_bias,
                                           cfg_.partition))),
      mean_delay_(resolve_mean_delay(cfg_)),
      delay_rng_(seed ^ 0x9e3779b97f4a7c15ULL),
      // Forward lane as a plain multi-consumer work queue: items are bare
      // microbatch indices (inputs stay with the caller), so the lane
      // capacity is a queue depth, not an activation-memory bound; credit
      // gating is a single-consumer protocol and stays disabled.
      work_(static_cast<std::size_t>(cfg_.num_microbatches),
            pipeline::StageMailbox::kUnboundedCredits) {
  // The probe microbatch is consumed by make_partition above; don't keep
  // its tensors alive for the whole engine lifetime.
  cfg_.partition.probe.reset();
  for (int m = 0; m < model_.num_modules(); ++m) {
    if (model_.module(m).stateful_forward()) {
      throw std::invalid_argument(
          "ThreadedHogwildEngine: module '" + model_.module(m).name() +
          "' mutates state in forward (stateful_forward); concurrent "
          "whole-model replicas would race on it. Use HogwildEngine or the "
          "stage-partitioned ThreadedEngine instead.");
    }
  }

  live_.assign(static_cast<std::size_t>(model.param_count()), 0.0F);
  util::Rng init_rng(seed);
  model_.init_params(live_, init_rng);
  grads_.assign(live_.size(), 0.0F);
  history_depth_ = static_cast<int>(std::ceil(cfg_.max_delay)) + 2;
  history_.assign(static_cast<std::size_t>(history_depth_), {});
  history_[0] = live_;
  unit_version_.assign(static_cast<std::size_t>(partition_.num_units()), 0);
  staleness_ = pipeline::staleness_histograms(cfg_.num_stages);

  int w = resolve_worker_count(cfg_);
  stats_.assign(static_cast<std::size_t>(w), pipeline::StageStats{});
  workers_.reserve(static_cast<std::size_t>(w));
  try {
    for (int i = 0; i < w; ++i) {
      workers_.emplace_back([this, i] { worker_loop(i); });
    }
  } catch (...) {
    // Same partial-spawn recovery as ThreadedEngine: join what started so
    // destroying joinable std::threads does not std::terminate.
    {
      util::MutexLock lock(ctrl_m_);
      shutdown_ = true;
    }
    ctrl_go_.notify_all();
    for (auto& worker : workers_) worker.join();
    throw;
  }
}

ThreadedHogwildEngine::~ThreadedHogwildEngine() {
  {
    util::MutexLock lock(ctrl_m_);
    shutdown_ = true;
  }
  ctrl_go_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadedHogwildEngine::record_failure(const char* what) {
  bool expected = false;
  if (mb_failed_.compare_exchange_strong(expected, true)) {
    util::MutexLock lock(ctrl_m_);
    mb_error_ = what;
  }
}

void ThreadedHogwildEngine::assemble_delayed_weights(std::vector<float>& w) const {
  if (method_ == pipeline::Method::Sync) {
    std::copy(live_.begin(), live_.end(), w.begin());
    return;
  }
  for (int u = 0; u < partition_.num_units(); ++u) {
    const nn::WeightUnit& unit = partition_.units[static_cast<std::size_t>(u)];
    std::int64_t v = unit_version_[static_cast<std::size_t>(u)];
    const auto slot = static_cast<std::size_t>(v % history_depth_);
    // Seqlock read: retry until the copy happened entirely inside one
    // stable (even) epoch. Commits are barrier-ordered before worker
    // reads today, so this never spins and the barrier (not the epoch)
    // provides the happens-before; a true free-running mode must also
    // make the slot bytes themselves race-free (see the class comment).
    for (;;) {
      std::uint64_t e1 = epoch_.load(std::memory_order_acquire);
      if (e1 & 1U) continue;  // writer active
      const auto& src = history_[slot];
      std::copy(src.begin() + unit.offset, src.begin() + unit.offset + unit.size,
                w.begin() + unit.offset);
      std::atomic_thread_fence(std::memory_order_acquire);
      if (epoch_.load(std::memory_order_relaxed) == e1) break;
    }
  }
}

void ThreadedHogwildEngine::process_micro(int micro, std::vector<float>& w,
                                          bool& w_ready) {
  if (mb_failed_.load(std::memory_order_relaxed)) return;
  try {
    if (!w_ready) {
      // One delayed-weight view per worker per step: every worker builds
      // the identical bytes (the trainer thread sampled the versions), so
      // microbatch->worker assignment cannot change any result.
      assemble_delayed_weights(w);
      w_ready = true;
    }
    auto idx = static_cast<std::size_t>(micro);
    nn::Flow input = (*mb_inputs_)[idx];
    input.training = true;
    input.micro = micro;
    input.step = step_;
    nn::Flow out = model_.forward(std::move(input), w, caches_[idx]);
    auto lr = mb_head_->forward_backward(out.x, (*mb_targets_)[idx]);
    micro_loss_[idx] = lr.loss;
    micro_correct_[idx] = lr.correct;
    micro_count_[idx] = lr.count;
    if (!std::isfinite(lr.loss)) return;  // gradients unspecified past here
    std::vector<float>& g = micro_grads_[idx];
    g.assign(live_.size(), 0.0F);
    nn::Flow dflow;
    dflow.x = std::move(lr.doutput);
    (void)model_.backward(std::move(dflow), w, caches_[idx], g);
  } catch (const std::exception& e) {
    record_failure(e.what());
  }
}

void ThreadedHogwildEngine::worker_loop(int worker) {
  std::vector<float> w(live_.size());
  pipeline::StageStats& stats = stats_[static_cast<std::size_t>(worker)];
  std::uint64_t seen = 0;
  for (;;) {
    {
      util::MutexLock lock(ctrl_m_);
      while (!shutdown_ && generation_ <= seen) ctrl_go_.wait(ctrl_m_);
      if (shutdown_) return;
      seen = generation_;
    }
    if (obs::TraceRecorder::instance().enabled()) {
      obs::TraceRecorder::instance().set_thread_name("hogwild-worker-" +
                                                     std::to_string(worker));
    }
    bool w_ready = false;
    for (;;) {
      // Pop wait measures in-minibatch starvation only (the wait for the
      // next generation is between-minibatch idle, not queue contention).
      auto t_pop = Clock::now();
      pipeline::StageItem item;
      {
        obs::Span bubble("pop_wait", "hogwild", -1, -1, step_);
        item = work_.pop();
      }
      stats.pop_wait_ns += ns_between(t_pop, Clock::now());
      if (item.micro < 0) break;  // one sentinel per worker per minibatch
      auto t0 = Clock::now();
      {
        obs::Span span("micro", "hogwild", -1, item.micro, step_);
        process_micro(item.micro, w, w_ready);
      }
      stats.busy_ns += ns_between(t0, Clock::now());
      ++stats.items;
    }
    {
      util::MutexLock lock(ctrl_m_);
      ++done_count_;
    }
    ctrl_done_.notify_one();
  }
}

ThreadedHogwildEngine::StepResult ThreadedHogwildEngine::forward_backward(
    const std::vector<nn::Flow>& micro_inputs,
    const std::vector<tensor::Tensor>& micro_targets, const nn::LossHead& head) {
  auto n = static_cast<int>(micro_inputs.size());
  if (n == 0 || micro_targets.size() != micro_inputs.size()) {
    throw std::invalid_argument("ThreadedHogwildEngine: bad microbatch vectors");
  }
  auto un = static_cast<std::size_t>(n);
  micro_loss_.assign(un, 0.0);
  micro_correct_.assign(un, 0.0);
  micro_count_.assign(un, 0.0);
  if (micro_grads_.size() < un) micro_grads_.resize(un);
  if (caches_.size() < un) caches_.resize(un);
  for (auto& c : caches_) {
    if (static_cast<int>(c.size()) != model_.num_modules()) c = model_.make_caches();
  }

  // Sample this step's per-unit weight versions on the trainer thread —
  // the same draws, in the same order, as HogwildEngine (eq. 17: a
  // stage's forward and backward share one delayed version).
  if (method_ != pipeline::Method::Sync) {
    for (int u = 0; u < partition_.num_units(); ++u) {
      int stage = partition_.unit_stage[static_cast<std::size_t>(u)];
      double mean = mean_delay_[static_cast<std::size_t>(stage)];
      auto delay = static_cast<std::int64_t>(
          std::llround(delay_rng_.truncated_exponential(mean, cfg_.max_delay)));
      std::int64_t v = std::max<std::int64_t>(0, step_ - delay);
      unit_version_[static_cast<std::size_t>(u)] = v;
      // Observed tau, clamped while step_ < delay — same recording point
      // as HogwildEngine so the two backends' histograms are comparable.
      staleness_[static_cast<std::size_t>(stage)]->observe(
          static_cast<double>(step_ - v));
    }
  }

  {
    util::MutexLock lock(ctrl_m_);
    mb_inputs_ = &micro_inputs;
    mb_targets_ = &micro_targets;
    mb_head_ = &head;
    mb_failed_.store(false);
    mb_error_.clear();
    done_count_ = 0;
    ++generation_;
  }
  ctrl_go_.notify_all();
  for (int m = 0; m < n; ++m) {
    work_.push_forward({pipeline::StageItem::Kind::Forward, m, {}});
  }
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    work_.push_forward({pipeline::StageItem::Kind::Forward, -1, {}});
  }
  {
    util::MutexLock lock(ctrl_m_);
    while (done_count_ != static_cast<int>(workers_.size())) ctrl_done_.wait(ctrl_m_);
    mb_inputs_ = nullptr;
    mb_targets_ = nullptr;
    mb_head_ = nullptr;
    if (mb_failed_.load()) {
      throw std::runtime_error("ThreadedHogwildEngine worker failed: " + mb_error_);
    }
  }

  // Deterministic merge in microbatch order, matching the sequential
  // engine's accumulation (and the unified non-finite contract).
  StepResult result;
  for (int m = 0; m < n; ++m) {
    double loss = micro_loss_[static_cast<std::size_t>(m)];
    if (!std::isfinite(loss)) {
      result.finite = false;
      result.loss = loss;
      result.correct = 0.0;
      result.count = 0.0;
      return result;
    }
    result.loss += loss / n;
    result.correct += micro_correct_[static_cast<std::size_t>(m)];
    result.count += micro_count_[static_cast<std::size_t>(m)];
  }
  std::fill(grads_.begin(), grads_.end(), 0.0F);
  for (int m = 0; m < n; ++m) {
    const std::vector<float>& g = micro_grads_[static_cast<std::size_t>(m)];
    for (std::size_t i = 0; i < grads_.size(); ++i) grads_[i] += g[i];
  }
  auto inv_n = 1.0F / static_cast<float>(n);
  for (float& g : grads_) {
    g *= inv_n;
    if (!std::isfinite(g)) result.finite = false;
  }
  return result;
}

void ThreadedHogwildEngine::commit_update() {
  ++step_;
  // Seqlock write: odd epoch while the ring slot is inconsistent.
  epoch_.fetch_add(1, std::memory_order_acq_rel);
  history_[static_cast<std::size_t>(step_ % history_depth_)] = live_;
  epoch_.fetch_add(1, std::memory_order_release);
}

std::vector<optim::LrSegment> ThreadedHogwildEngine::lr_segments(
    double base_lr, std::span<const double> scales) const {
  return pipeline::stage_lr_segments(partition_, base_lr, scales);
}

}  // namespace pipemare::hogwild
