#pragma once

#include <cstdint>
#include <vector>

#include "src/nn/heads.h"
#include "src/nn/model.h"
#include "src/obs/metrics.h"
#include "src/optim/optimizer.h"
#include "src/pipeline/engine.h"
#include "src/pipeline/partition.h"
#include "src/util/rng.h"

namespace pipemare::hogwild {

/// Hogwild!-style stochastic asynchrony (Appendix E): each stage's
/// gradient is computed entirely on a *randomly* delayed weight version,
///   w_{i,t+1} = w_{i,t} - alpha [grad f_{t - tau_i}(w_{t - tau_i})]_i,
/// with tau_i drawn per step from a truncated exponential distribution
/// (the maximum-entropy delay model of Mitliagkas et al.). Stages have
/// different delay expectations, mirroring the pipeline's stage-dependent
/// delay profile.
struct HogwildConfig {
  int num_stages = 1;
  int num_microbatches = 1;
  bool split_bias = false;
  pipeline::PartitionSpec partition;    ///< stage-partitioning strategy
  double max_delay = 16.0;              ///< truncation bound (>= 0)
  std::vector<double> mean_delay;       ///< per-stage expectation; empty =>
                                        ///< PipeMare-profile (2(P-i)+1)/N
  int num_workers = 0;                  ///< threaded backend only: worker
                                        ///< threads; 0 = min(cores, N)
};

/// Validates a HogwildConfig the way the pipeline engines validate theirs:
/// num_stages >= 1, num_microbatches >= 1, max_delay finite and >= 0,
/// mean_delay empty or of size num_stages, num_workers >= 0. Throws
/// std::invalid_argument. Shared by HogwildEngine and ThreadedHogwildEngine.
void validate_config(const HogwildConfig& cfg);

/// The per-stage delay expectations the config implies: `mean_delay` when
/// given, otherwise the pipeline profile (2(P-i)+1)/N of Appendix E.
/// Assumes a validated config.
std::vector<double> resolve_mean_delay(const HogwildConfig& cfg);

/// Builds a HogwildConfig from the shared pipeline EngineConfig (stages /
/// microbatches / split_bias) plus the Hogwild-specific knobs. This is the
/// single translation point the BackendRegistry factories use — previously
/// the fields were hand-copied inside core::train. Pair with
/// validate_config, the single validation path for both Hogwild engines.
HogwildConfig from_engine_config(const pipeline::EngineConfig& engine,
                                 double max_delay, int num_workers,
                                 std::vector<double> mean_delay = {});

/// Drop-in execution engine with the same surface the core::train_loop
/// template expects, so Hogwild training reuses the full T1 trainer.
/// Registered with the core::BackendRegistry as "hogwild".
class HogwildEngine {
 public:
  HogwildEngine(const nn::Model& model, HogwildConfig cfg, std::uint64_t seed);

  using StepResult = pipeline::PipelineEngine::StepResult;

  StepResult forward_backward(const std::vector<nn::Flow>& micro_inputs,
                              const std::vector<tensor::Tensor>& micro_targets,
                              const nn::LossHead& head);

  std::span<float> weights() { return live_; }
  std::span<const float> weights() const { return live_; }
  std::span<float> gradients() { return grads_; }
  void commit_update();

  /// Sync disables the random delays (used for T3 warmup comparisons).
  void set_method(pipeline::Method m) { method_ = m; }
  pipeline::Method method() const { return method_; }

  const nn::Model& model() const { return model_; }
  const pipeline::Partition& partition() const { return partition_; }

  /// Per-stage delay expectations (what T1 divides by).
  std::vector<double> stage_tau_fwd() const { return mean_delay_; }

  std::vector<optim::LrSegment> lr_segments(double base_lr,
                                            std::span<const double> scales) const;

 private:
  const nn::Model& model_;
  HogwildConfig cfg_;
  pipeline::Partition partition_;
  pipeline::Method method_ = pipeline::Method::PipeMare;
  std::vector<double> mean_delay_;

  std::int64_t step_ = 0;
  int history_depth_ = 1;
  std::vector<std::vector<float>> history_;
  std::vector<float> live_;
  std::vector<float> grads_;
  util::Rng delay_rng_;
  /// "train.staleness.stage<k>": observed sampled delay per stage — the
  /// same metric family every other backend records through
  /// pipeline::staleness_histograms (registry-owned pointers).
  std::vector<obs::Histogram*> staleness_;
};

}  // namespace pipemare::hogwild
