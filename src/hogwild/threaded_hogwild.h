#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/hogwild/hogwild.h"
#include "src/nn/heads.h"
#include "src/nn/model.h"
#include "src/optim/optimizer.h"
#include "src/pipeline/engine.h"
#include "src/pipeline/partition.h"
#include "src/pipeline/stage_mailbox.h"
#include "src/pipeline/stage_stats.h"
#include "src/util/rng.h"
#include "src/util/sync.h"

namespace pipemare::hogwild {

/// Multithreaded Hogwild! backend (Appendix E): W free-running worker
/// threads execute the minibatch's microbatches concurrently, each reading
/// lock-free against the shared `live_` vector / per-stage delayed weight
/// snapshots and writing its results into per-microbatch slots.
///
/// Work distribution reuses the pipeline's StageMailbox (forward lane as a
/// multi-consumer work queue; credits disabled — credit accounting is a
/// single-consumer protocol). Delayed snapshots are served from the same
/// bounded version-history ring HogwildEngine keeps, behind a seqlock-style
/// epoch: `commit_update` brackets its history write with epoch increments
/// (odd = writer active) and snapshot readers retry until they observe a
/// stable even epoch. Within the current trainer the generation barrier
/// orders commits strictly before worker reads — that barrier, not the
/// epoch, is what makes the reads race-free (and what ThreadSanitizer
/// verifies). The epoch is a protocol sketch for future free-running
/// (commit-while-reading) modes; enabling those additionally requires
/// race-free slot storage (atomic data words or swapped version buffers),
/// since a retried plain-copy of bytes a writer is mutating is still a
/// data race. Each worker assembles its own snapshot view (rather than
/// sharing one trainer-built buffer, which the barrier would permit)
/// precisely to keep that read path in place.
///
/// Determinism: the per-step stage delays are sampled once on the trainer
/// thread from the same RNG stream HogwildEngine uses, every worker
/// assembles the identical delayed weight view from them, and losses /
/// gradients are written to per-microbatch slots merged in microbatch
/// order — so the engine is *bitwise reproducible run-to-run* regardless
/// of thread timing, and matches the sequential HogwildEngine exactly up
/// to floating-point reassociation across microbatch boundaries in the
/// gradient sum (modules that accumulate a gradient index more than once
/// per backward — bias columns, convolutions — see a different addition
/// order; losses and weight views are otherwise identical). Tests assert
/// run-to-run bitwise equality and sequential parity to tight tolerance.
/// The one restriction: models whose modules mutate internal state in
/// `forward` (Module::stateful_forward) are rejected, since whole-model
/// replicas would race on that state. No in-tree module trips it anymore:
/// Dropout derives its masks from counter-based streams (pure functions
/// of module seed / step / microbatch / element, stamped on the Flow), so
/// the Transformer analogs run here with masks bitwise-identical to the
/// sequential HogwildEngine's.
///
/// The surface matches the core::train_loop engine concept / the
/// core::ExecutionBackend interface; it is registered with the
/// BackendRegistry as "threaded_hogwild" (selected via
/// TrainerConfig::backend).
class ThreadedHogwildEngine {
 public:
  using StepResult = pipeline::StepResult;

  ThreadedHogwildEngine(const nn::Model& model, HogwildConfig cfg, std::uint64_t seed);
  ~ThreadedHogwildEngine();

  ThreadedHogwildEngine(const ThreadedHogwildEngine&) = delete;
  ThreadedHogwildEngine& operator=(const ThreadedHogwildEngine&) = delete;

  StepResult forward_backward(const std::vector<nn::Flow>& micro_inputs,
                              const std::vector<tensor::Tensor>& micro_targets,
                              const nn::LossHead& head);

  std::span<float> weights() { return live_; }
  std::span<const float> weights() const { return live_; }
  std::span<float> gradients() { return grads_; }

  /// Publishes the mutated live weights as the next delayed version
  /// (seqlock-guarded). Call exactly once after each optimizer step.
  void commit_update();

  /// Sync disables the random delays (used for T3 warmup comparisons).
  void set_method(pipeline::Method m) { method_ = m; }
  pipeline::Method method() const { return method_; }

  const nn::Model& model() const { return model_; }
  const pipeline::Partition& partition() const { return partition_; }
  int num_workers() const { return static_cast<int>(workers_.size()); }

  /// Per-stage delay expectations (what T1 divides by).
  std::vector<double> stage_tau_fwd() const { return mean_delay_; }

  /// Per-*worker* load counters (this backend has no stage workers; its
  /// unit of execution parallelism is the free-running worker thread):
  /// busy_ns = compute of the microbatches the worker processed,
  /// pop_wait_ns = blocked in the work-queue pop (idle/starved), items =
  /// microbatches processed. Cumulative since construction (or the last
  /// reset); the same shape ThreadedEngine reports per stage, so
  /// core::StageLoadObserver samples every multithreaded backend
  /// uniformly. Call between minibatches (the generation barrier orders
  /// worker writes before the read).
  std::vector<pipeline::StageStats> stage_stats() const { return stats_; }
  void reset_stage_stats() { stats_.assign(stats_.size(), pipeline::StageStats{}); }

  std::vector<optim::LrSegment> lr_segments(double base_lr,
                                            std::span<const double> scales) const;

 private:
  void worker_loop(int worker);
  void process_micro(int micro, std::vector<float>& w, bool& w_ready);
  void assemble_delayed_weights(std::vector<float>& w) const;
  void record_failure(const char* what);

  const nn::Model& model_;
  HogwildConfig cfg_;
  pipeline::Partition partition_;
  pipeline::Method method_ = pipeline::Method::PipeMare;
  std::vector<double> mean_delay_;

  // Version-ring-published state (NOT mutex-guarded): step_, history_ and
  // live_ follow the same publication protocol as pipeline::WeightVersions
  // — the trainer thread writes them between minibatches (commit_update)
  // and workers read them inside a minibatch, with the generation barrier
  // providing the happens-before today and the epoch_ seqlock sketched in
  // for the future free-running mode. This unannotated block is exactly
  // the boundary that work moves: relaxing the barrier means making these
  // bytes race-free (atomic words or double-buffered slabs), not adding a
  // lock.
  std::int64_t step_ = 0;
  int history_depth_ = 1;
  std::vector<std::vector<float>> history_;
  std::vector<float> live_;
  std::vector<float> grads_;
  util::Rng delay_rng_;

  /// Seqlock epoch around history_ writes: odd while commit_update is
  /// mutating the ring, even when stable.
  std::atomic<std::uint64_t> epoch_{0};

  /// Per-unit source version for the current step, sampled by the trainer
  /// thread in forward_backward (same draws as HogwildEngine).
  std::vector<std::int64_t> unit_version_;

  /// "train.staleness.stage<k>": observed sampled delay per stage, the
  /// shared cross-backend metric family (pipeline::staleness_histograms).
  std::vector<obs::Histogram*> staleness_;

  // Per-minibatch context; workers read between the go and done barriers.
  // Barrier-published like ThreadedEngine's minibatch block (not
  // GUARDED_BY: the lock-free worker reads are the point; the generation
  // barrier's ctrl_m_ release/acquire pair publishes them).
  pipeline::StageMailbox work_;  ///< forward lane = multi-consumer work queue
  const std::vector<nn::Flow>* mb_inputs_ = nullptr;
  const std::vector<tensor::Tensor>* mb_targets_ = nullptr;
  const nn::LossHead* mb_head_ = nullptr;
  std::vector<double> micro_loss_;
  std::vector<double> micro_correct_;
  std::vector<double> micro_count_;
  std::vector<std::vector<float>> micro_grads_;
  std::vector<std::vector<nn::Cache>> caches_;  ///< per microbatch
  std::atomic<bool> mb_failed_{false};
  std::string mb_error_ GUARDED_BY(ctrl_m_);  ///< first worker exception

  /// Per-worker load counters. Each slot is written only by its worker;
  /// readers run between minibatches, ordered by the completion barrier
  /// (ctrl_m_ release/acquire), so plain fields suffice.
  std::vector<pipeline::StageStats> stats_;

  util::Mutex ctrl_m_;
  util::CondVar ctrl_go_;
  util::CondVar ctrl_done_;
  std::uint64_t generation_ GUARDED_BY(ctrl_m_) = 0;
  int done_count_ GUARDED_BY(ctrl_m_) = 0;
  bool shutdown_ GUARDED_BY(ctrl_m_) = false;
  std::vector<std::thread> workers_;
};

}  // namespace pipemare::hogwild
