#include "src/hogwild/hogwild.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "src/pipeline/weight_versions.h"

namespace pipemare::hogwild {

void validate_config(const HogwildConfig& cfg) {
  if (cfg.num_stages < 1) {
    throw std::invalid_argument("HogwildConfig: num_stages >= 1 required");
  }
  if (cfg.num_microbatches < 1) {
    throw std::invalid_argument("HogwildConfig: num_microbatches >= 1 required");
  }
  if (!std::isfinite(cfg.max_delay) || cfg.max_delay < 0.0) {
    throw std::invalid_argument("HogwildConfig: max_delay must be finite and >= 0");
  }
  if (!cfg.mean_delay.empty() &&
      static_cast<int>(cfg.mean_delay.size()) != cfg.num_stages) {
    throw std::invalid_argument("HogwildConfig: mean_delay size mismatch");
  }
  if (cfg.num_workers < 0) {
    throw std::invalid_argument("HogwildConfig: num_workers >= 0 required");
  }
}

std::vector<double> resolve_mean_delay(const HogwildConfig& cfg) {
  if (!cfg.mean_delay.empty()) return cfg.mean_delay;
  // Default profile: the pipeline's stage-dependent expectations
  // (2(P-i)+1)/N, as used in the paper's Appendix E experiments.
  std::vector<double> mean(static_cast<std::size_t>(cfg.num_stages));
  for (int s = 0; s < cfg.num_stages; ++s) {
    mean[static_cast<std::size_t>(s)] =
        static_cast<double>(2 * (cfg.num_stages - 1 - s) + 1) /
        static_cast<double>(cfg.num_microbatches);
  }
  return mean;
}

HogwildConfig from_engine_config(const pipeline::EngineConfig& engine,
                                 double max_delay, int num_workers,
                                 std::vector<double> mean_delay) {
  HogwildConfig hw;
  hw.num_stages = engine.num_stages;
  hw.num_microbatches = engine.num_microbatches;
  hw.split_bias = engine.split_bias;
  hw.partition = engine.partition;
  hw.max_delay = max_delay;
  hw.mean_delay = std::move(mean_delay);
  hw.num_workers = num_workers;
  return hw;
}

HogwildEngine::HogwildEngine(const nn::Model& model, HogwildConfig cfg, std::uint64_t seed)
    : model_(model),
      cfg_(std::move(cfg)),
      partition_((validate_config(cfg_),
                  pipeline::make_partition(model, cfg_.num_stages, cfg_.split_bias,
                                           cfg_.partition))),
      mean_delay_(resolve_mean_delay(cfg_)),
      delay_rng_(seed ^ 0x9e3779b97f4a7c15ULL) {
  // The probe microbatch is consumed by make_partition above; don't keep
  // its tensors alive for the whole engine lifetime.
  cfg_.partition.probe.reset();
  live_.assign(static_cast<std::size_t>(model.param_count()), 0.0F);
  util::Rng init_rng(seed);
  model_.init_params(live_, init_rng);
  grads_.assign(live_.size(), 0.0F);
  history_depth_ = static_cast<int>(std::ceil(cfg_.max_delay)) + 2;
  history_.assign(static_cast<std::size_t>(history_depth_), {});
  history_[0] = live_;
  staleness_ = pipeline::staleness_histograms(cfg_.num_stages);
}

HogwildEngine::StepResult HogwildEngine::forward_backward(
    const std::vector<nn::Flow>& micro_inputs,
    const std::vector<tensor::Tensor>& micro_targets, const nn::LossHead& head) {
  auto n = static_cast<int>(micro_inputs.size());
  if (n == 0 || micro_targets.size() != micro_inputs.size()) {
    throw std::invalid_argument("HogwildEngine: bad microbatch vectors");
  }
  std::fill(grads_.begin(), grads_.end(), 0.0F);
  StepResult result;

  // Sample one delay per stage per optimizer step; both the forward and
  // backward passes of a stage read the same delayed version (eq. 17).
  std::vector<float> w(live_.size());
  if (method_ == pipeline::Method::Sync) {
    std::copy(live_.begin(), live_.end(), w.begin());
  } else {
    for (int u = 0; u < partition_.num_units(); ++u) {
      const nn::WeightUnit& unit = partition_.units[static_cast<std::size_t>(u)];
      int stage = partition_.unit_stage[static_cast<std::size_t>(u)];
      double mean = mean_delay_[static_cast<std::size_t>(stage)];
      auto delay = static_cast<std::int64_t>(
          std::llround(delay_rng_.truncated_exponential(mean, cfg_.max_delay)));
      std::int64_t v = std::max<std::int64_t>(0, step_ - delay);
      // Observed tau: the delay as actually experienced (clamped while
      // step_ < delay), per unit — matching WeightVersions' recording.
      staleness_[static_cast<std::size_t>(stage)]->observe(
          static_cast<double>(step_ - v));
      const auto& src = history_[static_cast<std::size_t>(v % history_depth_)];
      std::copy(src.begin() + unit.offset, src.begin() + unit.offset + unit.size,
                w.begin() + unit.offset);
    }
  }

  auto caches = model_.make_caches();
  for (int micro = 0; micro < n; ++micro) {
    nn::Flow input = micro_inputs[static_cast<std::size_t>(micro)];
    input.training = true;
    input.micro = micro;
    input.step = step_;
    nn::Flow out = model_.forward(std::move(input), w, caches);
    auto lr = head.forward_backward(out.x, micro_targets[static_cast<std::size_t>(micro)]);
    if (!std::isfinite(lr.loss)) {
      // Unified non-finite contract (see pipeline::StepResult): first
      // non-finite loss, zeroed metrics, gradients unspecified.
      result.finite = false;
      result.loss = lr.loss;
      result.correct = 0.0;
      result.count = 0.0;
      return result;
    }
    result.loss += lr.loss / n;
    result.correct += lr.correct;
    result.count += lr.count;
    nn::Flow dflow;
    dflow.x = lr.doutput;
    (void)model_.backward(std::move(dflow), w, caches, grads_);
  }
  auto inv_n = 1.0F / static_cast<float>(n);
  for (float& g : grads_) {
    g *= inv_n;
    if (!std::isfinite(g)) result.finite = false;
  }
  return result;
}

void HogwildEngine::commit_update() {
  ++step_;
  history_[static_cast<std::size_t>(step_ % history_depth_)] = live_;
}

std::vector<optim::LrSegment> HogwildEngine::lr_segments(
    double base_lr, std::span<const double> scales) const {
  return pipeline::stage_lr_segments(partition_, base_lr, scales);
}

}  // namespace pipemare::hogwild
