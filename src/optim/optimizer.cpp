#include "src/optim/optimizer.h"

#include <cmath>
#include <stdexcept>

namespace pipemare::optim {

namespace {
void check_sizes(std::span<float> params, std::span<const float> grads) {
  if (params.size() != grads.size()) {
    throw std::invalid_argument("optimizer: params/grads size mismatch");
  }
}
}  // namespace

SgdMomentum::SgdMomentum(double momentum, double weight_decay)
    : momentum_(momentum), weight_decay_(weight_decay) {}

void SgdMomentum::step(std::span<float> params, std::span<const float> grads,
                       std::span<const LrSegment> lr) {
  check_sizes(params, grads);
  if (momentum_ > 0.0 && velocity_.size() != params.size()) {
    velocity_.assign(params.size(), 0.0F);
  }
  for (const LrSegment& seg : lr) {
    auto lo = static_cast<std::size_t>(seg.offset);
    auto hi = lo + static_cast<std::size_t>(seg.size);
    for (std::size_t i = lo; i < hi; ++i) {
      double g = grads[i] + weight_decay_ * params[i];
      if (momentum_ > 0.0) {
        double v = momentum_ * velocity_[i] + g;
        velocity_[i] = static_cast<float>(v);
        g = v;
      }
      params[i] -= static_cast<float>(seg.lr * g);
    }
  }
}

void SgdMomentum::reset() { velocity_.clear(); }

AdamW::AdamW(double beta1, double beta2, double eps, double weight_decay)
    : beta1_(beta1), beta2_(beta2), eps_(eps), weight_decay_(weight_decay) {}

void AdamW::step(std::span<float> params, std::span<const float> grads,
                 std::span<const LrSegment> lr) {
  check_sizes(params, grads);
  if (m_.size() != params.size()) {
    m_.assign(params.size(), 0.0F);
    v_.assign(params.size(), 0.0F);
    t_ = 0;
  }
  ++t_;
  double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  for (const LrSegment& seg : lr) {
    auto lo = static_cast<std::size_t>(seg.offset);
    auto hi = lo + static_cast<std::size_t>(seg.size);
    for (std::size_t i = lo; i < hi; ++i) {
      double g = grads[i];
      double m = beta1_ * m_[i] + (1.0 - beta1_) * g;
      double v = beta2_ * v_[i] + (1.0 - beta2_) * g * g;
      m_[i] = static_cast<float>(m);
      v_[i] = static_cast<float>(v);
      double mhat = m / bc1;
      double vhat = v / bc2;
      params[i] -= static_cast<float>(
          seg.lr * (mhat / (std::sqrt(vhat) + eps_) + weight_decay_ * params[i]));
    }
  }
}

void AdamW::reset() {
  m_.clear();
  v_.clear();
  t_ = 0;
}

double clip_grad_norm(std::span<float> grads, double max_norm) {
  double sq = 0.0;
  for (float g : grads) sq += static_cast<double>(g) * g;
  double norm = std::sqrt(sq);
  if (max_norm > 0.0 && norm > max_norm) {
    auto scale = static_cast<float>(max_norm / (norm + 1e-12));
    for (float& g : grads) g *= scale;
  }
  return norm;
}

}  // namespace pipemare::optim
