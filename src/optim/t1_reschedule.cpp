#include "src/optim/t1_reschedule.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace pipemare::optim {

T1Rescheduler::T1Rescheduler(std::vector<double> tau_fwd, std::int64_t annealing_steps)
    : tau_(std::move(tau_fwd)), annealing_steps_(annealing_steps) {
  if (tau_.empty()) throw std::invalid_argument("T1Rescheduler: stages required");
  for (double& t : tau_) t = std::max(t, 1.0);
}

double T1Rescheduler::exponent(std::int64_t step) const {
  if (annealing_steps_ <= 0) return 0.0;
  double frac = static_cast<double>(step) / static_cast<double>(annealing_steps_);
  return 1.0 - std::min(frac, 1.0);
}

double T1Rescheduler::scale(std::int64_t step, int stage) const {
  double p = exponent(step);
  if (p == 0.0) return 1.0;
  return std::pow(tau_.at(static_cast<std::size_t>(stage)), -p);
}

std::vector<double> T1Rescheduler::scales(std::int64_t step) const {
  std::vector<double> out(tau_.size());
  for (int i = 0; i < num_stages(); ++i) out[static_cast<std::size_t>(i)] = scale(step, i);
  return out;
}

}  // namespace pipemare::optim
