#include "src/optim/schedule.h"

#include <cmath>
#include <stdexcept>

namespace pipemare::optim {

StepDecay::StepDecay(double initial, double factor, std::int64_t drop_every_steps)
    : initial_(initial), factor_(factor), drop_every_(drop_every_steps) {
  if (drop_every_steps <= 0) throw std::invalid_argument("StepDecay: period > 0 required");
}

double StepDecay::lr(std::int64_t step) const {
  auto drops = static_cast<double>(step / drop_every_);
  return initial_ * std::pow(factor_, drops);
}

InverseSqrtWarmup::InverseSqrtWarmup(double max_lr, std::int64_t warmup_steps, double init_lr)
    : max_lr_(max_lr), warmup_(warmup_steps), init_lr_(init_lr) {
  if (warmup_steps <= 0) throw std::invalid_argument("InverseSqrtWarmup: warmup > 0 required");
}

double InverseSqrtWarmup::lr(std::int64_t step) const {
  if (step < warmup_) {
    double frac = static_cast<double>(step) / static_cast<double>(warmup_);
    return init_lr_ + (max_lr_ - init_lr_) * frac;
  }
  return max_lr_ * std::sqrt(static_cast<double>(warmup_) / static_cast<double>(step));
}

}  // namespace pipemare::optim
