#pragma once

#include <cstdint>
#include <vector>

namespace pipemare::optim {

/// Technique 1 — learning rate rescheduling (Section 3.1).
///
/// In SGD step k, stage i trains with
///   alpha_{k,i} = alpha_base(k) / tau_i^{p_k},  p_k = 1 - min(k/K, 1),
/// where tau_i is the stage's forward delay and K the annealing horizon.
/// Early in training the per-stage LR is the theory-motivated O(1/tau)
/// value (Lemma 1); by step K it anneals back to the base schedule.
///
/// For late pipeline stages tau_i < 1 and a literal division by tau^p
/// would *increase* the LR, so tau is clamped to >= 1 (documented design
/// decision; the paper's rule is only meant to shrink step sizes).
class T1Rescheduler {
 public:
  /// `tau_fwd`: per-stage forward delays (optimizer steps, may be < 1).
  /// `annealing_steps`: the K hyperparameter. K <= 0 disables T1
  /// (scale factor 1 everywhere).
  T1Rescheduler(std::vector<double> tau_fwd, std::int64_t annealing_steps);

  /// The exponent p_k.
  double exponent(std::int64_t step) const;

  /// Multiplier applied to the base LR for stage i at step k: tau_i^{-p_k}.
  double scale(std::int64_t step, int stage) const;

  /// All per-stage multipliers at step k.
  std::vector<double> scales(std::int64_t step) const;

  int num_stages() const { return static_cast<int>(tau_.size()); }

 private:
  std::vector<double> tau_;  ///< clamped to >= 1
  std::int64_t annealing_steps_;
};

}  // namespace pipemare::optim
