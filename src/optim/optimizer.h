#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace pipemare::optim {

/// A contiguous parameter range sharing one learning rate. Technique 1
/// assigns each pipeline stage its own step size, so optimizers take a
/// list of these instead of a single scalar.
struct LrSegment {
  std::int64_t offset = 0;
  std::int64_t size = 0;
  double lr = 0.0;
};

/// Flat-vector optimizer interface.
///
/// State buffers (momentum, Adam moments) are owned by the optimizer and
/// sized on first use. `state_copies()` reports how many weight-sized
/// buffers the optimizer keeps — the quantity the paper's
/// "weight + optimizer memory" column counts (weights + gradient buffer +
/// optimizer state; +1 more for the T2 velocity buffer).
class Optimizer {
 public:
  virtual ~Optimizer() = default;

  /// Applies one update in place given gradients and per-segment LRs.
  /// Segments must tile [0, params.size()).
  virtual void step(std::span<float> params, std::span<const float> grads,
                    std::span<const LrSegment> lr) = 0;

  /// Number of weight-sized state buffers (excluding weights and grads).
  virtual int state_copies() const = 0;

  virtual void reset() = 0;
};

/// SGD with (PyTorch-convention) heavy-ball momentum and L2 regularization:
/// g' = g + wd * w;  v = mu * v + g';  w -= lr * v.
class SgdMomentum : public Optimizer {
 public:
  explicit SgdMomentum(double momentum = 0.9, double weight_decay = 0.0);

  void step(std::span<float> params, std::span<const float> grads,
            std::span<const LrSegment> lr) override;
  int state_copies() const override { return momentum_ > 0.0 ? 1 : 0; }
  void reset() override;

 private:
  double momentum_;
  double weight_decay_;
  std::vector<float> velocity_;
};

/// AdamW with decoupled weight decay (Loshchilov & Hutter), the optimizer
/// the paper uses for the Transformer experiments.
class AdamW : public Optimizer {
 public:
  AdamW(double beta1 = 0.9, double beta2 = 0.98, double eps = 1e-9,
        double weight_decay = 0.0);

  void step(std::span<float> params, std::span<const float> grads,
            std::span<const LrSegment> lr) override;
  int state_copies() const override { return 2; }
  void reset() override;

 private:
  double beta1_, beta2_, eps_, weight_decay_;
  std::int64_t t_ = 0;
  std::vector<float> m_, v_;
};

/// Global gradient-norm clipping (the Transformer recipe clips at 25).
/// Returns the pre-clip norm.
double clip_grad_norm(std::span<float> grads, double max_norm);

}  // namespace pipemare::optim
