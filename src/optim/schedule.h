#pragma once

#include <memory>
#include <vector>

namespace pipemare::optim {

/// Base learning-rate schedule alpha_base(k) as a function of the
/// optimizer-step index k (one step per minibatch).
class LrSchedule {
 public:
  virtual ~LrSchedule() = default;
  virtual double lr(std::int64_t step) const = 0;
};

class ConstantLr : public LrSchedule {
 public:
  explicit ConstantLr(double value) : value_(value) {}
  double lr(std::int64_t) const override { return value_; }

 private:
  double value_;
};

/// Step decay: initial LR multiplied by `factor` every `drop_every` steps
/// (the paper's ResNet recipe: drop by 0.1 every 80/30 epochs).
class StepDecay : public LrSchedule {
 public:
  StepDecay(double initial, double factor, std::int64_t drop_every_steps);
  double lr(std::int64_t step) const override;

 private:
  double initial_;
  double factor_;
  std::int64_t drop_every_;
};

/// Linear warmup from `init_lr` to `max_lr` over `warmup_steps`, then
/// inverse-square-root decay (the fairseq Transformer recipe the paper
/// inherits, with 2x-lengthened warmup).
class InverseSqrtWarmup : public LrSchedule {
 public:
  InverseSqrtWarmup(double max_lr, std::int64_t warmup_steps, double init_lr = 1e-7);
  double lr(std::int64_t step) const override;

 private:
  double max_lr_;
  std::int64_t warmup_;
  double init_lr_;
};

}  // namespace pipemare::optim
