#pragma once

#include <span>
#include <string_view>
#include <vector>

#include "src/serve/request_queue.h"
#include "src/tensor/tensor.h"

namespace pipemare::serve {

/// When the server forms a microbatch from queued requests.
enum class BatchPolicy {
  /// Wait for max_batch requests before dispatching; flush a partial batch
  /// only once the oldest request has waited max_wait_ms (the classic
  /// fixed-batch server — max_wait bounds its p99 under light load, at the
  /// cost of paying that wait on nearly every light-load request).
  Fixed,
  /// Continuous batching: dispatch whatever is queued (up to max_batch) as
  /// soon as a microbatch slot frees up at stage 0, mid-flight — partial
  /// batches are fine. Under light load requests start immediately (p99 ~
  /// service time); under saturation the slots stay busy, the queue fills,
  /// and every batch is full anyway, so throughput matches Fixed.
  Continuous,
};

BatchPolicy parse_batch_policy(std::string_view name);
std::string_view batch_policy_name(BatchPolicy p);

struct BatchConfig {
  BatchPolicy policy = BatchPolicy::Continuous;
  int max_batch = 8;         ///< max requests per microbatch
  double max_wait_ms = 5.0;  ///< Fixed: partial-batch flush timeout
};

/// Throws std::invalid_argument on an unusable configuration.
void validate_batch_config(const BatchConfig& cfg);

/// The admission policy of the serving pipeline: decides, at each stage-0
/// boundary (a free microbatch slot), whether to form a batch now and how
/// many requests it may take. Pure decision logic — the PipelineServer
/// owns the queue and slots — so the policies are testable with synthetic
/// clocks.
class BatchScheduler {
 public:
  explicit BatchScheduler(BatchConfig cfg);

  const BatchConfig& config() const { return cfg_; }

  struct Decision {
    /// Requests to admit now (0 = keep waiting).
    int admit = 0;
    /// When admit == 0 with requests pending under Fixed: how long until
    /// the flush deadline forces a partial batch (idle workers bound
    /// their sleep by this). duration::max() = no pending flush.
    Clock::duration recheck = Clock::duration::max();
  };

  /// `queued` pending requests, the oldest enqueued at `oldest_enqueue`;
  /// `draining` (server stopping) flushes partial batches immediately.
  Decision decide(std::size_t queued, Clock::time_point oldest_enqueue,
                  Clock::time_point now, bool draining) const;

 private:
  BatchConfig cfg_;
};

/// True when requests with inputs `a` and `b` can share a microbatch: the
/// same per-row shapes (all dimensions after the leading batch dimension)
/// and the same auxiliary-channel usage, so their rows concatenate into
/// one well-formed model input.
bool batch_compatible(const nn::Flow& a, const nn::Flow& b);

/// Concatenates the requests' input flows along the batch (first)
/// dimension in the given (FIFO) order. Requires batch_compatible inputs;
/// the result carries training = false.
nn::Flow concat_inputs(std::span<const Request> requests);

/// Splits a batched output tensor back into per-request row blocks:
/// `rows[i]` leading rows for request i, in order. The row counts must sum
/// to out.dim(0).
std::vector<tensor::Tensor> split_output_rows(const tensor::Tensor& out,
                                              std::span<const int> rows);

}  // namespace pipemare::serve
