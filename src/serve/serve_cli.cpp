#include "src/serve/serve_cli.h"

#include <span>
#include <vector>

#include "src/util/cli.h"

namespace pipemare::serve {

namespace {

/// Policy-specific flag routing (see core's backend_flag_rules): the
/// continuous policy dispatches as soon as a slot frees up, so it has no
/// wait for --serve-max-wait to bound.
std::span<const util::FlagRule> serve_flag_rules() {
  static const std::vector<util::FlagRule> rules = {
      {"serve-max-wait",
       {"fixed"},
       "applies to the fixed batch policy; pass --serve-policy=fixed"},
  };
  return rules;
}

}  // namespace

void parse_serve_cli(const util::Cli& cli, ServeConfig& cfg) {
  if (cli.has("serve-policy")) {
    cfg.batch.policy = parse_batch_policy(
        cli.get("serve-policy", std::string(batch_policy_name(cfg.batch.policy))));
  }
  util::reject_mismatched_flags(cli, "parse_serve_cli",
                                batch_policy_name(cfg.batch.policy),
                                /*enforce=*/true, serve_flag_rules());
  cfg.batch.max_batch = cli.get_int("serve-batch", cfg.batch.max_batch);
  cfg.batch.max_wait_ms = cli.get_double("serve-max-wait", cfg.batch.max_wait_ms);
  cfg.num_stages = cli.get_int("serve-stages", cfg.num_stages);
  cfg.workers = cli.get_int("serve-workers", cfg.workers);
  cfg.queue_capacity = cli.get_int("serve-queue", cfg.queue_capacity);
  cfg.slots = cli.get_int("serve-slots", cfg.slots);
  // Shared observability flags (same names as the training CLI).
  cfg.trace_path = cli.get("trace", cfg.trace_path);
  cfg.metrics_path = cli.get("metrics", cfg.metrics_path);
  validate_serve_config(cfg, nullptr);
}

std::string serve_cli_help() {
  return "  --serve-policy=fixed|continuous\n"
         "  --serve-batch=<int>      (max requests per microbatch)\n"
         "  --serve-max-wait=<ms>    (fixed policy: partial-batch flush timeout)\n"
         "  --serve-stages=<int>     (pipeline stages)\n"
         "  --serve-workers=<int>    (worker threads; 0 = auto)\n"
         "  --serve-queue=<int>      (admission queue capacity)\n"
         "  --serve-slots=<int>      (in-flight microbatch slots; 0 = auto)\n"
         "  --trace=<file>           (Chrome trace-event JSON of the session)\n"
         "  --metrics=<file>         (metrics snapshot JSON at shutdown)\n";
}

}  // namespace pipemare::serve
