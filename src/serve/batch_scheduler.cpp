#include "src/serve/batch_scheduler.h"

#include <algorithm>
#include <cstring>
#include <stdexcept>
#include <string>
#include <utility>

namespace pipemare::serve {

namespace {

std::chrono::nanoseconds ms_to_ns(double ms) {
  return std::chrono::nanoseconds(static_cast<std::int64_t>(ms * 1e6));
}

/// Per-row shape: every dimension after the leading batch dimension.
std::vector<int> row_shape(const tensor::Tensor& t) {
  if (t.rank() == 0) return {};
  return {t.shape().begin() + 1, t.shape().end()};
}

void append_rows(tensor::Tensor& dst, std::int64_t& cursor, const tensor::Tensor& src) {
  std::memcpy(dst.data() + cursor, src.data(),
              static_cast<std::size_t>(src.size()) * sizeof(float));
  cursor += src.size();
}

}  // namespace

BatchPolicy parse_batch_policy(std::string_view name) {
  if (name == "fixed") return BatchPolicy::Fixed;
  if (name == "continuous") return BatchPolicy::Continuous;
  throw std::invalid_argument("parse_batch_policy: unknown policy '" +
                              std::string(name) + "'; use fixed or continuous");
}

std::string_view batch_policy_name(BatchPolicy p) {
  return p == BatchPolicy::Fixed ? "fixed" : "continuous";
}

void validate_batch_config(const BatchConfig& cfg) {
  if (cfg.max_batch < 1) {
    throw std::invalid_argument("BatchConfig: max_batch must be >= 1");
  }
  if (cfg.max_wait_ms < 0.0) {
    throw std::invalid_argument("BatchConfig: max_wait_ms must be >= 0");
  }
}

BatchScheduler::BatchScheduler(BatchConfig cfg) : cfg_(cfg) {
  validate_batch_config(cfg_);
}

BatchScheduler::Decision BatchScheduler::decide(std::size_t queued,
                                                Clock::time_point oldest_enqueue,
                                                Clock::time_point now,
                                                bool draining) const {
  Decision d;
  if (queued == 0) return d;
  const int cap = cfg_.max_batch;
  if (cfg_.policy == BatchPolicy::Continuous || draining ||
      queued >= static_cast<std::size_t>(cap)) {
    d.admit = static_cast<int>(std::min<std::size_t>(queued, static_cast<std::size_t>(cap)));
    return d;
  }
  // Fixed, partial: flush once the oldest request has waited max_wait_ms.
  const auto flush_at = oldest_enqueue + ms_to_ns(cfg_.max_wait_ms);
  if (now >= flush_at) {
    d.admit = static_cast<int>(queued);
    return d;
  }
  d.recheck = flush_at - now;
  return d;
}

bool batch_compatible(const nn::Flow& a, const nn::Flow& b) {
  if (row_shape(a.x) != row_shape(b.x)) return false;
  if (a.aux.empty() != b.aux.empty()) return false;
  if (!a.aux.empty() && row_shape(a.aux) != row_shape(b.aux)) return false;
  return true;
}

nn::Flow concat_inputs(std::span<const Request> requests) {
  if (requests.empty()) {
    throw std::invalid_argument("concat_inputs: empty batch");
  }
  const nn::Flow& front = requests.front().input;
  int total_rows = 0;
  for (const auto& r : requests) {
    if (!batch_compatible(front, r.input)) {
      throw std::invalid_argument("concat_inputs: incompatible request inputs");
    }
    total_rows += r.input.x.dim(0);
  }
  nn::Flow out;
  out.training = false;

  std::vector<int> x_shape = front.x.shape();
  x_shape[0] = total_rows;
  out.x = tensor::Tensor(std::move(x_shape));
  std::int64_t x_cursor = 0;
  for (const auto& r : requests) append_rows(out.x, x_cursor, r.input.x);

  if (!front.aux.empty()) {
    std::vector<int> aux_shape = front.aux.shape();
    aux_shape[0] = total_rows;
    out.aux = tensor::Tensor(std::move(aux_shape));
    std::int64_t aux_cursor = 0;
    for (const auto& r : requests) append_rows(out.aux, aux_cursor, r.input.aux);
  }
  return out;
}

std::vector<tensor::Tensor> split_output_rows(const tensor::Tensor& out,
                                              std::span<const int> rows) {
  if (out.rank() < 1) {
    throw std::invalid_argument("split_output_rows: output must have a batch dim");
  }
  std::int64_t total = 0;
  for (int r : rows) total += r;
  if (total != out.dim(0)) {
    throw std::invalid_argument("split_output_rows: row counts (" +
                                std::to_string(total) + ") != out.dim(0) (" +
                                std::to_string(out.dim(0)) + ")");
  }
  const std::int64_t row_elems = out.dim(0) > 0 ? out.size() / out.dim(0) : 0;
  std::vector<tensor::Tensor> parts;
  parts.reserve(rows.size());
  std::int64_t cursor = 0;
  for (int r : rows) {
    std::vector<int> shape = out.shape();
    shape[0] = r;
    tensor::Tensor part(std::move(shape));
    std::memcpy(part.data(), out.data() + cursor,
                static_cast<std::size_t>(part.size()) * sizeof(float));
    cursor += static_cast<std::int64_t>(r) * row_elems;
    parts.push_back(std::move(part));
  }
  return parts;
}

}  // namespace pipemare::serve
