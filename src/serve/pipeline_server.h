#pragma once

#include <cstdint>
#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "src/nn/model.h"
#include "src/pipeline/partition.h"
#include "src/pipeline/stage_stats.h"
#include "src/sched/task_queue.h"
#include "src/sched/worker_pool.h"
#include "src/serve/batch_scheduler.h"
#include "src/serve/checkpoint.h"
#include "src/serve/request_queue.h"
#include "src/util/sync.h"

namespace pipemare::serve {

/// Configuration of the serving runtime.
struct ServeConfig {
  int num_stages = 1;       ///< pipeline stages (partition granularity)
  int workers = 0;          ///< worker threads; 0 = min(cores, num_stages)
  bool split_bias = false;  ///< partition weight/bias units separately
  int queue_capacity = 64;  ///< admission queue bound (backpressure beyond)
  int slots = 0;            ///< in-flight microbatch slots; 0 = num_stages + 1
  BatchConfig batch;
  pipeline::PartitionSpec partition;
  std::string trace_path;    ///< --trace: Chrome trace JSON path ("" = off)
  std::string metrics_path;  ///< --metrics: metrics snapshot JSON ("" = off)
};

/// Throws std::invalid_argument on an unusable configuration. `model` may
/// be null (CLI-time validation before a model exists checks everything
/// model-independent).
void validate_serve_config(const ServeConfig& cfg, const nn::Model* model);

/// Aggregate request accounting, cumulative since construction.
struct ServeCounters {
  std::uint64_t submitted = 0;         ///< submit() calls
  std::uint64_t admitted = 0;          ///< requests that entered a microbatch
  std::uint64_t completed_ok = 0;      ///< Status::Ok responses
  std::uint64_t rejected_full = 0;     ///< Status::RejectedQueueFull
  std::uint64_t rejected_stopped = 0;  ///< Status::RejectedStopped
  std::uint64_t deadline_expired = 0;  ///< Status::DeadlineExceeded
  std::uint64_t errors = 0;            ///< Status::Error
  std::uint64_t batches = 0;           ///< microbatches dispatched
};

/// Continuous-batching inference runtime over the work-stealing scheduler:
/// the serving-side counterpart of sched::StealingEngine.
///
/// Execution model. Serving is the forward-only restriction of the
/// pipeline task graph: the model is cut into `num_stages` contiguous
/// stages by the same graph-linearized pipeline::Partition the training
/// engines use, each in-flight microbatch occupies one *slot* (its
/// activation Flow plus per-module caches), and running stage s of slot m
/// is one sched::Task{Forward, s, m} in the per-stage TaskQueue deques. A
/// sched::WorkerPool of W workers (one long generation per serving
/// session) drains the queues exactly like the training engine: stage s is
/// *home* to worker s mod W, idle workers steal the oldest ready task from
/// other stages (deepest stage first, to drain in-flight batches), and
/// non-home execution is counted in the stolen_items / stolen_ns stats.
/// There is no weight-version protocol to preserve — inference reads one
/// frozen checkpoint — which is precisely why serving needs no staleness
/// machinery and W can be anything.
///
/// Admission. Clients call submit() from any thread; requests land in a
/// bounded RequestQueue (Full => an immediate RejectedQueueFull response —
/// backpressure is an explicit error, never an unbounded stall). A worker
/// with no ready task performs *admission* under the server mutex: expire
/// timed-out requests, ask the BatchScheduler whether to form a batch now
/// (continuous: whenever a slot is free; fixed: when max_batch are queued
/// or the oldest has waited max_wait_ms), pop the FIFO prefix of
/// batch-compatible requests, concatenate them into a free slot and push
/// the slot's stage-0 task. New requests therefore enter the pipeline at
/// stage-0 boundaries while earlier microbatches are still in flight —
/// continuous batching in the vLLM sense, restricted to whole-forward
/// requests.
///
/// Parity. Every in-tree module computes row i of a batched forward from
/// row i of the input alone (scalar kernels; per-row normalization,
/// attention and softmax; Dropout is identity when training = false), so a
/// request's rows of the batched output are bitwise-identical to running
/// model.forward on that request alone — regardless of worker count, batch
/// policy, or who stole which stage. tests/test_serve.cpp asserts this
/// across the whole grid; it is the serving analogue of the training
/// engines' bitwise-parity invariant.
///
/// Concurrency contracts. All scheduler state (slot occupancy, counters,
/// stop flag, push-notification version) is GUARDED_BY(m_); slot payloads
/// (flow, caches, request list) are owner-accessed — exactly one worker
/// holds a slot's task at a time, and handoff happens-before through the
/// TaskQueue mutex. Lock order: m_ -> (RequestQueue | TaskQueue | Ticket)
/// internal mutexes; those never take m_.
class PipelineServer {
 public:
  /// Validates the checkpoint against the model (shape digest + parameter
  /// count) and builds the partition; throws on mismatch. The worker
  /// threads are created parked — call start() to begin serving.
  PipelineServer(const nn::Model& model, ModelCheckpoint ckpt, ServeConfig cfg);
  ~PipelineServer();

  PipelineServer(const PipelineServer&) = delete;
  PipelineServer& operator=(const PipelineServer&) = delete;

  /// Opens the serving session (releases the parked workers). Call once.
  void start();

  /// Closes admission, drains every queued and in-flight request (partial
  /// batches flush immediately), and parks the workers. Idempotent; called
  /// by the destructor if still serving.
  void stop();

  /// Submits one inference request: `input.x` (plus optional `input.aux`)
  /// with a leading batch dimension; ctx/skip must be empty (throws
  /// std::invalid_argument otherwise). Never blocks: on a full queue or a
  /// stopped server the returned ticket is already completed with the
  /// rejection status. `timeout` (if given) sets the request deadline —
  /// a request still queued when it expires completes DeadlineExceeded.
  TicketPtr submit(nn::Flow input);
  TicketPtr submit(nn::Flow input, Clock::duration timeout);

  ServeCounters counters() const;

  /// Per-*stage* load counters (cumulative since construction or the last
  /// reset): busy/items of the stage's tasks wherever they executed, plus
  /// stolen_items / stolen_ns for the share executed by non-home workers.
  /// Same shape as the training engines' stage_stats(), so the
  /// StageLoadObserver carries over unchanged. Safe to call while serving
  /// (relaxed-atomic counters — transient skew, no torn values).
  std::vector<pipeline::StageStats> stage_stats() const;

  /// Per-*worker* load counters: busy, pop_wait_ns = time idle waiting for
  /// work or admission, items, stolen share.
  std::vector<pipeline::StageStats> worker_stats() const;

  void reset_stage_stats();

  const pipeline::Partition& partition() const { return partition_; }
  const ServeConfig& config() const { return cfg_; }
  const nn::Model& model() const { return model_; }
  std::span<const float> weights() const { return weights_; }
  int num_workers() const { return pool_->size(); }
  int num_slots() const { return static_cast<int>(slots_.size()); }

 private:
  /// One in-flight microbatch: the activation Flow between stages, the
  /// per-module caches its forwards write, and the admitted requests it
  /// carries. Owner-accessed (see class comment); only the busy/free bit
  /// lives under m_.
  struct Slot {
    nn::Flow flow;
    std::vector<nn::Cache> caches;
    std::vector<Request> requests;
    std::vector<int> rows;  ///< per-request row counts, request order
    Clock::time_point formed{};
  };

  /// Multi-writer per-slot counters (thieves of the same stage may run
  /// concurrently), hence relaxed atomics; see StealingEngine.
  struct AtomicCounters {
    std::atomic<std::uint64_t> busy_ns{0};
    std::atomic<std::uint64_t> pop_wait_ns{0};
    std::atomic<std::uint64_t> items{0};
    std::atomic<std::uint64_t> stolen_items{0};
    std::atomic<std::uint64_t> stolen_ns{0};
  };

  TicketPtr submit_with_deadline(nn::Flow input, Clock::time_point deadline);
  void worker_loop(int worker);
  bool acquire(int worker, sched::Task& out, bool& stolen);
  void execute(int worker, const sched::Task& task, bool stolen);
  /// Completes every ticket of `slot` with `base` (output/metrics filled
  /// per request for Ok) and frees the slot.
  void complete_slot(int slot, const Response& base, const tensor::Tensor* output);
  /// Attempts one admission round; returns true if a batch was dispatched.
  /// On false, `recheck` is how long the caller may sleep before a timer
  /// (batch flush or request deadline) needs another round.
  bool try_admit(Clock::duration& recheck);
  void bump_version();
  int home_worker(int stage) const { return stage % pool_->size(); }

  const nn::Model& model_;
  ServeConfig cfg_;
  std::vector<float> weights_;  ///< frozen checkpoint weights
  pipeline::Partition partition_;
  std::vector<pipeline::StageModuleRange> ranges_;  ///< per stage
  BatchScheduler scheduler_;

  RequestQueue queue_;
  std::vector<std::unique_ptr<sched::TaskQueue>> queues_;  ///< per stage
  std::vector<Slot> slots_;

  std::unique_ptr<AtomicCounters[]> stage_counters_;   ///< per stage
  std::unique_ptr<AtomicCounters[]> worker_counters_;  ///< per worker

  mutable util::Mutex m_;
  util::CondVar cv_;
  std::vector<std::uint8_t> slot_busy_ GUARDED_BY(m_);
  int active_slots_ GUARDED_BY(m_) = 0;
  std::uint64_t push_version_ GUARDED_BY(m_) = 0;
  std::uint64_t next_id_ GUARDED_BY(m_) = 0;
  bool started_ GUARDED_BY(m_) = false;
  bool stopping_ GUARDED_BY(m_) = false;
  bool stopped_ GUARDED_BY(m_) = false;
  ServeCounters counters_ GUARDED_BY(m_);

  std::unique_ptr<sched::WorkerPool> pool_;  ///< last member: parks before teardown
};

}  // namespace pipemare::serve
