#include "src/serve/pipeline_server.h"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/util/stats.h"

namespace pipemare::serve {

namespace {

using util::ns_between;

// Registry-owned serve metrics, resolved once per process (the registry
// lookup is string-keyed; the hot path then pays one relaxed atomic op).
// Latency bucket bounds: 24 exponential buckets from 10us to ~2s cover
// the smoke models through deliberately-stalled deadline tests.
struct ServeMetrics {
  obs::Counter& submitted;
  obs::Counter& admitted;
  obs::Counter& completed;
  obs::Counter& rejected;
  obs::Counter& expired;
  obs::Counter& errors;
  obs::Counter& batches;
  obs::Histogram& queue_ms;
  obs::Histogram& total_ms;
};

ServeMetrics& serve_metrics() {
  static ServeMetrics m{
      obs::MetricsRegistry::instance().counter("serve.submitted"),
      obs::MetricsRegistry::instance().counter("serve.admitted"),
      obs::MetricsRegistry::instance().counter("serve.completed"),
      obs::MetricsRegistry::instance().counter("serve.rejected"),
      obs::MetricsRegistry::instance().counter("serve.expired"),
      obs::MetricsRegistry::instance().counter("serve.errors"),
      obs::MetricsRegistry::instance().counter("serve.batches"),
      obs::MetricsRegistry::instance().histogram(
          "serve.queue_ms", obs::Histogram::exponential_bounds(0.01, 2.0, 24)),
      obs::MetricsRegistry::instance().histogram(
          "serve.total_ms", obs::Histogram::exponential_bounds(0.01, 2.0, 24)),
  };
  return m;
}

int resolve_worker_count(const ServeConfig& cfg) {
  if (cfg.workers > 0) return cfg.workers;
  auto cores = static_cast<int>(std::thread::hardware_concurrency());
  if (cores <= 0) cores = 2;
  return std::max(1, std::min(cores, cfg.num_stages));
}

double ms_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

pipeline::StageStats snapshot(const std::atomic<std::uint64_t>& busy_ns,
                              const std::atomic<std::uint64_t>& pop_wait_ns,
                              const std::atomic<std::uint64_t>& items,
                              const std::atomic<std::uint64_t>& stolen_items,
                              const std::atomic<std::uint64_t>& stolen_ns) {
  pipeline::StageStats s;
  s.busy_ns = busy_ns.load(std::memory_order_relaxed);
  s.pop_wait_ns = pop_wait_ns.load(std::memory_order_relaxed);
  s.items = items.load(std::memory_order_relaxed);
  s.stolen_items = stolen_items.load(std::memory_order_relaxed);
  s.stolen_ns = stolen_ns.load(std::memory_order_relaxed);
  return s;
}

}  // namespace

void validate_serve_config(const ServeConfig& cfg, const nn::Model* model) {
  if (cfg.workers < 0) {
    throw std::invalid_argument("serve: workers must be >= 0 (0 = auto)");
  }
  if (cfg.queue_capacity < 1) {
    throw std::invalid_argument("serve: queue_capacity must be >= 1");
  }
  if (cfg.slots < 0) {
    throw std::invalid_argument("serve: slots must be >= 0 (0 = num_stages + 1)");
  }
  validate_batch_config(cfg.batch);
  pipeline::validate_partition_config("serve", model, cfg.num_stages,
                                      cfg.split_bias, cfg.partition);
}

namespace {
/// Runs config validation before any member constructor consumes the
/// config (BatchScheduler / RequestQueue would otherwise report their own
/// lower-level errors first).
ServeConfig validated(ServeConfig cfg, const nn::Model* model) {
  validate_serve_config(cfg, model);
  return cfg;
}
}  // namespace

PipelineServer::PipelineServer(const nn::Model& model, ModelCheckpoint ckpt,
                               ServeConfig cfg)
    : model_(model),
      cfg_(validated(std::move(cfg), &model)),
      scheduler_(cfg_.batch),
      queue_(cfg_.queue_capacity) {
  ckpt.validate_against(model);
  weights_ = std::move(ckpt.weights);
  partition_ = pipeline::make_partition(model, cfg_.num_stages, cfg_.split_bias,
                                        cfg_.partition);
  ranges_ = pipeline::stage_module_ranges(partition_);

  const int p = cfg_.num_stages;
  queues_.reserve(static_cast<std::size_t>(p));
  for (int s = 0; s < p; ++s) queues_.push_back(std::make_unique<sched::TaskQueue>());
  stage_counters_ = std::make_unique<AtomicCounters[]>(static_cast<std::size_t>(p));

  const int nslots = cfg_.slots > 0 ? cfg_.slots : p + 1;
  slots_.resize(static_cast<std::size_t>(nslots));
  for (auto& slot : slots_) slot.caches = model_.make_caches();
  slot_busy_.assign(static_cast<std::size_t>(nslots), 0);

  const int w = resolve_worker_count(cfg_);
  worker_counters_ = std::make_unique<AtomicCounters[]>(static_cast<std::size_t>(w));
  // Last: once the pool exists its threads may call back into worker_loop.
  pool_ = std::make_unique<sched::WorkerPool>(
      w, [this](int worker) { worker_loop(worker); });
}

PipelineServer::~PipelineServer() { stop(); }

void PipelineServer::start() {
  {
    util::MutexLock lock(m_);
    if (started_) throw std::logic_error("PipelineServer::start: already started");
    started_ = true;
  }
  // Tracing brackets the serving session: enabled here (the workers are
  // still parked, satisfying the recorder's quiescence contract) and
  // exported in stop() after the pool parks again.
  if (!cfg_.trace_path.empty()) obs::TraceRecorder::instance().enable();
  pool_->begin_generation();
}

void PipelineServer::stop() {
  bool wait = false;
  {
    util::MutexLock lock(m_);
    if (stopped_) return;
    stopped_ = true;
    stopping_ = true;
    queue_.close();
    ++push_version_;
    wait = started_;
  }
  cv_.notify_all();
  if (wait) pool_->wait_generation();
  if (!cfg_.trace_path.empty()) {
    obs::TraceRecorder::instance().disable();
    obs::write_chrome_trace(cfg_.trace_path);
  }
  if (!cfg_.metrics_path.empty()) {
    obs::MetricsRegistry::instance().write_json(cfg_.metrics_path);
  }
}

TicketPtr PipelineServer::submit(nn::Flow input) {
  return submit_with_deadline(std::move(input), Clock::time_point::max());
}

TicketPtr PipelineServer::submit(nn::Flow input, Clock::duration timeout) {
  return submit_with_deadline(std::move(input), Clock::now() + timeout);
}

TicketPtr PipelineServer::submit_with_deadline(nn::Flow input,
                                               Clock::time_point deadline) {
  if (input.x.empty()) {
    throw std::invalid_argument(
        "PipelineServer::submit: input.x must be non-empty with a leading "
        "batch dimension");
  }
  if (!input.ctx.empty() || !input.skip.empty()) {
    throw std::invalid_argument(
        "PipelineServer::submit: ctx/skip must be empty (requests enter at "
        "the model's first module)");
  }
  input.training = false;

  auto ticket = std::make_shared<Ticket>();
  Request req;
  req.input = std::move(input);
  req.enqueue_time = Clock::now();
  req.deadline = deadline;
  req.ticket = ticket;

  Status reject = Status::Ok;
  std::uint64_t id = 0;
  serve_metrics().submitted.add();
  {
    util::MutexLock lock(m_);
    ++counters_.submitted;
    id = req.id = next_id_++;
    if (!started_ || stopping_) {
      ++counters_.rejected_stopped;
      reject = Status::RejectedStopped;
    } else {
      switch (queue_.try_push(std::move(req))) {
        case RequestQueue::Admit::Ok:
          ++push_version_;
          break;
        case RequestQueue::Admit::Full:
          ++counters_.rejected_full;
          reject = Status::RejectedQueueFull;
          break;
        case RequestQueue::Admit::Closed:
          ++counters_.rejected_stopped;
          reject = Status::RejectedStopped;
          break;
      }
    }
  }
  if (reject == Status::Ok) {
    obs::instant("enqueue", "serve", -1, -1, static_cast<std::int64_t>(id));
    cv_.notify_all();
  } else {
    serve_metrics().rejected.add();
    Response r;
    r.status = reject;
    ticket->complete(std::move(r));
  }
  return ticket;
}

void PipelineServer::worker_loop(int worker) {
  AtomicCounters& wc = worker_counters_[static_cast<std::size_t>(worker)];
  for (;;) {
    std::uint64_t version;
    {
      util::MutexLock lock(m_);
      version = push_version_;
      if (stopping_ && active_slots_ == 0 && queue_.size() == 0) return;
    }

    sched::Task task;
    bool stolen = false;
    if (acquire(worker, task, stolen)) {
      execute(worker, task, stolen);
      continue;
    }

    Clock::duration recheck = Clock::duration::max();
    if (try_admit(recheck)) continue;

    // Nothing ready and no batch to form: park until a push/submit/slot
    // free bumps push_version_, bounded by the nearest timer (fixed-policy
    // flush or request deadline). The version recorded *before* the scans
    // closes the missed-wakeup window.
    const auto wait_start = Clock::now();
    {
      util::MutexLock lock(m_);
      if (push_version_ == version) {
        if (recheck == Clock::duration::max()) {
          cv_.wait(m_);
        } else if (recheck > Clock::duration::zero()) {
          cv_.wait_for(m_, std::chrono::duration_cast<std::chrono::nanoseconds>(
                               recheck));
        }
      }
    }
    wc.pop_wait_ns.fetch_add(ns_between(wait_start, Clock::now()),
                             std::memory_order_relaxed);
  }
}

bool PipelineServer::acquire(int worker, sched::Task& out, bool& stolen) {
  const int p = static_cast<int>(queues_.size());
  const int w = pool_->size();
  // Home stages first (stage s is home to worker s mod W) ...
  for (int s = worker; s < p; s += w) {
    if (queues_[static_cast<std::size_t>(s)]->pop(out)) {
      stolen = false;
      return true;
    }
  }
  // ... then steal, deepest stage first: finishing in-flight microbatches
  // frees slots (and completes requests) before new work is started.
  for (int s = p - 1; s >= 0; --s) {
    if (home_worker(s) == worker) continue;
    if (queues_[static_cast<std::size_t>(s)]->steal(out)) {
      stolen = true;
      return true;
    }
  }
  return false;
}

void PipelineServer::execute(int worker, const sched::Task& task, bool stolen) {
  const int stage = task.stage;
  const int slot = task.micro;
  Slot& s = slots_[static_cast<std::size_t>(slot)];
  const pipeline::StageModuleRange& range = ranges_[static_cast<std::size_t>(stage)];

  const auto t0 = Clock::now();
  obs::Span span("stage", "serve", stage, slot);
  bool ok = true;
  std::string error;
  try {
    s.flow = model_.forward_range(range.module_first, range.module_last,
                                  std::move(s.flow), weights_, s.caches);
  } catch (const std::exception& e) {
    ok = false;
    error = std::string("serve worker failed at stage ") +
            std::to_string(stage) + ": " + e.what();
  }
  const std::uint64_t ns = ns_between(t0, Clock::now());

  AtomicCounters& sc = stage_counters_[static_cast<std::size_t>(stage)];
  AtomicCounters& wc = worker_counters_[static_cast<std::size_t>(worker)];
  sc.busy_ns.fetch_add(ns, std::memory_order_relaxed);
  sc.items.fetch_add(1, std::memory_order_relaxed);
  wc.busy_ns.fetch_add(ns, std::memory_order_relaxed);
  wc.items.fetch_add(1, std::memory_order_relaxed);
  if (stolen) {
    sc.stolen_items.fetch_add(1, std::memory_order_relaxed);
    sc.stolen_ns.fetch_add(ns, std::memory_order_relaxed);
    wc.stolen_items.fetch_add(1, std::memory_order_relaxed);
    wc.stolen_ns.fetch_add(ns, std::memory_order_relaxed);
  }

  if (!ok) {
    Response base;
    base.status = Status::Error;
    base.error = std::move(error);
    complete_slot(slot, base, nullptr);
    return;
  }
  if (stage + 1 < static_cast<int>(queues_.size())) {
    queues_[static_cast<std::size_t>(stage) + 1]->push(
        {sched::Task::Kind::Forward, stage + 1, slot});
    bump_version();
  } else {
    Response base;  // Status::Ok
    complete_slot(slot, base, &s.flow.x);
  }
}

void PipelineServer::complete_slot(int slot, const Response& base,
                                   const tensor::Tensor* output) {
  Slot& s = slots_[static_cast<std::size_t>(slot)];
  const auto now = Clock::now();

  Status status = base.status;
  std::string error = base.error;
  std::vector<tensor::Tensor> parts;
  if (status == Status::Ok && output != nullptr) {
    try {
      parts = split_output_rows(*output, s.rows);
    } catch (const std::exception& e) {
      status = Status::Error;
      error = e.what();
    }
  }

  const int nreq = static_cast<int>(s.requests.size());
  for (int i = 0; i < nreq; ++i) {
    Request& req = s.requests[static_cast<std::size_t>(i)];
    Response r;
    r.status = status;
    r.error = error;
    r.queue_ms = ms_between(req.enqueue_time, s.formed);
    r.total_ms = ms_between(req.enqueue_time, now);
    r.batch_requests = nreq;
    // The exported p50/p99 are computed from exactly the latencies the
    // client sees in the Response.
    serve_metrics().queue_ms.observe(r.queue_ms);
    serve_metrics().total_ms.observe(r.total_ms);
    obs::instant("complete", "serve", -1, slot,
                 static_cast<std::int64_t>(req.id));
    if (status == Status::Ok) r.output = std::move(parts[static_cast<std::size_t>(i)]);
    req.ticket->complete(std::move(r));
  }
  if (status == Status::Ok) {
    serve_metrics().completed.add(static_cast<std::uint64_t>(nreq));
  } else {
    serve_metrics().errors.add(static_cast<std::uint64_t>(nreq));
  }

  s.requests.clear();
  s.rows.clear();
  s.flow = nn::Flow{};  // release the activation storage while the slot idles
  {
    util::MutexLock lock(m_);
    slot_busy_[static_cast<std::size_t>(slot)] = 0;
    --active_slots_;
    if (status == Status::Ok) {
      counters_.completed_ok += static_cast<std::uint64_t>(nreq);
    } else {
      counters_.errors += static_cast<std::uint64_t>(nreq);
    }
    ++push_version_;
  }
  cv_.notify_all();
}

bool PipelineServer::try_admit(Clock::duration& recheck) {
  const auto now = Clock::now();
  util::MutexLock lock(m_);

  // All queue-consumer operations run under m_, so admission (including
  // deadline expiry) is serialized across workers and FIFO order within a
  // batch is exactly arrival order.
  std::vector<Request> expired;
  const int nexpired = queue_.expire_before(now, expired);
  if (nexpired > 0) {
    counters_.deadline_expired += static_cast<std::uint64_t>(nexpired);
    serve_metrics().expired.add(static_cast<std::uint64_t>(nexpired));
    for (Request& req : expired) {
      Response r;
      r.status = Status::DeadlineExceeded;
      r.queue_ms = ms_between(req.enqueue_time, now);
      r.total_ms = r.queue_ms;
      req.ticket->complete(std::move(r));
    }
  }

  const std::size_t queued = queue_.size();
  if (queued == 0) return false;

  Clock::time_point oldest;
  queue_.oldest_enqueue(oldest);
  const BatchScheduler::Decision d =
      scheduler_.decide(queued, oldest, now, stopping_);

  int slot = -1;
  for (std::size_t i = 0; i < slot_busy_.size(); ++i) {
    if (!slot_busy_[i]) {
      slot = static_cast<int>(i);
      break;
    }
  }

  if (d.admit == 0 || slot < 0) {
    // Bound the caller's sleep by the nearest timer: the fixed-policy
    // flush deadline and/or the earliest request deadline. A freed slot
    // bumps push_version_, so "no slot" needs no timer of its own.
    if (d.admit == 0) recheck = std::min(recheck, d.recheck);
    Clock::time_point dl;
    if (queue_.earliest_deadline(dl)) {
      recheck = std::min(recheck, Clock::duration(dl - now));
    }
    return false;
  }

  // Pop the FIFO prefix of requests batch-compatible with the front.
  std::vector<Request> batch;
  batch.reserve(static_cast<std::size_t>(d.admit));
  Request first;
  if (!queue_.pop_if([](const Request&) { return true; }, first)) return false;
  batch.push_back(std::move(first));
  while (static_cast<int>(batch.size()) < d.admit) {
    const nn::Flow& head = batch.front().input;
    Request next;
    if (!queue_.pop_if(
            [&head](const Request& r) { return batch_compatible(head, r.input); },
            next)) {
      break;
    }
    batch.push_back(std::move(next));
  }

  Slot& s = slots_[static_cast<std::size_t>(slot)];
  s.requests = std::move(batch);
  s.rows.clear();
  s.rows.reserve(s.requests.size());
  for (const Request& req : s.requests) s.rows.push_back(req.input.x.dim(0));
  s.flow = concat_inputs(s.requests);
  s.formed = now;

  slot_busy_[static_cast<std::size_t>(slot)] = 1;
  ++active_slots_;
  counters_.admitted += static_cast<std::uint64_t>(s.requests.size());
  ++counters_.batches;
  serve_metrics().admitted.add(s.requests.size());
  serve_metrics().batches.add();
  obs::instant("admit", "serve", -1, slot,
               static_cast<std::int64_t>(s.requests.front().id));
  queues_[0]->push({sched::Task::Kind::Forward, 0, slot});
  ++push_version_;
  cv_.notify_all();
  return true;
}

void PipelineServer::bump_version() {
  {
    util::MutexLock lock(m_);
    ++push_version_;
  }
  cv_.notify_all();
}

ServeCounters PipelineServer::counters() const {
  util::MutexLock lock(m_);
  return counters_;
}

std::vector<pipeline::StageStats> PipelineServer::stage_stats() const {
  std::vector<pipeline::StageStats> out;
  const std::size_t p = queues_.size();
  out.reserve(p);
  for (std::size_t s = 0; s < p; ++s) {
    const AtomicCounters& c = stage_counters_[s];
    pipeline::StageStats st =
        snapshot(c.busy_ns, c.pop_wait_ns, c.items, c.stolen_items, c.stolen_ns);
    st.pop_wait_ns = 0;  // waiting is a worker-side notion; see worker_stats()
    out.push_back(st);
  }
  return out;
}

std::vector<pipeline::StageStats> PipelineServer::worker_stats() const {
  std::vector<pipeline::StageStats> out;
  const std::size_t w = static_cast<std::size_t>(pool_->size());
  out.reserve(w);
  for (std::size_t i = 0; i < w; ++i) {
    const AtomicCounters& c = worker_counters_[i];
    out.push_back(
        snapshot(c.busy_ns, c.pop_wait_ns, c.items, c.stolen_items, c.stolen_ns));
  }
  return out;
}

void PipelineServer::reset_stage_stats() {
  const auto clear = [](AtomicCounters& c) {
    c.busy_ns.store(0, std::memory_order_relaxed);
    c.pop_wait_ns.store(0, std::memory_order_relaxed);
    c.items.store(0, std::memory_order_relaxed);
    c.stolen_items.store(0, std::memory_order_relaxed);
    c.stolen_ns.store(0, std::memory_order_relaxed);
  };
  for (std::size_t s = 0; s < queues_.size(); ++s) clear(stage_counters_[s]);
  for (int i = 0; i < pool_->size(); ++i) {
    clear(worker_counters_[static_cast<std::size_t>(i)]);
  }
}

}  // namespace pipemare::serve
