#include "src/serve/request_queue.h"

#include <stdexcept>
#include <utility>

namespace pipemare::serve {

std::string_view status_name(Status s) {
  switch (s) {
    case Status::Ok: return "ok";
    case Status::RejectedQueueFull: return "rejected_queue_full";
    case Status::RejectedStopped: return "rejected_stopped";
    case Status::DeadlineExceeded: return "deadline_exceeded";
    case Status::Error: return "error";
  }
  return "unknown";
}

const Response& Ticket::wait() {
  const Response* r = nullptr;
  {
    util::MutexLock lock(m_);
    while (!completed_) cv_.wait(m_);
    r = &response_;
  }
  return *r;
}

bool Ticket::done() const {
  util::MutexLock lock(m_);
  return completed_;
}

bool Ticket::complete(Response r) {
  {
    util::MutexLock lock(m_);
    if (completed_) return false;
    response_ = std::move(r);
    completed_ = true;
  }
  cv_.notify_all();
  return true;
}

RequestQueue::RequestQueue(int capacity) : capacity_(capacity) {
  if (capacity < 1) {
    throw std::invalid_argument("RequestQueue: capacity must be >= 1");
  }
}

RequestQueue::Admit RequestQueue::try_push(Request r) {
  util::MutexLock lock(m_);
  if (closed_) return Admit::Closed;
  if (static_cast<int>(q_.size()) >= capacity_) return Admit::Full;
  q_.push_back(std::move(r));
  return Admit::Ok;
}

bool RequestQueue::pop_if(const std::function<bool(const Request&)>& pred,
                          Request& out) {
  util::MutexLock lock(m_);
  if (q_.empty() || !pred(q_.front())) return false;
  out = std::move(q_.front());
  q_.pop_front();
  return true;
}

int RequestQueue::expire_before(Clock::time_point now,
                                std::vector<Request>& expired) {
  util::MutexLock lock(m_);
  int removed = 0;
  for (auto it = q_.begin(); it != q_.end();) {
    if (it->deadline <= now) {
      expired.push_back(std::move(*it));
      it = q_.erase(it);
      ++removed;
    } else {
      ++it;
    }
  }
  return removed;
}

bool RequestQueue::oldest_enqueue(Clock::time_point& out) const {
  util::MutexLock lock(m_);
  if (q_.empty()) return false;
  out = q_.front().enqueue_time;
  return true;
}

bool RequestQueue::earliest_deadline(Clock::time_point& out) const {
  util::MutexLock lock(m_);
  bool found = false;
  for (const auto& r : q_) {
    if (r.deadline == Clock::time_point::max()) continue;
    if (!found || r.deadline < out) {
      out = r.deadline;
      found = true;
    }
  }
  return found;
}

std::size_t RequestQueue::size() const {
  util::MutexLock lock(m_);
  return q_.size();
}

void RequestQueue::close() {
  util::MutexLock lock(m_);
  closed_ = true;
}

bool RequestQueue::closed() const {
  util::MutexLock lock(m_);
  return closed_;
}

}  // namespace pipemare::serve
