#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "src/nn/model.h"

namespace pipemare::serve {

/// Format version of the checkpoint container written by save_checkpoint.
inline constexpr std::uint32_t kCheckpointFormatVersion = 1;

/// Versioned model checkpoint: the handoff artifact between training and
/// serving. Any backend's trained weights (`backend.weights()`) can be
/// saved against the model that produced them and loaded by a server that
/// builds the same architecture.
///
/// File layout: a container around nn/serialize's weight blob —
///   magic "PMCK" | uint32 container format version | uint64 shape digest |
///   weights blob (nn::write_weights: its own magic/version/count/checksum)
/// The shape digest is an FNV-1a hash over the model's module names and
/// per-module weight-unit sizes, so a loader can prove the weights belong
/// to the architecture it is about to serve without the file shipping the
/// architecture itself — a digest mismatch is a configuration error
/// surfaced at load/validate time, not NaNs at request time.
struct ModelCheckpoint {
  std::uint32_t format_version = kCheckpointFormatVersion;
  std::uint64_t digest = 0;
  std::vector<float> weights;

  /// Throws std::runtime_error when this checkpoint cannot drive `model`
  /// (shape-digest or parameter-count mismatch, each named in the
  /// message).
  void validate_against(const nn::Model& model) const;
};

/// Architecture fingerprint of a model: FNV-1a over every module's name
/// and weight-unit sizes (both split_bias regimes), in order. Two models
/// digest equal iff they would lay out the flat parameter vector the same
/// way and run the same module stack.
std::uint64_t shape_digest(const nn::Model& model);

/// Writes a checkpoint of `weights` for `model`. Throws
/// std::invalid_argument when weights.size() != model.param_count() and
/// std::runtime_error on I/O failure.
void save_checkpoint(const std::string& path, const nn::Model& model,
                     std::span<const float> weights);

/// Reads a checkpoint; throws std::runtime_error on I/O failure or a
/// malformed file. Call validate_against before serving with it.
ModelCheckpoint load_checkpoint(const std::string& path);

}  // namespace pipemare::serve
