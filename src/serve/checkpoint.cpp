#include "src/serve/checkpoint.h"

#include <cstring>
#include <fstream>
#include <stdexcept>

#include "src/nn/serialize.h"

namespace pipemare::serve {

namespace {

constexpr char kMagic[4] = {'P', 'M', 'C', 'K'};

template <class T>
void write_pod(std::ostream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(value));
}

template <class T>
bool read_pod(std::istream& in, T& value) {
  in.read(reinterpret_cast<char*>(&value), sizeof(value));
  return static_cast<bool>(in);
}

}  // namespace

std::uint64_t shape_digest(const nn::Model& model) {
  std::uint64_t h = nn::fnv1a(nullptr, 0);
  for (int i = 0; i < model.num_modules(); ++i) {
    const std::string name = model.module(i).name();
    h = nn::fnv1a(name.data(), name.size(), h);
    for (bool split_bias : {false, true}) {
      auto sizes = model.module(i).param_unit_sizes(split_bias);
      h = nn::fnv1a(sizes.data(), sizes.size() * sizeof(sizes[0]), h);
    }
  }
  return h;
}

void ModelCheckpoint::validate_against(const nn::Model& model) const {
  if (digest != shape_digest(model)) {
    throw std::runtime_error(
        "ModelCheckpoint: shape digest mismatch — the checkpoint was saved "
        "for a different architecture than the model being served");
  }
  if (static_cast<std::int64_t>(weights.size()) != model.param_count()) {
    throw std::runtime_error(
        "ModelCheckpoint: parameter count mismatch (checkpoint has " +
        std::to_string(weights.size()) + ", model expects " +
        std::to_string(model.param_count()) + ")");
  }
}

void save_checkpoint(const std::string& path, const nn::Model& model,
                     std::span<const float> weights) {
  if (static_cast<std::int64_t>(weights.size()) != model.param_count()) {
    throw std::invalid_argument(
        "save_checkpoint: weights.size() (" + std::to_string(weights.size()) +
        ") != model.param_count() (" + std::to_string(model.param_count()) + ")");
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("save_checkpoint: cannot open " + path);
  out.write(kMagic, sizeof(kMagic));
  write_pod(out, kCheckpointFormatVersion);
  write_pod(out, shape_digest(model));
  nn::write_weights(out, weights);
  if (!out) throw std::runtime_error("save_checkpoint: write failed for " + path);
}

ModelCheckpoint load_checkpoint(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("load_checkpoint: cannot open " + path);
  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(magic)) != 0) {
    throw std::runtime_error("load_checkpoint: bad magic in " + path);
  }
  ModelCheckpoint ckpt;
  if (!read_pod(in, ckpt.format_version) || !read_pod(in, ckpt.digest)) {
    throw std::runtime_error("load_checkpoint: truncated header in " + path);
  }
  if (ckpt.format_version == 0 || ckpt.format_version > kCheckpointFormatVersion) {
    throw std::runtime_error("load_checkpoint: unsupported format version " +
                             std::to_string(ckpt.format_version) + " in " + path);
  }
  ckpt.weights = nn::read_weights(in, path);
  return ckpt;
}

}  // namespace pipemare::serve
