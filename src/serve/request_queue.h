#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/nn/flow.h"
#include "src/util/sync.h"

namespace pipemare::serve {

using Clock = std::chrono::steady_clock;

/// Terminal status of a served request.
enum class Status {
  Ok = 0,
  RejectedQueueFull,  ///< admission backpressure: the bounded queue was full
  RejectedStopped,    ///< server not (or no longer) accepting requests
  DeadlineExceeded,   ///< deadline passed before execution began
  Error,              ///< worker-side exception; message in Response::error
};

std::string_view status_name(Status s);

/// What the client gets back for one request.
struct Response {
  Status status = Status::Ok;
  std::string error;       ///< Status::Error only
  tensor::Tensor output;   ///< this request's rows of the model output (Ok only)
  double queue_ms = 0.0;   ///< admission -> microbatch formation
  double total_ms = 0.0;   ///< admission -> completion
  int batch_requests = 0;  ///< requests in the microbatch that served it
};

/// One-shot completion handle returned by PipelineServer::submit. The
/// serving workers fulfil it exactly once; the client blocks on wait() (or
/// polls done()) from any thread.
class Ticket {
 public:
  /// Blocks until the request reaches a terminal status, then returns the
  /// response (immutable once completed — the reference stays valid for
  /// the ticket's lifetime).
  const Response& wait();

  bool done() const;

  /// Server side: completes the ticket and wakes waiters. A second
  /// completion is ignored (returns false) — e.g. a request that expired
  /// at admission cannot later be completed by a worker.
  bool complete(Response r);

 private:
  mutable util::Mutex m_;
  util::CondVar cv_;
  bool completed_ GUARDED_BY(m_) = false;
  Response response_ GUARDED_BY(m_);
};

using TicketPtr = std::shared_ptr<Ticket>;

/// One admitted inference request: the input activation bundle plus the
/// admission bookkeeping the batch scheduler and deadline checks consume.
struct Request {
  std::uint64_t id = 0;
  nn::Flow input;  ///< x (+ aux) with a leading batch dimension; ctx/skip empty
  Clock::time_point enqueue_time{};
  Clock::time_point deadline = Clock::time_point::max();  ///< max() = none
  TicketPtr ticket;
};

/// Bounded multi-producer admission queue between clients and the serving
/// pipeline. try_push never blocks: at capacity the caller gets
/// Admit::Full back immediately and the server turns that into a
/// RejectedQueueFull response — backpressure is an explicit error, never
/// an unbounded client stall. Consumers (the admitting worker) drain it
/// FIFO; expire_before removes timed-out requests wherever they sit.
///
/// All state is GUARDED_BY(m_): the producer/consumer discipline is proven
/// by a Clang -Wthread-safety build, not just by the TSan CI job.
class RequestQueue {
 public:
  explicit RequestQueue(int capacity);
  RequestQueue(const RequestQueue&) = delete;
  RequestQueue& operator=(const RequestQueue&) = delete;

  enum class Admit { Ok, Full, Closed };

  /// Enqueues `r` (any thread; never blocks). On Full/Closed the request
  /// is dropped — the caller still holds the ticket to complete.
  Admit try_push(Request r);

  /// Pops the oldest request iff `pred(front)` allows it — the batch
  /// assembler's "take the FIFO prefix of compatible requests" primitive.
  bool pop_if(const std::function<bool(const Request&)>& pred, Request& out);

  /// Removes every request whose deadline is at or before `now`
  /// (preserving the order of the rest) and appends them to `expired`.
  /// Returns the number removed.
  int expire_before(Clock::time_point now, std::vector<Request>& expired);

  /// Enqueue time of the oldest pending request (false when empty) — the
  /// batch scheduler's max-wait input.
  bool oldest_enqueue(Clock::time_point& out) const;

  /// Earliest request deadline in the queue (false when empty or no
  /// request has one) — bounds how long an idle worker may sleep.
  bool earliest_deadline(Clock::time_point& out) const;

  std::size_t size() const;
  int capacity() const { return capacity_; }

  /// Closes admission: subsequent try_push returns Closed. Requests
  /// already queued stay poppable (the server drains them on stop).
  void close();
  bool closed() const;

 private:
  const int capacity_;
  mutable util::Mutex m_;
  std::deque<Request> q_ GUARDED_BY(m_);
  bool closed_ GUARDED_BY(m_) = false;
};

}  // namespace pipemare::serve
