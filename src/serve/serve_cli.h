#pragma once

#include <string>

#include "src/serve/pipeline_server.h"

namespace pipemare::util {
class Cli;
}

namespace pipemare::serve {

/// Applies the shared serving CLI flags onto `cfg` (the one parser the
/// serve bench and example use):
///   --serve-policy=fixed|continuous   batch formation policy
///   --serve-batch=<int>               max requests per microbatch
///   --serve-max-wait=<ms>             fixed policy: partial-batch flush
///                                     timeout (rejected under continuous —
///                                     it has no wait to bound)
///   --serve-stages=<int>              pipeline stages
///   --serve-workers=<int>             worker threads (0 = auto)
///   --serve-queue=<int>               admission queue capacity
///   --serve-slots=<int>               in-flight microbatch slots (0 = auto)
/// Absent flags keep the configuration already in `cfg`. Flag routing uses
/// the same util::FlagRule table mechanism as core::parse_backend_cli, so
/// a flag the selected policy cannot honor throws std::invalid_argument
/// instead of being silently dropped. The resulting config is validated
/// (model-independent checks) before returning.
void parse_serve_cli(const util::Cli& cli, ServeConfig& cfg);

/// The serving-flag usage block for --help text.
std::string serve_cli_help();

}  // namespace pipemare::serve
