#include "src/pipeline/repartition.h"

#include <charconv>
#include <stdexcept>
#include <string>

namespace pipemare::pipeline {

RepartitionConfig parse_repartition_spec(std::string_view text) {
  RepartitionConfig cfg;
  if (text == "off") {
    cfg.enabled = false;
    return cfg;
  }
  if (text == "auto") {
    cfg.enabled = true;
    return cfg;
  }
  constexpr std::string_view kAutoPrefix = "auto,";
  if (text.substr(0, kAutoPrefix.size()) == kAutoPrefix) {
    std::string_view num = text.substr(kAutoPrefix.size());
    double threshold = 0.0;
    auto [ptr, ec] = std::from_chars(num.data(), num.data() + num.size(), threshold);
    if (ec == std::errc() && ptr == num.data() + num.size() && threshold > 1.0) {
      cfg.enabled = true;
      cfg.threshold = threshold;
      return cfg;
    }
  }
  throw std::invalid_argument(
      "parse_repartition_spec: '" + std::string(text) +
      "' is not recognized; use off, auto, or auto,<threshold> with "
      "threshold > 1.0 (e.g. auto,1.5)");
}

std::string repartition_spec_name(const RepartitionConfig& cfg) {
  if (!cfg.enabled) return "off";
  return "auto," + std::to_string(cfg.threshold);
}

std::vector<double> observed_unit_costs(const Partition& partition,
                                        std::span<const std::uint64_t> busy_ns) {
  if (busy_ns.size() != static_cast<std::size_t>(partition.num_stages)) {
    throw std::invalid_argument(
        "observed_unit_costs: busy vector has " + std::to_string(busy_ns.size()) +
        " slots but the partition has " + std::to_string(partition.num_stages) +
        " stages");
  }
  const auto u = static_cast<std::size_t>(partition.num_units());
  // Per-stage predicted totals and unit counts, for the within-stage split.
  std::vector<double> stage_pred(static_cast<std::size_t>(partition.num_stages), 0.0);
  std::vector<int> stage_units(static_cast<std::size_t>(partition.num_stages), 0);
  for (std::size_t i = 0; i < u; ++i) {
    auto s = static_cast<std::size_t>(partition.unit_stage[i]);
    stage_pred[s] += partition.unit_cost[i];
    ++stage_units[s];
  }
  std::vector<double> costs(u, 0.0);
  for (std::size_t i = 0; i < u; ++i) {
    auto s = static_cast<std::size_t>(partition.unit_stage[i]);
    double observed = static_cast<double>(busy_ns[s]);
    double share = stage_pred[s] > 0.0
                       ? partition.unit_cost[i] / stage_pred[s]
                       : 1.0 / static_cast<double>(stage_units[s]);
    costs[i] = observed * share;
  }
  return costs;
}

void validate_repartition(const Partition& from, const Partition& to) {
  if (to.num_stages != from.num_stages) {
    throw std::invalid_argument(
        "validate_repartition: stage count changed (" +
        std::to_string(from.num_stages) + " -> " + std::to_string(to.num_stages) +
        "); migration moves units between existing stages only");
  }
  if (to.split_bias != from.split_bias) {
    throw std::invalid_argument(
        "validate_repartition: split_bias changed; the unit decomposition "
        "must be identical on both sides of a migration");
  }
  if (to.units.size() != from.units.size()) {
    throw std::invalid_argument(
        "validate_repartition: unit count changed (" +
        std::to_string(from.units.size()) + " -> " + std::to_string(to.units.size()) +
        "); both partitions must be built from the same model");
  }
  for (std::size_t i = 0; i < from.units.size(); ++i) {
    const nn::WeightUnit& a = from.units[i];
    const nn::WeightUnit& b = to.units[i];
    if (a.module != b.module || a.offset != b.offset || a.size != b.size) {
      throw std::invalid_argument(
          "validate_repartition: weight unit " + std::to_string(i) +
          " differs between partitions; both must be built from the same model");
    }
  }
}

Repartitioner::Repartitioner(const nn::Model& model, RepartitionConfig cfg)
    : model_(&model), cfg_(cfg) {
  if (cfg_.threshold <= 1.0) {
    throw std::invalid_argument("Repartitioner: threshold must be > 1.0 (got " +
                                std::to_string(cfg_.threshold) + ")");
  }
  if (cfg_.min_epochs_between < 1) {
    throw std::invalid_argument("Repartitioner: min_epochs_between must be >= 1");
  }
}

std::optional<Partition> Repartitioner::plan(const Partition& current,
                                             std::span<const std::uint64_t> busy_ns,
                                             RepartitionDecision* decision) const {
  RepartitionDecision d;
  std::vector<double> observed_stage(busy_ns.size());
  for (std::size_t s = 0; s < busy_ns.size(); ++s) {
    observed_stage[s] = static_cast<double>(busy_ns[s]);
  }
  d.observed_ratio = balance_ratio(observed_stage);

  std::vector<double> costs = observed_unit_costs(current, busy_ns);
  Partition planned = make_partition(*model_, current.num_stages,
                                     current.split_bias, costs);
  d.planned_ratio = planned.balance_ratio();

  // Migrate only when the imbalance is real (past the threshold), the plan
  // genuinely helps, and it actually moves something.
  d.migrate = d.observed_ratio > cfg_.threshold &&
              d.planned_ratio < d.observed_ratio &&
              planned.unit_stage != current.unit_stage;
  if (decision != nullptr) *decision = d;
  if (!d.migrate) return std::nullopt;
  return planned;
}

}  // namespace pipemare::pipeline
