#pragma once

#include <vector>

#include "src/nn/model.h"

namespace pipemare::pipeline {

/// Assignment of a model's weight units to pipeline stages.
///
/// Mirrors the paper's partitioning rule (Section 4.1): traverse the model
/// weights in topological order, treating weight+bias of a layer as one
/// unit (or as two, in the "2x stages" regime), and divide the units
/// evenly into P contiguous groups.
struct Partition {
  int num_stages = 1;
  bool split_bias = false;
  std::vector<nn::WeightUnit> units;  ///< topological order
  std::vector<int> unit_stage;        ///< unit index -> stage index
  std::vector<std::int64_t> stage_param_count;  ///< params per stage
  std::int64_t total_params = 0;

  /// Stage of a module (the stage of its first weight unit; parameter-free
  /// modules inherit the stage of the nearest preceding weight unit).
  std::vector<int> module_stage;

  int num_units() const { return static_cast<int>(units.size()); }
};

/// Builds the partition. Requires 1 <= num_stages <= number of weight
/// units. Stage g receives units [floor(g*U/P), floor((g+1)*U/P)).
Partition make_partition(const nn::Model& model, int num_stages, bool split_bias);

/// The largest possible stage count for a model: one stage per weight unit
/// (the paper's finest granularity; with split_bias this is the "2x" case).
int max_stages(const nn::Model& model, bool split_bias);

}  // namespace pipemare::pipeline
