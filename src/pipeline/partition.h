#pragma once

#include <span>
#include <string_view>
#include <vector>

#include "src/nn/model.h"
#include "src/pipeline/config.h"

namespace pipemare::pipeline {

/// Assignment of a model's weight units to pipeline stages.
///
/// Units come from the graph IR (src/graph/): the model is lowered to an
/// op graph and the units are enumerated in its deterministic topological
/// linearization — today's chain models linearize to the identity order,
/// so this reproduces the raw `model.weight_units` order exactly (tests
/// assert it), while non-chain lowerings get contiguous-cut legality for
/// free (every contiguous cut of a topological order is a legal stage
/// boundary).
///
/// Built by one of two strategies (PartitionStrategy):
///  - Uniform — the paper's rule (Section 4.1): traverse the model weights
///    in topological order, treating weight+bias of a layer as one unit
///    (or as two, in the "2x stages" regime), and divide the units evenly
///    *by count* into P contiguous groups.
///  - Balanced — PipeDream-style: minimize the maximum per-stage cost over
///    all contiguous splits, with per-unit costs from the cost model
///    (cost_model.h).
struct Partition {
  int num_stages = 1;
  bool split_bias = false;
  PartitionStrategy strategy = PartitionStrategy::Uniform;
  std::vector<nn::WeightUnit> units;  ///< topological order
  std::vector<int> unit_stage;        ///< unit index -> stage index
  std::vector<std::int64_t> stage_param_count;  ///< params per stage
  std::int64_t total_params = 0;

  /// Stage of a module (the stage of its first weight unit; parameter-free
  /// modules inherit the stage of the nearest preceding weight unit).
  std::vector<int> module_stage;

  /// The cost model the split was computed against: per-unit costs (all 1
  /// under Uniform, i.e. the unit count is the cost) and their per-stage
  /// totals. Units: whatever the cost source produced — analytic flops,
  /// measured nanoseconds, or unit count — only ratios are meaningful.
  std::vector<double> unit_cost;
  std::vector<double> stage_cost;

  int num_units() const { return static_cast<int>(units.size()); }

  /// Load imbalance of the split: max stage cost / mean stage cost. 1.0 is
  /// a perfect balance; the threaded engine's throughput is bounded by the
  /// slowest stage, so this ratio is the predicted slowdown vs perfect.
  double balance_ratio() const;
};

/// Max / mean over a per-stage cost (or load) vector: 1.0 is perfect
/// balance, and the ratio is the predicted slowdown of a stage-bound
/// executor vs a perfect split. Shared by Partition::balance_ratio, the
/// StageLoadObserver's busy-time spread, and the partition bench.
double balance_ratio(std::span<const double> stage_costs);

/// Builds the default (uniform) partition. Requires 1 <= num_stages <=
/// number of weight units. Stage g receives units
/// [floor(g*U/P), floor((g+1)*U/P)).
Partition make_partition(const nn::Model& model, int num_stages, bool split_bias);

/// Builds the partition for the given spec: Uniform reproduces
/// make_partition above bitwise; Balanced profiles per-unit costs via the
/// cost model and solves the contiguous min-max split.
Partition make_partition(const nn::Model& model, int num_stages, bool split_bias,
                         const PartitionSpec& spec);

/// Balanced split with caller-supplied unit costs (the cost model is
/// bypassed); exposed for tests and custom cost sources.
Partition make_partition(const nn::Model& model, int num_stages, bool split_bias,
                         std::span<const double> costs);

/// The optimal contiguous min-max split: assigns each of costs.size()
/// units to one of `num_stages` contiguous, non-empty groups minimizing
/// the maximum group cost (classic linear-partition DP). Returns unit ->
/// stage. Requires 1 <= num_stages <= costs.size(); negative costs are
/// clamped to 0.
std::vector<int> balanced_contiguous_split(std::span<const double> costs,
                                           int num_stages);

/// The largest possible stage count for a model: one stage per weight unit
/// (the paper's finest granularity; with split_bias this is the "2x" case).
int max_stages(const nn::Model& model, bool split_bias);

/// A stage's contiguous slice of the model: modules [module_first,
/// module_last) and the weight units those modules own, [unit_first,
/// unit_last). With split_bias a module's bias unit may be *scheduled* on
/// the next stage while the module executes here; the unit range follows
/// module ownership, and each unit's staleness follows its own scheduled
/// stage. Shared by ThreadedEngine and sched::StealingEngine (and
/// recomputed by both on repartition()).
struct StageModuleRange {
  int module_first = 0;
  int module_last = 0;
  int unit_first = 0;
  int unit_last = 0;
};

/// Per-stage module/unit ranges of a partition. Relies on module_stage and
/// the units' module ids being non-decreasing (guaranteed by
/// make_partition's identity linearization).
std::vector<StageModuleRange> stage_module_ranges(const Partition& partition);

/// Backend-validation helper: checks the (engine, model) partitioning
/// configuration and throws std::invalid_argument with a message naming
/// `backend` and max_stages on failure. `model` may be null (registry
/// validation without a model checks everything model-independent).
void validate_partition_config(std::string_view backend, const nn::Model* model,
                               int num_stages, bool split_bias,
                               const PartitionSpec& spec);

}  // namespace pipemare::pipeline
