#include "src/pipeline/engine.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "src/pipeline/repartition.h"

namespace pipemare::pipeline {

std::string method_name(Method m) {
  switch (m) {
    case Method::Sync: return "GPipe";
    case Method::PipeDream: return "PipeDream";
    case Method::PipeMare: return "PipeMare";
  }
  return "?";
}

std::vector<optim::LrSegment> stage_lr_segments(const Partition& partition,
                                                double base_lr,
                                                std::span<const double> scales) {
  std::vector<optim::LrSegment> segs;
  segs.reserve(static_cast<std::size_t>(partition.num_stages));
  std::int64_t offset = 0;
  for (int s = 0; s < partition.num_stages; ++s) {
    std::int64_t size = partition.stage_param_count[static_cast<std::size_t>(s)];
    double scale = scales.empty() ? 1.0 : scales[static_cast<std::size_t>(s)];
    segs.push_back({offset, size, base_lr * scale});
    offset += size;
  }
  return segs;
}

std::vector<double> stage_tau_fwd_vector(const Schedule& schedule) {
  std::vector<double> tau(static_cast<std::size_t>(schedule.stages()));
  for (int s = 0; s < schedule.stages(); ++s) {
    tau[static_cast<std::size_t>(s)] = schedule.mean_tau_fwd(s);
  }
  return tau;
}

PipelineEngine::PipelineEngine(const nn::Model& model, EngineConfig cfg, std::uint64_t seed)
    : model_(model),
      cfg_(std::move(cfg)),
      partition_(make_partition(model, cfg_.num_stages, cfg_.split_bias, cfg_.partition)),
      schedule_(cfg_.num_stages, cfg_.num_microbatches),
      store_(model, cfg_, partition_, schedule_, seed) {
  // The probe microbatch is consumed by make_partition above; don't keep
  // its tensors alive for the whole engine lifetime.
  cfg_.partition.probe.reset();
  grads_.assign(store_.live().size(), 0.0F);

  if (cfg_.recompute_segments > 0) {
    int m = model_.num_modules();
    int r = std::min(cfg_.recompute_segments, m);
    for (int s = 0; s < r; ++s) {
      int first = s * m / r;
      int last = (s + 1) * m / r;
      if (first < last) segments_.emplace_back(first, last);
    }
  }
}

void PipelineEngine::repartition(const Partition& next) {
  validate_repartition(partition_, next);
  // WeightVersions borrows partition_ by reference, so assigning in place
  // re-points every staleness lookup at the new unit -> stage map; the
  // version ring and live weights are untouched (recompute segment ends
  // re-read module_stage per step, so they follow too).
  partition_ = next;
}

void PipelineEngine::assemble_forward_params(int micro, std::vector<float>& out) const {
  out.resize(store_.live().size());
  store_.assemble_forward_units(0, partition_.num_units(), micro, out);
}

void PipelineEngine::assemble_backward_params(int micro,
                                              const std::vector<float>& fwd_params,
                                              std::vector<float>& out) const {
  if (cfg_.method == Method::Sync || cfg_.method == Method::PipeDream) {
    // Synchronous semantics: the backward pass sees exactly the weights
    // the forward pass used (GPipe trivially; PipeDream via stashing).
    out = fwd_params;
    return;
  }
  out.resize(store_.live().size());
  store_.assemble_backward_units(0, partition_.num_units(), micro, out);
}

void PipelineEngine::assemble_recompute_params(int micro, int segment_end_stage,
                                               const std::vector<float>& fwd_params,
                                               std::vector<float>& out) const {
  if (cfg_.method != Method::PipeMare) {
    // Synchronous methods recompute with the same weights the forward
    // used, so recomputation is statistically invisible.
    out = fwd_params;
    return;
  }
  out.resize(store_.live().size());
  std::span<const float> delta = store_.delta();
  for (int u = 0; u < partition_.num_units(); ++u) {
    const nn::WeightUnit& unit = partition_.units[static_cast<std::size_t>(u)];
    int stage = partition_.unit_stage[static_cast<std::size_t>(u)];
    int stale = schedule_.recompute_staleness(std::min(stage, segment_end_stage), micro,
                                              segment_end_stage);
    // Stages after the segment end never recompute; give them their
    // forward weights (they are not used by the segment re-run anyway).
    if (stage > segment_end_stage) stale = schedule_.fwd_staleness(stage, micro);
    const std::vector<float>& src =
        store_.version(std::max<std::int64_t>(store_.step() - stale, 0));
    std::copy(src.begin() + unit.offset, src.begin() + unit.offset + unit.size,
              out.begin() + unit.offset);
    if (cfg_.discrepancy_correction && stage <= segment_end_stage) {
      // T2 for recompute (Appendix D): u_recomp = w_{t-tau_r} -
      // (tau_fwd - tau_recomp) * delta.
      double gap = cfg_.t2_per_microbatch
                       ? static_cast<double>(schedule_.fwd_staleness(stage, micro) - stale)
                       : schedule_.mean_tau_fwd(stage) -
                             schedule_.mean_tau_recompute(stage, segment_end_stage);
      if (gap > 0.0) {
        auto g = static_cast<float>(gap);
        for (std::int64_t i = unit.offset; i < unit.offset + unit.size; ++i) {
          out[static_cast<std::size_t>(i)] -= g * delta[static_cast<std::size_t>(i)];
        }
      }
    }
  }
}

PipelineEngine::StepResult PipelineEngine::forward_backward(
    const std::vector<nn::Flow>& micro_inputs,
    const std::vector<tensor::Tensor>& micro_targets, const nn::LossHead& head) {
  int n = cfg_.num_microbatches;
  if (static_cast<int>(micro_inputs.size()) != n ||
      static_cast<int>(micro_targets.size()) != n) {
    throw std::invalid_argument("forward_backward: expected N microbatches");
  }
  std::fill(grads_.begin(), grads_.end(), 0.0F);
  StepResult result;
  std::vector<float> w_fwd, w_bkwd, w_rec;
  auto caches = model_.make_caches();
  for (int micro = 0; micro < n; ++micro) {
    assemble_forward_params(micro, w_fwd);

    nn::Flow input = micro_inputs[static_cast<std::size_t>(micro)];
    input.training = true;
    input.micro = micro;
    input.step = store_.step();
    nn::Flow out;
    std::vector<nn::Flow> checkpoints;  // segment input snapshots
    if (segments_.empty()) {
      out = model_.forward(std::move(input), w_fwd, caches);
    } else {
      nn::Flow cur = std::move(input);
      for (const auto& [first, last] : segments_) {
        checkpoints.push_back(cur);
        cur = model_.forward_range(first, last, std::move(cur), w_fwd, caches);
      }
      out = std::move(cur);
    }

    nn::LossResult lr = head.forward_backward(out.x, micro_targets[static_cast<std::size_t>(micro)]);
    if (!std::isfinite(lr.loss)) {
      // Unified non-finite contract (see StepResult): first non-finite
      // loss, zeroed metrics, gradients unspecified.
      result.finite = false;
      result.loss = lr.loss;
      result.correct = 0.0;
      result.count = 0.0;
      return result;
    }
    result.loss += lr.loss / n;
    result.correct += lr.correct;
    result.count += lr.count;

    assemble_backward_params(micro, w_fwd, w_bkwd);
    if (!segments_.empty()) {
      // Rebuild every segment's activation caches from its checkpoint
      // using recompute-scheduled weights (PipeMare Recompute).
      for (std::size_t s = 0; s < segments_.size(); ++s) {
        auto [first, last] = segments_[s];
        int end_stage = partition_.module_stage[static_cast<std::size_t>(last - 1)];
        assemble_recompute_params(micro, end_stage, w_fwd, w_rec);
        (void)model_.forward_range(first, last, checkpoints[s], w_rec, caches);
      }
    }
    nn::Flow dflow;
    dflow.x = lr.doutput;
    (void)model_.backward(std::move(dflow), w_bkwd, caches, grads_);
  }
  // Microbatch gradients are each a mean over their M samples; dividing
  // the accumulated sum by N yields the minibatch-mean gradient, matching
  // the convention the hyperparameters are tuned for.
  auto inv_n = 1.0F / static_cast<float>(n);
  for (float& g : grads_) {
    g *= inv_n;
    if (!std::isfinite(g)) result.finite = false;
  }
  return result;
}

nn::LossResult evaluate_forward(const nn::Model& model, std::span<const float> params,
                                const nn::Flow& input, const tensor::Tensor& target,
                                const nn::LossHead& head) {
  auto caches = model.make_caches();
  nn::Flow out = model.forward(input, params, caches);
  return head.forward_backward(out.x, target);
}

nn::LossResult PipelineEngine::evaluate(const nn::Flow& input, const tensor::Tensor& target,
                                        const nn::LossHead& head) const {
  return evaluate_forward(model_, store_.live(), input, target, head);
}

}  // namespace pipemare::pipeline
