#include "src/pipeline/engine.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "src/theory/stability.h"

namespace pipemare::pipeline {

std::string method_name(Method m) {
  switch (m) {
    case Method::Sync: return "GPipe";
    case Method::PipeDream: return "PipeDream";
    case Method::PipeMare: return "PipeMare";
  }
  return "?";
}

PipelineEngine::PipelineEngine(const nn::Model& model, EngineConfig cfg, std::uint64_t seed)
    : model_(model),
      cfg_(cfg),
      partition_(make_partition(model, cfg.num_stages, cfg.split_bias)),
      schedule_(cfg.num_stages, cfg.num_microbatches) {
  live_.assign(static_cast<std::size_t>(model.param_count()), 0.0F);
  util::Rng rng(seed);
  model_.init_params(live_, rng);
  prev_live_ = live_;
  grads_.assign(live_.size(), 0.0F);
  delta_.assign(live_.size(), 0.0F);

  history_depth_ = schedule_.max_staleness() + 2;
  history_.assign(static_cast<std::size_t>(history_depth_), {});
  history_[0] = live_;  // version 0 = initial weights

  if (cfg_.recompute_segments > 0) {
    int m = model_.num_modules();
    int r = std::min(cfg_.recompute_segments, m);
    for (int s = 0; s < r; ++s) {
      int first = s * m / r;
      int last = (s + 1) * m / r;
      if (first < last) segments_.emplace_back(first, last);
    }
  }
}

const std::vector<float>& PipelineEngine::version(std::int64_t v) const {
  if (v < 0) v = 0;
  if (v > step_ || v < step_ - history_depth_ + 1) {
    throw std::logic_error("PipelineEngine: weight version outside history window");
  }
  const auto& slot = history_[static_cast<std::size_t>(v % history_depth_)];
  if (slot.empty()) throw std::logic_error("PipelineEngine: empty history slot");
  return slot;
}

void PipelineEngine::assemble_forward_params(int micro, std::vector<float>& out) const {
  out.resize(live_.size());
  if (cfg_.method == Method::Sync) {
    std::copy(live_.begin(), live_.end(), out.begin());
    return;
  }
  for (int u = 0; u < partition_.num_units(); ++u) {
    const nn::WeightUnit& unit = partition_.units[static_cast<std::size_t>(u)];
    int stage = partition_.unit_stage[static_cast<std::size_t>(u)];
    std::int64_t v = step_ - schedule_.fwd_staleness(stage, micro);
    const std::vector<float>& src = version(std::max<std::int64_t>(v, 0));
    std::copy(src.begin() + unit.offset, src.begin() + unit.offset + unit.size,
              out.begin() + unit.offset);
  }
}

void PipelineEngine::assemble_backward_params(int micro,
                                              const std::vector<float>& fwd_params,
                                              std::vector<float>& out) const {
  switch (cfg_.method) {
    case Method::Sync:
    case Method::PipeDream:
      // Synchronous semantics: the backward pass sees exactly the weights
      // the forward pass used (GPipe trivially; PipeDream via stashing).
      out = fwd_params;
      return;
    case Method::PipeMare:
      break;
  }
  // PipeMare: tau_bkwd = 0, so backward reads the live weights...
  out.assign(live_.begin(), live_.end());
  if (!cfg_.discrepancy_correction) return;
  // ...optionally T2-corrected toward what the forward pass saw:
  // u_bkwd = w - (tau_fwd - tau_bkwd) * delta.
  for (int u = 0; u < partition_.num_units(); ++u) {
    const nn::WeightUnit& unit = partition_.units[static_cast<std::size_t>(u)];
    int stage = partition_.unit_stage[static_cast<std::size_t>(u)];
    double gap = cfg_.t2_per_microbatch
                     ? static_cast<double>(schedule_.fwd_staleness(stage, micro))
                     : schedule_.mean_tau_fwd(stage);
    if (gap <= 0.0) continue;
    auto g = static_cast<float>(gap);
    for (std::int64_t i = unit.offset; i < unit.offset + unit.size; ++i) {
      out[static_cast<std::size_t>(i)] -= g * delta_[static_cast<std::size_t>(i)];
    }
  }
}

void PipelineEngine::assemble_recompute_params(int micro, int segment_end_stage,
                                               const std::vector<float>& fwd_params,
                                               std::vector<float>& out) const {
  if (cfg_.method != Method::PipeMare) {
    // Synchronous methods recompute with the same weights the forward
    // used, so recomputation is statistically invisible.
    out = fwd_params;
    return;
  }
  out.resize(live_.size());
  for (int u = 0; u < partition_.num_units(); ++u) {
    const nn::WeightUnit& unit = partition_.units[static_cast<std::size_t>(u)];
    int stage = partition_.unit_stage[static_cast<std::size_t>(u)];
    int stale = schedule_.recompute_staleness(std::min(stage, segment_end_stage), micro,
                                              segment_end_stage);
    // Stages after the segment end never recompute; give them their
    // forward weights (they are not used by the segment re-run anyway).
    if (stage > segment_end_stage) stale = schedule_.fwd_staleness(stage, micro);
    const std::vector<float>& src = version(std::max<std::int64_t>(step_ - stale, 0));
    std::copy(src.begin() + unit.offset, src.begin() + unit.offset + unit.size,
              out.begin() + unit.offset);
    if (cfg_.discrepancy_correction && stage <= segment_end_stage) {
      // T2 for recompute (Appendix D): u_recomp = w_{t-tau_r} -
      // (tau_fwd - tau_recomp) * delta.
      double gap = cfg_.t2_per_microbatch
                       ? static_cast<double>(schedule_.fwd_staleness(stage, micro) - stale)
                       : schedule_.mean_tau_fwd(stage) -
                             schedule_.mean_tau_recompute(stage, segment_end_stage);
      if (gap > 0.0) {
        auto g = static_cast<float>(gap);
        for (std::int64_t i = unit.offset; i < unit.offset + unit.size; ++i) {
          out[static_cast<std::size_t>(i)] -= g * delta_[static_cast<std::size_t>(i)];
        }
      }
    }
  }
}

PipelineEngine::StepResult PipelineEngine::forward_backward(
    const std::vector<nn::Flow>& micro_inputs,
    const std::vector<tensor::Tensor>& micro_targets, const nn::LossHead& head) {
  int n = cfg_.num_microbatches;
  if (static_cast<int>(micro_inputs.size()) != n ||
      static_cast<int>(micro_targets.size()) != n) {
    throw std::invalid_argument("forward_backward: expected N microbatches");
  }
  std::fill(grads_.begin(), grads_.end(), 0.0F);
  StepResult result;
  std::vector<float> w_fwd, w_bkwd, w_rec;
  auto caches = model_.make_caches();
  for (int micro = 0; micro < n; ++micro) {
    assemble_forward_params(micro, w_fwd);

    nn::Flow input = micro_inputs[static_cast<std::size_t>(micro)];
    input.training = true;
    nn::Flow out;
    std::vector<nn::Flow> checkpoints;  // segment input snapshots
    if (segments_.empty()) {
      out = model_.forward(std::move(input), w_fwd, caches);
    } else {
      nn::Flow cur = std::move(input);
      for (const auto& [first, last] : segments_) {
        checkpoints.push_back(cur);
        cur = model_.forward_range(first, last, std::move(cur), w_fwd, caches);
      }
      out = std::move(cur);
    }

    nn::LossResult lr = head.forward_backward(out.x, micro_targets[static_cast<std::size_t>(micro)]);
    if (!std::isfinite(lr.loss)) {
      result.finite = false;
      result.loss = lr.loss;
      return result;
    }
    result.loss += lr.loss / n;
    result.correct += lr.correct;
    result.count += lr.count;

    assemble_backward_params(micro, w_fwd, w_bkwd);
    if (!segments_.empty()) {
      // Rebuild every segment's activation caches from its checkpoint
      // using recompute-scheduled weights (PipeMare Recompute).
      for (std::size_t s = 0; s < segments_.size(); ++s) {
        auto [first, last] = segments_[s];
        int end_stage = partition_.module_stage[static_cast<std::size_t>(last - 1)];
        assemble_recompute_params(micro, end_stage, w_fwd, w_rec);
        (void)model_.forward_range(first, last, checkpoints[s], w_rec, caches);
      }
    }
    nn::Flow dflow;
    dflow.x = lr.doutput;
    (void)model_.backward(std::move(dflow), w_bkwd, caches, grads_);
  }
  // Microbatch gradients are each a mean over their M samples; dividing
  // the accumulated sum by N yields the minibatch-mean gradient, matching
  // the convention the hyperparameters are tuned for.
  auto inv_n = 1.0F / static_cast<float>(n);
  for (float& g : grads_) {
    g *= inv_n;
    if (!std::isfinite(g)) result.finite = false;
  }
  return result;
}

void PipelineEngine::commit_update() {
  ++step_;
  if (cfg_.discrepancy_correction) {
    for (int stage = 0; stage < cfg_.num_stages; ++stage) {
      double gap = schedule_.mean_tau_fwd(stage);
      double gamma = theory::gamma_from_decay(cfg_.decay_d, gap);
      auto gf = static_cast<float>(gamma);
      auto cf = static_cast<float>(1.0 - gamma);
      for (int u = 0; u < partition_.num_units(); ++u) {
        if (partition_.unit_stage[static_cast<std::size_t>(u)] != stage) continue;
        const nn::WeightUnit& unit = partition_.units[static_cast<std::size_t>(u)];
        for (std::int64_t i = unit.offset; i < unit.offset + unit.size; ++i) {
          auto idx = static_cast<std::size_t>(i);
          delta_[idx] = gf * delta_[idx] + cf * (live_[idx] - prev_live_[idx]);
        }
      }
    }
  }
  prev_live_ = live_;
  history_[static_cast<std::size_t>(step_ % history_depth_)] = live_;
}

nn::LossResult PipelineEngine::evaluate(const nn::Flow& input, const tensor::Tensor& target,
                                        const nn::LossHead& head) const {
  auto caches = model_.make_caches();
  nn::Flow out = model_.forward(input, live_, caches);
  return head.forward_backward(out.x, target);
}

std::vector<double> PipelineEngine::stage_tau_fwd() const {
  // Always the asynchronous-schedule delays: T1 consumers apply these only
  // during the asynchronous phase, so the current method (e.g. Sync during
  // T3 warmup) must not zero them out.
  std::vector<double> tau(static_cast<std::size_t>(cfg_.num_stages));
  for (int s = 0; s < cfg_.num_stages; ++s) {
    tau[static_cast<std::size_t>(s)] = schedule_.mean_tau_fwd(s);
  }
  return tau;
}

std::vector<optim::LrSegment> PipelineEngine::lr_segments(
    double base_lr, std::span<const double> scales) const {
  std::vector<optim::LrSegment> segs;
  segs.reserve(static_cast<std::size_t>(cfg_.num_stages));
  std::int64_t offset = 0;
  for (int s = 0; s < cfg_.num_stages; ++s) {
    std::int64_t size = partition_.stage_param_count[static_cast<std::size_t>(s)];
    double scale = scales.empty() ? 1.0 : scales[static_cast<std::size_t>(s)];
    segs.push_back({offset, size, base_lr * scale});
    offset += size;
  }
  return segs;
}

}  // namespace pipemare::pipeline
