#pragma once

// Epoch-boundary dynamic repartitioning (the BaPipe-flavoured closing of
// the cost-model loop): compare each stage's *observed* busy time against
// the partition's *predicted* stage cost, and when the observed balance
// ratio drifts past a threshold, recompute the balanced min-max split from
// observed per-unit costs and migrate weight units across stage
// boundaries.
//
// Why migration is cheap under the WeightVersions protocol: committed
// weight versions are *full* flat vectors (not per-stage slabs), optimizer
// state is flat and offset-keyed, and the 1F1B Schedule depends only on
// (P, N) — so moving a unit between stages changes nothing but the
// unit -> stage map that assemble_forward_units reads the staleness from.
// The engines drain to a quiescent point between minibatches anyway
// (workers park on the generation barrier), so an engine's repartition()
// is: swap the Partition, rebuild the per-stage module/unit ranges, done.
// No weight bytes, history slabs, or optimizer moments move; tests assert
// the migrated state is bit-identical to a fresh engine built with the
// new split.
//
// This header is core-free policy; the core::RepartitionObserver
// (src/core/repartition_observer.h) wires it into the training loop.

#include <cstdint>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "src/nn/model.h"
#include "src/pipeline/partition.h"

namespace pipemare::pipeline {

/// Knobs of the epoch-boundary repartitioning loop
/// (`--repartition=off|auto[,<threshold>]` on every example/bench driver).
struct RepartitionConfig {
  bool enabled = false;

  /// Migrate when the observed busy-time balance ratio (max/mean, 1.0 =
  /// perfect) exceeds this AND the replanned split predicts a strictly
  /// better ratio. 1.25 tolerates measurement noise while still catching
  /// genuinely skewed splits.
  double threshold = 1.25;

  /// Epochs that must elapse between migrations (>= 1): the post-migration
  /// epoch measures the new split before another move is considered.
  int min_epochs_between = 1;
};

/// Parses the `--repartition=` value: "off" disables, "auto" enables with
/// the default threshold, "auto,<t>" sets it (t > 1.0). Throws
/// std::invalid_argument naming the accepted forms.
RepartitionConfig parse_repartition_spec(std::string_view text);

std::string repartition_spec_name(const RepartitionConfig& cfg);

/// Distributes observed per-stage busy nanoseconds down to per-unit costs:
/// each unit receives its stage's observed busy time, split across the
/// stage's units proportionally to their *predicted* costs (the
/// within-stage ratios are the best available estimate — observation is
/// per-stage). A stage with zero predicted cost splits evenly. The result
/// feeds the same balanced DP the static planner uses.
std::vector<double> observed_unit_costs(const Partition& partition,
                                        std::span<const std::uint64_t> busy_ns);

/// Migration-compatibility check: `to` must repartition the same units
/// (same count, modules, offsets, sizes, split_bias) across the same
/// number of stages as `from`. Throws std::invalid_argument otherwise.
/// Engines call this at the top of repartition().
void validate_repartition(const Partition& from, const Partition& to);

/// One planning decision (also the BENCH/observer reporting record).
struct RepartitionDecision {
  bool migrate = false;
  double observed_ratio = 1.0;  ///< balance ratio of the observed busy ns
  double planned_ratio = 1.0;   ///< predicted ratio of the replanned split
};

/// The planner: given the current partition and one epoch's observed
/// per-stage busy time, decide whether to migrate and to what.
class Repartitioner {
 public:
  Repartitioner(const nn::Model& model, RepartitionConfig cfg);

  const RepartitionConfig& config() const { return cfg_; }

  /// Returns the new partition when migration is warranted (observed ratio
  /// past the threshold, the replanned balanced split predicts strictly
  /// better, and the unit -> stage map actually changes), nullopt
  /// otherwise. `decision`, when non-null, receives the ratios either way.
  std::optional<Partition> plan(const Partition& current,
                                std::span<const std::uint64_t> busy_ns,
                                RepartitionDecision* decision = nullptr) const;

 private:
  const nn::Model* model_;
  RepartitionConfig cfg_;
};

}  // namespace pipemare::pipeline
