#include "src/pipeline/weight_versions.h"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "src/theory/stability.h"

namespace pipemare::pipeline {

// 64 unit-width buckets cover any realistic P/N or max_delay; see the
// header comment for the cross-backend sharing contract.
std::vector<obs::Histogram*> staleness_histograms(int stages) {
  std::vector<obs::Histogram*> h;
  h.reserve(static_cast<std::size_t>(stages));
  for (int s = 0; s < stages; ++s) {
    h.push_back(&obs::MetricsRegistry::instance().histogram(
        "train.staleness.stage" + std::to_string(s),
        obs::Histogram::linear_bounds(0.0, 1.0, 64)));
  }
  return h;
}

WeightVersions::WeightVersions(const nn::Model& model, const EngineConfig& cfg,
                               const Partition& partition, const Schedule& schedule,
                               std::uint64_t seed)
    : cfg_(cfg), partition_(partition), schedule_(schedule) {
  live_.assign(static_cast<std::size_t>(model.param_count()), 0.0F);
  util::Rng rng(seed);
  model.init_params(live_, rng);
  prev_live_ = live_;
  delta_.assign(live_.size(), 0.0F);

  history_depth_ = schedule_.max_staleness() + 2;
  history_.assign(static_cast<std::size_t>(history_depth_), {});
  history_[0] = live_;  // version 0 = initial weights
  staleness_ = staleness_histograms(partition_.num_stages);
}

const std::vector<float>& WeightVersions::version(std::int64_t v) const {
  if (v < 0) v = 0;
  if (v > step_ || v < step_ - history_depth_ + 1) {
    throw std::logic_error("WeightVersions: weight version outside history window");
  }
  const auto& slot = history_[static_cast<std::size_t>(v % history_depth_)];
  if (slot.empty()) throw std::logic_error("WeightVersions: empty history slot");
  return slot;
}

void WeightVersions::assemble_forward_units(int ufirst, int ulast, int micro,
                                            std::span<float> out) const {
  for (int u = ufirst; u < ulast; ++u) {
    const nn::WeightUnit& unit = partition_.units[static_cast<std::size_t>(u)];
    const float* src;
    if (cfg_.method == Method::Sync) {
      src = live_.data();
    } else {
      int stage = partition_.unit_stage[static_cast<std::size_t>(u)];
      std::int64_t v = step_ - schedule_.fwd_staleness(stage, micro);
      v = std::max<std::int64_t>(v, 0);
      staleness_[static_cast<std::size_t>(stage)]->observe(
          static_cast<double>(step_ - v));
      src = version(v).data();
    }
    std::copy(src + unit.offset, src + unit.offset + unit.size,
              out.begin() + unit.offset);
  }
}

void WeightVersions::assemble_backward_units(int ufirst, int ulast, int micro,
                                             std::span<float> out) const {
  if (cfg_.method == Method::PipeDream) {
    // Synchronous-gradient semantics via stashing: the backward pass sees
    // exactly the weights the forward pass used, which are still resident
    // in the version history (the history *is* the stash).
    assemble_forward_units(ufirst, ulast, micro, out);
    return;
  }
  // Sync: backward == forward == live. PipeMare: tau_bkwd = 0, so the
  // backward reads the live weights...
  for (int u = ufirst; u < ulast; ++u) {
    const nn::WeightUnit& unit = partition_.units[static_cast<std::size_t>(u)];
    std::copy(live_.begin() + unit.offset, live_.begin() + unit.offset + unit.size,
              out.begin() + unit.offset);
  }
  if (cfg_.method != Method::PipeMare || !cfg_.discrepancy_correction) return;
  // ...optionally T2-corrected toward what the forward pass saw:
  // u_bkwd = w - (tau_fwd - tau_bkwd) * delta.
  for (int u = ufirst; u < ulast; ++u) {
    const nn::WeightUnit& unit = partition_.units[static_cast<std::size_t>(u)];
    int stage = partition_.unit_stage[static_cast<std::size_t>(u)];
    double gap = cfg_.t2_per_microbatch
                     ? static_cast<double>(schedule_.fwd_staleness(stage, micro))
                     : schedule_.mean_tau_fwd(stage);
    if (gap <= 0.0) continue;
    auto g = static_cast<float>(gap);
    for (std::int64_t i = unit.offset; i < unit.offset + unit.size; ++i) {
      out[static_cast<std::size_t>(i)] -= g * delta_[static_cast<std::size_t>(i)];
    }
  }
}

void WeightVersions::commit_update() {
  ++step_;
  if (cfg_.discrepancy_correction) {
    for (int u = 0; u < partition_.num_units(); ++u) {
      const nn::WeightUnit& unit = partition_.units[static_cast<std::size_t>(u)];
      int stage = partition_.unit_stage[static_cast<std::size_t>(u)];
      double gap = schedule_.mean_tau_fwd(stage);
      double gamma = theory::gamma_from_decay(cfg_.decay_d, gap);
      auto gf = static_cast<float>(gamma);
      auto cf = static_cast<float>(1.0 - gamma);
      for (std::int64_t i = unit.offset; i < unit.offset + unit.size; ++i) {
        auto idx = static_cast<std::size_t>(i);
        delta_[idx] = gf * delta_[idx] + cf * (live_[idx] - prev_live_[idx]);
      }
    }
  }
  prev_live_ = live_;
  history_[static_cast<std::size_t>(step_ % history_depth_)] = live_;
}

}  // namespace pipemare::pipeline
