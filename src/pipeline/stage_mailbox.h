#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>

#include "src/nn/flow.h"

namespace pipemare::pipeline {

/// One unit of inter-stage traffic: a microbatch's activation bundle
/// travelling downstream (Forward) or its output gradient travelling
/// upstream (Backward).
struct StageItem {
  enum class Kind { Forward, Backward };
  Kind kind = Kind::Forward;
  int micro = 0;
  nn::Flow flow;
};

/// The bounded mailbox in front of each stage worker: two FIFO lanes, one
/// fed by the previous stage's forwards (SPSC) and one by the next stage's
/// backwards (SPSC; together an MPSC inbox). `pop` drains the backward
/// lane first — the 1F1B priority rule that keeps in-flight activations
/// bounded and the pipeline draining.
///
/// Each lane holds at most `lane_capacity` items; `push_*` blocks while
/// its lane is full. With lane_capacity >= N (microbatches per minibatch)
/// pushes can never block mid-minibatch — each lane carries exactly N
/// items per minibatch — which is the configuration ThreadedEngine uses to
/// make the worker graph trivially deadlock-free.
class StageMailbox {
 public:
  explicit StageMailbox(std::size_t lane_capacity) : cap_(lane_capacity) {}

  StageMailbox(const StageMailbox&) = delete;
  StageMailbox& operator=(const StageMailbox&) = delete;

  void push_forward(StageItem item) {
    {
      std::unique_lock<std::mutex> lock(m_);
      space_.wait(lock, [&] { return fwd_.size() < cap_; });
      fwd_.push_back(std::move(item));
    }
    ready_.notify_one();
  }

  void push_backward(StageItem item) {
    {
      std::unique_lock<std::mutex> lock(m_);
      space_.wait(lock, [&] { return bwd_.size() < cap_; });
      bwd_.push_back(std::move(item));
    }
    ready_.notify_one();
  }

  /// Blocks until an item is available; backward lane first.
  StageItem pop() {
    StageItem item;
    {
      std::unique_lock<std::mutex> lock(m_);
      ready_.wait(lock, [&] { return !bwd_.empty() || !fwd_.empty(); });
      std::deque<StageItem>& lane = bwd_.empty() ? fwd_ : bwd_;
      item = std::move(lane.front());
      lane.pop_front();
    }
    // notify_all, not notify_one: the two producers wait on different
    // lane-full predicates through this one CV, and a single notify could
    // wake the producer whose lane is still full while the other sleeps
    // on a lost wakeup. At most two producers, so the broadcast is cheap.
    space_.notify_all();
    return item;
  }

 private:
  std::mutex m_;
  std::condition_variable ready_;  ///< signalled on push
  std::condition_variable space_;  ///< signalled on pop
  std::deque<StageItem> fwd_;
  std::deque<StageItem> bwd_;
  std::size_t cap_;
};

}  // namespace pipemare::pipeline
