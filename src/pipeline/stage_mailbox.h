#pragma once

#include <algorithm>
#include <cstddef>
#include <deque>
#include <limits>

#include "src/nn/flow.h"
#include "src/util/sync.h"

namespace pipemare::pipeline {

/// One unit of inter-stage traffic: a microbatch's activation bundle
/// travelling downstream (Forward) or its output gradient travelling
/// upstream (Backward).
struct StageItem {
  enum class Kind { Forward, Backward };
  Kind kind = Kind::Forward;
  int micro = 0;
  nn::Flow flow;
};

/// The credit-based bounded mailbox in front of each stage worker: two
/// FIFO lanes, one fed by the previous stage's forwards and one by the
/// next stage's backwards. Three rules bound the in-flight activation
/// footprint to the 1F1B schedule's occupancy (Section 3 / Table 1)
/// while keeping the worker graph deadlock-free:
///
///  1. *Bounded forward lane.* `push_forward` blocks while the lane holds
///     `fwd_capacity` items, so a fast upstream stage can never buffer
///     more than `fwd_capacity` activations here.
///  2. *Non-blocking backward lane.* `push_backward` never blocks: the
///     pop rule pre-grants its credits. A backward queued here always
///     corresponds to a forward this stage already admitted (rule 3), and
///     `pop` drains the backward lane first, so backward occupancy can
///     never exceed the forward credits — the lane is "unbounded" in code
///     but bounded by the protocol.
///  3. *Forward credits.* `pop` admits a forward only while fewer than
///     `fwd_credits` round trips are in flight (forwards popped whose
///     backward has not yet been popped / acknowledged). This is the 1F1B
///     warmup depth: stage s of P admits at most min(N, P - s) microbatches
///     before insisting on a backward. A stage that runs its backward
///     without ever popping a Backward item (the tail stage fuses F and B)
///     returns the credit explicitly via `complete_inflight`.
///
/// Deadlock-freedom: a worker only ever blocks in `push_forward` (on its
/// successor) or in `pop`. The blocking graph is acyclic — stage s's
/// pushes wait only on stage s+1, and its pops wait only on producers —
/// and the tail stage never blocks on a push (it pushes only backwards),
/// so by induction from the tail every stage keeps draining: a full
/// forward lane implies a poppable item downstream, credits are always
/// returned because admitted forwards always complete their round trip.
/// Any fwd_capacity >= 1 and fwd_credits >= 1 is therefore safe; the 1F1B
/// values merely make the bound tight without throttling the schedule.
///
/// Credit accounting assumes a single consumer (the owning stage worker).
/// Multi-consumer users (the threaded Hogwild work queue) must disable
/// gating by passing `fwd_credits >= fwd_capacity + pending pushes`, e.g.
/// `kUnboundedCredits`.
///
/// Every mutable field is GUARDED_BY(m_); a Clang -Wthread-safety build
/// proves both lane disciplines (and the credit accounting) never touch
/// shared state outside the lock.
class StageMailbox {
 public:
  static constexpr std::size_t kUnboundedCredits =
      std::numeric_limits<std::size_t>::max();

  /// Peak occupancy observed per lane plus the in-flight round-trip peak;
  /// tests assert these against the 1F1B bound min(N, P - s + 1).
  struct LaneStats {
    std::size_t fwd_high_water = 0;
    std::size_t bwd_high_water = 0;
    std::size_t inflight_high_water = 0;
  };

  StageMailbox(std::size_t fwd_capacity, std::size_t fwd_credits)
      : cap_(fwd_capacity), credits_(fwd_credits) {}

  StageMailbox(const StageMailbox&) = delete;
  StageMailbox& operator=(const StageMailbox&) = delete;

  /// Blocks while the forward lane is full.
  void push_forward(StageItem item) {
    {
      util::MutexLock lock(m_);
      while (fwd_.size() >= cap_) space_.wait(m_);
      fwd_.push_back(std::move(item));
      lane_stats_.fwd_high_water = std::max(lane_stats_.fwd_high_water, fwd_.size());
    }
    ready_.notify_one();
  }

  /// Never blocks (rule 2): the 1F1B pop priority pre-grants backward
  /// credits, so the lane needs no capacity wait.
  void push_backward(StageItem item) {
    {
      util::MutexLock lock(m_);
      bwd_.push_back(std::move(item));
      lane_stats_.bwd_high_water = std::max(lane_stats_.bwd_high_water, bwd_.size());
    }
    ready_.notify_one();
  }

  /// Blocks until an admissible item is available; backward lane first,
  /// forwards only while a round-trip credit is free (rule 3). Popping a
  /// Backward item implicitly completes that round trip.
  StageItem pop() {
    StageItem item;
    bool freed_full_fwd = false;
    {
      util::MutexLock lock(m_);
      while (bwd_.empty() && (fwd_.empty() || inflight_ >= credits_)) {
        ready_.wait(m_);
      }
      if (!bwd_.empty()) {
        item = std::move(bwd_.front());
        bwd_.pop_front();
        if (inflight_ > 0) --inflight_;  // round trip complete
      } else {
        // Only a forward pop can open space in the bounded lane; remember
        // whether it actually did so we wake the producer only on a
        // full -> non-full transition (it is the sole space_ waiter).
        freed_full_fwd = fwd_.size() == cap_;
        item = std::move(fwd_.front());
        fwd_.pop_front();
        ++inflight_;
        lane_stats_.inflight_high_water =
            std::max(lane_stats_.inflight_high_water, inflight_);
      }
    }
    if (freed_full_fwd) space_.notify_one();
    return item;
  }

  /// Returns a round-trip credit for a stage that completes backwards
  /// without popping Backward items (the tail stage fuses each forward
  /// with its backward). Call once per completed backward.
  void complete_inflight() {
    util::MutexLock lock(m_);
    if (inflight_ > 0) --inflight_;
    // No notify: only the owning consumer waits on ready_ for credits,
    // and it is the caller.
  }

  LaneStats stats() const {
    util::MutexLock lock(m_);
    return lane_stats_;
  }

  void reset_stats() {
    util::MutexLock lock(m_);
    lane_stats_ = LaneStats{};
  }

 private:
  mutable util::Mutex m_;
  util::CondVar ready_;  ///< signalled on push
  util::CondVar space_;  ///< signalled on full -> non-full fwd pop
  std::deque<StageItem> fwd_ GUARDED_BY(m_);
  std::deque<StageItem> bwd_ GUARDED_BY(m_);
  const std::size_t cap_;      ///< immutable after construction
  const std::size_t credits_;  ///< immutable after construction
  std::size_t inflight_ GUARDED_BY(m_) = 0;  ///< admitted, backward not done
  LaneStats lane_stats_ GUARDED_BY(m_);
};

}  // namespace pipemare::pipeline
