#pragma once

#include <cstdint>

namespace pipemare::pipeline {

/// Per-slot load counters shared by every instrumented execution backend.
/// One slot is one unit of execution-side parallelism: a pipeline *stage*
/// for the stage-partitioned engines ("threaded", "threaded_steal"), a
/// *worker thread* for the threaded Hogwild backend (which has no stage
/// workers) and for StealingEngine::worker_stats(). Only ratios between
/// slots are meaningful; absolute nanoseconds depend on the host.
///
/// This is the measurement substrate the partition cost model is validated
/// against (predicted stage cost vs observed busy share) and what the
/// work-stealing runtime balances: a slot whose busy share dwarfs the
/// others bounds wall-clock, and its siblings' pop-wait is the headroom
/// stealing reclaims.
struct StageStats {
  std::uint64_t busy_ns = 0;       ///< compute (forward/backward/loss)
  std::uint64_t pop_wait_ns = 0;   ///< blocked waiting for work (idle/starved)
  std::uint64_t push_wait_ns = 0;  ///< blocked pushing downstream (backpressure)
  std::uint64_t items = 0;         ///< forward + backward items processed

  /// Work-stealing backends only (0 elsewhere). For a stage slot: tasks of
  /// this stage executed by a worker other than the stage's home worker,
  /// and the busy time of those tasks. For a worker slot: tasks this
  /// worker stole from stages it does not own.
  std::uint64_t stolen_items = 0;  ///< executed elsewhere / stolen
  std::uint64_t stolen_ns = 0;     ///< busy time of the stolen items
};

}  // namespace pipemare::pipeline
