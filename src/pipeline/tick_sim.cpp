#include "src/pipeline/tick_sim.h"

#include <algorithm>
#include <stdexcept>

namespace pipemare::pipeline {

namespace {

struct Event {
  std::int64_t fwd_tick = 0;
  std::int64_t bwd_tick = 0;
};

/// Computes occupancy and in-flight statistics from per-(stage, microbatch)
/// forward/backward tick assignments.
TickStats analyze(const std::vector<std::vector<Event>>& events, int stages,
                  double steady_rate) {
  TickStats stats;
  stats.max_inflight_activations.assign(static_cast<std::size_t>(stages), 0);
  std::int64_t last_tick = 0;
  for (const auto& stage_events : events) {
    for (const Event& e : stage_events) {
      last_tick = std::max(last_tick, e.bwd_tick);
    }
  }
  stats.total_ticks = last_tick + 1;
  std::int64_t total_micro_ops = 0;
  for (int i = 0; i < stages; ++i) {
    const auto& stage_events = events[static_cast<std::size_t>(i)];
    total_micro_ops += 2LL * static_cast<std::int64_t>(stage_events.size());
    // In-flight activations: an activation is allocated at its forward
    // tick and freed at its backward tick (the backward consumes it), so
    // it is live on [fwd, bwd). Sweep the tick axis with a difference
    // array.
    std::vector<int> delta(static_cast<std::size_t>(stats.total_ticks) + 2, 0);
    for (const Event& e : stage_events) {
      delta[static_cast<std::size_t>(e.fwd_tick)] += 1;
      delta[static_cast<std::size_t>(e.bwd_tick)] -= 1;
    }
    int live = 0, peak = 0;
    for (std::int64_t t = 0; t <= stats.total_ticks; ++t) {
      live += delta[static_cast<std::size_t>(t)];
      peak = std::max(peak, live);
    }
    stats.max_inflight_activations[static_cast<std::size_t>(i)] = peak;
  }
  // Each (stage, tick) has one forward and one backward functional slot.
  std::int64_t capacity = 2LL * stages * stats.total_ticks;
  stats.busy_slots = total_micro_ops;
  stats.idle_slots = capacity - total_micro_ops;
  // Normalized throughput: achieved microbatch rate over the bubble-free
  // steady-state rate (one microbatch completing per tick).
  std::int64_t micro_total =
      static_cast<std::int64_t>(events.empty() ? 0 : events[0].size());
  stats.throughput =
      static_cast<double>(micro_total) / (static_cast<double>(stats.total_ticks) * steady_rate);
  return stats;
}

}  // namespace

TickStats simulate_flush_schedule(int stages, int microbatches, int minibatches) {
  if (stages < 1 || microbatches < 1 || minibatches < 1) {
    throw std::invalid_argument("simulate_flush_schedule: positive sizes required");
  }
  int p = stages, n = microbatches;
  std::int64_t period = 2LL * (n + p - 1);
  std::vector<std::vector<Event>> events(static_cast<std::size_t>(p));
  for (int t = 0; t < minibatches; ++t) {
    for (int k = 0; k < n; ++k) {
      for (int i = 0; i < p; ++i) {
        Event e;
        e.fwd_tick = t * period + k + i;
        e.bwd_tick = t * period + (n + p - 1) + (n - 1 - k) + (p - 1 - i);
        events[static_cast<std::size_t>(i)].push_back(e);
      }
    }
  }
  return analyze(events, p, 1.0);
}

TickStats simulate_1f1b_schedule(int stages, int microbatches, int minibatches) {
  if (stages < 1 || microbatches < 1 || minibatches < 1) {
    throw std::invalid_argument("simulate_1f1b_schedule: positive sizes required");
  }
  int p = stages, n = microbatches;
  std::vector<std::vector<Event>> events(static_cast<std::size_t>(p));
  for (int t = 0; t < minibatches; ++t) {
    for (int k = 0; k < n; ++k) {
      std::int64_t g = static_cast<std::int64_t>(t) * n + k;  // global microbatch
      for (int i = 0; i < p; ++i) {
        Event e;
        e.fwd_tick = g + i;
        e.bwd_tick = g + 2LL * p - 1 - i;
        events[static_cast<std::size_t>(i)].push_back(e);
      }
    }
  }
  return analyze(events, p, 1.0);
}

}  // namespace pipemare::pipeline
