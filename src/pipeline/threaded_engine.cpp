#include "src/pipeline/threaded_engine.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <stdexcept>
#include <string>
#include <utility>

#include "src/obs/trace.h"
#include "src/pipeline/repartition.h"
#include "src/util/stats.h"

namespace pipemare::pipeline {

namespace {

using Clock = std::chrono::steady_clock;
using util::ns_between;

}  // namespace

ThreadedEngine::ThreadedEngine(const nn::Model& model, EngineConfig cfg, std::uint64_t seed)
    : model_(model),
      cfg_(std::move(cfg)),
      partition_(make_partition(model, cfg_.num_stages, cfg_.split_bias, cfg_.partition)),
      schedule_(cfg_.num_stages, cfg_.num_microbatches),
      store_(model, cfg_, partition_, schedule_, seed) {
  if (cfg_.recompute_segments > 0) {
    throw std::invalid_argument(
        "ThreadedEngine: activation recomputation is modelled only by the "
        "analytic PipelineEngine; set recompute_segments = 0");
  }
  // The probe microbatch is consumed by make_partition above; don't keep
  // its tensors alive for the whole engine lifetime.
  cfg_.partition.probe.reset();
  grads_.assign(store_.live().size(), 0.0F);
  stats_.assign(static_cast<std::size_t>(cfg_.num_stages), StageStats{});

  ranges_ = stage_module_ranges(partition_);

  const int p = cfg_.num_stages;
  const int n = cfg_.num_microbatches;
  caches_.resize(static_cast<std::size_t>(n));
  for (auto& c : caches_) c = model_.make_caches();

  mailboxes_.reserve(static_cast<std::size_t>(p));
  for (int s = 0; s < p; ++s) {
    // 1F1B memory bound (Table 1 / PipeDream's steady-state occupancy):
    // stage s of P (0-indexed) admits at most min(N, P - s) in-flight
    // microbatches (its warmup depth) before insisting on a backward, and
    // its forward lane never needs to buffer more than min(N, P - s + 1)
    // activations — the predecessor's credit allowance. Deadlock-freedom
    // does not depend on these values (any capacity/credits >= 1 works,
    // see StageMailbox); they make the in-flight activation footprint
    // O(P - s) per stage instead of the old lane_capacity = N, i.e. O(P)
    // total instead of O(P * N).
    auto cap = static_cast<std::size_t>(std::min(n, p - s + 1));
    auto credits = static_cast<std::size_t>(std::max(1, std::min(n, p - s)));
    mailboxes_.push_back(std::make_unique<StageMailbox>(cap, credits));
  }

  workers_.reserve(static_cast<std::size_t>(p));
  try {
    for (int s = 0; s < p; ++s) {
      workers_.emplace_back([this, s] { worker_loop(s); });
    }
  } catch (...) {
    // Thread spawning failed partway (e.g. thread-count limits): shut the
    // started workers down and join them so destroying the joinable
    // std::threads does not std::terminate; then surface the error.
    {
      util::MutexLock lock(ctrl_m_);
      shutdown_ = true;
    }
    ctrl_go_.notify_all();
    for (auto& w : workers_) w.join();
    throw;
  }
}

void ThreadedEngine::repartition(const Partition& next) {
  validate_repartition(partition_, next);
  // Quiescent point: between minibatches every worker is parked on the
  // generation barrier, and the next generation bump (under ctrl_m_)
  // orders these writes before any worker reads ranges_ or the store's
  // staleness map. Stage count is unchanged, so mailbox capacities and
  // the stats_ slots stay valid.
  partition_ = next;
  ranges_ = stage_module_ranges(partition_);
}

ThreadedEngine::~ThreadedEngine() {
  {
    util::MutexLock lock(ctrl_m_);
    shutdown_ = true;
  }
  ctrl_go_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadedEngine::record_failure(const char* what) {
  bool expected = false;
  if (mb_failed_.compare_exchange_strong(expected, true)) {
    util::MutexLock lock(ctrl_m_);
    mb_error_ = what;
  }
}

void ThreadedEngine::worker_loop(int stage) {
  // Reused full-size parameter buffers; only this stage's slices are
  // written and read.
  std::vector<float> w_fwd(store_.live().size());
  std::vector<float> w_bkwd(store_.live().size());
  std::uint64_t seen = 0;
  for (;;) {
    {
      util::MutexLock lock(ctrl_m_);
      while (!shutdown_ && generation_ <= seen) ctrl_go_.wait(ctrl_m_);
      if (shutdown_) return;
      seen = generation_;
    }
    if (obs::TraceRecorder::instance().enabled()) {
      obs::TraceRecorder::instance().set_thread_name("pipeline-stage-" +
                                                     std::to_string(stage));
    }
    run_minibatch(stage, w_fwd, w_bkwd);
    {
      util::MutexLock lock(ctrl_m_);
      ++done_count_;
    }
    ctrl_done_.notify_one();
  }
}

void ThreadedEngine::backward_step(int stage, int micro, nn::Flow dflow,
                                   std::vector<float>& w_bkwd) {
  const StageRange& r = ranges_[static_cast<std::size_t>(stage)];
  StageStats& stats = stats_[static_cast<std::size_t>(stage)];
  nn::Flow din;
  if (!mb_failed_.load(std::memory_order_relaxed)) {
    try {
      obs::Span span("bwd", "pipeline", stage, micro, store_.step());
      auto t0 = Clock::now();
      store_.assemble_backward_units(r.unit_first, r.unit_last, micro, w_bkwd);
      din = model_.backward_range(r.module_first, r.module_last, std::move(dflow),
                                  w_bkwd, caches_[static_cast<std::size_t>(micro)],
                                  grads_);
      stats.busy_ns += ns_between(t0, Clock::now());
    } catch (const std::exception& e) {
      record_failure(e.what());
    }
  }
  if (stage > 0) {
    mailboxes_[static_cast<std::size_t>(stage - 1)]->push_backward(
        {StageItem::Kind::Backward, micro, std::move(din)});
  }
}

void ThreadedEngine::run_minibatch(int stage, std::vector<float>& w_fwd,
                                   std::vector<float>& w_bkwd) {
  const int n = cfg_.num_microbatches;
  const StageRange& r = ranges_[static_cast<std::size_t>(stage)];
  StageStats& stats = stats_[static_cast<std::size_t>(stage)];
  const bool last = stage == cfg_.num_stages - 1;
  int fwd_left = n;
  int bwd_left = n;
  // 1F1B worker loop: drain whatever the mailbox offers, backwards first.
  // After a worker-side exception the minibatch is poisoned: remaining
  // items skip compute and empty flows keep the chains draining so every
  // worker still reaches its 2N-item quota.
  while (fwd_left > 0 || bwd_left > 0) {
    auto t_pop = Clock::now();
    StageItem item;
    {
      // The pop wait *is* the pipeline bubble at this stage: idle time
      // between the previous item finishing and the next one arriving.
      obs::Span bubble("pop_wait", "pipeline", stage, -1, store_.step());
      item = mailboxes_[static_cast<std::size_t>(stage)]->pop();
    }
    stats.pop_wait_ns += ns_between(t_pop, Clock::now());
    ++stats.items;
    if (item.kind == StageItem::Kind::Forward) {
      --fwd_left;
      nn::Flow out;
      if (!mb_failed_.load(std::memory_order_relaxed)) {
        try {
          obs::Span span("fwd", "pipeline", stage, item.micro, store_.step());
          auto t0 = Clock::now();
          store_.assemble_forward_units(r.unit_first, r.unit_last, item.micro, w_fwd);
          out = model_.forward_range(r.module_first, r.module_last,
                                     std::move(item.flow), w_fwd,
                                     caches_[static_cast<std::size_t>(item.micro)]);
          stats.busy_ns += ns_between(t0, Clock::now());
        } catch (const std::exception& e) {
          record_failure(e.what());
        }
      }
      if (!last) {
        auto t_push = Clock::now();
        mailboxes_[static_cast<std::size_t>(stage + 1)]->push_forward(
            {StageItem::Kind::Forward, item.micro, std::move(out)});
        stats.push_wait_ns += ns_between(t_push, Clock::now());
      } else {
        // Tail stage: loss, then the microbatch's backward immediately
        // (its F and B are adjacent ticks in the 1F1B schedule).
        nn::Flow dflow;
        if (!mb_failed_.load(std::memory_order_relaxed)) {
          try {
            auto t0 = Clock::now();
            nn::LossResult lr = mb_head_->forward_backward(
                out.x, (*mb_targets_)[static_cast<std::size_t>(item.micro)]);
            stats.busy_ns += ns_between(t0, Clock::now());
            if (!std::isfinite(lr.loss)) {
              if (mb_result_.finite) {
                mb_result_.finite = false;
                mb_result_.loss = lr.loss;
              }
            } else if (mb_result_.finite) {
              mb_result_.loss += lr.loss / n;
              mb_result_.correct += lr.correct;
              mb_result_.count += lr.count;
            }
            dflow.x = std::move(lr.doutput);
          } catch (const std::exception& e) {
            record_failure(e.what());
          }
        }
        backward_step(stage, item.micro, std::move(dflow), w_bkwd);
        --bwd_left;
        // The fused F+B never pops a Backward item, so the round-trip
        // credit must be returned explicitly.
        mailboxes_[static_cast<std::size_t>(stage)]->complete_inflight();
      }
    } else {
      backward_step(stage, item.micro, std::move(item.flow), w_bkwd);
      --bwd_left;
    }
  }
}

ThreadedEngine::StepResult ThreadedEngine::forward_backward(
    const std::vector<nn::Flow>& micro_inputs,
    const std::vector<tensor::Tensor>& micro_targets, const nn::LossHead& head) {
  const int n = cfg_.num_microbatches;
  if (static_cast<int>(micro_inputs.size()) != n ||
      static_cast<int>(micro_targets.size()) != n) {
    throw std::invalid_argument("forward_backward: expected N microbatches");
  }
  std::fill(grads_.begin(), grads_.end(), 0.0F);
  {
    util::MutexLock lock(ctrl_m_);
    mb_targets_ = &micro_targets;
    mb_head_ = &head;
    mb_result_ = StepResult{};
    mb_failed_.store(false);
    mb_error_.clear();
    done_count_ = 0;
    ++generation_;
  }
  ctrl_go_.notify_all();
  for (int m = 0; m < n; ++m) {
    StageItem item;
    item.kind = StageItem::Kind::Forward;
    item.micro = m;
    item.flow = micro_inputs[static_cast<std::size_t>(m)];
    item.flow.training = true;
    item.flow.micro = m;
    item.flow.step = store_.step();
    mailboxes_[0]->push_forward(std::move(item));
  }
  StepResult result;
  {
    util::MutexLock lock(ctrl_m_);
    while (done_count_ != cfg_.num_stages) ctrl_done_.wait(ctrl_m_);
    mb_targets_ = nullptr;
    mb_head_ = nullptr;
    result = mb_result_;
    if (mb_failed_.load()) {
      throw std::runtime_error("ThreadedEngine worker failed: " + mb_error_);
    }
  }
  if (result.finite) {
    // Same normalization and finiteness sweep as the sequential engine.
    auto inv_n = 1.0F / static_cast<float>(n);
    for (float& g : grads_) {
      g *= inv_n;
      if (!std::isfinite(g)) result.finite = false;
    }
  } else {
    // Unified non-finite contract (see StepResult): a non-finite loss
    // invalidates the step's metrics, so correct/count are zeroed and the
    // gradient buffer is left unspecified.
    result.correct = 0.0;
    result.count = 0.0;
  }
  return result;
}

std::vector<StageMailbox::LaneStats> ThreadedEngine::lane_stats() const {
  std::vector<StageMailbox::LaneStats> stats;
  stats.reserve(mailboxes_.size());
  for (const auto& box : mailboxes_) stats.push_back(box->stats());
  return stats;
}

std::vector<ThreadedEngine::StageStats> ThreadedEngine::stage_stats() const {
  return stats_;
}

void ThreadedEngine::reset_stage_stats() {
  stats_.assign(stats_.size(), StageStats{});
}

nn::LossResult ThreadedEngine::evaluate(const nn::Flow& input, const tensor::Tensor& target,
                                        const nn::LossHead& head) const {
  return evaluate_forward(model_, store_.live(), input, target, head);
}

}  // namespace pipemare::pipeline
