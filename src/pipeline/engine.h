#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/nn/heads.h"
#include "src/nn/model.h"
#include "src/optim/optimizer.h"
#include "src/pipeline/partition.h"
#include "src/pipeline/schedule.h"

namespace pipemare::pipeline {

/// Pipeline-parallel training method (Section 2.2 / Table 1).
enum class Method {
  Sync,       ///< GPipe-style synchronous execution: tau_fwd = tau_bkwd = 0
  PipeDream,  ///< weight stashing: tau_fwd = tau_bkwd = (2(P-i)+1)/N
  PipeMare,   ///< asynchronous: tau_fwd = (2(P-i)+1)/N, tau_bkwd = 0
};

std::string method_name(Method m);

struct EngineConfig {
  Method method = Method::PipeMare;
  int num_stages = 1;
  int num_microbatches = 1;  ///< N = microbatches per minibatch
  bool split_bias = false;   ///< the paper's "2x stages" weight/bias split

  /// Technique 2 — discrepancy correction (applies to PipeMare): approximate
  /// the forward weights in the backward pass as
  /// u_bkwd = w - (tau_fwd - tau_bkwd) * delta, where delta is an EMA of
  /// weight deltas with decay gamma_i = D^{1/(tau_fwd,i - tau_bkwd,i)}.
  bool discrepancy_correction = false;
  double decay_d = 0.5;
  /// Ablation: extrapolate per microbatch with that microbatch's exact
  /// staleness instead of the per-stage mean delay.
  bool t2_per_microbatch = false;

  /// PipeMare Recompute (Appendix A.2/D): > 0 splits the module list into
  /// this many segments; only segment-start activations are kept from the
  /// forward pass, the rest are recomputed just before the backward pass
  /// using recompute-scheduled (delayed) weights. 0 disables recomputation.
  int recompute_segments = 0;
};

/// Executes pipeline-parallel training *statistically exactly*: every
/// microbatch's forward/backward uses the precise weight version that the
/// 1F1B tick schedule would expose (see Schedule), while the computation
/// itself runs sequentially on one host. Throughput is modelled
/// analytically in src/hwmodel — the same methodology as the paper's own
/// PyTorch-based simulator (Appendix C.4).
///
/// The engine owns the live weights, the per-version weight history (which
/// doubles as PipeDream's weight stash), and the T2 delta buffers. The
/// caller owns the optimizer; one training step is
///
///   auto res = engine.forward_backward(inputs, targets, head);
///   opt.step(engine.weights(), engine.gradients(), segments);
///   engine.commit_update();
class PipelineEngine {
 public:
  PipelineEngine(const nn::Model& model, EngineConfig cfg, std::uint64_t seed);

  /// Result of one minibatch forward/backward.
  struct StepResult {
    double loss = 0.0;     ///< mean loss over the minibatch
    double correct = 0.0;  ///< summed metric numerator (e.g. #correct)
    double count = 0.0;    ///< metric denominator
    bool finite = true;    ///< false if loss or gradients went non-finite
  };

  /// Runs the N microbatches of one minibatch through forward and backward
  /// with schedule-exact weight versions, accumulating the mean gradient.
  StepResult forward_backward(const std::vector<nn::Flow>& micro_inputs,
                              const std::vector<tensor::Tensor>& micro_targets,
                              const nn::LossHead& head);

  /// Live (most recent) weights; the caller's optimizer mutates these.
  std::span<float> weights() { return live_; }
  std::span<const float> weights() const { return live_; }

  /// Mean gradient produced by the last forward_backward.
  std::span<float> gradients() { return grads_; }

  /// Publishes the mutated live weights as the next version and updates
  /// the T2 delta EMA. Call exactly once after each optimizer step.
  void commit_update();

  /// Evaluation helper: forward-only on the live weights.
  nn::LossResult evaluate(const nn::Flow& input, const tensor::Tensor& target,
                          const nn::LossHead& head) const;

  /// Technique 3 switches from Sync warmup to PipeMare mid-training.
  void set_method(Method m) { cfg_.method = m; }
  Method method() const { return cfg_.method; }

  const Partition& partition() const { return partition_; }
  const Schedule& schedule() const { return schedule_; }
  const nn::Model& model() const { return model_; }
  const EngineConfig& config() const { return cfg_; }
  std::int64_t steps_taken() const { return step_; }

  /// Mean forward delay per stage, (2(P-i)+1)/N — the tau vector T1 needs.
  std::vector<double> stage_tau_fwd() const;

  /// Per-stage optimizer segments with the given base LR and per-stage
  /// scale factors (from the T1 rescheduler). Scales may be empty (all 1).
  std::vector<optim::LrSegment> lr_segments(double base_lr,
                                            std::span<const double> scales) const;

  /// Module index ranges [first, last) of the recompute segments
  /// (empty when recomputation is disabled).
  const std::vector<std::pair<int, int>>& recompute_ranges() const { return segments_; }

 private:
  void assemble_forward_params(int micro, std::vector<float>& out) const;
  void assemble_backward_params(int micro, const std::vector<float>& fwd_params,
                                std::vector<float>& out) const;
  void assemble_recompute_params(int micro, int segment_end_stage,
                                 const std::vector<float>& fwd_params,
                                 std::vector<float>& out) const;
  const std::vector<float>& version(std::int64_t v) const;

  const nn::Model& model_;
  EngineConfig cfg_;
  Partition partition_;
  Schedule schedule_;

  std::int64_t step_ = 0;  ///< number of committed updates (version index)
  int history_depth_ = 1;
  std::vector<std::vector<float>> history_;  ///< ring buffer of weight versions
  std::vector<float> live_;
  std::vector<float> prev_live_;
  std::vector<float> grads_;
  std::vector<float> delta_;  ///< T2 EMA of weight deltas

  std::vector<std::pair<int, int>> segments_;  ///< recompute module ranges
};

}  // namespace pipemare::pipeline
