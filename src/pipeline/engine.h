#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/nn/heads.h"
#include "src/nn/model.h"
#include "src/optim/optimizer.h"
#include "src/pipeline/config.h"
#include "src/pipeline/partition.h"
#include "src/pipeline/schedule.h"
#include "src/pipeline/weight_versions.h"

namespace pipemare::pipeline {

/// Result of one minibatch forward/backward (shared by all engines).
///
/// Non-finite contract (identical across PipelineEngine, ThreadedEngine,
/// HogwildEngine and ThreadedHogwildEngine): if any microbatch's loss is
/// non-finite, `finite` is false, `loss` holds the first (in microbatch
/// order) non-finite loss value, `correct`/`count` are zero — a divergent
/// step has no meaningful metrics — and the gradient buffer contents are
/// unspecified. If every loss is finite but the final gradient sweep
/// finds a non-finite entry, `finite` is false while `loss`, `correct`
/// and `count` keep their accumulated (valid) values.
struct StepResult {
  double loss = 0.0;     ///< mean loss over the minibatch
  double correct = 0.0;  ///< summed metric numerator (e.g. #correct)
  double count = 0.0;    ///< metric denominator
  bool finite = true;    ///< false if loss or gradients went non-finite
};

/// Per-stage optimizer segments for a partition with the given base LR and
/// per-stage scale factors (from the T1 rescheduler). Scales may be empty
/// (all 1).
std::vector<optim::LrSegment> stage_lr_segments(const Partition& partition,
                                                double base_lr,
                                                std::span<const double> scales);

/// Mean forward delay per stage, (2(P-i)+1)/N — the tau vector T1 needs.
/// Always the asynchronous-schedule delays: T1 consumers apply these only
/// during the asynchronous phase, so the current method (e.g. Sync during
/// T3 warmup) must not zero them out.
std::vector<double> stage_tau_fwd_vector(const Schedule& schedule);

/// Forward-only evaluation of `params` — the engines' shared evaluate().
nn::LossResult evaluate_forward(const nn::Model& model, std::span<const float> params,
                                const nn::Flow& input, const tensor::Tensor& target,
                                const nn::LossHead& head);

/// Executes pipeline-parallel training *statistically exactly* (registered
/// with the core::BackendRegistry as "sequential"): every
/// microbatch's forward/backward uses the precise weight version that the
/// 1F1B tick schedule would expose (see Schedule), while the computation
/// itself runs sequentially on one host. Throughput is modelled
/// analytically in src/hwmodel — the same methodology as the paper's own
/// PyTorch-based simulator (Appendix C.4). For real wall-clock overlap on
/// a multicore host, see ThreadedEngine (threaded_engine.h), which shares
/// this engine's weight-version store and produces identical results.
///
/// The engine owns the live weights, the per-version weight history (which
/// doubles as PipeDream's weight stash), and the T2 delta buffers (all via
/// WeightVersions). The caller owns the optimizer; one training step is
///
///   auto res = engine.forward_backward(inputs, targets, head);
///   opt.step(engine.weights(), engine.gradients(), segments);
///   engine.commit_update();
class PipelineEngine {
 public:
  using StepResult = pipeline::StepResult;

  PipelineEngine(const nn::Model& model, EngineConfig cfg, std::uint64_t seed);

  /// Runs the N microbatches of one minibatch through forward and backward
  /// with schedule-exact weight versions, accumulating the mean gradient.
  StepResult forward_backward(const std::vector<nn::Flow>& micro_inputs,
                              const std::vector<tensor::Tensor>& micro_targets,
                              const nn::LossHead& head);

  /// Live (most recent) weights; the caller's optimizer mutates these.
  std::span<float> weights() { return store_.live(); }
  std::span<const float> weights() const { return store_.live(); }

  /// Mean gradient produced by the last forward_backward.
  std::span<float> gradients() { return grads_; }

  /// Publishes the mutated live weights as the next version and updates
  /// the T2 delta EMA. Call exactly once after each optimizer step.
  void commit_update() { store_.commit_update(); }

  /// Evaluation helper: forward-only on the live weights.
  nn::LossResult evaluate(const nn::Flow& input, const tensor::Tensor& target,
                          const nn::LossHead& head) const;

  /// Technique 3 switches from Sync warmup to PipeMare mid-training.
  void set_method(Method m) { cfg_.method = m; }
  Method method() const { return cfg_.method; }

  /// Epoch-boundary dynamic repartitioning: swaps in a new unit -> stage
  /// assignment over the same weight units (checked by
  /// validate_repartition). Only call between minibatches. No weights,
  /// version history, or optimizer state move — committed versions are
  /// full flat vectors and the Schedule depends only on (P, N), so the
  /// migration is exactly the map each unit's staleness is read through.
  void repartition(const Partition& next);

  const Partition& partition() const { return partition_; }
  const Schedule& schedule() const { return schedule_; }
  const nn::Model& model() const { return model_; }
  const EngineConfig& config() const { return cfg_; }
  std::int64_t steps_taken() const { return store_.step(); }

  /// Mean forward delay per stage, (2(P-i)+1)/N — the tau vector T1 needs.
  std::vector<double> stage_tau_fwd() const { return stage_tau_fwd_vector(schedule_); }

  /// Per-stage optimizer segments with the given base LR and per-stage
  /// scale factors (from the T1 rescheduler). Scales may be empty (all 1).
  std::vector<optim::LrSegment> lr_segments(double base_lr,
                                            std::span<const double> scales) const {
    return stage_lr_segments(partition_, base_lr, scales);
  }

  /// Module index ranges [first, last) of the recompute segments
  /// (empty when recomputation is disabled).
  const std::vector<std::pair<int, int>>& recompute_ranges() const { return segments_; }

 private:
  void assemble_forward_params(int micro, std::vector<float>& out) const;
  void assemble_backward_params(int micro, const std::vector<float>& fwd_params,
                                std::vector<float>& out) const;
  void assemble_recompute_params(int micro, int segment_end_stage,
                                 const std::vector<float>& fwd_params,
                                 std::vector<float>& out) const;

  const nn::Model& model_;
  EngineConfig cfg_;
  Partition partition_;
  Schedule schedule_;
  WeightVersions store_;
  std::vector<float> grads_;

  std::vector<std::pair<int, int>> segments_;  ///< recompute module ranges
};

}  // namespace pipemare::pipeline
