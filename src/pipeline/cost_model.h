#pragma once

// Per-module cost profiling for the stage partitioner (PipeDream / BaPipe
// style): the paper's Section 4.1 rule splits weight units evenly *by
// count*, which silently assumes every unit costs the same. This file
// turns Module::cost (analytic FLOP/byte estimates) or timed
// micro-profiles into the per-unit cost vector the balanced partition
// strategy feeds its dynamic program.

#include <vector>

#include "src/nn/model.h"
#include "src/pipeline/config.h"

namespace pipemare::pipeline {

/// Per-module costs for a whole model.
///
/// Analytic mode (measured = false): when `probe` is non-null, one forward
/// pass on the probe microbatch records every module's activation shapes,
/// and each module's `cost()` hook turns them into FLOP/byte estimates.
/// Without a probe the hooks fall back to batch-free intrinsic estimates
/// (exact relative costs for fixed-row stacks like MLPs).
///
/// Measured mode (measured = true, probe required): times each module's
/// forward and backward over `measure_reps` reps on the probe microbatch
/// (minimum-of-reps, steady clock) and reports nanoseconds as the flops
/// fields — the partitioner only consumes relative magnitudes, so the two
/// modes are interchangeable downstream.
std::vector<nn::ModuleCost> profile_module_costs(const nn::Model& model,
                                                 const PartitionSpec& spec);

/// Collapses module costs onto weight units, mirroring how the executors
/// actually place work: a module runs entirely on the stage of its *first*
/// unit, so its whole round-trip cost attaches there (later units of a
/// multi-unit module carry parameter state, not compute); parameter-free
/// modules attach to the nearest preceding unit (unit 0 before any weights
/// appear) — the same inheritance rule Partition::module_stage uses.
std::vector<double> unit_costs(const nn::Model& model,
                               const std::vector<nn::WeightUnit>& units,
                               const std::vector<nn::ModuleCost>& module_costs);

/// Convenience: profile_module_costs + unit_costs for the given unit list.
std::vector<double> profile_unit_costs(const nn::Model& model,
                                       const std::vector<nn::WeightUnit>& units,
                                       const PartitionSpec& spec);

}  // namespace pipemare::pipeline
