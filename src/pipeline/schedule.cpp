#include "src/pipeline/schedule.h"

#include <cmath>
#include <sstream>
#include <stdexcept>

namespace pipemare::pipeline {

namespace {
/// floor(a / b) for possibly negative a and positive b.
int floor_div(int a, int b) {
  int q = a / b;
  int r = a % b;
  return (r != 0 && ((r < 0) != (b < 0))) ? q - 1 : q;
}
}  // namespace

Schedule::Schedule(int num_stages, int num_microbatches)
    : p_(num_stages), n_(num_microbatches) {
  if (num_stages < 1 || num_microbatches < 1) {
    throw std::invalid_argument("Schedule: stages >= 1 and microbatches >= 1 required");
  }
}

int Schedule::fwd_staleness(int stage, int micro) const {
  // Derivation: version at the forward tick is the number of updates u with
  // u*N - 1 + 2P - 1 - i < t*N + n + i, i.e. u*N < t*N + n + 2i - 2P + 2.
  // Staleness = t - version = 1 + floor((2P - 2 - 2i - n) / N).
  int s = 1 + floor_div(2 * p_ - 2 - 2 * stage - micro, n_);
  return s < 0 ? 0 : s;
}

int Schedule::recompute_staleness(int stage, int micro, int segment_end_stage) const {
  if (segment_end_stage < stage) {
    throw std::invalid_argument("recompute_staleness: segment end before stage");
  }
  // Recompute of stage i for microbatch k runs at tick k + 2P - 1 - 2b + i
  // (so the recomputed activation of the segment's last stage b arrives
  // exactly at its backward tick). Version counting as for fwd_staleness:
  // staleness = 1 + floor((2b - 2i - 1 - n) / N).
  int s = 1 + floor_div(2 * segment_end_stage - 2 * stage - 1 - micro, n_);
  return s < 0 ? 0 : s;
}

double Schedule::mean_tau_fwd(int stage) const {
  return static_cast<double>(2 * (p_ - 1 - stage) + 1) / static_cast<double>(n_);
}

double Schedule::mean_tau_recompute(int stage, int segment_end_stage) const {
  double s = 0.0;
  for (int n = 0; n < n_; ++n) s += recompute_staleness(stage, n, segment_end_stage);
  return s / n_;
}

int Schedule::max_staleness() const {
  int best = 0;
  for (int n = 0; n < n_; ++n) best = std::max(best, fwd_staleness(0, n));
  return best;
}

std::string render_schedule_ascii(int stages, int microbatches, int minibatches,
                                  bool gpipe_flush) {
  int p = stages, n = microbatches;
  int period = gpipe_flush ? 2 * (n + p - 1) : 0;
  int ticks = gpipe_flush ? period * minibatches
                          : minibatches * n + 2 * p;  // 1F1B drains at the end
  std::vector<std::string> rows(static_cast<std::size_t>(p),
                                std::string(static_cast<std::size_t>(ticks), '.'));
  for (int t = 0; t < minibatches; ++t) {
    for (int nn = 0; nn < n; ++nn) {
      for (int i = 0; i < p; ++i) {
        int f, b;
        if (gpipe_flush) {
          // Fill-drain: forwards first, then backwards in reverse order.
          f = t * period + nn + i;
          b = t * period + (n + p - 1) + (n - 1 - nn) + (p - 1 - i);
        } else {
          int k = t * n + nn;
          f = k + i;
          b = k + 2 * p - 1 - i;
        }
        // In 1F1B steady state a stage runs one forward and one backward
        // per tick (separate functional units); mark coincident cells '*'.
        if (f < ticks) {
          char& cell = rows[static_cast<std::size_t>(i)][static_cast<std::size_t>(f)];
          cell = (cell == 'B' || cell == '*') ? '*' : 'F';
        }
        if (b < ticks) {
          char& cell = rows[static_cast<std::size_t>(i)][static_cast<std::size_t>(b)];
          cell = (cell == 'F' || cell == '*') ? '*' : 'B';
        }
      }
    }
  }
  std::ostringstream os;
  for (int i = 0; i < p; ++i) {
    os << "stage " << i << " |" << rows[static_cast<std::size_t>(i)] << "|\n";
  }
  return os.str();
}

}  // namespace pipemare::pipeline
