#pragma once

#include <string>

namespace pipemare::pipeline {

/// Pipeline-parallel training method (Section 2.2 / Table 1).
enum class Method {
  Sync,       ///< GPipe-style synchronous execution: tau_fwd = tau_bkwd = 0
  PipeDream,  ///< weight stashing: tau_fwd = tau_bkwd = (2(P-i)+1)/N
  PipeMare,   ///< asynchronous: tau_fwd = (2(P-i)+1)/N, tau_bkwd = 0
};

std::string method_name(Method m);

struct EngineConfig {
  Method method = Method::PipeMare;
  int num_stages = 1;
  int num_microbatches = 1;  ///< N = microbatches per minibatch
  bool split_bias = false;   ///< the paper's "2x stages" weight/bias split

  /// Technique 2 — discrepancy correction (applies to PipeMare): approximate
  /// the forward weights in the backward pass as
  /// u_bkwd = w - (tau_fwd - tau_bkwd) * delta, where delta is an EMA of
  /// weight deltas with decay gamma_i = D^{1/(tau_fwd,i - tau_bkwd,i)}.
  bool discrepancy_correction = false;
  double decay_d = 0.5;
  /// Ablation: extrapolate per microbatch with that microbatch's exact
  /// staleness instead of the per-stage mean delay.
  bool t2_per_microbatch = false;

  /// PipeMare Recompute (Appendix A.2/D): > 0 splits the module list into
  /// this many segments; only segment-start activations are kept from the
  /// forward pass, the rest are recomputed just before the backward pass
  /// using recompute-scheduled (delayed) weights. 0 disables recomputation.
  /// Only the analytic PipelineEngine models recomputation; ThreadedEngine
  /// rejects it.
  int recompute_segments = 0;
};

}  // namespace pipemare::pipeline
