#pragma once

#include <memory>
#include <string>

namespace pipemare::nn {
struct Flow;
}

namespace pipemare::pipeline {

/// Pipeline-parallel training method (Section 2.2 / Table 1).
enum class Method {
  Sync,       ///< GPipe-style synchronous execution: tau_fwd = tau_bkwd = 0
  PipeDream,  ///< weight stashing: tau_fwd = tau_bkwd = (2(P-i)+1)/N
  PipeMare,   ///< asynchronous: tau_fwd = (2(P-i)+1)/N, tau_bkwd = 0
};

std::string method_name(Method m);

/// How weight units are assigned to pipeline stages.
enum class PartitionStrategy {
  /// The paper's Section 4.1 rule: divide the units evenly *by count* into
  /// P contiguous groups. The default; bitwise-identical to the pre-cost-
  /// model behaviour.
  Uniform,
  /// PipeDream-style balanced split: minimize the maximum per-stage cost
  /// over all contiguous unit splits (dynamic program), with per-unit
  /// costs from the cost model (see cost_model.h).
  Balanced,
};

std::string partition_strategy_name(PartitionStrategy s);

/// Partitioning configuration shared by every execution backend.
struct PartitionSpec {
  PartitionStrategy strategy = PartitionStrategy::Uniform;

  /// Balanced only: micro-profile each module's forward/backward on the
  /// probe microbatch (a few timed reps) instead of the analytic FLOP
  /// model. Requires `probe`. Caveat: wall-clock timings vary run to run
  /// and engine to engine, so the chosen split — and with it stage
  /// placement, the delay schedule, and training curves — is *not*
  /// reproducible the way the analytic mode is; when two engines must
  /// agree bitwise (parity tests, resumable runs), profile once and hand
  /// both the same cost vector via make_partition(model, P, split_bias,
  /// costs), or stay analytic.
  bool measured = false;
  int measure_reps = 3;  ///< timing reps per module in measured mode

  /// Balanced only: convert the analytic FLOP/byte estimates to predicted
  /// nanoseconds through the one-shot kernel micro-profile
  /// (tensor::kernels::KernelCalibration) before running the DP split.
  /// Re-grounds FLOP-proportional splits in wall-clock when the selected
  /// kernel backend shifts GEMM throughput relative to memory-bound ops
  /// (naive vs tiled), while staying deterministic *given* one calibration
  /// — unlike `measured`, no per-module timing runs. Mutually exclusive
  /// with `measured` (which already produces nanoseconds directly).
  bool calibrated = false;

  /// Sample microbatch for cost profiling: the analytic model reads
  /// per-module activation shapes off one probe forward, the measured mode
  /// times real passes on it. Optional for analytic (falls back to
  /// batch-free intrinsic estimates), required for measured. core::train
  /// fills it with the task's first microbatch automatically.
  std::shared_ptr<const nn::Flow> probe;
};

struct EngineConfig {
  Method method = Method::PipeMare;
  int num_stages = 1;
  int num_microbatches = 1;  ///< N = microbatches per minibatch
  bool split_bias = false;   ///< the paper's "2x stages" weight/bias split

  /// Stage-partitioning strategy (uniform-by-count vs cost-balanced).
  PartitionSpec partition;

  /// Technique 2 — discrepancy correction (applies to PipeMare): approximate
  /// the forward weights in the backward pass as
  /// u_bkwd = w - (tau_fwd - tau_bkwd) * delta, where delta is an EMA of
  /// weight deltas with decay gamma_i = D^{1/(tau_fwd,i - tau_bkwd,i)}.
  bool discrepancy_correction = false;
  double decay_d = 0.5;
  /// Ablation: extrapolate per microbatch with that microbatch's exact
  /// staleness instead of the per-stage mean delay.
  bool t2_per_microbatch = false;

  /// PipeMare Recompute (Appendix A.2/D): > 0 splits the module list into
  /// this many segments; only segment-start activations are kept from the
  /// forward pass, the rest are recomputed just before the backward pass
  /// using recompute-scheduled (delayed) weights. 0 disables recomputation.
  /// Only the analytic PipelineEngine models recomputation; ThreadedEngine
  /// rejects it.
  int recompute_segments = 0;
};

}  // namespace pipemare::pipeline
