#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "src/nn/model.h"
#include "src/obs/metrics.h"
#include "src/pipeline/config.h"
#include "src/pipeline/partition.h"
#include "src/pipeline/schedule.h"

namespace pipemare::pipeline {

/// Registry-owned per-stage weight-staleness histograms
/// ("train.staleness.stage<k>", 64 unit-width buckets): every engine that
/// measures observed weight delay registers through this one helper, so a
/// single metric family covers all five backends with identical bounds.
/// Histogram::observe is a wait-free relaxed-atomic write and
/// Histogram::max_observed() is exact regardless of the bucket bounds.
std::vector<obs::Histogram*> staleness_histograms(int stages);

/// The versioned-weight state every pipeline execution backend shares: the
/// live weights, the bounded ring of committed weight versions (which
/// doubles as PipeDream's weight stash), and the Technique 2 delta EMA.
///
/// Both the sequential PipelineEngine and the multithreaded ThreadedEngine
/// assemble their per-(stage, microbatch) forward/backward parameter views
/// through this class, which is what guarantees the two backends are
/// statistically — in fact bitwise — equivalent: the weight bytes fed to
/// every forward and backward pass are computed by the same code from the
/// same history.
///
/// `cfg`, `partition` and `schedule` are borrowed; the owning engine keeps
/// them alive (and may mutate `cfg.method` between minibatches, e.g. the
/// Technique 3 sync-to-async switch).
class WeightVersions {
 public:
  WeightVersions(const nn::Model& model, const EngineConfig& cfg,
                 const Partition& partition, const Schedule& schedule,
                 std::uint64_t seed);

  /// Live (most recent) weights; the caller's optimizer mutates these.
  std::span<float> live() { return live_; }
  std::span<const float> live() const { return live_; }

  /// Number of committed updates (= index of the live version).
  std::int64_t step() const { return step_; }

  /// Ring-buffer depth: max forward staleness + 2 versions are retained.
  int history_depth() const { return history_depth_; }

  /// Committed weight version `v`; throws if `v` is outside the retained
  /// window [step - history_depth + 1, step]. Negative `v` reads version 0.
  const std::vector<float>& version(std::int64_t v) const;

  /// Technique 2 EMA of per-step weight deltas.
  std::span<const float> delta() const { return delta_; }

  /// Writes the forward-pass weights of microbatch `micro` for weight units
  /// [ufirst, ulast) into the matching positions of `out` (a full-size
  /// flat parameter buffer; positions outside the units are untouched).
  /// Each unit reads the version its own stage's schedule staleness
  /// dictates: the live weights under Sync, version
  /// step - fwd_staleness(stage, micro) otherwise.
  void assemble_forward_units(int ufirst, int ulast, int micro,
                              std::span<float> out) const;

  /// Same for the backward-pass weights: the forward weights under Sync
  /// (trivially) and PipeDream (the stash — reassembled from the history,
  /// which is exactly what the stash is), the live weights under PipeMare,
  /// optionally T2-extrapolated toward what the forward saw.
  void assemble_backward_units(int ufirst, int ulast, int micro,
                               std::span<float> out) const;

  /// Publishes the mutated live weights as the next version and updates
  /// the T2 delta EMA. Call exactly once after each optimizer step.
  void commit_update();

 private:
  const EngineConfig& cfg_;
  const Partition& partition_;
  const Schedule& schedule_;

  // Version-ring-published state (deliberately NOT GUARDED_BY any mutex):
  // this class is lock-free by contract. The trainer thread writes step_,
  // history_, live_, prev_live_ and delta_ only between minibatches
  // (commit_update / the optimizer mutating live()); workers call the
  // const assemble_*_units readers only inside a minibatch. The owning
  // engine's generation barrier — the ctrl_m_ release/acquire pair in
  // ThreadedEngine / the WorkerPool barrier in StealingEngine — is the
  // happens-before edge that publishes each commit to the workers.
  // Annotating these fields GUARDED_BY a capability would outlaw exactly
  // the lock-free reads that make the hot path scale; the unannotated
  // block marks the boundary the future free-running-commit mode must
  // make race-free by other means (a seqlock over the ring slots, as
  // ThreadedHogwildEngine sketches, or double-buffered slabs) — not by
  // adding a lock.
  std::int64_t step_ = 0;  ///< number of committed updates (version index)
  int history_depth_ = 1;
  std::vector<std::vector<float>> history_;  ///< ring buffer of weight versions
  std::vector<float> live_;
  std::vector<float> prev_live_;
  std::vector<float> delta_;  ///< T2 EMA of weight deltas

  // Per-stage weight-staleness histograms ("train.staleness.stage<k>"):
  // each forward assembly records the *observed* read-version delay
  // step - version, i.e. the paper's tau as actually experienced (clamped
  // at startup while step < staleness). Registry-owned pointers cached at
  // construction; Histogram::observe is a relaxed-atomic wait-free write,
  // so the lock-free contract above is untouched.
  std::vector<obs::Histogram*> staleness_;
};

}  // namespace pipemare::pipeline
