#pragma once

#include <cstdint>
#include <vector>

namespace pipemare::pipeline {

/// Discrete-event simulation of the pipeline hardware (one tick = one
/// microbatch forward or backward slot per stage). Complements the
/// analytic models in src/hwmodel by *measuring* throughput, bubble
/// fractions and per-stage in-flight activation counts directly from the
/// event timeline — the quantities Table 1 and Appendix A.1 state in
/// closed form.
///
/// Two schedules:
///  - flush (GPipe): a minibatch's N microbatches flow forward, then
///    backward; the next minibatch starts after the drain. Bubble fraction
///    (P-1)/(N+P-1) per phase.
///  - 1F1B (PipeDream/PipeMare): microbatch k's forward occupies stage i
///    at tick k+i and its backward at tick k+2P-1-i; no bubbles in steady
///    state.
/// Note on normalization: each stage has separate forward and backward
/// functional units (one F and one B slot per tick) — the resourcing the
/// paper's *delay* model uses. Table 1's *throughput* column instead
/// normalizes against a serialized F/B unit, under which a bubble-free
/// pipeline completes one microbatch every 2 ticks; consequently
/// Table 1's GPipe value N/(N+P-1) equals exactly 2x the flush/1F1B
/// throughput ratio measured here (asserted in tests).
struct TickStats {
  std::int64_t total_ticks = 0;
  std::int64_t busy_slots = 0;   ///< occupied (stage, tick) slots
  std::int64_t idle_slots = 0;   ///< idle slots within the active window
  double throughput = 0.0;       ///< microbatches completed per tick
  /// Maximum number of simultaneously live forward activations per stage
  /// (an activation is live from its forward until its backward).
  std::vector<int> max_inflight_activations;
};

/// Simulates `minibatches` minibatches of N microbatches through P stages.
TickStats simulate_flush_schedule(int stages, int microbatches, int minibatches);
TickStats simulate_1f1b_schedule(int stages, int microbatches, int minibatches);

}  // namespace pipemare::pipeline
