#include "src/pipeline/partition.h"

#include <stdexcept>

namespace pipemare::pipeline {

Partition make_partition(const nn::Model& model, int num_stages, bool split_bias) {
  Partition part;
  part.units = model.weight_units(split_bias);
  part.split_bias = split_bias;
  auto u = static_cast<int>(part.units.size());
  if (u == 0) throw std::invalid_argument("make_partition: model has no weights");
  if (num_stages < 1 || num_stages > u) {
    throw std::invalid_argument("make_partition: need 1 <= stages <= weight units (" +
                                std::to_string(u) + ")");
  }
  part.num_stages = num_stages;
  part.unit_stage.resize(static_cast<std::size_t>(u));
  part.stage_param_count.assign(static_cast<std::size_t>(num_stages), 0);
  for (int i = 0; i < u; ++i) {
    // Even contiguous split: unit i goes to stage floor(i * P / U).
    int stage = static_cast<int>((static_cast<std::int64_t>(i) * num_stages) / u);
    part.unit_stage[static_cast<std::size_t>(i)] = stage;
    part.stage_param_count[static_cast<std::size_t>(stage)] +=
        part.units[static_cast<std::size_t>(i)].size;
    part.total_params += part.units[static_cast<std::size_t>(i)].size;
  }
  // Module -> stage: stage of the module's first unit; parameter-free
  // modules ride with the latest stage seen so far (stage 0 before any
  // weights appear).
  part.module_stage.assign(static_cast<std::size_t>(model.num_modules()), 0);
  int unit_idx = 0;
  int current_stage = 0;
  for (int m = 0; m < model.num_modules(); ++m) {
    if (unit_idx < u && part.units[static_cast<std::size_t>(unit_idx)].module == m) {
      current_stage = part.unit_stage[static_cast<std::size_t>(unit_idx)];
      while (unit_idx < u && part.units[static_cast<std::size_t>(unit_idx)].module == m) {
        ++unit_idx;
      }
    }
    part.module_stage[static_cast<std::size_t>(m)] = current_stage;
  }
  return part;
}

int max_stages(const nn::Model& model, bool split_bias) {
  return static_cast<int>(model.weight_units(split_bias).size());
}

}  // namespace pipemare::pipeline
