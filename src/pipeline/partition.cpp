#include "src/pipeline/partition.h"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <string>

#include "src/graph/graph.h"
#include "src/pipeline/cost_model.h"

namespace pipemare::pipeline {

std::string partition_strategy_name(PartitionStrategy s) {
  switch (s) {
    case PartitionStrategy::Uniform: return "uniform";
    case PartitionStrategy::Balanced: return "balanced";
  }
  return "?";
}

double balance_ratio(std::span<const double> stage_costs) {
  if (stage_costs.empty()) return 1.0;
  double max_cost = 0.0;
  double total = 0.0;
  for (double c : stage_costs) {
    max_cost = std::max(max_cost, c);
    total += c;
  }
  double mean = total / static_cast<double>(stage_costs.size());
  return mean > 0.0 ? max_cost / mean : 1.0;
}

double Partition::balance_ratio() const { return pipeline::balance_ratio(stage_cost); }

namespace {

/// Fills everything derived from `unit_stage`: per-stage parameter and
/// cost totals plus the module -> stage map.
void finish_partition(const nn::Model& model, Partition& part) {
  auto u = static_cast<int>(part.units.size());
  part.stage_param_count.assign(static_cast<std::size_t>(part.num_stages), 0);
  part.stage_cost.assign(static_cast<std::size_t>(part.num_stages), 0.0);
  for (int i = 0; i < u; ++i) {
    auto idx = static_cast<std::size_t>(i);
    auto stage = static_cast<std::size_t>(part.unit_stage[idx]);
    part.stage_param_count[stage] += part.units[idx].size;
    part.total_params += part.units[idx].size;
    part.stage_cost[stage] += part.unit_cost[idx];
  }
  // Module -> stage: stage of the module's first unit; parameter-free
  // modules ride with the latest stage seen so far (stage 0 before any
  // weights appear).
  part.module_stage.assign(static_cast<std::size_t>(model.num_modules()), 0);
  int unit_idx = 0;
  int current_stage = 0;
  for (int m = 0; m < model.num_modules(); ++m) {
    if (unit_idx < u && part.units[static_cast<std::size_t>(unit_idx)].module == m) {
      current_stage = part.unit_stage[static_cast<std::size_t>(unit_idx)];
      while (unit_idx < u && part.units[static_cast<std::size_t>(unit_idx)].module == m) {
        ++unit_idx;
      }
    }
    part.module_stage[static_cast<std::size_t>(m)] = current_stage;
  }
}

/// The partitioner's unit enumeration: lower the model to the op graph
/// and take the weight units in its linearized execution order. The
/// executors (forward_range in module-index order) additionally require
/// the linearization to be the identity — true for every model appended
/// in topological order, and enforced here so a hypothetical non-identity
/// lowering fails loudly instead of silently misassigning staleness.
std::vector<nn::WeightUnit> partition_units(const nn::Model& model, bool split_bias) {
  graph::Graph g = graph::Graph::lower(model);
  if (!g.linearization_is_identity()) {
    throw std::invalid_argument(
        "make_partition: the model's graph linearization is not the module "
        "order; the executors run modules in index order, so modules must be "
        "added topologically");
  }
  return graph::linearized_weight_units(g, model, split_bias);
}

Partition start_partition(const nn::Model& model, int num_stages, bool split_bias) {
  Partition part;
  part.units = partition_units(model, split_bias);
  part.split_bias = split_bias;
  auto u = static_cast<int>(part.units.size());
  if (u == 0) throw std::invalid_argument("make_partition: model has no weights");
  if (num_stages < 1 || num_stages > u) {
    throw std::invalid_argument("make_partition: need 1 <= stages <= weight units (" +
                                std::to_string(u) + ")");
  }
  part.num_stages = num_stages;
  return part;
}

}  // namespace

Partition make_partition(const nn::Model& model, int num_stages, bool split_bias) {
  Partition part = start_partition(model, num_stages, split_bias);
  auto u = static_cast<int>(part.units.size());
  part.unit_stage.resize(static_cast<std::size_t>(u));
  part.unit_cost.assign(static_cast<std::size_t>(u), 1.0);
  for (int i = 0; i < u; ++i) {
    // Even contiguous split: unit i goes to stage floor(i * P / U).
    int stage = static_cast<int>((static_cast<std::int64_t>(i) * num_stages) / u);
    part.unit_stage[static_cast<std::size_t>(i)] = stage;
  }
  finish_partition(model, part);
  return part;
}

std::vector<int> balanced_contiguous_split(std::span<const double> costs,
                                           int num_stages) {
  auto u = static_cast<int>(costs.size());
  if (u == 0) throw std::invalid_argument("balanced_contiguous_split: no units");
  if (num_stages < 1 || num_stages > u) {
    throw std::invalid_argument(
        "balanced_contiguous_split: need 1 <= stages <= units (" + std::to_string(u) +
        ")");
  }
  // prefix[i] = cost of units [0, i).
  std::vector<double> prefix(static_cast<std::size_t>(u) + 1, 0.0);
  for (int i = 0; i < u; ++i) {
    prefix[static_cast<std::size_t>(i) + 1] =
        prefix[static_cast<std::size_t>(i)] + std::max(0.0, costs[static_cast<std::size_t>(i)]);
  }
  auto range_cost = [&](int lo, int hi) {  // units [lo, hi)
    return prefix[static_cast<std::size_t>(hi)] - prefix[static_cast<std::size_t>(lo)];
  };

  // Linear-partition DP: best[g][i] = cheapest max-stage-cost of packing
  // units [0, i) into g+1 non-empty contiguous groups. O(P * U^2) — unit
  // counts are small (hundreds at most), so no need for the binary-search
  // formulation.
  constexpr double kInf = std::numeric_limits<double>::infinity();
  const auto us = static_cast<std::size_t>(u);
  const auto ps = static_cast<std::size_t>(num_stages);
  std::vector<std::vector<double>> best(ps, std::vector<double>(us + 1, kInf));
  std::vector<std::vector<int>> cut(ps, std::vector<int>(us + 1, 0));
  for (int i = 1; i <= u; ++i) {
    best[0][static_cast<std::size_t>(i)] = range_cost(0, i);
  }
  for (int g = 1; g < num_stages; ++g) {
    auto gs = static_cast<std::size_t>(g);
    for (int i = g + 1; i <= u; ++i) {
      // Last group is [j, i); earlier groups need at least g units.
      for (int j = g; j < i; ++j) {
        double cand = std::max(best[gs - 1][static_cast<std::size_t>(j)], range_cost(j, i));
        // Strict < keeps the earliest feasible cut on ties, making the
        // split deterministic and front-loading slack to early stages
        // (which also carry the largest pipeline delay tau).
        if (cand < best[gs][static_cast<std::size_t>(i)]) {
          best[gs][static_cast<std::size_t>(i)] = cand;
          cut[gs][static_cast<std::size_t>(i)] = j;
        }
      }
    }
  }

  std::vector<int> unit_stage(us, 0);
  int hi = u;
  for (int g = num_stages - 1; g >= 1; --g) {
    int lo = cut[static_cast<std::size_t>(g)][static_cast<std::size_t>(hi)];
    for (int i = lo; i < hi; ++i) unit_stage[static_cast<std::size_t>(i)] = g;
    hi = lo;
  }
  return unit_stage;
}

Partition make_partition(const nn::Model& model, int num_stages, bool split_bias,
                         std::span<const double> costs) {
  Partition part = start_partition(model, num_stages, split_bias);
  if (costs.size() != part.units.size()) {
    throw std::invalid_argument(
        "make_partition: cost vector size (" + std::to_string(costs.size()) +
        ") != weight units (" + std::to_string(part.units.size()) + ")");
  }
  part.strategy = PartitionStrategy::Balanced;
  part.unit_cost.assign(costs.begin(), costs.end());
  part.unit_stage = balanced_contiguous_split(costs, num_stages);
  finish_partition(model, part);
  return part;
}

Partition make_partition(const nn::Model& model, int num_stages, bool split_bias,
                         const PartitionSpec& spec) {
  if (spec.strategy == PartitionStrategy::Uniform) {
    return make_partition(model, num_stages, split_bias);
  }
  auto units = partition_units(model, split_bias);
  std::vector<double> costs = profile_unit_costs(model, units, spec);
  return make_partition(model, num_stages, split_bias, costs);
}

int max_stages(const nn::Model& model, bool split_bias) {
  return static_cast<int>(partition_units(model, split_bias).size());
}

std::vector<StageModuleRange> stage_module_ranges(const Partition& partition) {
  // module_stage and the units' module ids are both non-decreasing, so
  // each stage owns a contiguous slice of each.
  std::vector<StageModuleRange> ranges(static_cast<std::size_t>(partition.num_stages));
  for (int s = 0; s < partition.num_stages; ++s) {
    StageModuleRange& r = ranges[static_cast<std::size_t>(s)];
    auto mlo = std::lower_bound(partition.module_stage.begin(),
                                partition.module_stage.end(), s);
    auto mhi = std::upper_bound(partition.module_stage.begin(),
                                partition.module_stage.end(), s);
    r.module_first = static_cast<int>(mlo - partition.module_stage.begin());
    r.module_last = static_cast<int>(mhi - partition.module_stage.begin());
    auto unit_before = [](const nn::WeightUnit& u, int m) { return u.module < m; };
    r.unit_first = static_cast<int>(
        std::lower_bound(partition.units.begin(), partition.units.end(),
                         r.module_first, unit_before) -
        partition.units.begin());
    r.unit_last = static_cast<int>(
        std::lower_bound(partition.units.begin(), partition.units.end(),
                         r.module_last, unit_before) -
        partition.units.begin());
  }
  return ranges;
}

void validate_partition_config(std::string_view backend, const nn::Model* model,
                               int num_stages, bool split_bias,
                               const PartitionSpec& spec) {
  const std::string prefix = "backend '" + std::string(backend) + "': ";
  if (num_stages < 1) {
    throw std::invalid_argument(prefix + "num_stages must be >= 1, got " +
                                std::to_string(num_stages));
  }
  if (spec.measured && spec.strategy != PartitionStrategy::Balanced) {
    throw std::invalid_argument(prefix +
                                "measured cost profiling applies to the 'balanced' "
                                "partition strategy only");
  }
  if (spec.measured && !spec.probe) {
    throw std::invalid_argument(prefix +
                                "partition='balanced,measured' needs a probe "
                                "microbatch (PartitionSpec::probe); core::train "
                                "supplies one automatically");
  }
  if (model != nullptr) {
    int limit = max_stages(*model, split_bias);
    if (limit == 0) {
      throw std::invalid_argument(prefix + "model has no weight units to partition");
    }
    if (num_stages > limit) {
      throw std::invalid_argument(
          prefix + "num_stages=" + std::to_string(num_stages) +
          " exceeds max_stages=" + std::to_string(limit) + " for this model (" +
          std::to_string(limit) + " weight units with split_bias=" +
          (split_bias ? "true" : "false") +
          "; one stage per weight unit is the finest granularity)");
    }
  }
}

}  // namespace pipemare::pipeline
