#include "src/pipeline/cost_model.h"

#include <chrono>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <utility>

#include "src/nn/flow.h"
#include "src/util/rng.h"
#include "src/util/stats.h"

#include "src/tensor/kernels/calibration.h"

namespace pipemare::pipeline {

namespace {

using Clock = std::chrono::steady_clock;

/// Calibrated mode: map each module's analytic (flops, bytes) estimate to
/// predicted nanoseconds at the measured throughput of the active kernel
/// backend. Like measured mode, nanoseconds land in the flops fields (the
/// partitioner only consumes relative magnitudes via total_flops()).
void apply_calibration(std::vector<nn::ModuleCost>& costs) {
  const auto& cal = tensor::kernels::KernelCalibration::active();
  for (auto& c : costs) {
    nn::ModuleCost ns;
    ns.fwd_flops = tensor::kernels::KernelCalibration::predict_ns(
        cal, c.fwd_flops, c.fwd_bytes);
    ns.bkwd_flops = tensor::kernels::KernelCalibration::predict_ns(
        cal, c.bkwd_flops, c.bkwd_bytes);
    c = ns;
  }
}

/// A gradient flow matching `out`: ones in every tensor channel the
/// module's backward consumes (x always; ctx/skip when the forward
/// produced them).
nn::Flow make_dout(const nn::Flow& out) {
  nn::Flow dout;
  dout.x = tensor::Tensor(out.x.shape());
  dout.x.fill(1.0F);
  if (!out.ctx.empty()) {
    dout.ctx = tensor::Tensor(out.ctx.shape());
    dout.ctx.fill(1.0F);
  }
  if (!out.skip.empty()) {
    dout.skip = tensor::Tensor(out.skip.shape());
    dout.skip.fill(1.0F);
  }
  return dout;
}

}  // namespace

std::vector<nn::ModuleCost> profile_module_costs(const nn::Model& model,
                                                 const PartitionSpec& spec) {
  const int m = model.num_modules();
  std::vector<nn::ModuleCost> costs(static_cast<std::size_t>(m));
  if (spec.measured && !spec.probe) {
    throw std::invalid_argument(
        "profile_module_costs: measured partitioning needs a probe microbatch "
        "(PartitionSpec::probe); core::train supplies one automatically");
  }
  if (spec.measured && spec.calibrated) {
    throw std::invalid_argument(
        "profile_module_costs: measured and calibrated are mutually exclusive "
        "(measured already times real passes; calibration rescales the "
        "analytic estimates)");
  }

  if (!spec.probe) {
    // No probe: batch-free intrinsic estimates.
    nn::CostShapes empty;
    for (int i = 0; i < m; ++i) costs[static_cast<std::size_t>(i)] = model.module(i).cost(empty);
    if (spec.calibrated) apply_calibration(costs);
    return costs;
  }

  // One probe forward through the chain records every module's in/out
  // activation shapes (and, for measured mode, the per-module input flows
  // and backward caches). The probe runs in training mode so dropout masks
  // and their cost are included; counters stay at (step 0, micro 0).
  std::vector<float> params(static_cast<std::size_t>(model.param_count()));
  util::Rng init_rng(0x9e3779b97f4a7c15ULL);
  model.init_params(params, init_rng);

  std::vector<nn::Flow> inputs(static_cast<std::size_t>(m));
  std::vector<nn::Flow> outputs(static_cast<std::size_t>(m));
  auto caches = model.make_caches();
  nn::Flow cur = *spec.probe;
  cur.training = true;
  cur.micro = 0;
  cur.step = 0;
  for (int i = 0; i < m; ++i) {
    auto idx = static_cast<std::size_t>(i);
    inputs[idx] = cur;
    caches[idx].clear();
    cur = model.module(i).forward(cur, model.module_params(i, std::span<const float>(params)),
                                  caches[idx]);
    outputs[idx] = cur;
  }

  if (!spec.measured) {
    for (int i = 0; i < m; ++i) {
      auto idx = static_cast<std::size_t>(i);
      nn::CostShapes shapes;
      if (!inputs[idx].x.empty()) shapes.in_shape = inputs[idx].x.shape();
      if (!outputs[idx].x.empty()) shapes.out_shape = outputs[idx].x.shape();
      costs[idx] = model.module(i).cost(shapes);
    }
    if (spec.calibrated) apply_calibration(costs);
    return costs;
  }

  // Measured mode: minimum-of-reps wall time per module, forward and
  // backward separately. Nanoseconds land in the flops fields — the
  // partitioner only consumes relative magnitudes.
  const int reps = std::max(1, spec.measure_reps);
  std::vector<float> grads(params.size(), 0.0F);
  for (int i = 0; i < m; ++i) {
    auto idx = static_cast<std::size_t>(i);
    auto w = model.module_params(i, std::span<const float>(params));
    auto g = model.module_params(i, std::span<float>(grads));

    double fwd_ns = std::numeric_limits<double>::max();
    for (int r = 0; r < reps; ++r) {
      nn::Cache scratch;
      nn::Flow in = inputs[idx];
      auto t0 = Clock::now();
      (void)model.module(i).forward(in, w, scratch);
      fwd_ns = std::min(fwd_ns,
                        static_cast<double>(util::ns_between(t0, Clock::now())));
    }

    double bkwd_ns = std::numeric_limits<double>::max();
    for (int r = 0; r < reps; ++r) {
      nn::Flow dout = make_dout(outputs[idx]);
      auto t0 = Clock::now();
      (void)model.module(i).backward(dout, w, caches[idx], g);
      bkwd_ns = std::min(bkwd_ns,
                         static_cast<double>(util::ns_between(t0, Clock::now())));
    }

    costs[idx].fwd_flops = fwd_ns;
    costs[idx].bkwd_flops = bkwd_ns;
  }
  return costs;
}

std::vector<double> unit_costs(const nn::Model& model,
                               const std::vector<nn::WeightUnit>& units,
                               const std::vector<nn::ModuleCost>& module_costs) {
  std::vector<double> costs(units.size(), 0.0);
  if (units.empty()) return costs;
  std::size_t next_unit = 0;   // first unit not yet assigned to a module
  std::size_t attach_to = 0;   // where parameter-free module cost lands
  for (int mod = 0; mod < model.num_modules(); ++mod) {
    if (next_unit < units.size() && units[next_unit].module == mod) {
      // A module executes wholly on the stage of its first unit, so all
      // its compute attaches there; later units of the same module add no
      // compute (they only carry parameter state).
      attach_to = next_unit;
      while (next_unit < units.size() && units[next_unit].module == mod) ++next_unit;
    }
    costs[attach_to] += module_costs[static_cast<std::size_t>(mod)].total_flops();
  }
  return costs;
}

std::vector<double> profile_unit_costs(const nn::Model& model,
                                       const std::vector<nn::WeightUnit>& units,
                                       const PartitionSpec& spec) {
  return unit_costs(model, units, profile_module_costs(model, spec));
}

}  // namespace pipemare::pipeline
