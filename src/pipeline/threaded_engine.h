#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/nn/heads.h"
#include "src/nn/model.h"
#include "src/optim/optimizer.h"
#include "src/pipeline/config.h"
#include "src/pipeline/engine.h"
#include "src/pipeline/partition.h"
#include "src/pipeline/schedule.h"
#include "src/pipeline/stage_mailbox.h"
#include "src/pipeline/stage_stats.h"
#include "src/pipeline/weight_versions.h"
#include "src/util/sync.h"

namespace pipemare::pipeline {

/// Truly concurrent pipeline-parallel execution (registered with the
/// core::BackendRegistry as "threaded"): one persistent worker
/// thread per stage, connected by bounded two-lane mailboxes, running the
/// 1F1B schedule with real wall-clock overlap (PipeDream-style pipelined
/// workers; the first step toward "as fast as the hardware allows").
///
/// Statistically this engine is *identical* to the sequential
/// PipelineEngine: both assemble every (stage, microbatch) forward and
/// backward parameter view through the same WeightVersions store, and
/// within a minibatch the store is frozen (updates commit between
/// minibatches), so the weight bytes each pass sees do not depend on
/// thread timing. Combined with three ordering facts —
///   1. each stage worker processes its microbatches in FIFO order,
///   2. stages own disjoint module (and hence gradient and cache) ranges,
///   3. Dropout masks are counter-based — pure functions of (module seed,
///      step, microbatch, element) — so they are independent of draw order
///      entirely —
/// every float is produced by the same operations in the same order as in
/// the sequential engine, making loss trajectories and gradients bitwise
/// equal (see tests/test_threaded_engine.cpp).
///
/// The surface mirrors PipelineEngine so core::train_loop can drive either
/// engine:
///
///   auto res = engine.forward_backward(inputs, targets, head);
///   opt.step(engine.weights(), engine.gradients(), segments);
///   engine.commit_update();
///
/// Unsupported: activation recomputation (cfg.recompute_segments > 0) is a
/// memory-model feature of the analytic engine and is rejected here.
class ThreadedEngine {
 public:
  using StepResult = pipeline::StepResult;

  ThreadedEngine(const nn::Model& model, EngineConfig cfg, std::uint64_t seed);
  ~ThreadedEngine();

  ThreadedEngine(const ThreadedEngine&) = delete;
  ThreadedEngine& operator=(const ThreadedEngine&) = delete;

  /// Runs the N microbatches of one minibatch through the stage workers
  /// with schedule-exact weight versions, accumulating the mean gradient.
  /// Rethrows the first worker-side exception (after the pipeline drains).
  StepResult forward_backward(const std::vector<nn::Flow>& micro_inputs,
                              const std::vector<tensor::Tensor>& micro_targets,
                              const nn::LossHead& head);

  /// Live (most recent) weights; the caller's optimizer mutates these.
  std::span<float> weights() { return store_.live(); }
  std::span<const float> weights() const { return store_.live(); }

  /// Mean gradient produced by the last forward_backward.
  std::span<float> gradients() { return grads_; }

  /// Publishes the mutated live weights as the next version and updates
  /// the T2 delta EMA. Call exactly once after each optimizer step.
  void commit_update() { store_.commit_update(); }

  /// Evaluation helper: forward-only on the live weights (single-threaded;
  /// evaluation has no pipeline semantics to overlap).
  nn::LossResult evaluate(const nn::Flow& input, const tensor::Tensor& target,
                          const nn::LossHead& head) const;

  /// Technique 3 switches from Sync warmup to PipeMare mid-training. Only
  /// call between minibatches (as core::train_loop does).
  void set_method(Method m) { cfg_.method = m; }
  Method method() const { return cfg_.method; }

  /// Epoch-boundary dynamic repartitioning: swaps in a new unit -> stage
  /// assignment over the same weight units (checked by
  /// validate_repartition) and rebuilds the per-stage module/unit ranges.
  /// Only call between minibatches: the workers are parked on the
  /// generation barrier then, and the next forward_backward's generation
  /// bump (under ctrl_m_) publishes the new ranges to every worker. No
  /// weights, version history, or optimizer state move.
  void repartition(const Partition& next);

  const Partition& partition() const { return partition_; }
  const Schedule& schedule() const { return schedule_; }
  const nn::Model& model() const { return model_; }
  const EngineConfig& config() const { return cfg_; }
  std::int64_t steps_taken() const { return store_.step(); }
  int num_workers() const { return static_cast<int>(workers_.size()); }

  /// Mean forward delay per stage, (2(P-i)+1)/N — the tau vector T1 needs.
  std::vector<double> stage_tau_fwd() const { return stage_tau_fwd_vector(schedule_); }

  /// Per-stage mailbox occupancy statistics (cumulative high-water marks
  /// since construction). The 1F1B lane bounds make these provably at
  /// most min(N, P - s + 1) per lane for stage s; tests assert it.
  std::vector<StageMailbox::LaneStats> lane_stats() const;

  /// Per-stage load counters, cumulative since construction (or the last
  /// reset_stage_stats). This is the measurement substrate the partition
  /// cost model is validated against — and what the work-stealing backend
  /// ("threaded_steal", src/sched/) balances at runtime: a stage whose
  /// busy share dwarfs the others is the pipeline's bottleneck, and its
  /// siblings' pop_wait is the headroom stealing reclaims. The struct is
  /// shared across all instrumented backends (stage_stats.h); this
  /// engine's slots are stages and its stolen_* fields stay 0.
  using StageStats = pipeline::StageStats;

  /// Snapshot of the per-stage counters. Call between minibatches (the
  /// engine's external-synchronization contract); the minibatch completion
  /// barrier orders worker writes before this read.
  std::vector<StageStats> stage_stats() const;
  void reset_stage_stats();

  /// Per-stage optimizer segments with the given base LR and per-stage
  /// scale factors (from the T1 rescheduler). Scales may be empty (all 1).
  std::vector<optim::LrSegment> lr_segments(double base_lr,
                                            std::span<const double> scales) const {
    return stage_lr_segments(partition_, base_lr, scales);
  }

 private:
  /// A stage worker's slice of the model (see pipeline::StageModuleRange):
  /// with split_bias a module's bias unit may be *scheduled* on the next
  /// stage while the module executes here; the unit range follows module
  /// ownership, and each unit's staleness follows its own scheduled stage
  /// — exactly like the sequential engine.
  using StageRange = StageModuleRange;

  void worker_loop(int stage);
  void run_minibatch(int stage, std::vector<float>& w_fwd, std::vector<float>& w_bkwd);
  void backward_step(int stage, int micro, nn::Flow dflow, std::vector<float>& w_bkwd);
  void record_failure(const char* what);

  const nn::Model& model_;
  EngineConfig cfg_;
  Partition partition_;
  Schedule schedule_;
  WeightVersions store_;
  std::vector<float> grads_;

  std::vector<StageRange> ranges_;  ///< per stage
  /// Per-stage load counters. Each slot is written only by its stage's
  /// worker; readers run between minibatches, ordered by the completion
  /// barrier (ctrl_m_ release/acquire), so plain fields suffice.
  std::vector<StageStats> stats_;   ///< per stage
  std::vector<std::unique_ptr<StageMailbox>> mailboxes_;  ///< per stage
  std::vector<std::vector<nn::Cache>> caches_;  ///< per microbatch, full model

  // Per-minibatch context, owned by forward_backward for the duration of
  // one generation; workers read it between the go and done barriers.
  // (Inputs need no pointer here: they reach stage 0 as mailbox items.)
  // These fields are deliberately NOT GUARDED_BY(ctrl_m_): they are
  // *barrier-published* — written by the trainer thread before the
  // generation bump and read lock-free by workers until the completion
  // barrier (whose ctrl_m_ release/acquire pair provides the
  // happens-before). Annotating them would outlaw exactly the lock-free
  // worker reads the barrier protocol licenses.
  const std::vector<tensor::Tensor>* mb_targets_ = nullptr;
  const nn::LossHead* mb_head_ = nullptr;
  StepResult mb_result_;        ///< written only by the last-stage worker
  std::atomic<bool> mb_failed_{false};
  std::string mb_error_ GUARDED_BY(ctrl_m_);  ///< first worker exception

  util::Mutex ctrl_m_;
  util::CondVar ctrl_go_;
  util::CondVar ctrl_done_;
  std::uint64_t generation_ GUARDED_BY(ctrl_m_) = 0;
  int done_count_ GUARDED_BY(ctrl_m_) = 0;
  bool shutdown_ GUARDED_BY(ctrl_m_) = false;
  std::vector<std::thread> workers_;
};

}  // namespace pipemare::pipeline
