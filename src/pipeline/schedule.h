#pragma once

#include <string>
#include <vector>

namespace pipemare::pipeline {

/// Exact weight-version arithmetic for the bubble-free 1F1B pipeline
/// schedule (PipeDream / PipeMare execution; Section 2.2).
///
/// Tick model (0-indexed stages i in [0, P), global microbatch k = t*N + n):
///   - forward of k at stage i occupies tick  k + i,
///   - backward of k at stage i occupies tick k + 2P - 1 - i,
///   - stage i applies its u-th weight update right after the backward of
///     the last microbatch of minibatch u-1, i.e. at tick u*N - 1 + 2P-1-i,
///   - a forward colliding with an update on the same tick reads first
///     (read-before-update).
///
/// Under this model the *average* forward staleness of stage i is exactly
/// the paper's tau_fwd,i = (2(P-i)+1)/N (1-indexed i; Table 1), the
/// backward staleness is exactly 0, and a recompute scheduled to finish
/// just in time (Appendix A.2) sees a staleness between the two. These are
/// derived in closed form below and validated against a brute-force tick
/// simulation in the tests.
class Schedule {
 public:
  Schedule(int num_stages, int num_microbatches);

  int stages() const { return p_; }
  int microbatches() const { return n_; }

  /// Forward staleness (optimizer steps) of microbatch `micro` at `stage`:
  /// the minibatch-t forward reads weight version t - fwd_staleness.
  /// Always >= 0; early in training callers clamp version at 0.
  int fwd_staleness(int stage, int micro) const;

  /// Backward staleness is identically zero in the 1F1B schedule: the
  /// backward pass reads the live weights (tau_bkwd = 0, Table 1).
  int bwd_staleness(int stage, int micro) const { (void)stage, (void)micro; return 0; }

  /// Staleness of the weights used to *recompute* activations for `stage`
  /// when its segment ends at `segment_end_stage` (inclusive), with the
  /// recompute finishing exactly when the backward needs it (Appendix D).
  int recompute_staleness(int stage, int micro, int segment_end_stage) const;

  /// The paper's closed-form mean forward delay (2(P-i)+1)/N for a
  /// 0-indexed stage.
  double mean_tau_fwd(int stage) const;

  /// Mean recompute delay over microbatches.
  double mean_tau_recompute(int stage, int segment_end_stage) const;

  /// Largest forward staleness over all stages/microbatches (ring-buffer
  /// depth the engine must keep).
  int max_staleness() const;

 private:
  int p_;
  int n_;
};

/// Renders an ASCII timeline of the first `minibatches` minibatches for
/// Figure 1: 'F'/'B' cells per (stage, tick); GPipe-style flush inserts
/// visible bubbles ('.'), the 1F1B schedule has none in steady state.
std::string render_schedule_ascii(int stages, int microbatches, int minibatches,
                                  bool gpipe_flush);

}  // namespace pipemare::pipeline
