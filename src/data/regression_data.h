#pragma once

#include <cstdint>

#include "src/data/dataset.h"

namespace pipemare::data {

/// Synthetic stand-in for the LIBSVM `cpusmall` dataset of Figure 3(b): a
/// 12-feature linear-regression problem with heterogeneous feature scales
/// (log-spaced), giving the objective a wide curvature spread like the
/// real dataset. The largest Hessian eigenvalue is exposed so the Lemma 1
/// stability curve can be overlaid exactly as the paper does.
struct RegressionConfig {
  int features = 12;
  int size = 1024;
  double noise_std = 0.1;
  double scale_decades = 1.0;  ///< feature scales span 10^0 .. 10^-decades
  std::uint64_t seed = 7;
};

class SynthRegressionDataset {
 public:
  explicit SynthRegressionDataset(const RegressionConfig& cfg);

  const RegressionConfig& config() const { return cfg_; }
  int size() const { return cfg_.size; }

  /// Minibatch of rows at `indices`, split into microbatches. Flow.x is
  /// [M, features], targets [M].
  MicroBatches minibatch(const std::vector<int>& indices, int micro_size) const;

  /// Largest eigenvalue of the empirical Hessian (1/n) X^T X, computed by
  /// power iteration — the lambda of the Lemma 1 overlay in Figure 3(b).
  double lambda_max() const { return lambda_max_; }

 private:
  RegressionConfig cfg_;
  std::vector<float> x_;  ///< [size, features]
  std::vector<float> y_;
  double lambda_max_ = 0.0;
};

}  // namespace pipemare::data
